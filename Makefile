# Convenience targets; everything is plain `go` underneath.

BENCH_PATTERN ?= BenchmarkTable1_|BenchmarkTable2_S38417|BenchmarkTable3_S38417|BenchmarkSweepSerial|BenchmarkSweepParallel|BenchmarkSweepIncremental_
BENCH_SECTION ?= current
BENCH_OUT     ?= BENCH_PR8.json

TRACE_OUT ?= trace.ndjson
TRACE_BASELINE ?= trace_baseline.ndjson
TRACE_INCR_OUT ?= trace_incr.ndjson
TRACE_INCR_BASELINE ?= trace_incr_baseline.ndjson
MAX_REGRESS ?= 25

.PHONY: test race bench bench-json bench-smoke trace-smoke trace-diff trace-incr-smoke trace-incr-diff metrics-smoke service-smoke flight-smoke history-smoke crash-smoke chaos

test:
	go build ./... && go vet ./... && go test ./...

race:
	go test -race ./...

bench:
	go test -run xxx -bench '$(BENCH_PATTERN)' -benchtime=3x -benchmem .

# bench-json records the tracked benchmarks (Tables 1-3 + the sweep,
# ns/op and allocs/op) into the $(BENCH_OUT) ledger under
# $(BENCH_SECTION). Record a pre-change "baseline" section first, then a
# "current" section after, and diff with `go run ./cmd/benchjson -list`.
bench-json:
	go test -run xxx -bench '$(BENCH_PATTERN)' -benchtime=3x -benchmem . \
		| tee /dev/stderr \
		| go run ./cmd/benchjson -out $(BENCH_OUT) -section $(BENCH_SECTION)

# bench-smoke is the CI gate: one iteration of the Table 1 benchmark,
# race detector off, failing on any panic. -short keeps it under the CI
# budget by skipping the slow circuits (DSPCore is ~85 s/op at default
# scale); the full set stays behind `make bench`.
bench-smoke:
	go test -short -run xxx -bench BenchmarkTable1 -benchtime=1x -benchmem .

# trace-smoke is the observability CI gate: one traced s38417 run at
# reduced scale, then tracestat over the trace — which exits non-zero if
# any span is unbalanced. $(TRACE_OUT) is left behind for archiving.
trace-smoke:
	go run ./cmd/tpiflow -circuit s38417c -scale 0.25 -tp 1 -trace $(TRACE_OUT) -progress
	go run ./cmd/tracestat $(TRACE_OUT)

# trace-diff is the cross-run regression sentinel: the fresh trace is
# compared stage-by-stage against the committed baseline. -normalize
# compares each stage's share of its run (machine-speed invariant) and
# -min-dur keeps sub-100ms stages out of the gate; exit 1 names the
# regressed stage and TP level.
trace-diff:
	go run ./cmd/tracediff -normalize -max-regress $(MAX_REGRESS) -min-dur 100ms $(TRACE_BASELINE) $(TRACE_OUT)

# trace-incr-smoke traces the incremental sweep engine: a serialized
# three-level chain (-sweep-mode incremental, with the opt-in cross-level
# PODEM memo so atpg.patterns_reused shows up in the spans), then
# tracestat over the trace. This is the path the artifact chain, the
# incremental re-levelizer (flow.sta_incremental_ns), and the memo replay
# all exercise together.
trace-incr-smoke:
	go run ./cmd/tpitables -circuits s38417c -scale 0.1 -levels 0,2,5 -workers 1 \
		-sweep-mode incremental -memo -table 1 -trace $(TRACE_INCR_OUT)
	go run ./cmd/tracestat $(TRACE_INCR_OUT)

# trace-incr-diff gates the incremental path the same way trace-diff
# gates the full flow: stage-by-stage against the committed incremental
# baseline, normalized so only relative regressions fail.
trace-incr-diff:
	go run ./cmd/tracediff -normalize -max-regress $(MAX_REGRESS) -min-dur 100ms $(TRACE_INCR_BASELINE) $(TRACE_INCR_OUT)

# metrics-smoke starts a sweep with a live /metrics listener, scrapes it
# mid-run, and asserts the exposition carries the expected histogram
# families — the end-to-end check that PromSink, the -metrics flag, and
# the hot-path instrumentation hang together outside of unit tests.
# -workers 1 keeps the sweep serial so level 0's stages have all closed
# (and are scrapeable) while level 1 is still running.
metrics-smoke:
	go run ./cmd/tpitables -circuits s38417c -scale 0.25 -levels 0,1 -workers 1 -table 1 -metrics localhost:9341 & \
	pid=$$!; \
	scraped=0; \
	for i in $$(seq 1 600); do \
		if curl -sf http://localhost:9341/metrics -o metrics-smoke.txt 2>/dev/null && \
			grep -q tpilayout_route_net_ns metrics-smoke.txt && \
			grep -q tpilayout_atpg_podem_ns metrics-smoke.txt; then scraped=1; break; fi; \
		sleep 0.2; \
	done; \
	wait $$pid || { echo "metrics-smoke: sweep failed"; exit 1; }; \
	test $$scraped = 1 || { echo "metrics-smoke: live scrape never saw the histogram families"; exit 1; }; \
	for fam in tpilayout_spans_total tpilayout_stage_duration_ns_bucket tpilayout_stage_last_duration_ns \
		tpilayout_atpg_podem_ns tpilayout_atpg_sim_batch_ns tpilayout_place_fm_cut_delta tpilayout_route_net_ns; do \
		grep -q "$$fam" metrics-smoke.txt || { echo "metrics-smoke: missing family $$fam"; cat metrics-smoke.txt; exit 1; }; \
	done; \
	echo "metrics-smoke: live scrape OK, all families present"

# service-smoke is the daemon CI gate: tpid is started for real, a
# reduced-scale s38417c sweep is submitted over HTTP with curl, the
# result endpoint must come back 200 with complete tables, an identical
# resubmission must be answered as a cache hit without a second flow,
# and /metrics must expose the service-level families next to the flow
# ones. SIGTERM then drains the daemon and it must exit cleanly.
service-smoke:
	go build -o tpid-smoke ./cmd/tpid
	@set -e; \
	./tpid-smoke -addr localhost:9352 -workers 2 -flow-workers 2 & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	up=0; for i in $$(seq 1 100); do \
		curl -sf http://localhost:9352/healthz >/dev/null 2>&1 && { up=1; break; }; sleep 0.1; \
	done; \
	test $$up = 1 || { echo "service-smoke: tpid never came up"; exit 1; }; \
	body='{"tenant":"smoke","circuit":{"spec":"s38417c","scale":0.05},"tp_levels":[0,2],"flow":{"experiment":"s38417c"}}'; \
	id=$$(curl -sf -X POST -d "$$body" http://localhost:9352/v1/jobs | sed -n 's/.*"id": "\([^"]*\)".*/\1/p'); \
	test -n "$$id" || { echo "service-smoke: submission rejected"; exit 1; }; \
	echo "service-smoke: job $$id submitted"; \
	ok=0; for i in $$(seq 1 600); do \
		if curl -sf http://localhost:9352/v1/jobs/$$id/result -o service-smoke.json 2>/dev/null; then ok=1; break; fi; \
		sleep 0.5; \
	done; \
	test $$ok = 1 || { echo "service-smoke: result never became ready"; exit 1; }; \
	grep -q '"complete": true' service-smoke.json || { echo "service-smoke: sweep incomplete"; cat service-smoke.json; exit 1; }; \
	grep -q 'Table 1: Impact of TPI' service-smoke.json || { echo "service-smoke: result carries no Table 1"; exit 1; }; \
	curl -sf -X POST -d "$$body" http://localhost:9352/v1/jobs | grep -q '"cache_hit": true' \
		|| { echo "service-smoke: identical resubmission was not a cache hit"; exit 1; }; \
	curl -sf http://localhost:9352/metrics -o service-smoke-metrics.txt; \
	for fam in tpid_service_jobs_submitted_total tpid_service_flow_runs_total tpid_service_jobs_done_total \
		tpid_service_cache_hit_jobs_total tpid_service_queue_wait_ns tpid_spans_total; do \
		grep -q "$$fam" service-smoke-metrics.txt || { echo "service-smoke: /metrics missing $$fam"; cat service-smoke-metrics.txt; exit 1; }; \
	done; \
	kill -TERM $$pid; wait $$pid || { echo "service-smoke: drain exited non-zero"; exit 1; }; \
	trap - EXIT; \
	echo "service-smoke: submit, result, cache hit, metrics, drain all OK"

# flight-smoke is the correlated-observability CI gate: tpid runs with
# JSON logs, a job is submitted under a client X-Request-ID, and one
# run_id must then be visible in the status API, the JSON log, the
# /debug/flight dump (which tracestat -flight must parse, with service
# and log sections), and the per-tenant SLO families on /metrics.
# SIGQUIT must dump the flight recorder WITHOUT killing the daemon;
# SIGTERM must still drain cleanly afterwards.
flight-smoke:
	go build -o tpid-smoke ./cmd/tpid
	go build -o tracestat-smoke ./cmd/tracestat
	@set -e; \
	./tpid-smoke -addr localhost:9353 -workers 2 -flow-workers 2 -log-format json >flight-smoke.log 2>&1 & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	up=0; for i in $$(seq 1 100); do \
		curl -sf http://localhost:9353/healthz >/dev/null 2>&1 && { up=1; break; }; sleep 0.1; \
	done; \
	test $$up = 1 || { echo "flight-smoke: tpid never came up"; cat flight-smoke.log; exit 1; }; \
	body='{"tenant":"smoke","circuit":{"spec":"s38417c","scale":0.05},"tp_levels":[0,2],"flow":{"experiment":"s38417c"}}'; \
	id=$$(curl -sf -X POST -H 'X-Request-ID: flight-smoke-001' -d "$$body" http://localhost:9353/v1/jobs \
		| sed -n 's/.*"id": "\([^"]*\)".*/\1/p'); \
	test "$$id" = flight-smoke-001 || { echo "flight-smoke: X-Request-ID not honored (got '$$id')"; exit 1; }; \
	ok=0; for i in $$(seq 1 600); do \
		curl -sf http://localhost:9353/v1/jobs/$$id/result -o /dev/null 2>/dev/null && { ok=1; break; }; sleep 0.5; \
	done; \
	test $$ok = 1 || { echo "flight-smoke: result never became ready"; exit 1; }; \
	run=$$(curl -sf http://localhost:9353/v1/jobs/$$id | sed -n 's/.*"run_id": "\([^"]*\)".*/\1/p'); \
	test -n "$$run" || { echo "flight-smoke: status carries no run_id"; exit 1; }; \
	echo "flight-smoke: job $$id ran as $$run"; \
	grep -q "\"run_id\":\"$$run\"" flight-smoke.log || { echo "flight-smoke: JSON log not correlated with $$run"; tail -5 flight-smoke.log; exit 1; }; \
	curl -sf http://localhost:9353/debug/flight -o flight-smoke.ndjson; \
	grep -q "$$run" flight-smoke.ndjson || { echo "flight-smoke: flight dump not correlated with $$run"; exit 1; }; \
	./tracestat-smoke -flight flight-smoke.ndjson >flight-smoke-stat.txt \
		|| { echo "flight-smoke: tracestat rejected the dump"; cat flight-smoke-stat.txt; exit 1; }; \
	grep -q 'service: .* observation' flight-smoke-stat.txt || { echo "flight-smoke: no service section"; cat flight-smoke-stat.txt; exit 1; }; \
	grep -q 'logs: .* record' flight-smoke-stat.txt || { echo "flight-smoke: no log section"; cat flight-smoke-stat.txt; exit 1; }; \
	curl -sf http://localhost:9353/metrics | grep -q 'tpid_service_tenant_jobs_done_total{stage="service",tenant="smoke"}' \
		|| { echo "flight-smoke: tenant SLO family missing from /metrics"; exit 1; }; \
	kill -QUIT $$pid; sleep 1; \
	kill -0 $$pid 2>/dev/null || { echo "flight-smoke: SIGQUIT killed the daemon"; exit 1; }; \
	grep -q -- '--- tpid flight dump (sigquit' flight-smoke.log || { echo "flight-smoke: SIGQUIT produced no dump"; tail -5 flight-smoke.log; exit 1; }; \
	kill -TERM $$pid; wait $$pid || { echo "flight-smoke: drain exited non-zero"; exit 1; }; \
	trap - EXIT; \
	echo "flight-smoke: correlation, flight dump, tenant SLOs, SIGQUIT all OK"

# history-smoke is the run-history CI gate: tpid runs with an archive
# and per-run profiling, the same budgeted job (atpg_budget_ms makes it
# non-cacheable, so the repeat executes a real flow) is submitted twice,
# and then: both runs must be archived, the archived trace must gunzip
# and pass tracestat via stdin, the second run's diff against the first
# must say no-regression, tpid_service_regression_total must scrape as
# zero, and the captured CPU profile must carry run_id/stage pprof
# labels. -max-regress 75 keeps shared-CI timing jitter out of the gate.
history-smoke:
	go build -o tpid-smoke ./cmd/tpid
	go build -o tracestat-smoke ./cmd/tracestat
	@set -e; \
	rm -rf history-smoke-data; \
	./tpid-smoke -addr localhost:9354 -workers 2 -flow-workers 2 -data-dir history-smoke-data \
		-profile-runs -max-regress 75 >history-smoke.log 2>&1 & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	up=0; for i in $$(seq 1 100); do \
		curl -sf http://localhost:9354/healthz >/dev/null 2>&1 && { up=1; break; }; sleep 0.1; \
	done; \
	test $$up = 1 || { echo "history-smoke: tpid never came up"; cat history-smoke.log; exit 1; }; \
	body='{"tenant":"smoke","circuit":{"spec":"s38417c","scale":0.05},"tp_levels":[0,2],"flow":{"experiment":"s38417c","atpg_budget_ms":600000}}'; \
	run=""; \
	for attempt in 1 2; do \
		id=$$(curl -sf -X POST -d "$$body" http://localhost:9354/v1/jobs | sed -n 's/.*"id": "\([^"]*\)".*/\1/p'); \
		test -n "$$id" || { echo "history-smoke: submission $$attempt rejected"; exit 1; }; \
		ok=0; for i in $$(seq 1 600); do \
			curl -sf http://localhost:9354/v1/jobs/$$id/result -o /dev/null 2>/dev/null && { ok=1; break; }; sleep 0.5; \
		done; \
		test $$ok = 1 || { echo "history-smoke: job $$attempt never finished"; exit 1; }; \
		run=$$(curl -sf http://localhost:9354/v1/jobs/$$id | sed -n 's/.*"run_id": "\([^"]*\)".*/\1/p'); \
		test -n "$$run" || { echo "history-smoke: job $$attempt carries no run_id (cache hit?)"; exit 1; }; \
		arch=0; for i in $$(seq 1 100); do \
			curl -sf http://localhost:9354/v1/runs/$$run -o history-smoke-run$$attempt.json 2>/dev/null && { arch=1; break; }; sleep 0.1; \
		done; \
		test $$arch = 1 || { echo "history-smoke: run $$run never archived"; exit 1; }; \
		echo "history-smoke: run $$attempt archived as $$run"; \
	done; \
	grep -q '"verdict": "no-baseline"' history-smoke-run1.json \
		|| { echo "history-smoke: first run should have no baseline"; cat history-smoke-run1.json; exit 1; }; \
	curl -sf http://localhost:9354/v1/runs/$$run/trace | gunzip -c | ./tracestat-smoke - >history-smoke-stat.txt \
		|| { echo "history-smoke: archived trace failed tracestat"; cat history-smoke-stat.txt; exit 1; }; \
	curl -sf http://localhost:9354/v1/runs/$$run/diff -o history-smoke-diff.json; \
	grep -q '"verdict": "no-regression"' history-smoke-diff.json \
		|| { echo "history-smoke: rerun diff is not clean"; cat history-smoke-diff.json; exit 1; }; \
	curl -sf http://localhost:9354/metrics -o history-smoke-metrics.txt; \
	grep -q 'tpid_service_regression_total' history-smoke-metrics.txt \
		|| { echo "history-smoke: regression counter family missing"; exit 1; }; \
	if grep 'tpid_service_regression_total{' history-smoke-metrics.txt | grep -qv ' 0$$'; then \
		echo "history-smoke: regression counter moved on identical reruns"; \
		grep tpid_service_regression history-smoke-metrics.txt; exit 1; \
	fi; \
	grep -q 'tpid_service_runs_archived_total' history-smoke-metrics.txt \
		|| { echo "history-smoke: archive counters missing from /metrics"; exit 1; }; \
	curl -sf http://localhost:9354/v1/runs/$$run/profile -o history-smoke.pprof \
		|| { echo "history-smoke: no archived CPU profile"; exit 1; }; \
	gunzip -c history-smoke.pprof | grep -aq run_id || { echo "history-smoke: profile lacks run_id label"; exit 1; }; \
	gunzip -c history-smoke.pprof | grep -aq stage || { echo "history-smoke: profile lacks stage label"; exit 1; }; \
	kill -TERM $$pid; wait $$pid || { echo "history-smoke: drain exited non-zero"; exit 1; }; \
	trap - EXIT; \
	echo "history-smoke: archive, trace, clean diff, zero counter, labeled profile all OK"

# crash-smoke is the durability CI gate: TestCrashRestartResumesSweep
# builds the real tpid binary, starts it with a journal directory,
# SIGKILLs it the moment the first sweep-level checkpoint is durable,
# restarts it on the same directory, and requires the resumed job to
# finish with tables byte-identical to the committed golden — having
# re-run only the levels that never checkpointed.
crash-smoke:
	go test -run 'TestCrashRestartResumesSweep' -count=1 -v .

# chaos runs the seeded fault-injection recovery suite under the race
# detector: 200 seeds of level panics, journal append faults, abrupt
# kills, cancels, and torn segment tails, each followed by a restart
# that must satisfy the recovery invariants (no double retirement, no
# lost jobs on an intact journal, retry budgets respected, clean fold).
chaos:
	go test -race -run 'TestChaosRecoveryInvariants' -count=1 ./internal/service/
