# Convenience targets; everything is plain `go` underneath.

BENCH_PATTERN ?= BenchmarkTable1_|BenchmarkTable2_S38417|BenchmarkTable3_S38417|BenchmarkSweepSerial|BenchmarkSweepParallel
BENCH_SECTION ?= current
BENCH_OUT     ?= BENCH_PR3.json

TRACE_OUT ?= trace.ndjson

.PHONY: test race bench bench-json bench-smoke trace-smoke

test:
	go build ./... && go vet ./... && go test ./...

race:
	go test -race ./...

bench:
	go test -run xxx -bench '$(BENCH_PATTERN)' -benchtime=3x -benchmem .

# bench-json records the tracked benchmarks (Tables 1-3 + the sweep,
# ns/op and allocs/op) into the $(BENCH_OUT) ledger under
# $(BENCH_SECTION). Record a pre-change "baseline" section first, then a
# "current" section after, and diff with `go run ./cmd/benchjson -list`.
bench-json:
	go test -run xxx -bench '$(BENCH_PATTERN)' -benchtime=3x -benchmem . \
		| tee /dev/stderr \
		| go run ./cmd/benchjson -out $(BENCH_OUT) -section $(BENCH_SECTION)

# bench-smoke is the CI gate: one iteration of the full-circuit Table 1
# benchmark, race detector off, failing on any panic.
bench-smoke:
	go test -run xxx -bench BenchmarkTable1 -benchtime=1x -benchmem .

# trace-smoke is the observability CI gate: one traced s38417 run at
# reduced scale, then tracestat over the trace — which exits non-zero if
# any span is unbalanced. $(TRACE_OUT) is left behind for archiving.
trace-smoke:
	go run ./cmd/tpiflow -circuit s38417c -scale 0.25 -tp 1 -trace $(TRACE_OUT) -progress
	go run ./cmd/tracestat $(TRACE_OUT)
