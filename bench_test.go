package tpilayout

// The benchmark harness regenerates every table and figure of the paper's
// evaluation section:
//
//	BenchmarkTable1_*  — Table 1 (test data: FC/FE, patterns, TDV, TAT)
//	BenchmarkTable2_*  — Table 2 (silicon area: rows, core, filler, chip, wires)
//	BenchmarkTable3_*  — Table 3 (timing: Tcp and its Eq. 3 split, Fmax)
//	BenchmarkFigure3   — the three layout views
//
// plus ablation benches for the design choices discussed in the paper:
//
//	BenchmarkAblationCPExclusion  — TPI with vs. without critical-path exclusion (§5)
//	BenchmarkAblationReorder      — layout-driven scan reordering vs. netlist order (flow step 3)
//	BenchmarkAblationTPBudget     — pattern count vs. TP% ("levels off" observation)
//	BenchmarkAblationDynamicCompaction — pattern compaction machinery on/off
//
// The circuits default to a reduced scale so `go test -bench=.` finishes
// in minutes; set TPI_BENCH_SCALE (e.g. 1.0) to run the paper-size
// circuits. Key quantities are attached to the benchmark output via
// ReportMetric, and the rendered tables are logged.

import (
	"fmt"
	"math"
	"os"
	"strconv"
	"testing"

	"tpilayout/internal/layoutviz"
	"tpilayout/internal/scan"
	"tpilayout/internal/tpi"
)

// tpilayoutInsertTPs replays flow step 1's TPI for the reorder ablation.
func tpilayoutInsertTPs(n *Netlist, cfg Config) (*tpi.Result, error) {
	count := int(math.Round(cfg.TPPercent / 100 * float64(n.NumFlipFlops())))
	return tpi.Insert(n, tpi.Options{Count: count})
}

// benchScale returns the circuit scale for benches (default 0.08).
func benchScale() float64 {
	if s := os.Getenv("TPI_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.08
}

var benchLevels = []float64{0, 1, 3, 5}

// benchDesign builds a bench circuit at the bench scale.
func benchDesign(b *testing.B, name string) (*Netlist, Config) {
	b.Helper()
	spec, err := SpecByName(name)
	if err != nil {
		b.Fatal(err)
	}
	if s := benchScale(); s != 1.0 {
		spec = spec.Scale(s)
	}
	design, err := Generate(spec, DefaultLibrary())
	if err != nil {
		b.Fatal(err)
	}
	return design, ExperimentConfig(name)
}

// reduction returns the percentage drop from the first to the last row.
func reduction(first, last float64) float64 {
	if first == 0 {
		return 0
	}
	return 100 * (first - last) / first
}

func benchTable1(b *testing.B, circuit string) {
	// The heavy circuits dominate a full bench run (DSPCore is ~85 s/op
	// at the default scale); -short keeps the Table-1 pass to the
	// s38417-class circuit so `go test -short -bench .` stays a smoke.
	if testing.Short() && circuit != "s38417c" {
		b.Skipf("%s Table-1 sweep skipped in -short (slow at default scale)", circuit)
	}
	design, cfg := benchDesign(b, circuit)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := Sweep(design, cfg, benchLevels)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(float64(rows[0].Patterns), "patterns_base")
		b.ReportMetric(float64(last.Patterns), "patterns_tp5")
		b.ReportMetric(reduction(float64(rows[0].TDV), float64(last.TDV)), "TDVdec_%")
		b.ReportMetric(last.FC-rows[0].FC, "FCdelta_pp")
		if i == 0 {
			b.Log("\n" + FormatTable1(rows))
		}
	}
}

func benchTable2(b *testing.B, circuit string) {
	design, cfg := benchDesign(b, circuit)
	b.ReportAllocs()
	cfg.SkipATPG = true
	for i := 0; i < b.N; i++ {
		rows, err := Sweep(design, cfg, benchLevels)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(-reduction(rows[0].CoreArea, last.CoreArea), "coreInc_%_tp5")
		b.ReportMetric(-reduction(rows[0].ChipArea, last.ChipArea), "chipInc_%_tp5")
		b.ReportMetric(last.FillerPct, "filler_%")
		if i == 0 {
			b.Log("\n" + FormatTable2(rows))
		}
	}
}

func benchTable3(b *testing.B, circuit string) {
	design, cfg := benchDesign(b, circuit)
	b.ReportAllocs()
	cfg.SkipATPG = true
	for i := 0; i < b.N; i++ {
		rows, err := Sweep(design, cfg, benchLevels)
		if err != nil {
			b.Fatal(err)
		}
		first, last := rows[0].Timing[0], rows[len(rows)-1].Timing[0]
		b.ReportMetric(-reduction(first.TcpPS, last.TcpPS), "TcpInc_%_tp5")
		b.ReportMetric(last.FmaxMHz, "Fmax_MHz_tp5")
		b.ReportMetric(float64(last.TPOnPath), "TPonPath_tp5")
		if i == 0 {
			b.Log("\n" + FormatTable3(rows))
		}
	}
}

func BenchmarkTable1_S38417(b *testing.B)       { benchTable1(b, "s38417c") }
func BenchmarkTable1_WirelessCtrl(b *testing.B) { benchTable1(b, "wctrl1") }
func BenchmarkTable1_DSPCore(b *testing.B)      { benchTable1(b, "p26909c") }

func BenchmarkTable2_S38417(b *testing.B)       { benchTable2(b, "s38417c") }
func BenchmarkTable2_WirelessCtrl(b *testing.B) { benchTable2(b, "wctrl1") }
func BenchmarkTable2_DSPCore(b *testing.B)      { benchTable2(b, "p26909c") }

func BenchmarkTable3_S38417(b *testing.B)       { benchTable3(b, "s38417c") }
func BenchmarkTable3_WirelessCtrl(b *testing.B) { benchTable3(b, "wctrl1") }
func BenchmarkTable3_DSPCore(b *testing.B)      { benchTable3(b, "p26909c") }

// BenchmarkFigure3 reproduces the three layout views of Figure 3.
func BenchmarkFigure3(b *testing.B) {
	design, cfg := benchDesign(b, "s38417c")
	b.ReportAllocs()
	cfg.TPPercent = 1
	cfg.SkipATPG = true
	for i := 0; i < b.N; i++ {
		res, err := Run(design, cfg)
		if err != nil {
			b.Fatal(err)
		}
		total := 0
		for _, st := range []layoutviz.Stage{layoutviz.StageFloorplan, layoutviz.StagePlacement, layoutviz.StageRouted} {
			total += len(layoutviz.SVG(res.Place, res.Route, st, layoutviz.Options{}))
		}
		b.ReportMetric(float64(total), "svg_bytes")
	}
}

// BenchmarkAblationCPExclusion compares timing impact of TPI with and
// without critical-path exclusion (the Section 5 technique): exclusion
// should recover part of the Tcp increase.
func BenchmarkAblationCPExclusion(b *testing.B) {
	design, cfg := benchDesign(b, "s38417c")
	b.ReportAllocs()
	cfg.SkipATPG = true
	for i := 0; i < b.N; i++ {
		base, err := Run(design, cfg)
		if err != nil {
			b.Fatal(err)
		}
		free := cfg
		free.TPPercent = 3
		withTP, err := Run(design, free)
		if err != nil {
			b.Fatal(err)
		}
		ex, err := CriticalNets(design, cfg)
		if err != nil {
			b.Fatal(err)
		}
		excl := free
		excl.ExcludeNets = ex
		withExcl, err := Run(design, excl)
		if err != nil {
			b.Fatal(err)
		}
		t0 := base.Metrics.Timing[0].TcpPS
		b.ReportMetric(-reduction(t0, withTP.Metrics.Timing[0].TcpPS), "TcpInc_%_noExcl")
		b.ReportMetric(-reduction(t0, withExcl.Metrics.Timing[0].TcpPS), "TcpInc_%_excl")
		b.ReportMetric(float64(withExcl.Metrics.Timing[0].TPOnPath), "TPonPath_excl")
	}
}

// BenchmarkAblationReorder quantifies the wire length saved by the
// layout-driven scan chain reordering of flow step 3.
func BenchmarkAblationReorder(b *testing.B) {
	design, cfg := benchDesign(b, "s38417c")
	b.ReportAllocs()
	cfg.SkipATPG = true
	cfg.TPPercent = 1
	for i := 0; i < b.N; i++ {
		res, err := Run(design, cfg)
		if err != nil {
			b.Fatal(err)
		}
		// Reconstruct the pre-reorder (netlist-order) chain wire length
		// on the same placement.
		n := design.Clone()
		tps, err := tpilayoutInsertTPs(n, cfg)
		if err != nil {
			b.Fatal(err)
		}
		sc, err := scan.Insert(n, tps, cfg.Scan)
		if err != nil {
			b.Fatal(err)
		}
		naive := scan.WireLength(sc, res.Place.Pos)
		ordered := scan.WireLength(res.Scan, res.Place.Pos)
		b.ReportMetric(naive, "chainWL_netlistOrder_um")
		b.ReportMetric(ordered, "chainWL_reordered_um")
		b.ReportMetric(reduction(naive, ordered), "WLsaved_%")
	}
}

// BenchmarkAblationTPBudget traces pattern count against the TP budget,
// the paper's "inserting 1% to 3% test points usually is sufficient"
// observation: the curve must flatten.
func BenchmarkAblationTPBudget(b *testing.B) {
	design, cfg := benchDesign(b, "s38417c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := Sweep(design, cfg, []float64{0, 1, 2, 3, 4, 5})
		if err != nil {
			b.Fatal(err)
		}
		var out string
		for _, m := range rows {
			out += fmt.Sprintf(" %d:%d", m.NumTP, m.Patterns)
		}
		first := reduction(float64(rows[0].Patterns), float64(rows[2].Patterns)) // by 2%
		total := reduction(float64(rows[0].Patterns), float64(rows[5].Patterns)) // by 5%
		b.ReportMetric(first, "patDec_%_by2pct")
		b.ReportMetric(total, "patDec_%_by5pct")
		if i == 0 {
			b.Log("patterns per TP count:" + out)
		}
	}
}

// BenchmarkAblationDynamicCompaction isolates how much of the compact
// pattern set comes from dynamic compaction.
func BenchmarkAblationDynamicCompaction(b *testing.B) {
	design, cfg := benchDesign(b, "s38417c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		on := cfg
		on.TPPercent = 0
		rOn, err := Run(design, on)
		if err != nil {
			b.Fatal(err)
		}
		off := on
		off.ATPG.NoDynamicCompaction = true
		rOff, err := Run(design, off)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rOn.Metrics.Patterns), "patterns_dyncomp")
		b.ReportMetric(float64(rOff.Metrics.Patterns), "patterns_nodyncomp")
	}
}

// benchSweepWorkers runs the full Table-1 sweep (ATPG included) at a
// fixed worker count, so the Serial/Parallel pair below measures the
// speedup of the two-tier concurrency (per-TP% layouts + fault shards).
func benchSweepWorkers(b *testing.B, workers int) {
	design, cfg := benchDesign(b, "s38417c")
	b.ReportAllocs()
	cfg.Workers = workers
	for i := 0; i < b.N; i++ {
		rows, err := Sweep(design, cfg, benchLevels)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[len(rows)-1].Patterns), "patterns_tp5")
	}
}

func BenchmarkSweepSerial(b *testing.B)   { benchSweepWorkers(b, 1) }
func BenchmarkSweepParallel(b *testing.B) { benchSweepWorkers(b, 0) }

// benchSweepMode runs the full Table-1 sweep (ATPG included) in the
// given sweep mode at a fixed worker count, so the Full/Chained pair
// below isolates the incremental cross-level engine (TPI resume,
// incremental relevel) against the full-rerun oracle on identical
// inputs, and the Memo variant adds cross-level PODEM replay on top.
// All three produce bit-identical tables — the trio measures wall clock
// only. Memo is the documented net-negative at this sweep's 0/1/3/5
// spacing (TSFF retrofits invalidate nearly every recorded search); it
// is kept in the ledger so the regression direction stays visible.
func benchSweepMode(b *testing.B, mode SweepMode, memo bool) {
	design, cfg := benchDesign(b, "s38417c")
	b.ReportAllocs()
	cfg.Workers = 1
	cfg.SweepMode = mode
	cfg.ATPGMemo = memo
	for i := 0; i < b.N; i++ {
		rows, err := Sweep(design, cfg, benchLevels)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[len(rows)-1].Patterns), "patterns_tp5")
	}
}

func BenchmarkSweepIncremental_Full(b *testing.B)    { benchSweepMode(b, SweepFull, false) }
func BenchmarkSweepIncremental_Chained(b *testing.B) { benchSweepMode(b, SweepIncremental, false) }
func BenchmarkSweepIncremental_Memo(b *testing.B)    { benchSweepMode(b, SweepIncremental, true) }

// benchFaultSimWorkers isolates the fault-simulation sharding: a single
// layout (no sweep-level fan-out) with the ATPG fault list split across
// the given number of FaultSim shards.
func benchFaultSimWorkers(b *testing.B, workers int) {
	design, cfg := benchDesign(b, "s38417c")
	b.ReportAllocs()
	cfg.TPPercent = 1
	cfg.ATPG.Workers = workers
	for i := 0; i < b.N; i++ {
		res, err := Run(design, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Metrics.Patterns), "patterns")
	}
}

func BenchmarkFaultSimSerial(b *testing.B)   { benchFaultSimWorkers(b, 1) }
func BenchmarkFaultSimParallel(b *testing.B) { benchFaultSimWorkers(b, 0) }

// BenchmarkAblationTimingOpt runs the Section 5 timing-optimization
// design iterations: speed recovered after TPI, paid for with core area.
func BenchmarkAblationTimingOpt(b *testing.B) {
	design, cfg := benchDesign(b, "s38417c")
	b.ReportAllocs()
	cfg.SkipATPG = true
	cfg.TPPercent = 3
	for i := 0; i < b.N; i++ {
		plain, err := Run(design, cfg)
		if err != nil {
			b.Fatal(err)
		}
		optCfg := cfg
		optCfg.TimingOptRounds = 3
		opt, err := Run(design, optCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(plain.Metrics.Timing[0].TcpPS, "Tcp_ps_areaOnly")
		b.ReportMetric(opt.Metrics.Timing[0].TcpPS, "Tcp_ps_timingOpt")
		b.ReportMetric(100*(opt.Metrics.CoreArea-plain.Metrics.CoreArea)/plain.Metrics.CoreArea, "coreCost_%")
	}
}
