package tpilayout

// Cancellation determinism suite: the supervision layer must make
// cancellation safe (no leaks, no torn results), prompt (within one work
// unit), and invisible when unused (an uncancelled run still matches the
// golden table byte for byte). CI runs this file under -race.

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tpilayout/internal/flow"
)

// cancelDesign is the shared small design of this suite, built once.
func cancelDesign(t *testing.T) *Netlist {
	t.Helper()
	design, err := Generate(S38417Class().Scale(0.05), DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	return design
}

// checkNoGoroutineLeak polls until the goroutine count settles back to the
// baseline (the stand-in for goleak, which this module does not vendor).
func checkNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutine leak after cancelled sweep: %d before, %d after", before, runtime.NumGoroutine())
}

// TestSweepCancelAtRandomPoints cancels SweepPartial at randomized stage
// boundaries across several worker counts. Whatever the cancellation
// point, every level must come back either fully written (valid Metrics)
// or cleanly failed with the context's error — never a torn row — and no
// worker goroutine may outlive the call.
func TestSweepCancelAtRandomPoints(t *testing.T) {
	design := cancelDesign(t)
	levels := []float64{0, 2, 5}
	rng := rand.New(rand.NewSource(38417))

	for _, workers := range []int{1, 2, 8} {
		for trial := 0; trial < 3; trial++ {
			before := runtime.NumGoroutine()
			ctx, cancel := context.WithCancel(context.Background())

			cfg := ExperimentConfig("s38417c")
			cfg.SkipATPG = true // physical flow only: keeps each trial fast
			cfg.Workers = workers
			// Cancel when the fleet has crossed cancelAt stage entries in
			// total — a different randomized point inside the sweep each
			// trial (0 = cancelled before any stage runs).
			cancelAt := int64(rng.Intn(12))
			var entered atomic.Int64
			cfg.StageHook = func(stage string, tpPercent float64) {
				if entered.Add(1) > cancelAt {
					cancel()
				}
			}

			out, err := SweepPartial(ctx, design, cfg, levels)
			cancel()
			if err != nil {
				t.Fatalf("workers=%d trial=%d: sweep-level error %v", workers, trial, err)
			}
			if len(out) != len(levels) {
				t.Fatalf("workers=%d trial=%d: %d results for %d levels", workers, trial, len(out), len(levels))
			}
			for i, lr := range out {
				if lr.TPPercent != levels[i] {
					t.Errorf("workers=%d trial=%d: result %d carries %g%%, want %g%%",
						workers, trial, i, lr.TPPercent, levels[i])
				}
				if lr.Err != nil {
					if !errors.Is(lr.Err, context.Canceled) {
						t.Errorf("workers=%d trial=%d level %g: unexpected error %v",
							workers, trial, lr.TPPercent, lr.Err)
					}
					var se *StageError
					if !errors.As(lr.Err, &se) {
						t.Errorf("workers=%d trial=%d level %g: cancellation not wrapped in StageError: %v",
							workers, trial, lr.TPPercent, lr.Err)
					}
					// A failed level must not carry half-written metrics.
					if lr.Metrics.Cells != 0 || lr.Metrics.Circuit != "" {
						t.Errorf("workers=%d trial=%d level %g: torn result — Err and Metrics both set",
							workers, trial, lr.TPPercent)
					}
					continue
				}
				// A completed level must be fully written.
				if lr.Metrics.Circuit == "" || lr.Metrics.Cells == 0 || lr.Metrics.ChipArea <= 0 {
					t.Errorf("workers=%d trial=%d level %g: incomplete metrics %+v",
						workers, trial, lr.TPPercent, lr.Metrics)
				}
			}
			checkNoGoroutineLeak(t, before)
		}
	}
}

// TestSweepCancelMidATPGReturnsPromptly cancels while ATPG is running —
// on an s38417-class circuit whose ATPG phase takes several seconds — and
// demands the whole sweep return within 2 seconds of the cancel: the
// cancellation checkpoints sit inside the per-fault loops, so a cancel
// lands within one work unit rather than one flow.
func TestSweepCancelMidATPGReturnsPromptly(t *testing.T) {
	design, err := Generate(S38417Class().Scale(0.2), DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	cfg := ExperimentConfig("s38417c")
	cfg.Workers = 2
	var armed atomic.Bool
	var cancelledAt atomic.Int64
	cfg.StageHook = func(stage string, tpPercent float64) {
		// Fire once, shortly after the first level reaches ATPG, so the
		// cancel lands inside the pattern-generation loops rather than at
		// a stage boundary.
		if stage == flow.StageATPG && armed.CompareAndSwap(false, true) {
			time.AfterFunc(50*time.Millisecond, func() {
				cancelledAt.Store(time.Now().UnixNano())
				cancel()
			})
		}
	}

	_, err = SweepContext(ctx, design, cfg, []float64{0, 2})
	returned := time.Now().UnixNano()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if at := cancelledAt.Load(); at > 0 {
		if lag := time.Duration(returned - at); lag > 2*time.Second {
			t.Fatalf("cancelled sweep took %v to return, want < 2s", lag)
		}
	}
}

// TestSweepUncancelledMatchesGolden proves the supervision layer is free
// when unused: a sweep through SweepContext with a live-but-never-
// cancelled context reproduces the committed golden tables byte for byte,
// at every worker count.
func TestSweepUncancelledMatchesGolden(t *testing.T) {
	want, err := os.ReadFile(filepath.Join(goldenDir, "sweep_s38417c.golden"))
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	design := cancelDesign(t)
	for _, workers := range []int{1, 2, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		cfg := ExperimentConfig("s38417c")
		cfg.Workers = workers
		rows, err := SweepContext(ctx, design, cfg, goldenLevels)
		cancel()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := FormatTable1(rows) + "\n" + FormatTable2(rows) + "\n" + FormatTable3(rows)
		if got != string(want) {
			t.Fatalf("workers=%d: supervised sweep drifted from golden table\n%s",
				workers, diffLines(string(want), got))
		}
	}
}

// TestSweepPanicLevelIsolated is the headline robustness scenario: one
// level of a sweep panics (induced through the stage hook) and the sweep
// still returns metrics for every other level, plus a StageError carrying
// the captured stack for the one that blew up. The process survives.
func TestSweepPanicLevelIsolated(t *testing.T) {
	design := cancelDesign(t)
	levels := []float64{0, 2, 5}

	cfg := ExperimentConfig("s38417c")
	cfg.SkipATPG = true
	cfg.Workers = 3
	cfg.StageHook = func(stage string, tpPercent float64) {
		if tpPercent == 2 && stage == flow.StagePlace {
			panic("induced placement failure at the 2% level")
		}
	}

	out, err := SweepPartial(context.Background(), design, cfg, levels)
	if err != nil {
		t.Fatal(err)
	}
	for _, lr := range out {
		if lr.TPPercent == 2 {
			if lr.Err == nil {
				t.Fatal("panicking level reported success")
			}
			var se *StageError
			if !errors.As(lr.Err, &se) {
				t.Fatalf("panicking level error %v is not a StageError", lr.Err)
			}
			if se.Stage != flow.StagePlace {
				t.Errorf("StageError.Stage = %q, want %q", se.Stage, flow.StagePlace)
			}
			if se.TPPercent != 2 {
				t.Errorf("StageError.TPPercent = %g, want 2", se.TPPercent)
			}
			if len(se.Stack) == 0 {
				t.Error("StageError.Stack empty — the panicking goroutine's stack was lost")
			}
			if !strings.Contains(lr.Err.Error(), "induced placement failure") {
				t.Errorf("error %q does not surface the panic value", lr.Err)
			}
			continue
		}
		if lr.Err != nil {
			t.Errorf("sibling level %g%% poisoned by the panicking level: %v", lr.TPPercent, lr.Err)
		}
		if lr.Metrics.Cells == 0 {
			t.Errorf("sibling level %g%% returned empty metrics", lr.TPPercent)
		}
	}

	// SweepContext over the same failing sweep must surface the first
	// failing level's error instead of rows.
	rows, err := SweepContext(context.Background(), design, cfg, levels)
	if err == nil || rows != nil {
		t.Fatal("SweepContext returned rows despite a failed level")
	}
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("SweepContext error %v does not wrap the StageError", err)
	}
}

// TestFlowDeadlineTruncatesNotFails: an expiring ATPG deadline degrades
// the run — every stage still executes, the result is valid, and the
// metrics carry the Truncated flag — instead of erroring out.
func TestFlowDeadlineTruncatesNotFails(t *testing.T) {
	design := cancelDesign(t)
	cfg := ExperimentConfig("s38417c")
	cfg.TPPercent = 2
	cfg.Deadline = time.Now().Add(-time.Second)

	res, err := RunContext(context.Background(), design, cfg)
	if err != nil {
		t.Fatalf("expired deadline must truncate, not fail: %v", err)
	}
	if !res.Truncated || !res.Metrics.Truncated {
		t.Fatalf("Truncated flags not set: result=%v metrics=%v", res.Truncated, res.Metrics.Truncated)
	}
	// The physical flow still completed: area and timing are real.
	if res.Metrics.ChipArea <= 0 || len(res.Metrics.Timing) == 0 {
		t.Errorf("truncated run lost its physical metrics: %+v", res.Metrics)
	}
	// FC/FE report only what the budget allowed (scan credit may still
	// cover shift-tested faults, but nothing may exceed 100).
	if res.Metrics.FC < 0 || res.Metrics.FC > 100 || res.Metrics.FE < res.Metrics.FC {
		t.Errorf("truncated coverage incoherent: FC %.2f FE %.2f", res.Metrics.FC, res.Metrics.FE)
	}

	// An unconstrained rerun of the same design must not be truncated.
	cfg.Deadline = time.Time{}
	res2, err := RunContext(context.Background(), design, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Truncated {
		t.Error("unconstrained run reported Truncated")
	}
	if res2.Metrics.FC < res.Metrics.FC {
		t.Errorf("full run FC %.2f below truncated FC %.2f", res2.Metrics.FC, res.Metrics.FC)
	}
}
