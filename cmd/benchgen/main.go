// Command benchgen emits the synthetic benchmark circuits in ISCAS-style
// ".bench" form, so they can be inspected or consumed by other tools.
//
// Usage:
//
//	benchgen -circuit p26909c -scale 0.5 > p26909c.bench
package main

import (
	"bufio"
	"flag"
	"log"
	"os"

	"tpilayout"
	"tpilayout/internal/circuitgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchgen: ")
	circuit := flag.String("circuit", "s38417c", "circuit profile")
	scale := flag.Float64("scale", 1.0, "circuit size scale factor")
	flag.Parse()

	spec, err := tpilayout.SpecByName(*circuit)
	if err != nil {
		log.Fatal(err)
	}
	if *scale != 1.0 {
		spec = spec.Scale(*scale)
	}
	design, err := tpilayout.Generate(spec, tpilayout.DefaultLibrary())
	if err != nil {
		log.Fatal(err)
	}
	w := bufio.NewWriter(os.Stdout)
	if err := circuitgen.WriteBench(w, design); err != nil {
		log.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
}
