// Command benchjson converts `go test -bench` output into a
// machine-readable JSON ledger, so benchmark runs can be recorded,
// diffed, and gated in CI without scraping text.
//
// It reads benchmark output on stdin and merges one named section into
// the output file (creating it if absent), keeping every other section
// intact — the intended use is one section per snapshot:
//
//	go test -run xxx -bench 'BenchmarkTable1_' -benchmem . |
//	    go run ./cmd/benchjson -out BENCH_PR3.json -section current
//
// Standard units (ns/op, B/op, allocs/op) get first-class fields; every
// extra ReportMetric unit lands in the metrics map verbatim.
//
// With -trace, the input is an NDJSON span trace (tpiflow -trace ...)
// instead of benchmark text: each flow stage becomes a Stage/<name>
// entry whose ns_per_op is the stage's mean wall time per run and whose
// metrics carry the stage's counter totals — so per-stage layout/ATPG
// timings live in the same ledger, diffable across snapshots like any
// benchmark:
//
//	tpiflow -circuit s38417c -trace run.ndjson
//	go run ./cmd/benchjson -trace run.ndjson -out BENCH_PR4.json -section stages
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"tpilayout"
)

// Entry is one benchmark's numbers within a section.
type Entry struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// cpuSuffix strips the -<GOMAXPROCS> tail go test appends to names.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

func parse(lines *bufio.Scanner) (map[string]Entry, error) {
	out := map[string]Entry{}
	for lines.Scan() {
		line := strings.TrimSpace(lines.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a RUN/--- line, not a result row
		}
		e := Entry{Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q in %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				e.NsPerOp = val
			case "B/op":
				e.BytesPerOp = val
			case "allocs/op":
				e.AllocsPerOp = val
			default:
				if e.Metrics == nil {
					e.Metrics = map[string]float64{}
				}
				e.Metrics[unit] = val
			}
		}
		out[cpuSuffix.ReplaceAllString(fields[0], "")] = e
	}
	return out, lines.Err()
}

// parseTrace turns an NDJSON span trace into ledger entries: one
// Stage/<name> per flow stage (iterations = number of runs covering the
// stage, ns_per_op = mean stage wall time per run, metrics = mean
// counter values), plus Stage/run for the whole-flow total.
func parseTrace(path string) (map[string]Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	trace, err := tpilayout.ParseTrace(f)
	if err != nil {
		return nil, err
	}
	if !trace.Balanced() {
		return nil, fmt.Errorf("%s: unbalanced trace (span ids %v)", path, trace.Unbalanced)
	}
	runIDs := map[int64]bool{}
	for _, s := range trace.Spans {
		if s.Stage == "run" {
			runIDs[s.ID] = true
		}
	}
	type acc struct {
		n        int64
		ns       float64
		counters map[string]float64
	}
	stages := map[string]*acc{}
	for _, s := range trace.Spans {
		if s.Stage != "run" && !runIDs[s.Parent] {
			continue
		}
		a := stages[s.Stage]
		if a == nil {
			a = &acc{counters: map[string]float64{}}
			stages[s.Stage] = a
		}
		a.n++
		a.ns += float64(s.Duration)
		for c, v := range s.Counters {
			a.counters[c] += float64(v)
		}
	}
	if len(stages) == 0 {
		return nil, fmt.Errorf("%s: no run spans in trace", path)
	}
	out := map[string]Entry{}
	for st, a := range stages {
		e := Entry{Iterations: a.n, NsPerOp: a.ns / float64(a.n)}
		for c, v := range a.counters {
			if e.Metrics == nil {
				e.Metrics = map[string]float64{}
			}
			e.Metrics[c] = v / float64(a.n)
		}
		out["Stage/"+st] = e
	}
	return out, nil
}

func main() {
	outPath := flag.String("out", "BENCH_PR3.json", "JSON ledger to create or update")
	section := flag.String("section", "current", "section name to write (e.g. baseline, current)")
	list := flag.Bool("list", false, "print the ledger's sections and benchmarks instead of reading stdin")
	tracePath := flag.String("trace", "", "record per-stage durations from this NDJSON trace instead of reading benchmark text on stdin")
	flag.Parse()

	ledger := map[string]map[string]Entry{}
	if data, err := os.ReadFile(*outPath); err == nil {
		if err := json.Unmarshal(data, &ledger); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s is not a benchmark ledger: %v\n", *outPath, err)
			os.Exit(1)
		}
	}

	if *list {
		var sections []string
		for s := range ledger {
			sections = append(sections, s)
		}
		sort.Strings(sections)
		for _, s := range sections {
			var names []string
			for name := range ledger[s] {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				e := ledger[s][name]
				fmt.Printf("%s\t%s\t%.0f ns/op\t%.0f allocs/op\n", s, name, e.NsPerOp, e.AllocsPerOp)
			}
		}
		return
	}

	var entries map[string]Entry
	var err error
	if *tracePath != "" {
		entries, err = parseTrace(*tracePath)
	} else {
		entries, err = parse(bufio.NewScanner(os.Stdin))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines on stdin")
		os.Exit(1)
	}
	if ledger[*section] == nil {
		ledger[*section] = map[string]Entry{}
	}
	for name, e := range entries {
		ledger[*section][name] = e
	}

	data, err := json.MarshalIndent(ledger, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to section %q of %s\n", len(entries), *section, *outPath)
}
