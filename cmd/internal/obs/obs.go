// Package obs wires the shared observability surface (-trace,
// -progress, -pprof, -metrics) into the tpilayout command-line tools.
package obs

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // -pprof serves the default mux
	"os"
	"strings"
	"sync"

	"tpilayout"
)

// Flags holds the observability flag values shared by tpiflow and
// tpitables.
type Flags struct {
	Trace    string
	Progress bool
	Pprof    string
	Metrics  string
}

// Register installs -trace, -progress, -pprof, and -metrics on the
// default FlagSet. Call before flag.Parse.
func Register() *Flags {
	f := &Flags{}
	flag.StringVar(&f.Trace, "trace", "", "write an NDJSON span trace to this file (read it back with tracestat)")
	flag.BoolVar(&f.Progress, "progress", false, "print live per-stage progress lines to stderr")
	flag.StringVar(&f.Pprof, "pprof", "", "serve net/http/pprof plus live expvar counters on this address (e.g. localhost:6060)")
	flag.StringVar(&f.Metrics, "metrics", "", "serve a Prometheus /metrics exposition on this address (shares the -pprof listener when the addresses match)")
	return f
}

// LogFlags holds the structured-logging flag values shared by tpid,
// tpiflow, and tpitables.
type LogFlags struct {
	Format string
	Level  string
}

// RegisterLog installs -log-format and -log-level on the default
// FlagSet. Call before flag.Parse.
func RegisterLog() *LogFlags {
	f := &LogFlags{}
	flag.StringVar(&f.Format, "log-format", "text", "structured log format: text or json")
	flag.StringVar(&f.Level, "log-level", "info", "minimum log level: debug, info, warn, or error")
	return f
}

// Logger builds the structured logger the flags select, writing to w
// and forwarding records to the given sinks (e.g. a flight recorder).
func (f *LogFlags) Logger(w io.Writer, sinks ...tpilayout.TraceSink) (*tpilayout.Logger, error) {
	return tpilayout.NewLogger(w, f.Format, f.Level, sinks...)
}

// The process-wide /metrics surface. One PromSink serves every Tracer
// built in this process (repeated Tracer calls, flag re-parsing in
// tests), because http.Handle — like expvar — panics on duplicate
// registration.
var (
	promOnce sync.Once
	promSink *tpilayout.PromSink
)

// metricsSink returns the process singleton PromSink, mounting it on
// the default mux's /metrics on first use.
func metricsSink() *tpilayout.PromSink {
	promOnce.Do(func() {
		promSink = tpilayout.NewPromSink("tpilayout")
		http.Handle("/metrics", promSink)
	})
	return promSink
}

// Listener describes one background HTTP server the flags require: the
// address to bind and the observability surfaces it serves there. Every
// surface lives on the default mux, so two flags naming the same address
// share a single listener instead of fighting over the port.
type Listener struct {
	Addr     string
	Surfaces []string // "pprof", "metrics"
}

// listenPlan resolves the -pprof and -metrics addresses into the
// distinct listeners to start: a matching pair collapses into one shared
// listener serving both surfaces, mismatched addresses get one listener
// each, and empty flags contribute nothing.
func listenPlan(pprofAddr, metricsAddr string) []Listener {
	var plan []Listener
	if pprofAddr != "" {
		l := Listener{Addr: pprofAddr, Surfaces: []string{"pprof"}}
		if metricsAddr == pprofAddr {
			l.Surfaces = append(l.Surfaces, "metrics")
		}
		plan = append(plan, l)
	}
	if metricsAddr != "" && metricsAddr != pprofAddr {
		plan = append(plan, Listener{Addr: metricsAddr, Surfaces: []string{"metrics"}})
	}
	return plan
}

// serve starts a best-effort background HTTP server on the default mux:
// the run proceeds even if the port is taken, it just reports why the
// surface is unavailable.
func serve(addr, what string) {
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(os.Stderr, "%s server on %s: %v\n", what, addr, err)
		}
	}()
}

// Tracer builds the tracer the flags select. It returns a nil tracer —
// which the flow treats as zero-cost disabled telemetry — when no flag
// is set. flush flushes and closes the trace file; call it after the
// run, before reading the file.
func (f *Flags) Tracer() (tr *tpilayout.Tracer, flush func() error, err error) {
	var sinks []tpilayout.TraceSink
	flush = func() error { return nil }
	if f.Trace != "" {
		file, err := os.Create(f.Trace)
		if err != nil {
			return nil, nil, fmt.Errorf("-trace: %w", err)
		}
		sink := tpilayout.NewNDJSONSink(file)
		sinks = append(sinks, sink)
		flush = sink.Close // closes the file too
	}
	if f.Progress {
		sinks = append(sinks, tpilayout.NewProgressSink(os.Stderr))
	}
	if f.Pprof != "" {
		sinks = append(sinks, tpilayout.NewExpvarSink("tpilayout"))
		fmt.Fprintf(os.Stderr, "pprof+expvar on http://%s/debug/pprof and /debug/vars\n", f.Pprof)
	}
	if f.Metrics != "" {
		sinks = append(sinks, metricsSink())
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics\n", f.Metrics)
	}
	for _, l := range listenPlan(f.Pprof, f.Metrics) {
		serve(l.Addr, strings.Join(l.Surfaces, "+"))
	}
	if len(sinks) == 0 {
		return nil, flush, nil
	}
	return tpilayout.NewTracer(sinks...), flush, nil
}
