// Package obs wires the shared observability surface (-trace,
// -progress, -pprof) into the tpilayout command-line tools.
package obs

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // -pprof serves the default mux
	"os"

	"tpilayout"
)

// Flags holds the observability flag values shared by tpiflow and
// tpitables.
type Flags struct {
	Trace    string
	Progress bool
	Pprof    string
}

// Register installs -trace, -progress, and -pprof on the default
// FlagSet. Call before flag.Parse.
func Register() *Flags {
	f := &Flags{}
	flag.StringVar(&f.Trace, "trace", "", "write an NDJSON span trace to this file (read it back with tracestat)")
	flag.BoolVar(&f.Progress, "progress", false, "print live per-stage progress lines to stderr")
	flag.StringVar(&f.Pprof, "pprof", "", "serve net/http/pprof plus live expvar counters on this address (e.g. localhost:6060)")
	return f
}

// Tracer builds the tracer the flags select. It returns a nil tracer —
// which the flow treats as zero-cost disabled telemetry — when no flag
// is set. flush flushes and closes the trace file; call it after the
// run, before reading the file.
func (f *Flags) Tracer() (tr *tpilayout.Tracer, flush func() error, err error) {
	var sinks []tpilayout.TraceSink
	flush = func() error { return nil }
	if f.Trace != "" {
		file, err := os.Create(f.Trace)
		if err != nil {
			return nil, nil, fmt.Errorf("-trace: %w", err)
		}
		sink := tpilayout.NewNDJSONSink(file)
		sinks = append(sinks, sink)
		flush = sink.Close // closes the file too
	}
	if f.Progress {
		sinks = append(sinks, tpilayout.NewProgressSink(os.Stderr))
	}
	if f.Pprof != "" {
		sinks = append(sinks, tpilayout.NewExpvarSink("tpilayout"))
		ln := f.Pprof
		go func() {
			// Background best-effort server: the run proceeds even if the
			// port is taken, it just reports why profiling is unavailable.
			if err := http.ListenAndServe(ln, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof server on %s: %v\n", ln, err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof+expvar on http://%s/debug/pprof and /debug/vars\n", ln)
	}
	if len(sinks) == 0 {
		return nil, flush, nil
	}
	return tpilayout.NewTracer(sinks...), flush, nil
}
