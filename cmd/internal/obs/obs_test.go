package obs

import (
	"fmt"
	"testing"
)

// TestListenPlan pins the -pprof/-metrics listener-sharing contract:
// matching addresses collapse into one shared listener, mismatched
// addresses each get their own, and empty flags start nothing.
func TestListenPlan(t *testing.T) {
	cases := []struct {
		name           string
		pprof, metrics string
		want           string // fmt.Sprint of the plan
	}{
		{
			name: "neither flag set",
			want: "[]",
		},
		{
			name:  "pprof only",
			pprof: "localhost:6060",
			want:  "[{localhost:6060 [pprof]}]",
		},
		{
			name:    "metrics only",
			metrics: "localhost:9090",
			want:    "[{localhost:9090 [metrics]}]",
		},
		{
			name:    "shared address serves both on one listener",
			pprof:   "localhost:6060",
			metrics: "localhost:6060",
			want:    "[{localhost:6060 [pprof metrics]}]",
		},
		{
			name:    "address mismatch starts two listeners",
			pprof:   "localhost:6060",
			metrics: "localhost:9090",
			want:    "[{localhost:6060 [pprof]} {localhost:9090 [metrics]}]",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := fmt.Sprint(listenPlan(tc.pprof, tc.metrics))
			if got != tc.want {
				t.Errorf("listenPlan(%q, %q) = %s, want %s", tc.pprof, tc.metrics, got, tc.want)
			}
		})
	}
}

// TestListenPlanNoDuplicateAddrs sweeps flag combinations and checks the
// invariant that makes sharing safe: no address appears in the plan
// twice, whatever the inputs.
func TestListenPlanNoDuplicateAddrs(t *testing.T) {
	addrs := []string{"", "a:1", "b:2"}
	for _, p := range addrs {
		for _, m := range addrs {
			seen := map[string]bool{}
			for _, l := range listenPlan(p, m) {
				if l.Addr == "" {
					t.Errorf("listenPlan(%q, %q) planned an empty address", p, m)
				}
				if seen[l.Addr] {
					t.Errorf("listenPlan(%q, %q) planned %s twice", p, m, l.Addr)
				}
				seen[l.Addr] = true
			}
		}
	}
}

// TestMetricsSinkSingleton: repeated lookups must return the one
// process-wide PromSink — a second http.Handle("/metrics", ...) would
// panic, so the singleton is what keeps flag re-parsing safe.
func TestMetricsSinkSingleton(t *testing.T) {
	a, b := metricsSink(), metricsSink()
	if a == nil || a != b {
		t.Fatalf("metricsSink not a singleton: %p vs %p", a, b)
	}
}
