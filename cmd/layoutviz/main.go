// Command layoutviz reproduces Figure 3 of the paper: it runs the
// physical flow for one circuit and writes three SVG views of the layout
// — after floorplanning, after placement, and after routing.
//
// Usage:
//
//	layoutviz -circuit s38417c -scale 0.1 -tp 2 -out ./fig3
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"tpilayout"
	"tpilayout/cmd/internal/obs"
	"tpilayout/internal/layoutviz"
)

func main() {
	circuit := flag.String("circuit", "s38417c", "circuit profile")
	scale := flag.Float64("scale", 0.1, "circuit size scale factor")
	tp := flag.Float64("tp", 1.0, "test-point percentage")
	out := flag.String("out", ".", "output directory")
	logFlags := obs.RegisterLog()
	flag.Parse()

	logger, err := logFlags.Logger(os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "layoutviz: %v\n", err)
		os.Exit(1)
	}
	logger = logger.With("component", "layoutviz")
	fatal := func(msg string, err error) {
		logger.Error(msg, "error", err)
		os.Exit(1)
	}

	spec, err := tpilayout.SpecByName(*circuit)
	if err != nil {
		fatal("resolving circuit", err)
	}
	if *scale != 1.0 {
		spec = spec.Scale(*scale)
	}
	design, err := tpilayout.Generate(spec, tpilayout.DefaultLibrary())
	if err != nil {
		fatal("generating netlist", err)
	}
	cfg := tpilayout.ExperimentConfig(*circuit)
	cfg.TPPercent = *tp
	cfg.SkipATPG = true
	res, err := tpilayout.Run(design, cfg)
	if err != nil {
		fatal("running flow", err)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal("creating output directory", err)
	}
	views := []struct {
		stage layoutviz.Stage
		name  string
	}{
		{layoutviz.StageFloorplan, "fig3a_floorplan.svg"},
		{layoutviz.StagePlacement, "fig3b_placement.svg"},
		{layoutviz.StageRouted, "fig3c_routed.svg"},
	}
	for _, v := range views {
		doc := layoutviz.SVG(res.Place, res.Route, v.stage, layoutviz.Options{})
		path := filepath.Join(*out, v.name)
		if err := os.WriteFile(path, doc, 0o644); err != nil {
			fatal("writing view", err)
		}
		logger.Info("wrote view", "path", path, "bytes", len(doc))
	}
}
