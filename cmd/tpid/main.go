// Command tpid is the TPI-as-a-service daemon: it serves the paper's
// complete Figure 2 flow over HTTP, turning the batch reproduction into
// a long-running, multi-tenant service.
//
// Usage:
//
//	tpid -addr :8080 -workers 4 -queue-depth 128 -cache-bytes 67108864
//
// API (all JSON):
//
//	POST   /v1/jobs             submit a sweep: {"circuit":{...},"tp_levels":[0,1,2],"flow":{...}}
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/events live NDJSON span events over SSE
//	GET    /v1/jobs/{id}/result Tables 1–3 rows + rendered tables
//	DELETE /v1/jobs/{id}        cancel (mid-run cancellation lands within one work unit)
//	GET    /v1/stats            queue depth, cache hit/miss, jobs by terminal state
//	GET    /healthz             liveness: 200 whenever the process serves HTTP
//	GET    /readyz              readiness: 503 while replaying the journal or draining
//	GET    /metrics             Prometheus text exposition (flow + service families)
//	GET    /debug/pprof/        net/http/pprof
//
// Submissions are queued with per-tenant round-robin fairness and
// bounded depth (429 when full). Identical submissions are coalesced
// onto one running flow and finished results are served from a
// content-addressed cache, so a million identical requests cost one
// layout. SIGTERM/SIGINT drains: running jobs get -drain-timeout to
// finish, new submissions are rejected with 503, then the process exits.
//
// With -data-dir the daemon is crash-safe: accepted jobs, completed
// sweep levels, and retired results are journaled (fsync'd, CRC-framed)
// and a restart on the same directory replays them — finished jobs stay
// queryable, unfinished jobs re-run only their missing levels, and a
// kill -9 mid-sweep costs at most the levels that were in flight.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tpilayout/internal/service"
	"tpilayout/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tpid: ")
	addr := flag.String("addr", "localhost:8080", "listen address for the API (also serves /metrics and /debug/pprof)")
	workers := flag.Int("workers", 0, "worker-pool size: concurrent flows (0 = GOMAXPROCS/2)")
	flowWorkers := flag.Int("flow-workers", 1, "default per-flow parallelism for jobs that do not set flow.workers")
	queueDepth := flag.Int("queue-depth", 64, "maximum queued jobs across all tenants before 429")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "result-cache byte budget (content-addressed LRU)")
	maxBody := flag.Int64("max-body", 8<<20, "maximum submission body size in bytes")
	retainJobs := flag.Int("retain-jobs", 512, "terminal jobs kept queryable before the oldest are forgotten")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM lets running jobs finish before canceling them")
	dataDir := flag.String("data-dir", "", "journal directory for crash-safe operation (empty = in-memory only)")
	retryAttempts := flag.Int("retry-attempts", 3, "attempts per sweep level before its transient failure becomes permanent")
	retryBase := flag.Duration("retry-base", 100*time.Millisecond, "initial retry backoff (doubles per attempt, full jitter)")
	retryMax := flag.Duration("retry-max", 5*time.Second, "backoff ceiling per retry")
	sweepMode := flag.String("sweep-mode", "full", "default level scheduling for jobs that do not set flow.sweep_mode: full (levels fan out across the worker pool) or incremental (levels serialize, each reusing the previous level's artifacts); results are bit-identical either way")
	flag.Parse()

	prom := telemetry.NewPromSink("tpid")
	srv, err := service.Open(service.Options{
		Workers:          *workers,
		FlowWorkers:      *flowWorkers,
		QueueDepth:       *queueDepth,
		CacheBytes:       *cacheBytes,
		MaxBodyBytes:     *maxBody,
		RetainJobs:       *retainJobs,
		Metrics:          prom,
		DataDir:          *dataDir,
		DefaultSweepMode: *sweepMode,
		Retry: service.RetryPolicy{
			MaxAttempts: *retryAttempts,
			BaseDelay:   *retryBase,
			MaxDelay:    *retryMax,
			Jitter:      true,
		},
	})
	if err != nil {
		log.Fatalf("opening service: %v", err)
	}
	if *dataDir != "" {
		log.Printf("journal: %s (crash-safe; /readyz turns 200 once replay finishes)", *dataDir)
	}

	// One listener serves everything: the job API, the Prometheus
	// exposition, and the profiler.
	mux := http.NewServeMux()
	mux.Handle("/v1/", srv)
	mux.Handle("/healthz", srv)
	mux.Handle("/readyz", srv)
	mux.Handle("/metrics", prom)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	httpSrv := &http.Server{Addr: *addr, Handler: mux}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("serving on http://%s (API /v1, /metrics, /debug/pprof)", *addr)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Printf("signal received, draining for up to %v", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("drain: %v", err)
	} else if errors.Is(err, context.DeadlineExceeded) {
		log.Printf("drain timeout: running jobs were canceled")
	}
	// The job engine is drained; now close the listener.
	closeCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(closeCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	log.Printf("bye")
}
