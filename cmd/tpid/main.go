// Command tpid is the TPI-as-a-service daemon: it serves the paper's
// complete Figure 2 flow over HTTP, turning the batch reproduction into
// a long-running, multi-tenant service.
//
// Usage:
//
//	tpid -addr :8080 -workers 4 -queue-depth 128 -cache-bytes 67108864
//
// API (all JSON):
//
//	POST   /v1/jobs             submit a sweep: {"circuit":{...},"tp_levels":[0,1,2],"flow":{...}}
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/events live NDJSON span events over SSE
//	GET    /v1/jobs/{id}/result Tables 1–3 rows + rendered tables
//	DELETE /v1/jobs/{id}        cancel (mid-run cancellation lands within one work unit)
//	GET    /v1/stats            queue depth, cache hit/miss, jobs by terminal state
//	GET    /v1/runs             run-history archive, newest first; filter by circuit=,
//	                            config= (hash prefixes), tenant=, state=, baseline=,
//	                            since=<RFC3339>, limit=
//	GET    /v1/runs/stats       archive retention counters + baseline keys;
//	                            ?baseline=<key> adds that key's cross-run P50/P99 rollup
//	GET    /v1/runs/{id}        one archived run: metadata, stage×level rollup,
//	                            regression-sentinel verdict
//	GET    /v1/runs/{id}/trace  the run's full span trace (gzip NDJSON)
//	GET    /v1/runs/{id}/diff   Table-2-style diff vs its baseline (?against=<run_id>)
//	GET    /v1/runs/{id}/profile per-run CPU profile (pprof; needs -profile-runs)
//	GET    /healthz             liveness: 200 whenever the process serves HTTP
//	GET    /readyz              readiness: 503 while replaying the journal or draining
//	GET    /metrics             Prometheus text exposition (flow + service + per-tenant families)
//	GET    /debug/pprof/        net/http/pprof
//	GET    /debug/flight        flight-recorder dump: the last -flight-events telemetry
//	                            events (spans, service observations, log lines) as
//	                            NDJSON; ?job=<id> narrows to one live/retained run
//
// Every submission gets a job_id (a valid client X-Request-ID is
// honored and echoed back) and every flow run a run_id; both ride on
// every span, SSE frame, log line, journal record, and flight-recorder
// entry, so one grep correlates a request end to end.
//
// Submissions are queued with per-tenant round-robin fairness and
// bounded depth (429 when full). Identical submissions are coalesced
// onto one running flow and finished results are served from a
// content-addressed cache, so a million identical requests cost one
// layout. SIGTERM/SIGINT drains: running jobs get -drain-timeout to
// finish, new submissions are rejected with 503, then the process
// exits. SIGQUIT dumps the flight recorder plus a goroutine profile
// (to -data-dir when set, stderr otherwise) WITHOUT exiting — stuck-
// process debugging — and a captured flow panic dumps the flight
// recorder automatically.
//
// With -data-dir the daemon is crash-safe: accepted jobs, completed
// sweep levels, and retired results are journaled (fsync'd, CRC-framed)
// and a restart on the same directory replays them — finished jobs stay
// queryable, unfinished jobs re-run only their missing levels, and a
// kill -9 mid-sweep costs at most the levels that were in flight.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	rpprof "runtime/pprof"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"tpilayout/cmd/internal/obs"
	"tpilayout/internal/service"
	"tpilayout/internal/supervise"
	"tpilayout/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address for the API (also serves /metrics and /debug/pprof)")
	workers := flag.Int("workers", 0, "worker-pool size: concurrent flows (0 = GOMAXPROCS/2)")
	flowWorkers := flag.Int("flow-workers", 1, "default per-flow parallelism for jobs that do not set flow.workers")
	queueDepth := flag.Int("queue-depth", 64, "maximum queued jobs across all tenants before 429")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "result-cache byte budget (content-addressed LRU)")
	maxBody := flag.Int64("max-body", 8<<20, "maximum submission body size in bytes")
	retainJobs := flag.Int("retain-jobs", 512, "terminal jobs kept queryable before the oldest are forgotten")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM lets running jobs finish before canceling them")
	dataDir := flag.String("data-dir", "", "journal directory for crash-safe operation (empty = in-memory only)")
	retryAttempts := flag.Int("retry-attempts", 3, "attempts per sweep level before its transient failure becomes permanent")
	retryBase := flag.Duration("retry-base", 100*time.Millisecond, "initial retry backoff (doubles per attempt, full jitter)")
	retryMax := flag.Duration("retry-max", 5*time.Second, "backoff ceiling per retry")
	sweepMode := flag.String("sweep-mode", "full", "default level scheduling for jobs that do not set flow.sweep_mode: full (levels fan out across the worker pool) or incremental (levels serialize, each reusing the previous level's artifacts); results are bit-identical either way")
	flightEvents := flag.Int("flight-events", 4096, "flight-recorder ring size: most recent telemetry events retained for /debug/flight, SIGQUIT, and panic dumps (0 disables)")
	historyRuns := flag.Int("history-runs", 512, "retired runs kept in the run-history archive under <data-dir>/runs (negative disables history; requires -data-dir)")
	historyBudget := flag.Int64("history-budget", 512<<20, "byte budget for archived traces+profiles (oldest runs evicted first; negative = unbounded)")
	profileRuns := flag.Bool("profile-runs", false, "capture a per-run CPU profile (pprof, with run_id/stage/tp_level labels) and archive it beside the trace; overlapping runs are profiled one at a time")
	maxRegress := flag.Float64("max-regress", 25, "regression sentinel: flag a retired run whose stage grew beyond this percentage (normalized share) versus its archived baseline")
	hardRegress := flag.Float64("hard-regress", 150, "regression sentinel: absolute-time backstop percentage for share-invariant dominant stages (negative disables)")
	sentinelMinDur := flag.Duration("sentinel-min-dur", 100*time.Millisecond, "regression sentinel noise floor: stages whose baseline duration is below this never gate (negative disables)")
	logFlags := obs.RegisterLog()
	flag.Parse()

	var flight *telemetry.FlightRecorder
	if *flightEvents > 0 {
		flight = telemetry.NewFlightRecorder(*flightEvents)
	}
	logger, err := logFlags.Logger(os.Stderr, flight)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tpid: %v\n", err)
		os.Exit(1)
	}
	logger = logger.With("component", "tpid")
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	dumper := &flightDumper{flight: flight, dir: *dataDir, log: logger}
	if flight != nil {
		// A captured flow panic writes the black box immediately, while
		// the evidence is still in the ring.
		supervise.SetOnPanic(func(pe *supervise.PanicError) {
			dumper.dump("panic", pe.Stack)
		})
	}

	prom := telemetry.NewPromSink("tpid")
	srv, err := service.Open(service.Options{
		Workers:            *workers,
		FlowWorkers:        *flowWorkers,
		QueueDepth:         *queueDepth,
		CacheBytes:         *cacheBytes,
		MaxBodyBytes:       *maxBody,
		RetainJobs:         *retainJobs,
		Metrics:            prom,
		Log:                logger,
		Flight:             flight,
		DataDir:            *dataDir,
		DefaultSweepMode:   *sweepMode,
		HistoryRuns:        *historyRuns,
		HistoryBudgetBytes: *historyBudget,
		ProfileRuns:        *profileRuns,
		MaxRegressPct:      *maxRegress,
		HardRegressPct:     *hardRegress,
		SentinelMinDur:     *sentinelMinDur,
		Retry: service.RetryPolicy{
			MaxAttempts: *retryAttempts,
			BaseDelay:   *retryBase,
			MaxDelay:    *retryMax,
			Jitter:      true,
		},
	})
	if err != nil {
		fatal("opening service", "error", err)
	}
	if *dataDir != "" {
		logger.Info("journal open, /readyz turns 200 once replay finishes", "data_dir", *dataDir)
	}

	// One listener serves everything: the job API, the Prometheus
	// exposition, the profiler, and the flight recorder.
	mux := http.NewServeMux()
	mux.Handle("/v1/", srv)
	mux.Handle("/healthz", srv)
	mux.Handle("/readyz", srv)
	mux.Handle("/debug/flight", srv)
	mux.Handle("/metrics", prom)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	httpSrv := &http.Server{Addr: *addr, Handler: mux}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGQUIT: dump the flight recorder and a goroutine profile without
	// exiting (registering the handler disables Go's default die-and-
	// dump-all-goroutines behavior for this signal).
	quitCh := make(chan os.Signal, 1)
	signal.Notify(quitCh, syscall.SIGQUIT)
	go func() {
		for range quitCh {
			dumper.dump("sigquit", nil)
		}
	}()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Info("serving", "addr", *addr,
		"surfaces", "/v1 /metrics /debug/pprof /debug/flight")

	select {
	case err := <-errCh:
		fatal("http server failed", "error", err)
	case <-ctx.Done():
	}

	logger.Info("signal received, draining", "timeout", drainTimeout.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("drain failed", "error", err)
	} else if errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("drain timeout: running jobs were canceled")
	}
	// The job engine is drained; now close the listener.
	closeCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(closeCtx); err != nil {
		logger.Error("http shutdown failed", "error", err)
	}
	logger.Info("bye")
}

// flightDumper writes postmortem artifacts — the flight-recorder NDJSON
// and (for SIGQUIT) a goroutine profile — to the data directory when
// one exists, stderr otherwise. Dumps serialize on a mutex so a panic
// storm produces readable files, and each gets a sequence number so
// nothing is overwritten.
type flightDumper struct {
	flight *telemetry.FlightRecorder
	dir    string
	log    *telemetry.Logger
	mu     sync.Mutex
	seq    atomic.Int64
}

// dump writes the black box. reason names the trigger ("sigquit",
// "panic"); stack, when non-nil, is the panicking goroutine's stack.
func (d *flightDumper) dump(reason string, stack []byte) {
	if d.flight == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	n := d.seq.Add(1)
	if d.dir == "" {
		fmt.Fprintf(os.Stderr, "--- tpid flight dump (%s, %d events) ---\n", reason, d.flight.Len())
		d.flight.WriteNDJSON(os.Stderr)
		if stack != nil {
			fmt.Fprintf(os.Stderr, "--- panic stack ---\n%s\n", stack)
		}
		if reason == "sigquit" {
			fmt.Fprintf(os.Stderr, "--- goroutines ---\n")
			rpprof.Lookup("goroutine").WriteTo(os.Stderr, 1)
		}
		fmt.Fprintf(os.Stderr, "--- end flight dump ---\n")
		return
	}
	name := filepath.Join(d.dir, fmt.Sprintf("flight-%s-%d.ndjson", reason, n))
	f, err := os.Create(name)
	if err != nil {
		d.log.Error("flight dump failed", "path", name, "error", err)
		return
	}
	d.flight.WriteNDJSON(f)
	if stack != nil {
		fmt.Fprintf(f, "%s\n", flightStackLine(reason, stack))
	}
	f.Close()
	d.log.Warn("flight dump written", "reason", reason, "path", name)
	if reason == "sigquit" {
		gname := filepath.Join(d.dir, fmt.Sprintf("goroutines-%d.txt", n))
		if gf, err := os.Create(gname); err == nil {
			rpprof.Lookup("goroutine").WriteTo(gf, 1)
			gf.Close()
			d.log.Warn("goroutine profile written", "path", gname)
		}
	}
}

// flightStackLine renders a panic stack as one final NDJSON log event,
// keeping the dump file parseable by tracestat end to end.
func flightStackLine(reason string, stack []byte) string {
	e := telemetry.Event{
		Type: telemetry.EventLog, Stage: "service", Time: time.Now(),
		Level: "ERROR", Msg: "panic captured",
		Attrs: map[string]string{"reason": reason, "stack": string(stack)},
	}
	b, err := json.Marshal(e)
	if err != nil {
		return ""
	}
	return string(b)
}
