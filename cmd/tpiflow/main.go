// Command tpiflow runs the paper's complete tool flow (Figure 2) once for
// one circuit and test-point level, and prints the resulting test-data,
// area, and timing metrics.
//
// Usage:
//
//	tpiflow -circuit s38417c -scale 0.25 -tp 1 -workers 4 -timeout 2m
//
// -workers bounds the fault-simulation shard count (0 = GOMAXPROCS,
// 1 = serial); the printed metrics are identical for every value.
//
// The run is supervised: -timeout bounds the wall clock and Ctrl-C
// (SIGINT) cancels cleanly — either lands within one work unit of the
// flow, which exits with the stage that was cut short. -atpg-budget
// instead bounds only the ATPG effort: an expiring budget degrades the
// run (remaining faults are marked aborted, metrics flagged truncated)
// rather than failing it.
//
// The run is observable: -trace writes an NDJSON span trace (one timed
// span per flow stage — feed it to tracestat), -progress prints live
// stage lines to stderr, and -pprof serves net/http/pprof plus live
// expvar stage counters. All three are off by default and cost nothing
// when off.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"tpilayout"
	"tpilayout/cmd/internal/obs"
)

func main() {
	circuit := flag.String("circuit", "s38417c", "circuit profile: s38417c, wctrl1, or p26909c")
	scale := flag.Float64("scale", 1.0, "circuit size scale factor (1.0 = paper size)")
	tp := flag.Float64("tp", 1.0, "test points as a percentage of flip-flops")
	skipATPG := flag.Bool("skip-atpg", false, "run only the physical flow (no pattern generation)")
	workers := flag.Int("workers", 0, "fault-simulation shard count (0 = GOMAXPROCS, 1 = serial)")
	timeout := flag.Duration("timeout", 0, "cancel the run after this long (0 = no limit)")
	atpgBudget := flag.Duration("atpg-budget", 0, "ATPG effort budget; expiry truncates the run instead of failing it (0 = no limit)")
	sweepMode := flag.String("sweep-mode", "full", "level scheduling, accepted for flag parity with tpitables/tpid: full or incremental; a single-level run is identical either way")
	obsFlags := obs.Register()
	logFlags := obs.RegisterLog()
	flag.Parse()

	logger, err := logFlags.Logger(os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tpiflow: %v\n", err)
		os.Exit(1)
	}
	logger = logger.With("component", "tpiflow")
	fatal := func(msg string, err error) {
		logger.Error(msg, "error", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	spec, err := tpilayout.SpecByName(*circuit)
	if err != nil {
		fatal("resolving circuit", err)
	}
	if *scale != 1.0 {
		spec = spec.Scale(*scale)
	}
	design, err := tpilayout.Generate(spec, tpilayout.DefaultLibrary())
	if err != nil {
		fatal("generating netlist", err)
	}
	cfg := tpilayout.ExperimentConfig(*circuit)
	cfg.TPPercent = *tp
	cfg.SkipATPG = *skipATPG
	cfg.Workers = *workers
	cfg.SweepMode, err = tpilayout.ParseSweepMode(*sweepMode)
	if err != nil {
		fatal("parsing -sweep-mode", err)
	}
	if *atpgBudget > 0 {
		cfg.Deadline = time.Now().Add(*atpgBudget)
	}
	tracer, closeTrace, err := obsFlags.Tracer()
	if err != nil {
		fatal("building tracer", err)
	}
	cfg.Telemetry = tracer
	res, err := tpilayout.RunContext(ctx, design, cfg)
	if terr := closeTrace(); terr != nil {
		fatal("flushing trace", terr)
	}
	if err != nil {
		fatal("running flow", err)
	}

	m := res.Metrics
	fmt.Printf("circuit %s (scale %.2f): %d cells, %d flip-flops, %d test points\n",
		m.Circuit, *scale, m.Cells, m.NumFF, m.NumTP)
	fmt.Printf("scan: %d chains, l_max %d\n", m.Chains, m.LMax)
	if !*skipATPG {
		fmt.Printf("test: %d faults, FC %.2f%%, FE %.2f%%, %d patterns, TDV %d bits, TAT %d cycles\n",
			m.Faults, m.FC, m.FE, m.Patterns, m.TDV, m.TAT)
		if m.Truncated {
			fmt.Println("note: ATPG budget expired — remaining faults aborted, FC/FE reflect the achieved detections")
		}
	}
	fmt.Printf("area: %d rows x %.1f um, core %.0f um2 (filler %.2f%%), chip %.0f um2, wires %.0f um\n",
		m.Rows, m.LRows/float64(m.Rows), m.CoreArea, m.FillerPct, m.ChipArea, m.LWires)
	for _, t := range m.Timing {
		fmt.Printf("timing %-8s: Tcp %.0f ps (Fmax %.1f MHz), %d TPs on path; "+
			"wires %.0f + intrinsic %.0f + load-dep %.0f + setup %.0f + skew %.0f\n",
			t.Domain, t.TcpPS, t.FmaxMHz, t.TPOnPath,
			t.TWires, t.TIntr, t.TLoadDep, t.TSetup, t.TSkew)
	}
	if m.SlowNodes > 0 {
		fmt.Printf("note: %d slow nodes (extrapolated delays)\n", m.SlowNodes)
	}
	os.Exit(0)
}
