// Command tpitables regenerates the paper's Tables 1, 2 and 3: for each
// selected circuit it builds six layouts (0%–5% test points) through the
// full flow and prints the three tables.
//
// Usage:
//
//	tpitables -circuits s38417c,wctrl1,p26909c -scale 0.25 -table all -workers 0 -timeout 10m
//
// The six layouts of a sweep are built concurrently on up to -workers
// goroutines (0 = GOMAXPROCS, 1 = serial); the tables are byte-identical
// for every worker count.
//
// Sweeps run under supervision: -timeout bounds the wall clock and
// Ctrl-C (SIGINT) cancels cleanly. Either way the sweep degrades rather
// than vanishes — completed levels are printed as partial tables and
// every failed or cancelled level is marked with a "!! ... FAILED" line;
// the exit status is non-zero if any level failed.
//
// At -scale 1 the circuits have their full published sizes; smaller
// scales keep the structure (and the trends) while running much faster.
//
// Sweeps are observable: -trace writes an NDJSON span trace covering
// every level of every circuit (one sweep → run → stage tree per
// circuit — feed it to tracestat), -progress prints live per-stage,
// per-level lines to stderr as the parallel sweep advances, and -pprof
// serves net/http/pprof plus live expvar stage counters.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"tpilayout"
	"tpilayout/cmd/internal/obs"
)

func main() {
	circuits := flag.String("circuits", "s38417c,wctrl1,p26909c", "comma-separated circuit list")
	scale := flag.Float64("scale", 1.0, "circuit size scale factor")
	table := flag.String("table", "all", "which table to print: 1, 2, 3, or all")
	levels := flag.String("levels", "0,1,2,3,4,5", "test-point percentages to sweep")
	workers := flag.Int("workers", 0, "sweep concurrency (0 = GOMAXPROCS, 1 = serial)")
	sweepMode := flag.String("sweep-mode", "full", "level scheduling: full (levels fan out across workers) or incremental (levels serialize, each reusing the previous level's artifacts); tables are bit-identical either way")
	memo := flag.Bool("memo", false, "with -sweep-mode incremental, also replay memoized PODEM searches across levels (exact, but measured net-negative on sparse sweeps; see flow.Config.ATPGMemo)")
	timeout := flag.Duration("timeout", 0, "cancel the remaining sweep after this long (0 = no limit); completed levels still print")
	obsFlags := obs.Register()
	logFlags := obs.RegisterLog()
	flag.Parse()

	logger, lerr := logFlags.Logger(os.Stderr)
	if lerr != nil {
		fmt.Fprintf(os.Stderr, "tpitables: %v\n", lerr)
		os.Exit(1)
	}
	logger = logger.With("component", "tpitables")
	fatal := func(msg string, err error) {
		logger.Error(msg, "error", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var pcts []float64
	for _, s := range strings.Split(*levels, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fatal(fmt.Sprintf("bad -levels entry %q", s), err)
		}
		pcts = append(pcts, v)
	}

	mode, err := tpilayout.ParseSweepMode(*sweepMode)
	if err != nil {
		fatal("parsing -sweep-mode", err)
	}

	tracer, closeTrace, err := obsFlags.Tracer()
	if err != nil {
		fatal("building tracer", err)
	}

	anyFailed := false
	for _, name := range strings.Split(*circuits, ",") {
		name = strings.TrimSpace(name)
		spec, err := tpilayout.SpecByName(name)
		if err != nil {
			fatal("resolving circuit", err)
		}
		if *scale != 1.0 {
			spec = spec.Scale(*scale)
		}
		design, err := tpilayout.Generate(spec, tpilayout.DefaultLibrary())
		if err != nil {
			fatal("generating netlist", err)
		}
		cfg := tpilayout.ExperimentConfig(name)
		cfg.SkipATPG = *table == "2" || *table == "3"
		cfg.Workers = *workers
		cfg.SweepMode = mode
		cfg.ATPGMemo = *memo
		cfg.Telemetry = tracer
		start := time.Now()
		results, err := tpilayout.SweepPartial(ctx, design, cfg, pcts)
		if err != nil {
			fatal("running sweep", err)
		}
		rows := tpilayout.CompletedMetrics(results)
		fmt.Printf("== %s (scale %.2f, %d/%d layouts, %v) ==\n\n",
			name, *scale, len(rows), len(results), time.Since(start).Round(time.Second))
		if len(rows) > 0 {
			if *table == "1" || *table == "all" {
				fmt.Println(tpilayout.FormatTable1(rows))
			}
			if *table == "2" || *table == "all" {
				fmt.Println(tpilayout.FormatTable2(rows))
			}
			if *table == "3" || *table == "all" {
				fmt.Println(tpilayout.FormatTable3(rows))
			}
		}
		if failed := tpilayout.FormatSweepFailures(results); failed != "" {
			anyFailed = true
			fmt.Print(failed)
		}
	}
	if err := closeTrace(); err != nil {
		fatal("flushing trace", err)
	}
	if anyFailed {
		os.Exit(1)
	}
}
