package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"tpilayout"
)

// key identifies one comparable cell: a flow stage at one TP level for
// traces, a benchmark name (tp = -1) for ledgers.
type key struct {
	stage string
	tp    float64
}

func (k key) String() string {
	if k.tp < 0 {
		return k.stage
	}
	return fmt.Sprintf("%s @ tp %.1f%%", k.stage, k.tp)
}

// cell is one side's aggregate for a key.
type cell struct {
	durNS    float64 // summed span durations (or ns/op for ledgers)
	n        int64   // spans (or benchmark iterations)
	counters map[string]int64
}

// side is one loaded input: its cells plus the per-level run totals
// used by -normalize.
type side struct {
	cells    map[key]*cell
	runTotal map[float64]float64 // tp -> summed run-span ns
}

// loadTrace aggregates an NDJSON trace into per-(stage, TP) cells:
// every run span and every direct stage child of a run span counts,
// summing durations and counters — repeated stages (timing-opt
// re-placement) fold into one cell, matching how tracestat tabulates.
func loadTrace(r io.Reader) (*side, error) {
	trace, err := tpilayout.ParseTrace(r)
	if err != nil {
		return nil, err
	}
	if !trace.Balanced() {
		return nil, fmt.Errorf("unbalanced trace (span ids %v)", trace.Unbalanced)
	}
	runLevel := map[int64]float64{}
	s := &side{cells: map[key]*cell{}, runTotal: map[float64]float64{}}
	for _, sp := range trace.Spans {
		if sp.Stage == "run" {
			runLevel[sp.ID] = sp.TPPercent
			s.runTotal[sp.TPPercent] += float64(sp.Duration)
		}
	}
	if len(runLevel) == 0 {
		return nil, fmt.Errorf("no run spans in trace")
	}
	for _, sp := range trace.Spans {
		var k key
		if sp.Stage == "run" {
			k = key{"run", sp.TPPercent}
		} else if tp, ok := runLevel[sp.Parent]; ok {
			k = key{sp.Stage, tp}
		} else {
			continue
		}
		c := s.cells[k]
		if c == nil {
			c = &cell{counters: map[string]int64{}}
			s.cells[k] = c
		}
		c.n++
		c.durNS += float64(sp.Duration)
		for name, v := range sp.Counters {
			c.counters[name] += v
		}
	}
	return s, nil
}

// loadLedger reads one section of a benchjson ledger: each benchmark
// becomes a tp = -1 cell with ns/op as its duration and the metrics map
// as its counters (rounded — benchjson stores means).
func loadLedger(r io.Reader, section string) (*side, error) {
	type entry struct {
		Iterations int64              `json:"iterations"`
		NsPerOp    float64            `json:"ns_per_op"`
		Metrics    map[string]float64 `json:"metrics"`
	}
	var ledger map[string]map[string]entry
	dec := json.NewDecoder(r)
	if err := dec.Decode(&ledger); err != nil {
		return nil, fmt.Errorf("not a benchjson ledger: %w", err)
	}
	sec, ok := ledger[section]
	if !ok {
		var have []string
		for name := range ledger {
			have = append(have, name)
		}
		sort.Strings(have)
		return nil, fmt.Errorf("no section %q (have %s)", section, strings.Join(have, ", "))
	}
	s := &side{cells: map[key]*cell{}, runTotal: map[float64]float64{}}
	for name, e := range sec {
		c := &cell{durNS: e.NsPerOp, n: e.Iterations, counters: map[string]int64{}}
		for m, v := range e.Metrics {
			c.counters[m] = int64(math.Round(v))
		}
		s.cells[key{name, -1}] = c
		s.runTotal[-1] += e.NsPerOp
	}
	return s, nil
}

// options control the comparison.
type options struct {
	maxRegressPct  float64       // duration regression gate, in percent
	hardRegressPct float64       // absolute-time backstop gate in -normalize mode (0 = off)
	minDur         time.Duration // noise floor: smaller baseline cells never gate
	normalize      bool          // compare share-of-run-total instead of absolute ns
}

// row is one line of the delta report.
type row struct {
	key
	baseNS, curNS float64 // the compared values (ns, or shares ×100 when normalized)
	deltaPct      float64 // (cur-base)/base in percent; NaN when base == 0
	regressed     bool    // beyond the gate and above the noise floor
	note          string  // "only in baseline" / "only in current" / counter deltas
}

// report is the full comparison outcome.
type report struct {
	rows        []row
	regressions []row
	normalized  bool
}

// value returns the comparable number for a cell: absolute summed ns,
// or — normalized — the cell's percent share of its level's run total.
func value(s *side, k key, c *cell, normalize bool) float64 {
	if !normalize {
		return c.durNS
	}
	total := s.runTotal[k.tp]
	if k.stage == "run" || total == 0 {
		// Run spans define the total; their share is 100 by construction.
		return 100
	}
	return 100 * c.durNS / total
}

// diff compares baseline and current side by side.
func diff(base, cur *side, opt options) *report {
	rep := &report{normalized: opt.normalize}
	keys := map[key]bool{}
	for k := range base.cells {
		keys[k] = true
	}
	for k := range cur.cells {
		keys[k] = true
	}
	ordered := make([]key, 0, len(keys))
	for k := range keys {
		ordered = append(ordered, k)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].tp != ordered[j].tp {
			return ordered[i].tp < ordered[j].tp
		}
		return ordered[i].stage < ordered[j].stage
	})

	for _, k := range ordered {
		b, inBase := base.cells[k]
		c, inCur := cur.cells[k]
		switch {
		case !inCur:
			rep.rows = append(rep.rows, row{key: k, baseNS: value(base, k, b, opt.normalize), deltaPct: math.NaN(), note: "only in baseline"})
			continue
		case !inBase:
			rep.rows = append(rep.rows, row{key: k, curNS: value(cur, k, c, opt.normalize), deltaPct: math.NaN(), note: "only in current"})
			continue
		}
		r := row{
			key:    k,
			baseNS: value(base, k, b, opt.normalize),
			curNS:  value(cur, k, c, opt.normalize),
		}
		if r.baseNS != 0 {
			r.deltaPct = 100 * (r.curNS - r.baseNS) / r.baseNS
		} else if r.curNS != 0 {
			r.deltaPct = math.Inf(1)
		}
		// The gate: a duration regression beyond the threshold, on a cell
		// big enough to clear the noise floor (floor always measured on
		// absolute baseline time, even in -normalize mode).
		if r.deltaPct > opt.maxRegressPct && b.durNS >= float64(opt.minDur) {
			r.regressed = true
		}
		r.note = counterDelta(b.counters, c.counters)
		// -normalize backstop: a stage that dominates its run is share-
		// invariant (slowing it slows the run total too, and the ratio
		// cancels — exactly like a slower machine). An absolute slip
		// beyond the hard threshold is no host's jitter, so it gates even
		// when the share barely moved.
		if opt.normalize && opt.hardRegressPct > 0 && !r.regressed &&
			b.durNS >= float64(opt.minDur) && b.durNS != 0 {
			absPct := 100 * (c.durNS - b.durNS) / b.durNS
			if absPct > opt.hardRegressPct {
				r.regressed = true
				note := fmt.Sprintf("absolute %s -> %s (%+.0f%%)", fmtDur(time.Duration(b.durNS)), fmtDur(time.Duration(c.durNS)), absPct)
				if r.note != "" {
					note += ", " + r.note
				}
				r.note = note
			}
		}
		rep.rows = append(rep.rows, r)
		if r.regressed {
			rep.regressions = append(rep.regressions, r)
		}
	}
	return rep
}

// counterDelta summarizes changed counters ("atpg.patterns 412->430"),
// empty when every shared counter matches.
func counterDelta(base, cur map[string]int64) string {
	names := map[string]bool{}
	for n := range base {
		names[n] = true
	}
	for n := range cur {
		names[n] = true
	}
	var changed []string
	for n := range names {
		if base[n] != cur[n] {
			changed = append(changed, fmt.Sprintf("%s %d->%d", n, base[n], cur[n]))
		}
	}
	sort.Strings(changed)
	return strings.Join(changed, ", ")
}

// write renders the Table-2-style report: one row per stage × TP level,
// baseline and current columns, signed delta, and any counter drift.
func (rep *report) write(w io.Writer) {
	unit := "wall time"
	if rep.normalized {
		unit = "share of run"
	}
	fmt.Fprintf(w, "%-24s %12s %12s %9s  %s\n", "stage", "baseline", "current", "delta", "notes")
	for _, r := range rep.rows {
		mark := " "
		if r.regressed {
			mark = "!"
		}
		fmt.Fprintf(w, "%s%-23s %12s %12s %9s  %s\n",
			mark, r.key, rep.fmtVal(r.baseNS), rep.fmtVal(r.curNS), fmtDelta(r.deltaPct), r.note)
	}
	fmt.Fprintf(w, "\n%d cells compared (%s)", len(rep.rows), unit)
	if len(rep.regressions) == 0 {
		fmt.Fprint(w, ", no regressions beyond threshold\n")
		return
	}
	fmt.Fprintf(w, ", %d REGRESSION(S):\n", len(rep.regressions))
	for _, r := range rep.regressions {
		fmt.Fprintf(w, "  %s: %s -> %s (%+.1f%%)\n", r.key, rep.fmtVal(r.baseNS), rep.fmtVal(r.curNS), r.deltaPct)
	}
}

func (rep *report) fmtVal(v float64) string {
	if rep.normalized {
		return fmt.Sprintf("%.1f%%", v)
	}
	return fmtDur(time.Duration(v))
}

func fmtDelta(pct float64) string {
	if math.IsNaN(pct) {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", pct)
}

// fmtDur renders a duration at table-friendly precision (tracestat's
// convention).
func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "0"
	case d >= time.Second || d <= -time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond || d <= -time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/1e6)
	default:
		return fmt.Sprintf("%dµs", d/time.Microsecond)
	}
}
