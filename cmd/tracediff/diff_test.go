package main

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// synthTrace renders a balanced NDJSON trace: one run span per TP level
// with one child span per (stage, duration) pair. slow multiplies the
// named stage's duration, the "artificially slowed stage" fixture.
func synthTrace(levels []float64, stages map[string]time.Duration, slowStage string, slow float64) string {
	var sb strings.Builder
	id := int64(0)
	ts := int64(1_700_000_000_000_000_000)
	stamp := func(ns int64) string { return time.Unix(0, ns).UTC().Format(time.RFC3339Nano) }
	for _, tp := range levels {
		runID := id
		id++
		fmt.Fprintf(&sb, `{"ev":"span_start","id":%d,"stage":"run","tp":%g,"t":"%s"}`+"\n",
			runID, tp, stamp(ts))
		var total time.Duration
		// Stage order must be deterministic for stable span IDs.
		for _, st := range []string{"place", "atpg", "route"} {
			d := stages[st]
			if st == slowStage {
				d = time.Duration(float64(d) * slow)
			}
			total += d
			sid := id
			id++
			fmt.Fprintf(&sb, `{"ev":"span_start","id":%d,"parent":%d,"stage":"%s","tp":%g,"t":"%s"}`+"\n",
				sid, runID, st, tp, stamp(ts))
			fmt.Fprintf(&sb, `{"ev":"span_end","id":%d,"parent":%d,"stage":"%s","tp":%g,"t":"%s","dur_ns":%d,"counters":{"%s.work":%d}}`+"\n",
				sid, runID, st, tp, stamp(ts+int64(d)), int64(d), st, 100)
		}
		fmt.Fprintf(&sb, `{"ev":"span_end","id":%d,"stage":"run","tp":%g,"t":"%s","dur_ns":%d}`+"\n",
			runID, tp, stamp(ts+int64(total)), int64(total))
	}
	return sb.String()
}

var baseStages = map[string]time.Duration{
	"place": 400 * time.Millisecond,
	"atpg":  900 * time.Millisecond,
	"route": 200 * time.Millisecond,
}

func TestDiffIdenticalTraces(t *testing.T) {
	text := synthTrace([]float64{0, 1}, baseStages, "", 1)
	base, err := loadTrace(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := loadTrace(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	rep := diff(base, cur, options{maxRegressPct: 25})
	if len(rep.regressions) != 0 {
		t.Fatalf("identical traces regressed: %+v", rep.regressions)
	}
	// 2 levels × (3 stages + run).
	if len(rep.rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rep.rows))
	}
	for _, r := range rep.rows {
		if r.deltaPct != 0 || r.note != "" {
			t.Errorf("row %s: delta %.1f%%, note %q", r.key, r.deltaPct, r.note)
		}
	}
}

func TestDiffFlagsSlowedStage(t *testing.T) {
	base, _ := loadTrace(strings.NewReader(synthTrace([]float64{0, 1}, baseStages, "", 1)))
	cur, _ := loadTrace(strings.NewReader(synthTrace([]float64{0, 1}, baseStages, "atpg", 1.6)))
	rep := diff(base, cur, options{maxRegressPct: 25, minDur: 100 * time.Millisecond})
	// The slowed stage gates at both levels; the run spans containing it
	// regress past 25% too (900ms of 1.5s grew 1.6x) and are also named.
	seen := map[string]bool{}
	for _, r := range rep.regressions {
		if r.stage != "atpg" && r.stage != "run" {
			t.Errorf("flagged %s, want only atpg and its runs", r.key)
		}
		seen[r.key.String()] = true
		if r.stage == "atpg" && (r.deltaPct < 59 || r.deltaPct > 61) {
			t.Errorf("%s delta = %.1f%%, want ~60%%", r.key, r.deltaPct)
		}
	}
	if !seen["atpg @ tp 0.0%"] || !seen["atpg @ tp 1.0%"] {
		t.Fatalf("regressions = %+v, want atpg at both levels", rep.regressions)
	}
	if !seen["atpg @ tp 1.0%"] {
		t.Errorf("regression keys %v missing atpg @ tp 1.0%%", seen)
	}
	// The report names the stage and level on its regression lines.
	var sb strings.Builder
	rep.write(&sb)
	if !strings.Contains(sb.String(), "REGRESSION") || !strings.Contains(sb.String(), "atpg @ tp 1.0%") {
		t.Fatalf("report missing regression naming:\n%s", sb.String())
	}
}

func TestDiffNoiseFloorSuppresses(t *testing.T) {
	base, _ := loadTrace(strings.NewReader(synthTrace([]float64{0}, baseStages, "", 1)))
	cur, _ := loadTrace(strings.NewReader(synthTrace([]float64{0}, baseStages, "route", 2)))
	// route doubled, but its 200ms baseline sits below the 300ms floor.
	rep := diff(base, cur, options{maxRegressPct: 25, minDur: 300 * time.Millisecond})
	if len(rep.regressions) != 0 {
		t.Fatalf("noise floor did not suppress: %+v", rep.regressions)
	}
	// Without the floor it gates.
	rep = diff(base, cur, options{maxRegressPct: 25})
	if len(rep.regressions) != 1 || rep.regressions[0].stage != "route" {
		t.Fatalf("expected route regression, got %+v", rep.regressions)
	}
}

func TestDiffNormalizeCancelsUniformSlowdown(t *testing.T) {
	// Current machine is uniformly 2x slower: every absolute duration
	// doubles, every share stays identical.
	slowAll := map[string]time.Duration{}
	for st, d := range baseStages {
		slowAll[st] = 2 * d
	}
	base, _ := loadTrace(strings.NewReader(synthTrace([]float64{0}, baseStages, "", 1)))
	cur, _ := loadTrace(strings.NewReader(synthTrace([]float64{0}, slowAll, "", 1)))
	if rep := diff(base, cur, options{maxRegressPct: 25}); len(rep.regressions) != 4 {
		t.Fatalf("absolute mode should flag all 3 stages plus the run, got %+v", rep.regressions)
	}
	if rep := diff(base, cur, options{maxRegressPct: 25, normalize: true}); len(rep.regressions) != 0 {
		t.Fatalf("normalize should cancel a uniform slowdown, got %+v", rep.regressions)
	}
	// A genuine shape change still shows through -normalize: atpg's
	// share climbs from 60% to ~79%, +32% relative.
	cur2, _ := loadTrace(strings.NewReader(synthTrace([]float64{0}, slowAll, "atpg", 2.5)))
	rep := diff(base, cur2, options{maxRegressPct: 25, normalize: true})
	if len(rep.regressions) != 1 || rep.regressions[0].stage != "atpg" {
		t.Fatalf("normalized diff missed the shape change: %+v", rep.regressions)
	}
}

func TestDiffHardRegressBackstop(t *testing.T) {
	// A dominant stage is share-invariant: atpg at 90% of its run can
	// triple and its share moves a few percent — -normalize alone never
	// gates. The absolute backstop catches it.
	dominant := map[string]time.Duration{
		"place": 50 * time.Millisecond,
		"atpg":  9 * time.Second,
		"route": 50 * time.Millisecond,
	}
	base, _ := loadTrace(strings.NewReader(synthTrace([]float64{0}, dominant, "", 1)))
	cur, _ := loadTrace(strings.NewReader(synthTrace([]float64{0}, dominant, "atpg", 3)))
	if rep := diff(base, cur, options{maxRegressPct: 25, minDur: 100 * time.Millisecond, normalize: true}); len(rep.regressions) != 0 {
		t.Fatalf("share gate alone should miss a dominant-stage slip, got %+v", rep.regressions)
	}
	rep := diff(base, cur, options{maxRegressPct: 25, hardRegressPct: 150, minDur: 100 * time.Millisecond, normalize: true})
	// The run span containing the slip regresses absolutely too (same
	// convention as unnormalized mode).
	var atpgNote string
	for _, r := range rep.regressions {
		if r.stage != "atpg" && r.stage != "run" {
			t.Errorf("backstop flagged %s, want only atpg and its run", r.key)
		}
		if r.stage == "atpg" {
			atpgNote = r.note
		}
	}
	if atpgNote == "" {
		t.Fatalf("backstop missed the dominant-stage slip: %+v", rep.regressions)
	}
	if !strings.Contains(atpgNote, "absolute") || !strings.Contains(atpgNote, "+200%") {
		t.Errorf("backstop note = %q, want absolute +200%% explanation", atpgNote)
	}
	// A 2x machine (uniform slowdown, under the 150%% backstop) still
	// passes — the backstop threshold sits above host jitter.
	slowAll := map[string]time.Duration{}
	for st, d := range dominant {
		slowAll[st] = 2 * d
	}
	cur2, _ := loadTrace(strings.NewReader(synthTrace([]float64{0}, slowAll, "", 1)))
	if rep := diff(base, cur2, options{maxRegressPct: 25, hardRegressPct: 150, minDur: 100 * time.Millisecond, normalize: true}); len(rep.regressions) != 0 {
		t.Fatalf("backstop gated a uniform 2x slowdown: %+v", rep.regressions)
	}
}

func TestDiffCounterDrift(t *testing.T) {
	text := synthTrace([]float64{0}, baseStages, "", 1)
	base, _ := loadTrace(strings.NewReader(text))
	cur, _ := loadTrace(strings.NewReader(strings.ReplaceAll(text, `"atpg.work":100`, `"atpg.work":140`)))
	rep := diff(base, cur, options{maxRegressPct: 25})
	var note string
	for _, r := range rep.rows {
		if r.stage == "atpg" {
			note = r.note
		}
	}
	if note != "atpg.work 100->140" {
		t.Fatalf("counter drift note = %q", note)
	}
	if len(rep.regressions) != 0 {
		t.Fatal("counter drift must not gate on its own")
	}
}

func TestLoadLedger(t *testing.T) {
	ledger := `{
	  "table1": {
	    "BenchmarkTable1_S38417": {"iterations": 5, "ns_per_op": 2e9, "metrics": {"patterns": 412}},
	    "Stage/atpg": {"iterations": 6, "ns_per_op": 9e8}
	  }
	}`
	s, err := loadLedger(strings.NewReader(ledger), "table1")
	if err != nil {
		t.Fatal(err)
	}
	c := s.cells[key{"BenchmarkTable1_S38417", -1}]
	if c == nil || c.durNS != 2e9 || c.counters["patterns"] != 412 {
		t.Fatalf("ledger cell = %+v", c)
	}
	if _, err := loadLedger(strings.NewReader(ledger), "missing"); err == nil ||
		!strings.Contains(err.Error(), "table1") {
		t.Fatalf("missing-section error should list sections, got %v", err)
	}
	if _, err := loadLedger(strings.NewReader("not json"), "x"); err == nil {
		t.Fatal("garbage ledger accepted")
	}
}
