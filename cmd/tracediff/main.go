// Command tracediff compares two flow recordings — NDJSON span traces
// (tpiflow -trace ..., plain or gzipped) or benchjson ledgers (*.json)
// — and prints a Table-2-style per-stage delta report: baseline vs
// current duration per stage × TP level, the signed percentage change,
// and any counter drift (patterns, cuts, overflows — deterministic, so
// any drift is a real behavioral change).
//
// It is the repo's cross-run regression sentinel: the exit status is 1
// when any stage regressed beyond -max-regress percent, so CI can diff
// a fresh trace-smoke artifact against the committed baseline and fail
// the build on a real slowdown. The same align/compare core
// (internal/tracecmp) runs inside tpid, diffing every retired run
// against its archived baseline.
//
// Usage:
//
//	tracediff [flags] baseline current
//
//	tpiflow -circuit s38417c -trace new.ndjson
//	tracediff -max-regress 25 -min-dur 100ms trace_baseline.ndjson new.ndjson
//	tracediff -base-section baseline BENCH_BASELINE.json BENCH_PR5.json
//	curl -s tpid:8080/v1/runs/r42/trace | tracediff trace_baseline.ndjson -
//
// Wall-clock comparisons across machines are noisy; -normalize compares
// each stage's share of its run's total time instead of absolute
// durations, which cancels machine speed, and -min-dur suppresses
// sub-threshold stages entirely. A stage that dominates its run is
// share-invariant (slowing it slows the run too), so -normalize keeps
// an absolute backstop: -hard-regress gates any stage whose wall time
// grew beyond that percentage regardless of share. Inputs ending in
// .json are read as benchjson ledgers (pick the section with -section);
// everything else — including "-" for stdin — is parsed as an NDJSON
// trace, gunzipped transparently when it starts with the gzip magic.
//
// Exit status: 0 clean, 1 regression beyond threshold, 2 usage or
// parse failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"tpilayout/internal/tracecmp"
)

func main() {
	maxRegress := flag.Float64("max-regress", 25, "fail (exit 1) when a stage's duration grew by more than this percentage")
	minDur := flag.Duration("min-dur", 0, "noise floor: stages whose baseline duration is below this never gate (e.g. 100ms)")
	normalize := flag.Bool("normalize", false, "compare each stage's share of run total instead of absolute durations (machine-speed invariant)")
	hardRegress := flag.Float64("hard-regress", 150, "with -normalize: absolute-time backstop — a stage whose wall time grew beyond this percentage gates even if its share of the run barely moved (dominant stages are share-invariant); 0 disables")
	section := flag.String("section", "current", "ledger section to read when an input is a benchjson *.json file")
	baseSection := flag.String("base-section", "", "ledger section for the baseline file (default: same as -section)")
	flag.Parse()

	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracediff [flags] baseline current")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *baseSection == "" {
		*baseSection = *section
	}
	base, err := load(flag.Arg(0), *baseSection)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracediff: %s: %v\n", flag.Arg(0), err)
		os.Exit(2)
	}
	cur, err := load(flag.Arg(1), *section)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracediff: %s: %v\n", flag.Arg(1), err)
		os.Exit(2)
	}

	rep := tracecmp.Diff(base, cur, tracecmp.Options{
		MaxRegressPct:  *maxRegress,
		HardRegressPct: *hardRegress,
		MinDur:         *minDur,
		Normalize:      *normalize,
	})
	rep.Write(os.Stdout)
	if len(rep.Regressions) > 0 {
		fmt.Fprintf(os.Stderr, "tracediff: %d stage(s) regressed beyond threshold (vs %s)\n",
			len(rep.Regressions), flag.Arg(0))
		os.Exit(1)
	}
}

// load reads one input, dispatching on the suffix: *.json is a
// benchjson ledger, anything else — including "-" for stdin — an
// NDJSON trace (plain or gzipped).
func load(path, section string) (*tracecmp.Side, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	if strings.HasSuffix(path, ".json") {
		return tracecmp.LoadLedger(r, section)
	}
	return tracecmp.LoadTrace(r)
}
