// Command tracestat summarizes an NDJSON span trace written by
// tpiflow/tpitables -trace (or any telemetry NDJSON sink): a per-stage
// wall-time table with one column per swept test-point level, the
// fraction of each run accounted for by its stages, and the stage
// counter totals.
//
// Usage:
//
//	tpiflow -circuit s38417c -trace out.ndjson
//	tracestat out.ndjson
//	tracestat < out.ndjson
//	curl -s tpid:8080/v1/runs/r000042/trace | tracestat -
//
// Inputs may be gzip-compressed (tpid's archived traces are): the gzip
// magic is sniffed and decompressed transparently. "-" (or no argument)
// reads stdin.
//
// The exit status is non-zero if the trace is unbalanced (a span
// started but never ended, or vice versa) — the signature of a crashed
// or mis-instrumented run — which makes tracestat a cheap CI gate over
// any traced flow.
//
// Service streams (tpid SSE feeds, /debug/flight dumps) interleave two
// extra record kinds with the spans: observation events (span_end with
// id 0 — queue depth, cache hits, per-tenant SLO samples) and
// structured log records. Both get their own summary sections and never
// count against balance. Flight-recorder dumps are a rotating ring, so
// the oldest span starts may have been overwritten; pass -flight to
// report the resulting unbalance as a note instead of a failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"tpilayout"
)

// stageRun is the stage name of the span wrapping one full flow run
// (mirrors the internal flow constant; the NDJSON schema is the stable
// contract).
const stageRun = "run"

func main() {
	showCounters := flag.Bool("counters", true, "print stage counter and gauge totals after the timing table")
	p50 := flag.Bool("p50", true, "print a median column per histogram in the distribution table")
	p99 := flag.Bool("p99", true, "print a 99th-percentile column per histogram in the distribution table")
	flight := flag.Bool("flight", false, "treat the input as a flight-recorder dump: ring rotation drops the oldest span starts, so unbalanced spans are noted instead of failing")
	flag.Parse()

	var in io.Reader = os.Stdin
	name := "<stdin>"
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: tracestat [flags] [trace.ndjson]")
		os.Exit(2)
	}
	if flag.NArg() == 1 && flag.Arg(0) != "-" {
		name = flag.Arg(0)
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracestat:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	trace, err := tpilayout.ParseTrace(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracestat:", err)
		os.Exit(1)
	}
	summarize(os.Stdout, name, trace, *showCounters, *p50, *p99)
	summarizeService(os.Stdout, trace)
	summarizeLogs(os.Stdout, trace)
	if !trace.Balanced() {
		if *flight {
			fmt.Fprintf(os.Stdout, "\nnote: %d span(s) truncated by ring rotation: ids %v\n",
				len(trace.Unbalanced), trace.Unbalanced)
			return
		}
		fmt.Fprintf(os.Stderr, "tracestat: UNBALANCED trace — %d span(s) without a matching start/end: ids %v\n",
			len(trace.Unbalanced), trace.Unbalanced)
		os.Exit(1)
	}
}

// summarizeService tabulates the observation events a tpid stream
// interleaves with its spans: counters summed, gauges last-wins, both
// split by tenant when the event carries one.
func summarizeService(w io.Writer, trace *tpilayout.Trace) {
	if len(trace.Observations) == 0 {
		return
	}
	counters := map[string]int64{}
	gauges := map[string]float64{}
	hists := map[string]tpilayout.HistData{}
	for _, e := range trace.Observations {
		suffix := ""
		if t := e.Attrs["tenant"]; t != "" {
			suffix = "{tenant=" + t + "}"
		}
		for c, v := range e.Counters {
			counters[c+suffix] += v
		}
		for g, v := range e.Gauges {
			gauges[g+suffix] = v
		}
		for h, d := range e.Hists {
			merged := hists[h+suffix]
			merged.Merge(d)
			hists[h+suffix] = merged
		}
	}
	fmt.Fprintf(w, "\nservice: %d observation event(s)\n", len(trace.Observations))
	for _, c := range sortedKeys(counters) {
		fmt.Fprintf(w, "%-42s %12d\n", c, counters[c])
	}
	for _, g := range sortedKeys(gauges) {
		fmt.Fprintf(w, "%-42s %12.3g\n", g, gauges[g])
	}
	for _, h := range sortedKeys(hists) {
		d := hists[h]
		fmt.Fprintf(w, "%-42s %12s (n=%d, p50 %s, p99 %s)\n",
			h, "", d.Count, fmtQuantile(h, d.Quantile(0.5)), fmtQuantile(h, d.Quantile(0.99)))
	}
}

// summarizeLogs counts the structured log records in the stream by
// level and reprints warnings and errors — the lines a postmortem
// reader wants first.
func summarizeLogs(w io.Writer, trace *tpilayout.Trace) {
	if len(trace.Logs) == 0 {
		return
	}
	byLevel := map[string]int{}
	for _, e := range trace.Logs {
		byLevel[e.Level]++
	}
	fmt.Fprintf(w, "\nlogs: %d record(s)", len(trace.Logs))
	for _, lv := range []string{"DEBUG", "INFO", "WARN", "ERROR"} {
		if n := byLevel[lv]; n > 0 {
			fmt.Fprintf(w, " %s=%d", strings.ToLower(lv), n)
		}
	}
	fmt.Fprintln(w)
	for _, e := range trace.Logs {
		if e.Level != "WARN" && e.Level != "ERROR" {
			continue
		}
		line := fmt.Sprintf("  %s %s", e.Level, e.Msg)
		if id := e.Attrs["job_id"]; id != "" {
			line += " job_id=" + id
		}
		if id := e.Attrs["run_id"]; id != "" {
			line += " run_id=" + id
		}
		fmt.Fprintln(w, line)
	}
}

func summarize(w io.Writer, name string, trace *tpilayout.Trace, showCounters, p50, p99 bool) {
	levels := trace.Levels()

	// First pass: identify run spans and attribute them to their level.
	runLevel := map[int64]float64{}
	runDur := map[float64]time.Duration{}
	runCount := map[float64]int{}
	var errSpans int
	for _, s := range trace.Spans {
		if s.Err != "" {
			errSpans++
		}
		if s.Stage == stageRun {
			runLevel[s.ID] = s.TPPercent
			runDur[s.TPPercent] += s.Duration
			runCount[s.TPPercent]++
		}
	}

	// Second pass: stage children of run spans, in first-seen order
	// (every run ends its stages in flow order, so the merge is that
	// order), plus counter/gauge totals per level.
	stageDur := map[string]map[float64]time.Duration{}
	var stageOrder []string
	counters := map[string]map[float64]int64{}
	gauges := map[string]map[float64]float64{}
	hists := map[string]map[float64]tpilayout.HistData{}
	for _, s := range trace.Spans {
		tp, ok := runLevel[s.Parent]
		if !ok {
			if s.Stage == stageRun {
				tp = s.TPPercent // run-span histograms (flow.stage_ns)
			} else {
				continue
			}
		}
		for h, d := range s.Hists {
			if hists[h] == nil {
				hists[h] = map[float64]tpilayout.HistData{}
			}
			merged := hists[h][tp]
			merged.Merge(d)
			hists[h][tp] = merged
		}
		if s.Stage == stageRun {
			continue
		}
		if stageDur[s.Stage] == nil {
			stageDur[s.Stage] = map[float64]time.Duration{}
			stageOrder = append(stageOrder, s.Stage)
		}
		stageDur[s.Stage][tp] += s.Duration
		for c, v := range s.Counters {
			if counters[c] == nil {
				counters[c] = map[float64]int64{}
			}
			counters[c][tp] += v
		}
		for g, v := range s.Gauges {
			if gauges[g] == nil {
				gauges[g] = map[float64]float64{}
			}
			gauges[g][tp] = v
		}
	}

	nRuns := len(runLevel)
	fmt.Fprintf(w, "%s: %d events, %d spans (%d runs", name, len(trace.Events), len(trace.Spans), nRuns)
	if errSpans > 0 {
		fmt.Fprintf(w, ", %d with errors", errSpans)
	}
	fmt.Fprint(w, ")\n\n")
	if nRuns == 0 {
		fmt.Fprintln(w, "no run spans — nothing to tabulate")
		return
	}

	const col = 11
	cell := func(s string) string { return fmt.Sprintf("%*s", col, s) }
	header := fmt.Sprintf("%-10s", "stage")
	for _, tp := range levels {
		header += cell(fmt.Sprintf("tp %.1f%%", tp))
	}
	fmt.Fprintln(w, header)

	var stageTotal, runTotal time.Duration
	for _, st := range stageOrder {
		row := fmt.Sprintf("%-10s", st)
		for _, tp := range levels {
			d := stageDur[st][tp]
			stageTotal += d
			row += cell(fmtDur(d))
		}
		fmt.Fprintln(w, row)
	}
	row := fmt.Sprintf("%-10s", "run total")
	for _, tp := range levels {
		runTotal += runDur[tp]
		row += cell(fmtDur(runDur[tp]))
	}
	fmt.Fprintln(w, row)
	row = fmt.Sprintf("%-10s", "other")
	for _, tp := range levels {
		var lv time.Duration
		for _, st := range stageOrder {
			lv += stageDur[st][tp]
		}
		row += cell(fmtDur(runDur[tp] - lv))
	}
	fmt.Fprintln(w, row)
	if runTotal > 0 {
		fmt.Fprintf(w, "\nstages account for %.1f%% of the %s total run wall time\n",
			100*float64(stageTotal)/float64(runTotal), fmtDur(runTotal))
	}

	if showCounters && (len(counters) > 0 || len(gauges) > 0) {
		fmt.Fprintf(w, "\n%-26s", "counter")
		for _, tp := range levels {
			fmt.Fprint(w, cell(fmt.Sprintf("tp %.1f%%", tp)))
		}
		fmt.Fprintln(w)
		for _, c := range sortedKeys(counters) {
			fmt.Fprintf(w, "%-26s", c)
			for _, tp := range levels {
				fmt.Fprint(w, cell(fmt.Sprintf("%d", counters[c][tp])))
			}
			fmt.Fprintln(w)
		}
		for _, g := range sortedKeys(gauges) {
			fmt.Fprintf(w, "%-26s", g)
			for _, tp := range levels {
				fmt.Fprint(w, cell(fmt.Sprintf("%.3g", gauges[g][tp])))
			}
			fmt.Fprintln(w)
		}
	}

	// Distribution table: the per-level percentile estimates of every
	// histogram the trace carries (PODEM latency, FM cut deltas, per-net
	// route times, ...), one row per requested quantile.
	if (!p50 && !p99) || len(hists) == 0 {
		return
	}
	fmt.Fprintf(w, "\n%-26s", "histogram")
	for _, tp := range levels {
		fmt.Fprint(w, cell(fmt.Sprintf("tp %.1f%%", tp)))
	}
	fmt.Fprintln(w)
	for _, h := range sortedKeys(hists) {
		rows := []struct {
			label string
			q     float64
			on    bool
		}{
			{"count", -1, true},
			{"p50", 0.5, p50},
			{"p99", 0.99, p99},
		}
		for _, r := range rows {
			if !r.on {
				continue
			}
			fmt.Fprintf(w, "%-26s", h+" "+r.label)
			for _, tp := range levels {
				d := hists[h][tp]
				if r.q < 0 {
					fmt.Fprint(w, cell(fmt.Sprintf("%d", d.Count)))
				} else {
					fmt.Fprint(w, cell(fmtQuantile(h, d.Quantile(r.q))))
				}
			}
			fmt.Fprintln(w)
		}
	}
}

// fmtQuantile renders a quantile estimate: duration-valued histograms
// (name ending in _ns) as durations, everything else as a plain number.
func fmtQuantile(name string, q float64) string {
	if strings.HasSuffix(name, "_ns") {
		return fmtDur(time.Duration(q))
	}
	return fmt.Sprintf("%.3g", q)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// fmtDur renders a duration at table-friendly precision.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second || d <= -time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond || d <= -time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/1e6)
	default:
		return fmt.Sprintf("%dµs", d/time.Microsecond)
	}
}
