package main

import (
	"bytes"
	"strings"
	"testing"

	"tpilayout"
)

// synthetic trace: one run at tp 0 and one at tp 2, each with an atpg
// stage carrying a counter and two histograms (a duration-valued one
// and a dimensionless one). Bucket 20 is (0.52,1.05]ms, bucket 27 is
// (67,134]ms — fixed data pins the quantile estimates.
const traceText = `{"ev":"span_start","id":1,"stage":"run","tp":0,"t":"2026-08-06T12:00:00Z"}
{"ev":"span_start","id":2,"parent":1,"stage":"atpg","tp":0,"t":"2026-08-06T12:00:00Z"}
{"ev":"span_end","id":2,"parent":1,"stage":"atpg","tp":0,"t":"2026-08-06T12:00:01Z","dur_ns":1000000000,"counters":{"atpg.patterns":412},"hists":{"atpg.podem_ns":{"n":4,"s":200000,"b":{"20":3,"27":1}},"atpg.podem_bt_depth":{"n":4,"s":16,"b":{"2":4}}}}
{"ev":"span_end","id":1,"stage":"run","tp":0,"t":"2026-08-06T12:00:02Z","dur_ns":2000000000}
{"ev":"span_start","id":3,"stage":"run","tp":2,"t":"2026-08-06T12:00:00Z"}
{"ev":"span_start","id":4,"parent":3,"stage":"atpg","tp":2,"t":"2026-08-06T12:00:00Z"}
{"ev":"span_end","id":4,"parent":3,"stage":"atpg","tp":2,"t":"2026-08-06T12:00:01Z","dur_ns":1500000000,"counters":{"atpg.patterns":390},"hists":{"atpg.podem_ns":{"n":4,"s":400000,"b":{"20":2,"27":2}}}}
{"ev":"span_end","id":3,"stage":"run","tp":2,"t":"2026-08-06T12:00:02Z","dur_ns":2500000000}
`

func parseFixture(t *testing.T) *tpilayout.Trace {
	t.Helper()
	trace, err := tpilayout.ParseTrace(strings.NewReader(traceText))
	if err != nil {
		t.Fatal(err)
	}
	return trace
}

// TestSummarizePercentileTable pins the -p50/-p99 distribution table
// format exactly: histogram rows after the counter table, one count/
// p50/p99 row per histogram, duration formatting for *_ns names.
func TestSummarizePercentileTable(t *testing.T) {
	var buf bytes.Buffer
	summarize(&buf, "fixture", parseFixture(t), true, true, true)
	out := buf.String()

	want := `
histogram                     tp 0.0%    tp 2.0%
atpg.podem_bt_depth count           4          0
atpg.podem_bt_depth p50             3          0
atpg.podem_bt_depth p99          3.98          0
atpg.podem_ns count                 4          4
atpg.podem_ns p50               873µs      1.0ms
atpg.podem_ns p99             131.5ms    132.9ms
`
	if !strings.Contains(out, want) {
		t.Errorf("distribution table not pinned.\nwant section:\n%s\ngot output:\n%s", want, out)
	}
	// Counters still present, before the histogram table.
	ci := strings.Index(out, "atpg.patterns")
	hi := strings.Index(out, "histogram")
	if ci < 0 || hi < 0 || ci > hi {
		t.Errorf("counter table missing or misplaced:\n%s", out)
	}
}

// TestSummarizePercentileFlags: -p50=false/-p99=false drop their rows;
// both off drops the whole section.
func TestSummarizePercentileFlags(t *testing.T) {
	var buf bytes.Buffer
	summarize(&buf, "fixture", parseFixture(t), false, false, true)
	out := buf.String()
	if strings.Contains(out, "p50") || !strings.Contains(out, "atpg.podem_ns p99") {
		t.Errorf("-p50=false output wrong:\n%s", out)
	}
	if strings.Contains(out, "atpg.patterns") {
		t.Errorf("-counters=false leaked counters:\n%s", out)
	}

	buf.Reset()
	summarize(&buf, "fixture", parseFixture(t), true, false, false)
	if strings.Contains(buf.String(), "histogram") {
		t.Errorf("both percentile flags off should drop the section:\n%s", buf.String())
	}
}

// serviceText is a tpid-style stream: spans interleaved with
// observation events (span_end id 0, the service's metric flushes) and
// structured log records, all carrying correlation attrs.
const serviceText = `{"ev":"span_start","id":1,"stage":"run","tp":0,"t":"2026-08-06T12:00:00Z","attrs":{"run_id":"r000001-aa","job_id":"j1","tenant":"acme"}}
{"ev":"log","id":0,"stage":"service","tp":0,"t":"2026-08-06T12:00:00Z","level":"INFO","msg":"job accepted","attrs":{"job_id":"j1","run_id":"r000001-aa","tenant":"acme"}}
{"ev":"span_end","id":0,"stage":"service","tp":-1,"t":"2026-08-06T12:00:01Z","counters":{"service.cache_hits":2},"gauges":{"service.queue_depth":3}}
{"ev":"span_end","id":0,"stage":"service","tp":-1,"t":"2026-08-06T12:00:01Z","counters":{"service.jobs_done":1},"attrs":{"tenant":"acme"}}
{"ev":"span_end","id":0,"stage":"service","tp":-1,"t":"2026-08-06T12:00:02Z","counters":{"service.cache_hits":1},"gauges":{"service.queue_depth":1}}
{"ev":"log","id":0,"stage":"service","tp":0,"t":"2026-08-06T12:00:02Z","level":"WARN","msg":"level retry","attrs":{"job_id":"j1","run_id":"r000001-aa"}}
{"ev":"span_end","id":1,"stage":"run","tp":0,"t":"2026-08-06T12:00:03Z","dur_ns":3000000000,"attrs":{"run_id":"r000001-aa","job_id":"j1","tenant":"acme"}}
`

// TestServiceAndLogSections pins the service/log summary sections and
// confirms observation + log records never unbalance a trace.
func TestServiceAndLogSections(t *testing.T) {
	trace, err := tpilayout.ParseTrace(strings.NewReader(serviceText))
	if err != nil {
		t.Fatal(err)
	}
	if !trace.Balanced() {
		t.Fatalf("observation/log records must not count against balance: unbalanced ids %v", trace.Unbalanced)
	}
	if len(trace.Observations) != 3 || len(trace.Logs) != 2 {
		t.Fatalf("got %d observations, %d logs; want 3, 2", len(trace.Observations), len(trace.Logs))
	}

	var buf bytes.Buffer
	summarizeService(&buf, trace)
	out := buf.String()
	for _, want := range []string{
		"service: 3 observation event(s)",
		"service.cache_hits", "3", // summed across flushes
		"service.jobs_done{tenant=acme}", // tenant-split family
		"service.queue_depth", "1", // gauge: last value wins
	} {
		if !strings.Contains(out, want) {
			t.Errorf("service section missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	summarizeLogs(&buf, trace)
	out = buf.String()
	for _, want := range []string{
		"logs: 2 record(s) info=1 warn=1",
		"  WARN level retry job_id=j1 run_id=r000001-aa",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("log section missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "job accepted") {
		t.Errorf("INFO records should not be reprinted:\n%s", out)
	}
}

// TestFlightDumpTolerated: a ring dump whose oldest span_start rotated
// away parses, summarizes, and reports the orphan end as unbalanced —
// the -flight flag in main downgrades that to a note.
func TestFlightDumpTolerated(t *testing.T) {
	dump := `{"ev":"span_end","id":7,"stage":"atpg","tp":1,"t":"2026-08-06T12:00:01Z","dur_ns":1000000}
{"ev":"log","id":0,"stage":"service","tp":0,"t":"2026-08-06T12:00:02Z","level":"ERROR","msg":"panic captured","attrs":{"reason":"panic"}}
`
	trace, err := tpilayout.ParseTrace(strings.NewReader(dump))
	if err != nil {
		t.Fatal(err)
	}
	if trace.Balanced() || len(trace.Unbalanced) != 1 || trace.Unbalanced[0] != 7 {
		t.Fatalf("want exactly span 7 unbalanced, got %v", trace.Unbalanced)
	}
	var buf bytes.Buffer
	summarizeLogs(&buf, trace)
	if !strings.Contains(buf.String(), "ERROR panic captured") {
		t.Errorf("panic log line not surfaced:\n%s", buf.String())
	}
}
