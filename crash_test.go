package tpilayout

// Crash/restart end-to-end test: the real tpid binary is started with a
// journal directory, the golden s38417c sweep is submitted over HTTP,
// the process is SIGKILLed as soon as the first level checkpoint is
// durable, and a second tpid on the same directory must finish the job —
// re-running ONLY the missing levels — with tables byte-identical to the
// committed golden file. This is the proof that crash recovery costs
// work, not correctness.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"tpilayout/internal/journal"
	"tpilayout/internal/service"
)

func TestCrashRestartResumesSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real daemon; skipped in -short")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "tpid")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/tpid").CombinedOutput(); err != nil {
		t.Fatalf("building tpid: %v\n%s", err, out)
	}
	dataDir := filepath.Join(tmp, "journal")
	addr := freeAddr(t)
	base := "http://" + addr

	startDaemon := func() *exec.Cmd {
		cmd := exec.Command(bin,
			"-addr", addr, "-data-dir", dataDir,
			"-workers", "1", "-flow-workers", "1")
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting tpid: %v", err)
		}
		t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
		waitReady(t, base)
		return cmd
	}

	// ---- First life: submit the golden sweep, crash mid-run. ----
	proc1 := startDaemon()
	body, err := json.Marshal(service.JobRequest{
		Tenant:   "crash",
		Circuit:  service.CircuitSpec{Spec: "s38417c", Scale: 0.05},
		TPLevels: []float64{0, 2, 5},
		Flow:     service.FlowConfig{Experiment: "s38417c"},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", resp.StatusCode)
	}
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// SIGKILL the instant the first level-done record is durable: with a
	// serial sweep (workers 1, flow-workers 1) levels 2 and 5 are still
	// unwritten, so the restart has real work left AND real work saved.
	waitForLevelCheckpoint(t, dataDir)
	if err := proc1.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	proc1.Wait()

	// ---- Second life: same directory, the job must finish by itself. ----
	startDaemon()

	deadline := time.Now().Add(5 * time.Minute)
	var final service.JobStatus
	for {
		final = getJSON[service.JobStatus](t, base+"/v1/jobs/"+st.ID)
		if final.State == service.StateDone {
			break
		}
		if final.State == service.StateFailed || final.State == service.StateCanceled {
			t.Fatalf("replayed job ended %s: %s", final.State, final.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("replayed job never finished (state %s)", final.State)
		}
		time.Sleep(100 * time.Millisecond)
	}
	if final.ResumedLevels < 1 {
		t.Fatalf("resumed_levels = %d, want >= 1 (checkpointed level was re-run)", final.ResumedLevels)
	}

	// The stitched result is byte-identical to the uninterrupted sweep.
	res := getJSON[service.JobResult](t, base+"/v1/jobs/"+st.ID+"/result")
	if !res.Complete {
		t.Fatalf("resumed result incomplete: %+v", res.Levels)
	}
	rendered := res.Table1 + "\n" + res.Table2 + "\n" + res.Table3
	want, err := os.ReadFile(filepath.Join(goldenDir, "sweep_s38417c.golden"))
	if err != nil {
		t.Fatalf("missing golden file (run TestSweepGolden -update first): %v", err)
	}
	if rendered != string(want) {
		t.Errorf("crash-resumed tables drifted from golden file\n%s", diffLines(string(want), rendered))
	}

	// The flow-run accounting proves only missing levels were executed:
	// every level is either resumed or run, never both.
	stats := getJSON[service.Stats](t, base+"/v1/stats")
	if stats.LevelsResumed < 1 || stats.LevelsRun+stats.LevelsResumed != 3 {
		t.Fatalf("levels run/resumed = %d/%d, want them to partition the 3 levels with >=1 resumed",
			stats.LevelsRun, stats.LevelsResumed)
	}
	if stats.ReplayedJobs != 1 {
		t.Fatalf("replayed_jobs = %d, want 1", stats.ReplayedJobs)
	}
}

// waitForLevelCheckpoint polls the journal directory until a level-done
// record is durable (and fails fast if the job retires first — then the
// kill would land too late to test anything).
func waitForLevelCheckpoint(t *testing.T, dir string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Minute)
	for time.Now().Before(deadline) {
		recs, err := journal.Read(dir)
		if err == nil {
			for _, r := range recs {
				switch r.Type {
				case journal.TypeLevelDone:
					return
				case journal.TypeRetired:
					t.Fatal("sweep retired before the crash could land; scale the circuit up")
				}
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("no level checkpoint ever became durable")
}

func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("tpid never became ready")
}

// freeAddr reserves an ephemeral localhost port for the daemon.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return fmt.Sprintf("127.0.0.1:%d", l.Addr().(*net.TCPAddr).Port)
}
