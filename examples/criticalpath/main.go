// Critical-path exclusion: the Section 5 technique. A baseline layout's
// critical paths are extracted with static timing analysis, the nets on
// them are blocked from receiving test points, and the flow is rerun.
// The comparison shows the trade the paper discusses: excluding critical
// nets recovers speed, at the cost of steering test points away from
// some of the nets they would otherwise improve.
package main

import (
	"flag"
	"fmt"
	"log"

	"tpilayout"
)

func main() {
	scale := flag.Float64("scale", 0.1, "circuit size scale (1.0 = paper size)")
	tp := flag.Float64("tp", 3, "test-point percentage")
	flag.Parse()

	spec := tpilayout.S38417Class()
	if *scale != 1.0 {
		spec = spec.Scale(*scale)
	}
	design, err := tpilayout.Generate(spec, tpilayout.DefaultLibrary())
	if err != nil {
		log.Fatal(err)
	}
	cfg := tpilayout.ExperimentConfig("s38417c")
	cfg.SkipATPG = true

	base, err := tpilayout.Run(design, cfg)
	if err != nil {
		log.Fatal(err)
	}

	plain := cfg
	plain.TPPercent = *tp
	withTP, err := tpilayout.Run(design, plain)
	if err != nil {
		log.Fatal(err)
	}

	exclude, err := tpilayout.CriticalNets(design, cfg)
	if err != nil {
		log.Fatal(err)
	}
	guarded := plain
	guarded.ExcludeNets = exclude
	withExcl, err := tpilayout.Run(design, guarded)
	if err != nil {
		log.Fatal(err)
	}

	report := func(label string, r *tpilayout.Result) {
		t := r.Metrics.Timing[0]
		fmt.Printf("%-28s Tcp %7.0f ps  Fmax %7.1f MHz  TPs on critical path: %d\n",
			label, t.TcpPS, t.FmaxMHz, t.TPOnPath)
	}
	fmt.Printf("excluding %d critical nets from TPI (%.0f%% test points):\n\n", len(exclude), *tp)
	report("baseline (no test points):", base)
	report("TPI unconstrained:", withTP)
	report("TPI with CP exclusion:", withExcl)
}
