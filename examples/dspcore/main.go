// DSP-core sweep: replays the paper's p26909 experiment — a 24-bit
// DSP-class core tested through at most 32 scan chains and placed at 50%
// row utilization — across 0%..5% test points, and prints Table 1. This
// is the circuit where the paper observed the largest pattern-count
// reduction (79% at 5% test points) and a missed 140 MHz timing target
// after TPI.
package main

import (
	"flag"
	"fmt"
	"log"

	"tpilayout"
)

func main() {
	scale := flag.Float64("scale", 0.1, "circuit size scale (1.0 = paper size)")
	flag.Parse()

	spec := tpilayout.DSPCoreClass()
	if *scale != 1.0 {
		spec = spec.Scale(*scale)
	}
	design, err := tpilayout.Generate(spec, tpilayout.DefaultLibrary())
	if err != nil {
		log.Fatal(err)
	}
	cfg := tpilayout.ExperimentConfig("p26909c")
	rows, err := tpilayout.Sweep(design, cfg, []float64{0, 1, 2, 3, 4, 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tpilayout.FormatTable1(rows))
	fmt.Println()
	fmt.Print(tpilayout.FormatTable3(rows))

	// The paper's headline check for this core: does it still meet its
	// application frequency after TPI?
	target := 1e6 / spec.Domains[0].PeriodPS
	for _, m := range rows {
		got := m.Timing[0].FmaxMHz
		verdict := "meets"
		if got < target {
			verdict = "MISSES"
		}
		fmt.Printf("%2d test points: Fmax %.1f MHz %s the %.0f MHz target\n",
			m.NumTP, got, verdict, target)
	}
}
