// Quickstart: run the paper's complete flow once — generate a circuit,
// insert 1% test points plus full scan, place, reorder chains, run ATPG,
// build clock trees, route, extract, and time the result — then print the
// numbers that end up in the paper's tables.
package main

import (
	"fmt"
	"log"

	"tpilayout"
)

func main() {
	// A reduced-size clone of the paper's s38417 profile keeps the
	// quickstart under a few seconds; pass 1.0 for the full-size circuit.
	spec := tpilayout.S38417Class().Scale(0.1)
	design, err := tpilayout.Generate(spec, tpilayout.DefaultLibrary())
	if err != nil {
		log.Fatal(err)
	}

	cfg := tpilayout.ExperimentConfig("s38417c")
	cfg.TPPercent = 1
	res, err := tpilayout.Run(design, cfg)
	if err != nil {
		log.Fatal(err)
	}

	m := res.Metrics
	fmt.Printf("%s: %d cells, %d scan flops in %d chains (l_max %d), %d test points\n",
		m.Circuit, m.Cells, m.NumFF, m.Chains, m.LMax, m.NumTP)
	fmt.Printf("test data: FC %.2f%%, FE %.2f%%, %d patterns, TDV %d bits, TAT %d cycles\n",
		m.FC, m.FE, m.Patterns, m.TDV, m.TAT)
	fmt.Printf("area:      core %.0f µm² (filler %.2f%%), chip %.0f µm², wires %.0f µm\n",
		m.CoreArea, m.FillerPct, m.ChipArea, m.LWires)
	for _, t := range m.Timing {
		fmt.Printf("timing %s: Tcp %.0f ps = wires %.0f + intrinsic %.0f + load-dep %.0f + setup %.0f + skew %.0f  (Fmax %.1f MHz)\n",
			t.Domain, t.TcpPS, t.TWires, t.TIntr, t.TLoadDep, t.TSetup, t.TSkew, t.FmaxMHz)
	}
}
