// Wireless-control sweep: replays the paper's "circuit 1" — a digital
// control core of a wireless-communication IC with two clock domains
// (8 MHz and 64 MHz application targets) — and reports the per-domain
// timing impact of test point insertion. The paper's observation is that
// both domains stay far faster than their targets even after TPI.
package main

import (
	"flag"
	"fmt"
	"log"

	"tpilayout"
)

func main() {
	scale := flag.Float64("scale", 0.1, "circuit size scale (1.0 = paper size)")
	flag.Parse()

	spec := tpilayout.WirelessCtrlClass()
	if *scale != 1.0 {
		spec = spec.Scale(*scale)
	}
	design, err := tpilayout.Generate(spec, tpilayout.DefaultLibrary())
	if err != nil {
		log.Fatal(err)
	}
	cfg := tpilayout.ExperimentConfig("wctrl1")
	cfg.SkipATPG = true // timing-only sweep
	rows, err := tpilayout.Sweep(design, cfg, []float64{0, 1, 2, 3, 4, 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tpilayout.FormatTable3(rows))
	fmt.Println()

	targets := map[string]float64{"clk8m": 8, "clk64m": 64}
	for _, m := range rows {
		for _, t := range m.Timing {
			margin := t.FmaxMHz / targets[t.Domain]
			fmt.Printf("%2d test points, %-7s: Fmax %8.1f MHz — %5.1fx above the %2.0f MHz application target\n",
				m.NumTP, t.Domain, t.FmaxMHz, margin, targets[t.Domain])
		}
	}
}
