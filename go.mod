module tpilayout

go 1.22
