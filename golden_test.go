package tpilayout

// Golden-table regression tests: the rendered Tables 1/2/3 of a small
// fixed sweep are committed under internal/testdata/golden/ and every
// run — serial or parallel — must reproduce them byte-for-byte. This is
// the lock on the concurrency layer: parallelism is only allowed to
// change wall-clock time, never a single output byte.
//
// Regenerate the golden files after an intentional algorithm change with
//
//	go test -run TestSweepGolden -update .

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under internal/testdata/golden")

const goldenDir = "internal/testdata/golden"

// goldenLevels keeps the golden sweep small: baseline, mid, max TP%.
var goldenLevels = []float64{0, 2, 5}

// goldenSweep renders all three tables of a reduced-scale s38417c sweep.
func goldenSweep(t *testing.T, workers int) string {
	return goldenSweepMode(t, workers, SweepFull, false)
}

func goldenSweepMode(t *testing.T, workers int, mode SweepMode, memo bool) string {
	t.Helper()
	design, err := Generate(S38417Class().Scale(0.05), DefaultLibrary())
	if err != nil {
		t.Fatal(err)
	}
	cfg := ExperimentConfig("s38417c")
	cfg.Workers = workers
	cfg.SweepMode = mode
	cfg.ATPGMemo = memo
	rows, err := Sweep(design, cfg, goldenLevels)
	if err != nil {
		t.Fatal(err)
	}
	return FormatTable1(rows) + "\n" + FormatTable2(rows) + "\n" + FormatTable3(rows)
}

func TestSweepGolden(t *testing.T) {
	serial := goldenSweep(t, 1)
	parallel := goldenSweep(t, 4)
	if serial != parallel {
		t.Fatalf("parallel sweep output differs from serial:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", serial, parallel)
	}

	path := filepath.Join(goldenDir, "sweep_s38417c.golden")
	if *updateGolden {
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(serial), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create it): %v", err)
	}
	if string(want) != serial {
		t.Errorf("sweep output drifted from golden file %s\n%s", path, diffLines(string(want), serial))
	}
}

// TestSweepIncrementalGolden locks the incremental engine against the
// same committed golden tables as full mode: the cross-level artifact
// chain (TPI resume, incremental relevel, ATPG memo replay — the memo is
// deliberately enabled here, its hardest exactness check) must not move
// a single output byte.
func TestSweepIncrementalGolden(t *testing.T) {
	incr := goldenSweepMode(t, 1, SweepIncremental, true)
	path := filepath.Join(goldenDir, "sweep_s38417c.golden")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run TestSweepGolden with -update to create it): %v", err)
	}
	if string(want) != incr {
		t.Errorf("incremental sweep drifted from golden file %s\n%s", path, diffLines(string(want), incr))
	}
}

// diffLines renders a minimal line diff for golden mismatches.
func diffLines(want, got string) string {
	wl, gl := splitKeepLines(want), splitKeepLines(got)
	out := ""
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			out += fmt.Sprintf("line %d:\n  want: %q\n  got:  %q\n", i+1, w, g)
		}
	}
	return out
}

func splitKeepLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
