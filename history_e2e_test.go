package tpilayout

// End-to-end test of the run-history archive and regression sentinel:
// the same job is executed twice against a live durable daemon with a
// simulated SIGKILL and restart in between. Both runs must survive in
// the archive with intact gzip traces, and the second run's diff
// against the pre-crash baseline must report zero regressions.

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"tpilayout/internal/service"
	"tpilayout/internal/telemetry"
	"tpilayout/internal/tracecmp"
	"tpilayout/internal/trachive"
)

// e2eBench is a minimal netlist; the ATPG budget makes the submission
// non-cacheable, so the identical resubmission executes a real flow
// (a cache answer would archive nothing and leave the sentinel idle).
const e2eBench = `INPUT(a)
INPUT(b)
OUTPUT(y)
d1 = DFF(a) # domain=clk
y = NAND(d1, b)
`

func historyJob(t *testing.T) []byte {
	t.Helper()
	body, err := json.Marshal(service.JobRequest{
		Tenant:   "e2e",
		Circuit:  service.CircuitSpec{Bench: e2eBench, Name: "tiny"},
		TPLevels: []float64{1},
		Flow:     service.FlowConfig{SkipATPG: true, ATPGBudgetMS: 600000},
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// runJobToArchive submits the job, waits for it to finish, then waits
// for the retirement hook to land it in the archive.
func runJobToArchive(t *testing.T, base string, body []byte) trachive.Meta {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d (%+v)", resp.StatusCode, st)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		got := getJSON[service.JobStatus](t, base+"/v1/jobs/"+st.ID)
		if got.State == service.StateDone {
			st = got
			break
		}
		if got.State == service.StateFailed || got.State == service.StateCanceled {
			t.Fatalf("job ended %s: %s", got.State, got.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", got.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.CacheHit || st.RunID == "" {
		t.Fatalf("budgeted job must run a fresh flow: %+v", st)
	}
	return waitMeta(t, base, st.RunID)
}

func waitMeta(t *testing.T, base, runID string) trachive.Meta {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/runs/" + runID)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			var m trachive.Meta
			err := json.NewDecoder(resp.Body).Decode(&m)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			return m
		}
		resp.Body.Close()
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("run %s never archived", runID)
	return trachive.Meta{}
}

// checkArchivedTrace fetches the run's archived trace and verifies it
// is an intact gzip NDJSON span tree.
func checkArchivedTrace(t *testing.T, base, runID string) {
	t.Helper()
	resp, err := http.Get(base + "/v1/runs/" + runID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace(%s) = %d", runID, resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	gz, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("trace(%s) is not gzip: %v", runID, err)
	}
	tr, err := telemetry.ParseTrace(gz)
	if err != nil {
		t.Fatalf("trace(%s) does not parse: %v", runID, err)
	}
	if !tr.Balanced() || len(tr.Spans) == 0 {
		t.Fatalf("trace(%s): balanced=%v spans=%d", runID, tr.Balanced(), len(tr.Spans))
	}
}

func TestHistoryEndToEnd(t *testing.T) {
	dir := t.TempDir()
	open := func() (*service.Server, *httptest.Server) {
		srv, err := service.Open(service.Options{Workers: 1, DataDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(10 * time.Second)
		for !srv.Stats().Ready {
			if time.Now().After(deadline) {
				t.Fatal("daemon never became ready")
			}
			time.Sleep(5 * time.Millisecond)
		}
		mux := http.NewServeMux()
		mux.Handle("/v1/", srv)
		return srv, httptest.NewServer(mux)
	}

	// Incarnation one: run the job, see it archived, then die without
	// any orderly shutdown — the archive index must not need one.
	srv1, ts1 := open()
	body := historyJob(t)
	m1 := runJobToArchive(t, ts1.URL, body)
	if m1.State != "done" || m1.BaselineKey == "" {
		t.Fatalf("first run meta: %+v", m1)
	}
	if m1.Diff == nil || m1.Diff.Verdict != "no-baseline" {
		t.Fatalf("first run of its key should have no baseline: %+v", m1.Diff)
	}
	checkArchivedTrace(t, ts1.URL, m1.RunID)
	srv1.Kill() // simulated SIGKILL: no archive close, no compaction
	ts1.Close()

	// Incarnation two: the pre-crash run is still there, trace intact,
	// and an identical rerun diffs clean against it.
	srv2, ts2 := open()
	defer func() {
		ts2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv2.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	}()
	recovered := waitMeta(t, ts2.URL, m1.RunID)
	if recovered.TraceBytes != m1.TraceBytes || recovered.Seq != m1.Seq {
		t.Fatalf("run mutated across crash: %+v vs %+v", m1, recovered)
	}
	checkArchivedTrace(t, ts2.URL, m1.RunID)

	m2 := runJobToArchive(t, ts2.URL, body)
	if m2.RunID == m1.RunID {
		t.Fatal("rerun reused the first run_id")
	}
	if m2.BaselineKey != m1.BaselineKey {
		t.Fatalf("baseline keys diverged: %q vs %q", m1.BaselineKey, m2.BaselineKey)
	}
	if m2.Diff == nil || m2.Diff.Verdict != "no-regression" || m2.Diff.Against != m1.RunID {
		t.Fatalf("rerun diff: %+v", m2.Diff)
	}
	checkArchivedTrace(t, ts2.URL, m2.RunID)

	// The diff endpoint re-derives the same verdict from the archived
	// artifacts: zero regression rows against the pre-crash baseline.
	resp, err := http.Get(ts2.URL + "/v1/runs/" + m2.RunID + "/diff")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET diff = %d", resp.StatusCode)
	}
	var diff struct {
		Verdict string           `json:"verdict"`
		Against string           `json:"against"`
		Report  *tracecmp.Report `json:"report"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&diff); err != nil {
		t.Fatal(err)
	}
	if diff.Verdict != "no-regression" || diff.Against != m1.RunID {
		t.Fatalf("diff endpoint: %+v", diff)
	}
	if diff.Report == nil || len(diff.Report.Regressions) != 0 {
		t.Fatalf("expected zero regressions, got %+v", diff.Report)
	}

	// Both incarnations' runs are in the archive, newest first.
	runs := getJSON[struct {
		Runs []trachive.Meta `json:"runs"`
	}](t, ts2.URL+"/v1/runs?baseline="+m1.BaselineKey)
	if len(runs.Runs) != 2 || runs.Runs[0].RunID != m2.RunID || runs.Runs[1].RunID != m1.RunID {
		t.Fatalf("archived runs: %+v", runs.Runs)
	}
}
