package atpg

import (
	"context"
	"fmt"
	"math/bits"
	"math/rand"
	"sort"
	"time"

	"tpilayout/internal/fault"
	"tpilayout/internal/netlist"
	"tpilayout/internal/supervise"
	"tpilayout/internal/telemetry"
	"tpilayout/internal/testability"
)

// Options configures an ATPG run.
type Options struct {
	// Constraints freezes nets to capture-mode constants (scan-enable = 0,
	// TSFF controls TE = 0 / TR = 1).
	Constraints map[netlist.NetID]int8
	// BacktrackLimit bounds PODEM search per fault (default 64).
	BacktrackLimit int
	// RetryFactor multiplies the backtrack limit for one retry pass over
	// aborted faults (default 8; 0 disables the retry).
	RetryFactor int
	// FillSeed seeds the random fill of don't-care bits and the random
	// pattern phase.
	FillSeed int64
	// RandomRounds caps the number of 64-pattern random batches simulated
	// before deterministic generation (default 48; -1 disables the random
	// phase). The phase stops early once two consecutive rounds each
	// detect fewer than 0.1% of the fault classes.
	RandomRounds int
	// Workers is the number of fault-simulation shards used by the
	// coverage, drop-detection, and compaction passes: the fault list is
	// split across this many FaultSim instances and the per-class detect
	// words are merged by fault index, so the result is bit-identical for
	// every value. 0 means GOMAXPROCS; 1 forces serial simulation.
	Workers int
	// NoCompact disables the final reverse-order static compaction.
	NoCompact bool
	// NoDynamicCompaction disables per-cube secondary-fault targeting.
	// Dynamic compaction is what lets independent detection requirements
	// share a pattern — and therefore what makes test points (which turn
	// conflicting PI requirements into independent scan-cell bits)
	// reduce the pattern count.
	NoDynamicCompaction bool
	// SecondaryLimit caps secondary targets attempted per cube
	// (default 192).
	SecondaryLimit int
	// MaxPatterns aborts the run if the pattern count explodes (default 1<<20).
	MaxPatterns int
	// Deadline bounds the wall-clock effort of the run. Past it, the run
	// stops random and deterministic generation at the next fault-class
	// boundary, marks every remaining undetected class Aborted, and
	// completes normally with Result.Truncated set — the industrial
	// abort semantics, where a budget-bound run lowers FE but never
	// fails. The zero value means no deadline. Contrast with context
	// cancellation, which aborts the run with an error.
	Deadline time.Time

	// Memo, when non-nil, memoizes PODEM searches across consecutive runs
	// over incrementally-edited netlists (the incremental sweep threads
	// one Memo through every level). Entries are validated against the
	// current netlist per lookup, successful replays are verified by
	// fault simulation, and everything else (statuses, compaction, random
	// fill) runs live — so a memoized run is bit-identical to an
	// unmemoized one, only faster. The Memo is consulted exclusively from
	// the serial generation loop; it must not be shared by concurrent
	// runs.
	Memo *Memo

	// Telemetry, when non-nil, receives the run's ATPG counters on the
	// ATPG stage's span: pattern provenance (atpg.patterns,
	// atpg.random_patterns, atpg.random_kept, atpg.det_kept), class
	// outcomes (atpg.fault_classes, atpg.collapsed_classes,
	// atpg.aborted_classes, atpg.untestable_classes), PODEM search
	// effort (atpg.podem_targets, atpg.podem_backtracks), and
	// fault-simulation sharding (atpg.sim_batches,
	// atpg.sim_detect_calls, the atpg.shards / atpg.shard_util gauges).
	// Counters are flushed once at the end of the run, so the hot loops
	// pay nothing; a nil span costs nothing at all.
	Telemetry *telemetry.Span

	// noDomShortcut disables the dominance-based detection shortcut in
	// the drop passes. The shortcut never changes statuses or patterns
	// (property-tested); the switch exists so those tests can compare
	// runs with and without it.
	noDomShortcut bool
}

// Pattern is one fully-specified test pattern: one 0/1 value per view
// source (scan cells first-class among them).
type Pattern []int8

// Result is the outcome of a Run.
type Result struct {
	View     *View
	Faults   *fault.Set
	Patterns []Pattern

	// Class counts at the end of the run.
	UntestableClasses int
	AbortedClasses    int

	// FaultClasses is the equivalence-collapsed class count of the fault
	// universe; CollapsedClasses additionally removes dominated classes
	// (those provably detected by any test for a dominating input fault).
	FaultClasses     int
	CollapsedClasses int

	// Truncated reports that Options.Deadline expired before generation
	// finished; the patterns and fault statuses are valid but cover only
	// what was achieved within the budget.
	Truncated bool

	// Pattern provenance after compaction.
	RandomKept        int // surviving random-phase patterns
	DeterministicKept int // surviving PODEM patterns
}

// Run generates a compact stuck-at test set for the capture-mode view of
// n, updating the fault statuses in set.
func Run(n *netlist.Netlist, set *fault.Set, opt Options) (*Result, error) {
	return RunContext(context.Background(), n, set, opt)
}

// RunContext is Run under supervision: cancelling the context stops the
// run within one work unit (one PODEM fault, one random round, one
// fault-simulation chunk) and returns the context's error; a panic on
// any goroutine of the run (including fault-simulation shards) is
// captured and returned as a *supervise.PanicError instead of crashing
// the process.
func RunContext(ctx context.Context, n *netlist.Netlist, set *fault.Set, opt Options) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, supervise.AsPanicError(r)
		}
	}()
	if opt.BacktrackLimit <= 0 {
		opt.BacktrackLimit = 64
	}
	if opt.RetryFactor < 0 {
		opt.RetryFactor = 0
	} else if opt.RetryFactor == 0 {
		opt.RetryFactor = 4
	}
	if opt.RandomRounds < 0 {
		opt.RandomRounds = -1 // explicit disable survives the default below
	}
	if opt.MaxPatterns <= 0 {
		opt.MaxPatterns = 1 << 20
	}
	v, err := NewView(n, opt.Constraints)
	if err != nil {
		return nil, err
	}
	ta, err := testability.Analyze(n, testability.Options{Constraints: opt.Constraints})
	if err != nil {
		return nil, err
	}

	precreditCaptureDead(v, set)

	// Hardest faults first: dedicating early patterns to the hardest
	// faults lets random fill mop up the easy ones, which is what keeps
	// the final set compact.
	reps := append([]int32(nil), set.Reps()...)
	sort.SliceStable(reps, func(i, j int) bool {
		return ta.TC(set.Faults[reps[i]].Net) > ta.TC(set.Faults[reps[j]].Net)
	})

	memo := opt.Memo
	if memo != nil {
		memo.BeginLevel(v, ta)
	}

	gen := newPodem(v, ta, opt.BacktrackLimit)
	pool := newSimPool(ctx, v, opt.Workers)
	pool.noDom = opt.noDomShortcut
	pool.instrument(opt.Telemetry)
	defer pool.Release()
	// Per-call PODEM latency and backtrack-depth distributions. The
	// generation loop is single-goroutine, so both record into local
	// shards (plain ints) and merge once at flush; with telemetry off the
	// nil locals also skip the time.Now pair per target.
	var lPodemNS, lPodemBT, lReplayNS *telemetry.LocalHist
	if opt.Telemetry != nil {
		lPodemNS = opt.Telemetry.Histogram("atpg.podem_ns").Local()
		lPodemBT = opt.Telemetry.Histogram("atpg.podem_bt_depth").Local()
		if memo != nil {
			lReplayNS = opt.Telemetry.Histogram("atpg.memo_replay_ns").Local()
		}
	}

	// generateCached is the memo-aware front of gen.generate: replay a
	// valid entry (free for aborted/untestable, one verified forward
	// simulation for successes), record and store on a miss. With no memo
	// it is gen.generate. A non-nil snap resumes the retry of an aborted
	// first-pass search from its abort point instead of re-deriving the
	// prefix; the memo record is then seeded with the first-pass entry's
	// footprint so the stored retry entry covers the full trajectory.
	generateCached := func(f fault.Fault, snap *abortSnap) ([]int8, genResult) {
		runSearch := func() ([]int8, genResult) {
			if snap != nil {
				return gen.resume(f, snap)
			}
			return gen.generate(f)
		}
		if memo == nil {
			return runSearch()
		}
		if e, ok := memo.lookup(v, f, gen.btLimit); ok {
			if e.res != genSuccess {
				// The recorded search deterministically dead-ends again;
				// no simulation state is needed afterwards (the next
				// target's setFault fully resets the planes).
				memo.Stats.HitsFree++
				return nil, e.res
			}
			var t0 time.Time
			if lReplayNS != nil {
				t0 = time.Now()
			}
			cube := gen.replay(f, e.trail)
			if lReplayNS != nil {
				lReplayNS.Observe(int64(time.Since(t0)))
			}
			if gen.s.detected() {
				memo.Stats.HitsReplay++
				return cube, genSuccess
			}
			// Replay verification failed — an invalidation the signatures
			// missed. Drop the entry and search from scratch; setFault
			// resets the simulator, so the fallback is bit-identical to
			// an uncached search.
			memo.drop(v, f, gen.btLimit)
			memo.Stats.VerifyFailures++
		}
		memo.Stats.Misses++
		memo.beginRecord(gen.s)
		if snap != nil {
			memo.seedFrom(v, f, opt.BacktrackLimit)
		}
		cube, g := runSearch()
		memo.endRecord(v, gen.s, f, gen.btLimit, g, gen.decisions)
		return cube, g
	}
	rng := rand.New(rand.NewSource(opt.FillSeed))
	res = &Result{
		View:             v,
		Faults:           set,
		FaultClasses:     set.NumClasses(),
		CollapsedClasses: set.NumCollapsed(),
	}

	// expired latches once the deadline passes: generation stops at the
	// next fault-class boundary and the run completes truncated.
	expired := func() bool {
		if res.Truncated {
			return true
		}
		if !opt.Deadline.IsZero() && !time.Now().Before(opt.Deadline) {
			res.Truncated = true
		}
		return res.Truncated
	}

	// detWords is reused across drop passes; detWords[i] belongs to
	// reps[i], which is what keeps the parallel merge deterministic.
	detWords := getWords(len(reps))
	defer putWords(detWords)
	simulateAndDrop := func(batch *Batch) int {
		dropped := 0
		pool.SimGood(batch)
		pool.detectEach(reps, set, batch, true, func(r int32) bool {
			st := set.Status(r)
			return st == fault.Undetected || st == fault.Aborted
		}, detWords)
		for i, r := range reps {
			if detWords[i] != 0 {
				set.SetStatus(r, fault.Detected)
				dropped++
			}
		}
		return dropped
	}

	// Phase 1: random patterns. They sweep the easy bulk of the fault
	// universe cheaply, leaving the deterministic engine only the
	// random-pattern-resistant faults (which is exactly the population
	// test points are inserted for). Useless patterns are discarded again
	// by the final static compaction.
	if opt.RandomRounds == 0 {
		opt.RandomRounds = 48
	}
	lowRounds := 0
	batch := pool.NewBatch()
	for round := 0; round < opt.RandomRounds && lowRounds < 2 && !expired(); round++ {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		batch.Reset()
		// One backing array per round; each pattern is a subslice, so the
		// round costs two allocations instead of 65.
		chunk := make([]int8, 64*len(v.Sources))
		for bit := 0; bit < 64; bit++ {
			cube := chunk[bit*len(v.Sources) : (bit+1)*len(v.Sources) : (bit+1)*len(v.Sources)]
			for i := range cube {
				cube[i] = -1
			}
			fillRandom(cube, rng)
			batch.SetPattern(bit, cube)
			res.Patterns = append(res.Patterns, Pattern(cube))
		}
		dropped := simulateAndDrop(batch)
		if dropped*1000 < set.NumClasses() {
			lowRounds++
		} else {
			lowRounds = 0
		}
	}
	randomGenerated := len(res.Patterns)

	// abortSnaps holds the abort-point snapshot of each first-pass search
	// that exhausted its backtrack budget, keyed by fault-class rep; the
	// retry pass resumes those searches from where they stopped instead of
	// re-deriving the first BacktrackLimit backtracks. Snapshots are taken
	// only for searches that actually ran — a memoized free-hit abort
	// leaves no simulator state to freeze, and its retry searches from
	// scratch as before.
	var abortSnaps map[int32]*abortSnap
	const (
		snapNone    = iota // pass unrelated to the abort/retry pair (top-up)
		snapRecord         // first pass: snapshot aborted searches
		snapConsume        // retry pass: resume from snapshots
	)
	runPass := func(limit, snapPhase int) error {
		gen.btLimit = limit
		for {
			batch.Reset()
			count := 0
			for ri, r := range reps {
				if set.Status(r) != fault.Undetected {
					continue
				}
				// One PODEM fault is the cancellation work unit: a cancel
				// lands before the next target, and an expired deadline
				// truncates the pass at a class boundary.
				if cerr := ctx.Err(); cerr != nil {
					return cerr
				}
				if expired() {
					break
				}
				var t0 time.Time
				btBefore := gen.nBacktracks
				if lPodemNS != nil {
					t0 = time.Now()
				}
				var snap *abortSnap
				if snapPhase == snapConsume {
					if sn, ok := abortSnaps[r]; ok {
						snap = sn
						delete(abortSnaps, r)
					}
				}
				targetsBefore := gen.nTargets
				cube, g := generateCached(set.Faults[r], snap)
				if snapPhase == snapRecord && g == genAborted && gen.nTargets != targetsBefore {
					if abortSnaps == nil {
						abortSnaps = make(map[int32]*abortSnap)
					}
					abortSnaps[r] = gen.snapshot()
				}
				if lPodemNS != nil {
					lPodemNS.Observe(int64(time.Since(t0)))
					lPodemBT.Observe(gen.nBacktracks - btBefore)
				}
				switch g {
				case genSuccess:
					// The target is provably detected by its own pattern;
					// mark now so a slow sim round cannot re-target it.
					set.SetStatus(r, fault.Detected)
					if !opt.NoDynamicCompaction {
						compactInto(gen, set, reps, ri, opt.SecondaryLimit)
						cube = gen.cube()
					}
					fillRandom(cube, rng)
					batch.SetPattern(count, cube)
					res.Patterns = append(res.Patterns, Pattern(cube))
					count++
				case genUntestable:
					set.SetStatus(r, fault.Untestable)
				case genAborted:
					set.SetStatus(r, fault.Aborted)
				}
				if count == 64 {
					break
				}
			}
			if count == 0 {
				return nil
			}
			if len(res.Patterns) > opt.MaxPatterns {
				return fmt.Errorf("atpg: pattern count exceeded %d", opt.MaxPatterns)
			}
			simulateAndDrop(batch)
		}
	}

	if err := runPass(opt.BacktrackLimit, snapRecord); err != nil {
		return nil, err
	}
	if opt.RetryFactor > 1 && !expired() {
		// Second chance for aborted faults with a deeper search, resumed
		// from their first-pass abort points.
		for _, r := range reps {
			if set.Status(r) == fault.Aborted {
				set.SetStatus(r, fault.Undetected)
			}
		}
		if err := runPass(opt.BacktrackLimit*opt.RetryFactor, snapConsume); err != nil {
			return nil, err
		}
	}
	abortSnaps = nil

	// Top-up: classes detected only during the random phase would force
	// the final compaction to keep whole random patterns for a handful of
	// faults each. Re-target them deterministically (they are easy faults,
	// and dynamic compaction packs independent easy faults densely); the
	// random patterns then survive compaction only as a last resort.
	if randomGenerated > 0 && !expired() {
		det := pool.coveredBy(res.Patterns[randomGenerated:], set, reps)
		var fallback []int32
		for _, r := range reps {
			if set.Status(r) == fault.Detected && !det[r] {
				set.SetStatus(r, fault.Undetected)
				fallback = append(fallback, r)
			}
		}
		if err := runPass(opt.BacktrackLimit, snapNone); err != nil {
			return nil, err
		}
		// Anything the top-up could not regenerate is still covered by a
		// random pattern; restore its status so compaction keeps one.
		for _, r := range fallback {
			if st := set.Status(r); st == fault.Aborted || st == fault.Untestable {
				set.SetStatus(r, fault.Detected)
			}
		}
	}

	// An expired deadline converts every class the run never got to into
	// an Aborted class: like an industrial abort, it lowers FE (and FC for
	// what the random phase missed) but the Result stays fully valid.
	if expired() {
		for _, r := range reps {
			if set.Status(r) == fault.Undetected {
				set.SetStatus(r, fault.Aborted)
			}
		}
	}

	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}
	if !opt.NoCompact {
		var kept []bool
		res.Patterns, kept = compactReverse(pool, set, reps, res.Patterns)
		for i, k := range kept {
			if !k {
				continue
			}
			if i < randomGenerated {
				res.RandomKept++
			} else {
				res.DeterministicKept++
			}
		}
	}

	// A cancel that landed inside the compaction sharding leaves partial
	// detect words; the run must fail rather than return a miscompacted
	// set.
	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}

	for _, r := range reps {
		switch set.Status(r) {
		case fault.Untestable:
			res.UntestableClasses++
		case fault.Aborted:
			res.AbortedClasses++
		}
	}
	lPodemNS.Flush()
	lPodemBT.Flush()
	lReplayNS.Flush()
	flushTelemetry(opt.Telemetry, res, gen, pool, randomGenerated)
	if memo != nil && opt.Telemetry != nil {
		sp := opt.Telemetry
		sp.Counter("atpg.patterns_reused").Add(memo.Stats.HitsReplay)
		sp.Counter("atpg.memo_free_skips").Add(memo.Stats.HitsFree)
		sp.Counter("atpg.memo_misses").Add(memo.Stats.Misses)
		sp.Counter("atpg.memo_invalidated").Add(memo.Stats.Invalidated)
		sp.Counter("atpg.memo_verify_failures").Add(memo.Stats.VerifyFailures)
		sp.Counter("atpg.memo_dirty_nets").Add(int64(memo.Stats.DirtyNets))
	}
	return res, nil
}

// flushTelemetry records the run's counters on the ATPG stage span in
// one pass at the end — the generation and simulation loops themselves
// carry only plain per-struct ints, so instrumentation adds no work to
// the hot paths.
func flushTelemetry(sp *telemetry.Span, res *Result, gen *podem, pool *simPool, randomGenerated int) {
	if sp == nil {
		return
	}
	sp.Counter("atpg.patterns").Add(int64(len(res.Patterns)))
	sp.Counter("atpg.random_patterns").Add(int64(randomGenerated))
	sp.Counter("atpg.random_kept").Add(int64(res.RandomKept))
	sp.Counter("atpg.det_kept").Add(int64(res.DeterministicKept))
	sp.Counter("atpg.fault_classes").Add(int64(res.FaultClasses))
	sp.Counter("atpg.collapsed_classes").Add(int64(res.CollapsedClasses))
	sp.Counter("atpg.aborted_classes").Add(int64(res.AbortedClasses))
	sp.Counter("atpg.untestable_classes").Add(int64(res.UntestableClasses))
	sp.Counter("atpg.podem_targets").Add(gen.nTargets)
	sp.Counter("atpg.podem_backtracks").Add(gen.nBacktracks)
	sp.Counter("atpg.sim_batches").Add(pool.batches)
	var total, peak int64
	for _, w := range pool.work {
		total += w
		if w > peak {
			peak = w
		}
	}
	sp.Counter("atpg.sim_detect_calls").Add(total)
	for _, l := range pool.detectNS {
		l.Flush()
	}
	sp.Gauge("atpg.shards").Set(float64(len(pool.sims)))
	if peak > 0 {
		// 1.0 = every shard did equal work; the gap to 1 is idle shard
		// capacity (the load-balance figure of the chunked work stealing).
		sp.Gauge("atpg.shard_util").Set(float64(total) / (float64(peak) * float64(len(pool.sims))))
	}
	if res.Truncated {
		sp.Counter("atpg.truncated").Add(1)
	}
}

// coveredBy simulates the given patterns and reports which of the reps
// they detect. Statuses are not modified. The per-batch scan is sharded
// across the pool; det is only written between batches, so the include
// callback reads it race-free.
func (p *simPool) coveredBy(patterns []Pattern, set *fault.Set, reps []int32) map[int32]bool {
	det := make(map[int32]bool)
	out := getWords(len(reps))
	defer putWords(out)
	batch := p.NewBatch()
	for lo := 0; lo < len(patterns); lo += 64 {
		batch.Reset()
		for i := lo; i < len(patterns) && i < lo+64; i++ {
			batch.SetPattern(i-lo, patterns[i])
		}
		p.SimGood(batch)
		p.detectEach(reps, set, batch, true, func(r int32) bool {
			return !det[r] && set.Status(r) == fault.Detected
		}, out)
		for i, r := range reps {
			if out[i] != 0 {
				det[r] = true
			}
		}
	}
	return det
}

// compactInto runs dynamic compaction for the cube currently held by gen:
// starting after the primary fault's rank, it retargets still-undetected
// fault classes into the same cube until the attempt budget is spent.
// Successfully merged classes are marked detected.
func compactInto(gen *podem, set *fault.Set, reps []int32, primaryRank, limit int) {
	if limit <= 0 {
		limit = 192
	}
	attempts, consecFails := 0, 0
	for _, r2 := range reps[primaryRank+1:] {
		if set.Status(r2) != fault.Undetected {
			continue
		}
		attempts++
		if attempts > limit {
			break
		}
		if gen.extend(set.Faults[r2], 8) {
			set.SetStatus(r2, fault.Detected)
			consecFails = 0
		} else if consecFails++; consecFails > 48 {
			break
		}
	}
}

// precreditCaptureDead marks fault classes that capture-mode patterns can
// never observe but the scan shift/flush tests do: branches into scan-in
// and scan-enable pins, and faults that force a test-control net to its
// already-constrained value.
func precreditCaptureDead(v *View, set *fault.Set) {
	set.CreditScan(func(f fault.Fault) bool {
		if cv := v.ConstVal[f.Net]; cv >= 0 && int8(f.SA) == cv {
			return true // stuck at the capture-mode constant: only other modes see it
		}
		if f.Load == fault.StemLoad {
			// A stem is capture-dead when every load is a scan-path pin.
			loads := v.fanout(f.Net)
			if len(loads) == 0 {
				return false
			}
			for _, ld := range loads {
				if !scanPathPin(v, ld) {
					return false
				}
			}
			return true
		}
		return scanPathPin(v, v.fanout(f.Net)[f.Load])
	})
}

// scanPathPin reports whether a load is a flip-flop si/se pin.
func scanPathPin(v *View, ld netlist.Load) bool {
	if ld.Cell == netlist.NoCell {
		return false
	}
	c := &v.N.Cells[ld.Cell]
	if !c.Cell.Kind.IsSequential() {
		return false
	}
	name := c.Cell.Inputs[ld.Pin].Name
	return name == "si" || name == "se"
}

// fillRandom replaces don't-care bits with random values.
func fillRandom(cube []int8, rng *rand.Rand) {
	var w uint64
	have := 0
	for i, b := range cube {
		if b >= 0 {
			continue
		}
		if have == 0 {
			w = rng.Uint64()
			have = 64
		}
		cube[i] = int8(w & 1)
		w >>= 1
		have--
	}
}

// compactReverse performs reverse-order static compaction: patterns are
// processed from last to first and kept only if they detect a fault class
// not detected by an already-kept (later) pattern. Batched 64 wide; within
// a batch a fault is credited to its highest-index detecting pattern,
// which matches the sequential definition exactly.
func compactReverse(p *simPool, set *fault.Set, reps []int32, patterns []Pattern) ([]Pattern, []bool) {
	if len(patterns) == 0 {
		return patterns, nil
	}
	// Faults that the final set must keep covered.
	var targets []int32
	for _, r := range reps {
		if set.Status(r) == fault.Detected {
			targets = append(targets, r)
		}
	}
	done := make(map[int32]bool, len(targets))
	keep := make([]bool, len(patterns))
	detected := getWords(len(targets))
	defer putWords(detected)
	batch := p.NewBatch()

	for hi := len(patterns); hi > 0; hi -= min(hi, 64) {
		lo := hi - min(hi, 64)
		batch.Reset()
		for i := lo; i < hi; i++ {
			batch.SetPattern(i-lo, patterns[i])
		}
		p.SimGood(batch)
		// Within one batch each still-open target is independent, so the
		// detect words are computed in parallel and folded into done/keep
		// serially, in target order — exactly the serial semantics.
		p.detectEach(targets, set, batch, false, func(r int32) bool {
			return !done[r]
		}, detected)
		for i, r := range targets {
			if done[r] || detected[i] == 0 {
				continue
			}
			done[r] = true
			keep[lo+bits.Len64(detected[i])-1] = true
		}
	}
	out := patterns[:0]
	for i, p := range patterns {
		if keep[i] {
			out = append(out, p)
		}
	}
	return out, keep
}
