package atpg

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"tpilayout/internal/circuitgen"
	"tpilayout/internal/fault"
	"tpilayout/internal/logicsim"
	"tpilayout/internal/netlist"
	"tpilayout/internal/stdcell"
)

// randCircuit builds a deterministic random combinational circuit with
// nPI inputs and nGates gates.
func randCircuit(t testing.TB, seed int64, nPI, nGates int) *netlist.Netlist {
	t.Helper()
	lib := stdcell.Default()
	n := netlist.New("rnd", lib)
	rng := rand.New(rand.NewSource(seed))
	var pool []netlist.NetID
	for i := 0; i < nPI; i++ {
		pool = append(pool, n.AddPI("pi"))
	}
	kinds := []string{"NAND2X1", "NOR2X1", "AND2X1", "OR2X1", "XOR2X1", "INVX1", "MUX2X1", "AOI21X1", "OAI21X1"}
	for i := 0; i < nGates; i++ {
		cell := lib.MustCell(kinds[rng.Intn(len(kinds))])
		ins := make([]netlist.NetID, len(cell.Inputs))
		for j := range ins {
			ins[j] = pool[rng.Intn(len(pool))]
		}
		out := n.AddNet("w")
		n.AddCell("g", cell, ins, out)
		pool = append(pool, out)
	}
	// Observe the last few gates.
	for i := 0; i < 4 && i < len(pool); i++ {
		n.AddPO("po", pool[len(pool)-1-i])
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	return n
}

// bruteForceDetects exhaustively checks (for nPI <= 6 inputs) which input
// combinations detect fault f, by structural injection into a parallel
// simulation. Returns the detection word over all 2^nPI combinations.
func bruteForceDetects(t testing.TB, n *netlist.Netlist, f fault.Fault) uint64 {
	t.Helper()
	nPI := len(n.PIs)
	if nPI > 6 {
		t.Fatal("bruteForceDetects: too many PIs")
	}
	good, err := logicsim.New(n)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := logicsim.New(n)
	if err != nil {
		t.Fatal(err)
	}
	for i, pi := range n.PIs {
		var w uint64
		for v := 0; v < 64; v++ {
			if v>>i&1 == 1 {
				w |= 1 << v
			}
		}
		good.SetNet(pi.Net, w)
		bad.SetNet(pi.Net, w)
	}
	good.Propagate()
	// Faulty propagation: recompute with an override at the fault site.
	sa := uint64(0)
	if f.SA == 1 {
		sa = ^uint64(0)
	}
	fan := n.Fanouts()
	var fCell netlist.CellID = netlist.NoCell
	fPin := -1
	if f.Load != fault.StemLoad {
		ld := fan[f.Net][f.Load]
		fCell = ld.Cell
		fPin = ld.Pin
	}
	lv, err := n.Levelize()
	if err != nil {
		t.Fatal(err)
	}
	if fCell == netlist.NoCell {
		bad.SetNet(f.Net, sa)
	}
	for _, ci := range lv.Order {
		c := &n.Cells[ci]
		var ins [8]uint64
		for pin, net := range c.Ins {
			w := bad.Get(net)
			if netlist.CellID(ci) == fCell && pin == fPin {
				w = sa
			}
			ins[pin] = w
		}
		out := logicsim.EvalWords(c.Cell.Kind, ins[:len(c.Ins)])
		if fCell == netlist.NoCell && c.Out == f.Net {
			out = sa
		}
		bad.SetNet(c.Out, out)
	}
	mask := uint64(1)<<uint(1<<uint(nPI)) - 1
	if nPI == 6 {
		mask = ^uint64(0)
	}
	var det uint64
	for _, po := range n.POs {
		if f.Load != fault.StemLoad && fan[f.Net][f.Load].Cell == netlist.NoCell {
			// Branch fault directly on this PO tap.
			if fan[f.Net][f.Load].PO >= 0 && n.POs[fan[f.Net][f.Load].PO].Net == po.Net {
				det |= (good.Get(po.Net) ^ sa) & mask
			}
			continue
		}
		det |= (good.Get(po.Net) ^ bad.Get(po.Net)) & mask
	}
	return det
}

// TestPodemAgainstBruteForce verifies, fault by fault, that PODEM's
// verdict (testable/untestable) matches exhaustive simulation and that
// every generated pattern actually detects its target.
func TestPodemAgainstBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		n := randCircuit(t, seed, 5, 30)
		set := fault.NewUniverse(n)
		v, err := NewView(n, nil)
		if err != nil {
			t.Fatal(err)
		}
		fs := NewFaultSim(v)
		res, err := Run(n, set, Options{FillSeed: seed})
		if err != nil {
			t.Fatal(err)
		}
		_ = res
		for _, r := range set.Reps() {
			f := set.Faults[r]
			want := bruteForceDetects(t, n, f) != 0
			got := set.Status(r)
			switch {
			case want && got != fault.Detected:
				t.Errorf("seed %d: fault %+v (%s) is testable but ATPG says %v",
					seed, f, n.Nets[f.Net].Name, got)
			case !want && got == fault.Detected:
				t.Errorf("seed %d: fault %+v is untestable but ATPG claims detection", seed, f)
			}
		}
		// Every kept pattern must be verifiable by the fault simulator.
		if len(res.Patterns) == 0 {
			t.Fatalf("seed %d: no patterns generated", seed)
		}
		fresh := fault.NewUniverse(n)
		for lo := 0; lo < len(res.Patterns); lo += 64 {
			batch := fs.NewBatch()
			for i := lo; i < len(res.Patterns) && i < lo+64; i++ {
				batch.SetPattern(i-lo, res.Patterns[i])
			}
			fs.SimGood(batch)
			for _, r := range fresh.Reps() {
				if fs.Detects(fresh.Faults[r], batch, true) != 0 {
					fresh.SetStatus(r, fault.Detected)
				}
			}
		}
		for _, r := range set.Reps() {
			if set.Status(r) == fault.Detected && fresh.Status(r) != fault.Detected {
				t.Errorf("seed %d: compacted set lost coverage of %+v", seed, set.Faults[r])
			}
		}
	}
}

// TestRedundantFaultProven uses the classic redundancy z = a·b + a·¬b
// (logically z = a): the sa1 on the b-branch into the first AND is
// undetectable and must be proven untestable, not aborted.
func TestRedundantFaultProven(t *testing.T) {
	lib := stdcell.Default()
	n := netlist.New("red", lib)
	a := n.AddPI("a")
	b := n.AddPI("b")
	nb := n.AddNet("nb")
	t1 := n.AddNet("t1")
	t2 := n.AddNet("t2")
	z := n.AddNet("z")
	n.AddCell("inv", lib.MustCell("INVX1"), []netlist.NetID{b}, nb)
	g1 := n.AddCell("g1", lib.MustCell("AND2X1"), []netlist.NetID{a, b}, t1)
	n.AddCell("g2", lib.MustCell("AND2X1"), []netlist.NetID{a, nb}, t2)
	n.AddCell("g3", lib.MustCell("OR2X1"), []netlist.NetID{t1, t2}, z)
	n.AddPO("z", z)

	set := fault.NewUniverse(n)
	if _, err := Run(n, set, Options{}); err != nil {
		t.Fatal(err)
	}
	// Find the b-branch into g1, stuck-at-1.
	fan := n.Fanouts()
	found := false
	for i, f := range set.Faults {
		if f.Net != b || f.SA != 1 || f.Load == fault.StemLoad {
			continue
		}
		if ld := fan[b][f.Load]; ld.Cell == g1 {
			found = true
			if st := set.Status(int32(i)); st != fault.Untestable {
				t.Errorf("redundant fault classified %v, want untestable", st)
			}
		}
	}
	if !found {
		t.Fatal("b→g1 branch fault not in universe")
	}
}

func TestConstraintsExcludeSources(t *testing.T) {
	lib := stdcell.Default()
	n := netlist.New("c", lib)
	a := n.AddPI("a")
	se := n.AddPI("se")
	y := n.AddNet("y")
	n.AddCell("g", lib.MustCell("AND2X1"), []netlist.NetID{a, se}, y)
	n.AddPO("y", y)
	v, err := NewView(n, map[netlist.NetID]int8{se: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Sources) != 1 || v.Sources[0] != a {
		t.Fatalf("sources = %v, want [a]", v.Sources)
	}
	if v.ConstVal[se] != 0 {
		t.Error("constraint not recorded")
	}
}

func TestRunOnGeneratedCircuit(t *testing.T) {
	lib := stdcell.Default()
	n, err := circuitgen.Generate(circuitgen.S38417Class().Scale(0.06), lib)
	if err != nil {
		t.Fatal(err)
	}
	set := fault.NewUniverse(n)
	res, err := Run(n, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fc, fe := set.Coverage()
	if fc < 0.92 {
		t.Errorf("FC = %.3f, want >= 0.92", fc)
	}
	if fe < fc {
		t.Errorf("FE (%.3f) must be >= FC (%.3f)", fe, fc)
	}
	if len(res.Patterns) == 0 {
		t.Fatal("no patterns")
	}
	t.Logf("cells=%d faults=%d classes=%d patterns=%d FC=%.2f%% FE=%.2f%% aborted=%d untestable=%d",
		n.NumLiveCells(), set.Total(), set.NumClasses(), len(res.Patterns),
		fc*100, fe*100, res.AbortedClasses, res.UntestableClasses)
}

func TestCompactionNeverLosesCoverage(t *testing.T) {
	n := randCircuit(t, 42, 6, 60)
	setA := fault.NewUniverse(n)
	resA, err := Run(n, setA, Options{NoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	setB := fault.NewUniverse(n)
	resB, err := Run(n, setB, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(resB.Patterns) > len(resA.Patterns) {
		t.Errorf("compaction grew the pattern set: %d > %d", len(resB.Patterns), len(resA.Patterns))
	}
	fcA, _ := setA.Coverage()
	fcB, _ := setB.Coverage()
	if fcB < fcA {
		t.Errorf("compaction lost coverage: %.4f < %.4f", fcB, fcA)
	}
}

// TestRunWorkersDeterministic pins down the fault-parallel merge rule:
// Run with sharded fault simulation must produce the exact same pattern
// set and per-class statuses as a serial run, for any worker count.
func TestRunWorkersDeterministic(t *testing.T) {
	lib := stdcell.Default()
	n, err := circuitgen.Generate(circuitgen.S38417Class().Scale(0.04), lib)
	if err != nil {
		t.Fatal(err)
	}
	var refPatterns []Pattern
	var refCounts map[fault.Status]int
	for _, w := range []int{1, 2, 5} {
		set := fault.NewUniverse(n)
		res, err := Run(n, set, Options{Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if refPatterns == nil {
			refPatterns, refCounts = res.Patterns, set.Counts()
			continue
		}
		if !reflect.DeepEqual(refPatterns, res.Patterns) {
			t.Fatalf("workers=%d produced a different pattern set (%d vs %d patterns)",
				w, len(res.Patterns), len(refPatterns))
		}
		if !reflect.DeepEqual(refCounts, set.Counts()) {
			t.Fatalf("workers=%d produced different fault statuses: %v vs %v",
				w, set.Counts(), refCounts)
		}
	}
}

// TestSimPoolShardsMatchSerial compares raw shard detection words against
// a serial FaultSim on random batches: the shards alias the same good
// plane, so every Detects word must be identical.
func TestSimPoolShardsMatchSerial(t *testing.T) {
	n := randCircuit(t, 7, 6, 80)
	v, err := NewView(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	set := fault.NewUniverse(n)
	serial := NewFaultSim(v)
	pool := newSimPool(context.Background(), v, 3)
	rng := rand.New(rand.NewSource(11))

	reps := set.Reps()
	got := make([]uint64, len(reps))
	for round := 0; round < 4; round++ {
		batch := serial.NewBatch()
		vals := make([]int8, len(v.Sources))
		for bit := 0; bit < 64; bit++ {
			for i := range vals {
				vals[i] = int8(rng.Intn(2))
			}
			batch.SetPattern(bit, vals)
		}
		serial.SimGood(batch)
		pool.SimGood(batch)
		pool.detectEach(reps, set, batch, false, func(int32) bool { return true }, got)
		for i, r := range reps {
			want := serial.Detects(set.Faults[r], batch, false)
			if got[i] != want {
				t.Fatalf("round %d fault %d: pool word %#x != serial word %#x", round, r, got[i], want)
			}
		}
	}
}
