package atpg

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"tpilayout/internal/circuitgen"
	"tpilayout/internal/fault"
	"tpilayout/internal/stdcell"
)

// TestCollapseEquivalenceAndDominance property-tests the structural
// collapsing against bit-parallel simulation on random circuits:
//
//   - equivalence: a pattern detects the class representative iff it
//     detects every fault merged into the class (identical full detection
//     words, earlyExit=false);
//   - dominance: every pattern detecting a child class also detects its
//     parent (det(child) ⊆ det(parent)), so dropping parents from the
//     target list never loses detection credit.
func TestCollapseEquivalenceAndDominance(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			n := randCircuit(t, seed, 10, 150)
			v, err := NewView(n, nil)
			if err != nil {
				t.Fatal(err)
			}
			set := fault.NewUniverse(n)
			fs := NewFaultSim(v)
			defer fs.Release()
			reps := set.Reps()
			rng := rand.New(rand.NewSource(seed * 1031))
			det := make([]uint64, set.Total())
			b := fs.NewBatch()
			domEdges := 0
			for round := 0; round < 6; round++ {
				b.Reset()
				vals := make([]int8, len(v.Sources))
				for bit := 0; bit < 64; bit++ {
					for i := range vals {
						vals[i] = int8(rng.Intn(2))
					}
					b.SetPattern(bit, vals)
				}
				fs.SimGood(b)
				for i := range set.Faults {
					det[i] = fs.Detects(set.Faults[i], b, false)
				}
				// Equivalence: identical detection word across the class.
				for i := range set.Faults {
					if r := set.Rep[i]; det[i] != det[r] {
						t.Fatalf("round %d: fault %d det=%#x but its representative %d det=%#x",
							round, i, det[i], r, det[r])
					}
				}
				// Dominance: det(child) ⊆ det(parent) for every edge.
				for c := range reps {
					pw := det[reps[c]]
					for _, child := range set.DomChildren(int32(c)) {
						domEdges++
						if cw := det[reps[child]]; cw&^pw != 0 {
							t.Fatalf("round %d: child class %d detected by %#x patterns missing from parent class %d (%#x)",
								round, child, cw, c, pw)
						}
					}
				}
			}
			if set.NumCollapsed() >= set.NumClasses() && domEdges > 0 {
				t.Fatalf("dominance found %d edges but removed no class", domEdges)
			}
		})
	}
}

// TestDomShortcutIsInvisible runs full ATPG with and without the
// dominance-based simulation shortcut: the patterns, per-fault statuses,
// and coverage must be bit-identical — the shortcut is a pure
// optimization.
func TestDomShortcutIsInvisible(t *testing.T) {
	for seed := int64(2); seed <= 3; seed++ {
		n := randCircuit(t, seed*7, 12, 200)
		run := func(noDom bool) (*Result, *fault.Set) {
			set := fault.NewUniverse(n)
			r, err := Run(n, set, Options{FillSeed: 42, RandomRounds: 4, noDomShortcut: noDom})
			if err != nil {
				t.Fatal(err)
			}
			return r, set
		}
		rOn, sOn := run(false)
		rOff, sOff := run(true)
		if !reflect.DeepEqual(rOn.Patterns, rOff.Patterns) {
			t.Fatalf("seed %d: pattern sets differ with dominance shortcut on/off (%d vs %d patterns)",
				seed, len(rOn.Patterns), len(rOff.Patterns))
		}
		for i := 0; i < sOn.Total(); i++ {
			if sOn.Status(int32(i)) != sOff.Status(int32(i)) {
				t.Fatalf("seed %d: fault %d status %v with shortcut vs %v without",
					seed, i, sOn.Status(int32(i)), sOff.Status(int32(i)))
			}
		}
		fcOn, feOn := sOn.Coverage()
		fcOff, feOff := sOff.Coverage()
		if fcOn != fcOff || feOn != feOff {
			t.Fatalf("seed %d: coverage %.6f/%.6f with shortcut vs %.6f/%.6f without",
				seed, fcOn, feOn, fcOff, feOff)
		}
		if rOn.FaultClasses != sOn.NumClasses() || rOn.CollapsedClasses != sOn.NumCollapsed() {
			t.Fatalf("seed %d: Result class counts %d/%d != set %d/%d",
				seed, rOn.FaultClasses, rOn.CollapsedClasses, sOn.NumClasses(), sOn.NumCollapsed())
		}
	}
}

// TestCollapseRatioOnPaperCircuits locks the acceptance bound: structural
// collapsing leaves at most 65% of the uncollapsed fault universe as
// explicit targets on the three full-size experiment circuits.
func TestCollapseRatioOnPaperCircuits(t *testing.T) {
	lib := stdcell.Default()
	for _, spec := range []circuitgen.Spec{
		circuitgen.S38417Class(),
		circuitgen.WirelessCtrlClass(),
		circuitgen.DSPCoreClass(),
	} {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			n, err := circuitgen.Generate(spec, lib)
			if err != nil {
				t.Fatal(err)
			}
			set := fault.NewUniverse(n)
			total, classes, collapsed := set.Total(), set.NumClasses(), set.NumCollapsed()
			if collapsed <= 0 || collapsed > classes || classes > total {
				t.Fatalf("inconsistent counts: total=%d classes=%d collapsed=%d", total, classes, collapsed)
			}
			if ratio := float64(collapsed) / float64(total); ratio > 0.65 {
				t.Fatalf("%s: collapsed classes %d are %.1f%% of %d-fault universe (want <= 65%%)",
					spec.Name, collapsed, ratio*100, total)
			}
			t.Logf("%s: %d faults -> %d equivalence classes -> %d collapsed targets (%.1f%%)",
				spec.Name, total, classes, collapsed, 100*float64(collapsed)/float64(total))
		})
	}
}
