package atpg

import (
	"tpilayout/internal/fault"
	"tpilayout/internal/logicsim"
	"tpilayout/internal/netlist"
)

// FaultSim is a 64-way parallel-pattern single-fault-propagation (PPSFP)
// fault simulator over a capture-mode view: one good-circuit simulation
// per 64-pattern batch, then per-fault forward propagation of the
// difference cone with early exit. All traversals run over the view's
// flat CSR adjacency; the propagation buffers come from a shared pool
// (see Release).
type FaultSim struct {
	v *View

	good   []uint64 // per net, 64 parallel pattern values
	faulty []uint64 // copy-on-write overlay, valid when stamp matches
	stamp  []int32
	epoch  int32

	buckets [][]netlist.CellID
	queued  []bool

	scratch *simScratch
}

// NewFaultSim builds a fault simulator for the view. Call Release when
// done to return the propagation buffers to the pool.
func NewFaultSim(v *View) *FaultSim {
	s := getScratch(len(v.N.Nets), len(v.N.Cells), v.MaxLevel+2)
	s.ensureGood(len(v.N.Nets))
	return &FaultSim{
		v:       v,
		good:    s.good,
		faulty:  s.faulty,
		stamp:   s.stamp,
		buckets: s.buckets,
		queued:  s.queued,
		scratch: s,
	}
}

// NewShard returns a FaultSim that aliases fs's good-value plane but owns
// private propagation state (overlay, stamps, event queue). After a
// SimGood on fs, Detects may run concurrently on fs and all of its shards:
// propagation only reads the shared good plane.
func (fs *FaultSim) NewShard() *FaultSim {
	s := getScratch(len(fs.v.N.Nets), len(fs.v.N.Cells), fs.v.MaxLevel+2)
	return &FaultSim{
		v:       fs.v,
		good:    fs.good,
		faulty:  s.faulty,
		stamp:   s.stamp,
		buckets: s.buckets,
		queued:  s.queued,
		scratch: s,
	}
}

// Release returns the simulator's buffers to the scratch pool. The
// FaultSim must not be used afterwards.
func (fs *FaultSim) Release() {
	if fs.scratch == nil {
		return
	}
	putScratch(fs.scratch)
	fs.scratch = nil
	fs.good, fs.faulty, fs.stamp, fs.buckets, fs.queued = nil, nil, nil, nil, nil
}

// Batch is up to 64 test patterns in transposed form: Words[i] carries bit
// b = value of view source i in pattern b. N is the number of valid
// patterns (low bits).
type Batch struct {
	Words []uint64
	N     int
}

// NewBatch allocates an empty batch for the view.
func (fs *FaultSim) NewBatch() *Batch {
	return &Batch{Words: make([]uint64, len(fs.v.Sources))}
}

// Reset empties the batch for reuse.
func (b *Batch) Reset() {
	for i := range b.Words {
		b.Words[i] = 0
	}
	b.N = 0
}

// SetPattern writes pattern values (one int8 0/1 per source; -1 bits are
// taken as 0) into slot bit of the batch.
func (b *Batch) SetPattern(bit int, vals []int8) {
	mask := uint64(1) << uint(bit)
	for i, v := range vals {
		if v == 1 {
			b.Words[i] |= mask
		} else {
			b.Words[i] &^= mask
		}
	}
	if bit+1 > b.N {
		b.N = bit + 1
	}
}

// mask returns the valid-pattern mask of the batch.
func (b *Batch) mask() uint64 {
	if b.N >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(b.N)) - 1
}

// SimGood simulates the fault-free circuit for the batch, leaving per-net
// values in place for subsequent Detects calls.
func (fs *FaultSim) SimGood(b *Batch) {
	v := fs.v
	for i := range fs.good {
		fs.good[i] = 0
		if v.ConstVal[i] == 1 {
			fs.good[i] = ^uint64(0)
		}
	}
	for i, src := range v.Sources {
		fs.good[src] = b.Words[i]
	}
	for _, ci := range v.Order {
		out := v.CellOut[ci]
		if v.ConstVal[out] >= 0 {
			continue
		}
		fs.good[out] = logicsim.EvalNets(v.CellKind[ci], v.fanin(ci), fs.good)
	}
}

// fval reads the faulty value of a net under the current overlay.
func (fs *FaultSim) fval(net netlist.NetID) uint64 {
	if fs.stamp[net] == fs.epoch {
		return fs.faulty[net]
	}
	return fs.good[net]
}

func (fs *FaultSim) setFval(net netlist.NetID, w uint64) {
	fs.stamp[net] = fs.epoch
	fs.faulty[net] = w
}

// Detects propagates fault f against the last SimGood batch and returns
// the word of patterns that detect it (observe a difference at a sink).
// With earlyExit it stops at the first detecting sink, returning a word
// with at least one bit set.
func (fs *FaultSim) Detects(f fault.Fault, b *Batch, earlyExit bool) uint64 {
	m := b.mask()
	sa := uint64(0)
	if f.SA == 1 {
		sa = ^uint64(0)
	}
	act := (fs.good[f.Net] ^ sa) & m
	if act == 0 {
		return 0 // fault never activated in this batch
	}
	fs.epoch++
	var det uint64

	var faultCell netlist.CellID = netlist.NoCell
	faultPin := -1
	if f.Load == fault.StemLoad {
		fs.setFval(f.Net, sa)
		if fs.v.IsSink[f.Net] {
			det |= act
			if earlyExit {
				return det
			}
		}
		fs.enqueueLoads(f.Net)
	} else {
		ld := fs.v.fanout(f.Net)[f.Load]
		if ld.Cell == netlist.NoCell {
			// Branch feeding a primary output directly.
			return act
		}
		if !fs.v.Comb(ld.Cell) {
			// Branch into a flip-flop pin: observable iff the pin is
			// captured (the d pin); si/se branches are left to the scan
			// shift/flush tests.
			c := &fs.v.N.Cells[ld.Cell]
			if c.Cell.Kind.IsSequential() && c.Cell.FindInput("d") == ld.Pin {
				return act
			}
			return 0
		}
		faultCell = ld.Cell
		faultPin = ld.Pin
		fs.enqueue(faultCell)
	}

	gather := func(ci netlist.CellID) uint64 {
		var ins [8]uint64
		fanin := fs.v.fanin(ci)
		for pin, net := range fanin {
			w := fs.fval(net)
			if ci == faultCell && pin == faultPin {
				w = sa
			}
			ins[pin] = w
		}
		return logicsim.EvalWords(fs.v.CellKind[ci], ins[:len(fanin)])
	}

	for lvl := 1; lvl < len(fs.buckets); lvl++ {
		bucket := fs.buckets[lvl]
		for bi := 0; bi < len(bucket); bi++ {
			ci := bucket[bi]
			fs.queued[ci] = false
			out := fs.v.CellOut[ci]
			var nf uint64
			if cv := fs.v.ConstVal[out]; cv >= 0 {
				nf = fs.good[out]
			} else {
				nf = gather(ci)
			}
			if nf == fs.fval(out) {
				continue
			}
			fs.setFval(out, nf)
			if fs.v.IsSink[out] {
				det |= (nf ^ fs.good[out]) & m
				if earlyExit && det != 0 {
					fs.drain(lvl, bi+1)
					return det
				}
			}
			fs.enqueueLoads(out)
		}
		fs.buckets[lvl] = bucket[:0]
	}
	return det & m
}

// drain clears the remaining queue after an early exit.
func (fs *FaultSim) drain(fromLvl, fromIdx int) {
	for lvl := fromLvl; lvl < len(fs.buckets); lvl++ {
		start := 0
		if lvl == fromLvl {
			start = fromIdx
		}
		for _, ci := range fs.buckets[lvl][start:] {
			fs.queued[ci] = false
		}
		fs.buckets[lvl] = fs.buckets[lvl][:0]
	}
}

func (fs *FaultSim) enqueue(ci netlist.CellID) {
	if !fs.v.Comb(ci) || fs.queued[ci] {
		return
	}
	fs.queued[ci] = true
	fs.buckets[fs.v.Level[ci]] = append(fs.buckets[fs.v.Level[ci]], ci)
}

func (fs *FaultSim) enqueueLoads(net netlist.NetID) {
	// combLoads is pre-filtered to live combinational cells, so the
	// Comb check in enqueue is already paid for the whole net.
	for _, ci := range fs.v.combLoads(net) {
		if !fs.queued[ci] {
			fs.queued[ci] = true
			fs.buckets[fs.v.Level[ci]] = append(fs.buckets[fs.v.Level[ci]], ci)
		}
	}
}
