package atpg

import (
	"sort"

	"tpilayout/internal/fault"
	"tpilayout/internal/netlist"
	"tpilayout/internal/testability"
)

// Memo is the cross-level PODEM cache of the incremental sweep engine.
//
// Adjacent sweep levels differ only by a handful of test points, so the
// vast majority of PODEM searches at level N+1 traverse circuit regions
// that are byte-identical to level N. generate() is a pure function of
// the region it touches: setFault fully resets both simulation planes to
// the constant-settled baseline, and the event-driven simulation settles
// to a fixpoint determined by the current source assignments alone. The
// memo exploits that purity:
//
//   - On a miss, the search runs normally while a recorder collects every
//     net the simulator or the PODEM heuristics read (the footprint). The
//     outcome is stored keyed by the fault site's stable identity.
//   - On a later lookup the entry is valid when every footprint net still
//     has an identical structural signature (constants, baseline value,
//     source/sink role, driver shape, load list), every net whose SCOAP
//     cost the heuristics actually consulted still has the exact same
//     CC0/CC1/CO triple, and the nets written by the event engine kept
//     their relative driver-level order (event buckets replay in the same
//     order). The three checks are deliberately separate: TPI shifts the
//     absolute levels of most of the circuit (+2 per inserted TSFF) and
//     perturbs SCOAP costs across whole cones, but a given search only
//     *reads* costs on its backtrace paths and only *orders* events in its
//     own cone, so checking each dependency at the granularity it was
//     consumed keeps distant edits from invalidating unrelated entries.
//   - A valid aborted/untestable entry replays for free — the search
//     would deterministically reach the same dead end. A valid successful
//     entry replays by re-assigning only the surviving decision values
//     (no backtracking), then verifies that the fault is detected; if the
//     verification fails the entry is dropped and a fresh search runs, so
//     success replay is unconditionally safe.
//
// Statuses, dynamic compaction, random fill, fault simulation, and static
// compaction always run live, which is what keeps an incremental run
// bit-identical to a full rerun.
//
// A Memo is single-goroutine: it is owned by the serial generation loop
// of one run at a time (the incremental sweep serializes levels; the
// fault-simulation shards never touch it).
type Memo struct {
	entries map[memoKey]*memoEntry
	epoch   int32

	// dirtyAt[net] is the last epoch at which net's driver-side signature
	// changed (dirtyLoadAt: its load-list signature); an entry is
	// structurally valid when every net it read satisfies
	// dirtyAt <= entry.epoch in the domain it was read (signatures equal
	// by transitivity).
	dirtyAt      []int32
	dirtyDriveAt []int32
	dirtyLoadAt  []int32
	sig          []uint64
	sigDrive     []uint64
	sigLoad      []uint64
	lvlOf        []int32
	ta           *testability.Analysis

	rec        touchRec
	lvlScratch []lvlPair

	// Stats are reset by BeginLevel and describe the current level.
	Stats MemoStats
}

// MemoStats counts memo outcomes for one level.
type MemoStats struct {
	DirtyNets      int   // nets whose structural signature changed at BeginLevel
	Lookups        int64 // generate calls that consulted the memo
	HitsReplay     int64 // successful cubes replayed without search
	HitsFree       int64 // aborted/untestable outcomes replayed for free
	Misses         int64 // searches run and recorded
	Invalidated    int64 // entries dropped (sum of the three causes below)
	InvalidStruct  int64 // ... by a read net's role/baseline signature
	InvalidDrive   int64 // ... by an evaluated net's driver shape
	InvalidLoads   int64 // ... by a traversed net's load list
	InvalidTA      int64 // ... by a consulted SCOAP cost changing
	InvalidLevel   int64 // ... by the event cone's level order changing
	VerifyFailures int64 // success replays that failed detection (re-searched)
}

// NewMemo returns an empty cross-level memo. Thread it through the
// Options.Memo of consecutive runs over incrementally-edited netlists.
func NewMemo() *Memo { return &Memo{entries: make(map[memoKey]*memoEntry)} }

// memoKey identifies a PODEM target across levels: the fault site by
// stable identity — net ID plus load (cell, pin), because the fanout
// *index* shifts when later DfT edits grow a net's load list — and the
// backtrack limit of the pass (retry-pass entries must not answer
// first-pass lookups).
type memoKey struct {
	net  netlist.NetID
	cell netlist.CellID
	pin  int32
	sa   int8
	bt   int32
}

type assignStep struct {
	src netlist.NetID
	val uint8
}

// footPair is one event-written net with the level of its driving cell at
// record time (0 for sources and non-combinationally driven nets,
// CellLevel+1 otherwise).
type footPair struct {
	net netlist.NetID
	lvl int32
}

// taRead is one net whose SCOAP costs the heuristics consulted, with the
// exact values read at record time. Validity demands raw equality: the
// picks those values steered replay identically only if the inputs to
// every comparison are unchanged.
type taRead struct {
	net          netlist.NetID
	cc0, cc1, co int32
}

type memoEntry struct {
	res   genResult
	fsig  uint8 // faultSig at record time (directObs / comb-load class)
	epoch int32
	trail []assignStep    // final decision values; nil unless genSuccess
	foot  []netlist.NetID // value/role reads: baseline validity domain
	drive []netlist.NetID // driver evaluations: fanin-shape validity domain
	loads []netlist.NetID // load-list traversals: fanout validity domain
	evt   []footPair      // event-written nets: level-order validity domain
	ta    []taRead        // cost-consulted nets: SCOAP validity domain
}

type lvlPair struct{ old, new int32 }

// touchRec is the footprint recorder the simulator and PODEM heuristics
// call into while a miss is being searched; nil-guarded at every hook so
// the full (non-memo) path pays one predictable branch. It keeps three
// deduplicated sets: every net read (structural validity), the out nets
// of event-processed cells (level-order validity), and the nets whose
// SCOAP costs were consulted (cost validity).
type touchRec struct {
	mark      []int32
	evtMark   []int32
	taMark    []int32
	loadMark  []int32
	driveMark []int32
	ep        int32
	nets      []netlist.NetID
	evtNets   []netlist.NetID
	taNets    []netlist.NetID
	loadNets  []netlist.NetID
	driveNets []netlist.NetID
}

func (r *touchRec) reset() {
	r.ep++
	r.nets = r.nets[:0]
	r.evtNets = r.evtNets[:0]
	r.taNets = r.taNets[:0]
	r.loadNets = r.loadNets[:0]
	r.driveNets = r.driveNets[:0]
}

func (r *touchRec) touch(n netlist.NetID) {
	if r.mark[n] != r.ep {
		r.mark[n] = r.ep
		r.nets = append(r.nets, n)
	}
}

// touchEvt records an event-engine write target; callers must also touch()
// the net (the structural set is a superset by construction).
func (r *touchRec) touchEvt(n netlist.NetID) {
	if r.evtMark[n] != r.ep {
		r.evtMark[n] = r.ep
		r.evtNets = append(r.evtNets, n)
	}
}

// touchLoads records a traversal of a net's combinational load list (event
// fan-out or X-path search). Deliberately separate from touch(): a net's
// loads change when a test point is retrofitted onto it, but a search that
// only backtraced *through* the net never looked at them.
func (r *touchRec) touchLoads(n netlist.NetID) {
	if r.loadMark[n] != r.ep {
		r.loadMark[n] = r.ep
		r.loadNets = append(r.loadNets, n)
	}
}

// touchDrive records an evaluation of a net's driving cell — the event
// engine computing its value, or the backtracer stepping through it. Only
// then does the driver's identity, kind, and fanin list matter: a net that
// is merely read keeps its meaning as long as its baseline and roles hold
// (an unwritten net always carries its baseline value, and writing it
// implies its driver was evaluated).
func (r *touchRec) touchDrive(n netlist.NetID) {
	if r.driveMark[n] != r.ep {
		r.driveMark[n] = r.ep
		r.driveNets = append(r.driveNets, n)
	}
}

// touchTA records a SCOAP cost read; also adds the net to the structural
// set, since a cost consultation is a read like any other.
func (r *touchRec) touchTA(n netlist.NetID) {
	if r.taMark[n] != r.ep {
		r.taMark[n] = r.ep
		r.taNets = append(r.taNets, n)
	}
	r.touch(n)
}

// BeginLevel binds the memo to the current level's view and testability
// analysis: it recomputes every net's signature, stamps the nets whose
// signature changed (or that are new) with the fresh epoch, and resets
// the per-level stats. Must be called once per run, before any lookup.
func (m *Memo) BeginLevel(v *View, ta *testability.Analysis) {
	m.epoch++
	m.Stats = MemoStats{}
	base := computeBaseline(v)
	nNets := len(v.N.Nets)
	sig := make([]uint64, nNets)
	sigDrive := make([]uint64, nNets)
	sigLoad := make([]uint64, nNets)
	lvl := make([]int32, nNets)
	for net := 0; net < nNets; net++ {
		sig[net] = netSig(v, base, netlist.NetID(net))
		sigDrive[net] = netSigDrive(v, netlist.NetID(net))
		sigLoad[net] = netSigLoad(v, netlist.NetID(net))
		lvl[net] = netLvl(v, netlist.NetID(net))
	}
	grow := func(s []int32) []int32 {
		if len(s) >= nNets {
			return s
		}
		grown := make([]int32, nNets)
		copy(grown, s)
		return grown
	}
	m.dirtyAt = grow(m.dirtyAt)
	m.dirtyDriveAt = grow(m.dirtyDriveAt)
	m.dirtyLoadAt = grow(m.dirtyLoadAt)
	first := m.sig == nil
	common := len(m.sig)
	if common > nNets {
		common = nNets
	}
	dirty := 0
	for net := 0; net < common; net++ {
		changed := false
		if sig[net] != m.sig[net] {
			m.dirtyAt[net] = m.epoch
			changed = true
		}
		if sigDrive[net] != m.sigDrive[net] {
			m.dirtyDriveAt[net] = m.epoch
			changed = true
		}
		if sigLoad[net] != m.sigLoad[net] {
			m.dirtyLoadAt[net] = m.epoch
			changed = true
		}
		if changed {
			dirty++
		}
	}
	for net := common; net < nNets; net++ {
		m.dirtyAt[net] = m.epoch
		m.dirtyDriveAt[net] = m.epoch
		m.dirtyLoadAt[net] = m.epoch
		dirty++
	}
	if !first {
		m.Stats.DirtyNets = dirty
	}
	m.sig, m.sigDrive, m.sigLoad, m.lvlOf, m.ta = sig, sigDrive, sigLoad, lvl, ta
	m.rec.mark = grow(m.rec.mark)
	m.rec.evtMark = grow(m.rec.evtMark)
	m.rec.taMark = grow(m.rec.taMark)
	m.rec.loadMark = grow(m.rec.loadMark)
	m.rec.driveMark = grow(m.rec.driveMark)
}

// lookup returns a still-valid entry for fault f at backtrack limit bt,
// refreshing its epoch (region equality is transitive, so a revalidated
// entry survives further unrelated edits). Invalid entries are dropped.
func (m *Memo) lookup(v *View, f fault.Fault, bt int) (*memoEntry, bool) {
	m.Stats.Lookups++
	key := memoKeyOf(v, f, bt)
	e, ok := m.entries[key]
	if !ok {
		return nil, false
	}
	if e.fsig != faultSig(v, f) {
		delete(m.entries, key)
		m.Stats.Invalidated++
		m.Stats.InvalidStruct++
		return nil, false
	}
	if !m.valid(e) {
		delete(m.entries, key)
		m.Stats.Invalidated++
		return nil, false
	}
	e.epoch = m.epoch
	return e, true
}

func (m *Memo) drop(v *View, f fault.Fault, bt int) {
	delete(m.entries, memoKeyOf(v, f, bt))
}

// valid checks an entry's three validity domains. Structure: every
// touched net unchanged since the entry's epoch. Costs: every consulted
// SCOAP triple still holds the exact values the picks compared. Levels:
// the event-written nets' driver levels are order-isomorphic (including
// ties) to record time — the event engine drains cells level-bucket by
// level-bucket, so the recorded trajectory (values *and* D-frontier
// discovery order) replays identically exactly when the relative order of
// the cone's levels survived. TPI shifts downstream cones by +2, so
// absolute levels routinely change while the cone-local order does not.
func (m *Memo) valid(e *memoEntry) bool {
	for _, net := range e.foot {
		if m.dirtyAt[net] > e.epoch {
			m.Stats.InvalidStruct++
			return false
		}
	}
	for _, net := range e.drive {
		if m.dirtyDriveAt[net] > e.epoch {
			m.Stats.InvalidDrive++
			return false
		}
	}
	for _, net := range e.loads {
		if m.dirtyLoadAt[net] > e.epoch {
			m.Stats.InvalidLoads++
			return false
		}
	}
	for _, tr := range e.ta {
		if m.ta.CC0[tr.net] != tr.cc0 || m.ta.CC1[tr.net] != tr.cc1 || m.ta.CO[tr.net] != tr.co {
			m.Stats.InvalidTA++
			return false
		}
	}
	shifted := false
	for _, fp := range e.evt {
		if m.lvlOf[fp.net] != fp.lvl {
			shifted = true
			break
		}
	}
	if !shifted {
		return true // identity level map: trivially order-preserving
	}
	prs := m.lvlScratch[:0]
	for _, fp := range e.evt {
		prs = append(prs, lvlPair{old: fp.lvl, new: m.lvlOf[fp.net]})
	}
	m.lvlScratch = prs
	sort.Slice(prs, func(i, j int) bool {
		if prs[i].old != prs[j].old {
			return prs[i].old < prs[j].old
		}
		return prs[i].new < prs[j].new
	})
	for i := 1; i < len(prs); i++ {
		if prs[i].old == prs[i-1].old {
			if prs[i].new != prs[i-1].new {
				m.Stats.InvalidLevel++
				return false
			}
		} else if prs[i].new <= prs[i-1].new {
			m.Stats.InvalidLevel++
			return false
		}
	}
	return true
}

// seedFrom unions the footprint of an entry recorded earlier in this run
// (keyed by the same fault at backtrack limit bt) into the active
// recorder. Used when the retry pass resumes an aborted search from its
// snapshot: the continuation only re-reads what lies past the abort
// point, but a from-scratch retry would retrace the recorded prefix
// exactly, so prefix ∪ continuation is precisely the full retry
// footprint.
func (m *Memo) seedFrom(v *View, f fault.Fault, bt int) {
	e, ok := m.entries[memoKeyOf(v, f, bt)]
	if !ok {
		return
	}
	for _, n := range e.foot {
		m.rec.touch(n)
	}
	for _, n := range e.drive {
		m.rec.touchDrive(n)
	}
	for _, n := range e.loads {
		m.rec.touchLoads(n)
	}
	for _, fp := range e.evt {
		m.rec.touchEvt(fp.net)
	}
	for _, tr := range e.ta {
		m.rec.touchTA(tr.net)
	}
}

// beginRecord attaches the footprint recorder to the simulator for one
// generate call.
func (m *Memo) beginRecord(s *sim5) {
	m.rec.reset()
	s.rec = &m.rec
}

// endRecord detaches the recorder and stores the search outcome. For a
// success the surviving decision values are kept — replaying just those
// assignments reproduces the final fixpoint state, because the settled
// planes depend only on the current source values, not on the
// backtracking journey that found them.
func (m *Memo) endRecord(v *View, s *sim5, f fault.Fault, bt int, g genResult, decisions []decision) {
	s.rec = nil
	e := &memoEntry{res: g, fsig: faultSig(v, f), epoch: m.epoch}
	e.foot = append([]netlist.NetID(nil), m.rec.nets...)
	e.drive = append([]netlist.NetID(nil), m.rec.driveNets...)
	e.loads = append([]netlist.NetID(nil), m.rec.loadNets...)
	e.evt = make([]footPair, len(m.rec.evtNets))
	for i, net := range m.rec.evtNets {
		e.evt[i] = footPair{net: net, lvl: m.lvlOf[net]}
	}
	e.ta = make([]taRead, len(m.rec.taNets))
	for i, net := range m.rec.taNets {
		e.ta[i] = taRead{net: net, cc0: m.ta.CC0[net], cc1: m.ta.CC1[net], co: m.ta.CO[net]}
	}
	if g == genSuccess {
		e.trail = make([]assignStep, len(decisions))
		for i, d := range decisions {
			e.trail[i] = assignStep{src: d.src, val: d.val}
		}
	}
	m.entries[memoKeyOf(v, f, bt)] = e
}

func memoKeyOf(v *View, f fault.Fault, bt int) memoKey {
	k := memoKey{net: f.Net, sa: f.SA, bt: int32(bt), cell: netlist.NoCell, pin: -1}
	if f.Load != fault.StemLoad {
		ld := v.fanout(f.Net)[f.Load]
		k.cell, k.pin = ld.Cell, int32(ld.Pin)
	}
	return k
}

// faultSig classifies the fault site the way installFault does: stem vs
// branch, direct observation (branch into a flop's d pin or a primary
// output), and combinational-load injection. The load (cell, pin) pair is
// already the key; this covers the derived flags the key cannot see
// (e.g. a sequential load cell changing shape is invisible to every
// net signature, because the simulator never evaluates it).
func faultSig(v *View, f fault.Fault) uint8 {
	if f.Load == fault.StemLoad {
		return 0
	}
	ld := v.fanout(f.Net)[f.Load]
	s := uint8(1)
	switch {
	case ld.Cell == netlist.NoCell:
		s |= 2 // branch straight into a primary output
	case !v.Comb(ld.Cell):
		c := &v.N.Cells[ld.Cell]
		if c.Cell.Kind.IsSequential() && c.Cell.FindInput("d") == ld.Pin {
			s |= 2
		}
	default:
		s |= 4
	}
	return s
}

// netSig hashes the *driver-side structural* face of one net: its frozen
// value, baseline plane value, source and sink roles, and driver
// identity/kind/liveness with (for combinational drivers) the exact fanin
// list. Everything else the search can observe is excluded and checked at
// the granularity it was consumed: the combinational load list
// (netSigLoad; read only on fan-out traversal), driver levels (shift
// wholesale under TPI; order-isomorphism test over the event cone), SCOAP
// costs (perturbed across whole cones by a test point; raw-equality test
// over the nets a pick actually compared), and sequential load (cell, pin)
// identities (invisible to the combinational search; including them would
// dirty every flop input cone whenever scan stitching rewires si pins).
func netSig(v *View, base []uint8, net netlist.NetID) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		h ^= x
		h *= prime64
	}
	mix(uint64(int64(v.ConstVal[net])) + 2)
	mix(uint64(base[net]))
	if v.SourceOf[net] >= 0 {
		mix(1)
	} else {
		mix(0)
	}
	if v.IsSink[net] {
		mix(1)
	} else {
		mix(0)
	}
	d := v.N.Nets[net].Driver
	if d == netlist.NoCell || !v.Comb(d) {
		// Combinationally undriven: the backtracer stops here and the
		// event engine never writes it, so role + baseline say it all.
		mix(0)
	} else {
		mix(1)
	}
	return h
}

// netSigDrive hashes the shape of one net's driving cell — identity,
// kind, and exact fanin list. Consulted only for nets whose driver the
// search evaluated (event processing or backtrace steps).
func netSigDrive(v *View, net netlist.NetID) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		h ^= x
		h *= prime64
	}
	d := v.N.Nets[net].Driver
	if d == netlist.NoCell {
		mix(^uint64(0))
		return h
	}
	mix(uint64(d))
	mix(uint64(v.CellKind[d]))
	if v.Comb(d) {
		mix(1)
		fanin := v.fanin(d)
		mix(uint64(len(fanin)))
		for _, fn := range fanin {
			mix(uint64(fn))
		}
	} else {
		mix(0)
	}
	return h
}

// netSigLoad hashes the ordered combinational load list of one net — the
// part of its structure the search reads only when traversing fan-out
// (event propagation, X-path search). Kept apart from netSig because a
// retrofit test point rewires exactly this list on its target net.
func netSigLoad(v *View, net netlist.NetID) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		h ^= x
		h *= prime64
	}
	loads := v.combLoads(net)
	mix(uint64(len(loads)))
	for _, lc := range loads {
		mix(uint64(lc))
	}
	return h
}

// netLvl is the event-bucket level associated with a net: the level of
// its combinational driver plus one, or 0 for sources, constants, and
// sequentially-driven nets (which no event bucket ever holds).
func netLvl(v *View, net netlist.NetID) int32 {
	d := v.N.Nets[net].Driver
	if d == netlist.NoCell || !v.Comb(d) {
		return 0
	}
	return int32(v.Level[d]) + 1
}
