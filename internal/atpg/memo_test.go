package atpg

import (
	"reflect"
	"testing"

	"tpilayout/internal/circuitgen"
	"tpilayout/internal/fault"
	"tpilayout/internal/netlist"
	"tpilayout/internal/stdcell"
	"tpilayout/internal/tpi"
)

// memoLevel builds one "sweep level" the way the flow does: a fresh clone
// of the base circuit with count test points inserted, plus the ATPG
// options carrying the TSFF capture constraints.
func memoLevel(t *testing.T, base *netlist.Netlist, count int) (*netlist.Netlist, Options) {
	t.Helper()
	n := base.Clone()
	tps, err := tpi.Insert(n, tpi.Options{Count: count})
	if err != nil {
		t.Fatal(err)
	}
	return n, Options{Constraints: tps.CaptureConstraints()}
}

// TestMemoBitIdentical is the exactness contract of the cross-level memo:
// a run that replays memoized searches from previous levels must produce
// the exact pattern set and per-class statuses of an unmemoized run, at
// every level of a TPI chain.
func TestMemoBitIdentical(t *testing.T) {
	lib := stdcell.Default()
	base, err := circuitgen.Generate(circuitgen.S38417Class().Scale(0.04), lib)
	if err != nil {
		t.Fatal(err)
	}
	memo := NewMemo()
	for li, count := range []int{0, 2, 5} {
		n, opt := memoLevel(t, base, count)
		refSet := fault.NewUniverse(n)
		ref, err := Run(n, refSet, opt)
		if err != nil {
			t.Fatalf("level %d (reference): %v", li, err)
		}

		mopt := opt
		mopt.Memo = memo
		memSet := fault.NewUniverse(n)
		got, err := Run(n, memSet, mopt)
		if err != nil {
			t.Fatalf("level %d (memo): %v", li, err)
		}

		if !reflect.DeepEqual(ref.Patterns, got.Patterns) {
			t.Fatalf("level %d: memoized pattern set differs (%d vs %d patterns)",
				li, len(got.Patterns), len(ref.Patterns))
		}
		if !reflect.DeepEqual(refSet.Counts(), memSet.Counts()) {
			t.Fatalf("level %d: memoized statuses differ: %v vs %v",
				li, memSet.Counts(), refSet.Counts())
		}
		if got.RandomKept != ref.RandomKept || got.DeterministicKept != ref.DeterministicKept {
			t.Fatalf("level %d: provenance differs: random %d/%d det %d/%d",
				li, got.RandomKept, ref.RandomKept, got.DeterministicKept, ref.DeterministicKept)
		}
		t.Logf("level %d (tp=%d): lookups=%d replay=%d free=%d miss=%d invalid=%d (struct=%d drive=%d loads=%d ta=%d lvl=%d) verifyfail=%d dirty=%d",
			li, count, memo.Stats.Lookups, memo.Stats.HitsReplay, memo.Stats.HitsFree,
			memo.Stats.Misses, memo.Stats.Invalidated, memo.Stats.InvalidStruct,
			memo.Stats.InvalidDrive, memo.Stats.InvalidLoads,
			memo.Stats.InvalidTA, memo.Stats.InvalidLevel, memo.Stats.VerifyFailures, memo.Stats.DirtyNets)
		// Cross-level hit counts are not asserted: inserting a test point
		// rewires its target net's loads onto the TSFF output mux, which in
		// capture mode reads the flop — a fresh scan source — so every
		// footprint crossing a moved-load cone is *semantically* invalid,
		// and at this circuit scale the SCOAP-guided points land in exactly
		// the hard regions most footprints traverse. What is asserted is
		// the accounting (every lookup is a hit, a miss, or followed an
		// invalidation with a recorded cause) and, above, bit-identity.
		// TestMemoSameLevelIdempotent proves the cache hits when valid.
		if got := memo.Stats.HitsReplay + memo.Stats.HitsFree + memo.Stats.Misses; got != memo.Stats.Lookups {
			t.Errorf("level %d: lookup accounting broken: replay+free+miss=%d, lookups=%d",
				li, got, memo.Stats.Lookups)
		}
		causes := memo.Stats.InvalidStruct + memo.Stats.InvalidDrive + memo.Stats.InvalidLoads +
			memo.Stats.InvalidTA + memo.Stats.InvalidLevel
		if causes < memo.Stats.Invalidated {
			t.Errorf("level %d: %d invalidations but only %d recorded causes",
				li, memo.Stats.Invalidated, causes)
		}
		if memo.Stats.VerifyFailures > 0 {
			t.Errorf("level %d: %d replay verification failures — signatures are missing a dependency",
				li, memo.Stats.VerifyFailures)
		}
	}
}

// TestMemoSameLevelIdempotent re-runs the same level twice through one
// memo: the second run must hit on essentially every deterministic target
// (generate is pure, nothing was edited) and still match bit-exactly.
func TestMemoSameLevelIdempotent(t *testing.T) {
	lib := stdcell.Default()
	base, err := circuitgen.Generate(circuitgen.WirelessCtrlClass().Scale(0.20), lib)
	if err != nil {
		t.Fatal(err)
	}
	n, opt := memoLevel(t, base, 3)

	refSet := fault.NewUniverse(n)
	ref, err := Run(n, refSet, opt)
	if err != nil {
		t.Fatal(err)
	}

	memo := NewMemo()
	for pass := 0; pass < 2; pass++ {
		set := fault.NewUniverse(n)
		mopt := opt
		mopt.Memo = memo
		got, err := Run(n, set, mopt)
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		if !reflect.DeepEqual(ref.Patterns, got.Patterns) {
			t.Fatalf("pass %d: pattern set differs", pass)
		}
		if !reflect.DeepEqual(refSet.Counts(), set.Counts()) {
			t.Fatalf("pass %d: statuses differ", pass)
		}
		if pass == 1 {
			if memo.Stats.DirtyNets != 0 {
				t.Errorf("identical netlist re-run dirtied %d nets", memo.Stats.DirtyNets)
			}
			if memo.Stats.Misses != 0 {
				t.Errorf("identical netlist re-run missed %d times (invalid=%d)",
					memo.Stats.Misses, memo.Stats.Invalidated)
			}
		}
	}
}
