package atpg

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tpilayout/internal/fault"
	"tpilayout/internal/supervise"
	"tpilayout/internal/telemetry"
)

// simPool shards fault-parallel simulation across a set of FaultSim
// instances. All shards share one good-circuit value plane (written only
// by SimGood, between parallel sections) while each owns its private
// propagation state, so Detects runs concurrently without locking.
//
// Every result is merged by fault index, never by completion order, so a
// pool of any size produces bit-identical output to a serial FaultSim.
//
// The pool is supervised: its context cancels shard loops at chunk
// granularity, and a panic on a shard goroutine is captured (with that
// goroutine's stack) and re-raised on the supervising goroutine instead
// of crashing the process — sibling shards drain and stop.
type simPool struct {
	ctx  context.Context
	sims []*FaultSim

	// noDom disables the dominance shortcut (property tests compare runs
	// with and without it).
	noDom bool
	// plan is the cached dominance schedule for the current reps slice.
	plan *domPlan

	// Telemetry: batches counts SimGood rounds (master shard, serial);
	// work[i] counts Detects calls on shard i — each shard index is
	// owned by exactly one goroutine per parFor call and reads happen
	// after its WaitGroup, so plain ints are race-free. Flushed once at
	// end of run.
	batches int64
	work    []int64

	// Latency distributions, present only when the run is instrumented
	// (see instrument): hBatch times each SimGood round, detectNS[i] is
	// shard i's private histogram shard of per-fault Detects latency —
	// same exclusive-ownership rule as work, flushed once at end of run.
	hBatch   *telemetry.Histogram
	detectNS []*telemetry.LocalHist
}

// instrument attaches the pool's latency histograms to the ATPG stage
// span. A nil span leaves the pool uninstrumented: every hot-path site
// then skips its time.Now pair entirely.
func (p *simPool) instrument(sp *telemetry.Span) {
	if sp == nil {
		return
	}
	p.hBatch = sp.Histogram("atpg.sim_batch_ns")
	h := sp.Histogram("atpg.sim_detect_ns")
	p.detectNS = make([]*telemetry.LocalHist, len(p.sims))
	for i := range p.detectNS {
		p.detectNS[i] = h.Local()
	}
}

// newSimPool builds a pool of workers shards over the view. workers <= 0
// selects GOMAXPROCS; workers == 1 degenerates to a serial simulator with
// no goroutine overhead.
func newSimPool(ctx context.Context, v *View, workers int) *simPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &simPool{ctx: ctx, sims: make([]*FaultSim, workers), work: make([]int64, workers)}
	p.sims[0] = NewFaultSim(v)
	for i := 1; i < workers; i++ {
		p.sims[i] = p.sims[0].NewShard()
	}
	return p
}

// Release returns every shard's propagation buffers to the scratch pool.
func (p *simPool) Release() {
	for _, fs := range p.sims {
		fs.Release()
	}
}

// NewBatch allocates an empty batch for the pool's view.
func (p *simPool) NewBatch() *Batch { return p.sims[0].NewBatch() }

// SimGood simulates the fault-free circuit for the batch on the master
// shard; the shared good plane becomes visible to every shard.
func (p *simPool) SimGood(b *Batch) {
	p.batches++
	if p.hBatch == nil {
		p.sims[0].SimGood(b)
		return
	}
	t0 := time.Now()
	p.sims[0].SimGood(b)
	p.hBatch.Observe(int64(time.Since(t0)))
}

// detects is the timed Detects entry: shard-private histogram recording
// when instrumented, a straight call when not.
func (p *simPool) detects(shard int, f fault.Fault, b *Batch, earlyExit bool) uint64 {
	if p.detectNS == nil {
		return p.sims[shard].Detects(f, b, earlyExit)
	}
	t0 := time.Now()
	w := p.sims[shard].Detects(f, b, earlyExit)
	p.detectNS[shard].Observe(int64(time.Since(t0)))
	return w
}

// domPlan schedules a reps slice for two-phase detection: leaf classes
// (no dominance children) first, then parent classes, which can inherit a
// nonzero detection word from any already-computed leaf child instead of
// simulating. Valid only for boolean (early-exit) consumers: the
// inherited word proves detection but is not the parent's exact word.
type domPlan struct {
	reps      []int32   // identity key: same backing array ⇒ same plan
	leafPos   []int32   // positions in reps with no dominance children
	parentPos []int32   // positions with at least one child
	childPos  [][]int32 // per parent position: leaf-child positions
}

func buildDomPlan(set *fault.Set, reps []int32) *domPlan {
	pl := &domPlan{reps: reps, childPos: make([][]int32, len(reps))}
	pos := make(map[int32]int32, len(reps))
	isLeaf := make([]bool, len(reps))
	for i, r := range reps {
		c := set.ClassIndex(r)
		pos[c] = int32(i)
		isLeaf[i] = len(set.DomChildren(c)) == 0
	}
	for i, r := range reps {
		if isLeaf[i] {
			pl.leafPos = append(pl.leafPos, int32(i))
			continue
		}
		pl.parentPos = append(pl.parentPos, int32(i))
		var cps []int32
		for _, cc := range set.DomChildren(set.ClassIndex(r)) {
			// Only children computed in the leaf phase may be consulted;
			// parent children run concurrently in this phase.
			if cp, ok := pos[cc]; ok && isLeaf[cp] {
				cps = append(cps, cp)
			}
		}
		pl.childPos[i] = cps
	}
	return pl
}

// detectEach fills out[i] with the detection word of fault class reps[i]
// against the last SimGood batch, sharding the fault list across the
// pool. Classes rejected by include get 0. include must not mutate
// anything (it is called concurrently); out must have len(reps). When the
// pool's context is cancelled mid-call, out is left partially filled —
// the caller must observe ctx.Err() before using it.
//
// With earlyExit the caller only consumes out[i] != 0, which licenses the
// dominance shortcut: a parent class whose leaf child already produced a
// nonzero word inherits that word (det(child) ⊆ det(parent)) and skips
// its own propagation. Exact-word consumers (compaction) pass
// earlyExit=false and always get true per-class words.
func (p *simPool) detectEach(reps []int32, set *fault.Set, b *Batch, earlyExit bool, include func(int32) bool, out []uint64) {
	sim := func(shard, i int) {
		r := reps[i]
		if include(r) {
			p.work[shard]++
			out[i] = p.detects(shard, set.Faults[r], b, earlyExit)
		} else {
			out[i] = 0
		}
	}
	if !earlyExit || p.noDom {
		parFor(p.ctx, len(reps), len(p.sims), sim)
		return
	}
	if p.plan == nil || len(p.plan.reps) != len(reps) ||
		(len(reps) > 0 && &p.plan.reps[0] != &reps[0]) {
		p.plan = buildDomPlan(set, reps)
	}
	pl := p.plan
	parFor(p.ctx, len(pl.leafPos), len(p.sims), func(shard, k int) {
		sim(shard, int(pl.leafPos[k]))
	})
	parFor(p.ctx, len(pl.parentPos), len(p.sims), func(shard, k int) {
		i := int(pl.parentPos[k])
		r := reps[i]
		if !include(r) {
			out[i] = 0
			return
		}
		for _, cp := range pl.childPos[i] {
			if w := out[cp]; w != 0 {
				out[i] = w
				return
			}
		}
		p.work[shard]++
		out[i] = p.detects(shard, set.Faults[r], b, true)
	})
}

// parFor runs fn(shard, i) for every i in [0, n), distributing chunks of
// iterations over the given number of goroutines. Each shard index is
// held by exactly one goroutine, so fn may freely use per-shard state.
//
// Supervision semantics: a nil-able ctx cancels the loop between chunks
// (remaining iterations are skipped — the caller is expected to check
// ctx.Err() and discard the partial output). If fn panics on a worker
// goroutine, the panic is recovered there (capturing that goroutine's
// stack), the remaining workers stop at their next chunk boundary, and
// the first panic is re-raised on the calling goroutine as a
// *supervise.PanicError once all workers have drained — one poisoned
// work unit never kills the process or deadlocks siblings.
func parFor(ctx context.Context, n, workers int, fn func(shard, i int)) {
	if workers > n {
		workers = n
	}
	// Chunked work stealing: big enough to amortize the atomic, small
	// enough to balance the wildly uneven per-fault propagation cost.
	const chunk = 32
	if workers <= 1 {
		for lo := 0; lo < n; lo += chunk {
			if ctx != nil && ctx.Err() != nil {
				return
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				fn(0, i)
			}
		}
		return
	}
	var next atomic.Int64
	var panicked atomic.Pointer[supervise.PanicError]
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, supervise.AsPanicError(r))
				}
			}()
			for {
				if panicked.Load() != nil || (ctx != nil && ctx.Err() != nil) {
					return
				}
				lo := int(next.Add(chunk)) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(shard, i)
				}
			}
		}(w)
	}
	wg.Wait()
	if pe := panicked.Load(); pe != nil {
		panic(pe)
	}
}
