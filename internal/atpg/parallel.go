package atpg

import (
	"runtime"
	"sync"
	"sync/atomic"

	"tpilayout/internal/fault"
)

// simPool shards fault-parallel simulation across a set of FaultSim
// instances. All shards share one good-circuit value plane (written only
// by SimGood, between parallel sections) while each owns its private
// propagation state, so Detects runs concurrently without locking.
//
// Every result is merged by fault index, never by completion order, so a
// pool of any size produces bit-identical output to a serial FaultSim.
type simPool struct {
	sims []*FaultSim
}

// newSimPool builds a pool of workers shards over the view. workers <= 0
// selects GOMAXPROCS; workers == 1 degenerates to a serial simulator with
// no goroutine overhead.
func newSimPool(v *View, workers int) *simPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &simPool{sims: make([]*FaultSim, workers)}
	p.sims[0] = NewFaultSim(v)
	for i := 1; i < workers; i++ {
		p.sims[i] = p.sims[0].NewShard()
	}
	return p
}

// NewBatch allocates an empty batch for the pool's view.
func (p *simPool) NewBatch() *Batch { return p.sims[0].NewBatch() }

// SimGood simulates the fault-free circuit for the batch on the master
// shard; the shared good plane becomes visible to every shard.
func (p *simPool) SimGood(b *Batch) { p.sims[0].SimGood(b) }

// detectEach fills out[i] with the detection word of fault class reps[i]
// against the last SimGood batch, sharding the fault list across the
// pool. Classes rejected by include get 0. include must not mutate
// anything (it is called concurrently); out must have len(reps).
func (p *simPool) detectEach(reps []int32, set *fault.Set, b *Batch, earlyExit bool, include func(int32) bool, out []uint64) {
	parFor(len(reps), len(p.sims), func(shard, i int) {
		r := reps[i]
		if include(r) {
			out[i] = p.sims[shard].Detects(set.Faults[r], b, earlyExit)
		} else {
			out[i] = 0
		}
	})
}

// parFor runs fn(shard, i) for every i in [0, n), distributing chunks of
// iterations over the given number of goroutines. Each shard index is
// held by exactly one goroutine, so fn may freely use per-shard state.
func parFor(n, workers int, fn func(shard, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	// Chunked work stealing: big enough to amortize the atomic, small
	// enough to balance the wildly uneven per-fault propagation cost.
	const chunk = 32
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for {
				lo := int(next.Add(chunk)) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(shard, i)
				}
			}
		}(w)
	}
	wg.Wait()
}
