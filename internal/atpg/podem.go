package atpg

import (
	"tpilayout/internal/fault"
	"tpilayout/internal/netlist"
	"tpilayout/internal/stdcell"
	"tpilayout/internal/testability"
)

// genResult is the outcome of one PODEM run.
type genResult int

const (
	genSuccess genResult = iota
	genUntestable
	genAborted
)

// podem generates a test cube for one fault using the PODEM algorithm:
// decisions are made only at sources (PIs and scan cells), objectives are
// chosen from fault activation and the D-frontier, and backtracing is
// guided by SCOAP controllability.
type podem struct {
	v       *View
	s       *sim5
	ta      *testability.Analysis
	btLimit int

	decisions []decision

	// Search-effort statistics (the generator is strictly serial, so
	// plain ints suffice); atpg flushes them into telemetry counters
	// once per run. They replace any per-event logging: the engine is
	// silent by default and the numbers still reach the trace.
	nTargets    int64 // generate calls (primary PODEM targets)
	nBacktracks int64 // decision flips across generate and extend
}

type decision struct {
	src     netlist.NetID
	val     uint8
	flipped bool
}

func newPodem(v *View, ta *testability.Analysis, btLimit int) *podem {
	return &podem{v: v, s: newSim5(v), ta: ta, btLimit: btLimit}
}

// generate runs PODEM for fault f. On success the returned cube holds one
// value per view source: 0, 1, or -1 for don't-care.
func (p *podem) generate(f fault.Fault) ([]int8, genResult) {
	p.s.setFault(f)
	p.decisions = p.decisions[:0]
	p.nTargets++
	return p.search(f, 0)
}

// abortSnap freezes a search at its abort point: the settled planes, the
// D-frontier candidate list (whose order the objective's first-wins argmin
// consumes), the decision stack — with the pending flip already applied to
// the top entry but not yet assigned, exactly as generate leaves it — and
// the backtrack count at the abort check.
type abortSnap struct {
	planes     []uint8
	cand       []netlist.CellID
	decisions  []decision
	backtracks int
}

// snapshot captures the current abort state; call only immediately after
// generate returned genAborted from a real search.
func (p *podem) snapshot() *abortSnap {
	return &abortSnap{
		planes:     append([]uint8(nil), p.s.P...),
		cand:       append([]netlist.CellID(nil), p.s.cand...),
		decisions:  append([]decision(nil), p.decisions...),
		backtracks: p.btLimit + 1,
	}
}

// resume continues an aborted search under the current (larger) backtrack
// limit from its abort snapshot instead of re-deriving the whole prefix.
// This is exact: PODEM is deterministic and the backtrack limit only gates
// the abort check, so a from-scratch run at the larger limit would retrace
// the identical decision sequence to the abort point, arrive at exactly
// the snapshot state with the same pending flip, execute that flip (the
// count now being under the limit), and carry on — which is precisely what
// resume does directly.
func (p *podem) resume(f fault.Fault, snap *abortSnap) ([]int8, genResult) {
	p.s.restore(f, snap.planes, snap.cand)
	p.decisions = append(p.decisions[:0], snap.decisions...)
	p.nTargets++
	// Execute the flip the abort cut short.
	d := &p.decisions[len(p.decisions)-1]
	p.s.assign(d.src, d.val)
	return p.search(f, snap.backtracks)
}

// search is the PODEM decision loop shared by generate and resume.
func (p *podem) search(f fault.Fault, backtracks int) ([]int8, genResult) {
	for {
		if p.s.detected() {
			return p.cube(), genSuccess
		}
		objNet, objVal, state := p.objective(f)
		assigned := false
		if state == objOK {
			if src, val, ok := p.backtrace(objNet, objVal); ok {
				p.decisions = append(p.decisions, decision{src: src, val: val})
				p.s.assign(src, val)
				assigned = true
			}
		}
		if assigned {
			continue
		}
		// Backtrack.
		for {
			if len(p.decisions) == 0 {
				return nil, genUntestable
			}
			d := &p.decisions[len(p.decisions)-1]
			if !d.flipped {
				d.flipped = true
				d.val = 1 - d.val
				backtracks++
				p.nBacktracks++
				if backtracks > p.btLimit {
					return nil, genAborted
				}
				p.s.assign(d.src, d.val)
				break
			}
			p.s.assign(d.src, lX)
			p.decisions = p.decisions[:len(p.decisions)-1]
		}
	}
}

// replay re-executes a memoized successful search: the surviving decision
// values are re-assigned in order on a freshly set-up fault. The
// event-driven simulation settles to a fixpoint determined by the current
// source assignments alone, so replaying just the final decisions — no
// objectives, no backtracking — reproduces the full search's end state
// exactly: same planes, same decision stack for the dynamic-compaction
// extends that follow, same cube. The caller verifies detected() before
// trusting the result.
func (p *podem) replay(f fault.Fault, trail []assignStep) []int8 {
	p.s.setFault(f)
	p.decisions = p.decisions[:0]
	for _, st := range trail {
		p.decisions = append(p.decisions, decision{src: st.src, val: st.val})
		p.s.assign(st.src, st.val)
	}
	return p.cube()
}

// extend attempts dynamic compaction: with the current assignments (from
// a successful generate) frozen, it tries to also detect fault f using
// only still-unassigned sources and a small backtrack budget. On success
// the assignments grow and extend returns true; on failure the decision
// stack is restored to its state at entry. Either way the sim is left
// retargeted to f; the caller retargets again for the next secondary.
func (p *podem) extend(f fault.Fault, budget int) bool {
	p.s.retarget(f)
	checkpoint := len(p.decisions)
	backtracks := 0
	for {
		if p.s.detected() {
			return true
		}
		objNet, objVal, state := p.objective(f)
		assigned := false
		if state == objOK {
			if src, val, ok := p.backtrace(objNet, objVal); ok {
				p.decisions = append(p.decisions, decision{src: src, val: val})
				p.s.assign(src, val)
				assigned = true
			}
		}
		if assigned {
			continue
		}
		for {
			if len(p.decisions) == checkpoint {
				return false // cannot serve f under the frozen cube
			}
			d := &p.decisions[len(p.decisions)-1]
			if !d.flipped {
				d.flipped = true
				d.val = 1 - d.val
				backtracks++
				p.nBacktracks++
				if backtracks > budget {
					p.rollback(checkpoint)
					return false
				}
				p.s.assign(d.src, d.val)
				break
			}
			p.s.assign(d.src, lX)
			p.decisions = p.decisions[:len(p.decisions)-1]
		}
	}
}

// rollback unassigns decisions above the checkpoint.
func (p *podem) rollback(checkpoint int) {
	for len(p.decisions) > checkpoint {
		d := p.decisions[len(p.decisions)-1]
		p.s.assign(d.src, lX)
		p.decisions = p.decisions[:len(p.decisions)-1]
	}
}

func (p *podem) cube() []int8 {
	cube := make([]int8, len(p.v.Sources))
	for i, src := range p.v.Sources {
		switch p.s.g(src) {
		case l0:
			cube[i] = 0
		case l1:
			cube[i] = 1
		default:
			cube[i] = -1
		}
	}
	return cube
}

type objState int

const (
	objOK objState = iota
	objFail
)

// objective picks the next goal: activate the fault if it is not yet
// activated, otherwise advance the D-frontier gate with the best
// observability that still has an X-path to a sink.
func (p *podem) objective(f fault.Fault) (netlist.NetID, uint8, objState) {
	want := uint8(1 - f.SA)
	switch p.s.g(f.Net) {
	case lX:
		return f.Net, want, objOK
	case 1 - want:
		return 0, 0, objFail // activation impossible under current assignments
	}
	// Activated: drive the frontier.
	var best netlist.CellID = netlist.NoCell
	bestCO := testability.Inf + 1
	for _, ci := range p.s.frontier() {
		out := p.v.CellOut[ci]
		if !p.s.xpathFrom(out) {
			continue
		}
		if p.s.rec != nil {
			p.s.rec.touchTA(out)
		}
		if co := p.ta.CO[out]; co < bestCO {
			bestCO = co
			best = ci
		}
	}
	if best == netlist.NoCell {
		return 0, 0, objFail
	}
	return p.propObjective(best)
}

// propObjective returns the (net, value) needed to push the fault effect
// through frontier cell ci: an X side-input set to its non-controlling
// (sensitizing) value.
func (p *podem) propObjective(ci netlist.CellID) (netlist.NetID, uint8, objState) {
	ins := p.v.fanin(ci)
	// Locate a fault-effect input (for MUX/AOI the requirement depends on
	// which pin carries the effect).
	dPin := -1
	for pin := range ins {
		if v := p.s.pinComp(ci, pin); v == cD || v == cDB {
			dPin = pin
			break
		}
	}
	pickX := func(pin int, val uint8) (netlist.NetID, uint8, bool) {
		if pin != dPin && p.s.pinComp(ci, pin) == cX {
			return ins[pin], val, true
		}
		return 0, 0, false
	}
	switch p.v.CellKind[ci] {
	case stdcell.KindAnd, stdcell.KindNand:
		for pin := range ins {
			if n, v, ok := pickX(pin, l1); ok {
				return n, v, objOK
			}
		}
	case stdcell.KindOr, stdcell.KindNor:
		for pin := range ins {
			if n, v, ok := pickX(pin, l0); ok {
				return n, v, objOK
			}
		}
	case stdcell.KindXor, stdcell.KindXnor:
		for pin := range ins {
			if n, v, ok := pickX(pin, l0); ok {
				return n, v, objOK
			}
		}
	case stdcell.KindAoi21: // y = !(a·b + c); pins a=0 b=1 c=2
		var want [3]uint8
		switch dPin {
		case 0:
			want = [3]uint8{0, l1, l0}
		case 1:
			want = [3]uint8{l0, 0, l0}
			want[0] = l1
		default:
			// Effect on c: need a·b = 0; prefer zeroing an X input.
			want = [3]uint8{l0, l0, 0}
		}
		for pin := 0; pin < 3; pin++ {
			if n, v, ok := pickX(pin, want[pin]); ok {
				return n, v, objOK
			}
		}
	case stdcell.KindOai21: // y = !((a+b)·c)
		var want [3]uint8
		switch dPin {
		case 0:
			want = [3]uint8{0, l0, l1}
		case 1:
			want = [3]uint8{l0, 0, l1}
		default:
			want = [3]uint8{l1, l1, 0} // only one of a,b needs 1; pickX takes the first X
		}
		for pin := 0; pin < 3; pin++ {
			if n, v, ok := pickX(pin, want[pin]); ok {
				return n, v, objOK
			}
		}
	case stdcell.KindMux2: // y = s ? b : a; pins a=0 b=1 s=2
		switch dPin {
		case 0:
			if n, v, ok := pickX(2, l0); ok {
				return n, v, objOK
			}
		case 1:
			if n, v, ok := pickX(2, l1); ok {
				return n, v, objOK
			}
		default:
			// Effect on select: data inputs must differ; nudge an X data
			// input toward the complement of the other.
			other := p.s.g(ins[1])
			if other == lX {
				other = l1
			}
			if n, _, ok := pickX(0, 0); ok {
				return n, 1 - other, objOK
			}
			otherA := p.s.g(ins[0])
			if otherA == lX {
				otherA = l1
			}
			if n, _, ok := pickX(1, 0); ok {
				return n, 1 - otherA, objOK
			}
		}
	}
	return 0, 0, objFail
}

// backtrace walks an objective (net, val) backwards through X-valued nets
// to an unassigned source, choosing inputs by SCOAP cost: the hardest
// input when all inputs must be set, the easiest when any one suffices.
func (p *podem) backtrace(net netlist.NetID, val uint8) (netlist.NetID, uint8, bool) {
	for steps := 0; steps < len(p.v.N.Nets)+8; steps++ {
		if p.s.rec != nil {
			p.s.rec.touch(net)
			p.s.rec.touchDrive(net)
		}
		if p.v.SourceOf[net] >= 0 {
			if p.s.g(net) != lX {
				return 0, 0, false // objective reaches an already-assigned source
			}
			return net, val, true
		}
		d := p.v.N.Nets[net].Driver
		if d == netlist.NoCell || !p.v.Comb(d) {
			return 0, 0, false
		}
		nn, nv, ok := p.chooseInput(d, val)
		if !ok {
			return 0, 0, false
		}
		net, val = nn, nv
	}
	return 0, 0, false
}

// chooseInput picks the next (net, value) one gate back from an objective.
func (p *podem) chooseInput(ci netlist.CellID, v uint8) (netlist.NetID, uint8, bool) {
	if p.s.rec != nil {
		// Inverters, buffers, and XOR gates choose by structure and values
		// alone; every other kind compares SCOAP costs of its fanins.
		costly := true
		switch p.v.CellKind[ci] {
		case stdcell.KindInv, stdcell.KindBuf, stdcell.KindXor, stdcell.KindXnor:
			costly = false
		}
		for _, n := range p.v.fanin(ci) {
			if costly {
				p.s.rec.touchTA(n)
			} else {
				p.s.rec.touch(n)
			}
		}
	}
	cc := func(net netlist.NetID, bit uint8) int32 {
		if bit == l0 {
			return p.ta.CC0[net]
		}
		return p.ta.CC1[net]
	}
	in := p.v.fanin(ci)
	// pick selects the X input minimizing (or maximizing) cc(input, bit).
	pick := func(bit uint8, hardest bool) (netlist.NetID, uint8, bool) {
		var bestNet netlist.NetID = netlist.NoNet
		var bestCost int32
		for _, n := range in {
			if p.s.g(n) != lX {
				continue
			}
			cost := cc(n, bit)
			if bestNet == netlist.NoNet || (hardest && cost > bestCost) || (!hardest && cost < bestCost) {
				bestNet, bestCost = n, cost
			}
		}
		if bestNet == netlist.NoNet {
			return 0, 0, false
		}
		return bestNet, bit, true
	}
	switch p.v.CellKind[ci] {
	case stdcell.KindInv:
		return in[0], 1 - v, p.s.g(in[0]) == lX
	case stdcell.KindBuf:
		return in[0], v, p.s.g(in[0]) == lX
	case stdcell.KindAnd:
		if v == l1 {
			return pick(l1, true)
		}
		return pick(l0, false)
	case stdcell.KindNand:
		if v == l0 {
			return pick(l1, true)
		}
		return pick(l0, false)
	case stdcell.KindOr:
		if v == l0 {
			return pick(l0, true)
		}
		return pick(l1, false)
	case stdcell.KindNor:
		if v == l1 {
			return pick(l0, true)
		}
		return pick(l1, false)
	case stdcell.KindXor, stdcell.KindXnor:
		want := v
		if p.v.CellKind[ci] == stdcell.KindXnor {
			want = 1 - v
		}
		// If one input is known, the other is forced; otherwise guess 0
		// on the first X input.
		g0, g1 := p.s.g(in[0]), p.s.g(in[1])
		switch {
		case g0 == lX && g1 != lX:
			return in[0], want ^ g1, true
		case g1 == lX && g0 != lX:
			return in[1], want ^ g0, true
		case g0 == lX:
			return in[0], l0, true
		}
		return 0, 0, false
	case stdcell.KindAoi21: // y = !(a·b + c)
		if v == l0 {
			// ab = 1 or c = 1: take the cheaper option.
			costAB := addCost(p.ta.CC1[in[0]], p.ta.CC1[in[1]])
			if p.ta.CC1[in[2]] <= costAB && p.s.g(in[2]) == lX {
				return in[2], l1, true
			}
			if n, val, ok := pick2(p, in[0], in[1], l1, true); ok {
				return n, val, true
			}
			if p.s.g(in[2]) == lX {
				return in[2], l1, true
			}
			return 0, 0, false
		}
		// v == 1: need c = 0 and ab = 0.
		if p.s.g(in[2]) == lX {
			return in[2], l0, true
		}
		return pick2(p, in[0], in[1], l0, false)
	case stdcell.KindOai21: // y = !((a+b)·c)
		if v == l0 {
			if p.s.g(in[2]) == lX {
				return in[2], l1, true
			}
			return pick2(p, in[0], in[1], l1, false)
		}
		costAB := addCost(p.ta.CC0[in[0]], p.ta.CC0[in[1]])
		if p.ta.CC0[in[2]] <= costAB && p.s.g(in[2]) == lX {
			return in[2], l0, true
		}
		if n, val, ok := pick2(p, in[0], in[1], l0, true); ok {
			return n, val, true
		}
		if p.s.g(in[2]) == lX {
			return in[2], l0, true
		}
		return 0, 0, false
	case stdcell.KindMux2: // y = s ? b : a
		s := p.s.g(in[2])
		switch s {
		case l0:
			return in[0], v, p.s.g(in[0]) == lX
		case l1:
			return in[1], v, p.s.g(in[1]) == lX
		}
		// Select is free: pick the branch whose data value is cheaper.
		costA := addCost(p.ta.CC0[in[2]], cc(in[0], v))
		costB := addCost(p.ta.CC1[in[2]], cc(in[1], v))
		if costA <= costB {
			return in[2], l0, true
		}
		return in[2], l1, true
	}
	return 0, 0, false
}

// pick2 selects between exactly two candidate inputs for AOI/OAI legs.
func pick2(p *podem, a, b netlist.NetID, bit uint8, hardest bool) (netlist.NetID, uint8, bool) {
	cc := func(net netlist.NetID) int32 {
		if bit == l0 {
			return p.ta.CC0[net]
		}
		return p.ta.CC1[net]
	}
	aX := p.s.g(a) == lX
	bX := p.s.g(b) == lX
	switch {
	case aX && bX:
		if (hardest && cc(a) >= cc(b)) || (!hardest && cc(a) <= cc(b)) {
			return a, bit, true
		}
		return b, bit, true
	case aX:
		return a, bit, true
	case bX:
		return b, bit, true
	}
	return 0, 0, false
}

func addCost(a, b int32) int32 {
	if a >= testability.Inf || b >= testability.Inf {
		return testability.Inf
	}
	return a + b
}
