package atpg

import (
	"sync"

	"tpilayout/internal/netlist"
)

// simScratch bundles the per-shard propagation buffers of a FaultSim.
// The buffers are recycled through a sync.Pool so that a sweep running
// six flow levels (each with its own ATPG run and shard fan-out) reuses
// one working set instead of reallocating per level.
type simScratch struct {
	good    []uint64
	faulty  []uint64
	stamp   []int32
	queued  []bool
	buckets [][]netlist.CellID
}

var scratchPool = sync.Pool{New: func() any { return &simScratch{} }}

// getScratch returns a scratch sized for nets/cells/levels with clean
// stamps and queue flags (faulty values are guarded by stamps and need no
// clearing). Growth is monotone: a recycled scratch keeps its capacity.
func getScratch(nets, cells, levels int) *simScratch {
	s := scratchPool.Get().(*simScratch)
	s.faulty = growU64(s.faulty, nets)
	if cap(s.stamp) < nets {
		s.stamp = make([]int32, nets)
	} else {
		s.stamp = s.stamp[:nets]
		for i := range s.stamp {
			s.stamp[i] = 0
		}
	}
	if cap(s.queued) < cells {
		s.queued = make([]bool, cells)
	} else {
		s.queued = s.queued[:cells]
		for i := range s.queued {
			s.queued[i] = false
		}
	}
	if cap(s.buckets) < levels {
		s.buckets = make([][]netlist.CellID, levels)
	} else {
		s.buckets = s.buckets[:levels]
		for i := range s.buckets {
			s.buckets[i] = s.buckets[i][:0]
		}
	}
	return s
}

// ensureGood sizes the shared good plane; only the master shard uses it.
func (s *simScratch) ensureGood(nets int) {
	s.good = growU64(s.good, nets)
}

func putScratch(s *simScratch) { scratchPool.Put(s) }

// growU64 resizes a word buffer without clearing (callers fully overwrite
// or stamp-guard the contents).
func growU64(w []uint64, n int) []uint64 {
	if cap(w) < n {
		return make([]uint64, n)
	}
	return w[:n]
}

// wordPool recycles the per-class detection-word buffers of the drop and
// compaction passes.
var wordPool = sync.Pool{New: func() any { return new([]uint64) }}

func getWords(n int) []uint64 {
	p := wordPool.Get().(*[]uint64)
	*p = growU64(*p, n)
	return *p
}

func putWords(w []uint64) {
	if w == nil {
		return
	}
	wordPool.Put(&w)
}
