package atpg

import (
	"tpilayout/internal/fault"
	"tpilayout/internal/netlist"
)

// sim5 is an event-driven two-plane (good/faulty) three-valued simulator
// used by PODEM. The composite of the two planes gives the classic
// five-valued {0, 1, X, D, D̄} algebra. Both planes of a net live packed
// in one byte of P (good low nibble, faulty high nibble), so a gate
// evaluation is a handful of shifts plus one or two lookups in the
// precomputed per-(kind,arity) truth tables of evalTabs.
type sim5 struct {
	v *View
	P []uint8 // per-net packed planes: good | faulty<<4

	// Injected fault.
	fNet  netlist.NetID
	fCell netlist.CellID // load cell for branch faults, NoCell for stem
	fPin  int
	fSA   uint8
	// directObs is set for branch faults into a flip-flop's d pin: the
	// fault is observed directly by the capture, with no combinational
	// propagation needed.
	directObs bool

	// Level-bucketed event queue; nq counts pending events so run()
	// stops as soon as the queue drains instead of scanning every level,
	// and minLvl lets it start at the shallowest pending bucket instead
	// of walking empty headers from level 1.
	buckets [][]netlist.CellID
	queued  []bool
	nq      int
	minLvl  int

	// D-frontier candidates (cells that recently had a D input and an X
	// output). frontier() filters them.
	cand   []netlist.CellID
	inCand []bool

	// Baseline packed planes with all sources X (constants propagated).
	baseline []uint8

	// Scratch for X-path search.
	xpVisit []int32
	xpEpoch int32

	// Incremental count of sinks currently carrying a fault effect.
	sinkD   int
	dAtSink []bool

	// rec, when non-nil, collects the footprint of the current PODEM
	// search for the cross-level memo: every net whose value or structure
	// the simulation reads. Nil outside memo recording (one predictable
	// branch per event).
	rec *touchRec
}

// Composite five-valued views of a net.
const (
	c0 uint8 = iota
	c1
	cX
	cD  // good 1, faulty 0
	cDB // good 0, faulty 1
)

func newSim5(v *View) *sim5 {
	s := &sim5{
		v:       v,
		P:       make([]uint8, len(v.N.Nets)),
		buckets: make([][]netlist.CellID, v.MaxLevel+2),
		queued:  make([]bool, len(v.N.Cells)),
		inCand:  make([]bool, len(v.N.Cells)),
		xpVisit: make([]int32, len(v.N.Nets)),
		dAtSink: make([]bool, len(v.N.Nets)),
		fCell:   netlist.NoCell,
	}
	s.baseline = computeBaseline(v)
	return s
}

// g and f unpack one plane of a net.
func (s *sim5) g(net netlist.NetID) uint8 { return s.P[net] & 0xf }
func (s *sim5) f(net netlist.NetID) uint8 { return s.P[net] >> 4 }

// computeBaseline returns the settled all-X packed planes of a view:
// everything X except frozen nets, then one topological sweep so
// constant-driven logic settles. Shared by the simulator and the
// cross-level memo's per-net signatures.
func computeBaseline(v *View) []uint8 {
	b := make([]uint8, len(v.N.Nets))
	for i := range b {
		if cv := v.ConstVal[i]; cv >= 0 {
			b[i] = pk(uint8(cv), uint8(cv))
		} else {
			b[i] = pX
		}
	}
	var ins [16]uint8
	for _, ci := range v.Order {
		out := v.CellOut[ci]
		if v.ConstVal[out] >= 0 {
			continue
		}
		fanin := v.fanin(ci)
		for p, net := range fanin {
			ins[p] = b[net] & 0xf
		}
		g := eval3(v.CellKind[ci], ins[:len(fanin)])
		b[out] = pk(g, g)
	}
	return b
}

// setFault installs fault f and resets both planes to the baseline.
func (s *sim5) setFault(f fault.Fault) {
	if s.rec != nil {
		s.rec.touch(f.Net)
	}
	s.installFault(f)
	copy(s.P, s.baseline)
	s.resetFrontier()
	s.inject()
	s.run()
}

// restore reinstates a snapshotted search state for fault f: planes are
// copied back, the D-frontier candidate list is restored in its recorded
// order (inCand is its membership index by invariant), and the sink-effect
// count is recomputed from the planes. The event queue is empty at every
// snapshot point (each mutation drains it before control returns), so no
// queue state is carried.
func (s *sim5) restore(f fault.Fault, planes []uint8, cand []netlist.CellID) {
	if s.rec != nil {
		s.rec.touch(f.Net)
	}
	s.installFault(f)
	copy(s.P, planes)
	s.cand = append(s.cand[:0], cand...)
	for i := range s.inCand {
		s.inCand[i] = false
	}
	for _, ci := range cand {
		s.inCand[ci] = true
	}
	s.sinkD = 0
	for i := range s.dAtSink {
		s.dAtSink[i] = false
	}
	for _, net := range s.v.Sinks {
		if v := compT[s.P[net]]; v == cD || v == cDB {
			s.dAtSink[net] = true
			s.sinkD++
		}
	}
}

// retarget swaps the injected fault while keeping the current source
// assignments (and thus the good plane): the faulty plane is rebuilt from
// the good plane plus the new injection. This is the primitive behind
// dynamic compaction — extending one test cube to additional faults.
func (s *sim5) retarget(f fault.Fault) {
	s.installFault(f)
	for i, p := range s.P {
		g := p & 0xf
		s.P[i] = g | g<<4
	}
	s.resetFrontier()
	s.inject()
	s.run()
}

// installFault decodes the fault site into the injection fields.
func (s *sim5) installFault(f fault.Fault) {
	s.fNet = f.Net
	s.fSA = uint8(f.SA)
	s.fCell = netlist.NoCell
	s.fPin = -1
	s.directObs = false
	if f.Load != fault.StemLoad {
		ld := s.v.fanout(f.Net)[f.Load]
		s.fCell = ld.Cell
		s.fPin = ld.Pin
		if ld.Cell != netlist.NoCell && !s.v.Comb(ld.Cell) {
			c := &s.v.N.Cells[ld.Cell]
			s.directObs = c.Cell.Kind.IsSequential() && c.Cell.FindInput("d") == ld.Pin
		} else if ld.Cell == netlist.NoCell {
			s.directObs = true // branch straight into a primary output
		}
	}
}

func (s *sim5) resetFrontier() {
	s.cand = s.cand[:0]
	for i := range s.inCand {
		s.inCand[i] = false
	}
	s.sinkD = 0
	for i := range s.dAtSink {
		s.dAtSink[i] = false
	}
}

// inject seeds the faulty plane and the event queue for the current fault.
func (s *sim5) inject() {
	if s.fCell == netlist.NoCell {
		// Stem fault: the faulty plane holds the stuck value.
		s.P[s.fNet] = s.P[s.fNet]&0xf | s.fSA<<4
		s.updateSink(s.fNet)
		s.enqueueLoads(s.fNet)
	} else {
		s.enqueue(s.fCell)
	}
}

func (s *sim5) enqueue(ci netlist.CellID) {
	if !s.v.Comb(ci) || s.queued[ci] {
		return
	}
	s.queued[ci] = true
	s.nq++
	lvl := s.v.Level[ci]
	if int(lvl) < s.minLvl {
		s.minLvl = int(lvl)
	}
	s.buckets[lvl] = append(s.buckets[lvl], ci)
}

func (s *sim5) enqueueLoads(net netlist.NetID) {
	if s.rec != nil {
		s.rec.touchLoads(net)
	}
	// CombLoadCells is pre-filtered to live combinational cells, with the
	// cell level carried alongside, so the Comb check and the Level lookup
	// in enqueue are already paid for the whole net.
	for p, end := s.v.CombLoadIdx[net], s.v.CombLoadIdx[net+1]; p < end; p++ {
		ci := s.v.CombLoadCells[p]
		if !s.queued[ci] {
			s.queued[ci] = true
			s.nq++
			lvl := s.v.CombLoadLvl[p]
			if int(lvl) < s.minLvl {
				s.minLvl = int(lvl)
			}
			s.buckets[lvl] = append(s.buckets[lvl], ci)
		}
	}
}

// assign sets a source (or unassigns it with lX) and repropagates.
func (s *sim5) assign(net netlist.NetID, val uint8) {
	if s.rec != nil {
		s.rec.touch(net)
	}
	fv := val
	if s.fCell == netlist.NoCell && net == s.fNet {
		fv = s.fSA
	}
	s.P[net] = pk(val, fv)
	s.updateSink(net)
	s.enqueueLoads(net)
	s.run()
}

// updateSink maintains the incremental count of sinks carrying a fault
// effect after net's planes changed.
func (s *sim5) updateSink(net netlist.NetID) {
	if !s.v.IsSink[net] {
		return
	}
	v := compT[s.P[net]]
	d := v == cD || v == cDB
	if d != s.dAtSink[net] {
		s.dAtSink[net] = d
		if d {
			s.sinkD++
		} else {
			s.sinkD--
		}
	}
}

// run drains the event queue level by level. Each event gathers the
// packed pin bytes into two table indices (good nibbles and faulty
// nibbles, first pin in the highest position), evaluates the good plane
// with one lookup, and skips the faulty-plane lookup entirely when the
// indices coincide — the common case for events outside the fault cone,
// where the faulty plane just mirrors the good plane. The per-pin
// fault-effect test rides along as a table lookup on the same byte.
func (s *sim5) run() {
	P := s.P
	stem := s.fCell == netlist.NoCell
	start := s.minLvl
	if start < 1 {
		start = 1
	}
	s.minLvl = len(s.buckets)
	for lvl := start; lvl < len(s.buckets) && s.nq > 0; lvl++ {
		bucket := s.buckets[lvl]
		if len(bucket) == 0 {
			continue
		}
		for bi := 0; bi < len(bucket); bi++ {
			ci := bucket[bi]
			s.queued[ci] = false
			s.nq--
			out := s.v.CellOut[ci]
			if s.rec != nil {
				s.rec.touch(out)
				s.rec.touchEvt(out)
				if s.v.ConstVal[out] < 0 {
					s.rec.touchDrive(out)
					for _, net := range s.v.fanin(ci) {
						s.rec.touch(net)
					}
				}
			}
			var np uint8
			hasD := false
			isConst := false
			if cv := s.v.ConstVal[out]; cv >= 0 {
				np = pk(uint8(cv), uint8(cv))
				isConst = true
			} else if ci == s.fCell {
				np, hasD = s.evalFaultCell(ci)
			} else if li := s.v.CellLUT[ci]; li >= 0 {
				tab := &evalTabs[li]
				var gi, fi uint32
				for _, net := range s.v.fanin(ci) {
					pb := P[net]
					gi = gi<<2 | uint32(pb&3)
					fi = fi<<2 | uint32(pb>>4)
					hasD = hasD || dT[pb]
				}
				ng := tab[gi]
				nf := ng
				if gi != fi {
					nf = tab[fi]
				}
				np = pk(ng, nf)
			} else {
				np, hasD = s.evalGeneric(ci)
			}
			if stem && out == s.fNet && !isConst {
				np = np&0xf | s.fSA<<4
			}
			changed := np != P[out]
			P[out] = np
			if changed {
				s.updateSink(out)
			}
			// Track D-frontier candidates.
			if (np&0xf == lX || np>>4 == lX) && hasD && !s.inCand[ci] {
				s.inCand[ci] = true
				s.cand = append(s.cand, ci)
			}
			if changed {
				s.enqueueLoads(out)
			}
		}
		s.buckets[lvl] = bucket[:0]
	}
}

// evalFaultCell evaluates the branch-fault load cell, substituting the
// stuck value on the faulted pin. At most one cell per event cascade —
// off the hot path.
func (s *sim5) evalFaultCell(ci netlist.CellID) (uint8, bool) {
	var insG, insF [16]uint8
	hasD := false
	diff := false
	fanin := s.v.fanin(ci)
	for pin, net := range fanin {
		pb := s.P[net]
		g, f := pb&0xf, pb>>4
		if pin == s.fPin {
			f = s.fSA
		}
		insG[pin] = g
		insF[pin] = f
		if g != f {
			diff = true
			if g != lX && f != lX {
				hasD = true
			}
		}
	}
	kind := s.v.CellKind[ci]
	ng := eval3(kind, insG[:len(fanin)])
	nf := ng
	if diff {
		nf = eval3(kind, insF[:len(fanin)])
	}
	return pk(ng, nf), hasD
}

// evalGeneric evaluates a cell with no precomputed truth table (arities
// beyond the library's 4-input gates, if any ever appear).
func (s *sim5) evalGeneric(ci netlist.CellID) (uint8, bool) {
	var insG, insF [16]uint8
	hasD := false
	diff := false
	fanin := s.v.fanin(ci)
	for pin, net := range fanin {
		pb := s.P[net]
		g, f := pb&0xf, pb>>4
		insG[pin] = g
		insF[pin] = f
		if g != f {
			diff = true
			if g != lX && f != lX {
				hasD = true
			}
		}
	}
	kind := s.v.CellKind[ci]
	ng := eval3(kind, insG[:len(fanin)])
	nf := ng
	if diff {
		nf = eval3(kind, insF[:len(fanin)])
	}
	return pk(ng, nf), hasD
}

// comp returns the composite five-valued view of a net.
func (s *sim5) comp(net netlist.NetID) uint8 { return compT[s.P[net]] }

// pinComp is comp() for a specific cell input pin, honoring branch-fault
// substitution.
func (s *sim5) pinComp(ci netlist.CellID, pin int) uint8 {
	net := s.v.fanin(ci)[pin]
	pb := s.P[net]
	if ci == s.fCell && pin == s.fPin {
		pb = pb&0xf | s.fSA<<4
	}
	return compT[pb]
}

// hasDInput reports whether any input pin of ci carries a fault effect.
func (s *sim5) hasDInput(ci netlist.CellID) bool {
	for pin := range s.v.fanin(ci) {
		if v := s.pinComp(ci, pin); v == cD || v == cDB {
			return true
		}
	}
	return false
}

// detected reports whether the fault effect has reached any sink.
func (s *sim5) detected() bool {
	if s.directObs {
		return s.g(s.fNet) == 1-s.fSA
	}
	return s.sinkD > 0
}

// frontier returns the live D-frontier: combinational cells with a fault
// effect on an input and an X output, compacting the candidate list.
func (s *sim5) frontier() []netlist.CellID {
	out := s.cand[:0]
	for _, ci := range s.cand {
		if compT[s.P[s.v.CellOut[ci]]] == cX && s.hasDInput(ci) {
			out = append(out, ci)
		} else {
			s.inCand[ci] = false
		}
	}
	s.cand = out
	return out
}

// xpath reports whether an X-valued path exists from net to any sink.
func (s *sim5) xpathFrom(net netlist.NetID) bool {
	s.xpEpoch++
	return s.xpath(net)
}

func (s *sim5) xpath(net netlist.NetID) bool {
	if s.rec != nil {
		s.rec.touch(net)
	}
	if s.v.IsSink[net] {
		return true
	}
	if s.xpVisit[net] == s.xpEpoch {
		return false
	}
	s.xpVisit[net] = s.xpEpoch
	if s.rec != nil {
		s.rec.touchLoads(net)
	}
	// Only combinational loads can extend the path: a flip-flop d pin is
	// itself a sink net, handled by IsSink above.
	for _, ci := range s.v.combLoads(net) {
		out := s.v.CellOut[ci]
		if s.rec != nil {
			s.rec.touch(out)
		}
		if compT[s.P[out]] == cX && s.xpath(out) {
			return true
		}
	}
	return false
}
