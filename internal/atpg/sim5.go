package atpg

import (
	"tpilayout/internal/fault"
	"tpilayout/internal/netlist"
)

// sim5 is an event-driven two-plane (good/faulty) three-valued simulator
// used by PODEM. The composite of the two planes gives the classic
// five-valued {0, 1, X, D, D̄} algebra.
type sim5 struct {
	v    *View
	G, F []uint8 // per-net good / faulty plane values

	// Injected fault.
	fNet  netlist.NetID
	fCell netlist.CellID // load cell for branch faults, NoCell for stem
	fPin  int
	fSA   uint8
	// directObs is set for branch faults into a flip-flop's d pin: the
	// fault is observed directly by the capture, with no combinational
	// propagation needed.
	directObs bool

	// Level-bucketed event queue; nq counts pending events so run()
	// stops as soon as the queue drains instead of scanning every level.
	buckets [][]netlist.CellID
	queued  []bool
	nq      int

	// D-frontier candidates (cells that recently had a D input and an X
	// output). frontier() filters them.
	cand   []netlist.CellID
	inCand []bool

	// Baseline plane values with all sources X (constants propagated).
	baseline []uint8

	// Scratch for X-path search.
	xpVisit []int32
	xpEpoch int32

	// Incremental count of sinks currently carrying a fault effect.
	sinkD   int
	dAtSink []bool

	ins []uint8 // scratch input buffer
}

// Composite five-valued views of a net.
const (
	c0 uint8 = iota
	c1
	cX
	cD  // good 1, faulty 0
	cDB // good 0, faulty 1
)

func newSim5(v *View) *sim5 {
	s := &sim5{
		v:       v,
		G:       make([]uint8, len(v.N.Nets)),
		F:       make([]uint8, len(v.N.Nets)),
		buckets: make([][]netlist.CellID, v.MaxLevel+2),
		queued:  make([]bool, len(v.N.Cells)),
		inCand:  make([]bool, len(v.N.Cells)),
		xpVisit: make([]int32, len(v.N.Nets)),
		dAtSink: make([]bool, len(v.N.Nets)),
		fCell:   netlist.NoCell,
		ins:     make([]uint8, 8),
	}
	// Baseline: everything X except frozen nets, then one full sweep so
	// constant-driven logic settles.
	s.baseline = make([]uint8, len(v.N.Nets))
	for i := range s.baseline {
		if cv := v.ConstVal[i]; cv >= 0 {
			s.baseline[i] = uint8(cv)
		} else {
			s.baseline[i] = lX
		}
	}
	tmp := s.baseline
	for _, ci := range v.Order {
		out := v.CellOut[ci]
		if v.ConstVal[out] >= 0 {
			continue
		}
		tmp[out] = eval3(v.CellKind[ci], s.gather(ci, tmp, netlist.NoCell))
	}
	return s
}

// gather collects three-valued input values for cell ci from plane vals,
// substituting the injected stuck value on the faulty branch pin when
// faultCell == s.fCell == ci (pass NoCell to disable substitution).
func (s *sim5) gather(ci netlist.CellID, vals []uint8, faultCell netlist.CellID) []uint8 {
	ins := s.ins[:0]
	for pin, net := range s.v.fanin(ci) {
		val := vals[net]
		if faultCell != netlist.NoCell && s.fCell == faultCell && pin == s.fPin {
			val = s.fSA
		}
		ins = append(ins, val)
	}
	return ins
}

// setFault installs fault f and resets both planes to the baseline.
func (s *sim5) setFault(f fault.Fault) {
	s.installFault(f)
	copy(s.G, s.baseline)
	copy(s.F, s.baseline)
	s.resetFrontier()
	s.inject()
	s.run()
}

// retarget swaps the injected fault while keeping the current source
// assignments (and thus the good plane): the faulty plane is rebuilt from
// the good plane plus the new injection. This is the primitive behind
// dynamic compaction — extending one test cube to additional faults.
func (s *sim5) retarget(f fault.Fault) {
	s.installFault(f)
	copy(s.F, s.G)
	s.resetFrontier()
	s.inject()
	s.run()
}

// installFault decodes the fault site into the injection fields.
func (s *sim5) installFault(f fault.Fault) {
	s.fNet = f.Net
	s.fSA = uint8(f.SA)
	s.fCell = netlist.NoCell
	s.fPin = -1
	s.directObs = false
	if f.Load != fault.StemLoad {
		ld := s.v.fanout(f.Net)[f.Load]
		s.fCell = ld.Cell
		s.fPin = ld.Pin
		if ld.Cell != netlist.NoCell && !s.v.Comb(ld.Cell) {
			c := &s.v.N.Cells[ld.Cell]
			s.directObs = c.Cell.Kind.IsSequential() && c.Cell.FindInput("d") == ld.Pin
		} else if ld.Cell == netlist.NoCell {
			s.directObs = true // branch straight into a primary output
		}
	}
}

func (s *sim5) resetFrontier() {
	s.cand = s.cand[:0]
	for i := range s.inCand {
		s.inCand[i] = false
	}
	s.sinkD = 0
	for i := range s.dAtSink {
		s.dAtSink[i] = false
	}
}

// inject seeds the faulty plane and the event queue for the current fault.
func (s *sim5) inject() {
	if s.fCell == netlist.NoCell {
		// Stem fault: the faulty plane holds the stuck value.
		s.F[s.fNet] = s.fSA
		s.updateSink(s.fNet)
		s.enqueueLoads(s.fNet)
	} else {
		s.enqueue(s.fCell)
	}
}

func (s *sim5) enqueue(ci netlist.CellID) {
	if !s.v.Comb(ci) || s.queued[ci] {
		return
	}
	s.queued[ci] = true
	s.nq++
	lvl := s.v.Level[ci]
	s.buckets[lvl] = append(s.buckets[lvl], ci)
}

func (s *sim5) enqueueLoads(net netlist.NetID) {
	// CombLoadCells is pre-filtered to live combinational cells, so the
	// Comb check in enqueue is already paid for the whole net.
	for p, end := s.v.CombLoadIdx[net], s.v.CombLoadIdx[net+1]; p < end; p++ {
		ci := s.v.CombLoadCells[p]
		if !s.queued[ci] {
			s.queued[ci] = true
			s.nq++
			lvl := s.v.Level[ci]
			s.buckets[lvl] = append(s.buckets[lvl], ci)
		}
	}
}

// assign sets a source (or unassigns it with lX) and repropagates.
func (s *sim5) assign(net netlist.NetID, val uint8) {
	s.G[net] = val
	fv := val
	if s.fCell == netlist.NoCell && net == s.fNet {
		fv = s.fSA
	}
	s.F[net] = fv
	s.updateSink(net)
	s.enqueueLoads(net)
	s.run()
}

// updateSink maintains the incremental count of sinks carrying a fault
// effect after net's planes changed.
func (s *sim5) updateSink(net netlist.NetID) {
	if !s.v.IsSink[net] {
		return
	}
	v := s.comp(net)
	d := v == cD || v == cDB
	if d != s.dAtSink[net] {
		s.dAtSink[net] = d
		if d {
			s.sinkD++
		} else {
			s.sinkD--
		}
	}
}

// run drains the event queue level by level. The inner loop fuses what
// used to be three fanin walks — good-plane gather, faulty-plane gather,
// and the hasDInput D-frontier scan — into one pass, and skips the
// faulty-plane evaluation entirely when no input pin differs between the
// planes (the common case for events outside the fault cone, where the
// faulty plane just mirrors the good plane).
func (s *sim5) run() {
	var insG, insF [16]uint8
	stem := s.fCell == netlist.NoCell
	for lvl := 1; lvl < len(s.buckets) && s.nq > 0; lvl++ {
		bucket := s.buckets[lvl]
		if len(bucket) == 0 {
			continue
		}
		for bi := 0; bi < len(bucket); bi++ {
			ci := bucket[bi]
			s.queued[ci] = false
			s.nq--
			out := s.v.CellOut[ci]
			var ng, nf uint8
			hasD := false
			if cv := s.v.ConstVal[out]; cv >= 0 {
				ng, nf = uint8(cv), uint8(cv)
			} else {
				fanin := s.v.fanin(ci)
				faultCell := ci == s.fCell
				diff := false
				for pin, net := range fanin {
					g, f := s.G[net], s.F[net]
					if faultCell && pin == s.fPin {
						f = s.fSA
					}
					insG[pin] = g
					insF[pin] = f
					if g != f {
						diff = true
						if g != lX && f != lX {
							hasD = true
						}
					}
				}
				kind := s.v.CellKind[ci]
				ng = eval3(kind, insG[:len(fanin)])
				if diff {
					nf = eval3(kind, insF[:len(fanin)])
				} else {
					nf = ng
				}
				if stem && out == s.fNet {
					nf = s.fSA
				}
			}
			changed := ng != s.G[out] || nf != s.F[out]
			s.G[out], s.F[out] = ng, nf
			if changed {
				s.updateSink(out)
			}
			// Track D-frontier candidates.
			if (ng == lX || nf == lX) && hasD && !s.inCand[ci] {
				s.inCand[ci] = true
				s.cand = append(s.cand, ci)
			}
			if changed {
				s.enqueueLoads(out)
			}
		}
		s.buckets[lvl] = bucket[:0]
	}
}

// comp returns the composite five-valued view of a net.
func (s *sim5) comp(net netlist.NetID) uint8 {
	g, f := s.G[net], s.F[net]
	switch {
	case g == lX || f == lX:
		return cX
	case g == f:
		return g // c0 or c1
	case g == l1:
		return cD
	default:
		return cDB
	}
}

// pinComp is comp() for a specific cell input pin, honoring branch-fault
// substitution.
func (s *sim5) pinComp(ci netlist.CellID, pin int) uint8 {
	net := s.v.fanin(ci)[pin]
	g := s.G[net]
	f := s.F[net]
	if ci == s.fCell && pin == s.fPin {
		f = s.fSA
	}
	switch {
	case g == lX || f == lX:
		return cX
	case g == f:
		return g
	case g == l1:
		return cD
	default:
		return cDB
	}
}

// hasDInput reports whether any input pin of ci carries a fault effect.
func (s *sim5) hasDInput(ci netlist.CellID) bool {
	for pin := range s.v.fanin(ci) {
		if v := s.pinComp(ci, pin); v == cD || v == cDB {
			return true
		}
	}
	return false
}

// detected reports whether the fault effect has reached any sink.
func (s *sim5) detected() bool {
	if s.directObs {
		return s.G[s.fNet] == 1-s.fSA
	}
	return s.sinkD > 0
}

// frontier returns the live D-frontier: combinational cells with a fault
// effect on an input and an X output, compacting the candidate list.
func (s *sim5) frontier() []netlist.CellID {
	out := s.cand[:0]
	for _, ci := range s.cand {
		if s.comp(s.v.CellOut[ci]) == cX && s.hasDInput(ci) {
			out = append(out, ci)
		} else {
			s.inCand[ci] = false
		}
	}
	s.cand = out
	return out
}

// xpath reports whether an X-valued path exists from net to any sink.
func (s *sim5) xpathFrom(net netlist.NetID) bool {
	s.xpEpoch++
	return s.xpath(net)
}

func (s *sim5) xpath(net netlist.NetID) bool {
	if s.v.IsSink[net] {
		return true
	}
	if s.xpVisit[net] == s.xpEpoch {
		return false
	}
	s.xpVisit[net] = s.xpEpoch
	// Only combinational loads can extend the path: a flip-flop d pin is
	// itself a sink net, handled by IsSink above.
	for _, ci := range s.v.combLoads(net) {
		out := s.v.CellOut[ci]
		if s.comp(out) == cX && s.xpath(out) {
			return true
		}
	}
	return false
}
