package atpg

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tpilayout/internal/fault"
	"tpilayout/internal/supervise"
)

// TestParForShardPanicIsolated: a panic on one shard goroutine must not
// kill the process or deadlock the siblings; it resurfaces on the
// supervising goroutine as a *PanicError carrying the shard's stack.
func TestParForShardPanicIsolated(t *testing.T) {
	before := runtime.NumGoroutine()
	var pe *supervise.PanicError
	func() {
		defer func() { pe = supervise.AsPanicError(recover()) }()
		parFor(context.Background(), 1000, 4, func(shard, i int) {
			if i == 333 {
				panic("shard blew up")
			}
		})
	}()
	if pe == nil || pe.Value != "shard blew up" {
		t.Fatalf("recovered %+v, want the shard panic", pe)
	}
	if !strings.Contains(string(pe.Stack), "parFor") {
		t.Errorf("panic stack does not show the shard frame:\n%s", pe.Stack)
	}
	waitForGoroutines(t, before)
}

// TestParForCancelStopsEarly: cancellation between chunks must skip the
// remaining iterations on every shard.
func TestParForCancelStopsEarly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	const n = 1 << 20
	parFor(ctx, n, 4, func(shard, i int) {
		if ran.Add(1) == 100 {
			cancel()
		}
	})
	if got := ran.Load(); got >= n {
		t.Fatalf("cancelled parFor still ran all %d iterations", got)
	}
}

// TestRunContextCancelled: cancelling mid-ATPG must abort within one work
// unit and report the context's error.
func TestRunContextCancelled(t *testing.T) {
	n := randCircuit(t, 3, 24, 600)
	set := fault.NewUniverse(n)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the run must not do any real work
	_, err := RunContext(ctx, n, set, Options{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestDeadlineTruncatesRun: an already-expired deadline must degrade, not
// fail — the Result is valid, Truncated, and every class the run never
// reached is Aborted (lower FE, like an industrial abort).
func TestDeadlineTruncatesRun(t *testing.T) {
	n := randCircuit(t, 5, 16, 400)
	set := fault.NewUniverse(n)
	res, err := Run(n, set, Options{Deadline: time.Now().Add(-time.Second)})
	if err != nil {
		t.Fatalf("expired deadline must truncate, not fail: %v", err)
	}
	if !res.Truncated {
		t.Fatal("Result.Truncated not set")
	}
	counts := set.Counts()
	if counts[fault.Undetected] != 0 {
		t.Errorf("%d faults left Undetected; truncation must mark them Aborted", counts[fault.Undetected])
	}
	if counts[fault.Detected] != 0 {
		t.Errorf("a zero-budget run claims %d detections", counts[fault.Detected])
	}
	fc, fe := set.Coverage()
	if fc != 0 || fe != 0 {
		t.Errorf("zero-budget FC/FE = %.2f/%.2f, want 0/0", fc, fe)
	}
}

// TestDeadlineFarFutureMatchesUnbounded: a generous deadline must be
// invisible — bit-identical patterns and statuses to an unbounded run.
func TestDeadlineFarFutureMatchesUnbounded(t *testing.T) {
	n := randCircuit(t, 9, 12, 250)
	setA := fault.NewUniverse(n)
	resA, err := Run(n, setA, Options{})
	if err != nil {
		t.Fatal(err)
	}
	setB := fault.NewUniverse(n)
	resB, err := Run(n, setB, Options{Deadline: time.Now().Add(time.Hour)})
	if err != nil {
		t.Fatal(err)
	}
	if resB.Truncated {
		t.Fatal("far-future deadline truncated the run")
	}
	if len(resA.Patterns) != len(resB.Patterns) {
		t.Fatalf("pattern counts differ: %d vs %d", len(resA.Patterns), len(resB.Patterns))
	}
}

// waitForGoroutines lets pool goroutines drain, then asserts no leak.
func waitForGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
}
