// Package atpg implements combinational automatic test pattern generation
// for full-scan circuits: PODEM with SCOAP-guided backtracing, 64-way
// parallel-pattern single-fault-propagation fault simulation, dynamic
// fault dropping, and reverse-order static compaction. It produces the
// compact stuck-at pattern sets whose size the paper's Table 1 tracks
// before and after test point insertion.
package atpg

import (
	"tpilayout/internal/netlist"
	"tpilayout/internal/stdcell"
)

// View is the capture-mode combinational model of a full-scan netlist:
// primary inputs and flip-flop outputs are assignable sources, primary
// outputs and flip-flop data inputs are observed sinks, and test-mode
// control nets are frozen to their capture values.
type View struct {
	N *netlist.Netlist

	// Sources lists assignable nets (pattern bit i drives Sources[i]).
	Sources []netlist.NetID
	// SourceOf maps a net to its source index, or -1.
	SourceOf []int32

	// IsSink marks observed nets (POs and flip-flop d inputs).
	IsSink []bool
	// Sinks lists them.
	Sinks []netlist.NetID

	// ConstVal freezes nets: -1 free, 0/1 forced (constants and
	// capture-mode constraints such as scan-enable = 0).
	ConstVal []int8

	// Order is the levelized combinational cell order; Level the depth
	// per cell (−1 for non-combinational).
	Order []netlist.CellID
	Level []int

	// CSR is the flat netlist adjacency, captured at view construction.
	CSR *netlist.CSR

	// CombLoadIdx/CombLoadCells are a per-net CSR of the combinational
	// load cells only — the set event propagation actually enqueues — so
	// the hot enqueueLoads loops scan a dense int32 array instead of
	// filtering the full Load list (POs, flip-flops) on every event.
	// CombLoadLvl carries each load cell's level alongside, sparing the
	// enqueue loop one random access into Level per load.
	CombLoadIdx   []int32
	CombLoadCells []netlist.CellID
	CombLoadLvl   []int32

	// CellLUT indexes each combinational cell's three-valued truth table
	// in evalTabs (-1 = evaluate generically via eval3). A table is the
	// cell function enumerated over all 2-bit-packed input combinations,
	// so the event loop evaluates a gate with one load instead of a kind
	// switch and a pin loop.
	CellLUT []int16

	// CellKind and CellOut are flat per-CellID copies of the instance
	// kind and output net, so hot simulation loops touch two dense
	// arrays instead of the Instance structs.
	CellKind []stdcell.Kind
	CellOut  []netlist.NetID

	// MaxLevel is the deepest cell level.
	MaxLevel int
}

// fanout returns the loads of a net from the flat adjacency.
func (v *View) fanout(net netlist.NetID) []netlist.Load { return v.CSR.Fanout(net) }

// combLoads returns the combinational load cells of a net.
func (v *View) combLoads(net netlist.NetID) []netlist.CellID {
	return v.CombLoadCells[v.CombLoadIdx[net]:v.CombLoadIdx[net+1]]
}

// fanin returns the input nets of a cell, aligned with Instance.Ins.
func (v *View) fanin(ci netlist.CellID) []netlist.NetID { return v.CSR.Fanin(ci) }

// NewView builds the capture-mode view. constraints freezes nets to
// constants for the whole ATPG run.
func NewView(n *netlist.Netlist, constraints map[netlist.NetID]int8) (*View, error) {
	lv, err := n.Levelize()
	if err != nil {
		return nil, err
	}
	v := &View{
		N:        n,
		SourceOf: make([]int32, len(n.Nets)),
		IsSink:   make([]bool, len(n.Nets)),
		ConstVal: make([]int8, len(n.Nets)),
		Order:    lv.Order,
		Level:    lv.CellLevel,
		CSR:      n.CSR(),
		CellKind: make([]stdcell.Kind, len(n.Cells)),
		CellOut:  make([]netlist.NetID, len(n.Cells)),
		MaxLevel: lv.MaxLevel,
	}
	for i := range n.Cells {
		v.CellKind[i] = n.Cells[i].Cell.Kind
		v.CellOut[i] = n.Cells[i].Out
	}
	v.CombLoadIdx = make([]int32, len(n.Nets)+1)
	for id := range n.Nets {
		for _, ld := range v.CSR.Fanout(netlist.NetID(id)) {
			if ld.Cell != netlist.NoCell && lv.CellLevel[ld.Cell] >= 0 {
				v.CombLoadIdx[id+1]++
			}
		}
	}
	for i := 1; i <= len(n.Nets); i++ {
		v.CombLoadIdx[i] += v.CombLoadIdx[i-1]
	}
	v.CombLoadCells = make([]netlist.CellID, v.CombLoadIdx[len(n.Nets)])
	v.CombLoadLvl = make([]int32, len(v.CombLoadCells))
	cursor := append([]int32(nil), v.CombLoadIdx[:len(n.Nets)]...)
	for id := range n.Nets {
		for _, ld := range v.CSR.Fanout(netlist.NetID(id)) {
			if ld.Cell != netlist.NoCell && lv.CellLevel[ld.Cell] >= 0 {
				v.CombLoadCells[cursor[id]] = ld.Cell
				v.CombLoadLvl[cursor[id]] = int32(lv.CellLevel[ld.Cell])
				cursor[id]++
			}
		}
	}
	v.CellLUT = make([]int16, len(n.Cells))
	for i := range n.Cells {
		v.CellLUT[i] = -1
		if v.Comb(netlist.CellID(i)) {
			v.CellLUT[i] = lutFor(v.CellKind[i], len(v.fanin(netlist.CellID(i))))
		}
	}
	for i := range v.SourceOf {
		v.SourceOf[i] = -1
		v.ConstVal[i] = -1
	}
	for i := range n.Nets {
		if c := n.Nets[i].Const; c >= 0 {
			v.ConstVal[i] = c
		}
	}
	for net, val := range constraints {
		v.ConstVal[net] = val
	}
	addSource := func(net netlist.NetID) {
		if v.ConstVal[net] >= 0 || v.SourceOf[net] >= 0 {
			return
		}
		v.SourceOf[net] = int32(len(v.Sources))
		v.Sources = append(v.Sources, net)
	}
	for _, pi := range n.PIs {
		if !pi.Clock {
			addSource(pi.Net)
		}
	}
	for _, ff := range n.FlipFlops() {
		addSource(n.Cells[ff].Out)
	}
	addSink := func(net netlist.NetID) {
		if !v.IsSink[net] {
			v.IsSink[net] = true
			v.Sinks = append(v.Sinks, net)
		}
	}
	for _, po := range n.POs {
		if po.Net != netlist.NoNet {
			addSink(po.Net)
		}
	}
	for _, ff := range n.FlipFlops() {
		c := &n.Cells[ff]
		// In capture mode the flop loads its functional d input (scan
		// flops have se = 0). Only d is observed.
		if di := c.Cell.FindInput("d"); di >= 0 {
			addSink(c.Ins[di])
		}
	}
	return v, nil
}

// Comb reports whether cell id is a live combinational cell.
func (v *View) Comb(id netlist.CellID) bool { return v.Level[id] >= 0 }

// Three-valued logic values used by the PODEM planes.
const (
	l0 uint8 = 0
	l1 uint8 = 1
	lX uint8 = 2
)

// eval3 evaluates a cell kind over three-valued inputs.
func eval3(kind stdcell.Kind, in []uint8) uint8 {
	switch kind {
	case stdcell.KindInv:
		return not3(in[0])
	case stdcell.KindBuf:
		return in[0]
	case stdcell.KindAnd, stdcell.KindNand:
		r := and3n(in)
		if kind == stdcell.KindNand {
			return not3(r)
		}
		return r
	case stdcell.KindOr, stdcell.KindNor:
		r := or3n(in)
		if kind == stdcell.KindNor {
			return not3(r)
		}
		return r
	case stdcell.KindXor:
		return xor3(in[0], in[1])
	case stdcell.KindXnor:
		return not3(xor3(in[0], in[1]))
	case stdcell.KindAoi21:
		return not3(or3(and3(in[0], in[1]), in[2]))
	case stdcell.KindOai21:
		return not3(and3(or3(in[0], in[1]), in[2]))
	case stdcell.KindMux2:
		a, b, s := in[0], in[1], in[2]
		switch s {
		case l0:
			return a
		case l1:
			return b
		default:
			if a == b && a != lX {
				return a
			}
			return lX
		}
	}
	panic("atpg: eval3 on non-logic cell")
}

// Branch-free truth tables for the three-valued operators (indexed by
// l0/l1/lX); measurably faster than the equivalent comparisons inside
// the PODEM event loop.
var (
	not3T = [3]uint8{l1, l0, lX}
	and3T = [3][3]uint8{
		{l0, l0, l0},
		{l0, l1, lX},
		{l0, lX, lX},
	}
	or3T = [3][3]uint8{
		{l0, l1, lX},
		{l1, l1, l1},
		{lX, l1, lX},
	}
	xor3T = [3][3]uint8{
		{l0, l1, lX},
		{l1, l0, lX},
		{lX, lX, lX},
	}
)

func not3(a uint8) uint8 { return not3T[a] }

func and3(a, b uint8) uint8 { return and3T[a][b] }

func xor3(a, b uint8) uint8 { return xor3T[a][b] }

func or3(a, b uint8) uint8 { return or3T[a][b] }

func and3n(in []uint8) uint8 {
	r := l1
	for _, x := range in {
		r = and3(r, x)
		if r == l0 {
			return l0
		}
	}
	return r
}

func or3n(in []uint8) uint8 {
	r := l0
	for _, x := range in {
		r = or3(r, x)
		if r == l1 {
			return l1
		}
	}
	return r
}

// evalTabs holds one 256-entry truth table per (kind, fanin-count) pair
// used by the library: entry i is eval3 of the cell over the inputs
// packed two bits per pin into i (first pin in the highest-order
// position). With at most four inputs the packed index never exceeds
// 0xAA, so a fixed 256-byte table covers every arity uniformly and the
// whole registry stays a few kilobytes — permanently L1-resident.
var evalTabs [][256]uint8

// lutKey maps a (kind, nin) pair to its evalTabs index, or -1.
var lutKey = map[int32]int16{}

func init() {
	combos := []struct {
		kind stdcell.Kind
		nins []int
	}{
		{stdcell.KindInv, []int{1}},
		{stdcell.KindBuf, []int{1}},
		{stdcell.KindAnd, []int{2, 3, 4}},
		{stdcell.KindNand, []int{2, 3, 4}},
		{stdcell.KindOr, []int{2, 3, 4}},
		{stdcell.KindNor, []int{2, 3, 4}},
		{stdcell.KindXor, []int{2}},
		{stdcell.KindXnor, []int{2}},
		{stdcell.KindAoi21, []int{3}},
		{stdcell.KindOai21, []int{3}},
		{stdcell.KindMux2, []int{3}},
	}
	var in [4]uint8
	for _, c := range combos {
		for _, nin := range c.nins {
			var tab [256]uint8
			total := 1
			for i := 0; i < nin; i++ {
				total *= 4
			}
			for idx := 0; idx < total; idx++ {
				ok := true
				for p := 0; p < nin; p++ {
					v := uint8(idx>>(2*(nin-1-p))) & 3
					if v > lX {
						ok = false
						break
					}
					in[p] = v
				}
				if !ok {
					continue
				}
				tab[idx] = eval3(c.kind, in[:nin])
			}
			lutKey[int32(c.kind)<<8|int32(nin)] = int16(len(evalTabs))
			evalTabs = append(evalTabs, tab)
		}
	}
}

// lutFor returns the evalTabs index for a cell shape, or -1 when the
// shape has no precomputed table (the event loop then falls back to
// eval3).
func lutFor(kind stdcell.Kind, nin int) int16 {
	if id, ok := lutKey[int32(kind)<<8|int32(nin)]; ok {
		return id
	}
	return -1
}

// The simulator packs both planes of a net into one byte — good value in
// the low nibble, faulty value in the high nibble — so the event loop
// fetches a pin's full state with a single load and classifies it with
// 256-entry lookup tables.
const pX = lX | lX<<4 // both planes X

// pk packs a (good, faulty) pair.
func pk(g, f uint8) uint8 { return g | f<<4 }

var (
	// compT maps a packed byte to the composite five-valued code.
	compT [256]uint8
	// dT marks packed bytes carrying a fault effect (both planes bound
	// and different — the D/D̄ detector of the event loop).
	dT [256]bool
)

func init() {
	for b := 0; b < 256; b++ {
		g, f := uint8(b)&0xf, uint8(b)>>4
		if g > lX || f > lX {
			continue
		}
		switch {
		case g == lX || f == lX:
			compT[b] = cX
		case g == f:
			compT[b] = g
		case g == l1:
			compT[b] = cD
		default:
			compT[b] = cDB
		}
		dT[b] = g != f && g != lX && f != lX
	}
}
