// Package chaos is a deterministic fault-injection harness for tests.
//
// An Injector is seeded and configured with a plan: named injection
// points, each with a firing probability and an optional limit on how
// many times it fires. Code under test consults the injector at its
// points (directly via Should/Fail, or through adapters like StageHook
// and the journal hook); the injector decides pseudo-randomly but
// REPRODUCIBLY whether to inject the fault.
//
// Determinism under concurrency: the decision for the nth occurrence of
// a point is a pure hash of (seed, point, n). Goroutine interleaving
// may change WHICH caller observes the nth occurrence, but the set of
// fired occurrences per point — and therefore the number and kind of
// injected faults — is identical for a given seed and call counts.
// That is what lets an invariant suite sweep hundreds of seeds and
// bisect any failure back to one reproducible schedule.
package chaos

import (
	"fmt"
	"sync"
)

// Fault is the error injected at a point. Tests use errors.As to prove
// an observed failure came from the harness rather than real code.
type Fault struct {
	Point string // injection point name
	N     int64  // 1-based occurrence index at which it fired
}

func (f *Fault) Error() string {
	return fmt.Sprintf("chaos: injected fault at %s (occurrence %d)", f.Point, f.N)
}

// Plan configures one injection point.
type Plan struct {
	// Probability in [0,1] that any given occurrence fires.
	Probability float64
	// Limit caps the number of fired occurrences; 0 means unlimited.
	Limit int64
}

// Injector decides, deterministically per seed, which occurrences of
// which points inject faults. Safe for concurrent use. A nil Injector
// never fires.
type Injector struct {
	seed uint64

	mu    sync.Mutex
	plans map[string]Plan
	seen  map[string]int64 // occurrences observed per point
	fired map[string]int64 // occurrences fired per point
}

// New returns an Injector for seed with no active points.
func New(seed int64) *Injector {
	return &Injector{
		seed:  uint64(seed),
		plans: make(map[string]Plan),
		seen:  make(map[string]int64),
		fired: make(map[string]int64),
	}
}

// Arm configures point with plan, replacing any previous plan.
func (in *Injector) Arm(point string, plan Plan) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.plans[point] = plan
	return in
}

// Disarm removes point from the plan; its counters are preserved.
func (in *Injector) Disarm(point string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.plans, point)
}

// Should records one occurrence of point and reports whether it fires.
func (in *Injector) Should(point string) bool {
	fired, _ := in.observe(point)
	return fired
}

// Fail records one occurrence of point and returns a *Fault if it
// fires, else nil — the shape journal.Options.Hook wants.
func (in *Injector) Fail(point string) error {
	if fired, n := in.observe(point); fired {
		return &Fault{Point: point, N: n}
	}
	return nil
}

// observe bumps the occurrence counter and evaluates the plan.
func (in *Injector) observe(point string) (bool, int64) {
	if in == nil {
		return false, 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.seen[point]++
	n := in.seen[point]
	plan, ok := in.plans[point]
	if !ok || plan.Probability <= 0 {
		return false, n
	}
	if plan.Limit > 0 && in.fired[point] >= plan.Limit {
		return false, n
	}
	// Pure function of (seed, point, n): the fired SET is independent of
	// goroutine interleaving.
	if plan.Probability < 1 && roll(in.seed, point, n) >= plan.Probability {
		return false, n
	}
	in.fired[point]++
	return true, n
}

// Seen returns how many occurrences of point have been observed.
func (in *Injector) Seen(point string) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.seen[point]
}

// Fired returns how many occurrences of point have injected a fault.
func (in *Injector) Fired(point string) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[point]
}

// TotalFired sums fired occurrences across all points.
func (in *Injector) TotalFired() int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var t int64
	for _, n := range in.fired {
		t += n
	}
	return t
}

// StageHook adapts the injector to flow.Config.StageHook: when the
// point "panic.<stage>" fires, the hook panics — exercising the flow's
// panic isolation exactly as a real stage bug would.
func (in *Injector) StageHook() func(stage string, tpPercent float64) {
	return func(stage string, tpPercent float64) {
		point := "panic." + stage
		if in.Should(point) {
			panic(&Fault{Point: point, N: in.Fired(point)})
		}
	}
}

// JournalHook adapts the injector to journal.Options.Hook shape: the
// op string becomes the point "journal.<op>".
func (in *Injector) JournalHook() func(op string) error {
	return func(op string) error {
		return in.Fail("journal." + op)
	}
}

// roll maps (seed, point, n) to a uniform float64 in [0,1) using an
// FNV-1a/splitmix-style mixer — stable across runs and platforms.
func roll(seed uint64, point string, n int64) float64 {
	h := seed ^ 0x9E3779B97F4A7C15
	for i := 0; i < len(point); i++ {
		h ^= uint64(point[i])
		h *= 0x100000001B3
	}
	h ^= uint64(n)
	// splitmix64 finalizer
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return float64(h>>11) / float64(1<<53)
}
