package chaos

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
)

// TestDeterministicAcrossInterleavings: for a fixed seed and occurrence
// count, the SET of fired occurrence indices is identical whether the
// point is hit serially or from many goroutines.
func TestDeterministicAcrossInterleavings(t *testing.T) {
	const seed, total = 42, 2000
	plan := Plan{Probability: 0.25}

	firedSet := func(parallel bool) []int64 {
		in := New(seed).Arm("p", plan)
		var mu sync.Mutex
		var fired []int64
		hit := func() {
			if f := in.Fail("p"); f != nil {
				var fault *Fault
				if !errors.As(f, &fault) {
					t.Errorf("Fail returned %T, want *Fault", f)
					return
				}
				mu.Lock()
				fired = append(fired, fault.N)
				mu.Unlock()
			}
		}
		if parallel {
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < total/8; i++ {
						hit()
					}
				}()
			}
			wg.Wait()
		} else {
			for i := 0; i < total; i++ {
				hit()
			}
		}
		sort.Slice(fired, func(i, k int) bool { return fired[i] < fired[k] })
		return fired
	}

	serial := firedSet(false)
	concurrent := firedSet(true)
	if fmt.Sprint(serial) != fmt.Sprint(concurrent) {
		t.Fatalf("fired sets differ:\nserial     %v\nconcurrent %v", serial, concurrent)
	}
	if len(serial) == 0 || len(serial) == total {
		t.Fatalf("degenerate firing: %d of %d", len(serial), total)
	}
}

// TestSeedsDiffer: different seeds produce different fired sets.
func TestSeedsDiffer(t *testing.T) {
	count := func(seed int64) int64 {
		in := New(seed).Arm("p", Plan{Probability: 0.5})
		for i := 0; i < 500; i++ {
			in.Should("p")
		}
		return in.Fired("p")
	}
	a, b := count(1), count(2)
	if a == b {
		// Counts could coincide; compare the actual pattern.
		pat := func(seed int64) string {
			in := New(seed).Arm("p", Plan{Probability: 0.5})
			s := make([]byte, 500)
			for i := range s {
				if in.Should("p") {
					s[i] = '1'
				} else {
					s[i] = '0'
				}
			}
			return string(s)
		}
		if pat(1) == pat(2) {
			t.Fatal("seeds 1 and 2 produced identical firing patterns")
		}
	}
}

// TestProbabilityRoughlyHonored: rate lands near the plan's probability.
func TestProbabilityRoughlyHonored(t *testing.T) {
	const total = 10000
	in := New(7).Arm("p", Plan{Probability: 0.3})
	for i := 0; i < total; i++ {
		in.Should("p")
	}
	rate := float64(in.Fired("p")) / total
	if rate < 0.25 || rate > 0.35 {
		t.Fatalf("fired rate = %.3f, want ≈0.30", rate)
	}
}

// TestLimit: a point stops firing at its limit, keeps counting.
func TestLimit(t *testing.T) {
	in := New(3).Arm("p", Plan{Probability: 1, Limit: 2})
	var fired int
	for i := 0; i < 10; i++ {
		if in.Should("p") {
			fired++
		}
	}
	if fired != 2 || in.Fired("p") != 2 || in.Seen("p") != 10 {
		t.Fatalf("fired=%d Fired=%d Seen=%d, want 2/2/10", fired, in.Fired("p"), in.Seen("p"))
	}
}

// TestUnarmedAndNil: unknown points and nil injectors never fire.
func TestUnarmedAndNil(t *testing.T) {
	in := New(1)
	if in.Should("ghost") || in.Fail("ghost") != nil {
		t.Fatal("unarmed point fired")
	}
	if in.Seen("ghost") != 2 {
		t.Fatalf("Seen = %d, want 2 (observed even when unarmed)", in.Seen("ghost"))
	}
	var nilIn *Injector
	if nilIn.Should("x") || nilIn.Fail("x") != nil || nilIn.Seen("x") != 0 || nilIn.TotalFired() != 0 {
		t.Fatal("nil injector misbehaved")
	}
}

// TestDisarm: disarmed points stop firing; counters survive.
func TestDisarm(t *testing.T) {
	in := New(5).Arm("p", Plan{Probability: 1})
	in.Should("p")
	in.Disarm("p")
	if in.Should("p") {
		t.Fatal("disarmed point fired")
	}
	if in.Fired("p") != 1 || in.Seen("p") != 2 {
		t.Fatalf("counters after disarm: fired=%d seen=%d", in.Fired("p"), in.Seen("p"))
	}
}

// TestStageHookPanics: the flow adapter panics with a *Fault when its
// point fires, and stays silent otherwise.
func TestStageHookPanics(t *testing.T) {
	in := New(9).Arm("panic.atpg", Plan{Probability: 1, Limit: 1})
	hook := in.StageHook()

	hook("place", 2.0) // unarmed stage: no panic

	panicked := func() (p any) {
		defer func() { p = recover() }()
		hook("atpg", 2.0)
		return nil
	}()
	if panicked == nil {
		t.Fatal("armed stage hook did not panic")
	}
	if _, ok := panicked.(*Fault); !ok {
		t.Fatalf("panic value = %T, want *Fault", panicked)
	}
	// Limit reached: subsequent calls pass.
	hook("atpg", 5.0)
}

// TestJournalHook: op names map to journal.<op> points.
func TestJournalHook(t *testing.T) {
	in := New(11).Arm("journal.fsync", Plan{Probability: 1, Limit: 1})
	hook := in.JournalHook()
	if err := hook("append"); err != nil {
		t.Fatalf("unarmed op errored: %v", err)
	}
	err := hook("fsync")
	var fault *Fault
	if !errors.As(err, &fault) || fault.Point != "journal.fsync" {
		t.Fatalf("armed op = %v, want *Fault at journal.fsync", err)
	}
	if err := hook("fsync"); err != nil {
		t.Fatalf("limit not honored: %v", err)
	}
	if in.TotalFired() != 1 {
		t.Fatalf("TotalFired = %d, want 1", in.TotalFired())
	}
}
