package circuitgen

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"tpilayout/internal/netlist"
	"tpilayout/internal/stdcell"
)

// WriteBench writes the netlist in ISCAS'89 ".bench" style:
//
//	INPUT(a)
//	OUTPUT(y)
//	n1 = NAND(a, b)
//	q  = DFF(n1)        # domain=clk
//
// Clock pins are implicit, as in the original format; the clock domain of
// each flip-flop is recorded in a trailing comment so a round-trip through
// ReadBench preserves domains.
func WriteBench(w io.Writer, n *netlist.Netlist) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s: %d cells, %d FFs, %d nets\n",
		n.Name, n.NumLiveCells(), n.NumFlipFlops(), len(n.Nets))
	for _, d := range n.Domains {
		fmt.Fprintf(bw, "# CLOCK %s %g\n", d.Name, d.PeriodPS)
	}
	for _, p := range n.PIs {
		if !p.Clock {
			fmt.Fprintf(bw, "INPUT(%s)\n", p.Name)
		}
	}
	for _, p := range n.POs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", netName(n, p.Net))
	}
	for ci := range n.Cells {
		c := &n.Cells[ci]
		if c.Dead || c.Cell.Kind.IsPhysicalOnly() {
			continue
		}
		var args []string
		for pin, in := range c.Ins {
			if c.Cell.Inputs[pin].Clock {
				continue
			}
			args = append(args, netName(n, in))
		}
		op := strings.ToUpper(c.Cell.Kind.String())
		if c.Cell.Kind == stdcell.KindBuf {
			op = "BUFF" // ISCAS spelling
		}
		line := fmt.Sprintf("%s = %s(%s)", netName(n, c.Out), op, strings.Join(args, ", "))
		if c.Cell.Kind.IsSequential() {
			line += fmt.Sprintf(" # domain=%s", n.Domains[c.Domain].Name)
		}
		fmt.Fprintln(bw, line)
	}
	return bw.Flush()
}

func netName(n *netlist.Netlist, id netlist.NetID) string {
	if id == netlist.NoNet {
		return "-"
	}
	return n.Nets[id].Name
}

// validName reports whether s can serve as a net or domain name in a
// .bench file. Whitespace is rejected because WriteBench could not emit
// such a name unambiguously (names are outer-trimmed on parse, and domain
// names are space-separated in the # CLOCK header).
func validName(s string) bool {
	return s != "" && !strings.ContainsAny(s, " \t")
}

// ReadBench parses a ".bench" netlist written by WriteBench (or a plain
// ISCAS'89 file) and maps every operator to the weakest library cell of
// the matching kind. Plain ISCAS files have no clock information; a single
// domain "clk" with the given default period is created on demand.
//
// ReadBench never panics on malformed input: structural problems
// (duplicate or missing definitions, multiply-driven nets, combinational
// cycles, unknown operators) are reported as errors.
func ReadBench(r io.Reader, name string, lib *stdcell.Library, defaultPeriodPS float64) (*netlist.Netlist, error) {
	n := netlist.New(name, lib)
	nets := make(map[string]netlist.NetID)
	domains := make(map[string]int)
	clkNets := make(map[string]netlist.NetID)

	getNet := func(s string) netlist.NetID {
		if id, ok := nets[s]; ok {
			return id
		}
		id := n.AddNet(s)
		nets[s] = id
		return id
	}
	getDomain := func(dname string, period float64) int {
		if d, ok := domains[dname]; ok {
			return d
		}
		clk, dom := n.AddClockPI(dname, period)
		domains[dname] = dom
		clkNets[dname] = clk
		return dom
	}

	type ffLine struct {
		out, in string
		domain  string
	}
	type gateLine struct {
		out, op string
		ins     []string
	}
	var ffs []ffLine
	var gates []gateLine
	var outputs []string

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		comment := ""
		if i := strings.Index(line, "#"); i >= 0 {
			comment = strings.TrimSpace(line[i+1:])
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			if strings.HasPrefix(comment, "CLOCK ") {
				fields := strings.Fields(comment)
				if len(fields) == 3 {
					var period float64
					fmt.Sscanf(fields[2], "%g", &period)
					getDomain(fields[1], period)
				}
			}
			continue
		}
		switch {
		case strings.HasPrefix(line, "INPUT(") && strings.HasSuffix(line, ")"):
			pin := strings.TrimSpace(line[len("INPUT(") : len(line)-1])
			if !validName(pin) {
				return nil, fmt.Errorf("bench line %d: bad input name %q", lineNo, pin)
			}
			if _, dup := nets[pin]; dup {
				return nil, fmt.Errorf("bench line %d: INPUT(%s) already defined", lineNo, pin)
			}
			nets[pin] = n.AddPI(pin)
		case strings.HasPrefix(line, "OUTPUT(") && strings.HasSuffix(line, ")"):
			o := strings.TrimSpace(line[len("OUTPUT(") : len(line)-1])
			if !validName(o) {
				return nil, fmt.Errorf("bench line %d: bad output name %q", lineNo, o)
			}
			outputs = append(outputs, o)
		default:
			eq := strings.Index(line, "=")
			lp := strings.Index(line, "(")
			rp := strings.LastIndex(line, ")")
			if eq < 0 || lp < eq || rp < lp {
				return nil, fmt.Errorf("bench line %d: cannot parse %q", lineNo, line)
			}
			out := strings.TrimSpace(line[:eq])
			if !validName(out) {
				return nil, fmt.Errorf("bench line %d: bad net name %q", lineNo, out)
			}
			op := strings.ToUpper(strings.TrimSpace(line[eq+1 : lp]))
			var ins []string
			for _, a := range strings.Split(line[lp+1:rp], ",") {
				if a = strings.TrimSpace(a); a != "" {
					if !validName(a) {
						return nil, fmt.Errorf("bench line %d: bad net name %q", lineNo, a)
					}
					ins = append(ins, a)
				}
			}
			if op == "DFF" || op == "SDFF" {
				if len(ins) == 0 {
					return nil, fmt.Errorf("bench line %d: %s with no data input", lineNo, op)
				}
				dom := "clk"
				if strings.HasPrefix(comment, "domain=") {
					dom = comment[len("domain="):]
				}
				if !validName(dom) {
					return nil, fmt.Errorf("bench line %d: bad domain name %q", lineNo, dom)
				}
				ffs = append(ffs, ffLine{out: out, in: ins[0], domain: dom})
			} else {
				gates = append(gates, gateLine{out: out, op: op, ins: ins})
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	opKind := map[string]stdcell.Kind{
		"INV": stdcell.KindInv, "NOT": stdcell.KindInv,
		"BUF": stdcell.KindBuf, "BUFF": stdcell.KindBuf,
		"NAND": stdcell.KindNand, "NOR": stdcell.KindNor,
		"AND": stdcell.KindAnd, "OR": stdcell.KindOr,
		"XOR": stdcell.KindXor, "XNOR": stdcell.KindXnor,
		"AOI21": stdcell.KindAoi21, "OAI21": stdcell.KindOai21,
		"MUX": stdcell.KindMux2, "MUX2": stdcell.KindMux2,
	}

	// driveable returns the net for an output name, erroring (instead of
	// letting AddCell panic) when the net already has a source: a second
	// assignment to the same name, or an assignment to an INPUT.
	driveable := func(s string) (netlist.NetID, error) {
		id := getNet(s)
		if nn := n.Net(id); nn.Driver != netlist.NoCell || nn.PI >= 0 {
			return netlist.NoNet, fmt.Errorf("bench: net %q driven more than once", s)
		}
		return id, nil
	}
	for i, f := range ffs {
		dom := getDomain(f.domain, defaultPeriodPS)
		q, err := driveable(f.out)
		if err != nil {
			return nil, err
		}
		d := getNet(f.in)
		ff := n.AddCell(fmt.Sprintf("ff%d", i), lib.MustCell("DFFX1"),
			[]netlist.NetID{d, clkNets[f.domain]}, q)
		n.Cells[ff].Domain = dom
	}
	for i, gl := range gates {
		kind, ok := opKind[gl.op]
		if !ok {
			return nil, fmt.Errorf("bench: unknown op %q", gl.op)
		}
		cell := lib.Weakest(kind, len(gl.ins))
		if cell == nil {
			return nil, fmt.Errorf("bench: no %s cell with %d inputs", kind, len(gl.ins))
		}
		ins := make([]netlist.NetID, len(gl.ins))
		for j, a := range gl.ins {
			ins[j] = getNet(a)
		}
		out, err := driveable(gl.out)
		if err != nil {
			return nil, err
		}
		n.AddCell(fmt.Sprintf("g%d", i), cell, ins, out)
	}
	for _, o := range outputs {
		id, ok := nets[o]
		if !ok {
			return nil, fmt.Errorf("bench: OUTPUT(%s) never defined", o)
		}
		n.AddPO(o, id)
	}
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	return n, nil
}

// Stats summarizes a generated circuit for reports and tests.
type Stats struct {
	Cells, FFs, Gates, PIs, POs, Nets int
	Domains                           []string
	MaxDepth                          int
}

// Summarize computes Stats for a netlist.
func Summarize(n *netlist.Netlist) Stats {
	s := Stats{
		Cells: n.NumLiveCells(),
		FFs:   n.NumFlipFlops(),
		PIs:   len(n.PIs),
		POs:   len(n.POs),
		Nets:  len(n.Nets),
	}
	s.Gates = s.Cells - s.FFs
	for _, d := range n.Domains {
		s.Domains = append(s.Domains, d.Name)
	}
	sort.Strings(s.Domains)
	if lv, err := n.Levelize(); err == nil {
		s.MaxDepth = lv.MaxLevel
	}
	return s
}
