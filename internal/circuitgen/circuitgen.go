// Package circuitgen generates the benchmark circuits for the experiments.
//
// The paper evaluates ISCAS'89 s38417 plus two proprietary Philips cores
// ("circuit 1", a two-clock-domain digital control core from a wireless
// IC, and p26909, a 24-bit DSP core). The proprietary netlists are not
// available, and the ISCAS gate lists cannot be redistributed here, so
// this package synthesizes deterministic circuits with the same published
// profiles: flip-flop count, gate count, I/O count, clock domains, logic
// depth, and — critically for TPI experiments — a population of
// random-pattern-resistant cones (wide AND trees and deep reconvergent
// logic) whose detection probability is low enough that test points
// meaningfully reduce the deterministic pattern count.
package circuitgen

import (
	"fmt"
	"math/rand"
	"strings"

	"tpilayout/internal/netlist"
	"tpilayout/internal/stdcell"
)

// DomainSpec describes one clock domain of a generated circuit.
type DomainSpec struct {
	Name     string
	PeriodPS float64 // target period (reporting only)
	Frac     float64 // fraction of flip-flops in this domain
}

// Spec parameterizes circuit generation. All randomness derives from Seed,
// so a Spec is a complete, reproducible circuit description.
type Spec struct {
	Name     string
	Seed     int64
	NumPI    int // non-clock primary inputs
	NumPO    int
	NumFF    int
	NumGates int // combinational gate target (excluding hard-cone gates)
	Domains  []DomainSpec

	// HardGroups inserts this many random-pattern-resistant structures.
	// Each group is SubCones parallel AND trees of HardWidth
	// scan-controllable leaves whose outputs meet in an AND collector:
	// observing any subcone requires every sibling at 1, so the faults
	// inside different subcones have pairwise-conflicting detection
	// requirements and each needs (nearly) its own pattern — until test
	// points at the subcone outputs decouple them. This is the fault
	// population that makes TPI pay off in the paper's Table 1.
	HardGroups int
	SubCones   int
	HardWidth  int

	// CarryChains/CarryLen add datapath-style ripple carry chains (used
	// by the DSP-core profile): CarryChains chains of CarryLen full-adder
	// stages each.
	CarryChains int
	CarryLen    int

	// MaxDepth bounds the combinational depth of the random logic
	// (default 24): real register-to-register logic is depth-limited by
	// the clock period, and unbounded depth makes both ATPG and timing
	// unrealistically hard. Hard cones and carry chains may exceed it.
	MaxDepth int
}

// Scale returns a copy of the spec with all size parameters multiplied by
// f (minimum sizes enforced), keeping the structural character intact.
// Tests run scaled-down clones of the full-size experiment circuits.
func (s Spec) Scale(f float64) Spec {
	min := func(v, lo int) int {
		if v < lo {
			return lo
		}
		return v
	}
	out := s
	out.NumPI = min(int(float64(s.NumPI)*f), 4)
	out.NumPO = min(int(float64(s.NumPO)*f), 4)
	out.NumFF = min(int(float64(s.NumFF)*f), 8)
	out.NumGates = min(int(float64(s.NumGates)*f), 40)
	out.HardGroups = min(int(float64(s.HardGroups)*f), 1)
	out.CarryChains = int(float64(s.CarryChains) * f)
	if s.CarryChains > 0 && out.CarryChains < 1 {
		out.CarryChains = 1
	}
	return out
}

// SpecByName resolves the experiment circuits by their paper names.
// Matching is case-insensitive and ignores surrounding whitespace, so
// "S38417 " resolves like "s38417".
func SpecByName(name string) (Spec, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "s38417", "s38417c":
		return S38417Class(), nil
	case "circuit1", "wctrl1", "wireless":
		return WirelessCtrlClass(), nil
	case "p26909", "p26909c", "dsp":
		return DSPCoreClass(), nil
	}
	return Spec{}, fmt.Errorf("tpilayout: unknown circuit %q (want s38417, s38417c, circuit1, wctrl1, wireless, p26909, p26909c, or dsp)", name)
}

// S38417Class is the profile of ISCAS'89 s38417 as reported in the paper:
// 1,636 flip-flops and roughly 23k placed cells, single clock domain.
func S38417Class() Spec {
	return Spec{
		Name:       "s38417c",
		Seed:       38417,
		NumPI:      28,
		NumPO:      106,
		NumFF:      1636,
		NumGates:   20500,
		Domains:    []DomainSpec{{Name: "clk", PeriodPS: 8000, Frac: 1.0}},
		HardGroups: 3,
		SubCones:   8,
		HardWidth:  12,
	}
}

// WirelessCtrlClass is the profile of the paper's "circuit 1": a digital
// control core of a wireless-communication IC with two clock domains whose
// application targets are 8 MHz and 64 MHz.
func WirelessCtrlClass() Spec {
	return Spec{
		Name:     "wctrl1",
		Seed:     22810,
		NumPI:    64,
		NumPO:    96,
		NumFF:    3392,
		NumGates: 29000,
		Domains: []DomainSpec{
			{Name: "clk8m", PeriodPS: 125000, Frac: 0.45},
			{Name: "clk64m", PeriodPS: 15625, Frac: 0.55},
		},
		HardGroups: 5,
		SubCones:   8,
		HardWidth:  11,
	}
}

// DSPCoreClass is the profile of Philips p26909: a 24-bit DSP core, much
// larger and datapath-dominated, tested through at most 32 scan chains and
// placed at only 50% row utilization.
func DSPCoreClass() Spec {
	return Spec{
		Name:        "p26909c",
		Seed:        26909,
		NumPI:       96,
		NumPO:       128,
		NumFF:       5216,
		NumGates:    88000,
		Domains:     []DomainSpec{{Name: "clk", PeriodPS: 7143, Frac: 1.0}}, // 140 MHz target
		HardGroups:  7,
		SubCones:    8,
		HardWidth:   12,
		CarryChains: 96,
		CarryLen:    24,
	}
}

// Generate builds the netlist for a spec against the given library.
// The result is validated before being returned.
func Generate(spec Spec, lib *stdcell.Library) (*netlist.Netlist, error) {
	if len(spec.Domains) == 0 {
		return nil, fmt.Errorf("circuitgen: spec %s has no clock domains", spec.Name)
	}
	g := &gen{
		spec: spec,
		lib:  lib,
		rng:  rand.New(rand.NewSource(spec.Seed)),
		n:    netlist.New(spec.Name, lib),
	}
	g.build()
	if err := g.n.Validate(); err != nil {
		return nil, fmt.Errorf("circuitgen: generated invalid netlist: %w", err)
	}
	return g.n, nil
}

type gen struct {
	spec Spec
	lib  *stdcell.Library
	rng  *rand.Rand
	n    *netlist.Netlist

	pool    []netlist.NetID // nets available as gate inputs
	depth   map[netlist.NetID]int
	used    map[netlist.NetID]int
	gateSeq int
	netSeq  int
	ffD     []netlist.NetID // pre-created nets that will become FF d-inputs
	clkNets []netlist.NetID
}

func (g *gen) build() {
	spec, n := g.spec, g.n
	g.used = make(map[netlist.NetID]int)
	g.depth = make(map[netlist.NetID]int)
	if g.spec.MaxDepth <= 0 {
		g.spec.MaxDepth = 24
	}

	for di, d := range spec.Domains {
		clk, dom := n.AddClockPI(d.Name, d.PeriodPS)
		if dom != di {
			panic("circuitgen: domain index mismatch")
		}
		g.clkNets = append(g.clkNets, clk)
	}
	for i := 0; i < spec.NumPI; i++ {
		g.pool = append(g.pool, n.AddPI(fmt.Sprintf("pi%d", i)))
	}

	// Flip-flops first: their Q nets seed the combinational pool and their
	// D nets are filled in at the end, giving full sequential feedback.
	domOf := g.assignDomains()
	for i := 0; i < spec.NumFF; i++ {
		q := n.AddNet(fmt.Sprintf("ffq%d", i))
		d := n.AddNet(fmt.Sprintf("ffd%d", i))
		dom := domOf[i]
		ff := n.AddCell(fmt.Sprintf("ff%d", i),
			g.lib.MustCell("DFFX1"),
			[]netlist.NetID{d, g.clkNets[dom]}, q)
		n.Cells[ff].Domain = dom
		g.pool = append(g.pool, q)
		g.ffD = append(g.ffD, d)
	}

	// Hard groups are built before the random logic so their collector
	// outputs are reused downstream: a TSFF inserted at a subcone output
	// then sits on real functional paths, giving TPI its timing cost.
	g.carryChains()
	g.hardGroups()
	g.randomLogic()
	g.closeFFInputs()
	g.closePOs()
}

// assignDomains deterministically spreads flip-flops over domains by Frac.
func (g *gen) assignDomains() []int {
	out := make([]int, g.spec.NumFF)
	if len(g.spec.Domains) == 1 {
		return out
	}
	// Cumulative fractions; FF i goes to the first domain whose cumulative
	// share covers i/NumFF.
	for i := range out {
		x := (float64(i) + 0.5) / float64(g.spec.NumFF)
		acc := 0.0
		for di, d := range g.spec.Domains {
			acc += d.Frac
			if x <= acc || di == len(g.spec.Domains)-1 {
				out[i] = di
				break
			}
		}
	}
	return out
}

// pick selects a random pool net, biased toward recent (local) and
// little-used nets so fanout stays realistic, and rejecting nets at the
// depth budget so inter-register logic stays clock-period shaped.
func (g *gen) pick() netlist.NetID {
	p := g.pool
	var id netlist.NetID
	for try := 0; ; try++ {
		if g.rng.Float64() < 0.7 && len(p) > 64 {
			// Locality: draw from the most recent window.
			id = p[len(p)-1-g.rng.Intn(64)]
		} else {
			id = p[g.rng.Intn(len(p))]
		}
		if try >= 6 {
			break
		}
		if g.used[id] >= 5 || g.depth[id] >= g.spec.MaxDepth {
			continue
		}
		break
	}
	g.used[id]++
	return id
}

func (g *gen) newNet() netlist.NetID {
	g.netSeq++
	return g.n.AddNet(fmt.Sprintf("w%d", g.netSeq))
}

func (g *gen) addGate(cell *stdcell.Cell, ins []netlist.NetID) netlist.NetID {
	out := g.newNet()
	g.gateSeq++
	g.n.AddCell(fmt.Sprintf("g%d", g.gateSeq), cell, ins, out)
	d := 0
	for _, in := range ins {
		if g.depth[in] > d {
			d = g.depth[in]
		}
	}
	g.depth[out] = d + 1
	return out
}

// gateMix is the weighted standard-cell mix of the random logic. The blend
// approximates a mapped control-logic netlist: inverter/buffer rich, NAND
// dominated, with a sprinkling of XORs and complex gates.
var gateMix = []struct {
	name   string
	weight int
}{
	{"INVX1", 16},
	{"BUFX1", 4},
	{"NAND2X1", 22},
	{"NAND3X1", 7},
	{"NAND4X1", 3},
	{"NOR2X1", 12},
	{"NOR3X1", 4},
	{"AND2X1", 8},
	{"OR2X1", 7},
	{"XOR2X1", 5},
	{"XNOR2X1", 3},
	{"AOI21X1", 5},
	{"OAI21X1", 4},
	{"MUX2X1", 4},
}

var gateMixTotal = func() int {
	t := 0
	for _, m := range gateMix {
		t += m.weight
	}
	return t
}()

func (g *gen) randomGateCell() *stdcell.Cell {
	r := g.rng.Intn(gateMixTotal)
	for _, m := range gateMix {
		if r < m.weight {
			return g.lib.MustCell(m.name)
		}
		r -= m.weight
	}
	panic("unreachable")
}

func (g *gen) randomLogic() {
	for g.gateSeq < g.spec.NumGates {
		cell := g.randomGateCell()
		ins := make([]netlist.NetID, len(cell.Inputs))
		for i := range ins {
			ins[i] = g.pickDistinct(ins[:i])
		}
		g.pool = append(g.pool, g.addGate(cell, ins))
	}
}

// pickDistinct picks a pool net that is neither already present in taken
// nor immediately reconvergent with a taken net (one net being a direct
// fan-in of the other's driver). Duplicated or shallowly-reconvergent gate
// inputs create redundant faults at rates real mapped netlists do not
// have; the retry count is bounded so tiny pools still terminate.
func (g *gen) pickDistinct(taken []netlist.NetID) netlist.NetID {
	for try := 0; try < 12; try++ {
		id := g.pick()
		ok := true
		for _, t := range taken {
			if t == id || g.directFanin(t, id) || g.directFanin(id, t) {
				ok = false
				break
			}
		}
		if ok {
			return id
		}
	}
	return g.pick()
}

// directFanin reports whether net b is a direct input of net a's driver.
func (g *gen) directFanin(a, b netlist.NetID) bool {
	d := g.n.Nets[a].Driver
	if d == netlist.NoCell {
		return false
	}
	for _, in := range g.n.Cells[d].Ins {
		if in == b {
			return true
		}
	}
	return false
}

// hardGroups builds the random-pattern-resistant structures: per group,
// SubCones parallel AND trees over distinct flip-flop outputs (so any
// single activation is deterministically solvable through the scan
// chain), joined by an AND collector that is XOR-mixed back into the
// pool. Observing a fault in one subcone requires every sibling subcone
// at 1, so detection requirements conflict pairwise across subcones: the
// pattern count stays high until test points at the subcone outputs
// break the conflicts.
func (g *gen) hardGroups() {
	if g.spec.HardGroups == 0 {
		return
	}
	and2 := g.lib.MustCell("AND2X1")
	xor2 := g.lib.MustCell("XOR2X1")
	k := g.spec.SubCones
	if k < 2 {
		k = 2
	}
	w := g.spec.HardWidth
	if w < 3 {
		w = 3
	}
	// Distinct flip-flop leaves per group, drawn round-robin from a
	// shuffled list so small circuits still work (leaves may repeat
	// across groups, never within one).
	ffQ := make([]netlist.NetID, 0, g.spec.NumFF)
	for _, ff := range g.n.FlipFlops() {
		ffQ = append(ffQ, g.n.Cells[ff].Out)
	}
	g.rng.Shuffle(len(ffQ), func(i, j int) { ffQ[i], ffQ[j] = ffQ[j], ffQ[i] })
	if k*w > len(ffQ) {
		w = len(ffQ) / k
		if w < 3 {
			w = 3
		}
	}
	next := 0
	leaf := func() netlist.NetID {
		id := ffQ[next%len(ffQ)]
		next++
		g.used[id]++
		return id
	}
	reduceAnd := func(layer []netlist.NetID) netlist.NetID {
		for len(layer) > 1 {
			var up []netlist.NetID
			for i := 0; i+1 < len(layer); i += 2 {
				up = append(up, g.addGate(and2, []netlist.NetID{layer[i], layer[i+1]}))
			}
			if len(layer)%2 == 1 {
				up = append(up, layer[len(layer)-1])
			}
			layer = up
		}
		return layer[0]
	}
	for grp := 0; grp < g.spec.HardGroups; grp++ {
		next = (grp * k * w) % len(ffQ)
		outs := make([]netlist.NetID, k)
		for sc := 0; sc < k; sc++ {
			leaves := make([]netlist.NetID, w)
			for i := range leaves {
				leaves[i] = leaf()
			}
			outs[sc] = reduceAnd(leaves)
		}
		collector := reduceAnd(outs)
		mixed := g.addGate(xor2, []netlist.NetID{collector, g.pick()})
		g.pool = append(g.pool, mixed)
	}
}

// carryChains builds ripple-carry datapath slices: ci+1 = maj(a,b,ci),
// sum = a XOR b XOR ci. Long sensitized chains give the DSP profile its
// deep paths and characteristic STA behaviour.
func (g *gen) carryChains() {
	if g.spec.CarryChains == 0 {
		return
	}
	xor2 := g.lib.MustCell("XOR2X1")
	and2 := g.lib.MustCell("AND2X1")
	or2 := g.lib.MustCell("OR2X1")
	for c := 0; c < g.spec.CarryChains; c++ {
		carry := g.pick()
		for s := 0; s < g.spec.CarryLen; s++ {
			a, b := g.pick(), g.pick()
			axb := g.addGate(xor2, []netlist.NetID{a, b})
			sum := g.addGate(xor2, []netlist.NetID{axb, carry})
			t1 := g.addGate(and2, []netlist.NetID{a, b})
			t2 := g.addGate(and2, []netlist.NetID{axb, carry})
			carry = g.addGate(or2, []netlist.NetID{t1, t2})
			g.pool = append(g.pool, sum)
		}
		g.pool = append(g.pool, carry)
	}
}

// closeFFInputs drives every flip-flop D net from the pool, preferring
// nets that are still unused so the logic stays observable.
func (g *gen) closeFFInputs() {
	unused := g.unusedNets()
	buf := g.lib.MustCell("BUFX1")
	for i, d := range g.ffD {
		var src netlist.NetID
		if len(unused) > 0 {
			src, unused = unused[len(unused)-1], unused[:len(unused)-1]
		} else {
			src = g.pick()
		}
		// A buffer decouples the D net so it has exactly one driver.
		g.gateSeq++
		g.n.AddCell(fmt.Sprintf("fdrv%d", i), buf, []netlist.NetID{src}, d)
		g.used[src]++
	}
}

// closePOs connects primary outputs; leftover unused nets are folded into
// XOR collector trees so no logic is structurally unobservable.
func (g *gen) closePOs() {
	unused := g.unusedNets()
	xor2 := g.lib.MustCell("XOR2X1")
	for i := 0; i < g.spec.NumPO; i++ {
		var src netlist.NetID
		switch {
		case len(unused) >= 2 && i < g.spec.NumPO/2:
			// Fold up to 8 unused nets into one observed parity tree.
			k := 8
			if k > len(unused) {
				k = len(unused)
			}
			src = unused[0]
			g.used[src]++
			for j := 1; j < k; j++ {
				g.used[unused[j]]++
				src = g.addGate(xor2, []netlist.NetID{src, unused[j]})
			}
			unused = unused[k:]
		case len(unused) > 0:
			src, unused = unused[0], unused[1:]
			g.used[src]++
		default:
			src = g.pick()
		}
		g.n.AddPO(fmt.Sprintf("po%d", i), src)
	}
	// Anything still unused is observed through a final parity net on the
	// last PO — cheap and keeps fault coverage meaningful.
	if len(unused) > 0 {
		acc := unused[0]
		g.used[acc]++
		for _, u := range unused[1:] {
			g.used[u]++
			acc = g.addGate(xor2, []netlist.NetID{acc, u})
		}
		g.n.AddPO("po_sink", acc)
	}
}

// unusedNets lists pool nets that currently drive nothing, oldest first.
func (g *gen) unusedNets() []netlist.NetID {
	var out []netlist.NetID
	for _, id := range g.pool {
		if g.used[id] == 0 {
			out = append(out, id)
		}
	}
	return out
}
