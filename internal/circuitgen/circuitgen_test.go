package circuitgen

import (
	"bytes"
	"strings"
	"testing"

	"tpilayout/internal/stdcell"
)

func TestGenerateScaledProfilesAreValid(t *testing.T) {
	lib := stdcell.Default()
	for _, spec := range []Spec{
		S38417Class().Scale(0.02),
		WirelessCtrlClass().Scale(0.02),
		DSPCoreClass().Scale(0.01),
	} {
		n, err := Generate(spec, lib)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		st := Summarize(n)
		if st.FFs != spec.NumFF {
			t.Errorf("%s: FFs = %d, want %d", spec.Name, st.FFs, spec.NumFF)
		}
		if st.Gates < spec.NumGates {
			t.Errorf("%s: gates = %d, want >= %d", spec.Name, st.Gates, spec.NumGates)
		}
		if st.POs < spec.NumPO {
			t.Errorf("%s: POs = %d, want >= %d", spec.Name, st.POs, spec.NumPO)
		}
		if len(st.Domains) != len(spec.Domains) {
			t.Errorf("%s: domains = %v, want %d", spec.Name, st.Domains, len(spec.Domains))
		}
		if st.MaxDepth < 3 {
			t.Errorf("%s: suspiciously shallow logic (depth %d)", spec.Name, st.MaxDepth)
		}
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	lib := stdcell.Default()
	spec := S38417Class().Scale(0.02)
	var bufs [2]bytes.Buffer
	for i := range bufs {
		n, err := Generate(spec, lib)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteBench(&bufs[i], n); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Fatal("two generations of the same spec differ")
	}
}

func TestDomainFractions(t *testing.T) {
	lib := stdcell.Default()
	spec := WirelessCtrlClass().Scale(0.05)
	n, err := Generate(spec, lib)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, len(n.Domains))
	for _, ff := range n.FlipFlops() {
		counts[n.Cells[ff].Domain]++
	}
	total := 0
	for _, c := range counts {
		if c == 0 {
			t.Fatalf("a clock domain has no flip-flops: %v", counts)
		}
		total += c
	}
	frac0 := float64(counts[0]) / float64(total)
	if frac0 < 0.35 || frac0 > 0.55 {
		t.Errorf("domain 0 fraction = %.2f, want ≈0.45", frac0)
	}
}

func TestBenchRoundTrip(t *testing.T) {
	lib := stdcell.Default()
	n, err := Generate(S38417Class().Scale(0.01), lib)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBench(&buf, n); err != nil {
		t.Fatal(err)
	}
	n2, err := ReadBench(bytes.NewReader(buf.Bytes()), "rt", lib, 10000)
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := Summarize(n), Summarize(n2)
	if s1.FFs != s2.FFs || s1.Gates != s2.Gates || s1.POs != s2.POs {
		t.Errorf("round trip changed counts: %+v vs %+v", s1, s2)
	}
	if len(s1.Domains) != len(s2.Domains) {
		t.Errorf("round trip changed domains: %v vs %v", s1.Domains, s2.Domains)
	}
}

func TestReadBenchPlainISCAS(t *testing.T) {
	// A fragment in original ISCAS'89 notation (no domain comments).
	src := `
INPUT(G0)
INPUT(G1)
OUTPUT(G17)
G10 = DFF(G14)
G11 = NOT(G10)
G14 = NAND(G0, G1)
G17 = NOR(G11, G1)
`
	lib := stdcell.Default()
	n, err := ReadBench(strings.NewReader(src), "frag", lib, 10000)
	if err != nil {
		t.Fatal(err)
	}
	st := Summarize(n)
	if st.FFs != 1 || st.Gates != 3 {
		t.Errorf("got %d FFs / %d gates, want 1 / 3", st.FFs, st.Gates)
	}
	if len(n.Domains) != 1 || n.Domains[0].Name != "clk" {
		t.Errorf("domains = %+v, want implicit clk", n.Domains)
	}
}

func TestReadBenchErrors(t *testing.T) {
	lib := stdcell.Default()
	for name, src := range map[string]string{
		"unknown op":    "INPUT(a)\ny = FROB(a)\n",
		"missing def":   "INPUT(a)\nOUTPUT(zz)\ny = NOT(a)\n",
		"unparseable":   "INPUT(a)\nwhat even is this\n",
		"dangling gate": "y = NOT(ghost)\n",
	} {
		if _, err := ReadBench(strings.NewReader(src), "bad", lib, 1000); err == nil {
			t.Errorf("%s: ReadBench accepted invalid input", name)
		}
	}
}

func TestFullSizeProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size generation in -short mode")
	}
	lib := stdcell.Default()
	for _, spec := range []Spec{S38417Class(), WirelessCtrlClass(), DSPCoreClass()} {
		n, err := Generate(spec, lib)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		st := Summarize(n)
		t.Logf("%s: %d cells (%d FFs, %d gates), depth %d", spec.Name, st.Cells, st.FFs, st.Gates, st.MaxDepth)
		if st.FFs != spec.NumFF {
			t.Errorf("%s: FFs = %d, want %d", spec.Name, st.FFs, spec.NumFF)
		}
	}
}
