package circuitgen

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tpilayout/internal/stdcell"
)

// FuzzParseBench feeds arbitrary text to ReadBench and checks the two
// contracts the rest of the repo relies on:
//
//  1. ReadBench never panics — malformed input must come back as an error.
//  2. Anything that parses must survive a write→parse→write round trip
//     with byte-identical output, i.e. WriteBench is a fixed point after
//     one normalization pass.
func FuzzParseBench(f *testing.F) {
	seeds, err := filepath.Glob(filepath.Join("testdata", "*.bench"))
	if err != nil {
		f.Fatal(err)
	}
	for _, s := range seeds {
		data, err := os.ReadFile(s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	// Hand-picked seeds steering the fuzzer toward the parser's edges:
	// empty args, duplicate definitions, unknown ops, comment handling.
	f.Add("INPUT(a)\nOUTPUT(a)\n")
	f.Add("q = DFF(d) # domain=fast\n# CLOCK fast 5000\nINPUT(d)\nOUTPUT(q)\n")
	f.Add("n = NAND()\n")
	f.Add("x = DFF()\n")
	f.Add("INPUT(a)\na = BUFF(a)\n")
	f.Add("y = FROB(a, b)\n")
	f.Add("# CLOCK clk\n# CLOCK clk 1 extra\ny = AND(a , b)\nINPUT(a)\nINPUT(b)\n")

	lib := stdcell.Default()
	f.Fuzz(func(t *testing.T, src string) {
		n, err := ReadBench(strings.NewReader(src), "fuzz", lib, 10000)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		var b1 bytes.Buffer
		if err := WriteBench(&b1, n); err != nil {
			t.Fatalf("WriteBench failed on accepted input: %v", err)
		}
		n2, err := ReadBench(bytes.NewReader(b1.Bytes()), "fuzz", lib, 10000)
		if err != nil {
			t.Fatalf("re-parse of written output failed: %v\noutput:\n%s", err, b1.String())
		}
		var b2 bytes.Buffer
		if err := WriteBench(&b2, n2); err != nil {
			t.Fatalf("second WriteBench failed: %v", err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatalf("write→parse→write not stable:\nfirst:\n%s\nsecond:\n%s", b1.String(), b2.String())
		}
	})
}
