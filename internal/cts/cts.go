// Package cts inserts buffered clock trees (the paper's CT-GEN step):
// per clock domain, flip-flop clock pins are clustered geometrically and
// driven through a recursive buffer tree, the buffers are ECO-placed, and
// the resulting insertion delays and skew fall out of the downstream
// static timing analysis which traces the tree like any other logic.
package cts

import (
	"fmt"
	"sort"

	"tpilayout/internal/netlist"
	"tpilayout/internal/place"
	"tpilayout/internal/telemetry"
)

// Options configures clock-tree synthesis.
type Options struct {
	// MaxFanout is the number of sinks a single tree buffer may drive
	// (default 20).
	MaxFanout int
	// BufferCell is the library buffer used for tree levels (default
	// BUFX8).
	BufferCell string
	// Telemetry, when non-nil, receives the clock-tree counters
	// (cts.domains, cts.sinks, cts.buffers, cts.levels) on the CTS
	// stage's span; silent (and free) by default.
	Telemetry *telemetry.Span
}

// Result describes the synthesized trees.
type Result struct {
	// Buffers lists all inserted clock buffers.
	Buffers []netlist.CellID
	// Levels is the depth of the deepest tree.
	Levels int
}

// sink is one clock pin to drive.
type sink struct {
	cell netlist.CellID
	pin  int
	x, y float64
}

// Insert builds a buffered tree for every clock domain and ECO-places the
// new buffers.
func Insert(n *netlist.Netlist, p *place.Placement, opt Options) (*Result, error) {
	if opt.MaxFanout <= 0 {
		opt.MaxFanout = 20
	}
	if opt.BufferCell == "" {
		opt.BufferCell = "BUFX8"
	}
	res := &Result{}
	sinkTotal := 0
	for dom := range n.Domains {
		root := n.PIs[n.Domains[dom].ClockPI].Net
		var sinks []sink
		for _, ff := range n.FlipFlops() {
			c := &n.Cells[ff]
			if c.Domain != dom {
				continue
			}
			pin := c.Cell.FindInput("clk")
			if pin < 0 || c.Ins[pin] != root {
				continue
			}
			x, y := p.Pos(ff)
			sinks = append(sinks, sink{cell: ff, pin: pin, x: x, y: y})
		}
		if len(sinks) == 0 {
			continue
		}
		sinkTotal += len(sinks)
		levels := buildTree(n, res, root, sinks, opt, fmt.Sprintf("ctb_d%d", dom), 0)
		if levels > res.Levels {
			res.Levels = levels
		}
	}
	if err := p.ECO(); err != nil {
		return nil, err
	}
	if sp := opt.Telemetry; sp != nil {
		sp.Counter("cts.domains").Add(int64(len(n.Domains)))
		sp.Counter("cts.sinks").Add(int64(sinkTotal))
		sp.Counter("cts.buffers").Add(int64(len(res.Buffers)))
		sp.Counter("cts.levels").Add(int64(res.Levels))
	}
	return res, nil
}

// Remove tears a previously inserted clock tree back out: every buffer's
// loads are reconnected to the buffer's input and the buffer is killed.
// Buffers are processed in reverse insertion order so parent nets are
// still alive when children fold into them. Used by timing-optimization
// design iterations, which re-place and re-buffer from scratch.
func Remove(n *netlist.Netlist, r *Result) {
	for i := len(r.Buffers) - 1; i >= 0; i-- {
		buf := r.Buffers[i]
		c := &n.Cells[buf]
		src := c.Ins[0]
		loads := append([]netlist.Load(nil), n.Fanouts()[c.Out]...)
		n.MoveLoads(c.Out, src, loads)
		n.KillCell(buf)
	}
	r.Buffers = nil
	r.Levels = 0
}

// buildTree recursively splits sinks into clusters of at most MaxFanout,
// inserting one buffer per cluster, and returns the tree depth.
func buildTree(n *netlist.Netlist, res *Result, src netlist.NetID, sinks []sink, opt Options, prefix string, depth int) int {
	if len(sinks) <= opt.MaxFanout {
		for _, s := range sinks {
			n.SetInput(s.cell, s.pin, src)
		}
		return depth
	}
	// Split along the wider spatial extent at the median, keeping the
	// tree geometrically balanced (recursive-bisection CTS).
	minX, maxX := sinks[0].x, sinks[0].x
	minY, maxY := sinks[0].y, sinks[0].y
	for _, s := range sinks {
		if s.x < minX {
			minX = s.x
		}
		if s.x > maxX {
			maxX = s.x
		}
		if s.y < minY {
			minY = s.y
		}
		if s.y > maxY {
			maxY = s.y
		}
	}
	if maxX-minX >= maxY-minY {
		sort.Slice(sinks, func(i, j int) bool { return sinks[i].x < sinks[j].x })
	} else {
		sort.Slice(sinks, func(i, j int) bool { return sinks[i].y < sinks[j].y })
	}
	mid := len(sinks) / 2
	depthMax := depth
	for half, group := range [][]sink{sinks[:mid], sinks[mid:]} {
		out := n.AddNet(fmt.Sprintf("%s_%d_%d", prefix, depth, half))
		buf := n.AddCell(fmt.Sprintf("%s_%d_%d", prefix, depth, half),
			n.Lib.MustCell(opt.BufferCell), []netlist.NetID{src}, out)
		n.Cells[buf].Tag = netlist.TagClockBuf
		res.Buffers = append(res.Buffers, buf)
		d := buildTree(n, res, out, group, opt, fmt.Sprintf("%s_%d", prefix, half), depth+1)
		if d > depthMax {
			depthMax = d
		}
	}
	return depthMax
}
