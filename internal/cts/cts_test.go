package cts

import (
	"testing"

	"tpilayout/internal/circuitgen"
	"tpilayout/internal/netlist"
	"tpilayout/internal/place"
	"tpilayout/internal/stdcell"
)

func built(t testing.TB, maxFanout int) (*netlist.Netlist, *place.Placement, *Result) {
	t.Helper()
	lib := stdcell.Default()
	n, err := circuitgen.Generate(circuitgen.WirelessCtrlClass().Scale(0.04), lib)
	if err != nil {
		t.Fatal(err)
	}
	p, err := place.Place(n, place.Options{TargetUtilization: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Insert(n, p, Options{MaxFanout: maxFanout})
	if err != nil {
		t.Fatal(err)
	}
	return n, p, r
}

func TestTreeRespectsFanoutLimit(t *testing.T) {
	n, _, r := built(t, 8)
	if len(r.Buffers) == 0 {
		t.Fatal("no clock buffers inserted")
	}
	fan := n.Fanouts()
	// Every net in the clock trees must drive at most MaxFanout sinks
	// (buffers count as sinks of their level).
	for _, b := range r.Buffers {
		out := n.Cells[b].Out
		if len(fan[out]) > 8 {
			t.Errorf("clock buffer %s drives %d loads", n.Cells[b].Name, len(fan[out]))
		}
		if n.Cells[b].Tag != netlist.TagClockBuf {
			t.Error("clock buffer not tagged")
		}
	}
	for dom := range n.Domains {
		root := n.PIs[n.Domains[dom].ClockPI].Net
		if len(fan[root]) > 8 {
			t.Errorf("clock root %s drives %d loads", n.Domains[dom].Name, len(fan[root]))
		}
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEveryFlopStillClocked(t *testing.T) {
	n, _, _ := built(t, 12)
	// Walk each flop's clk net back through buffers to a clock root.
	for _, ff := range n.FlipFlops() {
		c := &n.Cells[ff]
		net := c.Ins[c.Cell.FindInput("clk")]
		for hops := 0; hops < 64; hops++ {
			nn := &n.Nets[net]
			if nn.PI >= 0 && n.PIs[nn.PI].Clock {
				if n.PIs[nn.PI].Domain != c.Domain {
					t.Fatalf("flop %s traced to wrong clock domain", c.Name)
				}
				net = netlist.NoNet
				break
			}
			if nn.Driver == netlist.NoCell {
				t.Fatalf("flop %s clock path dead-ends at %s", c.Name, nn.Name)
			}
			net = n.Cells[nn.Driver].Ins[0]
		}
		if net != netlist.NoNet {
			t.Fatalf("flop %s clock path does not reach a root", c.Name)
		}
	}
}

func TestBuffersArePlaced(t *testing.T) {
	n, p, r := built(t, 12)
	for _, b := range r.Buffers {
		if !p.Placed(b) {
			t.Fatalf("clock buffer %s not ECO-placed", n.Cells[b].Name)
		}
	}
	if r.Levels <= 0 {
		t.Error("tree depth not reported")
	}
}

func TestDomainsGetSeparateTrees(t *testing.T) {
	n, _, r := built(t, 12)
	// Buffers must split between the two domains' name prefixes.
	count := map[byte]int{}
	for _, b := range r.Buffers {
		name := n.Cells[b].Name // ctb_d<dom>...
		count[name[5]]++
	}
	if count['0'] == 0 || count['1'] == 0 {
		t.Errorf("expected buffers in both domains, got %v", count)
	}
}

func TestRemoveRestoresDirectClocking(t *testing.T) {
	n, _, r := built(t, 8)
	before := n.NumLiveCells() - len(r.Buffers)
	Remove(n, r)
	if err := n.Validate(); err != nil {
		t.Fatalf("invalid after tree removal: %v", err)
	}
	if got := n.NumLiveCells(); got != before {
		t.Errorf("live cells = %d after removal, want %d", got, before)
	}
	if len(r.Buffers) != 0 {
		t.Error("Remove left buffer records behind")
	}
	// Every flop must be clocked straight from its domain root again.
	for _, ff := range n.FlipFlops() {
		c := &n.Cells[ff]
		clkNet := c.Ins[c.Cell.FindInput("clk")]
		root := n.PIs[n.Domains[c.Domain].ClockPI].Net
		if clkNet != root {
			t.Fatalf("flop %s not reconnected to its clock root", c.Name)
		}
	}
	// Reinsertion after removal works (remove/insert cycle).
	if _, err := Insert(n, mustPlace(t, n), Options{MaxFanout: 8}); err != nil {
		t.Fatalf("re-insert after removal: %v", err)
	}
}

func mustPlace(t *testing.T, n *netlist.Netlist) *place.Placement {
	t.Helper()
	p, err := place.Place(n, place.Options{TargetUtilization: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	return p
}
