// Package extract computes lumped RC parasitics for every routed net from
// the global-route wire lengths and the library's per-µm wire constants —
// the stand-in for the paper's HyperExtract step. The static timing
// analyzer consumes the result.
package extract

import (
	"tpilayout/internal/netlist"
	"tpilayout/internal/route"
)

// Parasitics holds per-net lumped values, indexed by NetID.
type Parasitics struct {
	// WireR is the wire resistance in kΩ.
	WireR []float64
	// WireC is the wire capacitance in fF.
	WireC []float64
	// PinC is the total connected input-pin capacitance in fF.
	PinC []float64
}

// Extract computes parasitics for all nets of n given routed lengths.
// Nets without routed length (single-pin, constants) get zero wire RC but
// still carry their pin capacitance.
func Extract(n *netlist.Netlist, r *route.Result) *Parasitics {
	p := &Parasitics{
		WireR: make([]float64, len(n.Nets)),
		WireC: make([]float64, len(n.Nets)),
		PinC:  make([]float64, len(n.Nets)),
	}
	lib := n.Lib
	for id := range n.Nets {
		if n.Nets[id].Dead {
			continue
		}
		if r != nil && id < len(r.NetLen) {
			l := r.NetLen[id]
			p.WireR[id] = l * lib.WireResPerUM
			p.WireC[id] = l * lib.WireCapPerUM
		}
	}
	for ci := range n.Cells {
		c := &n.Cells[ci]
		if c.Dead {
			continue
		}
		for pin, net := range c.Ins {
			if net != netlist.NoNet {
				p.PinC[net] += c.Cell.Inputs[pin].Cap
			}
		}
	}
	return p
}

// TotalLoad returns the capacitive load a driver of net sees: wire plus
// all input pins.
func (p *Parasitics) TotalLoad(net netlist.NetID) float64 {
	return p.WireC[net] + p.PinC[net]
}

// WireDelay returns the Elmore delay of the net's wire in ps: the wire
// resistance drives half its own capacitance plus the full pin load
// (kΩ · fF = ps).
func (p *Parasitics) WireDelay(net netlist.NetID) float64 {
	return p.WireR[net] * (p.WireC[net]/2 + p.PinC[net])
}
