package extract

import (
	"testing"

	"tpilayout/internal/circuitgen"
	"tpilayout/internal/netlist"
	"tpilayout/internal/place"
	"tpilayout/internal/route"
	"tpilayout/internal/stdcell"
)

func TestExtractBasics(t *testing.T) {
	lib := stdcell.Default()
	n := netlist.New("x", lib)
	a := n.AddPI("a")
	y := n.AddNet("y")
	n.AddCell("g1", lib.MustCell("INVX1"), []netlist.NetID{a}, y)
	g2 := n.AddCell("g2", lib.MustCell("NAND2X1"), []netlist.NetID{y, a}, n.AddNet("z"))
	_ = g2
	n.AddPO("z", netlist.NetID(2))

	r := &route.Result{NetLen: make([]float64, len(n.Nets))}
	r.NetLen[y] = 100 // µm
	p := Extract(n, r)

	wantR := 100 * lib.WireResPerUM
	wantC := 100 * lib.WireCapPerUM
	if p.WireR[y] != wantR || p.WireC[y] != wantC {
		t.Errorf("wire RC = (%g,%g), want (%g,%g)", p.WireR[y], p.WireC[y], wantR, wantC)
	}
	// y drives one NAND input pin (2.0 fF); a drives INV a and NAND b.
	if p.PinC[y] != 2.0 {
		t.Errorf("PinC(y) = %g, want 2.0", p.PinC[y])
	}
	if p.PinC[a] != 4.0 {
		t.Errorf("PinC(a) = %g, want 4.0", p.PinC[a])
	}
	if p.TotalLoad(y) != wantC+2.0 {
		t.Errorf("TotalLoad(y) = %g", p.TotalLoad(y))
	}
	wantDelay := wantR * (wantC/2 + 2.0)
	if d := p.WireDelay(y); d != wantDelay {
		t.Errorf("WireDelay(y) = %g, want %g", d, wantDelay)
	}
}

func TestExtractScalesWithLayout(t *testing.T) {
	lib := stdcell.Default()
	n, err := circuitgen.Generate(circuitgen.S38417Class().Scale(0.03), lib)
	if err != nil {
		t.Fatal(err)
	}
	p, err := place.Place(n, place.Options{TargetUtilization: 0.90})
	if err != nil {
		t.Fatal(err)
	}
	r := route.Route(p, route.Options{})
	par := Extract(n, r)
	totalC := 0.0
	for id := range n.Nets {
		totalC += par.WireC[id]
	}
	want := r.Total * lib.WireCapPerUM
	if diff := totalC - want; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("total wire C %.1f does not match total length × cap/µm %.1f", totalC, want)
	}
}
