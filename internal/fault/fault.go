// Package fault models the single-stuck-at fault universe of a netlist,
// structural equivalence collapsing, and per-fault status bookkeeping for
// ATPG and fault simulation. Fault counts, coverage (FC) and efficiency
// (FE) reported in the paper's Table 1 are computed here.
package fault

import (
	"fmt"
	"sort"

	"tpilayout/internal/netlist"
	"tpilayout/internal/stdcell"
)

// A Fault is a single stuck-at fault at a circuit node.
//
// Sites are expressed against nets: Load == StemLoad places the fault on
// the net's driver output (the stem, which includes primary inputs);
// Load >= 0 places it on the branch feeding the Load-th sink of the net
// (a cell input pin or a primary output), using the net's fanout order.
type Fault struct {
	Net  netlist.NetID
	Load int32
	SA   int8 // stuck-at value, 0 or 1
}

// StemLoad marks a stem (driver-side) fault site.
const StemLoad int32 = -1

// Status describes what is known about a fault class.
type Status uint8

// Fault statuses.
const (
	Undetected Status = iota
	Detected          // detected by a generated (or simulated) pattern
	Untestable        // proven redundant by exhaustive ATPG search
	Aborted           // ATPG gave up (backtrack limit)
	ScanCredit        // covered by scan shift / flush tests (DfT infrastructure)
)

func (s Status) String() string {
	switch s {
	case Undetected:
		return "undetected"
	case Detected:
		return "detected"
	case Untestable:
		return "untestable"
	case Aborted:
		return "aborted"
	case ScanCredit:
		return "scan-credit"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Set is a fault universe over one netlist, with equivalence classes and
// dominance relations. The universe is uncollapsed (it enumerates every
// pin and stem fault, the "total number of stuck-at faults" a tool
// reports); Rep maps each fault to its equivalence-class representative,
// which is what ATPG and fault simulation iterate over. Dominance edges
// (parent class provably detected by any pattern detecting a child class)
// further shrink the set of classes that must be explicitly targeted.
type Set struct {
	N      *netlist.Netlist
	Faults []Fault
	Rep    []int32  // fault index -> representative fault index
	status []Status // per representative (entries for non-reps unused)

	classReps []int32 // sorted unique representatives
	classIdx  []int32 // fault index -> dense class index (position in classReps)

	// Dominance CSR over dense class indices: domChildren[domIdx[c]:
	// domIdx[c+1]] lists the classes dominated by class c. Every pattern
	// detecting a child also detects its parent, so a class with children
	// never needs to be targeted explicitly.
	domIdx      []int32
	domChildren []int32
	numLeaf     int // classes with no dominance children
}

// NewUniverse enumerates all stuck-at faults of the live logic in n and
// collapses structural equivalences and dominances. The netlist must not
// be edited while the Set is in use (fanout order defines Load indices).
func NewUniverse(n *netlist.Netlist) *Set {
	s := &Set{N: n}
	csr := n.CSR()
	// Index of the stem fault pair per net, for collapsing.
	stemIdx := make([]int32, len(n.Nets))
	for i := range stemIdx {
		stemIdx[i] = -1
	}
	add := func(net netlist.NetID, load int32) int32 {
		i := int32(len(s.Faults))
		s.Faults = append(s.Faults, Fault{Net: net, Load: load, SA: 0})
		s.Faults = append(s.Faults, Fault{Net: net, Load: load, SA: 1})
		return i
	}
	// Branch fault pair index per cell input pin, addressed through the
	// CSR fanin layout (FaninIdx[cell]+pin), -1 when absent.
	branchIdx := make([]int32, len(csr.FaninNets))
	for i := range branchIdx {
		branchIdx[i] = -1
	}
	branchOf := func(cell netlist.CellID, pin int) int32 {
		return branchIdx[csr.FaninIdx[cell]+int32(pin)]
	}
	for id := range n.Nets {
		net := netlist.NetID(id)
		nn := &n.Nets[id]
		if nn.Dead || nn.Const >= 0 {
			continue
		}
		if nn.Driver == netlist.NoCell && nn.PI < 0 {
			continue // dangling
		}
		if nn.PI >= 0 && n.PIs[nn.PI].Clock {
			continue // no stuck-at faults modeled on clock roots
		}
		if nn.Driver != netlist.NoCell && n.Cells[nn.Driver].Cell.Kind.IsPhysicalOnly() {
			continue
		}
		stemIdx[id] = add(net, StemLoad)
		for li, ld := range csr.Fanout(net) {
			if ld.Cell != netlist.NoCell {
				c := &n.Cells[ld.Cell]
				if c.Cell.Kind.IsPhysicalOnly() || c.Cell.Inputs[ld.Pin].Clock {
					continue
				}
				branchIdx[csr.FaninIdx[ld.Cell]+int32(ld.Pin)] = add(net, int32(li))
			} else {
				add(net, int32(li)) // primary-output branch
			}
		}
	}

	// Union-find for equivalence collapsing.
	parent := make([]int32, len(s.Faults))
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra < rb {
				parent[rb] = ra
			} else {
				parent[ra] = rb
			}
		}
	}

	// Rule 1: single-load nets — the branch is electrically the stem.
	for id := range n.Nets {
		net := netlist.NetID(id)
		if stemIdx[id] < 0 || csr.FanoutLen(net) != 1 {
			continue
		}
		ld := csr.Fanout(net)[0]
		if ld.Cell != netlist.NoCell {
			if bi := branchOf(ld.Cell, ld.Pin); bi >= 0 {
				union(stemIdx[id], bi)
				union(stemIdx[id]+1, bi+1)
			}
		} else {
			// PO branch fault index directly follows the stem pair.
			union(stemIdx[id], stemIdx[id]+2)
			union(stemIdx[id]+1, stemIdx[id]+3)
		}
	}

	// Rule 2: gate input/output equivalences.
	for ci := range n.Cells {
		c := &n.Cells[ci]
		if c.Dead || c.Out == netlist.NoNet {
			continue
		}
		oi := stemIdx[c.Out]
		if oi < 0 {
			continue
		}
		out0, out1 := oi, oi+1
		inF := func(pin int, sa int8) (int32, bool) {
			bi := branchOf(netlist.CellID(ci), pin)
			if bi < 0 {
				return 0, false
			}
			return bi + int32(sa), true
		}
		switch c.Cell.Kind {
		case stdcell.KindBuf:
			for pin := range c.Ins {
				if f, ok := inF(pin, 0); ok {
					union(f, out0)
				}
				if f, ok := inF(pin, 1); ok {
					union(f, out1)
				}
			}
		case stdcell.KindInv:
			for pin := range c.Ins {
				if f, ok := inF(pin, 0); ok {
					union(f, out1)
				}
				if f, ok := inF(pin, 1); ok {
					union(f, out0)
				}
			}
		case stdcell.KindAnd: // input sa0 ≡ output sa0
			for pin := range c.Ins {
				if f, ok := inF(pin, 0); ok {
					union(f, out0)
				}
			}
		case stdcell.KindNand: // input sa0 ≡ output sa1
			for pin := range c.Ins {
				if f, ok := inF(pin, 0); ok {
					union(f, out1)
				}
			}
		case stdcell.KindOr: // input sa1 ≡ output sa1
			for pin := range c.Ins {
				if f, ok := inF(pin, 1); ok {
					union(f, out1)
				}
			}
		case stdcell.KindNor: // input sa1 ≡ output sa0
			for pin := range c.Ins {
				if f, ok := inF(pin, 1); ok {
					union(f, out0)
				}
			}
		}
	}

	s.Rep = make([]int32, len(s.Faults))
	for i := range s.Rep {
		s.Rep[i] = find(int32(i))
	}
	s.status = make([]Status, len(s.Faults))
	// Union keeps the minimum index as root, so a fault is its class's
	// representative exactly when Rep[i] == i, and ascending index order
	// matches the first-seen order the rest of the pipeline depends on.
	s.classIdx = make([]int32, len(s.Faults))
	for i := range s.Rep {
		if s.Rep[i] == int32(i) {
			s.classIdx[i] = int32(len(s.classReps))
			s.classReps = append(s.classReps, int32(i))
		}
	}
	for i := range s.classIdx {
		s.classIdx[i] = s.classIdx[s.Rep[i]]
	}

	s.collapseDominance(n, stemIdx, branchOf)
	return s
}

// collapseDominance records gate-local dominance edges: for And/Nand/Or/
// Nor gates, any pattern detecting an input fault with the listed stuck
// value must set every side input non-controlling and propagate the gate
// output difference, which is exactly a test for the corresponding output
// stem fault. The output class (parent) therefore never needs explicit
// targeting once its input classes (children) are covered.
//
// The relation is recorded per class: det(child) ⊆ det(parent) holds for
// every pattern, so a nonzero child detection word is proof of parent
// detection — but not the parent's exact word, which is why only
// boolean-consuming passes may exploit it.
func (s *Set) collapseDominance(n *netlist.Netlist, stemIdx []int32, branchOf func(netlist.CellID, int) int32) {
	type edge struct{ parent, child int32 }
	var edges []edge
	for ci := range n.Cells {
		c := &n.Cells[ci]
		if c.Dead || c.Out == netlist.NoNet {
			continue
		}
		oi := stemIdx[c.Out]
		if oi < 0 {
			continue
		}
		var parent int32
		var inSA int32 // stuck value of the dominated input faults
		switch c.Cell.Kind {
		case stdcell.KindAnd:
			parent, inSA = oi+1, 1 // out sa1 ⊇ every input sa1
		case stdcell.KindNand:
			parent, inSA = oi, 1 // out sa0 ⊇ every input sa1
		case stdcell.KindOr:
			parent, inSA = oi, 0 // out sa0 ⊇ every input sa0
		case stdcell.KindNor:
			parent, inSA = oi+1, 0 // out sa1 ⊇ every input sa0
		default:
			continue // no gate-local dominance for the remaining kinds
		}
		pc := s.classIdx[parent]
		for pin := range c.Ins {
			bi := branchOf(netlist.CellID(ci), pin)
			if bi < 0 {
				continue
			}
			cc := s.classIdx[bi+inSA]
			if cc == pc {
				continue // merged by equivalence (e.g. single-input gates)
			}
			edges = append(edges, edge{parent: pc, child: cc})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].parent != edges[j].parent {
			return edges[i].parent < edges[j].parent
		}
		return edges[i].child < edges[j].child
	})
	nc := len(s.classReps)
	s.domIdx = make([]int32, nc+1)
	s.domChildren = make([]int32, 0, len(edges))
	prev := edge{parent: -1, child: -1}
	for _, e := range edges {
		if e == prev {
			continue
		}
		prev = e
		s.domIdx[e.parent+1]++
		s.domChildren = append(s.domChildren, 0) // placeholder, filled below
	}
	for c := 0; c < nc; c++ {
		s.domIdx[c+1] += s.domIdx[c]
	}
	cursor := append([]int32(nil), s.domIdx[:nc]...)
	prev = edge{parent: -1, child: -1}
	for _, e := range edges {
		if e == prev {
			continue
		}
		prev = e
		s.domChildren[cursor[e.parent]] = e.child
		cursor[e.parent]++
	}
	s.numLeaf = 0
	for c := 0; c < nc; c++ {
		if s.domIdx[c+1] == s.domIdx[c] {
			s.numLeaf++
		}
	}
}

// Total is the uncollapsed fault count — the paper's "#faults" column.
func (s *Set) Total() int { return len(s.Faults) }

// NumClasses is the equivalence-collapsed fault-class count.
func (s *Set) NumClasses() int { return len(s.classReps) }

// NumCollapsed is the class count after dominance collapsing: classes
// with no dominated children, the only ones a test generator must target
// explicitly (a parent is provably detected by any child's test).
func (s *Set) NumCollapsed() int { return s.numLeaf }

// Reps returns the representative fault indices in deterministic order.
func (s *Set) Reps() []int32 { return s.classReps }

// ClassIndex returns the dense class index of fault i (the position of
// its representative in Reps).
func (s *Set) ClassIndex(i int32) int32 { return s.classIdx[i] }

// DomChildren returns the dense class indices dominated by class c:
// every pattern detecting a child class also detects class c.
func (s *Set) DomChildren(c int32) []int32 {
	return s.domChildren[s.domIdx[c]:s.domIdx[c+1]]
}

// Status returns the status of the fault's equivalence class.
func (s *Set) Status(i int32) Status { return s.status[s.Rep[i]] }

// SetStatus sets the status of fault i's whole equivalence class.
func (s *Set) SetStatus(i int32, st Status) { s.status[s.Rep[i]] = st }

// Counts tallies the uncollapsed universe by status.
func (s *Set) Counts() map[Status]int {
	out := make(map[Status]int)
	for i := range s.Faults {
		out[s.Status(int32(i))]++
	}
	return out
}

// Coverage returns fault coverage FC = detected / total and fault
// efficiency FE = (detected + untestable) / total, both over the
// uncollapsed universe, as fractions in [0,1]. Scan-credited faults count
// as detected (they are covered by the shift and flush tests).
func (s *Set) Coverage() (fc, fe float64) {
	c := s.Counts()
	det := c[Detected] + c[ScanCredit]
	tot := s.Total()
	if tot == 0 {
		return 0, 0
	}
	return float64(det) / float64(tot), float64(det+c[Untestable]) / float64(tot)
}

// CreditScan marks every still-undetected or aborted fault matched by pred
// as covered by the scan shift/flush tests. It returns the number of
// classes credited.
func (s *Set) CreditScan(pred func(Fault) bool) int {
	n := 0
	for _, r := range s.classReps {
		if s.status[r] != Undetected && s.status[r] != Aborted {
			continue
		}
		if pred(s.Faults[r]) {
			s.status[r] = ScanCredit
			n++
		}
	}
	return n
}
