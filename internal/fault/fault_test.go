package fault

import (
	"testing"

	"tpilayout/internal/circuitgen"
	"tpilayout/internal/netlist"
	"tpilayout/internal/stdcell"
)

func invChain(t *testing.T) *netlist.Netlist {
	t.Helper()
	lib := stdcell.Default()
	n := netlist.New("inv", lib)
	a := n.AddPI("a")
	y := n.AddNet("y")
	n.AddCell("g", lib.MustCell("INVX1"), []netlist.NetID{a}, y)
	n.AddPO("y", y)
	return n
}

func TestUniverseInverter(t *testing.T) {
	s := NewUniverse(invChain(t))
	// Sites: a stem, a→g branch, y stem, y→PO branch — 4 sites, 8 faults.
	if s.Total() != 8 {
		t.Fatalf("Total = %d, want 8", s.Total())
	}
	// All of a-sa0 ≡ y-sa1 and a-sa1 ≡ y-sa0: exactly 2 classes.
	if s.NumClasses() != 2 {
		t.Fatalf("NumClasses = %d, want 2", s.NumClasses())
	}
}

func TestUniverseAndGate(t *testing.T) {
	lib := stdcell.Default()
	n := netlist.New("and", lib)
	a := n.AddPI("a")
	b := n.AddPI("b")
	y := n.AddNet("y")
	n.AddCell("g", lib.MustCell("AND2X1"), []netlist.NetID{a, b}, y)
	n.AddPO("y", y)
	s := NewUniverse(n)
	if s.Total() != 12 {
		t.Fatalf("Total = %d, want 12", s.Total())
	}
	// Classes: {a0,b0,y0}, {a1}, {b1}, {y1} (branches folded into stems).
	if s.NumClasses() != 4 {
		t.Fatalf("NumClasses = %d, want 4", s.NumClasses())
	}
}

func TestFanoutBranchesStayDistinct(t *testing.T) {
	// A net with two loads: branch faults must not collapse into the stem.
	lib := stdcell.Default()
	n := netlist.New("fan", lib)
	a := n.AddPI("a")
	w := n.AddNet("w")
	y1 := n.AddNet("y1")
	y2 := n.AddNet("y2")
	n.AddCell("g0", lib.MustCell("BUFX1"), []netlist.NetID{a}, w)
	n.AddCell("g1", lib.MustCell("INVX1"), []netlist.NetID{w}, y1)
	n.AddCell("g2", lib.MustCell("INVX1"), []netlist.NetID{w}, y2)
	n.AddPO("y1", y1)
	n.AddPO("y2", y2)
	s := NewUniverse(n)
	// w's two branch pairs must be in different classes from each other.
	var b0 []int32
	for i, f := range s.Faults {
		if f.Net == w && f.Load >= 0 && f.SA == 0 {
			b0 = append(b0, int32(i))
		}
	}
	if len(b0) != 2 {
		t.Fatalf("found %d sa0 branch faults on w, want 2", len(b0))
	}
	if s.Rep[b0[0]] == s.Rep[b0[1]] {
		t.Error("distinct branches of a fanout stem were collapsed together")
	}
}

func TestStatusSharedAcrossClass(t *testing.T) {
	s := NewUniverse(invChain(t))
	// Find a-sa0 (stem) and y-sa1 (stem) — equivalent through the inverter.
	var aSA0, ySA1 int32 = -1, -1
	for i, f := range s.Faults {
		if f.Load != StemLoad {
			continue
		}
		name := s.N.Nets[f.Net].Name
		if name == "a" && f.SA == 0 {
			aSA0 = int32(i)
		}
		if name == "y" && f.SA == 1 {
			ySA1 = int32(i)
		}
	}
	if aSA0 < 0 || ySA1 < 0 {
		t.Fatal("stem faults not found")
	}
	if s.Rep[aSA0] != s.Rep[ySA1] {
		t.Fatal("a-sa0 and y-sa1 should be equivalent through an inverter")
	}
	s.SetStatus(aSA0, Detected)
	if s.Status(ySA1) != Detected {
		t.Error("status did not propagate across the equivalence class")
	}
}

func TestCoverageAndCounts(t *testing.T) {
	s := NewUniverse(invChain(t))
	reps := s.Reps()
	s.SetStatus(reps[0], Detected)
	s.SetStatus(reps[1], Untestable)
	fc, fe := s.Coverage()
	// One class detected (4 faults), one untestable (4 faults).
	if fc != 0.5 {
		t.Errorf("FC = %g, want 0.5", fc)
	}
	if fe != 1.0 {
		t.Errorf("FE = %g, want 1.0", fe)
	}
	c := s.Counts()
	if c[Detected] != 4 || c[Untestable] != 4 {
		t.Errorf("Counts = %v", c)
	}
}

func TestCreditScan(t *testing.T) {
	s := NewUniverse(invChain(t))
	n := s.CreditScan(func(f Fault) bool { return s.N.Nets[f.Net].Name == "a" })
	if n == 0 {
		t.Fatal("CreditScan matched nothing")
	}
	fc, _ := s.Coverage()
	if fc == 0 {
		t.Error("scan-credited faults must count toward FC")
	}
	// Already-credited classes must not be credited twice.
	if again := s.CreditScan(func(Fault) bool { return true }); again+n != len(s.Reps()) {
		t.Errorf("second CreditScan credited %d, want %d", again, len(s.Reps())-n)
	}
}

func TestNoFaultsOnClocksOrFillers(t *testing.T) {
	lib := stdcell.Default()
	n := netlist.New("clk", lib)
	clk, dom := n.AddClockPI("clk", 1000)
	d := n.AddPI("d")
	q := n.AddNet("q")
	ff := n.AddCell("ff", lib.MustCell("DFFX1"), []netlist.NetID{d, clk}, q)
	n.Cells[ff].Domain = dom
	n.AddPO("q", q)
	n.AddCell("fill", lib.MustCell("FILL4"), nil, netlist.NoNet)
	s := NewUniverse(n)
	for _, f := range s.Faults {
		if f.Net == clk {
			t.Fatalf("fault modeled on clock net: %+v", f)
		}
	}
	// d stem+branch (4) + q stem+PO (4): 8 faults.
	if s.Total() != 8 {
		t.Errorf("Total = %d, want 8", s.Total())
	}
}

func TestUniverseScalesOnGeneratedCircuit(t *testing.T) {
	lib := stdcell.Default()
	n, err := circuitgen.Generate(circuitgen.S38417Class().Scale(0.02), lib)
	if err != nil {
		t.Fatal(err)
	}
	s := NewUniverse(n)
	if s.Total() < 2*n.NumLiveCells() {
		t.Errorf("suspiciously few faults: %d for %d cells", s.Total(), n.NumLiveCells())
	}
	if s.NumClasses() >= s.Total() {
		t.Error("collapsing had no effect")
	}
	ratio := float64(s.NumClasses()) / float64(s.Total())
	if ratio > 0.8 || ratio < 0.2 {
		t.Errorf("collapse ratio %.2f outside plausible range [0.2,0.8]", ratio)
	}
}
