package flow

import (
	"fmt"

	"tpilayout/internal/atpg"
	"tpilayout/internal/netlist"
	"tpilayout/internal/tpi"
)

// SweepMode selects how a sweep schedules its levels.
//
// Both modes produce bit-identical Tables 1–3 for every level: the
// incremental engine reuses only exactness-preserving artifacts (the TPI
// prefix via tpi.Resume, the prewarmed derived caches via the incremental
// re-levelizer, and — opt-in via Config.ATPGMemo — the cross-level ATPG
// search memo), and deliberately
// re-runs the physical stages (placement, CTS, routing, extraction, STA)
// in full per level — reusing a prior level's placement through ECO
// legalization would produce valid but non-identical layouts, and this
// repo prefers exact over a documented tolerance. What changes between
// the modes is scheduling and wall-clock time only.
type SweepMode int

const (
	// SweepFull is the default oracle path: every level runs the complete
	// Figure 2 flow from the pristine prewarmed base, and levels fan out
	// across Config.Workers.
	SweepFull SweepMode = iota
	// SweepIncremental serializes the levels in ascending test-point
	// order and threads each level's artifacts into the next: level N+1
	// resumes TPI from level N's inserted points, re-levelizes only the
	// edited fanout cones, and (with Config.ATPGMemo) replays level N's
	// memoized PODEM searches. The worker pool applies inside each level
	// (fault-simulation shards), not across levels.
	SweepIncremental
)

// ParseSweepMode parses the -sweep-mode flag values. The empty string
// means SweepFull.
func ParseSweepMode(s string) (SweepMode, error) {
	switch s {
	case "", "full":
		return SweepFull, nil
	case "incremental", "incr":
		return SweepIncremental, nil
	}
	return SweepFull, fmt.Errorf("flow: unknown sweep mode %q (want full or incremental)", s)
}

func (m SweepMode) String() string {
	switch m {
	case SweepFull:
		return "full"
	case SweepIncremental:
		return "incremental"
	}
	return fmt.Sprintf("SweepMode(%d)", int(m))
}

// LevelArtifacts is the opaque handle threading one sweep level's
// reusable state into the next: the post-TPI netlist snapshot (taken
// before scan insertion, prewarmed so the next level's clone shares its
// derived caches), the inserted test points for tpi.Resume, the base
// flip-flop count the TP budget is computed from, and (when
// Config.ATPGMemo is set) the cross-level ATPG memo. Handles are
// produced and consumed by RunLevelChained; they are immutable once
// returned (the memo excepted, which the next chained level extends).
type LevelArtifacts struct {
	netlist *netlist.Netlist
	tps     *tpi.Result
	baseFF  int
	tpCount int
	memo    *atpg.Memo
}

// TPCount reports how many test points the artifact's netlist already
// contains (the resume prefix available to the next level).
func (a *LevelArtifacts) TPCount() int {
	if a == nil {
		return 0
	}
	return a.tpCount
}

// chainState carries the incremental-sweep plumbing through one
// runInPlace call: the inbound artifacts (nil for a cold start), the
// memo, and the outbound artifacts captured right after the TPI stage.
type chainState struct {
	in  *LevelArtifacts
	out *LevelArtifacts
	// memo is the cross-level ATPG memo to extend; nil means start a
	// fresh one. It is carried here (not only inside in) so the memo
	// survives a cold-start link in the chain.
	memo *atpg.Memo
}
