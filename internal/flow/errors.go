package flow

import (
	"errors"
	"fmt"
	"strings"

	"tpilayout/internal/supervise"
)

// StageError is the typed failure of one flow stage: which stage failed,
// at which test-point level, and why. Every error Run/RunContext returns
// wraps the underlying cause in a StageError, so callers can dispatch
// with errors.As:
//
//	var se *flow.StageError
//	if errors.As(err, &se) && se.Stage == flow.StageATPG { ... }
//
// A panic inside a stage (including one raised on a fault-simulation
// shard goroutine) is converted into a StageError whose Err is a
// *supervise.PanicError and whose Stack holds the panicking goroutine's
// stack — the process never crashes and sibling sweep workers are not
// poisoned.
type StageError struct {
	// Stage names the flow step that failed (one of the Stage* constants).
	Stage string
	// TPPercent is the test-point level of the failing run.
	TPPercent float64
	// Err is the underlying cause; context.Canceled / context.
	// DeadlineExceeded surface here on cancellation.
	Err error
	// Stack is the captured goroutine stack when the failure was a
	// recovered panic, nil otherwise.
	Stack []byte
}

// Stage names used in StageError.Stage, in flow order.
const (
	StageConfig  = "config"
	StageTPI     = "TPI"
	StageScan    = "scan"
	StagePlace   = "place"
	StageATPG    = "atpg"
	StageCTS     = "cts"
	StageECO     = "eco"
	StageRoute   = "route"
	StageExtract = "extract"
	StageSTA     = "sta"
	// StageSweep marks a failure in the sweep machinery itself, outside
	// any single flow stage (e.g. a panic while cloning the design).
	StageSweep = "sweep"
	// StageRun is not an error stage: it names the telemetry span that
	// wraps one whole flow run (one sweep level), under which the stage
	// spans above nest.
	StageRun = "run"
)

func (e *StageError) Error() string {
	return fmt.Sprintf("flow: %s (at %g%% TPs): %v", e.Stage, e.TPPercent, e.Err)
}

// Unwrap exposes the cause to errors.Is/As chains.
func (e *StageError) Unwrap() error { return e.Err }

// newStageError wraps err for a stage, hoisting a recovered panic's stack
// into the StageError.
func newStageError(stage string, tpPercent float64, err error) *StageError {
	se := &StageError{Stage: stage, TPPercent: tpPercent, Err: err}
	var pe *supervise.PanicError
	if errors.As(err, &pe) {
		se.Stack = pe.Stack
	}
	return se
}

// Validate checks a Config for parameter values that have no defined
// meaning anywhere downstream. It reports every violation in a single
// descriptive error (nil when the config is usable) so a caller fixing a
// config sees the whole list at once, not one complaint per run.
func (c *Config) Validate() error {
	var bad []string
	if c.TPPercent < 0 || c.TPPercent > 100 {
		bad = append(bad, fmt.Sprintf("TPPercent %g outside [0,100]", c.TPPercent))
	}
	if c.Workers < 0 {
		bad = append(bad, fmt.Sprintf("Workers %d negative (0 = GOMAXPROCS)", c.Workers))
	}
	if c.Place.TargetUtilization <= 0 || c.Place.TargetUtilization > 1 {
		bad = append(bad, fmt.Sprintf("place.TargetUtilization %g outside (0,1]", c.Place.TargetUtilization))
	}
	if c.TimingOptRounds < 0 {
		bad = append(bad, fmt.Sprintf("TimingOptRounds %d negative", c.TimingOptRounds))
	}
	if c.SweepMode != SweepFull && c.SweepMode != SweepIncremental {
		bad = append(bad, fmt.Sprintf("SweepMode %d unknown (want SweepFull or SweepIncremental)", int(c.SweepMode)))
	}
	if len(bad) == 0 {
		return nil
	}
	return fmt.Errorf("flow: invalid config: %s", strings.Join(bad, "; "))
}
