package flow

import (
	"errors"
	"strings"
	"testing"

	"tpilayout/internal/netlist"
	"tpilayout/internal/scan"
)

// Error-path coverage: the flow must fail loudly, with a stage-tagged
// error, rather than produce a half-built layout.

func TestFlowRejectsMissingScanConfig(t *testing.T) {
	n := design(t)
	cfg := Config{} // neither MaxChainLength nor MaxChains
	cfg.Place.TargetUtilization = 0.9
	_, err := Run(n, cfg)
	if err == nil || !strings.Contains(err.Error(), "scan") {
		t.Fatalf("err = %v, want scan-stage failure", err)
	}
}

func TestFlowRejectsBadUtilization(t *testing.T) {
	n := design(t)
	cfg := Config{Scan: scan.Options{MaxChainLength: 50}}
	cfg.Place.TargetUtilization = 1.5
	_, err := Run(n, cfg)
	if err == nil || !strings.Contains(err.Error(), "place") {
		t.Fatalf("err = %v, want place-stage failure", err)
	}
}

func TestFlowRejectsOverfullTPBudget(t *testing.T) {
	n := design(t)
	cfg := Config{Scan: scan.Options{MaxChainLength: 50}, SkipATPG: true}
	cfg.Place.TargetUtilization = 0.9
	// A valid TP budget with every net excluded: TPI runs out of
	// insertable nets and must fail at its own stage.
	cfg.TPPercent = 50
	cfg.ExcludeNets = map[netlist.NetID]bool{}
	for id := range n.Nets {
		cfg.ExcludeNets[netlist.NetID(id)] = true
	}
	_, err := Run(n, cfg)
	if err == nil || !strings.Contains(err.Error(), "TPI") {
		t.Fatalf("err = %v, want TPI-stage failure", err)
	}
	var se *StageError
	if !errors.As(err, &se) || se.Stage != StageTPI {
		t.Fatalf("err = %#v, want *StageError with Stage %q", err, StageTPI)
	}
}

func TestFlowDoesNotMutateInput(t *testing.T) {
	n := design(t)
	cells, nets, ffs := n.NumLiveCells(), len(n.Nets), n.NumFlipFlops()
	cfg := Config{Scan: scan.Options{MaxChainLength: 50}, SkipATPG: true}
	cfg.Place.TargetUtilization = 0.9
	cfg.TPPercent = 2
	if _, err := Run(n, cfg); err != nil {
		t.Fatal(err)
	}
	if n.NumLiveCells() != cells || len(n.Nets) != nets || n.NumFlipFlops() != ffs {
		t.Error("flow mutated the caller's design")
	}
}
