package flow

import (
	"tpilayout/internal/netlist"
)

// CriticalNets implements the preparation step of the Section 5
// discussion: run the flow once without test points, take the nets along
// each clock domain's critical path, and return them as a TPI exclusion
// set. Cell and net IDs are stable across the flow's internal clone, so
// the returned set applies directly to the original design.
func CriticalNets(design *netlist.Netlist, cfg Config) (map[netlist.NetID]bool, error) {
	base := cfg
	base.TPPercent = 0
	base.ExcludeNets = nil
	base.SkipATPG = true
	r, err := Run(design, base)
	if err != nil {
		return nil, err
	}
	ex := make(map[netlist.NetID]bool)
	for _, rep := range r.STA.PerDomain {
		for _, ci := range rep.PathCells {
			if int(ci) >= len(design.Cells) {
				continue // cell added by the DfT/CTS passes, not in the design
			}
			if out := r.Netlist.Cells[ci].Out; out != netlist.NoNet {
				ex[out] = true
			}
		}
	}
	return ex, nil
}
