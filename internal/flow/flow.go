// Package flow orchestrates the paper's complete tool flow (Figure 2):
//
//  1. TPI & scan insertion          (tpi, scan)
//  2. Floorplanning & placement     (place)
//  3. Layout-driven scan chain reordering + ATPG   (scan, atpg)
//  4. ECO: clock trees, fillers, routing           (place, cts, route)
//  5. Layout extraction             (extract)
//  6. Static timing analysis        (sta)
//
// One Run produces one layout plus every number the paper's Tables 1–3
// report for it.
//
// Execution is supervised: RunContext honors context cancellation with
// checkpoints inside every long stage, every failure is reported as a
// typed *StageError, and a panic anywhere in the flow (including on a
// fault-simulation shard goroutine) is converted into a StageError
// carrying the captured stack instead of crashing the process.
package flow

import (
	"context"
	"fmt"
	"math"
	"runtime/pprof"
	"time"

	"tpilayout/internal/atpg"
	"tpilayout/internal/cts"
	"tpilayout/internal/extract"
	"tpilayout/internal/fault"
	"tpilayout/internal/netlist"
	"tpilayout/internal/place"
	"tpilayout/internal/route"
	"tpilayout/internal/scan"
	"tpilayout/internal/sta"
	"tpilayout/internal/supervise"
	"tpilayout/internal/telemetry"
	"tpilayout/internal/testdata"
	"tpilayout/internal/tpi"
)

// Config selects the DfT and layout parameters of one flow run.
type Config struct {
	// TPPercent is the number of test points as a percentage of the
	// flip-flop count (the paper sweeps 0–5%).
	TPPercent float64
	// ExcludeNets blocks nets from TPI (critical-path exclusion).
	ExcludeNets map[netlist.NetID]bool

	// Workers bounds the concurrency of the flow: Sweep fans one layout
	// per worker, and Run forwards the value to the fault simulator's
	// shard count (unless ATPG.Workers overrides it). 0 means GOMAXPROCS,
	// 1 forces fully serial execution. Results are bit-identical for
	// every value — parallelism only changes wall-clock time.
	Workers int

	// Deadline bounds the ATPG effort of the run (forwarded to
	// ATPG.Deadline when that is zero): past it, deterministic pattern
	// generation stops, the remaining fault classes are marked aborted,
	// and the run completes with Result.Truncated set — FC/FE report what
	// was actually achieved, mirroring industrial abort semantics. The
	// zero value means no deadline. Deadline degrades the result;
	// cancelling the context aborts the run with an error.
	Deadline time.Time

	// StageHook, when non-nil, is called at the entry of every flow stage
	// with the stage name and the run's TP percentage. It is the legacy
	// entry-only shim over the telemetry layer: the hook fires exactly
	// when the stage's telemetry span opens, and the span's close (with
	// duration and error — guaranteed even when the stage panics) carries
	// the exit half of the pair to the Telemetry sinks. A panicking hook
	// exercises the same isolation path as a panicking stage (the run
	// returns a StageError, the process survives, the open span is
	// closed with the error).
	StageHook func(stage string, tpPercent float64)

	// Telemetry, when non-nil, traces the run: one "run" span wrapping
	// one child span per flow stage (enter/exit/duration/error), with
	// the stage counters of atpg/place/route/cts/sta attached. A nil
	// Telemetry costs one nil check per instrumentation site.
	Telemetry *telemetry.Tracer

	// TelemetrySpan, when non-nil, nests the run's spans under an
	// existing span instead of opening a new root — the sweep engine
	// parents each level's run span under its sweep-root span. It wins
	// over Telemetry.
	TelemetrySpan *telemetry.Span

	Scan  scan.Options
	Place place.Options
	ATPG  atpg.Options
	CTS   cts.Options
	Route route.Options
	STA   sta.Options

	// SweepMode selects full per-level reruns (the default oracle path)
	// or the incremental cross-level engine. Single runs ignore it; see
	// SweepMode's doc for the exactness contract.
	SweepMode SweepMode

	// ATPGMemo threads the cross-level PODEM memo through an incremental
	// sweep: each level replays the previous levels' still-valid searches
	// and records its own for the next. The memo is exact (results stay
	// bit-identical; see atpg.Memo), but measured net-negative on the
	// paper's sweeps — each level's TSFF retrofits land in nearly every
	// search's evaluated-driver footprint, so almost all entries
	// invalidate (replay rate ≈ 0 on s38417c) and the footprint
	// recording the misses pay costs ~23% sweep time and 3× allocations
	// for nothing. Off by default for that reason; the switch exists
	// because denser TP spacing shrinks the per-link edit and tilts the
	// balance. Ignored outside SweepIncremental; DESIGN.md §14 has the
	// ablation numbers.
	ATPGMemo bool

	// SkipATPG runs only the physical side (steps 2–6); Table 2/3
	// sweeps do not need patterns.
	SkipATPG bool

	// TimingOptRounds enables the timing-optimization design iterations
	// the paper's Section 5 discusses (and deliberately does not run for
	// its own tables): after STA, every combinational cell on a critical
	// path is swapped to its strongest drive variant and the physical
	// flow (placement, clock trees, routing, extraction, STA) is redone,
	// up to this many times. Speed is bought with silicon area, exactly
	// the trade the paper describes.
	TimingOptRounds int
}

// Result carries every artifact of one flow run.
type Result struct {
	Netlist *netlist.Netlist
	TPs     *tpi.Result
	Scan    *scan.Result
	Place   *place.Placement
	ATPG    *atpg.Result
	Faults  *fault.Set
	CTS     *cts.Result
	Route   *route.Result
	Par     *extract.Parasitics
	STA     *sta.Result

	// Truncated reports that the ATPG deadline expired before pattern
	// generation finished: the run is complete and valid, but FC/FE
	// cover only the detections achieved within the budget.
	Truncated bool

	// Telemetry is the run's finished span tree (stage durations,
	// counters, gauges), nil unless Config.Telemetry or TelemetrySpan
	// was set.
	Telemetry *telemetry.Snapshot

	Metrics Metrics
}

// Metrics is one row across the paper's three tables.
type Metrics struct {
	Circuit string

	// Table 1: test data.
	NumTP  int
	NumFF  int
	Chains int
	LMax   int
	Faults int
	// FaultClasses / CollapsedClasses mirror the ATPG result's structural
	// collapsing counters: equivalence classes, and classes remaining
	// after dominance removal. FC/FE stay defined over the full universe.
	FaultClasses     int
	CollapsedClasses int
	FC, FE           float64 // percent
	Patterns         int
	TDV              int64 // bits
	TAT              int64 // cycles

	// Truncated mirrors Result.Truncated: the ATPG deadline expired and
	// the Table 1 numbers reflect a budget-bounded run.
	Truncated bool

	// Table 2: silicon area.
	Cells       int
	Rows        int
	LRows       float64 // µm, total row length
	CoreArea    float64 // µm²
	FillerPct   float64 // % of core area in filler cells
	ChipArea    float64 // µm²
	LWires      float64 // µm
	AspectRatio float64

	// Table 3: timing, one entry per clock domain.
	Timing []DomainTiming
	// SlowNodes flags inaccurate (extrapolated) delays, as Pearl reports.
	SlowNodes int
}

// DomainTiming is one Table 3 row.
type DomainTiming struct {
	Domain   string
	TPOnPath int
	TcpPS    float64
	FmaxMHz  float64
	TWires   float64
	TIntr    float64
	TLoadDep float64
	TSetup   float64
	TSkew    float64
}

// Run executes the six flow steps on a fresh clone of design.
func Run(design *netlist.Netlist, cfg Config) (*Result, error) {
	return RunContext(context.Background(), design, cfg)
}

// RunContext is Run under supervision: the context cancels the run
// between (and inside) stages, every error is a *StageError naming the
// failing stage, and panics are isolated into errors. A cancellation
// lands within one work unit (one PODEM fault, one bisection cut, one
// routed net), not one flow.
func RunContext(ctx context.Context, design *netlist.Netlist, cfg Config) (*Result, error) {
	// Validate before cloning: an invalid config must fail without
	// touching the design at all.
	if verr := cfg.Validate(); verr != nil {
		return nil, newStageError(StageConfig, cfg.TPPercent, verr)
	}
	return RunInPlace(ctx, design.Clone(), cfg)
}

// RunInPlace is RunContext without the defensive clone: the flow edits
// design directly and Result.Netlist is design itself. Callers that
// already hold a private copy (the sweep engine clones once per level
// from a prewarmed base circuit) use this to avoid the double clone.
func RunInPlace(ctx context.Context, design *netlist.Netlist, cfg Config) (*Result, error) {
	return runInPlace(ctx, design, cfg, nil)
}

// runInPlace executes the flow, optionally under an incremental-sweep
// chain: with a non-nil chain the TPI stage resumes from the inbound
// artifacts' point prefix (design must then be a clone of the artifact
// netlist) and captures outbound artifacts for the next level.
func runInPlace(ctx context.Context, design *netlist.Netlist, cfg Config, chain *chainState) (res *Result, err error) {
	if verr := cfg.Validate(); verr != nil {
		return nil, newStageError(StageConfig, cfg.TPPercent, verr)
	}

	// stage tracks the currently-running step so both the deferred panic
	// handler and the cancellation checkpoints can name it; stageSpan is
	// that step's telemetry span (nil when telemetry is off).
	stage := StageConfig
	runSpan := cfg.runSpan()
	// flow.stage_ns collects the per-stage wall-time distribution of the
	// whole run (re-placed stages contribute one observation each), so a
	// trace or /metrics scrape can answer "where did the time go" without
	// replaying every span. Nil when telemetry is off.
	stageHist := runSpan.Histogram("flow.stage_ns")
	var stageSpan *telemetry.Span
	endStage := func(e error) {
		if stageHist != nil && stageSpan != nil {
			stageHist.Observe(int64(stageSpan.Elapsed()))
		}
		stageSpan.EndErr(e)
		stageSpan = nil
	}
	// The deferred close is what keeps span trees balanced on every exit:
	// a panic (recovered here) or an error return closes the open stage
	// span and the run span with the failure attached, so a trace always
	// shows where the time went — the asymmetry the entry-only StageHook
	// had.
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, newStageError(stage, cfg.TPPercent, supervise.AsPanicError(r))
		}
		if err != nil {
			endStage(err)
			runSpan.EndErr(err)
		}
	}()
	// Stage names ride on the goroutine's pprof labels (on top of any
	// run_id/tp_level labels the ctx already carries from RunLevel), so
	// profile samples attribute to the Fig. 2 stage that burned them.
	// Restored on exit: the goroutine may be a pooled sweep worker.
	defer pprof.SetGoroutineLabels(ctx)
	enter := func(s string) error {
		endStage(nil)
		stage = s
		stageSpan = runSpan.Child(s)
		pprof.SetGoroutineLabels(pprof.WithLabels(ctx, pprof.Labels("stage", s)))
		if cfg.StageHook != nil {
			cfg.StageHook(s, cfg.TPPercent)
		}
		if cerr := ctx.Err(); cerr != nil {
			return newStageError(s, cfg.TPPercent, cerr)
		}
		return nil
	}
	fail := func(e error) error { return newStageError(stage, cfg.TPPercent, e) }

	n := design
	res = &Result{Netlist: n}
	res.Metrics.Circuit = n.Name

	// Step 1: TPI and scan insertion.
	if err := enter(StageTPI); err != nil {
		return nil, err
	}
	// Under an incremental chain, n is a clone of the previous level's
	// post-TPI snapshot: the TP budget must be computed against the base
	// design's flip-flop count (the snapshot already contains one TSFF
	// per previous point), and insertion resumes from the existing
	// points. tpi.Resume's tail is byte-identical to a from-scratch
	// insertion, so everything downstream is too.
	ffBefore := n.NumFlipFlops()
	if chain != nil && chain.in != nil {
		ffBefore = chain.in.baseFF
	}
	tpCount := int(math.Round(cfg.TPPercent / 100 * float64(ffBefore)))
	var tps *tpi.Result
	if chain != nil && chain.in != nil {
		tps, err = tpi.Resume(n, chain.in.tps, tpi.Options{Count: tpCount, Exclude: cfg.ExcludeNets})
	} else {
		tps, err = tpi.Insert(n, tpi.Options{Count: tpCount, Exclude: cfg.ExcludeNets})
	}
	if err != nil {
		return nil, fail(err)
	}
	res.TPs = tps
	stageSpan.Counter("tpi.points").Add(int64(len(tps.Points)))
	if chain != nil {
		// Snapshot for the next level: post-TPI, pre-scan, prewarmed so
		// the next clone shares the derived caches (the prewarm itself
		// rides the incremental re-levelizer over the TPI edit log).
		snap := n.Clone()
		snap.Prewarm()
		memo := chain.memo
		if memo == nil && cfg.ATPGMemo {
			memo = atpg.NewMemo()
		}
		chain.out = &LevelArtifacts{
			netlist: snap, tps: tps, baseFF: ffBefore,
			tpCount: len(tps.Points), memo: memo,
		}
	}
	if err := enter(StageScan); err != nil {
		return nil, err
	}
	sc, err := scan.Insert(n, tps, cfg.Scan)
	if err != nil {
		return nil, fail(err)
	}
	res.Scan = sc
	stageSpan.Counter("scan.chains").Add(int64(sc.NumChains()))
	stageSpan.Counter("scan.max_length").Add(int64(sc.MaxLength()))

	// Step 2: floorplanning and placement.
	if err := enter(StagePlace); err != nil {
		return nil, err
	}
	popt := cfg.Place
	popt.Telemetry = stageSpan
	pl, err := place.PlaceContext(ctx, n, popt)
	if err != nil {
		return nil, fail(err)
	}
	res.Place = pl

	// Step 3: layout-driven scan chain reordering, then ATPG on the
	// updated netlist.
	scan.Reorder(n, sc, pl.Pos)
	if !cfg.SkipATPG {
		if err := enter(StageATPG); err != nil {
			return nil, err
		}
		set := fault.NewUniverse(n)
		aopt := cfg.ATPG
		aopt.Telemetry = stageSpan
		if chain != nil && chain.out != nil && chain.out.memo != nil && aopt.Memo == nil {
			// Replay the previous levels' PODEM searches (Config.ATPGMemo);
			// the memo's per-entry validation keeps the result bit-identical
			// to an unmemoized run.
			aopt.Memo = chain.out.memo
		}
		if aopt.Workers == 0 {
			aopt.Workers = cfg.Workers
		}
		if aopt.Deadline.IsZero() {
			aopt.Deadline = cfg.Deadline
		}
		// Always work on a private copy: cfg may be shared by concurrent
		// sweep workers, and the caller's map must not be mutated.
		aopt.Constraints = cloneConstraints(cfg.ATPG.Constraints)
		for k, v := range sc.CaptureConstraints() {
			aopt.Constraints[k] = v
		}
		for k, v := range tps.CaptureConstraints() {
			aopt.Constraints[k] = v
		}
		ar, err := atpg.RunContext(ctx, n, set, aopt)
		if err != nil {
			return nil, fail(err)
		}
		// Remaining undetected faults on the DfT infrastructure are
		// covered by the scan shift and flush tests.
		set.CreditScan(func(f fault.Fault) bool { return onDfT(n, f) })
		res.ATPG = ar
		res.Faults = set
		res.Truncated = ar.Truncated
	}

	// Steps 4–6 (and re-runs of step 2) live in physical(), so that
	// timing-optimization design iterations can redo the whole layout.
	physical := func() (float64, error) {
		if err := enter(StageCTS); err != nil {
			return 0, err
		}
		copt := cfg.CTS
		copt.Telemetry = stageSpan
		ct, err := cts.Insert(n, res.Place, copt)
		if err != nil {
			return 0, fail(err)
		}
		res.CTS = ct
		if err := enter(StageECO); err != nil {
			return 0, err
		}
		if err := res.Place.ECO(); err != nil {
			return 0, fail(err)
		}
		fillerArea := res.Place.InsertFillers()
		stageSpan.Counter("eco.fillers").Add(int64(len(res.Place.FillerCells)))
		if err := enter(StageRoute); err != nil {
			return 0, err
		}
		ropt := cfg.Route
		ropt.Telemetry = stageSpan
		rt, err := route.RouteContext(ctx, res.Place, ropt)
		if err != nil {
			return 0, fail(err)
		}
		res.Route = rt

		// Step 5: extraction.
		if err := enter(StageExtract); err != nil {
			return 0, err
		}
		res.Par = extract.Extract(n, res.Route)

		// Step 6: STA in application mode under the DfT constants.
		if err := enter(StageSTA); err != nil {
			return 0, err
		}
		sopt := cfg.STA
		sopt.Telemetry = stageSpan
		sopt.Constraints = cloneConstraints(cfg.STA.Constraints)
		sopt.Constraints[sc.SE] = 0
		for k, v := range tps.ApplicationConstraints() {
			sopt.Constraints[k] = v
		}
		st, err := sta.AnalyzeContext(ctx, n, res.Par, sopt)
		if err != nil {
			return 0, fail(err)
		}
		res.STA = st
		return fillerArea, nil
	}

	fillerArea, err := physical()
	if err != nil {
		return nil, err
	}

	// Optional Section 5 design iterations: upsize critical cells, tear
	// the physical-only artifacts down, and rebuild the layout.
	for round := 0; round < cfg.TimingOptRounds; round++ {
		if upsizeCriticalCells(n, res.STA) == 0 {
			break
		}
		cts.Remove(n, res.CTS)
		res.Place.RemoveFillers()
		if err := enter(StagePlace); err != nil {
			return nil, err
		}
		popt.Telemetry = stageSpan
		pl, err := place.PlaceContext(ctx, n, popt)
		if err != nil {
			return nil, fail(fmt.Errorf("re-place (round %d): %w", round+1, err))
		}
		res.Place = pl
		scan.Reorder(n, sc, pl.Pos)
		if fillerArea, err = physical(); err != nil {
			return nil, err
		}
	}

	res.fillMetrics(tpCount, fillerArea)
	// Incremental re-levelization accounting: the wall time the run's
	// analyses (ATPG view builds, STA, SCOAP) saved by releveling only
	// edited fanout cones instead of the whole graph. One counter for the
	// run total, one histogram observation per run for distributions
	// across sweep levels.
	if ls := n.LevelizeStats(); ls.Incremental > 0 {
		runSpan.Counter("flow.sta_incremental_ns").Add(ls.IncrementalNS)
		runSpan.Histogram("flow.sta_incremental_ns").Observe(ls.IncrementalNS)
		runSpan.Counter("flow.relevel_incremental").Add(int64(ls.Incremental))
		runSpan.Counter("flow.relevel_full").Add(int64(ls.Full + ls.Fallback))
	}
	endStage(nil)
	runSpan.End()
	res.Telemetry = runSpan.Snapshot()
	return res, nil
}

// runSpan opens the span that wraps one whole run: a child of
// TelemetrySpan when the caller (the sweep engine) provides a parent, a
// root span from Telemetry otherwise, nil when telemetry is off.
func (c *Config) runSpan() *telemetry.Span {
	if c.TelemetrySpan != nil {
		return c.TelemetrySpan.ChildTP(StageRun, c.TPPercent)
	}
	return c.Telemetry.StartSpan(StageRun, c.TPPercent)
}

// cloneConstraints returns a fresh constraints map seeded from m (which
// may be nil). Flow steps extend the map with DfT constants; copying keeps
// the caller's Config safe to share across concurrent runs.
func cloneConstraints(m map[netlist.NetID]int8) map[netlist.NetID]int8 {
	out := make(map[netlist.NetID]int8, len(m)+8)
	for k, v := range m {
		out[k] = v
	}
	return out
}

// upsizeCriticalCells swaps every combinational cell on a critical path
// to the strongest drive variant of its kind, returning how many changed.
func upsizeCriticalCells(n *netlist.Netlist, st *sta.Result) int {
	changed := 0
	for _, rep := range st.PerDomain {
		for _, ci := range rep.PathCells {
			c := &n.Cells[ci]
			k := c.Cell.Kind
			if k.IsSequential() || k.IsPhysicalOnly() {
				continue
			}
			stronger := n.Lib.Strongest(k, len(c.Ins))
			if stronger == nil || stronger == c.Cell || stronger.Drive >= c.Cell.Drive {
				continue
			}
			if err := n.SwapCell(ci, stronger.Name, nil); err == nil {
				changed++
			}
		}
	}
	return changed
}

// onDfT reports whether a fault sits on test infrastructure (TSFF muxes,
// scan flops, scan-enable buffers or their nets).
func onDfT(n *netlist.Netlist, f fault.Fault) bool {
	isDfT := func(id netlist.CellID) bool {
		if id == netlist.NoCell {
			return false
		}
		switch n.Cells[id].Tag {
		case netlist.TagTestMux, netlist.TagScanFF, netlist.TagSEBuffer:
			return true
		}
		return false
	}
	if isDfT(n.Nets[f.Net].Driver) {
		return true
	}
	if f.Load != fault.StemLoad {
		ld := n.CSR().Fanout(f.Net)[f.Load]
		return isDfT(ld.Cell)
	}
	return false
}

// fillMetrics assembles the Tables 1–3 row from the run artifacts.
func (r *Result) fillMetrics(tpCount int, fillerArea float64) {
	n := r.Netlist
	m := &r.Metrics
	m.NumTP = tpCount
	m.NumFF = n.NumFlipFlops()
	m.Chains = r.Scan.NumChains()
	m.LMax = r.Scan.MaxLength()
	m.Truncated = r.Truncated
	if r.Faults != nil {
		m.Faults = r.Faults.Total()
		m.FaultClasses = r.ATPG.FaultClasses
		m.CollapsedClasses = r.ATPG.CollapsedClasses
		fc, fe := r.Faults.Coverage()
		m.FC = fc * 100
		m.FE = fe * 100
		m.Patterns = len(r.ATPG.Patterns)
		m.TDV = testdata.TDV(m.Chains, m.LMax, m.Patterns)
		m.TAT = testdata.TAT(m.LMax, m.Patterns)
	}

	// The paper's #cells excludes filler cells (their area is its own
	// column).
	m.Cells = 0
	for ci := range n.Cells {
		if !n.Cells[ci].Dead && n.Cells[ci].Tag != netlist.TagFiller {
			m.Cells++
		}
	}
	m.Rows = r.Place.NumRows
	m.LRows = float64(r.Place.NumRows) * r.Place.RowLen
	m.CoreArea = r.Place.CoreArea()
	m.FillerPct = 100 * fillerArea / m.CoreArea
	m.ChipArea = r.Place.ChipArea()
	m.LWires = r.Route.Total
	m.AspectRatio = r.Place.AspectRatio()

	tpMux := make(map[netlist.CellID]bool)
	if r.TPs != nil {
		for _, tp := range r.TPs.Points {
			tpMux[tp.InMux] = true
			tpMux[tp.OutMux] = true
			tpMux[tp.FF] = true
		}
	}
	for dom, rep := range r.STA.PerDomain {
		dt := DomainTiming{
			Domain:   n.Domains[dom].Name,
			TcpPS:    rep.Tcp,
			FmaxMHz:  rep.FmaxMHz,
			TWires:   rep.TWires,
			TIntr:    rep.TIntrinsic,
			TLoadDep: rep.TLoadDep,
			TSetup:   rep.TSetup,
			TSkew:    rep.TSkew,
		}
		// Count distinct test points with a cell on the critical path.
		seen := map[string]bool{}
		for _, ci := range rep.PathCells {
			if tpMux[ci] {
				seen[tpBase(n.Cells[ci].Name)] = true
			}
		}
		dt.TPOnPath = len(seen)
		m.Timing = append(m.Timing, dt)
	}
	m.SlowNodes = r.STA.SlowNodes
}

// tpBase strips the _im/_ff/_om suffix of a TSFF component name.
func tpBase(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '_' {
			return name[:i]
		}
	}
	return name
}
