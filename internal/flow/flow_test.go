package flow

import (
	"testing"

	"tpilayout/internal/circuitgen"
	"tpilayout/internal/netlist"
	"tpilayout/internal/scan"
	"tpilayout/internal/stdcell"
)

func design(t testing.TB) *netlist.Netlist {
	t.Helper()
	lib := stdcell.Default()
	n, err := circuitgen.Generate(circuitgen.S38417Class().Scale(0.05), lib)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestFlowStages is the Figure 2 experiment: the full pipeline runs end
// to end and produces a coherent metrics row.
func TestFlowStages(t *testing.T) {
	n := design(t)
	cfg := Config{Scan: scan.Options{MaxChainLength: 25}}
	cfg.Place.TargetUtilization = 0.90
	cfg.TPPercent = 2
	r, err := Run(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := r.Metrics
	wantTP := int(float64(n.NumFlipFlops())*0.02 + 0.5)
	if m.NumTP != wantTP {
		t.Errorf("NumTP = %d, want %d", m.NumTP, wantTP)
	}
	if m.NumFF != n.NumFlipFlops()+wantTP {
		t.Errorf("NumFF = %d, want %d", m.NumFF, n.NumFlipFlops()+wantTP)
	}
	if m.LMax > 25 {
		t.Errorf("LMax = %d exceeds the chain limit", m.LMax)
	}
	if m.Faults == 0 || m.Patterns == 0 {
		t.Error("test-data metrics missing")
	}
	if m.FC < 80 || m.FC > 100 {
		t.Errorf("FC = %.1f%% out of range", m.FC)
	}
	if m.FE < m.FC {
		t.Errorf("FE %.1f%% < FC %.1f%%", m.FE, m.FC)
	}
	if m.TDV != 2*int64(m.Chains)*m.TAT {
		t.Error("TDV/TAT inconsistent with Eq. 1/2")
	}
	if m.CoreArea <= 0 || m.ChipArea < m.CoreArea || m.LWires <= 0 {
		t.Errorf("area metrics incoherent: %+v", m)
	}
	if len(m.Timing) != 1 || m.Timing[0].TcpPS <= 0 {
		t.Fatalf("timing metrics missing: %+v", m.Timing)
	}
	dt := m.Timing[0]
	sum := dt.TWires + dt.TIntr + dt.TLoadDep + dt.TSetup + dt.TSkew
	if diff := sum - dt.TcpPS; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("Eq. 3 violated: sum %.3f vs Tcp %.3f", sum, dt.TcpPS)
	}
	// The original design must not have been mutated.
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if n.NumFlipFlops() != 0 && r.Netlist == n {
		t.Error("flow mutated the input design")
	}
	if err := r.Netlist.Validate(); err != nil {
		t.Fatalf("flow output netlist invalid: %v", err)
	}
}

func TestBaselineHasNoTestPoints(t *testing.T) {
	n := design(t)
	cfg := Config{Scan: scan.Options{MaxChainLength: 25}, SkipATPG: true}
	cfg.Place.TargetUtilization = 0.90
	r, err := Run(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics.NumTP != 0 || len(r.TPs.Points) != 0 {
		t.Error("baseline run inserted test points")
	}
	if r.Metrics.NumFF != n.NumFlipFlops() {
		t.Error("baseline flop count changed")
	}
	for _, dt := range r.Metrics.Timing {
		if dt.TPOnPath != 0 {
			t.Error("baseline reports test points on the critical path")
		}
	}
}

func TestAreaGrowsWithTestPoints(t *testing.T) {
	n := design(t)
	cfg := Config{Scan: scan.Options{MaxChainLength: 25}, SkipATPG: true}
	cfg.Place.TargetUtilization = 0.90
	var prevCore, prevCells float64
	for i, pct := range []float64{0, 2.5, 5} {
		cfg.TPPercent = pct
		r, err := Run(n, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if float64(r.Metrics.Cells) <= prevCells {
				t.Errorf("cells did not grow at %.1f%% TPs", pct)
			}
			if r.Metrics.CoreArea < prevCore {
				t.Errorf("core area shrank at %.1f%% TPs", pct)
			}
		}
		prevCore = r.Metrics.CoreArea
		prevCells = float64(r.Metrics.Cells)
	}
}

func TestCriticalNetExclusion(t *testing.T) {
	n := design(t)
	cfg := Config{Scan: scan.Options{MaxChainLength: 25}, SkipATPG: true}
	cfg.Place.TargetUtilization = 0.90
	ex, err := CriticalNets(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex) == 0 {
		t.Fatal("no critical nets identified")
	}
	cfg.TPPercent = 3
	cfg.ExcludeNets = ex
	r, err := Run(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range r.TPs.Points {
		if ex[tp.Target] {
			t.Errorf("test point landed on excluded net %d", tp.Target)
		}
	}
}

func TestScanCreditRaisesCoverage(t *testing.T) {
	n := design(t)
	cfg := Config{Scan: scan.Options{MaxChainLength: 25}}
	cfg.Place.TargetUtilization = 0.90
	cfg.TPPercent = 3
	r, err := Run(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := r.Faults.Counts()
	if counts[0 /*fault.Undetected*/] == 0 {
		// Fine — but scan credit must have fired for the DfT cells.
		t.Log("all faults resolved")
	}
	scanCredited := 0
	for st, c := range counts {
		if st.String() == "scan-credit" {
			scanCredited = c
		}
	}
	if scanCredited == 0 {
		t.Error("no faults credited to scan shift/flush tests despite TSFFs present")
	}
}

// TestTimingOptRecoversSpeed exercises the Section 5 design iterations:
// upsizing critical cells and re-laying-out must not slow the circuit
// down, and buys any speed with extra cell area.
func TestTimingOptRecoversSpeed(t *testing.T) {
	n := design(t)
	cfg := Config{Scan: scan.Options{MaxChainLength: 25}, SkipATPG: true}
	cfg.Place.TargetUtilization = 0.90
	cfg.TPPercent = 3
	plain, err := Run(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.TimingOptRounds = 3
	opt, err := Run(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.Netlist.Validate(); err != nil {
		t.Fatalf("netlist invalid after timing optimization: %v", err)
	}
	if opt.Metrics.Timing[0].TcpPS > plain.Metrics.Timing[0].TcpPS {
		t.Errorf("timing optimization slowed the circuit: %.0f -> %.0f ps",
			plain.Metrics.Timing[0].TcpPS, opt.Metrics.Timing[0].TcpPS)
	}
	// Upsized cells are wider: the core cannot shrink.
	if opt.Metrics.CoreArea < plain.Metrics.CoreArea {
		t.Errorf("timing optimization shrank the core: %.0f -> %.0f",
			plain.Metrics.CoreArea, opt.Metrics.CoreArea)
	}
}
