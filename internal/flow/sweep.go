package flow

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"tpilayout/internal/netlist"
	"tpilayout/internal/scan"
	"tpilayout/internal/supervise"
	"tpilayout/internal/telemetry"
)

// runLabels builds the pprof label set attributing profile samples to
// one flow run: tp_level always, run_id when the service stamped one
// onto the telemetry tracer. Goroutines the stages spawn (fault-sim
// shards, sweep workers' children) inherit the labels, so a live
// /debug/pprof/profile sample is attributable to its run and level.
func runLabels(cfg Config, pct float64) pprof.LabelSet {
	kv := []string{"tp_level", strconv.FormatFloat(pct, 'g', -1, 64)}
	if rid := cfg.Telemetry.Attr("run_id"); rid != "" {
		kv = append(kv, "run_id", rid)
	}
	return pprof.Labels(kv...)
}

// ExperimentConfig returns the per-circuit flow configuration the paper
// describes: chains of at most 100 flops for s38417 and circuit 1 with
// 97% row utilization, at most 32 chains and 50% utilization for p26909.
func ExperimentConfig(circuit string) Config {
	cfg := Config{}
	switch circuit {
	case "p26909c", "p26909":
		cfg.Scan = scan.Options{MaxChains: 32}
		cfg.Place.TargetUtilization = 0.50
	default:
		cfg.Scan = scan.Options{MaxChainLength: 100}
		cfg.Place.TargetUtilization = 0.97
	}
	return cfg
}

// LevelResult is the outcome of one level of a partial-failure sweep:
// either Metrics (Err == nil) or the level's typed failure (Err != nil,
// normally a *StageError). TPPercent identifies the level either way.
type LevelResult struct {
	TPPercent float64
	Metrics   Metrics
	Err       error
}

// Sweep runs the flow for each test-point percentage and returns one
// metrics row per layout, in order. Each layout is generated from scratch
// (separate floorplans), exactly as the paper does.
//
// The layouts are independent, so Sweep fans them out over up to
// cfg.Workers goroutines (GOMAXPROCS when 0), each running the full
// Figure 2 flow on its own clone of design. Results are reassembled in
// input order and are bit-identical to a serial (Workers: 1) run; only
// the wall-clock time changes.
func Sweep(design *netlist.Netlist, cfg Config, tpPercents []float64) ([]Metrics, error) {
	return SweepContext(context.Background(), design, cfg, tpPercents)
}

// SweepContext is Sweep under supervision: cancelling the context stops
// every in-flight layout within one work unit and returns the context's
// error. All levels are attempted; if any fail, the error of the first
// failing level in input order is returned (use SweepPartial to also
// recover the levels that completed).
func SweepContext(ctx context.Context, design *netlist.Netlist, cfg Config, tpPercents []float64) ([]Metrics, error) {
	levels, err := SweepPartial(ctx, design, cfg, tpPercents)
	if err != nil {
		return nil, err
	}
	rows := make([]Metrics, len(levels))
	for i, lr := range levels {
		if lr.Err != nil {
			// Deterministic error reporting: the first failing level by
			// input order wins, matching what a serial run would return.
			return nil, fmt.Errorf("tpilayout: sweep at %.1f%%: %w", lr.TPPercent, lr.Err)
		}
		rows[i] = lr.Metrics
	}
	return rows, nil
}

// PrewarmBase clones design once and eagerly builds its derived caches
// (CSR adjacency, fanout view, levelization), so per-level clones share
// the warmed cache pointers instead of each rebuilding them — and no
// two workers ever race on a lazy build, because the returned base is
// immutable once prewarmed. It is the per-sweep setup step RunLevel
// expects, split out so a resuming caller (the service's checkpoint
// driver) can prewarm once and run individual levels à la carte.
func PrewarmBase(design *netlist.Netlist) *netlist.Netlist {
	base := design.Clone()
	base.Prewarm()
	return base
}

// RunLevel runs exactly one sweep level — the full Figure 2 flow at
// pct% test points on a fresh clone of the prewarmed base — and returns
// its LevelResult. It never panics: the worker-level recover that
// SweepPartial installs lives here, so a crashing level (inside a stage
// or outside, Clone included) degrades to LevelResult.Err, normally a
// *StageError wrapping a supervise.PanicError. cfg.TPPercent is
// overwritten with pct; cfg.TelemetrySpan (when non-nil) parents the
// level's run span, letting a resumed level join an existing sweep
// trace. This is the level-granular entry point checkpoint/resume and
// per-level retry are built on.
func RunLevel(ctx context.Context, base *netlist.Netlist, cfg Config, pct float64) (out LevelResult) {
	out.TPPercent = pct
	defer func() {
		if r := recover(); r != nil {
			pe := supervise.AsPanicError(r)
			out.Err = &StageError{Stage: StageSweep, TPPercent: pct, Err: pe, Stack: pe.Stack}
		}
	}()
	c := cfg
	c.TPPercent = pct
	// Each level runs in place on its own clone of the prewarmed base,
	// so the shared base stays strictly read-only inside the worker and
	// the flow pays no second defensive clone.
	var r *Result
	var err error
	pprof.Do(ctx, runLabels(c, pct), func(ctx context.Context) {
		r, err = RunInPlace(ctx, base.Clone(), c)
	})
	if err != nil {
		out.Err = err
		return out
	}
	out.Metrics = r.Metrics
	return out
}

// RunLevelChained is RunLevel with the incremental cross-level engine:
// when prev (the previous level's artifacts) is non-nil and its test-point
// prefix fits under this level's budget, the level runs on a clone of the
// previous level's post-TPI snapshot — resuming TPI, releveling only the
// edited cones, and (with cfg.ATPGMemo) replaying memoized PODEM searches
// — instead of the pristine base. It returns this level's artifacts for
// the next link of the chain (nil only when the TPI stage itself did not
// complete); the ATPG memo threads through even across a cold-start link.
// Both paths produce bit-identical LevelResults, and a failed level leaves
// the chain intact because the caller keeps the last good artifacts. Like
// RunLevel it never panics.
func RunLevelChained(ctx context.Context, base *netlist.Netlist, cfg Config, pct float64, prev *LevelArtifacts) (out LevelResult, arts *LevelArtifacts) {
	out.TPPercent = pct
	defer func() {
		if r := recover(); r != nil {
			pe := supervise.AsPanicError(r)
			out.Err = &StageError{Stage: StageSweep, TPPercent: pct, Err: pe, Stack: pe.Stack}
		}
	}()
	c := cfg
	c.TPPercent = pct
	// The resume prefix must fit under this level's budget: a level with
	// fewer points than the artifact snapshot already contains falls back
	// to the pristine base (the memo still carries over).
	chain := &chainState{}
	src := base
	if prev != nil {
		chain.memo = prev.memo
		budget := int(math.Round(pct / 100 * float64(prev.baseFF)))
		if prev.tpCount <= budget {
			chain.in = prev
			src = prev.netlist
		}
	}
	// Each level runs in place on its own clone, so the shared base (or
	// artifact snapshot) stays strictly read-only and the flow pays no
	// second defensive clone.
	var r *Result
	var err error
	pprof.Do(ctx, runLabels(c, pct), func(ctx context.Context) {
		r, err = runInPlace(ctx, src.Clone(), c, chain)
	})
	arts = chain.out
	if err != nil {
		out.Err = err
		return out, arts
	}
	out.Metrics = r.Metrics
	return out, arts
}

// SweepPartial is the graceful-degradation sweep: it runs every level and
// returns one LevelResult per TP percentage, in input order, so a failed,
// panicked, or timed-out level is reported in place while completed
// levels survive. The returned error is non-nil only for sweep-level
// problems (an invalid Config) — per-level failures live in the
// LevelResult.Err fields. Each worker is panic-isolated: one crashing
// level can neither kill the process nor poison its siblings.
func SweepPartial(ctx context.Context, design *netlist.Netlist, cfg Config, tpPercents []float64) ([]LevelResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	out := make([]LevelResult, len(tpPercents))
	for i, pct := range tpPercents {
		out[i].TPPercent = pct
	}
	// One sweep-root span parents every level's run span, so a trace of
	// a parallel sweep still reads as one tree: sweep → run(tp) →
	// stages. The -1 level marks the root as a cross-level aggregate.
	var sweepSpan *telemetry.Span
	if cfg.TelemetrySpan != nil {
		sweepSpan = cfg.TelemetrySpan.ChildTP(StageSweep, -1)
	} else {
		sweepSpan = cfg.Telemetry.StartSpan(StageSweep, -1)
	}
	defer sweepSpan.End()
	base := PrewarmBase(design)

	if cfg.SweepMode == SweepIncremental {
		// Serialized level chain in ascending TP order: each level's
		// artifacts (TPI prefix, prewarmed snapshot, ATPG memo) feed the
		// next, and results land back in input order. The worker pool
		// applies inside each level's fault-simulation shards instead of
		// across levels; results stay bit-identical to full mode.
		order := make([]int, len(tpPercents))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			return tpPercents[order[a]] < tpPercents[order[b]]
		})
		var arts *LevelArtifacts
		for _, i := range order {
			c := cfg
			c.TelemetrySpan = sweepSpan
			lr, next := RunLevelChained(ctx, base, c, tpPercents[i], arts)
			out[i] = lr
			if next != nil {
				arts = next
			}
		}
		return out, nil
	}

	runLevel := func(i int) {
		c := cfg
		c.TelemetrySpan = sweepSpan
		out[i] = RunLevel(ctx, base, c, tpPercents[i])
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tpPercents) {
		workers = len(tpPercents)
	}
	if workers <= 1 {
		for i := range tpPercents {
			runLevel(i)
		}
		return out, nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tpPercents) {
					return
				}
				runLevel(i)
			}
		}()
	}
	wg.Wait()
	return out, nil
}
