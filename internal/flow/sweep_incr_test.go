package flow

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"tpilayout/internal/circuitgen"
	"tpilayout/internal/netlist"
	"tpilayout/internal/stdcell"
)

// iscasFragment is a plain ISCAS'89-style .bench netlist, exercising the
// ReadBench import path end to end through the sweep.
const iscasFragment = `# differential-suite fragment
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = NAND(G0, G5)
G8 = NOR(G1, G6)
G9 = AND(G7, G8)
G10 = NAND(G9, G2)
G11 = OR(G9, G3)
G12 = NOT(G10)
G13 = XOR(G11, G5)
OUTPUT(G12)
OUTPUT(G13)
`

// diffCircuits builds every paper circuit class (at differential-suite
// scale) plus the ISCAS import, each with its paper configuration.
func diffCircuits(t *testing.T) map[string]*netlist.Netlist {
	t.Helper()
	lib := stdcell.Default()
	out := make(map[string]*netlist.Netlist)
	for name, spec := range map[string]circuitgen.Spec{
		"s38417c": circuitgen.S38417Class().Scale(0.04),
		"wctrl1":  circuitgen.WirelessCtrlClass().Scale(0.15),
		"p26909c": circuitgen.DSPCoreClass().Scale(0.02),
	} {
		n, err := circuitgen.Generate(spec, lib)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = n
	}
	iscas, err := circuitgen.ReadBench(strings.NewReader(iscasFragment), "iscas-frag", lib, 8000)
	if err != nil {
		t.Fatalf("iscas: %v", err)
	}
	out["iscas-frag"] = iscas
	return out
}

// TestSweepIncrementalMatchesFull is the full-vs-incremental differential
// suite: for every paper circuit class and an ISCAS import, the
// incremental engine must reproduce the full-rerun sweep bit for bit —
// identical Metrics and byte-identical Tables 1–3 — at every worker
// count (the pool applies inside a level in incremental mode).
func TestSweepIncrementalMatchesFull(t *testing.T) {
	levels := []float64{0, 1, 3}
	for name, n := range diffCircuits(t) {
		name, n := name, n
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			if testing.Short() && (name == "wctrl1" || name == "p26909c") {
				t.Skip("heavier differential circuits skipped in -short")
			}
			cfg := ExperimentConfig(name)
			cfg.Workers = 1
			ref, err := SweepPartial(context.Background(), n, cfg, levels)
			if err != nil {
				t.Fatalf("full sweep: %v", err)
			}
			refRows := CompletedMetrics(ref)
			if len(refRows) != len(levels) {
				t.Fatalf("full sweep completed %d/%d levels: %s",
					len(refRows), len(levels), FormatSweepFailures(ref))
			}
			// Workers 1/2/8 and both memo settings: the opt-in ATPG memo is
			// the riskiest exactness surface, so it gets the serial and the
			// widest-pool runs.
			for _, tc := range []struct {
				workers int
				memo    bool
			}{{1, false}, {1, true}, {2, false}, {8, true}} {
				icfg := cfg
				icfg.SweepMode = SweepIncremental
				icfg.Workers = tc.workers
				icfg.ATPGMemo = tc.memo
				got, err := SweepPartial(context.Background(), n, icfg, levels)
				if err != nil {
					t.Fatalf("incremental sweep (workers=%d memo=%v): %v", tc.workers, tc.memo, err)
				}
				gotRows := CompletedMetrics(got)
				if !reflect.DeepEqual(refRows, gotRows) {
					t.Fatalf("workers=%d memo=%v: incremental metrics differ from full\nfull:\n%s\nincremental:\n%s",
						tc.workers, tc.memo, FormatTable1(refRows), FormatTable1(gotRows))
				}
				for i, format := range []func([]Metrics) string{FormatTable1, FormatTable2, FormatTable3} {
					if f, g := format(refRows), format(gotRows); f != g {
						t.Fatalf("workers=%d memo=%v: Table %d not byte-identical\nfull:\n%s\nincremental:\n%s",
							tc.workers, tc.memo, i+1, f, g)
					}
				}
			}
		})
	}
}

// TestSweepIncrementalUnsortedLevels checks that a descending / shuffled
// level list still chains (ascending schedule, input-order results) and
// matches full mode.
func TestSweepIncrementalUnsortedLevels(t *testing.T) {
	lib := stdcell.Default()
	n, err := circuitgen.Generate(circuitgen.S38417Class().Scale(0.04), lib)
	if err != nil {
		t.Fatal(err)
	}
	levels := []float64{3, 0, 2}
	cfg := ExperimentConfig("s38417c")
	cfg.Workers = 1
	ref, err := SweepPartial(context.Background(), n, cfg, levels)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SweepMode = SweepIncremental
	got, err := SweepPartial(context.Background(), n, cfg, levels)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if got[i].TPPercent != ref[i].TPPercent {
			t.Fatalf("level %d: result order broken: %g vs %g", i, got[i].TPPercent, ref[i].TPPercent)
		}
		if !reflect.DeepEqual(ref[i].Metrics, got[i].Metrics) {
			t.Fatalf("level %.1f%%: metrics differ", ref[i].TPPercent)
		}
	}
}

// TestRunLevelChainedArtifacts locks the chain-handle contract: artifacts
// come back after every completed level, grow their TP prefix as the
// budget rises, and a shrinking budget falls back to the pristine base
// while still matching the unchained result.
func TestRunLevelChainedArtifacts(t *testing.T) {
	lib := stdcell.Default()
	n, err := circuitgen.Generate(circuitgen.S38417Class().Scale(0.04), lib)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ExperimentConfig("s38417c")
	cfg.Workers = 1
	cfg.ATPGMemo = true // the memo must thread through cold-start links too
	base := PrewarmBase(n)

	var arts *LevelArtifacts
	lastTP := -1
	for _, pct := range []float64{0, 2, 4} {
		lr, next := RunLevelChained(context.Background(), base, cfg, pct, arts)
		if lr.Err != nil {
			t.Fatalf("level %.0f: %v", pct, lr.Err)
		}
		if next == nil {
			t.Fatalf("level %.0f: no artifacts returned", pct)
		}
		if next.TPCount() < lastTP {
			t.Fatalf("level %.0f: TP prefix shrank: %d -> %d", pct, lastTP, next.TPCount())
		}
		lastTP = next.TPCount()
		ref := RunLevel(context.Background(), base, cfg, pct)
		if !reflect.DeepEqual(ref.Metrics, lr.Metrics) {
			t.Fatalf("level %.0f: chained metrics differ from unchained", pct)
		}
		arts = next
	}

	// Budget shrinks below the prefix: cold start, still exact.
	lr, next := RunLevelChained(context.Background(), base, cfg, 1, arts)
	if lr.Err != nil {
		t.Fatal(lr.Err)
	}
	ref := RunLevel(context.Background(), base, cfg, 1)
	if !reflect.DeepEqual(ref.Metrics, lr.Metrics) {
		t.Fatal("cold-start link: chained metrics differ from unchained")
	}
	if next == nil || next.TPCount() >= lastTP {
		t.Fatalf("cold-start link should return fresh, smaller artifacts (got %v)", next.TPCount())
	}
}
