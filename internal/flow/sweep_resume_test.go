package flow

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"tpilayout/internal/scan"
)

// TestRunLevelMatchesSweepPartial: running levels one at a time through
// the resume entry point (PrewarmBase + RunLevel) must produce metrics
// bit-identical to an uninterrupted SweepPartial over the same levels —
// the property that lets checkpoint/resume stitch tables no different
// from a never-crashed run.
func TestRunLevelMatchesSweepPartial(t *testing.T) {
	n := design(t)
	cfg := Config{Scan: scan.Options{MaxChainLength: 25}, Workers: 1}
	cfg.Place.TargetUtilization = 0.90
	levels := []float64{0, 2, 5}

	sweep, err := SweepPartial(context.Background(), n, cfg, levels)
	if err != nil {
		t.Fatal(err)
	}

	base := PrewarmBase(n)
	for i, pct := range levels {
		lr := RunLevel(context.Background(), base, cfg, pct)
		if lr.Err != nil {
			t.Fatalf("RunLevel(%.1f) failed: %v", pct, lr.Err)
		}
		if sweep[i].Err != nil {
			t.Fatalf("SweepPartial level %.1f failed: %v", pct, sweep[i].Err)
		}
		// Telemetry snapshots differ by construction; compare metrics.
		if !reflect.DeepEqual(lr.Metrics, sweep[i].Metrics) {
			t.Errorf("level %.1f: RunLevel metrics diverge from SweepPartial\nrun:   %+v\nsweep: %+v",
				pct, lr.Metrics, sweep[i].Metrics)
		}
	}
}

// TestRunLevelIsolatesPanics: a stage hook that panics degrades to a
// StageError carried in LevelResult.Err, never a process panic.
func TestRunLevelIsolatesPanics(t *testing.T) {
	n := design(t)
	cfg := Config{Scan: scan.Options{MaxChainLength: 25}}
	cfg.Place.TargetUtilization = 0.90
	cfg.StageHook = func(stage string, tp float64) {
		if stage == StageATPG {
			panic("injected stage crash")
		}
	}
	base := PrewarmBase(n)
	lr := RunLevel(context.Background(), base, cfg, 2)
	if lr.Err == nil {
		t.Fatal("panicking level returned no error")
	}
	var se *StageError
	if !errors.As(lr.Err, &se) {
		t.Fatalf("err = %T %v, want *StageError", lr.Err, lr.Err)
	}
	// The base must remain usable for a subsequent clean level.
	cfg.StageHook = nil
	if lr2 := RunLevel(context.Background(), base, cfg, 2); lr2.Err != nil {
		t.Fatalf("base poisoned by panicked sibling: %v", lr2.Err)
	}
}
