package flow

import (
	"fmt"
	"strings"
)

// FormatTable1 renders the paper's Table 1 (impact of TPI on test data)
// from a sweep's metrics rows. The first row is the 0-test-point baseline
// against which the reduction columns are computed.
func FormatTable1(rows []Metrics) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Impact of TPI on test data — %s\n", circuitName(rows))
	fmt.Fprintf(&b, "%5s %6s %7s %5s %8s %6s %6s %9s %7s %11s %7s %10s %7s\n",
		"#TP", "#FF", "#chains", "lmax", "#faults", "FC%", "FE%",
		"patterns", "dec.%", "TDV(bits)", "dec.%", "TAT(cyc)", "dec.%")
	base := rows[0]
	for _, m := range rows {
		fmt.Fprintf(&b, "%5d %6d %7d %5d %8d %6.2f %6.2f %9d %7s %11d %7s %10d %7s\n",
			m.NumTP, m.NumFF, m.Chains, m.LMax, m.Faults, m.FC, m.FE,
			m.Patterns, dec(float64(base.Patterns), float64(m.Patterns)),
			m.TDV, dec(float64(base.TDV), float64(m.TDV)),
			m.TAT, dec(float64(base.TAT), float64(m.TAT)))
	}
	return b.String()
}

// FormatTable2 renders the paper's Table 2 (impact of TPI on silicon
// area).
func FormatTable2(rows []Metrics) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Impact of TPI on silicon area — %s\n", circuitName(rows))
	fmt.Fprintf(&b, "%5s %7s %6s %10s %12s %7s %9s %12s %7s %12s\n",
		"#TP", "#cells", "#rows", "Lrows(um)", "core(um2)", "inc.%",
		"filler.%", "chip(um2)", "inc.%", "Lwires(um)")
	base := rows[0]
	for _, m := range rows {
		fmt.Fprintf(&b, "%5d %7d %6d %10.0f %12.0f %7s %9.2f %12.0f %7s %12.0f\n",
			m.NumTP, m.Cells, m.Rows, m.LRows, m.CoreArea,
			inc(base.CoreArea, m.CoreArea), m.FillerPct,
			m.ChipArea, inc(base.ChipArea, m.ChipArea), m.LWires)
	}
	return b.String()
}

// FormatTable3 renders the paper's Table 3 (impact of TPI on timing),
// one block per clock domain with the Eq. 3 decomposition.
func FormatTable3(rows []Metrics) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: Impact of TPI on timing — %s\n", circuitName(rows))
	fmt.Fprintf(&b, "%5s %8s %6s %9s %7s %9s %9s %10s %9s %8s %6s\n",
		"#TP", "domain", "#TPcp", "Tcp(ps)", "inc.%", "Fmax(MHz)",
		"Twires", "Tintrinsic", "Tload-dep", "Tsetup", "Tskew")
	if len(rows) == 0 {
		return b.String()
	}
	for d := range rows[0].Timing {
		base := rows[0].Timing[d]
		for _, m := range rows {
			t := m.Timing[d]
			fmt.Fprintf(&b, "%5d %8s %6d %9.0f %7s %9.1f %9.0f %10.0f %9.0f %8.0f %6.0f\n",
				m.NumTP, t.Domain, t.TPOnPath, t.TcpPS,
				inc(base.TcpPS, t.TcpPS), t.FmaxMHz,
				t.TWires, t.TIntr, t.TLoadDep, t.TSetup, t.TSkew)
		}
	}
	slow := rows[len(rows)-1].SlowNodes
	if slow > 0 {
		fmt.Fprintf(&b, "note: %d slow nodes (extrapolated delays) present and unresolved, as in the paper\n", slow)
	}
	return b.String()
}

// CompletedMetrics extracts the successful rows of a partial sweep, in
// level order — the rows the Format functions can render.
func CompletedMetrics(levels []LevelResult) []Metrics {
	var rows []Metrics
	for _, lr := range levels {
		if lr.Err == nil {
			rows = append(rows, lr.Metrics)
		}
	}
	return rows
}

// FormatSweepFailures renders the failed rows of a partial sweep, one
// clearly-marked line per failed level ("" when every level completed).
func FormatSweepFailures(levels []LevelResult) string {
	var b strings.Builder
	for _, lr := range levels {
		if lr.Err != nil {
			fmt.Fprintf(&b, "!! %g%% TPs FAILED: %v\n", lr.TPPercent, lr.Err)
		}
	}
	return b.String()
}

func circuitName(rows []Metrics) string {
	if len(rows) == 0 {
		return "(empty)"
	}
	return rows[0].Circuit
}

// dec formats a percentage decrease relative to base ("-" on the
// baseline row).
func dec(base, v float64) string {
	if base == 0 || v == base {
		return "-"
	}
	return fmt.Sprintf("%.1f", 100*(base-v)/base)
}

// inc formats a percentage increase relative to base.
func inc(base, v float64) string {
	if base == 0 || v == base {
		return "-"
	}
	return fmt.Sprintf("%+.2f", 100*(v-base)/base)
}
