package flow

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"tpilayout/internal/scan"
	"tpilayout/internal/telemetry"
)

// tracedConfig returns a small-circuit config with an NDJSON-sinked
// tracer attached.
func tracedConfig() (Config, *bytes.Buffer, *telemetry.NDJSONSink) {
	var buf bytes.Buffer
	sink := telemetry.NewNDJSONSink(&buf)
	cfg := Config{Scan: scan.Options{MaxChainLength: 25}}
	cfg.Place.TargetUtilization = 0.90
	cfg.TPPercent = 1
	cfg.Telemetry = telemetry.New(sink)
	return cfg, &buf, sink
}

// The Fig. 2 stages every successful traced run must cover, in flow
// order.
var wantStages = []string{StageTPI, StageScan, StagePlace, StageATPG,
	StageCTS, StageECO, StageRoute, StageExtract, StageSTA}

// TestRunSpanTree: a traced run yields Result.Telemetry — a "run" root
// whose children are exactly the Fig. 2 stages in flow order, with the
// stage counters attached, and whose duration is covered (±5%) by the
// sum of the stage durations.
func TestRunSpanTree(t *testing.T) {
	n := design(t)
	cfg, buf, sink := tracedConfig()
	var hooked []string
	cfg.StageHook = func(stage string, tp float64) { hooked = append(hooked, stage) }

	r, err := Run(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sn := r.Telemetry
	if sn == nil || sn.Stage != StageRun || sn.TPPercent != 1 {
		t.Fatalf("run snapshot missing or wrong: %+v", sn)
	}
	var got []string
	var stageSum int64
	for _, c := range sn.Children {
		got = append(got, c.Stage)
		stageSum += int64(c.Duration)
	}
	if strings.Join(got, ",") != strings.Join(wantStages, ",") {
		t.Fatalf("stage order = %v, want %v", got, wantStages)
	}
	// The StageHook shim fires at exactly the span openings.
	if strings.Join(hooked, ",") != strings.Join(wantStages, ",") {
		t.Fatalf("StageHook order = %v, want %v", hooked, wantStages)
	}
	if sn.Duration <= 0 || float64(stageSum) < 0.95*float64(sn.Duration) {
		t.Errorf("stage durations (%d ns) cover less than 95%% of the run (%d ns)",
			stageSum, int64(sn.Duration))
	}
	// Spot-check the counter taxonomy at its stage homes.
	for stage, counter := range map[string]string{
		StageTPI:   "tpi.points",
		StageATPG:  "atpg.patterns",
		StagePlace: "place.fm_moves",
		StageRoute: "route.nets",
		StageSTA:   "sta.domains",
		StageCTS:   "cts.buffers",
	} {
		st := sn.Find(stage)
		if st == nil {
			t.Fatalf("no %s span", stage)
		}
		if st.Counters[counter] == 0 {
			t.Errorf("%s: counter %s missing or zero (have %v)", stage, counter, st.Counters)
		}
	}
	if pat := sn.Find(StageATPG).Counters["atpg.patterns"]; pat != int64(len(r.ATPG.Patterns)) {
		t.Errorf("atpg.patterns = %d, want %d", pat, len(r.ATPG.Patterns))
	}
	if bt := sn.Counter("atpg.podem_backtracks"); bt == 0 {
		t.Log("note: zero PODEM backtracks on this circuit (legal, but unusual)")
	}

	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	trace, err := telemetry.ParseTrace(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !trace.Balanced() {
		t.Fatalf("NDJSON trace unbalanced: %v", trace.Unbalanced)
	}
}

// TestPanicClosesSpan is the StageHook-asymmetry regression test: the
// legacy hook fired on entry only, so a panicking stage left no record
// of where the time went. With the telemetry shim, a panic mid-stage
// must still close the open span — the NDJSON trace stays balanced and
// the failing stage's span_end carries the error.
func TestPanicClosesSpan(t *testing.T) {
	n := design(t)
	cfg, buf, sink := tracedConfig()
	cfg.StageHook = func(stage string, tp float64) {
		if stage == StageRoute {
			panic("hook detonated mid-flow")
		}
	}
	_, err := Run(n, cfg)
	if err == nil {
		t.Fatal("panicking stage returned nil error")
	}
	var se *StageError
	if !errors.As(err, &se) || se.Stage != StageRoute {
		t.Fatalf("err = %v, want StageError at route", err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	trace, perr := telemetry.ParseTrace(buf)
	if perr != nil {
		t.Fatal(perr)
	}
	if !trace.Balanced() {
		t.Fatalf("panic left unbalanced spans: %v", trace.Unbalanced)
	}
	var routeEnd, runEnd *telemetry.SpanRecord
	for i := range trace.Spans {
		switch trace.Spans[i].Stage {
		case StageRoute:
			routeEnd = &trace.Spans[i]
		case StageRun:
			runEnd = &trace.Spans[i]
		}
	}
	if routeEnd == nil || routeEnd.Err == "" {
		t.Fatalf("route span_end missing its error: %+v", routeEnd)
	}
	if runEnd == nil || runEnd.Err == "" {
		t.Fatalf("run span_end missing its error: %+v", runEnd)
	}
}

// TestCancelClosesSpan: a context error surfacing at a stage boundary
// also leaves a balanced trace with the error on the open spans.
func TestCancelClosesSpan(t *testing.T) {
	n := design(t)
	cfg, buf, sink := tracedConfig()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg.StageHook = func(stage string, tp float64) {
		if stage == StagePlace {
			cancel()
		}
	}
	_, err := RunContext(ctx, n, cfg)
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	trace, perr := telemetry.ParseTrace(buf)
	if perr != nil {
		t.Fatal(perr)
	}
	if !trace.Balanced() {
		t.Fatalf("cancel left unbalanced spans: %v", trace.Unbalanced)
	}
}

// TestTelemetryOffIsFree: without a tracer the run produces no snapshot
// and behaves identically.
func TestTelemetryOffIsFree(t *testing.T) {
	n := design(t)
	cfg := Config{Scan: scan.Options{MaxChainLength: 25}}
	cfg.Place.TargetUtilization = 0.90
	cfg.TPPercent = 1
	r, err := Run(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Telemetry != nil {
		t.Fatal("untraced run grew a telemetry snapshot")
	}
}
