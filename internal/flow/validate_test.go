package flow

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func validConfig() Config {
	var cfg Config
	cfg.Place.TargetUtilization = 0.90
	return cfg
}

// TestConfigValidate table-tests every rejection Validate knows, plus the
// accepted boundary values.
func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want []string // substrings the error must contain; empty = valid
	}{
		{"valid defaults", func(c *Config) {}, nil},
		{"boundary TPPercent 0", func(c *Config) { c.TPPercent = 0 }, nil},
		{"boundary TPPercent 100", func(c *Config) { c.TPPercent = 100 }, nil},
		{"boundary utilization 1", func(c *Config) { c.Place.TargetUtilization = 1 }, nil},
		{"negative TPPercent", func(c *Config) { c.TPPercent = -0.5 },
			[]string{"TPPercent -0.5", "[0,100]"}},
		{"overfull TPPercent", func(c *Config) { c.TPPercent = 100.01 },
			[]string{"TPPercent 100.01"}},
		{"negative Workers", func(c *Config) { c.Workers = -3 },
			[]string{"Workers -3"}},
		{"zero utilization", func(c *Config) { c.Place.TargetUtilization = 0 },
			[]string{"place.TargetUtilization 0", "(0,1]"}},
		{"negative utilization", func(c *Config) { c.Place.TargetUtilization = -0.2 },
			[]string{"place.TargetUtilization -0.2"}},
		{"overfull utilization", func(c *Config) { c.Place.TargetUtilization = 1.1 },
			[]string{"place.TargetUtilization 1.1"}},
		{"negative TimingOptRounds", func(c *Config) { c.TimingOptRounds = -1 },
			[]string{"TimingOptRounds -1"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := validConfig()
			tc.mut(&cfg)
			err := cfg.Validate()
			if len(tc.want) == 0 {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatal("Validate() = nil, want error")
			}
			for _, w := range tc.want {
				if !strings.Contains(err.Error(), w) {
					t.Errorf("error %q does not mention %q", err, w)
				}
			}
		})
	}
}

// TestConfigValidateReportsEveryViolation: a config broken in several ways
// yields one error naming all of them.
func TestConfigValidateReportsEveryViolation(t *testing.T) {
	cfg := Config{TPPercent: -1, Workers: -1, TimingOptRounds: -1}
	err := cfg.Validate()
	if err == nil {
		t.Fatal("Validate() = nil")
	}
	for _, w := range []string{"TPPercent", "Workers", "place.TargetUtilization", "TimingOptRounds"} {
		if !strings.Contains(err.Error(), w) {
			t.Errorf("combined error %q omits %q", err, w)
		}
	}
}

// TestRunRejectsInvalidConfigUpFront: RunContext fails at the config
// stage — before touching the design — with a StageError.
func TestRunRejectsInvalidConfigUpFront(t *testing.T) {
	cfg := validConfig()
	cfg.Workers = -1
	// Passing a nil design proves validation happens before any use of it.
	_, err := RunContext(context.Background(), nil, cfg)
	if err == nil {
		t.Fatal("RunContext accepted an invalid config")
	}
	var se *StageError
	if !errors.As(err, &se) || se.Stage != StageConfig {
		t.Fatalf("err = %v, want StageError at %q", err, StageConfig)
	}
}
