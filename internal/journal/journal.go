// Package journal is tpid's durable job journal: an append-only log of
// length-prefixed, CRC32C-framed records, fsync'd per append, with
// segment rotation and compacting snapshots.
//
// Record framing (all integers little-endian):
//
//	[u32 length][u32 crc32c][u8 type][payload …]
//
// where length = 1 + len(payload) and the CRC covers the type byte plus
// the payload. A record is valid only when its frame is complete and the
// CRC matches; replay stops at the first invalid frame, so a crash that
// tears the final append (partial write, lost fsync) costs exactly that
// one record — every complete record before it is recovered, and Open
// truncates the torn tail away so later appends extend a clean prefix.
//
// The log lives in a directory of numbered segment files
// (seg-NNNNNNNN.wal). Appends rotate to a fresh segment past a size
// threshold; the previous segment is fsync'd before the next one opens,
// so only the newest segment can ever carry a torn tail. Compact
// collapses everything written so far into a single snapshot record
// (snap-NNNNNNNN.snap, written atomically via rename) and deletes the
// segments it covers; Open replays the newest valid snapshot first,
// then the segments after it, in order.
//
// Fault injection for tests rides Options.Hook: it is consulted before
// every write, fsync, rotation, and snapshot, and returning an error
// fails that operation exactly as a bad disk would.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Type tags a record with its meaning. The journal itself treats
// payloads as opaque bytes; the service layer defines the schemas.
type Type uint8

const (
	// TypeSnapshot is a compacted state image; at most one leads a replay.
	TypeSnapshot Type = 1
	// TypeAccepted records a job accepted into the queue.
	TypeAccepted Type = 2
	// TypeLevelDone checkpoints one completed sweep level.
	TypeLevelDone Type = 3
	// TypeRetired records one run's jobs reaching a terminal state.
	TypeRetired Type = 4
	// TypeCanceled records a single job canceled by its client.
	TypeCanceled Type = 5
)

// Op names a journal operation for the fault-injection hook.
type Op string

const (
	OpAppend   Op = "append"
	OpFsync    Op = "fsync"
	OpRotate   Op = "rotate"
	OpSnapshot Op = "snapshot"
)

// Record is one replayed journal entry.
type Record struct {
	Type Type
	Data []byte
}

// Options configures a Journal.
type Options struct {
	// SegmentBytes is the rotation threshold (default 4 MiB): an append
	// that pushes the active segment past it opens a fresh segment.
	SegmentBytes int64
	// NoSync skips the per-append fsync (tests only; production appends
	// are durable before Append returns).
	NoSync bool
	// Hook, when non-nil, is consulted before each operation; a non-nil
	// return fails the operation (fault injection).
	Hook func(op Op) error
}

// ErrClosed is returned by operations on a closed journal.
var ErrClosed = errors.New("journal: closed")

const (
	headerBytes    = 8
	maxRecordBytes = 64 << 20 // sanity bound on the length prefix
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Journal is an open, appendable log. Safe for concurrent use.
type Journal struct {
	dir string
	opt Options

	mu      sync.Mutex
	f       *os.File
	seq     uint64 // active segment number
	size    int64  // active segment size
	total   int64  // bytes across all live segments
	appends int64  // records appended since Open
	closed  bool
}

// Open replays the journal in dir (creating it if needed) and returns
// the recovered records in append order — the newest valid snapshot
// first (as a TypeSnapshot record), then every complete record after
// it. A torn tail on the newest segment is truncated away; a torn or
// corrupt frame in the middle of the sequence (which fsync-before-
// rotate makes impossible short of disk corruption) is an error.
func Open(dir string, opt Options) (*Journal, []Record, error) {
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = 4 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	snaps, segs, err := scanDir(dir)
	if err != nil {
		return nil, nil, err
	}

	var records []Record
	var snapSeq uint64
	// Newest snapshot whose frame validates wins; older ones (and any
	// .tmp left by a crashed Compact) are garbage-collected below.
	for i := len(snaps) - 1; i >= 0; i-- {
		if data, ok := readSnapshot(filepath.Join(dir, snapName(snaps[i]))); ok {
			snapSeq = snaps[i]
			records = append(records, Record{Type: TypeSnapshot, Data: data})
			break
		}
	}

	j := &Journal{dir: dir, opt: opt}
	var live []uint64
	for _, seq := range segs {
		if seq <= snapSeq {
			os.Remove(filepath.Join(dir, segName(seq))) // covered by the snapshot
			continue
		}
		live = append(live, seq)
	}
	for _, seq := range snaps {
		if seq < snapSeq {
			os.Remove(filepath.Join(dir, snapName(seq)))
		}
	}
	removeTemps(dir)

	var lastSize int64
	for i, seq := range live {
		path := filepath.Join(dir, segName(seq))
		recs, valid, total, rerr := readSegment(path)
		if rerr != nil {
			return nil, nil, rerr
		}
		if valid < total && i < len(live)-1 {
			return nil, nil, fmt.Errorf("journal: segment %s torn at byte %d but later segments exist", segName(seq), valid)
		}
		if valid < total {
			// Torn tail on the newest segment: cut it back to the last
			// complete record so future appends extend a clean prefix.
			if terr := os.Truncate(path, valid); terr != nil {
				return nil, nil, fmt.Errorf("journal: truncating torn tail: %w", terr)
			}
		}
		records = append(records, recs...)
		j.total += valid
		lastSize = valid
	}

	if len(live) > 0 {
		j.seq = live[len(live)-1]
		j.size = lastSize
		f, oerr := os.OpenFile(filepath.Join(dir, segName(j.seq)), os.O_WRONLY|os.O_APPEND, 0o644)
		if oerr != nil {
			return nil, nil, fmt.Errorf("journal: %w", oerr)
		}
		j.f = f
	} else {
		j.seq = snapSeq + 1
		f, oerr := os.OpenFile(filepath.Join(dir, segName(j.seq)), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if oerr != nil {
			return nil, nil, fmt.Errorf("journal: %w", oerr)
		}
		j.f = f
		syncDir(dir)
	}
	return j, records, nil
}

// Read replays dir without opening it for writing and without mutating
// any file: the same records Open would return (tools, tests,
// invariant checks on a journal another process may still own).
func Read(dir string) ([]Record, error) {
	snaps, segs, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	var records []Record
	var snapSeq uint64
	for i := len(snaps) - 1; i >= 0; i-- {
		if data, ok := readSnapshot(filepath.Join(dir, snapName(snaps[i]))); ok {
			snapSeq = snaps[i]
			records = append(records, Record{Type: TypeSnapshot, Data: data})
			break
		}
	}
	for _, seq := range segs {
		if seq <= snapSeq {
			continue
		}
		recs, _, _, rerr := readSegment(filepath.Join(dir, segName(seq)))
		if rerr != nil {
			return nil, rerr
		}
		records = append(records, recs...)
	}
	return records, nil
}

// Append frames one record, writes it to the active segment, and (unless
// NoSync) fsyncs before returning — the record is durable on success.
// Appends that grow the segment past SegmentBytes rotate afterwards.
func (j *Journal) Append(t Type, data []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if err := j.hook(OpAppend); err != nil {
		return err
	}
	frame := frameRecord(t, data)
	if _, err := j.f.Write(frame); err != nil {
		// Best effort: cut back to the record boundary so a failed write
		// cannot leave a torn frame in the middle of the segment ahead
		// of later, successful appends.
		j.f.Truncate(j.size)
		j.f.Seek(j.size, 0)
		return fmt.Errorf("journal: append: %w", err)
	}
	j.size += int64(len(frame))
	j.total += int64(len(frame))
	j.appends++
	if !j.opt.NoSync {
		if err := j.hook(OpFsync); err != nil {
			return err
		}
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: fsync: %w", err)
		}
	}
	if j.size >= j.opt.SegmentBytes {
		return j.rotateLocked()
	}
	return nil
}

// Compact collapses everything appended so far into a single snapshot:
// state becomes the journal's new prefix, the segments it covers are
// deleted, and appends continue on a fresh segment. The snapshot file is
// written to a temp name, fsync'd, and renamed, so a crash at any point
// leaves either the old segments or the new snapshot — never neither.
func (j *Journal) Compact(state []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if err := j.hook(OpSnapshot); err != nil {
		return err
	}
	covered := j.seq
	if err := j.rotateLocked(); err != nil {
		return err
	}
	tmp := filepath.Join(j.dir, fmt.Sprintf("snap-%08d.tmp", covered))
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	if _, err := f.Write(frameRecord(TypeSnapshot, state)); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	final := filepath.Join(j.dir, snapName(covered))
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	syncDir(j.dir)

	// The snapshot is durable: everything it covers is garbage.
	snaps, segs, err := scanDir(j.dir)
	if err == nil {
		for _, seq := range segs {
			if seq <= covered {
				os.Remove(filepath.Join(j.dir, segName(seq)))
			}
		}
		for _, seq := range snaps {
			if seq < covered {
				os.Remove(filepath.Join(j.dir, snapName(seq)))
			}
		}
	}
	j.total = j.size
	return nil
}

// rotateLocked fsyncs and closes the active segment and opens the next.
func (j *Journal) rotateLocked() error {
	if err := j.hook(OpRotate); err != nil {
		return err
	}
	if !j.opt.NoSync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: rotate: %w", err)
		}
	}
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("journal: rotate: %w", err)
	}
	j.seq++
	f, err := os.OpenFile(filepath.Join(j.dir, segName(j.seq)), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: rotate: %w", err)
	}
	j.f = f
	j.size = 0
	syncDir(j.dir)
	return nil
}

// Close fsyncs and closes the active segment. Further operations fail
// with ErrClosed. Idempotent.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	var err error
	if !j.opt.NoSync {
		err = j.f.Sync()
	}
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Size returns the bytes held in live segments (snapshot excluded) —
// the compaction trigger the service watches.
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.total
}

// Appends returns how many records have been appended since Open.
func (j *Journal) Appends() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appends
}

// Segments returns the number of live segment files.
func (j *Journal) Segments() int {
	_, segs, err := scanDir(j.dir)
	if err != nil {
		return 1
	}
	return len(segs)
}

func (j *Journal) hook(op Op) error {
	if j.opt.Hook == nil {
		return nil
	}
	return j.opt.Hook(op)
}

// ---------------------------------------------------------------------------
// Framing and file-format helpers

// frameRecord encodes one record: length, CRC32C(type+payload), type,
// payload.
func frameRecord(t Type, data []byte) []byte {
	n := 1 + len(data)
	buf := make([]byte, headerBytes+n)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(n))
	buf[headerBytes] = byte(t)
	copy(buf[headerBytes+1:], data)
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(buf[headerBytes:], castagnoli))
	return buf
}

// readSegment decodes every complete, CRC-valid record of one segment.
// valid is the byte offset of the first invalid frame (== total when the
// whole segment parses).
func readSegment(path string) (recs []Record, valid, total int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("journal: %w", err)
	}
	off := 0
	for {
		if len(data)-off < headerBytes {
			break // torn or absent header
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		if n == 0 || n > maxRecordBytes {
			break // garbage length: treat as torn tail
		}
		if len(data)-off-headerBytes < n {
			break // torn payload
		}
		body := data[off+headerBytes : off+headerBytes+n]
		if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(data[off+4:]) {
			break // bit rot or torn overwrite
		}
		payload := make([]byte, n-1)
		copy(payload, body[1:])
		recs = append(recs, Record{Type: Type(body[0]), Data: payload})
		off += headerBytes + n
	}
	return recs, int64(off), int64(len(data)), nil
}

// readSnapshot validates and returns a snapshot file's payload.
func readSnapshot(path string) ([]byte, bool) {
	recs, valid, total, err := readSegment(path)
	if err != nil || valid != total || len(recs) != 1 || recs[0].Type != TypeSnapshot {
		return nil, false
	}
	return recs[0].Data, true
}

func segName(seq uint64) string  { return fmt.Sprintf("seg-%08d.wal", seq) }
func snapName(seq uint64) string { return fmt.Sprintf("snap-%08d.snap", seq) }

// scanDir lists snapshot and segment sequence numbers, each ascending.
func scanDir(dir string) (snaps, segs []uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, nil
		}
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	for _, e := range entries {
		var seq uint64
		switch {
		case matchSeq(e.Name(), "seg-", ".wal", &seq):
			segs = append(segs, seq)
		case matchSeq(e.Name(), "snap-", ".snap", &seq):
			snaps = append(snaps, seq)
		}
	}
	sort.Slice(segs, func(i, k int) bool { return segs[i] < segs[k] })
	sort.Slice(snaps, func(i, k int) bool { return snaps[i] < snaps[k] })
	return snaps, segs, nil
}

func matchSeq(name, prefix, suffix string, seq *uint64) bool {
	if len(name) != len(prefix)+8+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return false
	}
	var n uint64
	for _, c := range name[len(prefix) : len(prefix)+8] {
		if c < '0' || c > '9' {
			return false
		}
		n = n*10 + uint64(c-'0')
	}
	*seq = n
	return true
}

func removeTemps(dir string) {
	tmps, _ := filepath.Glob(filepath.Join(dir, "snap-*.tmp"))
	for _, t := range tmps {
		os.Remove(t)
	}
}

// syncDir fsyncs a directory so renames and creates within it are
// durable; best effort (some filesystems refuse directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
