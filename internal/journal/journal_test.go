package journal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// reopen closes j and replays its directory.
func reopen(t *testing.T, j *Journal, dir string, opt Options) (*Journal, []Record) {
	t.Helper()
	if j != nil {
		if err := j.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
	nj, recs, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return nj, recs
}

func payload(i int) []byte { return []byte(fmt.Sprintf("record-%04d", i)) }

// TestRoundTrip: appended records come back in order with types intact.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, recs, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	types := []Type{TypeAccepted, TypeLevelDone, TypeLevelDone, TypeRetired, TypeCanceled}
	for i, typ := range types {
		if err := j.Append(typ, payload(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if got := j.Appends(); got != int64(len(types)) {
		t.Fatalf("Appends = %d, want %d", got, len(types))
	}
	j, recs = reopen(t, j, dir, Options{NoSync: true})
	defer j.Close()
	if len(recs) != len(types) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(types))
	}
	for i, r := range recs {
		if r.Type != types[i] || !bytes.Equal(r.Data, payload(i)) {
			t.Fatalf("record %d = {%d %q}, want {%d %q}", i, r.Type, r.Data, types[i], payload(i))
		}
	}
	// Appends after reopen land after the replayed prefix.
	if err := j.Append(TypeRetired, payload(99)); err != nil {
		t.Fatal(err)
	}
	j2, recs2 := reopen(t, j, dir, Options{NoSync: true})
	defer j2.Close()
	if len(recs2) != len(types)+1 || !bytes.Equal(recs2[len(types)].Data, payload(99)) {
		t.Fatalf("post-reopen append not replayed: %d records", len(recs2))
	}
}

// TestEmptyPayloadAndLarge: zero-byte and multi-KiB payloads survive.
func TestEmptyPayloadAndLarge(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte{0xAB}, 128<<10)
	if err := j.Append(TypeAccepted, nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(TypeLevelDone, big); err != nil {
		t.Fatal(err)
	}
	j, recs := reopen(t, j, dir, Options{NoSync: true})
	defer j.Close()
	if len(recs) != 2 || len(recs[0].Data) != 0 || !bytes.Equal(recs[1].Data, big) {
		t.Fatalf("payload round-trip failed: %d records", len(recs))
	}
}

// TestRotation: appends past SegmentBytes open new segments, all replay.
func TestRotation(t *testing.T) {
	dir := t.TempDir()
	opt := Options{NoSync: true, SegmentBytes: 64}
	j, _, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		if err := j.Append(TypeLevelDone, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if segs := j.Segments(); segs < 2 {
		t.Fatalf("expected rotation, got %d segment(s)", segs)
	}
	j, recs := reopen(t, j, dir, opt)
	defer j.Close()
	if len(recs) != n {
		t.Fatalf("replayed %d records across segments, want %d", len(recs), n)
	}
	for i, r := range recs {
		if !bytes.Equal(r.Data, payload(i)) {
			t.Fatalf("record %d out of order: %q", i, r.Data)
		}
	}
}

// TestCompaction: Compact collapses the prefix into a snapshot that
// replays first, covered segments are deleted, and post-compact appends
// follow the snapshot.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	opt := Options{NoSync: true, SegmentBytes: 64}
	j, _, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := j.Append(TypeLevelDone, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	state := []byte("snapshot-state-v1")
	if err := j.Compact(state); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if err := j.Append(TypeRetired, payload(100)); err != nil {
		t.Fatal(err)
	}
	j, recs := reopen(t, j, dir, opt)
	defer j.Close()
	if len(recs) != 2 {
		t.Fatalf("post-compact replay = %d records, want snapshot+1", len(recs))
	}
	if recs[0].Type != TypeSnapshot || !bytes.Equal(recs[0].Data, state) {
		t.Fatalf("first record = {%d %q}, want snapshot", recs[0].Type, recs[0].Data)
	}
	if recs[1].Type != TypeRetired || !bytes.Equal(recs[1].Data, payload(100)) {
		t.Fatalf("second record = {%d %q}", recs[1].Type, recs[1].Data)
	}
	// Old segments are gone from disk.
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if len(segs) != 1 {
		t.Fatalf("live segments after compact = %d, want 1: %v", len(segs), segs)
	}
	// Size resets to the live tail.
	if sz := j.Size(); sz <= 0 {
		t.Fatalf("Size after compact+append = %d", sz)
	}
	// A second compact supersedes the first snapshot.
	if err := j.Compact([]byte("snapshot-state-v2")); err != nil {
		t.Fatal(err)
	}
	j, recs = reopen(t, j, dir, opt)
	defer j.Close()
	if len(recs) != 1 || string(recs[0].Data) != "snapshot-state-v2" {
		t.Fatalf("second snapshot not authoritative: %d records", len(recs))
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) != 1 {
		t.Fatalf("stale snapshots not pruned: %v", snaps)
	}
}

// TestCrashMidCompact: a leftover snap-*.tmp (crash between write and
// rename) is ignored and removed; the journal replays from segments.
func TestCrashMidCompact(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := j.Append(TypeAccepted, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	// Simulate the crash: a half-written tmp snapshot on disk.
	tmp := filepath.Join(dir, "snap-00000001.tmp")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, recs, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if len(recs) != 5 {
		t.Fatalf("replay with stale tmp = %d records, want 5", len(recs))
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("stale snapshot tmp not removed")
	}
}

// TestCorruptSnapshotFallsBack: a snapshot whose CRC fails is skipped in
// favor of an older valid one (or plain segment replay).
func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(TypeAccepted, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	// A snapshot claiming to cover a future segment, but corrupt.
	bad := frameRecord(TypeSnapshot, []byte("state"))
	bad[len(bad)-1] ^= 0xFF
	if err := os.WriteFile(filepath.Join(dir, "snap-00000009.snap"), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	j, recs, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if len(recs) != 3 || recs[0].Type != TypeAccepted {
		t.Fatalf("corrupt snapshot not skipped: %d records", len(recs))
	}
}

// TestTornTailExhaustive: for a journal of N records, cut the (single)
// segment at EVERY byte offset. Replay must recover exactly the records
// whose frames lie wholly before the cut, and the journal must accept
// further appends afterwards.
func TestTornTailExhaustive(t *testing.T) {
	base := t.TempDir()
	dir := filepath.Join(base, "orig")
	j, _, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	var boundaries []int64 // cumulative frame ends
	var off int64
	for i := 0; i < n; i++ {
		if err := j.Append(TypeLevelDone, payload(i)); err != nil {
			t.Fatal(err)
		}
		off += int64(headerBytes + 1 + len(payload(i)))
		boundaries = append(boundaries, off)
	}
	j.Close()
	seg := filepath.Join(dir, segName(1))
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(full)) != off {
		t.Fatalf("segment size %d != computed %d", len(full), off)
	}

	for cut := 0; cut <= len(full); cut++ {
		// Complete records strictly before the cut.
		want := 0
		for _, b := range boundaries {
			if b <= int64(cut) {
				want++
			}
		}
		cdir := filepath.Join(base, fmt.Sprintf("cut-%04d", cut))
		if err := os.MkdirAll(cdir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(cdir, segName(1)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		cj, recs, err := Open(cdir, Options{NoSync: true})
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		if len(recs) != want {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(recs), want)
		}
		for i, r := range recs {
			if !bytes.Equal(r.Data, payload(i)) {
				t.Fatalf("cut %d: record %d corrupted: %q", cut, i, r.Data)
			}
		}
		// The torn tail is gone: a fresh append then full replay works.
		if err := cj.Append(TypeRetired, []byte("after-cut")); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		cj, recs = reopen(t, cj, cdir, Options{NoSync: true})
		if len(recs) != want+1 || string(recs[want].Data) != "after-cut" {
			t.Fatalf("cut %d: post-recovery append lost (%d records)", cut, len(recs))
		}
		cj.Close()
		os.RemoveAll(cdir)
	}
}

// TestGarbageTail: random trailing garbage (not a prefix of a valid
// frame) is discarded like a torn record.
func TestGarbageTail(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := j.Append(TypeAccepted, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	seg := filepath.Join(dir, segName(1))
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xFF, 0xFF, 0xFF, 0x7F, 0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02})
	f.Close()
	j, recs, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if len(recs) != 4 {
		t.Fatalf("garbage tail replay = %d records, want 4", len(recs))
	}
}

// TestTornMidSequenceRejected: a torn frame in a non-final segment means
// real corruption (fsync-before-rotate forbids it) and must error.
func TestTornMidSequenceRejected(t *testing.T) {
	dir := t.TempDir()
	opt := Options{NoSync: true, SegmentBytes: 64}
	j, _, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := j.Append(TypeLevelDone, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if len(segs) < 2 {
		t.Fatalf("need ≥2 segments, got %d", len(segs))
	}
	// Corrupt the FIRST segment's tail.
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segs[0], data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, opt); err == nil {
		t.Fatal("Open accepted a torn non-final segment")
	}
}

// TestHookFaults: hook-injected errors fail the matching operation and
// the journal remains usable once the fault clears.
func TestHookFaults(t *testing.T) {
	dir := t.TempDir()
	var failOp Op
	boom := errors.New("injected disk error")
	opt := Options{NoSync: true, Hook: func(op Op) error {
		if op == failOp {
			return boom
		}
		return nil
	}}
	j, _, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	failOp = OpAppend
	if err := j.Append(TypeAccepted, payload(0)); !errors.Is(err, boom) {
		t.Fatalf("append fault = %v, want injected", err)
	}
	failOp = ""
	if err := j.Append(TypeAccepted, payload(0)); err != nil {
		t.Fatalf("append after fault cleared: %v", err)
	}
	failOp = OpSnapshot
	if err := j.Compact([]byte("s")); !errors.Is(err, boom) {
		t.Fatalf("snapshot fault = %v, want injected", err)
	}
	failOp = ""
	if err := j.Compact([]byte("s")); err != nil {
		t.Fatalf("compact after fault cleared: %v", err)
	}
}

// TestClosed: operations after Close fail with ErrClosed; Close is
// idempotent.
func TestClosed(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := j.Append(TypeAccepted, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if err := j.Compact(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Compact after Close = %v, want ErrClosed", err)
	}
}

// TestRead: the read-only replay matches Open's without touching files.
func TestRead(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(TypeAccepted, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	// Append garbage: Read must tolerate it WITHOUT truncating the file.
	seg := filepath.Join(dir, segName(1))
	before, _ := os.ReadFile(seg)
	f, _ := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	f.Write([]byte{1, 2, 3})
	f.Close()
	recs, err := Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("Read = %d records, want 3", len(recs))
	}
	after, _ := os.ReadFile(seg)
	if len(after) != len(before)+3 {
		t.Fatal("Read mutated the segment file")
	}
}
