// Package layoutviz renders Figure 3 of the paper: the layout after
// (a) floorplanning, (b) placement, and (c) routing, as standalone SVG
// documents. The drawings show the chip outline with the IO, power, and
// ground rings, the core rows, placed cells (colored by role), and the
// routed wires.
package layoutviz

import (
	"bytes"
	"fmt"

	"tpilayout/internal/netlist"
	"tpilayout/internal/place"
	"tpilayout/internal/route"
)

// Stage selects which of the three Figure 3 views to draw.
type Stage int

const (
	StageFloorplan Stage = iota // rows and rings only
	StagePlacement              // plus placed cells
	StageRouted                 // plus routed wires
)

// Options tunes the rendering.
type Options struct {
	// PixelsPerUM scales the drawing (default 4).
	PixelsPerUM float64
	// MaxNets caps the number of drawn nets in the routed view (default
	// 4000; the longest nets are drawn first).
	MaxNets int
}

// SVG renders the given stage of a placed (and, for StageRouted, routed)
// layout. r may be nil for the earlier stages.
func SVG(p *place.Placement, r *route.Result, stage Stage, opt Options) []byte {
	if opt.PixelsPerUM <= 0 {
		opt.PixelsPerUM = 4
	}
	if opt.MaxNets <= 0 {
		opt.MaxNets = 4000
	}
	s := opt.PixelsPerUM
	margin := p.Opt.RingMargin
	chipW := p.CoreW() + 2*margin
	chipH := p.CoreH() + 2*margin
	side := chipW
	if chipH > side {
		side = chipH // chip forced square, as in the flow
	}

	var b bytes.Buffer
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.2f %.2f">`+"\n",
		side*s, side*s, side, side)
	fmt.Fprintf(&b, `<rect width="%.2f" height="%.2f" fill="#ffffff"/>`+"\n", side, side)

	// Rings: IO (outer), power, ground.
	ring := func(inset, w float64, color string) {
		fmt.Fprintf(&b, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="none" stroke="%s" stroke-width="%.2f"/>`+"\n",
			inset, inset, side-2*inset, side-2*inset, color, w)
	}
	ring(margin*0.15, margin*0.25, "#444444") // IO ring
	ring(margin*0.50, margin*0.15, "#c0392b") // power ring
	ring(margin*0.75, margin*0.15, "#2980b9") // ground ring

	// Core origin (centered in the square chip).
	ox := (side - p.CoreW()) / 2
	oy := (side - p.CoreH()) / 2
	rowH := p.N.Lib.RowHeight

	// Rows with alternating strip shading (power strip top, ground
	// bottom of each row).
	for row := 0; row < p.NumRows; row++ {
		y := oy + float64(row)*rowH
		fmt.Fprintf(&b, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="#f4f6f7" stroke="#d5d8dc" stroke-width="0.05"/>`+"\n",
			ox, y, p.RowLen, rowH)
	}

	if stage >= StagePlacement {
		drawCells(&b, p, ox, oy)
	}
	if stage >= StageRouted && r != nil {
		drawWires(&b, p, r, ox, oy, opt.MaxNets)
	}
	fmt.Fprint(&b, "</svg>\n")
	return b.Bytes()
}

// tagColor maps cell roles to fill colors.
func tagColor(tag netlist.Tag, seq bool) string {
	switch tag {
	case netlist.TagTestMux:
		return "#e67e22" // test-point muxes: orange
	case netlist.TagScanFF:
		return "#8e44ad" // scan elements: purple
	case netlist.TagSEBuffer:
		return "#16a085"
	case netlist.TagClockBuf:
		return "#2980b9"
	case netlist.TagFiller:
		return "#ecf0f1"
	}
	if seq {
		return "#9b59b6"
	}
	return "#aab7b8"
}

func drawCells(b *bytes.Buffer, p *place.Placement, ox, oy float64) {
	n := p.N
	rowH := n.Lib.RowHeight
	for ci := range n.Cells {
		c := &n.Cells[ci]
		if c.Dead || !p.Placed(netlist.CellID(ci)) {
			continue
		}
		x := ox + p.X[ci]
		y := oy + float64(p.Row[ci])*rowH
		fmt.Fprintf(b, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" stroke="#7f8c8d" stroke-width="0.03"/>`+"\n",
			x, y+0.2, c.Cell.Width, rowH-0.4, tagColor(c.Tag, c.Cell.Kind.IsSequential()))
	}
}

func drawWires(b *bytes.Buffer, p *place.Placement, r *route.Result, ox, oy float64, maxNets int) {
	n := p.N
	fan := n.Fanouts()
	type job struct {
		id  netlist.NetID
		len float64
	}
	var jobs []job
	for id := range n.Nets {
		if r.NetLen[id] > 0 {
			jobs = append(jobs, job{netlist.NetID(id), r.NetLen[id]})
		}
	}
	// Longest nets first: they carry the visual structure.
	for i := 1; i < len(jobs); i++ {
		for j := i; j > 0 && jobs[j].len > jobs[j-1].len; j-- {
			jobs[j], jobs[j-1] = jobs[j-1], jobs[j]
		}
	}
	if len(jobs) > maxNets {
		jobs = jobs[:maxNets]
	}
	fmt.Fprint(b, `<g stroke="#2c3e50" stroke-width="0.08" opacity="0.35" fill="none">`+"\n")
	for _, jb := range jobs {
		nn := &n.Nets[jb.id]
		if nn.Driver == netlist.NoCell || !p.Placed(nn.Driver) {
			continue
		}
		dx, dy := p.Pos(nn.Driver)
		for _, ld := range fan[jb.id] {
			if ld.Cell == netlist.NoCell || !p.Placed(ld.Cell) {
				continue
			}
			lx, ly := p.Pos(ld.Cell)
			// L-shaped wire: horizontal then vertical.
			fmt.Fprintf(b, `<path d="M %.2f %.2f H %.2f V %.2f"/>`+"\n",
				ox+dx, oy+dy, ox+lx, oy+ly)
		}
	}
	fmt.Fprint(b, "</g>\n")
}
