package layoutviz

import (
	"bytes"
	"strings"
	"testing"

	"tpilayout/internal/circuitgen"
	"tpilayout/internal/place"
	"tpilayout/internal/route"
	"tpilayout/internal/stdcell"
)

func layout(t testing.TB) (*place.Placement, *route.Result) {
	t.Helper()
	lib := stdcell.Default()
	n, err := circuitgen.Generate(circuitgen.S38417Class().Scale(0.02), lib)
	if err != nil {
		t.Fatal(err)
	}
	p, err := place.Place(n, place.Options{TargetUtilization: 0.90})
	if err != nil {
		t.Fatal(err)
	}
	return p, route.Route(p, route.Options{})
}

// TestRenderStages reproduces Figure 3: three views with strictly
// increasing content.
func TestRenderStages(t *testing.T) {
	p, r := layout(t)
	fp := SVG(p, nil, StageFloorplan, Options{})
	pl := SVG(p, nil, StagePlacement, Options{})
	rt := SVG(p, r, StageRouted, Options{})
	for name, doc := range map[string][]byte{"floorplan": fp, "placement": pl, "routed": rt} {
		if !bytes.HasPrefix(doc, []byte("<svg")) || !bytes.Contains(doc, []byte("</svg>")) {
			t.Errorf("%s: not a complete SVG document", name)
		}
	}
	if len(pl) <= len(fp) {
		t.Error("placement view not larger than floorplan view")
	}
	if len(rt) <= len(pl) {
		t.Error("routed view not larger than placement view")
	}
	// The floorplan must show the rows and the three rings.
	if got := strings.Count(string(fp), "<rect"); got < p.NumRows+3 {
		t.Errorf("floorplan has %d rects, want at least rows+rings = %d", got, p.NumRows+3)
	}
	if !strings.Contains(string(rt), "<path") {
		t.Error("routed view has no wires")
	}
}

func TestMaxNetsCap(t *testing.T) {
	p, r := layout(t)
	small := SVG(p, r, StageRouted, Options{MaxNets: 10})
	big := SVG(p, r, StageRouted, Options{MaxNets: 100000})
	if len(small) >= len(big) {
		t.Error("MaxNets cap had no effect")
	}
}
