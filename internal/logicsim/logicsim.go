// Package logicsim is a levelized, 64-way bit-parallel logic simulator.
// Each net carries a 64-bit word, so one propagation pass evaluates 64
// input patterns at once — the workhorse representation for the fault
// simulator and for functional verification of DfT structures.
package logicsim

import (
	"fmt"

	"tpilayout/internal/netlist"
	"tpilayout/internal/stdcell"
)

// Sim simulates one netlist. The zero value is not usable; call New.
type Sim struct {
	N      *netlist.Netlist
	Levels *netlist.Levels
	// Val[net] holds 64 parallel pattern values for the net.
	Val []uint64
}

// New builds a simulator for n. The netlist must be combinationally
// acyclic.
func New(n *netlist.Netlist) (*Sim, error) {
	lv, err := n.Levelize()
	if err != nil {
		return nil, err
	}
	s := &Sim{N: n, Levels: lv, Val: make([]uint64, len(n.Nets))}
	for i := range n.Nets {
		if n.Nets[i].Const == 1 {
			s.Val[i] = ^uint64(0)
		}
	}
	return s, nil
}

// SetNet assigns a 64-pattern word to a net (a PI or flip-flop output).
func (s *Sim) SetNet(id netlist.NetID, w uint64) { s.Val[id] = w }

// Get returns the current word on a net.
func (s *Sim) Get(id netlist.NetID) uint64 { return s.Val[id] }

// Propagate evaluates every combinational cell in levelized order. Source
// nets (PIs, flip-flop outputs, constants) keep their current values.
func (s *Sim) Propagate() {
	for _, ci := range s.Levels.Order {
		c := &s.N.Cells[ci]
		s.Val[c.Out] = EvalCell(c, s.Val)
	}
}

// StepClock advances all flip-flops of the given clock domain by one clock
// edge (all domains when domain < 0): combinational logic is settled
// first, the flops capture, and the logic settles again. Scan flip-flops
// honor their se/si pins, so scan shifting works by setting the scan-enable
// net and stepping.
func (s *Sim) StepClock(domain int) {
	s.Propagate()
	next := make(map[netlist.NetID]uint64)
	for _, ci := range s.N.FlipFlops() {
		c := &s.N.Cells[ci]
		if domain >= 0 && c.Domain != domain {
			continue
		}
		next[c.Out] = s.ffNext(c)
	}
	for net, w := range next {
		s.Val[net] = w
	}
	s.Propagate()
}

// ffNext computes the next-state word of a flip-flop from current net
// values.
func (s *Sim) ffNext(c *netlist.Instance) uint64 {
	switch c.Cell.Kind {
	case stdcell.KindDff:
		return s.Val[c.Ins[c.Cell.FindInput("d")]]
	case stdcell.KindSdff:
		d := s.Val[c.Ins[c.Cell.FindInput("d")]]
		si := s.Val[c.Ins[c.Cell.FindInput("si")]]
		se := s.Val[c.Ins[c.Cell.FindInput("se")]]
		return (se & si) | (^se & d)
	}
	panic(fmt.Sprintf("logicsim: not a flip-flop: %s", c.Cell.Name))
}

// EvalCell evaluates one combinational cell against a net-value array.
// It is exported so that the fault simulator can re-evaluate single cells
// with perturbed inputs.
func EvalCell(c *netlist.Instance, val []uint64) uint64 {
	ins := c.Ins
	switch c.Cell.Kind {
	case stdcell.KindInv:
		return ^val[ins[0]]
	case stdcell.KindBuf:
		return val[ins[0]]
	case stdcell.KindNand:
		w := ^uint64(0)
		for _, in := range ins {
			w &= val[in]
		}
		return ^w
	case stdcell.KindNor:
		w := uint64(0)
		for _, in := range ins {
			w |= val[in]
		}
		return ^w
	case stdcell.KindAnd:
		w := ^uint64(0)
		for _, in := range ins {
			w &= val[in]
		}
		return w
	case stdcell.KindOr:
		w := uint64(0)
		for _, in := range ins {
			w |= val[in]
		}
		return w
	case stdcell.KindXor:
		return val[ins[0]] ^ val[ins[1]]
	case stdcell.KindXnor:
		return ^(val[ins[0]] ^ val[ins[1]])
	case stdcell.KindAoi21:
		return ^((val[ins[0]] & val[ins[1]]) | val[ins[2]])
	case stdcell.KindOai21:
		return ^((val[ins[0]] | val[ins[1]]) & val[ins[2]])
	case stdcell.KindMux2:
		a, b, sel := val[ins[0]], val[ins[1]], val[ins[2]]
		return (sel & b) | (^sel & a)
	}
	panic(fmt.Sprintf("logicsim: cannot evaluate %s cell", c.Cell.Kind))
}

// EvalNets evaluates a cell kind whose input nets are given as a flat
// NetID slice (e.g. a CSR fanin row) against a net-value array. It is the
// Instance-free twin of EvalCell for hot loops that iterate dense
// per-cell arrays instead of chasing Instance structs.
func EvalNets(kind stdcell.Kind, ins []netlist.NetID, val []uint64) uint64 {
	switch kind {
	case stdcell.KindInv:
		return ^val[ins[0]]
	case stdcell.KindBuf:
		return val[ins[0]]
	case stdcell.KindNand:
		w := ^uint64(0)
		for _, in := range ins {
			w &= val[in]
		}
		return ^w
	case stdcell.KindNor:
		w := uint64(0)
		for _, in := range ins {
			w |= val[in]
		}
		return ^w
	case stdcell.KindAnd:
		w := ^uint64(0)
		for _, in := range ins {
			w &= val[in]
		}
		return w
	case stdcell.KindOr:
		w := uint64(0)
		for _, in := range ins {
			w |= val[in]
		}
		return w
	case stdcell.KindXor:
		return val[ins[0]] ^ val[ins[1]]
	case stdcell.KindXnor:
		return ^(val[ins[0]] ^ val[ins[1]])
	case stdcell.KindAoi21:
		return ^((val[ins[0]] & val[ins[1]]) | val[ins[2]])
	case stdcell.KindOai21:
		return ^((val[ins[0]] | val[ins[1]]) & val[ins[2]])
	case stdcell.KindMux2:
		a, b, sel := val[ins[0]], val[ins[1]], val[ins[2]]
		return (sel & b) | (^sel & a)
	}
	panic(fmt.Sprintf("logicsim: cannot evaluate %s kind", kind))
}

// EvalWords evaluates a cell kind over explicit input words, used by unit
// tests and by fault injection on input pins.
func EvalWords(kind stdcell.Kind, in []uint64) uint64 {
	switch kind {
	case stdcell.KindInv:
		return ^in[0]
	case stdcell.KindBuf:
		return in[0]
	case stdcell.KindNand:
		w := ^uint64(0)
		for _, x := range in {
			w &= x
		}
		return ^w
	case stdcell.KindNor:
		w := uint64(0)
		for _, x := range in {
			w |= x
		}
		return ^w
	case stdcell.KindAnd:
		w := ^uint64(0)
		for _, x := range in {
			w &= x
		}
		return w
	case stdcell.KindOr:
		w := uint64(0)
		for _, x := range in {
			w |= x
		}
		return w
	case stdcell.KindXor:
		return in[0] ^ in[1]
	case stdcell.KindXnor:
		return ^(in[0] ^ in[1])
	case stdcell.KindAoi21:
		return ^((in[0] & in[1]) | in[2])
	case stdcell.KindOai21:
		return ^((in[0] | in[1]) & in[2])
	case stdcell.KindMux2:
		return (in[2] & in[1]) | (^in[2] & in[0])
	}
	panic(fmt.Sprintf("logicsim: cannot evaluate %s kind", kind))
}
