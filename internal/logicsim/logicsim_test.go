package logicsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tpilayout/internal/netlist"
	"tpilayout/internal/stdcell"
)

func TestEvalWordsTruthTables(t *testing.T) {
	// Exhaustive over a=0/1, b=1/0 packed into two bit positions plus a
	// third input c covering all 8 combinations in the low 8 bits.
	const (
		a uint64 = 0xAA // 10101010
		b uint64 = 0xCC // 11001100
		c uint64 = 0xF0 // 11110000
	)
	const mask uint64 = 0xFF
	cases := []struct {
		kind stdcell.Kind
		in   []uint64
		want uint64
	}{
		{stdcell.KindInv, []uint64{a}, ^a & mask},
		{stdcell.KindBuf, []uint64{a}, a},
		{stdcell.KindNand, []uint64{a, b}, ^(a & b) & mask},
		{stdcell.KindNand, []uint64{a, b, c}, ^(a & b & c) & mask},
		{stdcell.KindNor, []uint64{a, b}, ^(a | b) & mask},
		{stdcell.KindAnd, []uint64{a, b, c}, a & b & c},
		{stdcell.KindOr, []uint64{a, b}, a | b},
		{stdcell.KindXor, []uint64{a, b}, a ^ b},
		{stdcell.KindXnor, []uint64{a, b}, ^(a ^ b) & mask},
		{stdcell.KindAoi21, []uint64{a, b, c}, ^((a & b) | c) & mask},
		{stdcell.KindOai21, []uint64{a, b, c}, ^((a | b) & c) & mask},
		{stdcell.KindMux2, []uint64{a, b, c}, (c & b) | (^c & a)}, // s=c
	}
	for _, tc := range cases {
		got := EvalWords(tc.kind, tc.in) & mask
		if got != tc.want {
			t.Errorf("%v: got %08b want %08b", tc.kind, got, tc.want)
		}
	}
}

// buildComb creates a two-level circuit: y = !( (a NAND b) AND c ).
func buildComb(t testing.TB) (*netlist.Netlist, [3]netlist.NetID, netlist.NetID) {
	t.Helper()
	lib := stdcell.Default()
	n := netlist.New("comb", lib)
	a := n.AddPI("a")
	b := n.AddPI("b")
	c := n.AddPI("c")
	n1 := n.AddNet("n1")
	n2 := n.AddNet("n2")
	y := n.AddNet("y")
	n.AddCell("g1", lib.MustCell("NAND2X1"), []netlist.NetID{a, b}, n1)
	n.AddCell("g2", lib.MustCell("AND2X1"), []netlist.NetID{n1, c}, n2)
	n.AddCell("g3", lib.MustCell("INVX1"), []netlist.NetID{n2}, y)
	n.AddPO("y", y)
	return n, [3]netlist.NetID{a, b, c}, y
}

func TestPropagateMatchesFormula(t *testing.T) {
	n, in, y := buildComb(t)
	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b, c uint64) bool {
		s.SetNet(in[0], a)
		s.SetNet(in[1], b)
		s.SetNet(in[2], c)
		s.Propagate()
		want := ^(^(a & b) & c)
		return s.Get(y) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestConstNetsInitialized(t *testing.T) {
	lib := stdcell.Default()
	n := netlist.New("k", lib)
	one := n.AddConst(1)
	zero := n.AddConst(0)
	a := n.AddPI("a")
	y := n.AddNet("y")
	n.AddCell("g", lib.MustCell("AND2X1"), []netlist.NetID{a, one}, y)
	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	if s.Get(one) != ^uint64(0) || s.Get(zero) != 0 {
		t.Fatal("constant nets not initialized")
	}
	s.SetNet(a, 0x1234)
	s.Propagate()
	if s.Get(y) != 0x1234 {
		t.Errorf("AND with const1 = %#x, want 0x1234", s.Get(y))
	}
}

// buildScanPair builds two scan flip-flops in a chain:
// si -> sff1 -> sff2, with functional inputs d1, d2.
func buildScanPair(t testing.TB) (n *netlist.Netlist, d1, d2, si, se, q1, q2 netlist.NetID) {
	t.Helper()
	lib := stdcell.Default()
	n = netlist.New("scanpair", lib)
	clk, dom := n.AddClockPI("clk", 10000)
	d1 = n.AddPI("d1")
	d2 = n.AddPI("d2")
	si = n.AddPI("si")
	se = n.AddPI("se")
	q1 = n.AddNet("q1")
	q2 = n.AddNet("q2")
	f1 := n.AddCell("sff1", lib.MustCell("SDFFX1"), []netlist.NetID{d1, si, se, clk}, q1)
	f2 := n.AddCell("sff2", lib.MustCell("SDFFX1"), []netlist.NetID{d2, q1, se, clk}, q2)
	n.Cells[f1].Domain = dom
	n.Cells[f2].Domain = dom
	n.AddPO("so", q2)
	return n, d1, d2, si, se, q1, q2
}

func TestScanShiftAndCapture(t *testing.T) {
	n, d1, d2, si, se, q1, q2 := buildScanPair(t)
	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	// Shift two values in: se=1.
	s.SetNet(se, ^uint64(0))
	s.SetNet(si, 0xF0F0)
	s.StepClock(-1)
	s.SetNet(si, 0x00FF)
	s.StepClock(-1)
	if s.Get(q1) != 0x00FF || s.Get(q2) != 0xF0F0 {
		t.Fatalf("after shift: q1=%#x q2=%#x", s.Get(q1), s.Get(q2))
	}
	// Capture: se=0 loads functional inputs.
	s.SetNet(se, 0)
	s.SetNet(d1, 0x1111)
	s.SetNet(d2, 0x2222)
	s.StepClock(-1)
	if s.Get(q1) != 0x1111 || s.Get(q2) != 0x2222 {
		t.Fatalf("after capture: q1=%#x q2=%#x", s.Get(q1), s.Get(q2))
	}
}

func TestStepClockRespectsDomain(t *testing.T) {
	lib := stdcell.Default()
	n := netlist.New("two-dom", lib)
	clkA, domA := n.AddClockPI("clkA", 10000)
	clkB, domB := n.AddClockPI("clkB", 20000)
	dA := n.AddPI("dA")
	dB := n.AddPI("dB")
	qA := n.AddNet("qA")
	qB := n.AddNet("qB")
	fa := n.AddCell("ffA", lib.MustCell("DFFX1"), []netlist.NetID{dA, clkA}, qA)
	fb := n.AddCell("ffB", lib.MustCell("DFFX1"), []netlist.NetID{dB, clkB}, qB)
	n.Cells[fa].Domain = domA
	n.Cells[fb].Domain = domB
	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	s.SetNet(dA, 0xA)
	s.SetNet(dB, 0xB)
	s.StepClock(domA)
	if s.Get(qA) != 0xA {
		t.Error("domain-A flop did not capture on its own clock")
	}
	if s.Get(qB) != 0 {
		t.Error("domain-B flop captured on domain-A clock")
	}
}

func TestRandomCircuitSimulatesDeterministically(t *testing.T) {
	// Random layered circuit; two fresh simulators must agree bit-exactly.
	lib := stdcell.Default()
	n := netlist.New("rand", lib)
	rng := rand.New(rand.NewSource(7))
	var nets []netlist.NetID
	for i := 0; i < 8; i++ {
		nets = append(nets, n.AddPI("pi"))
	}
	kinds := []string{"NAND2X1", "NOR2X1", "XOR2X1", "AND2X1", "OR2X1", "INVX1", "MUX2X1"}
	for i := 0; i < 120; i++ {
		cn := kinds[rng.Intn(len(kinds))]
		cell := lib.MustCell(cn)
		ins := make([]netlist.NetID, len(cell.Inputs))
		for j := range ins {
			ins[j] = nets[rng.Intn(len(nets))]
		}
		out := n.AddNet("w")
		n.AddCell("g", cell, ins, out)
		nets = append(nets, out)
	}
	n.AddPO("y", nets[len(nets)-1])
	s1, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		for pi := 0; pi < 8; pi++ {
			w := rng.Uint64()
			s1.SetNet(n.PIs[pi].Net, w)
			s2.SetNet(n.PIs[pi].Net, w)
		}
		s1.Propagate()
		s2.Propagate()
		for id := range n.Nets {
			if s1.Get(netlist.NetID(id)) != s2.Get(netlist.NetID(id)) {
				t.Fatalf("trial %d: simulators diverge on net %d", trial, id)
			}
		}
	}
}
