package netlist

// CSR is the flat compressed-sparse-row adjacency of a netlist: one
// contiguous loads array indexed by per-net offsets (fanout direction) and
// one contiguous input-net array indexed by per-cell offsets (fanin
// direction). Hot loops (fault propagation, PODEM, STA, placement) scan
// these arrays sequentially instead of chasing the slice-of-slices
// Fanouts() index.
//
// A CSR is immutable once built; Netlist caches one per connectivity
// revision and Clone shares the cached pointer, so sweep levels cloned
// from a prewarmed base reuse the same arrays until their first edit.
type CSR struct {
	// FanoutIdx has len(Nets)+1 entries; the loads of net i are
	// FanoutLoads[FanoutIdx[i]:FanoutIdx[i+1]], in exactly the order the
	// legacy Fanouts() index produced them (live cells by ascending ID,
	// pins in order, then primary outputs by ascending index). Fault
	// Load indices are defined against this order.
	FanoutIdx   []int32
	FanoutLoads []Load

	// FaninIdx has len(Cells)+1 entries; the input nets of cell c are
	// FaninNets[FaninIdx[c]:FaninIdx[c+1]], positionally aligned with
	// Instance.Ins (NoNet placeholders included, dead cells included).
	FaninIdx  []int32
	FaninNets []NetID
}

// Fanout returns the loads of one net.
func (c *CSR) Fanout(net NetID) []Load {
	return c.FanoutLoads[c.FanoutIdx[net]:c.FanoutIdx[net+1]]
}

// FanoutLen returns the number of loads of one net without materializing
// the slice header.
func (c *CSR) FanoutLen(net NetID) int {
	return int(c.FanoutIdx[net+1] - c.FanoutIdx[net])
}

// Fanin returns the input nets of one cell, aligned with Instance.Ins.
func (c *CSR) Fanin(cell CellID) []NetID {
	return c.FaninNets[c.FaninIdx[cell]:c.FaninIdx[cell+1]]
}

// CSR returns the flat adjacency of the netlist, rebuilding it only when
// the connectivity revision changed since the last build. The result must
// not be modified.
func (n *Netlist) CSR() *CSR {
	if n.csr != nil && n.csrRev == n.connRev {
		return n.csr
	}
	c := &CSR{FanoutIdx: make([]int32, len(n.Nets)+1)}

	// Counting pass. Offsets are accumulated in FanoutIdx[net+1] so the
	// prefix sum lands directly in place.
	pins := 0
	for ci := range n.Cells {
		cell := &n.Cells[ci]
		pins += len(cell.Ins)
		if cell.Dead {
			continue
		}
		for _, net := range cell.Ins {
			if net != NoNet {
				c.FanoutIdx[net+1]++
			}
		}
	}
	for pi := range n.POs {
		if net := n.POs[pi].Net; net != NoNet {
			c.FanoutIdx[net+1]++
		}
	}
	for i := 1; i <= len(n.Nets); i++ {
		c.FanoutIdx[i] += c.FanoutIdx[i-1]
	}

	// Fill pass, in the exact legacy Fanouts() order: cells ascending
	// with pins in order, then primary outputs.
	c.FanoutLoads = make([]Load, c.FanoutIdx[len(n.Nets)])
	cursor := append([]int32(nil), c.FanoutIdx[:len(n.Nets)]...)
	for ci := range n.Cells {
		cell := &n.Cells[ci]
		if cell.Dead {
			continue
		}
		for pin, net := range cell.Ins {
			if net != NoNet {
				c.FanoutLoads[cursor[net]] = Load{Cell: CellID(ci), Pin: pin, PO: -1}
				cursor[net]++
			}
		}
	}
	for pi := range n.POs {
		if net := n.POs[pi].Net; net != NoNet {
			c.FanoutLoads[cursor[net]] = Load{Cell: NoCell, Pin: -1, PO: pi}
			cursor[net]++
		}
	}

	// Fanin: a positional copy of every cell's Ins.
	c.FaninIdx = make([]int32, len(n.Cells)+1)
	c.FaninNets = make([]NetID, 0, pins)
	for ci := range n.Cells {
		c.FaninNets = append(c.FaninNets, n.Cells[ci].Ins...)
		c.FaninIdx[ci+1] = int32(len(c.FaninNets))
	}

	n.csr, n.csrRev = c, n.connRev
	return c
}
