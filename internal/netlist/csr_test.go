package netlist_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"tpilayout/internal/circuitgen"
	"tpilayout/internal/netlist"
	"tpilayout/internal/stdcell"
	"tpilayout/internal/tpi"
)

// referenceAdjacency rebuilds the fanout/fanin maps the slow, obvious way,
// straight from the Instance arrays and in the exact order the legacy
// Fanouts() index defined (live cells ascending, pins in order, then POs).
// It is the ground truth the flat CSR must reproduce bit for bit, because
// fault Load indices are defined against that order.
func referenceAdjacency(n *netlist.Netlist) (fan [][]netlist.Load, fanin [][]netlist.NetID) {
	fan = make([][]netlist.Load, len(n.Nets))
	for ci := range n.Cells {
		c := &n.Cells[ci]
		if c.Dead {
			continue
		}
		for pin, net := range c.Ins {
			if net != netlist.NoNet {
				fan[net] = append(fan[net], netlist.Load{Cell: netlist.CellID(ci), Pin: pin, PO: -1})
			}
		}
	}
	for pi := range n.POs {
		if net := n.POs[pi].Net; net != netlist.NoNet {
			fan[net] = append(fan[net], netlist.Load{Cell: netlist.NoCell, Pin: -1, PO: pi})
		}
	}
	fanin = make([][]netlist.NetID, len(n.Cells))
	for ci := range n.Cells {
		fanin[ci] = append([]netlist.NetID(nil), n.Cells[ci].Ins...)
	}
	return fan, fanin
}

// referenceLevelize is an independent Kahn levelization over the naive
// adjacency, mirroring Levelize's source/sink semantics. Order is
// canonically (level, cell ID); the reference realizes that with a plain
// comparison sort, independent of Levelize's counting sort.
func referenceLevelize(n *netlist.Netlist, fan [][]netlist.Load) *netlist.Levels {
	combDriven := func(net netlist.NetID) bool {
		d := n.Nets[net].Driver
		if d == netlist.NoCell {
			return false
		}
		k := n.Cells[d].Cell.Kind
		return !k.IsSequential() && !k.IsPhysicalOnly()
	}
	isComb := func(ci int) bool {
		c := &n.Cells[ci]
		return !c.Dead && !c.Cell.Kind.IsSequential() && !c.Cell.Kind.IsPhysicalOnly()
	}
	lv := &netlist.Levels{
		CellLevel: make([]int, len(n.Cells)),
		NetLevel:  make([]int, len(n.Nets)),
	}
	pend := make([]int, len(n.Cells))
	var ready []netlist.CellID
	for ci := range n.Cells {
		lv.CellLevel[ci] = -1
		if !isComb(ci) {
			continue
		}
		for _, net := range n.Cells[ci].Ins {
			if net != netlist.NoNet && combDriven(net) {
				pend[ci]++
			}
		}
		if pend[ci] == 0 {
			ready = append(ready, netlist.CellID(ci))
		}
	}
	for len(ready) > 0 {
		ci := ready[0]
		ready = ready[1:]
		level := 0
		c := &n.Cells[ci]
		for _, net := range c.Ins {
			if net != netlist.NoNet && lv.NetLevel[net] >= level {
				level = lv.NetLevel[net]
			}
		}
		level++
		lv.CellLevel[ci] = level
		if level > lv.MaxLevel {
			lv.MaxLevel = level
		}
		lv.Order = append(lv.Order, ci)
		if c.Out == netlist.NoNet {
			continue
		}
		lv.NetLevel[c.Out] = level
		for _, ld := range fan[c.Out] {
			if ld.Cell == netlist.NoCell || !isComb(int(ld.Cell)) {
				continue
			}
			if pend[ld.Cell]--; pend[ld.Cell] == 0 {
				ready = append(ready, ld.Cell)
			}
		}
	}
	sort.Slice(lv.Order, func(i, j int) bool {
		a, b := lv.Order[i], lv.Order[j]
		if lv.CellLevel[a] != lv.CellLevel[b] {
			return lv.CellLevel[a] < lv.CellLevel[b]
		}
		return a < b
	})
	return lv
}

func checkAdjacency(t *testing.T, n *netlist.Netlist, label string) {
	t.Helper()
	fan, fanin := referenceAdjacency(n)
	csr := n.CSR()
	legacy := n.Fanouts()
	if got, want := len(csr.FanoutIdx), len(n.Nets)+1; got != want {
		t.Fatalf("%s: FanoutIdx len = %d, want %d", label, got, want)
	}
	for id := range n.Nets {
		net := netlist.NetID(id)
		want := fan[id]
		got := csr.Fanout(net)
		if len(got) != len(want) || csr.FanoutLen(net) != len(want) {
			t.Fatalf("%s: net %d fanout len = %d (FanoutLen %d), want %d",
				label, id, len(got), csr.FanoutLen(net), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("%s: net %d load %d = %+v, want %+v", label, id, k, got[k], want[k])
			}
			if legacy[id][k] != want[k] {
				t.Fatalf("%s: net %d legacy load %d = %+v, want %+v", label, id, k, legacy[id][k], want[k])
			}
		}
	}
	for ci := range n.Cells {
		got := csr.Fanin(netlist.CellID(ci))
		want := fanin[ci]
		if len(got) != len(want) {
			t.Fatalf("%s: cell %d fanin len = %d, want %d", label, ci, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("%s: cell %d fanin[%d] = %d, want %d", label, ci, k, got[k], want[k])
			}
			// Flat pin addressing must agree with the slice accessor.
			if flat := csr.FaninNets[csr.FaninIdx[ci]+int32(k)]; flat != want[k] {
				t.Fatalf("%s: cell %d flat fanin[%d] = %d, want %d", label, ci, k, flat, want[k])
			}
		}
	}

	lv, err := n.Levelize()
	if err != nil {
		t.Fatalf("%s: Levelize: %v", label, err)
	}
	ref := referenceLevelize(n, fan)
	if lv.MaxLevel != ref.MaxLevel || len(lv.Order) != len(ref.Order) {
		t.Fatalf("%s: levelize shape (max %d, %d cells) != reference (max %d, %d cells)",
			label, lv.MaxLevel, len(lv.Order), ref.MaxLevel, len(ref.Order))
	}
	for i := range ref.Order {
		if lv.Order[i] != ref.Order[i] {
			t.Fatalf("%s: Order[%d] = %d, want %d", label, i, lv.Order[i], ref.Order[i])
		}
	}
	for ci := range ref.CellLevel {
		if lv.CellLevel[ci] != ref.CellLevel[ci] {
			t.Fatalf("%s: CellLevel[%d] = %d, want %d", label, ci, lv.CellLevel[ci], ref.CellLevel[ci])
		}
	}
	for id := range ref.NetLevel {
		if lv.NetLevel[id] != ref.NetLevel[id] {
			t.Fatalf("%s: NetLevel[%d] = %d, want %d", label, id, lv.NetLevel[id], ref.NetLevel[id])
		}
	}
}

// TestCSRMatchesReference differentially checks the flat CSR adjacency
// (and the levelization derived from it) against a naive rebuild from the
// Instance arrays, on randomized circuitgen netlists — fresh, after TPI
// (the dirty/rebuild path), and after further random structural edits.
func TestCSRMatchesReference(t *testing.T) {
	lib := stdcell.Default()
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			spec := circuitgen.Spec{
				Name:     fmt.Sprintf("rand%d", seed),
				Seed:     seed * 977,
				NumPI:    4 + rng.Intn(12),
				NumPO:    4 + rng.Intn(12),
				NumFF:    8 + rng.Intn(40),
				NumGates: 60 + rng.Intn(300),
				Domains:  []circuitgen.DomainSpec{{Name: "clk", PeriodPS: 8000, Frac: 1.0}},
			}
			if seed%2 == 0 {
				spec.HardGroups, spec.SubCones, spec.HardWidth = 1, 3, 4
			}
			n, err := circuitgen.Generate(spec, lib)
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			checkAdjacency(t, n, "fresh")

			// TPI mutates connectivity (mux/FF insertion on ranked nets):
			// the cached CSR must be invalidated and rebuilt consistently.
			if _, err := tpi.Insert(n, tpi.Options{Count: 3, Reanalyze: 2}); err != nil {
				t.Fatalf("tpi.Insert: %v", err)
			}
			checkAdjacency(t, n, "post-TPI")

			// A few more raw edits through every mutating entry point.
			for i := 0; i < 4; i++ {
				id := netlist.NetID(rng.Intn(len(n.Nets)))
				n.InsertOnNet(fmt.Sprintf("tb%d", i), "BUFX1", id, nil)
			}
			checkAdjacency(t, n, "post-edit")
		})
	}

	t.Run("paper-circuit", func(t *testing.T) {
		t.Parallel()
		n, err := circuitgen.Generate(circuitgen.S38417Class().Scale(0.02), lib)
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		checkAdjacency(t, n, "s38417c-scaled")
	})
}

// TestCSRDirtySplit locks the connectivity/attribute revision split: an
// attribute-only swap (same kind, same pin map) must keep the cached CSR
// pointer alive, while a connectivity edit must invalidate it.
func TestCSRDirtySplit(t *testing.T) {
	lib := stdcell.Default()
	n, err := circuitgen.Generate(circuitgen.Spec{
		Name: "dirty", Seed: 7, NumPI: 6, NumPO: 6, NumFF: 10, NumGates: 80,
		Domains: []circuitgen.DomainSpec{{Name: "clk", PeriodPS: 8000, Frac: 1.0}},
	}, lib)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	before := n.CSR()

	// Find a NAND2X1 to upsize: a drive-strength swap keeps the net↔pin
	// graph intact, so the adjacency cache must survive.
	swapped := false
	for ci := range n.Cells {
		if !n.Cells[ci].Dead && n.Cells[ci].Cell.Name == "NAND2X1" {
			if err := n.SwapCell(netlist.CellID(ci), "NAND2X2", nil); err != nil {
				t.Fatalf("SwapCell: %v", err)
			}
			swapped = true
			break
		}
	}
	if !swapped {
		t.Fatal("no NAND2X1 in generated circuit to swap")
	}
	if after := n.CSR(); after != before {
		t.Fatal("attribute-only SwapCell invalidated the CSR cache")
	}

	// A clone shares the warmed cache pointer until its first edit.
	clone := n.Clone()
	if clone.CSR() != before {
		t.Fatal("Clone did not share the cached CSR pointer")
	}

	// Connectivity edit: must rebuild.
	clone.InsertOnNet("tb", "BUFX1", clone.Cells[0].Out, nil)
	if clone.CSR() == before {
		t.Fatal("connectivity edit did not invalidate the clone's CSR cache")
	}
	// ...and the parent keeps its original pointer untouched.
	if n.CSR() != before {
		t.Fatal("edit on clone invalidated the parent's CSR cache")
	}
	checkAdjacency(t, clone, "clone-post-edit")
}
