package netlist

import "fmt"

// Structural editing operations. These are the primitives that DfT
// insertion (test points, scan, buffering) and ECO passes are built from.

// SwapCell replaces instance id's library cell with newCell (e.g. DFF →
// scan DFF during scan insertion, or a drive-strength upgrade during
// timing fixes). Input pins are re-associated by name; pins that exist
// only in newCell must be supplied in extra (pin name → net). The output
// connection is preserved.
func (n *Netlist) SwapCell(id CellID, newCellName string, extra map[string]NetID) error {
	inst := &n.Cells[id]
	nc := n.Lib.Cell(newCellName)
	if nc == nil {
		return fmt.Errorf("netlist: no library cell %q", newCellName)
	}
	ins := make([]NetID, len(nc.Inputs))
	for i := range ins {
		ins[i] = NoNet
	}
	for oldPin, net := range inst.Ins {
		name := inst.Cell.Inputs[oldPin].Name
		if j := nc.FindInput(name); j >= 0 {
			ins[j] = net
		}
	}
	for name, net := range extra {
		j := nc.FindInput(name)
		if j < 0 {
			return fmt.Errorf("netlist: cell %s has no pin %q", newCellName, name)
		}
		ins[j] = net
	}
	for i, net := range ins {
		if net == NoNet {
			return fmt.Errorf("netlist: %s→%s leaves pin %q unconnected",
				inst.Cell.Name, newCellName, nc.Inputs[i].Name)
		}
	}
	// A swap to a same-kind variant with an identical pin→net mapping
	// (the drive-strength upgrades of timing optimization) changes only
	// cell attributes: adjacency and levelization stay valid.
	sameConn := nc.Kind == inst.Cell.Kind && len(ins) == len(inst.Ins)
	if sameConn {
		for i := range ins {
			if ins[i] != inst.Ins[i] {
				sameConn = false
				break
			}
		}
	}
	if sameConn {
		n.dirtyAttr()
	} else {
		// Old and new pin nets plus the output: a kind change can flip
		// whether the output counts as combinationally driven.
		n.dirtyNet(inst.Ins...)
		n.dirtyNet(ins...)
		n.dirtyNet(inst.Out)
		n.dirtyCell(id)
	}
	inst.Cell = nc
	inst.Ins = ins
	return nil
}

// MoveLoads reconnects the given sinks of net from onto net to. Sinks not
// currently on from are ignored. Primary-output loads are moved too when
// included in loads.
func (n *Netlist) MoveLoads(from, to NetID, loads []Load) {
	n.dirtyNet(from, to)
	for _, ld := range loads {
		if ld.Cell != NoCell {
			if n.Cells[ld.Cell].Ins[ld.Pin] == from {
				n.Cells[ld.Cell].Ins[ld.Pin] = to
			}
			continue
		}
		if ld.PO >= 0 && n.POs[ld.PO].Net == from {
			n.POs[ld.PO].Net = to
		}
	}
}

// InsertOnNet inserts a single-input cell (buffer/inverter style: first
// input is the pass-through) in series on net: the new cell's input is net,
// its output is a fresh net, and the given loads (or all loads when loads
// is nil) move to the fresh net. It returns the new cell and net.
func (n *Netlist) InsertOnNet(name, cellName string, net NetID, loads []Load) (CellID, NetID) {
	if loads == nil {
		loads = append([]Load(nil), n.Fanouts()[net]...)
	}
	out := n.AddNet(name + "_n")
	cell := n.Lib.MustCell(cellName)
	ins := make([]NetID, len(cell.Inputs))
	ins[0] = net
	for i := 1; i < len(ins); i++ {
		ins[i] = NoNet
	}
	id := n.AddCell(name, cell, ins, out)
	n.MoveLoads(net, out, loads)
	return id, out
}

// SetInput rewires a single input pin of a cell to a different net.
func (n *Netlist) SetInput(id CellID, pin int, net NetID) {
	n.dirtyNet(n.Cells[id].Ins[pin], net)
	n.dirtyCell(id)
	n.Cells[id].Ins[pin] = net
}

// KillCell marks an instance dead and releases its output net's driver.
func (n *Netlist) KillCell(id CellID) {
	n.dirtyNet(n.Cells[id].Ins...)
	n.dirtyNet(n.Cells[id].Out)
	n.dirtyCell(id)
	inst := &n.Cells[id]
	inst.Dead = true
	if inst.Out != NoNet && n.Nets[inst.Out].Driver == id {
		n.Nets[inst.Out].Driver = NoCell
	}
}

// Validate checks the structural invariants every pass relies on:
// each live cell input is connected to a live net with a source (driver,
// PI, or constant); each driven net's driver is live and points back; each
// sequential cell has a clock domain; the combinational core is acyclic.
func (n *Netlist) Validate() error {
	for ci := range n.Cells {
		c := &n.Cells[ci]
		if c.Dead {
			continue
		}
		for pin, net := range c.Ins {
			if net == NoNet {
				return fmt.Errorf("cell %s pin %s unconnected", c.Name, c.Cell.Inputs[pin].Name)
			}
			nn := &n.Nets[net]
			if nn.Dead {
				return fmt.Errorf("cell %s pin %s on dead net %s", c.Name, c.Cell.Inputs[pin].Name, nn.Name)
			}
			if nn.Driver == NoCell && nn.PI < 0 && nn.Const < 0 {
				return fmt.Errorf("net %s (input of %s) has no source", nn.Name, c.Name)
			}
		}
		if c.Out != NoNet && n.Nets[c.Out].Driver != CellID(ci) {
			return fmt.Errorf("cell %s output net %s driver mismatch", c.Name, n.Nets[c.Out].Name)
		}
		if c.Cell.Kind.IsSequential() && (c.Domain < 0 || c.Domain >= len(n.Domains)) {
			return fmt.Errorf("sequential cell %s has no clock domain", c.Name)
		}
	}
	for i := range n.Nets {
		nn := &n.Nets[i]
		if nn.Dead || nn.Driver == NoCell {
			continue
		}
		if n.Cells[nn.Driver].Dead {
			return fmt.Errorf("net %s driven by dead cell", nn.Name)
		}
		if n.Cells[nn.Driver].Out != NetID(i) {
			return fmt.Errorf("net %s driver back-pointer mismatch", nn.Name)
		}
	}
	if _, err := n.Levelize(); err != nil {
		return err
	}
	return nil
}

// Clone returns a deep copy of the netlist (sharing the immutable
// library). Derived-structure caches (CSR, fanout view, levelization) are
// immutable per connectivity revision, so the clone shares the cached
// pointers: a sweep level cloned from a prewarmed base circuit pays no
// rebuild until its first connectivity edit.
func (n *Netlist) Clone() *Netlist {
	out := &Netlist{
		Name:    n.Name,
		Lib:     n.Lib,
		Cells:   make([]Instance, len(n.Cells)),
		Nets:    append([]Net(nil), n.Nets...),
		PIs:     append([]Port(nil), n.PIs...),
		POs:     append([]Port(nil), n.POs...),
		Domains: append([]Domain(nil), n.Domains...),

		connRev:    n.connRev,
		attrRev:    n.attrRev,
		csr:        n.csr,
		csrRev:     n.csrRev,
		fanouts:    n.fanouts,
		fanoutsRev: n.fanoutsRev,
		levels:     n.levels,
		levelsRev:  n.levelsRev,

		dirtyNets:  append([]NetID(nil), n.dirtyNets...),
		dirtyCells: append([]CellID(nil), n.dirtyCells...),
		dirtyAll:   n.dirtyAll,
	}
	for i := range n.Cells {
		c := n.Cells[i]
		c.Ins = append([]NetID(nil), c.Ins...)
		out.Cells[i] = c
	}
	return out
}
