package netlist

import "fmt"

// Levels is the levelized (topologically ordered) view of the
// combinational core of a netlist. Sequential cell outputs and primary
// inputs act as sources; sequential cell inputs and primary outputs act as
// sinks. Every analysis that sweeps the logic (simulation, SCOAP, COP,
// STA) iterates Order.
type Levels struct {
	// Order lists all live combinational cells in topological order.
	Order []CellID
	// CellLevel[c] is the logic depth of cell c (sources are depth 0);
	// -1 for sequential, physical-only, and dead cells.
	CellLevel []int
	// NetLevel[n] is the depth at which net n becomes valid.
	NetLevel []int
	// MaxLevel is the deepest combinational level.
	MaxLevel int
}

// Levelize computes the topological order of the combinational core. It
// returns an error naming a cell on a combinational cycle if one exists.
// The result is cached per connectivity revision (attribute-only edits do
// not invalidate it) and must not be modified.
func (n *Netlist) Levelize() (*Levels, error) {
	if n.levels != nil && n.levelsRev == n.connRev {
		return n.levels, nil
	}
	lv, err := n.levelize()
	if err != nil {
		return nil, err
	}
	n.levels, n.levelsRev = lv, n.connRev
	return lv, nil
}

func (n *Netlist) levelize() (*Levels, error) {
	lv := &Levels{
		CellLevel: make([]int, len(n.Cells)),
		NetLevel:  make([]int, len(n.Nets)),
	}
	// Pending combinational input counts per cell.
	pend := make([]int32, len(n.Cells))
	var ready []CellID
	comb := 0
	for ci := range n.Cells {
		c := &n.Cells[ci]
		lv.CellLevel[ci] = -1
		if c.Dead || c.Cell.Kind.IsSequential() || c.Cell.Kind.IsPhysicalOnly() {
			continue
		}
		comb++
		cnt := int32(0)
		for _, net := range c.Ins {
			if net != NoNet && n.combDriven(net) {
				cnt++
			}
		}
		pend[ci] = cnt
		if cnt == 0 {
			ready = append(ready, CellID(ci))
		}
	}
	csr := n.CSR()
	lv.Order = make([]CellID, 0, comb)
	for len(ready) > 0 {
		ci := ready[0]
		ready = ready[1:]
		level := 0
		c := &n.Cells[ci]
		for _, net := range c.Ins {
			if net != NoNet && lv.NetLevel[net] >= level {
				level = lv.NetLevel[net]
			}
		}
		level++
		lv.CellLevel[ci] = level
		if level > lv.MaxLevel {
			lv.MaxLevel = level
		}
		lv.Order = append(lv.Order, ci)
		if c.Out == NoNet {
			continue
		}
		lv.NetLevel[c.Out] = level
		for _, ld := range csr.Fanout(c.Out) {
			if ld.Cell == NoCell {
				continue
			}
			s := &n.Cells[ld.Cell]
			if s.Dead || s.Cell.Kind.IsSequential() || s.Cell.Kind.IsPhysicalOnly() {
				continue
			}
			if pend[ld.Cell]--; pend[ld.Cell] == 0 {
				ready = append(ready, ld.Cell)
			}
		}
	}
	if len(lv.Order) != comb {
		for ci := range n.Cells {
			c := &n.Cells[ci]
			if !c.Dead && !c.Cell.Kind.IsSequential() && !c.Cell.Kind.IsPhysicalOnly() &&
				lv.CellLevel[ci] < 0 {
				return nil, fmt.Errorf("netlist: combinational cycle through cell %s", c.Name)
			}
		}
		return nil, fmt.Errorf("netlist: combinational cycle (unlocatable)")
	}
	return lv, nil
}

// combDriven reports whether net's value is produced by a combinational
// cell (as opposed to a PI, constant, or flip-flop output).
func (n *Netlist) combDriven(net NetID) bool {
	d := n.Nets[net].Driver
	if d == NoCell {
		return false
	}
	k := n.Cells[d].Cell.Kind
	return !k.IsSequential() && !k.IsPhysicalOnly()
}
