package netlist

import (
	"fmt"
	"time"
)

// Levels is the levelized (topologically ordered) view of the
// combinational core of a netlist. Sequential cell outputs and primary
// inputs act as sources; sequential cell inputs and primary outputs act as
// sinks. Every analysis that sweeps the logic (simulation, SCOAP, COP,
// STA) iterates Order.
type Levels struct {
	// Order lists all live combinational cells in topological order.
	Order []CellID
	// CellLevel[c] is the logic depth of cell c (sources are depth 0);
	// -1 for sequential, physical-only, and dead cells.
	CellLevel []int
	// NetLevel[n] is the depth at which net n becomes valid.
	NetLevel []int
	// MaxLevel is the deepest combinational level.
	MaxLevel int
}

// Levelize computes the topological order of the combinational core. It
// returns an error naming a cell on a combinational cycle if one exists.
// The result is cached per connectivity revision (attribute-only edits do
// not invalidate it) and must not be modified.
func (n *Netlist) Levelize() (*Levels, error) {
	if n.levels != nil && n.levelsRev == n.connRev {
		return n.levels, nil
	}
	// Incremental path: a stale cached levelization plus a complete edit
	// log means only the fanout cones of the logged nets can have moved —
	// re-levelize those with a worklist instead of re-running Kahn over
	// the whole graph. The result is bit-identical to a full rebuild
	// because Order is a pure function of CellLevel.
	if n.levels != nil && !n.dirtyAll {
		start := time.Now()
		if lv, ok := n.relevelIncremental(n.levels); ok {
			n.levStats.Incremental++
			n.levStats.IncrementalNS += time.Since(start).Nanoseconds()
			n.levels, n.levelsRev = lv, n.connRev
			n.dirtyNets, n.dirtyCells = n.dirtyNets[:0], n.dirtyCells[:0]
			return lv, nil
		}
		n.levStats.Fallback++
	}
	lv, err := n.levelize()
	if err != nil {
		return nil, err
	}
	n.levStats.Full++
	n.levels, n.levelsRev = lv, n.connRev
	n.dirtyNets, n.dirtyCells = nil, nil
	n.dirtyAll = false
	return lv, nil
}

// relevelIncremental rebuilds the levelization by chaotic worklist
// iteration over the fanout cones of the edit log, against the previous
// cached Levels (which is shared with clones and therefore copied, never
// mutated). It reports ok=false — leaving a full rebuild to the caller —
// when the iteration budget is exhausted, which is how an edit-created
// combinational cycle surfaces (around a cycle the level equations are
// unsatisfiable, so levels grow without bound).
func (n *Netlist) relevelIncremental(prev *Levels) (*Levels, bool) {
	lv := &Levels{
		CellLevel: make([]int, len(n.Cells)),
		NetLevel:  make([]int, len(n.Nets)),
	}
	copy(lv.CellLevel, prev.CellLevel)
	for ci := len(prev.CellLevel); ci < len(n.Cells); ci++ {
		lv.CellLevel[ci] = -1
	}
	copy(lv.NetLevel, prev.NetLevel)

	isComb := func(ci CellID) bool {
		c := &n.Cells[ci]
		return !c.Dead && !c.Cell.Kind.IsSequential() && !c.Cell.Kind.IsPhysicalOnly()
	}

	csr := n.CSR()
	var queue []CellID
	inQueue := make(map[CellID]bool, len(n.dirtyCells)+len(n.dirtyNets)*2)
	enqueue := func(ci CellID) {
		if !inQueue[ci] {
			inQueue[ci] = true
			queue = append(queue, ci)
		}
	}
	// enqueueNet reconciles a net whose source may have changed and
	// enqueues its combinational loads for re-evaluation.
	enqueueNet := func(net NetID, want int) {
		if lv.NetLevel[net] != want {
			lv.NetLevel[net] = want
		}
		for _, ld := range csr.Fanout(net) {
			if ld.Cell != NoCell && isComb(ld.Cell) {
				enqueue(ld.Cell)
			}
		}
	}

	// Seed: every logged cell, plus — for every logged net — its current
	// driver and all current loads. A net whose driver is not (or no
	// longer) a combinational cell is pinned back to level 0 here; a net
	// with a combinational driver is reconciled when that driver is
	// processed below.
	for _, ci := range n.dirtyCells {
		enqueue(ci)
	}
	for _, net := range n.dirtyNets {
		if d := n.Nets[net].Driver; d != NoCell && isComb(d) {
			enqueue(d)
			// Loads still need re-evaluation even if the net's level is
			// unchanged: MoveLoads rewires pins without moving levels.
			enqueueNet(net, lv.NetLevel[net])
		} else {
			enqueueNet(net, 0)
		}
	}

	budget := 2*len(n.Cells) + 64
	for head := 0; head < len(queue); head++ {
		if budget--; budget < 0 {
			return nil, false
		}
		ci := queue[head]
		inQueue[ci] = false
		c := &n.Cells[ci]
		level := -1
		if isComb(ci) {
			level = 0
			for _, net := range c.Ins {
				if net != NoNet && lv.NetLevel[net] > level {
					level = lv.NetLevel[net]
				}
			}
			level++
			if level > len(n.Cells) {
				return nil, false // level blow-up: combinational cycle
			}
		}
		lv.CellLevel[ci] = level
		if c.Out == NoNet || n.Nets[c.Out].Driver != ci {
			continue
		}
		want := 0
		if level > 0 {
			want = level
		}
		if lv.NetLevel[c.Out] != want {
			enqueueNet(c.Out, want)
		}
	}

	// Order and MaxLevel are pure functions of CellLevel; rebuild both
	// with the same counting sort the full path uses.
	for _, l := range lv.CellLevel {
		if l > lv.MaxLevel {
			lv.MaxLevel = l
		}
	}
	lv.sortOrder()
	return lv, true
}

func (n *Netlist) levelize() (*Levels, error) {
	lv := &Levels{
		CellLevel: make([]int, len(n.Cells)),
		NetLevel:  make([]int, len(n.Nets)),
	}
	// Pending combinational input counts per cell.
	pend := make([]int32, len(n.Cells))
	var ready []CellID
	comb := 0
	for ci := range n.Cells {
		c := &n.Cells[ci]
		lv.CellLevel[ci] = -1
		if c.Dead || c.Cell.Kind.IsSequential() || c.Cell.Kind.IsPhysicalOnly() {
			continue
		}
		comb++
		cnt := int32(0)
		for _, net := range c.Ins {
			if net != NoNet && n.combDriven(net) {
				cnt++
			}
		}
		pend[ci] = cnt
		if cnt == 0 {
			ready = append(ready, CellID(ci))
		}
	}
	csr := n.CSR()
	lv.Order = make([]CellID, 0, comb)
	for len(ready) > 0 {
		ci := ready[0]
		ready = ready[1:]
		level := 0
		c := &n.Cells[ci]
		for _, net := range c.Ins {
			if net != NoNet && lv.NetLevel[net] >= level {
				level = lv.NetLevel[net]
			}
		}
		level++
		lv.CellLevel[ci] = level
		if level > lv.MaxLevel {
			lv.MaxLevel = level
		}
		lv.Order = append(lv.Order, ci)
		if c.Out == NoNet {
			continue
		}
		lv.NetLevel[c.Out] = level
		for _, ld := range csr.Fanout(c.Out) {
			if ld.Cell == NoCell {
				continue
			}
			s := &n.Cells[ld.Cell]
			if s.Dead || s.Cell.Kind.IsSequential() || s.Cell.Kind.IsPhysicalOnly() {
				continue
			}
			if pend[ld.Cell]--; pend[ld.Cell] == 0 {
				ready = append(ready, ld.Cell)
			}
		}
	}
	if len(lv.Order) != comb {
		for ci := range n.Cells {
			c := &n.Cells[ci]
			if !c.Dead && !c.Cell.Kind.IsSequential() && !c.Cell.Kind.IsPhysicalOnly() &&
				lv.CellLevel[ci] < 0 {
				return nil, fmt.Errorf("netlist: combinational cycle through cell %s", c.Name)
			}
		}
		return nil, fmt.Errorf("netlist: combinational cycle (unlocatable)")
	}
	lv.sortOrder()
	return lv, nil
}

// sortOrder canonicalizes Order to (level, cell ID) via a counting sort.
// Every consumer of Order is a pure dataflow sweep (each cell's result
// depends only on already-computed fanin values), so any topological order
// yields identical analysis results; making the canonical order a pure
// function of CellLevel is what lets the incremental relevel reproduce it
// exactly without replaying the Kahn queue.
func (lv *Levels) sortOrder() {
	cnt := make([]int, lv.MaxLevel+2)
	total := 0
	for _, l := range lv.CellLevel {
		if l > 0 {
			cnt[l]++
			total++
		}
	}
	pos := make([]int, lv.MaxLevel+2)
	for l := 1; l <= lv.MaxLevel; l++ {
		pos[l+1] = pos[l] + cnt[l]
	}
	sorted := make([]CellID, total)
	// CellLevel is ID-indexed, so scanning it yields ID order per level.
	for ci, l := range lv.CellLevel {
		if l < 0 {
			continue
		}
		sorted[pos[l]] = CellID(ci)
		pos[l]++
	}
	lv.Order = sorted
}

// combDriven reports whether net's value is produced by a combinational
// cell (as opposed to a PI, constant, or flip-flop output).
func (n *Netlist) combDriven(net NetID) bool {
	d := n.Nets[net].Driver
	if d == NoCell {
		return false
	}
	k := n.Cells[d].Cell.Kind
	return !k.IsSequential() && !k.IsPhysicalOnly()
}
