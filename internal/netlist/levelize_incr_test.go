package netlist

import (
	"fmt"
	"math/rand"
	"testing"

	"tpilayout/internal/stdcell"
)

// buildChain constructs a small random DAG netlist directly through the
// edit primitives (circuitgen lives above this package).
func buildChain(t *testing.T, seed int64, gates int) (*Netlist, *rand.Rand) {
	t.Helper()
	lib := stdcell.Default()
	n := New("incr", lib)
	n.AddClockPI("clk", 8000)
	rng := rand.New(rand.NewSource(seed))
	var nets []NetID
	for i := 0; i < 6; i++ {
		nets = append(nets, n.AddPI(fmt.Sprintf("in%d", i)))
	}
	inv := lib.MustCell("INVX1")
	nand := lib.MustCell("NAND2X1")
	for i := 0; i < gates; i++ {
		out := n.AddNet(fmt.Sprintf("g%d", i))
		if rng.Intn(3) == 0 {
			n.AddCell(fmt.Sprintf("u%d", i), inv, []NetID{nets[rng.Intn(len(nets))]}, out)
		} else {
			a, b := nets[rng.Intn(len(nets))], nets[rng.Intn(len(nets))]
			n.AddCell(fmt.Sprintf("u%d", i), nand, []NetID{a, b}, out)
		}
		nets = append(nets, out)
	}
	for i := 0; i < 4; i++ {
		n.AddPO(fmt.Sprintf("out%d", i), nets[len(nets)-1-i])
	}
	return n, rng
}

func requireSameLevels(t *testing.T, label string, got, want *Levels) {
	t.Helper()
	if got.MaxLevel != want.MaxLevel {
		t.Fatalf("%s: MaxLevel = %d, want %d", label, got.MaxLevel, want.MaxLevel)
	}
	if len(got.Order) != len(want.Order) {
		t.Fatalf("%s: |Order| = %d, want %d", label, len(got.Order), len(want.Order))
	}
	for i := range want.Order {
		if got.Order[i] != want.Order[i] {
			t.Fatalf("%s: Order[%d] = %d, want %d", label, i, got.Order[i], want.Order[i])
		}
	}
	for ci := range want.CellLevel {
		if got.CellLevel[ci] != want.CellLevel[ci] {
			t.Fatalf("%s: CellLevel[%d] = %d, want %d", label, ci, got.CellLevel[ci], want.CellLevel[ci])
		}
	}
	for id := range want.NetLevel {
		if got.NetLevel[id] != want.NetLevel[id] {
			t.Fatalf("%s: NetLevel[%d] = %d, want %d", label, id, got.NetLevel[id], want.NetLevel[id])
		}
	}
}

// TestRelevelIncrementalMatchesFull drives every edit primitive through
// random sequences and checks after each batch that the incremental
// relevel is bit-identical to a from-scratch Kahn rebuild.
func TestRelevelIncrementalMatchesFull(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			n, rng := buildChain(t, seed, 120)
			n.Prewarm()
			for round := 0; round < 8; round++ {
				revBefore := n.connRev
				for e := 0; e < 3; e++ {
					switch rng.Intn(4) {
					case 0: // series buffer insertion (the TPI edit shape)
						id := NetID(rng.Intn(len(n.Nets)))
						if !n.Nets[id].Dead {
							n.InsertOnNet(fmt.Sprintf("b%d_%d", round, e), "BUFX1", id, nil)
						}
					case 1: // partial load move
						from := NetID(rng.Intn(len(n.Nets)))
						loads := n.Fanouts()[from]
						if len(loads) > 1 {
							to := n.AddNet(fmt.Sprintf("mv%d_%d", round, e))
							buf := n.Lib.MustCell("BUFX1")
							n.AddCell(fmt.Sprintf("mb%d_%d", round, e), buf, []NetID{from}, to)
							n.MoveLoads(from, to, loads[:1])
						}
					case 2: // kill a fanout-free cell
						for tries := 0; tries < 8; tries++ {
							ci := CellID(rng.Intn(len(n.Cells)))
							c := &n.Cells[ci]
							if c.Dead || c.Cell.Kind.IsSequential() || c.Out == NoNet {
								continue
							}
							if len(n.Fanouts()[c.Out]) == 0 {
								n.KillCell(ci)
								break
							}
						}
					case 3: // connectivity-changing swap (INV -> BUF)
						for tries := 0; tries < 8; tries++ {
							ci := CellID(rng.Intn(len(n.Cells)))
							c := &n.Cells[ci]
							if !c.Dead && c.Cell.Name == "INVX1" {
								if err := n.SwapCell(ci, "BUFX1", nil); err != nil {
									t.Fatal(err)
								}
								break
							}
						}
					}
				}
				if n.connRev == revBefore {
					continue // every edit candidate no-oped this round
				}
				before := n.levStats
				got, err := n.Levelize()
				if err != nil {
					t.Fatalf("round %d: Levelize: %v", round, err)
				}
				if n.levStats.Incremental != before.Incremental+1 || n.levStats.Fallback != before.Fallback {
					t.Fatalf("round %d: incremental path not taken: %+v -> %+v", round, before, n.levStats)
				}
				want, err := n.levelize()
				if err != nil {
					t.Fatalf("round %d: full levelize: %v", round, err)
				}
				requireSameLevels(t, fmt.Sprintf("round %d", round), got, want)
			}
		})
	}
}

// TestRelevelIncrementalCloneIsolation checks that a clone relevels
// incrementally off the shared prewarmed cache without disturbing the
// parent's cached levelization.
func TestRelevelIncrementalCloneIsolation(t *testing.T) {
	n, _ := buildChain(t, 99, 80)
	n.Prewarm()
	parentLv := n.levels
	c := n.Clone()
	c.InsertOnNet("tb", "BUFX1", c.Cells[len(c.Cells)/2].Out, nil)
	got, err := c.Levelize()
	if err != nil {
		t.Fatal(err)
	}
	if c.levStats.Incremental != 1 {
		t.Fatalf("clone did not relevel incrementally: %+v", c.levStats)
	}
	want, err := c.levelize()
	if err != nil {
		t.Fatal(err)
	}
	requireSameLevels(t, "clone", got, want)
	if n.levels != parentLv {
		t.Fatal("edit on clone disturbed parent's cached levelization")
	}
	if lv, err := n.Levelize(); err != nil || lv != parentLv {
		t.Fatalf("parent lost its cached levelization (%p vs %p, err %v)", lv, parentLv, err)
	}
}

// TestRelevelIncrementalCycleFallback checks that an edit-created
// combinational cycle trips the worklist budget, falls back to the full
// rebuild, and surfaces the cycle error.
func TestRelevelIncrementalCycleFallback(t *testing.T) {
	n, _ := buildChain(t, 7, 60)
	n.Prewarm()
	// Find a 2-input gate and feed its own (transitive) output back in.
	var victim CellID = NoCell
	for ci := range n.Cells {
		c := &n.Cells[ci]
		if !c.Dead && len(c.Ins) == 2 && c.Out != NoNet && len(n.Fanouts()[c.Out]) > 0 {
			victim = CellID(ci)
		}
	}
	if victim == NoCell {
		t.Skip("no suitable gate")
	}
	n.SetInput(victim, 0, n.Cells[victim].Out)
	if _, err := n.Levelize(); err == nil {
		t.Fatal("cycle not detected")
	}
	if n.levStats.Fallback != 1 {
		t.Fatalf("expected incremental bail before the full rebuild: %+v", n.levStats)
	}
}

// TestDirtyPoisonForcesFull checks that an unattributed edit (direct
// dirty()) disables the incremental path until the next full rebuild.
func TestDirtyPoisonForcesFull(t *testing.T) {
	n, _ := buildChain(t, 11, 60)
	n.Prewarm()
	n.dirty()
	if _, err := n.Levelize(); err != nil {
		t.Fatal(err)
	}
	if n.levStats.Full != 2 || n.levStats.Incremental != 0 {
		t.Fatalf("poisoned log should force a full rebuild: %+v", n.levStats)
	}
	// The poison clears with the rebuild: the next logged edit relevels
	// incrementally again.
	n.InsertOnNet("tb", "BUFX1", n.Cells[0].Out, nil)
	if _, err := n.Levelize(); err != nil {
		t.Fatal(err)
	}
	if n.levStats.Incremental != 1 {
		t.Fatalf("log did not recover after full rebuild: %+v", n.levStats)
	}
}
