// Package netlist provides the mapped gate-level netlist representation
// shared by every stage of the flow: DfT insertion edits it, placement and
// routing consume it, and ATPG/STA analyze it.
//
// A Netlist is a flat (non-hierarchical) network of standard-cell
// instances, primary inputs/outputs, and nets. Cells and nets are addressed
// by dense integer IDs so that analysis passes can use slices rather than
// maps and remain deterministic.
package netlist

import (
	"fmt"

	"tpilayout/internal/stdcell"
)

// CellID and NetID are dense indices into Netlist.Cells and Netlist.Nets.
type (
	CellID int32
	NetID  int32
)

// NoCell and NoNet are sentinel "absent" IDs.
const (
	NoCell CellID = -1
	NoNet  NetID  = -1
)

// Tag classifies an instance by its role in the design. Functional logic
// carries TagNone; DfT and physical-design passes tag the cells they add
// so that later stages (fault accounting, area reports, ECO) can tell
// them apart.
type Tag uint8

// Instance tags.
const (
	TagNone     Tag = iota
	TagTestMux      // multiplexer belonging to a TSFF test point
	TagScanFF       // flip-flop converted to / inserted as a scan element
	TagSEBuffer     // scan-enable distribution buffer
	TagClockBuf     // clock-tree buffer
	TagFiller       // row filler cell
	TagTimingBuf
)

// Instance is one placed-standard-cell instance.
type Instance struct {
	Name string
	Cell *stdcell.Cell
	Ins  []NetID // aligned with Cell.Inputs
	Out  NetID   // NoNet for physical-only cells
	Tag  Tag

	// Domain is the clock-domain index for sequential cells, -1 otherwise.
	Domain int

	// Dead marks an instance removed by an edit. Dead instances keep
	// their ID (so external tables stay aligned) but are skipped by all
	// iterations. Compact() squeezes them out.
	Dead bool
}

// Net is a single electrical node.
type Net struct {
	Name string
	// Driver is the driving cell, or NoCell when the net is driven by a
	// primary input (or is constant).
	Driver CellID
	// PI is the index into Netlist.PIs when Driver == NoCell and the net
	// is a primary input, else -1.
	PI int
	// Const is 0 or 1 for constant nets (tie cells abstracted away), else -1.
	Const int8
	Dead  bool
}

// Port is a primary input or output of the design.
type Port struct {
	Name string
	Net  NetID
	// Clock marks a clock input; Domain is its clock-domain index.
	Clock  bool
	Domain int
}

// Domain describes one clock domain.
type Domain struct {
	Name     string
	PeriodPS float64 // target clock period used for reporting only
	ClockPI  int     // index into PIs of the domain's clock input
}

// Netlist is the complete design.
type Netlist struct {
	Name    string
	Lib     *stdcell.Library
	Cells   []Instance
	Nets    []Net
	PIs     []Port
	POs     []Port
	Domains []Domain

	// Derived-structure caches. Each is (re)built lazily and keyed on
	// connRev, the connectivity revision: only edits that change the
	// net↔pin graph (add/kill/rewire) bump it. Attribute-only edits
	// (drive-strength swaps that keep the same kind and pin→net map)
	// bump attrRev instead and leave the caches valid — this is what
	// keeps STA/placement design iterations from rebuilding adjacency.
	connRev    uint64
	attrRev    uint64
	csr        *CSR
	csrRev     uint64
	fanouts    [][]Load
	fanoutsRev uint64
	levels     *Levels
	levelsRev  uint64

	// Epoch-stamped edit log: the nets and cells touched by connectivity
	// edits since the cached levelization was built. While dirtyAll is
	// false, Levelize can re-levelize incrementally by sweeping only the
	// fanout cones of the logged nets instead of the whole graph. Edit
	// primitives that know their footprint call dirtyNet/dirtyCell; any
	// edit that cannot name its footprint calls dirty(), which poisons
	// the log and forces the next levelization to run from scratch.
	dirtyNets  []NetID
	dirtyCells []CellID
	dirtyAll   bool
	levStats   LevStats
}

// LevStats counts how the levelization cache was (re)built, and the time
// spent on the incremental path. Clones start with zeroed counters.
type LevStats struct {
	Full        uint64 // full Kahn rebuilds
	Incremental uint64 // worklist relevels over the edit log
	Fallback    uint64 // incremental attempts that bailed to a full rebuild
	// IncrementalNS is the wall time spent in successful incremental
	// relevels (the time a full rebuild would otherwise have absorbed).
	IncrementalNS int64
}

// LevelizeStats returns this netlist's levelization rebuild counters.
func (n *Netlist) LevelizeStats() LevStats { return n.levStats }

// Load is one sink of a net: either pin Pin of cell Cell, or primary
// output PO (index into POs) when Cell == NoCell.
type Load struct {
	Cell CellID
	Pin  int // input pin index within the cell
	PO   int // index into POs, valid when Cell == NoCell
}

// New returns an empty netlist bound to a library.
func New(name string, lib *stdcell.Library) *Netlist {
	return &Netlist{Name: name, Lib: lib}
}

// AddNet creates a net with no driver and returns its ID.
func (n *Netlist) AddNet(name string) NetID {
	n.Nets = append(n.Nets, Net{Name: name, Driver: NoCell, PI: -1, Const: -1})
	id := NetID(len(n.Nets) - 1)
	n.dirtyNet(id)
	return id
}

// AddConst creates (or returns an existing) constant-0 or constant-1 net.
func (n *Netlist) AddConst(v int) NetID {
	for id := range n.Nets {
		if !n.Nets[id].Dead && n.Nets[id].Const == int8(v) {
			return NetID(id)
		}
	}
	id := n.AddNet(fmt.Sprintf("const%d", v))
	n.Nets[id].Const = int8(v)
	return id
}

// AddPI creates a primary input port and its net.
func (n *Netlist) AddPI(name string) NetID {
	id := n.AddNet(name)
	n.PIs = append(n.PIs, Port{Name: name, Net: id, Domain: -1})
	n.Nets[id].PI = len(n.PIs) - 1
	return id
}

// AddClockPI creates a clock input and registers a clock domain for it.
// period is the domain's target clock period in ps (reporting only).
func (n *Netlist) AddClockPI(name string, period float64) (NetID, int) {
	id := n.AddPI(name)
	pi := len(n.PIs) - 1
	n.PIs[pi].Clock = true
	n.Domains = append(n.Domains, Domain{Name: name, PeriodPS: period, ClockPI: pi})
	dom := len(n.Domains) - 1
	n.PIs[pi].Domain = dom
	return id, dom
}

// AddPO marks a net as a primary output.
func (n *Netlist) AddPO(name string, net NetID) {
	n.dirtyNet(net)
	n.POs = append(n.POs, Port{Name: name, Net: net, Domain: -1})
}

// AddCell instantiates a library cell. ins must match len(cell.Inputs);
// out is the net driven by the cell (pass NoNet only for physical-only
// cells). It returns the new instance's ID.
func (n *Netlist) AddCell(name string, cell *stdcell.Cell, ins []NetID, out NetID) CellID {
	if len(ins) != len(cell.Inputs) {
		panic(fmt.Sprintf("netlist: cell %s (%s) given %d inputs, wants %d",
			name, cell.Name, len(ins), len(cell.Inputs)))
	}
	n.dirtyNet(ins...)
	n.dirtyNet(out)
	id := CellID(len(n.Cells))
	n.dirtyCell(id)
	n.Cells = append(n.Cells, Instance{
		Name:   name,
		Cell:   cell,
		Ins:    append([]NetID(nil), ins...),
		Out:    out,
		Domain: -1,
	})
	if out != NoNet {
		if d := n.Nets[out].Driver; d != NoCell || n.Nets[out].PI >= 0 {
			panic(fmt.Sprintf("netlist: net %s already driven", n.Nets[out].Name))
		}
		n.Nets[out].Driver = id
	}
	return id
}

// Cell returns the instance for id.
func (n *Netlist) Cell(id CellID) *Instance { return &n.Cells[id] }

// Net returns the net for id.
func (n *Netlist) Net(id NetID) *Net { return &n.Nets[id] }

// dirty invalidates derived indices after a connectivity edit whose
// footprint is unknown: it poisons the edit log, so the next levelization
// rebuilds from scratch. Edits that can name the nets they touch call
// dirtyNet instead; edits that provably keep the net↔pin graph intact
// call dirtyAttr.
func (n *Netlist) dirty() {
	n.connRev++
	n.dirtyAll = true
	n.dirtyNets, n.dirtyCells = nil, nil
}

// dirtyLogCap bounds the edit log: past this many entries a full rebuild
// is cheaper than replaying the log, so the log poisons itself.
const dirtyLogCap = 1 << 14

// dirtyNet records a connectivity edit that touches exactly the given
// nets (every net whose driver, load set, or load pins changed).
func (n *Netlist) dirtyNet(nets ...NetID) {
	n.connRev++
	if n.dirtyAll {
		return
	}
	for _, net := range nets {
		if net != NoNet {
			n.dirtyNets = append(n.dirtyNets, net)
		}
	}
	if len(n.dirtyNets)+len(n.dirtyCells) > dirtyLogCap {
		n.dirtyAll = true
		n.dirtyNets, n.dirtyCells = nil, nil
	}
}

// dirtyCell records a cell whose liveness or pin map changed, alongside
// the dirtyNet entries of the nets it touches. It does not bump connRev —
// it always accompanies a dirtyNet call that does.
func (n *Netlist) dirtyCell(id CellID) {
	if n.dirtyAll {
		return
	}
	n.dirtyCells = append(n.dirtyCells, id)
}

// dirtyAttr records an attribute-only edit (cell variant swap with an
// identical pin→net mapping): adjacency, levelization, and the CSR stay
// valid.
func (n *Netlist) dirtyAttr() { n.attrRev++ }

// Fanouts returns the sink list of every net as a per-net slice view over
// the CSR adjacency. The index is rebuilt lazily after connectivity edits;
// the returned slices must not be modified.
func (n *Netlist) Fanouts() [][]Load {
	if n.fanouts != nil && n.fanoutsRev == n.connRev {
		return n.fanouts
	}
	csr := n.CSR()
	f := make([][]Load, len(n.Nets))
	for i := range f {
		lo, hi := csr.FanoutIdx[i], csr.FanoutIdx[i+1]
		// Full slice expression: capacity is capped at the net's own
		// segment, so an (illegal) append by a caller cannot clobber the
		// next net's loads silently.
		f[i] = csr.FanoutLoads[lo:hi:hi]
	}
	n.fanouts, n.fanoutsRev = f, n.connRev
	return f
}

// Prewarm builds every derived-structure cache (CSR adjacency, fanout
// view, levelization) so that subsequent Clones share them. Sweep uses it
// to pay the build cost once per base circuit instead of once per level.
// A combinational cycle leaves the levelization uncached; the error
// resurfaces at first real use.
func (n *Netlist) Prewarm() {
	n.CSR()
	n.Fanouts()
	n.Levelize() //nolint:errcheck // cycle errors resurface at first use
}

// NumLiveCells counts non-dead instances.
func (n *Netlist) NumLiveCells() int {
	c := 0
	for i := range n.Cells {
		if !n.Cells[i].Dead {
			c++
		}
	}
	return c
}

// NumFlipFlops counts live sequential instances.
func (n *Netlist) NumFlipFlops() int {
	c := 0
	for i := range n.Cells {
		if !n.Cells[i].Dead && n.Cells[i].Cell.Kind.IsSequential() {
			c++
		}
	}
	return c
}

// FlipFlops returns the IDs of all live sequential instances in ID order.
func (n *Netlist) FlipFlops() []CellID {
	var ffs []CellID
	for i := range n.Cells {
		if !n.Cells[i].Dead && n.Cells[i].Cell.Kind.IsSequential() {
			ffs = append(ffs, CellID(i))
		}
	}
	return ffs
}

// TotalCellArea sums the area of all live instances in µm².
func (n *Netlist) TotalCellArea() float64 {
	a := 0.0
	for i := range n.Cells {
		if !n.Cells[i].Dead {
			a += n.Cells[i].Cell.Area()
		}
	}
	return a
}
