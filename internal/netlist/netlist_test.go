package netlist

import (
	"testing"

	"tpilayout/internal/stdcell"
)

// buildSmall constructs:
//
//	pi_a ─┐
//	      ├─ NAND2 u1 ── n1 ─┬─ INV u2 ── n2 ── DFF ff1 ── q1 ── PO out
//	pi_b ─┘                  └───────────────────────────── PO tap
func buildSmall(t testing.TB) *Netlist {
	t.Helper()
	lib := stdcell.Default()
	n := New("small", lib)
	clk, dom := n.AddClockPI("clk", 10000)
	_ = clk
	a := n.AddPI("pi_a")
	b := n.AddPI("pi_b")
	n1 := n.AddNet("n1")
	n2 := n.AddNet("n2")
	q1 := n.AddNet("q1")
	n.AddCell("u1", lib.MustCell("NAND2X1"), []NetID{a, b}, n1)
	n.AddCell("u2", lib.MustCell("INVX1"), []NetID{n1}, n2)
	ff := n.AddCell("ff1", lib.MustCell("DFFX1"), []NetID{n2, n.PIs[0].Net}, q1)
	n.Cells[ff].Domain = dom
	n.AddPO("out", q1)
	n.AddPO("tap", n1)
	return n
}

// netByName finds a net ID by name, failing the test if absent.
func netByName(t testing.TB, n *Netlist, name string) NetID {
	t.Helper()
	for i := range n.Nets {
		if n.Nets[i].Name == name {
			return NetID(i)
		}
	}
	t.Fatalf("no net %q", name)
	return NoNet
}

func TestBuildAndValidate(t *testing.T) {
	n := buildSmall(t)
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := n.NumLiveCells(); got != 3 {
		t.Errorf("NumLiveCells = %d, want 3", got)
	}
	if got := n.NumFlipFlops(); got != 1 {
		t.Errorf("NumFlipFlops = %d, want 1", got)
	}
	if got := len(n.FlipFlops()); got != 1 {
		t.Errorf("len(FlipFlops) = %d, want 1", got)
	}
}

func TestFanouts(t *testing.T) {
	n := buildSmall(t)
	fan := n.Fanouts()
	// n1 drives u2's input and the "tap" PO.
	n1 := netByName(t, n, "n1")
	if len(fan[n1]) != 2 {
		t.Fatalf("fanout(n1) = %d loads, want 2", len(fan[n1]))
	}
	var haveCell, havePO bool
	for _, ld := range fan[n1] {
		if ld.Cell != NoCell {
			haveCell = true
		} else if ld.PO >= 0 {
			havePO = true
		}
	}
	if !haveCell || !havePO {
		t.Errorf("fanout(n1) loads = %+v, want one cell pin and one PO", fan[n1])
	}
}

func TestLevelize(t *testing.T) {
	n := buildSmall(t)
	lv, err := n.Levelize()
	if err != nil {
		t.Fatal(err)
	}
	if len(lv.Order) != 2 {
		t.Fatalf("order has %d cells, want 2 (combinational only)", len(lv.Order))
	}
	// u1 (NAND) must precede u2 (INV).
	if n.Cells[lv.Order[0]].Name != "u1" || n.Cells[lv.Order[1]].Name != "u2" {
		t.Errorf("order = [%s %s], want [u1 u2]",
			n.Cells[lv.Order[0]].Name, n.Cells[lv.Order[1]].Name)
	}
	if lv.MaxLevel != 2 {
		t.Errorf("MaxLevel = %d, want 2", lv.MaxLevel)
	}
}

func TestLevelizeDetectsCycle(t *testing.T) {
	lib := stdcell.Default()
	n := New("cyc", lib)
	a := n.AddPI("a")
	x := n.AddNet("x")
	y := n.AddNet("y")
	n.AddCell("g1", lib.MustCell("NAND2X1"), []NetID{a, y}, x)
	n.AddCell("g2", lib.MustCell("INVX1"), []NetID{x}, y)
	if _, err := n.Levelize(); err == nil {
		t.Fatal("Levelize accepted a combinational cycle")
	}
}

func TestSwapCellToScanFF(t *testing.T) {
	n := buildSmall(t)
	ffID := n.FlipFlops()[0]
	si := n.AddPI("si")
	se := n.AddPI("se")
	if err := n.SwapCell(ffID, "SDFFX1", map[string]NetID{"si": si, "se": se}); err != nil {
		t.Fatal(err)
	}
	c := n.Cell(ffID)
	if c.Cell.Name != "SDFFX1" {
		t.Fatalf("cell is %s, want SDFFX1", c.Cell.Name)
	}
	// d and clk connections must be preserved by name.
	if n.Nets[c.Ins[c.Cell.FindInput("d")]].Name != "n2" {
		t.Error("d pin lost its net across the swap")
	}
	if n.Nets[c.Ins[c.Cell.FindInput("clk")]].Name != "clk" {
		t.Error("clk pin lost its net across the swap")
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate after swap: %v", err)
	}
}

func TestSwapCellMissingPin(t *testing.T) {
	n := buildSmall(t)
	ffID := n.FlipFlops()[0]
	if err := n.SwapCell(ffID, "SDFFX1", nil); err == nil {
		t.Fatal("SwapCell silently left si/se unconnected")
	}
}

func TestInsertOnNet(t *testing.T) {
	n := buildSmall(t)
	n1 := netByName(t, n, "n1")
	before := len(n.Fanouts()[n1])
	bufID, newNet := n.InsertOnNet("buf0", "BUFX2", n1, nil)
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate after insert: %v", err)
	}
	fan := n.Fanouts()
	if len(fan[n1]) != 1 {
		t.Fatalf("old net keeps %d loads, want 1 (the buffer)", len(fan[n1]))
	}
	if fan[n1][0].Cell != bufID {
		t.Error("old net's only load is not the inserted buffer")
	}
	if len(fan[newNet]) != before {
		t.Errorf("new net has %d loads, want %d", len(fan[newNet]), before)
	}
}

func TestKillCellReleasesDriver(t *testing.T) {
	n := buildSmall(t)
	// Kill u2 and redrive n2 from a fresh buffer off n1.
	var u2 CellID = -1
	for ci := range n.Cells {
		if n.Cells[ci].Name == "u2" {
			u2 = CellID(ci)
		}
	}
	out := n.Cells[u2].Out
	n.KillCell(u2)
	if n.Nets[out].Driver != NoCell {
		t.Fatal("KillCell left the output net driven")
	}
	lib := n.Lib
	n.AddCell("b", lib.MustCell("BUFX1"), []NetID{netByName(t, n, "n1")}, out)
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate after redrive: %v", err)
	}
	if n.NumLiveCells() != 3 {
		t.Errorf("NumLiveCells = %d, want 3", n.NumLiveCells())
	}
}

func TestCloneIsIndependent(t *testing.T) {
	n := buildSmall(t)
	c := n.Clone()
	c.InsertOnNet("bufX", "BUFX1", netByName(t, c, "n1"), nil)
	if n.NumLiveCells() == c.NumLiveCells() {
		t.Fatal("edit to clone changed (or matched) original cell count")
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("original invalidated by clone edit: %v", err)
	}
	// Cell input slices must not be shared.
	c.Cells[0].Ins[0] = NoNet
	if n.Cells[0].Ins[0] == NoNet {
		t.Fatal("clone shares Ins slice with original")
	}
}

func TestAddConstDedup(t *testing.T) {
	lib := stdcell.Default()
	n := New("k", lib)
	a := n.AddConst(0)
	b := n.AddConst(0)
	c := n.AddConst(1)
	if a != b {
		t.Error("AddConst(0) not deduplicated")
	}
	if a == c {
		t.Error("const0 and const1 share a net")
	}
}

func TestDoubleDrivePanics(t *testing.T) {
	lib := stdcell.Default()
	n := New("dd", lib)
	a := n.AddPI("a")
	defer func() {
		if recover() == nil {
			t.Error("driving a PI net did not panic")
		}
	}()
	n.AddCell("g", lib.MustCell("INVX1"), []NetID{a}, a)
}
