package netlist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tpilayout/internal/stdcell"
)

// TestRandomEditSequencesStayValid drives the editing API with random
// operation sequences and checks the structural invariants survive every
// step — the property every DfT pass relies on.
func TestRandomEditSequencesStayValid(t *testing.T) {
	lib := stdcell.Default()
	f := func(seed int64, ops []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := New("prop", lib)
		clk, dom := n.AddClockPI("clk", 1000)
		var nets []NetID
		for i := 0; i < 4; i++ {
			nets = append(nets, n.AddPI("pi"))
		}
		// A few seed gates.
		for i := 0; i < 4; i++ {
			out := n.AddNet("w")
			n.AddCell("g", lib.MustCell("NAND2X1"),
				[]NetID{nets[rng.Intn(len(nets))], nets[rng.Intn(len(nets))]}, out)
			nets = append(nets, out)
		}
		n.AddPO("po", nets[len(nets)-1])

		if len(ops) > 24 {
			ops = ops[:24]
		}
		for _, op := range ops {
			switch op % 4 {
			case 0: // buffer insertion on a random net
				id := nets[rng.Intn(len(nets))]
				_, out := n.InsertOnNet("b", "BUFX1", id, nil)
				nets = append(nets, out)
			case 1: // new gate from existing nets
				out := n.AddNet("w")
				n.AddCell("g", lib.MustCell("AND2X1"),
					[]NetID{nets[rng.Intn(len(nets))], nets[rng.Intn(len(nets))]}, out)
				nets = append(nets, out)
			case 2: // flop on a random net
				out := n.AddNet("q")
				ff := n.AddCell("f", lib.MustCell("DFFX1"),
					[]NetID{nets[rng.Intn(len(nets))], clk}, out)
				n.Cells[ff].Domain = dom
				nets = append(nets, out)
			case 3: // flop -> scan flop swap
				ffs := n.FlipFlops()
				if len(ffs) == 0 {
					continue
				}
				ff := ffs[rng.Intn(len(ffs))]
				if n.Cells[ff].Cell.Kind == stdcell.KindDff {
					si := nets[rng.Intn(len(nets))]
					se := nets[0]
					if err := n.SwapCell(ff, "SDFFX1", map[string]NetID{"si": si, "se": se}); err != nil {
						return false
					}
				}
			}
			if err := n.Validate(); err != nil {
				t.Logf("invalid after op %d: %v", op%4, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestFanoutIndexConsistency checks that the fanout index always agrees
// with the cell connections after arbitrary edits.
func TestFanoutIndexConsistency(t *testing.T) {
	lib := stdcell.Default()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := New("fan", lib)
		var nets []NetID
		for i := 0; i < 3; i++ {
			nets = append(nets, n.AddPI("pi"))
		}
		for i := 0; i < 10; i++ {
			out := n.AddNet("w")
			n.AddCell("g", lib.MustCell("NOR2X1"),
				[]NetID{nets[rng.Intn(len(nets))], nets[rng.Intn(len(nets))]}, out)
			nets = append(nets, out)
		}
		n.AddPO("po", nets[len(nets)-1])
		fan := n.Fanouts()
		// Count connections both ways.
		fromIndex := 0
		for _, loads := range fan {
			fromIndex += len(loads)
		}
		fromCells := len(n.POs)
		for ci := range n.Cells {
			if !n.Cells[ci].Dead {
				fromCells += len(n.Cells[ci].Ins)
			}
		}
		return fromIndex == fromCells
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
