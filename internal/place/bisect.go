package place

import (
	"context"

	"tpilayout/internal/netlist"
	"tpilayout/internal/telemetry"
)

// region is a rectangular slice of the core: rows [r0,r1) and the x span
// [x0,x1) within them.
type region struct {
	r0, r1 int
	x0, x1 float64
}

// bisector performs recursive min-cut bisection with an FM-style
// refinement pass. Nets above maxNetSize pins (clocks, scan-enable) are
// ignored for cut purposes, as in production placers.
//
// All working storage lives on the bisector and is reused across the
// (strictly serial) recursion: local net numbering uses epoch-stamped
// arrays instead of a per-node map, incidence lists are flat CSR arrays,
// and the FM gain buckets keep their capacity between passes. The cut
// decisions are bit-identical to the slice-of-slices version — every
// iteration order the FM tie-breaking depends on is preserved.
type bisector struct {
	n      *netlist.Netlist
	passes int

	// cellNets lists the (small) nets incident to each cell, CSR-packed:
	// cellNetBuf[cellNetIdx[c]:cellNetIdx[c+1]].
	cellNetIdx []int32
	cellNetBuf []int32
	rowH       float64

	// Per-node scratch (valid only between a partition call and the next).
	side    []uint8
	spill   []netlist.CellID // stable-split overflow buffer
	netEp   int32
	netSeen []int32 // per-global-net epoch stamp
	netPos  []int32 // per-global-net preliminary local index
	keep    []int32 // preliminary local index -> kept index (or -1)

	// Local incidence CSR, rebuilt per node.
	memberIdx []int32
	members   []int32
	localIdx  []int32
	localBuf  []int32
	cursor    []int32

	// FM pass scratch.
	cnt     [][2]int32
	gain    []int32
	locked  []bool
	buckets [2*maxGain + 1][]int32
	moves   []move

	// stats accumulates the bisection's telemetry (serial recursion, so
	// plain ints); place.global flushes it into the stage span once.
	stats struct {
		cuts, passes, movesKept, movesTried int64
	}
	// hCutDelta is the per-FM-pass cut-improvement distribution
	// (place.fm_cut_delta), a local shard because the recursion is
	// serial; nil (and free) when telemetry is off.
	hCutDelta *telemetry.LocalHist
}

type move struct {
	cell  int32
	delta int32 // cut change (negative = improvement)
}

const (
	maxNetSize = 48
	maxGain    = 32
	leafCells  = 3 // stop splitting below this population
)

func newBisector(n *netlist.Netlist, passes int) *bisector {
	b := &bisector{n: n, passes: passes, rowH: n.Lib.RowHeight}
	csr := n.CSR()
	// Count pins per net to exclude global nets.
	pinCount := make([]int32, len(n.Nets))
	for id := range n.Nets {
		c := int32(csr.FanoutLen(netlist.NetID(id)))
		if n.Nets[id].Driver != netlist.NoCell {
			c++
		}
		pinCount[id] = c
	}
	eligible := func(net netlist.NetID) bool {
		return net != netlist.NoNet && n.Nets[net].Const < 0 &&
			pinCount[net] <= maxNetSize && pinCount[net] >= 2
	}
	// Two-pass CSR build of the per-cell incident-net lists, deduplicating
	// within each cell's handful of pins.
	var tmp [16]int32
	cellUnique := func(ci int) []int32 {
		c := &b.n.Cells[ci]
		u := tmp[:0]
		addU := func(net netlist.NetID) {
			if !eligible(net) {
				return
			}
			for _, x := range u {
				if x == int32(net) {
					return
				}
			}
			u = append(u, int32(net))
		}
		for _, in := range c.Ins {
			addU(in)
		}
		addU(c.Out)
		return u
	}
	b.cellNetIdx = make([]int32, len(n.Cells)+1)
	total := 0
	for ci := range n.Cells {
		if !n.Cells[ci].Dead {
			total += len(cellUnique(ci))
		}
		b.cellNetIdx[ci+1] = int32(total)
	}
	b.cellNetBuf = make([]int32, 0, total)
	for ci := range n.Cells {
		if !n.Cells[ci].Dead {
			b.cellNetBuf = append(b.cellNetBuf, cellUnique(ci)...)
		}
	}

	b.netSeen = make([]int32, len(n.Nets))
	b.netPos = make([]int32, len(n.Nets))
	return b
}

func (b *bisector) cellNets(c netlist.CellID) []int32 {
	return b.cellNetBuf[b.cellNetIdx[c]:b.cellNetIdx[c+1]]
}

// run recursively splits cells over reg, calling emit for each cell with
// its final leaf region. One cut (partition plus its FM refinement) is
// the cancellation work unit: the context is checked at every recursion
// node and the whole placement is abandoned on cancel.
func (b *bisector) run(ctx context.Context, cells []netlist.CellID, reg region, emit func(netlist.CellID, region)) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	rows := reg.r1 - reg.r0
	wide := reg.x1 - reg.x0
	if len(cells) <= leafCells || (rows <= 1 && wide <= 16*b.n.Lib.SiteWidth) {
		for _, c := range cells {
			emit(c, reg)
		}
		return nil
	}
	var regA, regB region
	var fracA float64
	if float64(rows)*b.rowH >= wide && rows > 1 {
		mid := reg.r0 + rows/2
		regA = region{r0: reg.r0, r1: mid, x0: reg.x0, x1: reg.x1}
		regB = region{r0: mid, r1: reg.r1, x0: reg.x0, x1: reg.x1}
		fracA = float64(mid-reg.r0) / float64(rows)
	} else {
		mid := reg.x0 + wide/2
		regA = region{r0: reg.r0, r1: reg.r1, x0: reg.x0, x1: mid}
		regB = region{r0: reg.r0, r1: reg.r1, x0: mid, x1: reg.x1}
		fracA = 0.5
	}
	b.stats.cuts++
	sideOf := b.partition(cells, fracA)
	// Stable in-place split: side-0 cells keep their order as the prefix,
	// side-1 cells follow in order (the recursion owns this subrange, so
	// reordering it is free).
	spill := b.spill[:0]
	k := 0
	for i, c := range cells {
		if sideOf[i] == 0 {
			cells[k] = c
			k++
		} else {
			spill = append(spill, c)
		}
	}
	copy(cells[k:], spill)
	b.spill = spill[:0]
	if err := b.run(ctx, cells[:k], regA, emit); err != nil {
		return err
	}
	return b.run(ctx, cells[k:], regB, emit)
}

// grow resizes an int32 scratch slice to n zeroed entries.
func grow(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// partition splits cells into side 0 (area fraction fracA) and side 1,
// minimizing the number of cut nets with FM passes. The returned slice is
// scratch owned by the bisector — valid until the next partition call.
func (b *bisector) partition(cells []netlist.CellID, fracA float64) []uint8 {
	n := len(cells)
	if cap(b.side) < n {
		b.side = make([]uint8, n)
	}
	side := b.side[:n]
	totalArea := 0.0
	for _, c := range cells {
		totalArea += b.n.Cells[c].Cell.Width
	}
	targetA := totalArea * fracA
	// Initial split: prefix by area (inherits the caller's ordering,
	// which preserves locality from the parent cut).
	areaA := 0.0
	for i, c := range cells {
		if areaA < targetA {
			side[i] = 0
			areaA += b.n.Cells[c].Cell.Width
		} else {
			side[i] = 1
		}
	}

	// Preliminary local net numbering in first-seen order, via epoch
	// stamps on two netlist-sized arrays (no per-node map).
	b.netEp++
	ep := b.netEp
	numNets := 0
	incidences := 0
	for _, c := range cells {
		nets := b.cellNets(c)
		incidences += len(nets)
		for _, net := range nets {
			if b.netSeen[net] != ep {
				b.netSeen[net] = ep
				b.netPos[net] = int32(numNets)
				numNets++
			}
		}
	}
	// Count incidences per preliminary net, then keep only nets with at
	// least two members in this region (first-seen order preserved).
	b.cursor = grow(b.cursor, numNets)
	cnt := b.cursor
	for _, c := range cells {
		for _, net := range b.cellNets(c) {
			cnt[b.netPos[net]]++
		}
	}
	b.keep = grow(b.keep, numNets)
	kept := 0
	keptInc := 0
	for p := 0; p < numNets; p++ {
		if cnt[p] >= 2 {
			b.keep[p] = int32(kept)
			kept++
			keptInc += int(cnt[p])
		} else {
			b.keep[p] = -1
		}
	}
	// Member CSR: members of kept net k are
	// members[memberIdx[k]:memberIdx[k+1]], in ascending cell order.
	b.memberIdx = grow(b.memberIdx, kept+1)
	for p := 0; p < numNets; p++ {
		if k := b.keep[p]; k >= 0 {
			b.memberIdx[k+1] = cnt[p]
		}
	}
	for k := 1; k <= kept; k++ {
		b.memberIdx[k] += b.memberIdx[k-1]
	}
	if cap(b.members) < keptInc {
		b.members = make([]int32, keptInc)
	}
	b.members = b.members[:keptInc]
	b.cursor = grow(b.cursor, kept) // aliases cnt, which is dead past here
	cur := b.cursor
	copy(cur, b.memberIdx[:kept])
	for i, c := range cells {
		for _, net := range b.cellNets(c) {
			if k := b.keep[b.netPos[net]]; k >= 0 {
				b.members[cur[k]] = int32(i)
				cur[k]++
			}
		}
	}
	// Per-cell local net CSR, each cell's list in ascending kept-net
	// order (the order the FM tie-breaking saw historically).
	b.localIdx = grow(b.localIdx, n+1)
	for k := 0; k < kept; k++ {
		for _, m := range b.members[b.memberIdx[k]:b.memberIdx[k+1]] {
			b.localIdx[m+1]++
		}
	}
	for i := 1; i <= n; i++ {
		b.localIdx[i] += b.localIdx[i-1]
	}
	if cap(b.localBuf) < keptInc {
		b.localBuf = make([]int32, keptInc)
	}
	b.localBuf = b.localBuf[:keptInc]
	b.cursor = grow(b.cursor, n)
	cur = b.cursor
	copy(cur, b.localIdx[:n])
	for k := 0; k < kept; k++ {
		for _, m := range b.members[b.memberIdx[k]:b.memberIdx[k+1]] {
			b.localBuf[cur[m]] = int32(k)
			cur[m]++
		}
	}

	tol := totalArea*0.02 + 12*b.n.Lib.SiteWidth
	for pass := 0; pass < b.passes; pass++ {
		b.stats.passes++
		if !b.fmPass(cells, side, kept, &areaA, targetA, tol) {
			break
		}
	}
	return side
}

// netMembers and cellLocals read the per-node incidence CSRs.
func (b *bisector) netMembers(k int32) []int32 {
	return b.members[b.memberIdx[k]:b.memberIdx[k+1]]
}
func (b *bisector) cellLocals(i int32) []int32 {
	return b.localBuf[b.localIdx[i]:b.localIdx[i+1]]
}

// fmPass runs one full Fiduccia–Mattheyses pass: every cell is moved once
// in best-gain order under the balance constraint, then the pass is rolled
// back to its best prefix. Returns true if the pass improved the cut.
func (b *bisector) fmPass(cells []netlist.CellID, side []uint8, numNets int,
	areaA *float64, targetA, tol float64) bool {

	n := len(cells)
	if cap(b.cnt) < numNets {
		b.cnt = make([][2]int32, numNets)
	}
	cnt := b.cnt[:numNets]
	for k := range cnt {
		cnt[k] = [2]int32{}
	}
	for k := 0; k < numNets; k++ {
		for _, m := range b.netMembers(int32(k)) {
			cnt[k][side[m]]++
		}
	}
	b.gain = grow(b.gain, n)
	gain := b.gain
	computeGain := func(i int) int32 {
		g := int32(0)
		s := side[i]
		for _, ni := range b.cellLocals(int32(i)) {
			if cnt[ni][s] == 1 {
				g++
			}
			if cnt[ni][1-s] == 0 {
				g--
			}
		}
		return g
	}
	// Gain buckets with lazy deletion: a popped entry is valid only if it
	// matches the cell's current gain and the cell is unlocked.
	for gi := range b.buckets {
		b.buckets[gi] = b.buckets[gi][:0]
	}
	clamp := func(g int32) int32 {
		if g > maxGain {
			return maxGain
		}
		if g < -maxGain {
			return -maxGain
		}
		return g
	}
	push := func(i int) {
		g := clamp(gain[i])
		b.buckets[g+maxGain] = append(b.buckets[g+maxGain], int32(i))
	}
	if cap(b.locked) < n {
		b.locked = make([]bool, n)
	}
	locked := b.locked[:n]
	for i := range locked {
		locked[i] = false
	}
	for i := 0; i < n; i++ {
		gain[i] = computeGain(i)
		push(i)
	}

	moves := b.moves[:0]
	cumDelta, bestDelta, bestK := int32(0), int32(0), 0
	curAreaA := *areaA

	popBest := func() int32 {
		for gi := len(b.buckets) - 1; gi >= 0; gi-- {
			bl := b.buckets[gi]
			for len(bl) > 0 {
				i := bl[len(bl)-1]
				bl = bl[:len(bl)-1]
				if locked[i] || clamp(gain[i])+maxGain != int32(gi) {
					continue // stale entry
				}
				// Balance check.
				w := b.n.Cells[cells[i]].Cell.Width
				na := curAreaA
				if side[i] == 0 {
					na -= w
				} else {
					na += w
				}
				if na < targetA-tol || na > targetA+tol {
					continue // would unbalance; try next (leave popped)
				}
				b.buckets[gi] = bl
				return i
			}
			b.buckets[gi] = bl
		}
		return -1
	}

	for moved := 0; moved < n; moved++ {
		i := popBest()
		if i < 0 {
			break
		}
		locked[i] = true
		s := side[i]
		w := b.n.Cells[cells[i]].Cell.Width
		if s == 0 {
			curAreaA -= w
		} else {
			curAreaA += w
		}
		cumDelta -= gain[i]
		moves = append(moves, move{cell: i, delta: gain[i]})
		// Apply move: update counts and neighbour gains.
		for _, ni := range b.cellLocals(i) {
			cnt[ni][s]--
			cnt[ni][1-s]++
		}
		side[i] = 1 - s
		for _, ni := range b.cellLocals(i) {
			for _, m := range b.netMembers(ni) {
				if !locked[m] {
					gain[m] = computeGain(int(m))
					push(int(m))
				}
			}
		}
		if cumDelta < bestDelta {
			bestDelta = cumDelta
			bestK = len(moves)
		}
	}
	b.stats.movesTried += int64(len(moves))
	b.stats.movesKept += int64(bestK)
	// Observed as a positive magnitude: bestDelta <= 0 by construction
	// (the empty prefix scores 0), so -bestDelta is the pass's cut gain.
	b.hCutDelta.Observe(int64(-bestDelta))
	// Roll back to the best prefix.
	for k := len(moves) - 1; k >= bestK; k-- {
		i := moves[k].cell
		s := side[i]
		w := b.n.Cells[cells[i]].Cell.Width
		if s == 0 {
			curAreaA -= w
		} else {
			curAreaA += w
		}
		side[i] = 1 - s
	}
	b.moves = moves[:0]
	*areaA = curAreaA
	return bestDelta < 0
}
