package place

import (
	"context"

	"tpilayout/internal/netlist"
)

// region is a rectangular slice of the core: rows [r0,r1) and the x span
// [x0,x1) within them.
type region struct {
	r0, r1 int
	x0, x1 float64
}

// bisector performs recursive min-cut bisection with an FM-style
// refinement pass. Nets above maxNetSize pins (clocks, scan-enable) are
// ignored for cut purposes, as in production placers.
type bisector struct {
	n      *netlist.Netlist
	passes int

	// cellNets[c] lists the (small) nets incident to cell c.
	cellNets [][]int32
	rowH     float64
}

const (
	maxNetSize = 48
	maxGain    = 32
	leafCells  = 3 // stop splitting below this population
)

func newBisector(n *netlist.Netlist, passes int) *bisector {
	b := &bisector{n: n, passes: passes, rowH: n.Lib.RowHeight}
	fan := n.Fanouts()
	// Count pins per net to exclude global nets.
	pinCount := make([]int32, len(n.Nets))
	for id := range n.Nets {
		c := int32(len(fan[id]))
		if n.Nets[id].Driver != netlist.NoCell {
			c++
		}
		pinCount[id] = c
	}
	b.cellNets = make([][]int32, len(n.Cells))
	add := func(ci netlist.CellID, net netlist.NetID) {
		if net == netlist.NoNet || n.Nets[net].Const >= 0 || pinCount[net] > maxNetSize || pinCount[net] < 2 {
			return
		}
		l := b.cellNets[ci]
		for _, x := range l {
			if x == int32(net) {
				return
			}
		}
		b.cellNets[ci] = append(l, int32(net))
	}
	for ci := range n.Cells {
		c := &n.Cells[ci]
		if c.Dead {
			continue
		}
		for _, in := range c.Ins {
			add(netlist.CellID(ci), in)
		}
		add(netlist.CellID(ci), c.Out)
	}
	return b
}

// run recursively splits cells over reg, calling emit for each cell with
// its final leaf region. One cut (partition plus its FM refinement) is
// the cancellation work unit: the context is checked at every recursion
// node and the whole placement is abandoned on cancel.
func (b *bisector) run(ctx context.Context, cells []netlist.CellID, reg region, emit func(netlist.CellID, region)) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	rows := reg.r1 - reg.r0
	wide := reg.x1 - reg.x0
	if len(cells) <= leafCells || (rows <= 1 && wide <= 16*b.n.Lib.SiteWidth) {
		for _, c := range cells {
			emit(c, reg)
		}
		return nil
	}
	var regA, regB region
	var fracA float64
	if float64(rows)*b.rowH >= wide && rows > 1 {
		mid := reg.r0 + rows/2
		regA = region{r0: reg.r0, r1: mid, x0: reg.x0, x1: reg.x1}
		regB = region{r0: mid, r1: reg.r1, x0: reg.x0, x1: reg.x1}
		fracA = float64(mid-reg.r0) / float64(rows)
	} else {
		mid := reg.x0 + wide/2
		regA = region{r0: reg.r0, r1: reg.r1, x0: reg.x0, x1: mid}
		regB = region{r0: reg.r0, r1: reg.r1, x0: mid, x1: reg.x1}
		fracA = 0.5
	}
	sideOf := b.partition(cells, fracA)
	var left, right []netlist.CellID
	for i, c := range cells {
		if sideOf[i] == 0 {
			left = append(left, c)
		} else {
			right = append(right, c)
		}
	}
	if err := b.run(ctx, left, regA, emit); err != nil {
		return err
	}
	return b.run(ctx, right, regB, emit)
}

// partition splits cells into side 0 (area fraction fracA) and side 1,
// minimizing the number of cut nets with FM passes.
func (b *bisector) partition(cells []netlist.CellID, fracA float64) []uint8 {
	n := len(cells)
	side := make([]uint8, n)
	totalArea := 0.0
	for _, c := range cells {
		totalArea += b.n.Cells[c].Cell.Width
	}
	targetA := totalArea * fracA
	// Initial split: prefix by area (inherits the caller's ordering,
	// which preserves locality from the parent cut).
	areaA := 0.0
	for i, c := range cells {
		if areaA < targetA {
			side[i] = 0
			areaA += b.n.Cells[c].Cell.Width
		} else {
			side[i] = 1
		}
	}

	// Local net incidence: net -> member local cell indices, in
	// deterministic first-seen order (map iteration order must not leak
	// into the partition result).
	netIdx := make(map[int32]int32)
	var netMembers [][]int32
	for i, c := range cells {
		for _, net := range b.cellNets[c] {
			ni, ok := netIdx[net]
			if !ok {
				ni = int32(len(netMembers))
				netIdx[net] = ni
				netMembers = append(netMembers, nil)
			}
			netMembers[ni] = append(netMembers[ni], int32(i))
		}
	}
	// Drop nets with a single member in this region.
	nets := make([][]int32, 0, len(netMembers))
	for _, members := range netMembers {
		if len(members) >= 2 {
			nets = append(nets, members)
		}
	}
	cellLocalNets := make([][]int32, n)
	for ni, members := range nets {
		for _, m := range members {
			cellLocalNets[m] = append(cellLocalNets[m], int32(ni))
		}
	}

	tol := totalArea*0.02 + 12*b.n.Lib.SiteWidth
	for pass := 0; pass < b.passes; pass++ {
		if !b.fmPass(cells, side, nets, cellLocalNets, &areaA, targetA, tol) {
			break
		}
	}
	return side
}

// fmPass runs one full Fiduccia–Mattheyses pass: every cell is moved once
// in best-gain order under the balance constraint, then the pass is rolled
// back to its best prefix. Returns true if the pass improved the cut.
func (b *bisector) fmPass(cells []netlist.CellID, side []uint8, nets [][]int32,
	cellLocalNets [][]int32, areaA *float64, targetA, tol float64) bool {

	n := len(cells)
	cnt := make([][2]int32, len(nets))
	for ni, members := range nets {
		for _, m := range members {
			cnt[ni][side[m]]++
		}
	}
	gain := make([]int32, n)
	computeGain := func(i int) int32 {
		g := int32(0)
		s := side[i]
		for _, ni := range cellLocalNets[i] {
			if cnt[ni][s] == 1 {
				g++
			}
			if cnt[ni][1-s] == 0 {
				g--
			}
		}
		return g
	}
	// Gain buckets with lazy deletion: a popped entry is valid only if it
	// matches the cell's current gain and the cell is unlocked.
	buckets := make([][]int32, 2*maxGain+1)
	clamp := func(g int32) int32 {
		if g > maxGain {
			return maxGain
		}
		if g < -maxGain {
			return -maxGain
		}
		return g
	}
	push := func(i int) {
		g := clamp(gain[i])
		buckets[g+maxGain] = append(buckets[g+maxGain], int32(i))
	}
	locked := make([]bool, n)
	for i := 0; i < n; i++ {
		gain[i] = computeGain(i)
		push(i)
	}

	type move struct {
		cell  int32
		delta int32 // cut change (negative = improvement)
	}
	var moves []move
	cumDelta, bestDelta, bestK := int32(0), int32(0), 0
	curAreaA := *areaA

	popBest := func() int32 {
		for gi := len(buckets) - 1; gi >= 0; gi-- {
			bl := buckets[gi]
			for len(bl) > 0 {
				i := bl[len(bl)-1]
				bl = bl[:len(bl)-1]
				if locked[i] || clamp(gain[i])+maxGain != int32(gi) {
					continue // stale entry
				}
				// Balance check.
				w := b.n.Cells[cells[i]].Cell.Width
				na := curAreaA
				if side[i] == 0 {
					na -= w
				} else {
					na += w
				}
				if na < targetA-tol || na > targetA+tol {
					continue // would unbalance; try next (leave popped)
				}
				buckets[gi] = bl
				return i
			}
			buckets[gi] = bl
		}
		return -1
	}

	for moved := 0; moved < n; moved++ {
		i := popBest()
		if i < 0 {
			break
		}
		locked[i] = true
		s := side[i]
		w := b.n.Cells[cells[i]].Cell.Width
		if s == 0 {
			curAreaA -= w
		} else {
			curAreaA += w
		}
		cumDelta -= gain[i]
		moves = append(moves, move{cell: i, delta: gain[i]})
		// Apply move: update counts and neighbour gains.
		for _, ni := range cellLocalNets[i] {
			cnt[ni][s]--
			cnt[ni][1-s]++
		}
		side[i] = 1 - s
		for _, ni := range cellLocalNets[i] {
			for _, m := range nets[ni] {
				if !locked[m] {
					gain[m] = computeGain(int(m))
					push(int(m))
				}
			}
		}
		if cumDelta < bestDelta {
			bestDelta = cumDelta
			bestK = len(moves)
		}
	}
	// Roll back to the best prefix.
	for k := len(moves) - 1; k >= bestK; k-- {
		i := moves[k].cell
		s := side[i]
		w := b.n.Cells[cells[i]].Cell.Width
		if s == 0 {
			curAreaA -= w
		} else {
			curAreaA += w
		}
		side[i] = 1 - s
	}
	*areaA = curAreaA
	return bestDelta < 0
}
