package place

import (
	"fmt"
	"math"
	"sort"

	"tpilayout/internal/netlist"
)

// ECO legalizes cells added to the netlist after the original placement
// (clock-tree buffers, scan-enable buffers), mirroring step 4 of the
// paper's flow: each new cell is placed in the free row space nearest the
// centroid of its placed neighbours; rows are extended when the core is
// full, which is how TPI pressure shows up as extra core area.
func (p *Placement) ECO() error {
	n := p.N
	// Grow the location arrays for cells added since placement.
	for len(p.X) < len(n.Cells) {
		p.X = append(p.X, 0)
		p.Row = append(p.Row, -1)
	}
	var pending []netlist.CellID
	for ci := range n.Cells {
		c := &n.Cells[ci]
		if !c.Dead && p.Row[ci] < 0 && !c.Cell.Kind.IsPhysicalOnly() {
			pending = append(pending, netlist.CellID(ci))
		}
	}
	if len(pending) == 0 {
		return nil
	}
	gaps := p.buildGaps()
	csr := n.CSR()
	for _, id := range pending {
		cx, cy := p.centroid(id, csr)
		if !gaps.insert(p, id, cx, cy) {
			// No gap anywhere: extend every row by the cell width and
			// retry (the paper's "row length increases" effect).
			p.RowLen += n.Cells[id].Cell.Width + n.Lib.SiteWidth
			gaps.extend(p)
			if !gaps.insert(p, id, cx, cy) {
				return fmt.Errorf("place: ECO cannot place %s", n.Cells[id].Name)
			}
		}
	}
	return nil
}

// centroid estimates a new cell's ideal position from its placed
// neighbours (cells sharing a net), defaulting to the core center.
func (p *Placement) centroid(id netlist.CellID, csr *netlist.CSR) (x, y float64) {
	n := p.N
	sumX, sumY, cnt := 0.0, 0.0, 0
	visit := func(other netlist.CellID) {
		if other != netlist.NoCell && other != id && p.Placed(other) {
			ox, oy := p.Pos(other)
			sumX += ox
			sumY += oy
			cnt++
		}
	}
	c := &n.Cells[id]
	for _, in := range c.Ins {
		if in == netlist.NoNet {
			continue
		}
		visit(n.Nets[in].Driver)
	}
	if c.Out != netlist.NoNet {
		for _, ld := range csr.Fanout(c.Out) {
			visit(ld.Cell)
		}
	}
	if cnt == 0 {
		return p.CoreW() / 2, p.CoreH() / 2
	}
	return sumX / float64(cnt), sumY / float64(cnt)
}

// gapTable tracks free intervals per row for incremental insertion.
type gapTable struct {
	rows [][]gap // sorted by x
}

type gap struct{ x0, x1 float64 }

// buildGaps scans the current placement into free intervals.
func (p *Placement) buildGaps() *gapTable {
	n := p.N
	byRow := make([][]netlist.CellID, p.NumRows)
	for ci := range n.Cells {
		if !n.Cells[ci].Dead && p.Row[ci] >= 0 {
			byRow[p.Row[ci]] = append(byRow[p.Row[ci]], netlist.CellID(ci))
		}
	}
	g := &gapTable{rows: make([][]gap, p.NumRows)}
	for r := range byRow {
		cells := byRow[r]
		sort.Slice(cells, func(i, j int) bool { return p.X[cells[i]] < p.X[cells[j]] })
		x := 0.0
		for _, id := range cells {
			if p.X[id] > x {
				g.rows[r] = append(g.rows[r], gap{x0: x, x1: p.X[id]})
			}
			x = p.X[id] + n.Cells[id].Cell.Width
		}
		if x < p.RowLen {
			g.rows[r] = append(g.rows[r], gap{x0: x, x1: p.RowLen})
		}
	}
	return g
}

// extend appends the space created by a RowLen increase to every row.
func (g *gapTable) extend(p *Placement) {
	for r := range g.rows {
		if n := len(g.rows[r]); n > 0 && g.rows[r][n-1].x1 < p.RowLen {
			last := &g.rows[r][n-1]
			// Merge if the last gap touches the old row end.
			last.x1 = p.RowLen
		} else {
			g.rows[r] = append(g.rows[r], gap{x0: p.RowLen, x1: p.RowLen})
			g.rows[r][len(g.rows[r])-1].x0 = lastUsed(p, r)
		}
	}
}

func lastUsed(p *Placement, r int) float64 {
	max := 0.0
	for ci := range p.N.Cells {
		if !p.N.Cells[ci].Dead && p.Row[ci] == int32(r) {
			if e := p.X[ci] + p.N.Cells[ci].Cell.Width; e > max {
				max = e
			}
		}
	}
	return max
}

// insert places cell id in the gap whose usable position is nearest
// (cx, cy), site-aligned. Returns false if no gap fits.
func (g *gapTable) insert(p *Placement, id netlist.CellID, cx, cy float64) bool {
	n := p.N
	w := n.Cells[id].Cell.Width
	sw := n.Lib.SiteWidth
	rowH := n.Lib.RowHeight
	bestCost := math.Inf(1)
	bestRow, bestGap := -1, -1
	bestX := 0.0
	for r := range g.rows {
		dy := math.Abs((float64(r)+0.5)*rowH - cy)
		if dy >= bestCost {
			continue
		}
		for gi, gp := range g.rows[r] {
			// Closest x within the gap, snapped to a site.
			x := math.Min(math.Max(cx-w/2, gp.x0), gp.x1-w)
			x = math.Ceil(x/sw) * sw
			if x < gp.x0 || x+w > gp.x1+1e-9 {
				// Try the gap start as fallback.
				x = math.Ceil(gp.x0/sw) * sw
				if x+w > gp.x1+1e-9 {
					continue
				}
			}
			cost := dy + math.Abs(x+w/2-cx)
			if cost < bestCost {
				bestCost, bestRow, bestGap, bestX = cost, r, gi, x
			}
		}
	}
	if bestRow < 0 {
		return false
	}
	p.X[id] = bestX
	p.Row[id] = int32(bestRow)
	p.rowUsed[bestRow] += w
	// Split the chosen gap.
	gp := g.rows[bestRow][bestGap]
	repl := make([]gap, 0, 2)
	if bestX-gp.x0 > sw/2 {
		repl = append(repl, gap{x0: gp.x0, x1: bestX})
	}
	if gp.x1-(bestX+w) > sw/2 {
		repl = append(repl, gap{x0: bestX + w, x1: gp.x1})
	}
	row := g.rows[bestRow]
	row = append(row[:bestGap], append(repl, row[bestGap+1:]...)...)
	g.rows[bestRow] = row
	return true
}

// RemoveFillers kills all filler instances added by InsertFillers, so a
// design iteration can re-place the functional cells from scratch.
func (p *Placement) RemoveFillers() {
	for _, id := range p.FillerCells {
		p.N.KillCell(id)
	}
	p.FillerCells = nil
}

// InsertFillers plugs every remaining row gap with the widest fitting
// filler cells, keeping the power/ground strips continuous as the paper
// describes. It returns the total filler area in µm².
func (p *Placement) InsertFillers() float64 {
	n := p.N
	fillers := n.Lib.Fillers()
	if len(fillers) == 0 {
		return 0
	}
	minW := fillers[len(fillers)-1].Width
	gaps := p.buildGaps()
	total := 0.0
	for r := range gaps.rows {
		for _, gp := range gaps.rows[r] {
			x := math.Ceil(gp.x0/n.Lib.SiteWidth) * n.Lib.SiteWidth
			for gp.x1-x >= minW-1e-9 {
				placedOne := false
				for _, f := range fillers {
					if gp.x1-x >= f.Width-1e-9 {
						id := n.AddCell(fmt.Sprintf("fill_r%d_x%d", r, int(x)), f, nil, netlist.NoNet)
						n.Cells[id].Tag = netlist.TagFiller
						for len(p.X) < len(n.Cells) {
							p.X = append(p.X, 0)
							p.Row = append(p.Row, -1)
						}
						p.X[id] = x
						p.Row[id] = int32(r)
						p.FillerCells = append(p.FillerCells, id)
						total += f.Area()
						x += f.Width
						placedOne = true
						break
					}
				}
				if !placedOne {
					break
				}
			}
		}
	}
	return total
}
