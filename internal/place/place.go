// Package place implements the floorplanning and placement stage of the
// paper's flow (step 2) and the ECO placement of step 4.
//
// The floorplan follows the paper's setup: a square core of horizontal
// standard-cell rows (each cell carries its power/ground strip, rows are
// abutted so strips join), surrounded by IO, power, and ground rings, with
// a target row utilization; remaining row gaps are plugged with filler
// cells to keep the strips continuous. Placement is recursive min-cut
// bisection with Fiduccia–Mattheyses-style refinement, optimized for area
// (no timing-driven moves), matching the paper's "optimised for area only"
// methodology.
package place

import (
	"context"
	"fmt"
	"math"
	"sort"

	"tpilayout/internal/netlist"
	"tpilayout/internal/telemetry"
)

// Options configures floorplanning and placement.
type Options struct {
	// TargetUtilization is the fraction of row length holding functional
	// cells (the paper uses 0.97 for s38417/circuit-1 and 0.50 for
	// p26909).
	TargetUtilization float64
	// RingMargin is the width in µm of the IO + power + ground ring
	// stack on each side of the core (default 30).
	RingMargin float64
	// FMPasses is the number of refinement passes per bisection cut
	// (default 2).
	FMPasses int
	// Telemetry, when non-nil, receives the placement counters
	// (place.cuts, place.fm_passes, place.fm_moves, place.fm_moves_tried)
	// on the placement stage's span. Nil costs nothing.
	Telemetry *telemetry.Span
}

// Placement is a legalized row placement of a netlist.
type Placement struct {
	N   *netlist.Netlist
	Opt Options

	NumRows int
	RowLen  float64 // µm, uniform across rows (grows under ECO pressure)

	// X and Row give each live cell's left edge and row (-1 = unplaced).
	X   []float64
	Row []int32

	// rowUsed is the occupied site-length per row in µm.
	rowUsed []float64

	// FillerCells lists the filler instances added by InsertFillers.
	FillerCells []netlist.CellID
}

// Place floorplans and places all live cells of n.
func Place(n *netlist.Netlist, opt Options) (*Placement, error) {
	return PlaceContext(context.Background(), n, opt)
}

// PlaceContext is Place with cooperative cancellation: the recursive
// min-cut bisection checks the context at every cut, so a cancel lands
// within one partition refinement, not one placement.
func PlaceContext(ctx context.Context, n *netlist.Netlist, opt Options) (*Placement, error) {
	if opt.TargetUtilization <= 0 || opt.TargetUtilization > 1 {
		return nil, fmt.Errorf("place: bad utilization %g", opt.TargetUtilization)
	}
	if opt.RingMargin <= 0 {
		opt.RingMargin = 30
	}
	if opt.FMPasses <= 0 {
		opt.FMPasses = 2
	}
	p := &Placement{N: n, Opt: opt}
	p.floorplan()
	if err := p.global(ctx); err != nil {
		return nil, err
	}
	if err := p.legalize(); err != nil {
		return nil, err
	}
	return p, nil
}

// floorplan sizes the square core: enough row capacity for the cell area
// at the target utilization, snapped to whole rows and sites.
func (p *Placement) floorplan() {
	lib := p.N.Lib
	area := p.N.TotalCellArea()
	rowArea := area / p.Opt.TargetUtilization
	side := math.Sqrt(rowArea)
	rows := int(math.Round(side / lib.RowHeight))
	if rows < 1 {
		rows = 1
	}
	rowLen := rowArea / (float64(rows) * lib.RowHeight)
	// Snap the row length up to whole sites.
	sites := math.Ceil(rowLen / lib.SiteWidth)
	p.NumRows = rows
	p.RowLen = sites * lib.SiteWidth
	p.rowUsed = make([]float64, rows)
}

// CoreArea returns the row area in µm² (the paper's "core area").
func (p *Placement) CoreArea() float64 {
	return float64(p.NumRows) * p.N.Lib.RowHeight * p.RowLen
}

// CoreW and CoreH return the core box dimensions.
func (p *Placement) CoreW() float64 { return p.RowLen }
func (p *Placement) CoreH() float64 { return float64(p.NumRows) * p.N.Lib.RowHeight }

// AspectRatio returns core height / width.
func (p *Placement) AspectRatio() float64 { return p.CoreH() / p.CoreW() }

// ChipArea returns the total die area: the chip is forced square around
// the core plus the ring stack, as in the paper (which notes the chip may
// hold empty space the router exploits when the core goes rectangular).
func (p *Placement) ChipArea() float64 {
	side := math.Max(p.CoreW(), p.CoreH()) + 2*p.Opt.RingMargin
	return side * side
}

// Pos returns the placed center of a cell (for wire-length estimation).
func (p *Placement) Pos(id netlist.CellID) (x, y float64) {
	c := &p.N.Cells[id]
	return p.X[id] + c.Cell.Width/2,
		(float64(p.Row[id]) + 0.5) * p.N.Lib.RowHeight
}

// Placed reports whether the cell has a location.
func (p *Placement) Placed(id netlist.CellID) bool {
	return int(id) < len(p.Row) && p.Row[id] >= 0
}

// RowUtilization is occupied length / total row length.
func (p *Placement) RowUtilization() float64 {
	used := 0.0
	for _, u := range p.rowUsed {
		used += u
	}
	return used / (float64(p.NumRows) * p.RowLen)
}

// global runs recursive min-cut bisection, assigning every live cell a
// (row, x) bin; legalize turns bins into abutted site positions.
func (p *Placement) global(ctx context.Context) error {
	n := p.N
	p.X = make([]float64, len(n.Cells))
	p.Row = make([]int32, len(n.Cells))
	for i := range p.Row {
		p.Row[i] = -1
	}
	var cells []netlist.CellID
	for ci := range n.Cells {
		if !n.Cells[ci].Dead {
			cells = append(cells, netlist.CellID(ci))
		}
	}
	b := newBisector(n, p.Opt.FMPasses)
	b.hCutDelta = p.Opt.Telemetry.Histogram("place.fm_cut_delta").Local()
	err := b.run(ctx, cells, region{r0: 0, r1: p.NumRows, x0: 0, x1: p.RowLen}, func(id netlist.CellID, reg region) {
		p.Row[id] = int32(reg.r0)
		p.X[id] = reg.x0
	})
	// The bisection is strictly serial, so the stats are plain ints,
	// flushed once — zero cost on the recursion itself.
	if sp := p.Opt.Telemetry; sp != nil {
		sp.Counter("place.cells").Add(int64(len(cells)))
		sp.Counter("place.cuts").Add(b.stats.cuts)
		sp.Counter("place.fm_passes").Add(b.stats.passes)
		sp.Counter("place.fm_moves").Add(b.stats.movesKept)
		sp.Counter("place.fm_moves_tried").Add(b.stats.movesTried)
		b.hCutDelta.Flush()
	}
	return err
}

// legalize packs the cells of each row left to right in bin order,
// spreading overflow into neighbouring rows, and snaps to sites.
func (p *Placement) legalize() error {
	n := p.N
	lib := n.Lib
	rows := make([][]netlist.CellID, p.NumRows)
	for ci := range n.Cells {
		if n.Cells[ci].Dead {
			continue
		}
		r := p.Row[ci]
		if r < 0 {
			return fmt.Errorf("place: cell %s missed by global placement", n.Cells[ci].Name)
		}
		rows[r] = append(rows[r], netlist.CellID(ci))
	}
	// Spill overflow to the emptiest rows (nearest first) so that the
	// uniform row length never has to grow just because one bin came out
	// of bisection slightly heavy.
	free := make([]float64, p.NumRows)
	for r := range rows {
		free[r] = p.RowLen - width(n, rows[r])
	}
	for r := range rows {
		if free[r] >= 0 {
			continue
		}
		sort.SliceStable(rows[r], func(i, j int) bool { return p.X[rows[r][i]] < p.X[rows[r][j]] })
		for free[r] < 0 && len(rows[r]) > 0 {
			last := rows[r][len(rows[r])-1]
			w := n.Cells[last].Cell.Width
			tr := -1
			bestScore := math.Inf(1)
			for cand := range rows {
				if cand == r || free[cand] < w {
					continue
				}
				// Prefer nearby rows, then emptier ones.
				score := math.Abs(float64(cand-r)) - free[cand]/p.RowLen
				if score < bestScore {
					bestScore, tr = score, cand
				}
			}
			if tr < 0 {
				// Genuinely full everywhere: grow all rows.
				p.RowLen += w
				for i := range free {
					free[i] += w
				}
				break
			}
			rows[r] = rows[r][:len(rows[r])-1]
			rows[tr] = append(rows[tr], last)
			p.Row[last] = int32(tr)
			free[r] += w
			free[tr] -= w
		}
	}
	for r := range rows {
		sort.SliceStable(rows[r], func(i, j int) bool { return p.X[rows[r][i]] < p.X[rows[r][j]] })
		x := 0.0
		for _, id := range rows[r] {
			sx := math.Ceil(x/lib.SiteWidth) * lib.SiteWidth
			p.X[id] = sx
			p.Row[id] = int32(r)
			x = sx + n.Cells[id].Cell.Width
		}
		if x > p.RowLen {
			p.RowLen = math.Ceil(x/lib.SiteWidth) * lib.SiteWidth
		}
		p.rowUsed[r] = usedLength(n, rows[r])
	}
	return nil
}

func width(n *netlist.Netlist, cells []netlist.CellID) float64 {
	w := 0.0
	for _, id := range cells {
		w += n.Cells[id].Cell.Width
	}
	return w
}

func usedLength(n *netlist.Netlist, cells []netlist.CellID) float64 {
	return width(n, cells)
}

// HPWL returns the total half-perimeter wire length over all multi-pin
// nets, the standard placement quality metric and the router's lower
// bound.
func (p *Placement) HPWL() float64 {
	n := p.N
	csr := n.CSR()
	total := 0.0
	for id := range n.Nets {
		nn := &n.Nets[id]
		if nn.Dead || nn.Const >= 0 {
			continue
		}
		minX, maxX := math.Inf(1), math.Inf(-1)
		minY, maxY := math.Inf(1), math.Inf(-1)
		count := 0
		add := func(x, y float64) {
			minX = math.Min(minX, x)
			maxX = math.Max(maxX, x)
			minY = math.Min(minY, y)
			maxY = math.Max(maxY, y)
			count++
		}
		if nn.Driver != netlist.NoCell && p.Placed(nn.Driver) {
			add(p.Pos(nn.Driver))
		}
		for _, ld := range csr.Fanout(netlist.NetID(id)) {
			if ld.Cell != netlist.NoCell && p.Placed(ld.Cell) {
				add(p.Pos(ld.Cell))
			}
		}
		if count >= 2 {
			total += (maxX - minX) + (maxY - minY)
		}
	}
	return total
}
