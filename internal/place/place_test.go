package place

import (
	"math"
	"testing"

	"tpilayout/internal/circuitgen"
	"tpilayout/internal/netlist"
	"tpilayout/internal/stdcell"
)

func placeSmall(t testing.TB, util float64) (*netlist.Netlist, *Placement) {
	t.Helper()
	lib := stdcell.Default()
	n, err := circuitgen.Generate(circuitgen.S38417Class().Scale(0.03), lib)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Place(n, Options{TargetUtilization: util})
	if err != nil {
		t.Fatal(err)
	}
	return n, p
}

// checkLegal verifies no overlaps, site alignment, and row bounds.
func checkLegal(t *testing.T, n *netlist.Netlist, p *Placement) {
	t.Helper()
	type span struct {
		x0, x1 float64
		id     netlist.CellID
	}
	rows := make([][]span, p.NumRows)
	for ci := range n.Cells {
		c := &n.Cells[ci]
		if c.Dead || c.Cell.Kind.IsPhysicalOnly() {
			continue
		}
		r := p.Row[ci]
		if r < 0 || int(r) >= p.NumRows {
			t.Fatalf("cell %s in invalid row %d", c.Name, r)
		}
		x := p.X[ci]
		if x < -1e-9 || x+c.Cell.Width > p.RowLen+1e-6 {
			t.Fatalf("cell %s at x=%g exceeds row length %g", c.Name, x, p.RowLen)
		}
		if rem := math.Mod(x+1e-9, n.Lib.SiteWidth); rem > 1e-6 && n.Lib.SiteWidth-rem > 1e-6 {
			t.Fatalf("cell %s not site-aligned (x=%g)", c.Name, x)
		}
		rows[r] = append(rows[r], span{x, x + c.Cell.Width, netlist.CellID(ci)})
	}
	for r := range rows {
		s := rows[r]
		for i := range s {
			for j := i + 1; j < len(s); j++ {
				if s[i].x0 < s[j].x1-1e-9 && s[j].x0 < s[i].x1-1e-9 {
					t.Fatalf("row %d: cells %s and %s overlap",
						r, n.Cells[s[i].id].Name, n.Cells[s[j].id].Name)
				}
			}
		}
	}
}

func TestPlacementLegal(t *testing.T) {
	n, p := placeSmall(t, 0.97)
	checkLegal(t, n, p)
}

func TestUtilizationNearTarget(t *testing.T) {
	for _, util := range []float64{0.97, 0.50} {
		_, p := placeSmall(t, util)
		got := p.RowUtilization()
		if got > util+0.02 || got < util-0.12 {
			t.Errorf("utilization %.3f for target %.2f", got, util)
		}
		// Core area scales inversely with utilization.
		if math.Abs(p.AspectRatio()-1) > 0.25 {
			t.Errorf("aspect ratio %.2f too far from square", p.AspectRatio())
		}
	}
}

func TestLowerUtilizationMeansBiggerCore(t *testing.T) {
	_, pHigh := placeSmall(t, 0.97)
	_, pLow := placeSmall(t, 0.50)
	if pLow.CoreArea() <= pHigh.CoreArea() {
		t.Errorf("50%% utilization core (%.0f) not larger than 97%% core (%.0f)",
			pLow.CoreArea(), pHigh.CoreArea())
	}
	if pLow.ChipArea() <= pLow.CoreArea() {
		t.Error("chip area must exceed core area (rings)")
	}
}

func TestMinCutBeatsRandomOrderHPWL(t *testing.T) {
	lib := stdcell.Default()
	n, err := circuitgen.Generate(circuitgen.S38417Class().Scale(0.03), lib)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Place(n, Options{TargetUtilization: 0.97})
	if err != nil {
		t.Fatal(err)
	}
	good := p.HPWL()

	// Baseline: identical floorplan, cells packed in plain ID order.
	q := &Placement{N: n, Opt: p.Opt}
	q.floorplan()
	q.X = make([]float64, len(n.Cells))
	q.Row = make([]int32, len(n.Cells))
	for i := range q.Row {
		q.Row[i] = -1
	}
	r, x := 0, 0.0
	for ci := range n.Cells {
		c := &n.Cells[ci]
		if c.Dead {
			continue
		}
		if x+c.Cell.Width > q.RowLen {
			r++
			x = 0
		}
		if r >= q.NumRows {
			r = q.NumRows - 1
		}
		q.Row[ci] = int32(r)
		q.X[ci] = x
		x += c.Cell.Width
	}
	naive := q.HPWL()
	if good >= naive {
		t.Errorf("min-cut HPWL %.0f not better than naive order %.0f", good, naive)
	}
	t.Logf("HPWL: min-cut %.0f vs naive %.0f (%.1fx)", good, naive, naive/good)
}

func TestECOPlacesNewCells(t *testing.T) {
	n, p := placeSmall(t, 0.90)
	// Add a handful of buffers on existing nets, as CTS would.
	var added []netlist.CellID
	for i, ff := range n.FlipFlops() {
		if i >= 5 {
			break
		}
		buf, _ := n.InsertOnNet("ecobuf", "BUFX2", n.Cells[ff].Out, nil)
		added = append(added, buf)
	}
	if err := p.ECO(); err != nil {
		t.Fatal(err)
	}
	for _, id := range added {
		if !p.Placed(id) {
			t.Fatalf("ECO left %s unplaced", n.Cells[id].Name)
		}
	}
	checkLegal(t, n, p)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestECONearCentroid(t *testing.T) {
	n, p := placeSmall(t, 0.50)
	ff := n.FlipFlops()[0]
	fx, fy := p.Pos(ff)
	buf, _ := n.InsertOnNet("nearbuf", "BUFX2", n.Cells[ff].Out, nil)
	if err := p.ECO(); err != nil {
		t.Fatal(err)
	}
	bx, by := p.Pos(buf)
	// At 50% utilization there is free space close by; the buffer should
	// land within a modest distance of its neighbourhood centroid.
	if d := math.Abs(bx-fx) + math.Abs(by-fy); d > p.CoreW()/2 {
		t.Errorf("ECO cell landed %.0f µm from its driver", d)
	}
}

func TestInsertFillers(t *testing.T) {
	n, p := placeSmall(t, 0.80)
	area := p.InsertFillers()
	if area <= 0 {
		t.Fatal("no filler area at 80% utilization")
	}
	frac := area / p.CoreArea()
	if frac < 0.05 || frac > 0.30 {
		t.Errorf("filler fraction %.3f implausible for 80%% utilization", frac)
	}
	for _, id := range p.FillerCells {
		if n.Cells[id].Tag != netlist.TagFiller {
			t.Fatal("filler not tagged")
		}
	}
	// After filling, gaps narrower than the smallest filler may remain,
	// but total cell+filler occupancy must be close to the core area.
	occ := 0.0
	for ci := range n.Cells {
		if !n.Cells[ci].Dead {
			occ += n.Cells[ci].Cell.Area()
		}
	}
	if occ/p.CoreArea() < 0.95 {
		t.Errorf("occupancy after filling = %.3f, want ≥ 0.95", occ/p.CoreArea())
	}
}

func TestRemoveFillers(t *testing.T) {
	n, p := placeSmall(t, 0.80)
	if p.InsertFillers() <= 0 {
		t.Fatal("no fillers inserted")
	}
	count := len(p.FillerCells)
	if count == 0 {
		t.Fatal("no filler records")
	}
	live := n.NumLiveCells()
	p.RemoveFillers()
	if n.NumLiveCells() != live-count {
		t.Errorf("live cells %d, want %d", n.NumLiveCells(), live-count)
	}
	if len(p.FillerCells) != 0 {
		t.Error("filler records not cleared")
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}
