// Package route is a congestion-aware global router over the placed
// design. Each net is decomposed into two-pin edges with a rectilinear
// minimum spanning tree; each edge is routed as an L-shape through a
// grid of routing cells, choosing the bend with less congestion and
// detouring (adding wire length) when a cell overflows. The total wire
// length it reports is the paper's L_wires column.
package route

import (
	"context"
	"math"
	"sort"
	"time"

	"tpilayout/internal/netlist"
	"tpilayout/internal/place"
	"tpilayout/internal/telemetry"
)

// Options configures the router.
type Options struct {
	// GCellSize is the routing grid pitch in µm (default 20).
	GCellSize float64
	// Capacity is the wire length (µm) a routing cell absorbs before it
	// counts as congested (default 16 tracks × pitch).
	Capacity float64
	// Telemetry, when non-nil, receives the routing counters
	// (route.nets, route.pins, route.overflows), the route.total_um
	// gauge, and the per-net route.net_ns / route.net_overflows
	// distributions on the routing stage's span. Nil costs nothing.
	Telemetry *telemetry.Span
}

// Result holds the routed wire lengths.
type Result struct {
	// NetLen is the routed length in µm per net (0 for dead/constant or
	// single-pin nets).
	NetLen []float64
	// Total is the summed wire length (the paper's L_wires).
	Total float64
	// Overflow counts routing-cell overflow events (a congestion
	// indicator; the paper notes too-high utilization "would lead to
	// routing congestions").
	Overflow int
}

type point struct{ x, y float64 }

// Route globally routes every live multi-pin net of the placement.
func Route(p *place.Placement, opt Options) *Result {
	r, _ := RouteContext(context.Background(), p, opt) // Background never cancels
	return r
}

// RouteContext is Route with cooperative cancellation, checked every few
// routed nets; the only possible error is the context's.
func RouteContext(ctx context.Context, p *place.Placement, opt Options) (*Result, error) {
	if opt.GCellSize <= 0 {
		opt.GCellSize = 20
	}
	if opt.Capacity <= 0 {
		opt.Capacity = 16 * opt.GCellSize
	}
	n := p.N
	res := &Result{NetLen: make([]float64, len(n.Nets))}
	g := newGrid(p, opt)
	csr := n.CSR()

	// Deterministic net order: longer (higher-fanout) nets first, so the
	// big trunks claim uncongested space, then short nets fill in.
	type job struct {
		id   netlist.NetID
		pins []point
	}
	var jobs []job
	for id := range n.Nets {
		nn := &n.Nets[id]
		if nn.Dead || nn.Const >= 0 {
			continue
		}
		var pins []point
		if nn.Driver != netlist.NoCell && p.Placed(nn.Driver) {
			x, y := p.Pos(nn.Driver)
			pins = append(pins, point{x, y})
		}
		for _, ld := range csr.Fanout(netlist.NetID(id)) {
			if ld.Cell != netlist.NoCell && p.Placed(ld.Cell) {
				x, y := p.Pos(ld.Cell)
				pins = append(pins, point{x, y})
			}
			// Primary ports sit on the core edge nearest the pin bbox;
			// approximated at the left core edge at the driver's y.
			if ld.Cell == netlist.NoCell && len(pins) > 0 {
				pins = append(pins, point{0, pins[0].y})
			}
		}
		if len(pins) >= 2 {
			jobs = append(jobs, job{id: netlist.NetID(id), pins: pins})
		}
	}
	sort.SliceStable(jobs, func(i, j int) bool { return len(jobs[i].pins) > len(jobs[j].pins) })

	// Per-net latency and detour ("rip-up") distributions. The routing
	// loop is serial, so both record into local shards; with telemetry
	// off the nil locals also skip the time.Now pair per net.
	var hNetNS, hNetOvf *telemetry.LocalHist
	if sp := opt.Telemetry; sp != nil {
		hNetNS = sp.Histogram("route.net_ns").Local()
		hNetOvf = sp.Histogram("route.net_overflows").Local()
	}
	pinTotal := 0
	for ji, jb := range jobs {
		if ji&63 == 0 && ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		var t0 time.Time
		ovfBefore := g.overflow
		if hNetNS != nil {
			t0 = time.Now()
		}
		length := g.routeNet(jb.pins)
		if hNetNS != nil {
			hNetNS.Observe(int64(time.Since(t0)))
			hNetOvf.Observe(int64(g.overflow - ovfBefore))
		}
		res.NetLen[jb.id] = length
		res.Total += length
		pinTotal += len(jb.pins)
	}
	res.Overflow = g.overflow
	if sp := opt.Telemetry; sp != nil {
		sp.Counter("route.nets").Add(int64(len(jobs)))
		sp.Counter("route.pins").Add(int64(pinTotal))
		sp.Counter("route.overflows").Add(int64(g.overflow))
		sp.Gauge("route.total_um").Set(res.Total)
		hNetNS.Flush()
		hNetOvf.Flush()
	}
	return res, nil
}

// grid tracks per-cell routing usage.
type grid struct {
	opt      Options
	nx, ny   int
	use      []float64
	overflow int
}

func newGrid(p *place.Placement, opt Options) *grid {
	nx := int(math.Ceil(p.CoreW()/opt.GCellSize)) + 1
	ny := int(math.Ceil(p.CoreH()/opt.GCellSize)) + 1
	return &grid{opt: opt, nx: nx, ny: ny, use: make([]float64, nx*ny)}
}

func (g *grid) cellAt(x, y float64) int {
	i := int(x / g.opt.GCellSize)
	j := int(y / g.opt.GCellSize)
	if i < 0 {
		i = 0
	}
	if j < 0 {
		j = 0
	}
	if i >= g.nx {
		i = g.nx - 1
	}
	if j >= g.ny {
		j = g.ny - 1
	}
	return j*g.nx + i
}

// routeNet builds a rectilinear MST over the pins and routes each edge,
// returning the total routed length.
func (g *grid) routeNet(pins []point) float64 {
	if len(pins) > 64 {
		// Trunk order for huge nets (scan-enable class): chain pins in
		// snake order instead of O(k²) MST.
		sort.Slice(pins, func(i, j int) bool {
			if pins[i].y != pins[j].y {
				return pins[i].y < pins[j].y
			}
			return pins[i].x < pins[j].x
		})
		total := 0.0
		for i := 1; i < len(pins); i++ {
			total += g.routeEdge(pins[i-1], pins[i])
		}
		return total
	}
	// Prim MST on Manhattan distance.
	inTree := make([]bool, len(pins))
	dist := make([]float64, len(pins))
	from := make([]int, len(pins))
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	inTree[0] = true
	for i := 1; i < len(pins); i++ {
		dist[i] = manhattan(pins[0], pins[i])
		from[i] = 0
	}
	total := 0.0
	for added := 1; added < len(pins); added++ {
		best := -1
		for i := range pins {
			if !inTree[i] && (best < 0 || dist[i] < dist[best]) {
				best = i
			}
		}
		inTree[best] = true
		total += g.routeEdge(pins[from[best]], pins[best])
		for i := range pins {
			if !inTree[i] {
				if d := manhattan(pins[best], pins[i]); d < dist[i] {
					dist[i] = d
					from[i] = best
				}
			}
		}
	}
	return total
}

func manhattan(a, b point) float64 {
	return math.Abs(a.x-b.x) + math.Abs(a.y-b.y)
}

// routeEdge routes one two-pin connection as an L, picking the less
// congested bend; if both bends are congested it takes a detour (a Z with
// an extra jog), which lengthens the wire — the mechanism that makes
// congested layouts wire-longer, as in the paper's discussion.
func (g *grid) routeEdge(a, b point) float64 {
	base := manhattan(a, b)
	if base == 0 {
		return 0
	}
	bend1 := point{b.x, a.y} // horizontal first
	bend2 := point{a.x, b.y} // vertical first
	c1 := g.pathCost(a, bend1) + g.pathCost(bend1, b)
	c2 := g.pathCost(a, bend2) + g.pathCost(bend2, b)
	detour := 0.0
	var via point
	if c1 <= c2 {
		via = bend1
	} else {
		via = bend2
	}
	if math.Min(c1, c2) > 0 {
		// Congested on both: jog around through the midpoint row.
		g.overflow++
		detour = 2 * g.opt.GCellSize
	}
	g.commit(a, via)
	g.commit(via, b)
	return base + detour
}

// pathCost counts congested cells along a straight segment.
func (g *grid) pathCost(a, b point) float64 {
	cost := 0.0
	g.walk(a, b, func(cell int, seg float64) {
		if g.use[cell]+seg > g.opt.Capacity {
			cost += seg
		}
	})
	return cost
}

func (g *grid) commit(a, b point) {
	g.walk(a, b, func(cell int, seg float64) {
		g.use[cell] += seg
	})
}

// walk visits the routing cells along the straight segment a→b.
func (g *grid) walk(a, b point, f func(cell int, seg float64)) {
	length := manhattan(a, b)
	if length == 0 {
		return
	}
	steps := int(length/g.opt.GCellSize) + 1
	for s := 0; s <= steps; s++ {
		t := float64(s) / float64(steps)
		x := a.x + (b.x-a.x)*t
		y := a.y + (b.y-a.y)*t
		f(g.cellAt(x, y), length/float64(steps+1))
	}
}
