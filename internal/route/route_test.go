package route

import (
	"testing"

	"tpilayout/internal/circuitgen"
	"tpilayout/internal/place"
	"tpilayout/internal/stdcell"
)

func routed(t testing.TB, util float64) (*place.Placement, *Result) {
	t.Helper()
	lib := stdcell.Default()
	n, err := circuitgen.Generate(circuitgen.S38417Class().Scale(0.03), lib)
	if err != nil {
		t.Fatal(err)
	}
	p, err := place.Place(n, place.Options{TargetUtilization: util})
	if err != nil {
		t.Fatal(err)
	}
	return p, Route(p, Options{})
}

func TestRouteLengthAtLeastHPWL(t *testing.T) {
	p, r := routed(t, 0.90)
	hp := p.HPWL()
	if r.Total < hp {
		t.Errorf("routed length %.0f below the HPWL lower bound %.0f", r.Total, hp)
	}
	if r.Total > 3*hp {
		t.Errorf("routed length %.0f implausibly above HPWL %.0f", r.Total, hp)
	}
}

func TestRouteDeterministic(t *testing.T) {
	_, r1 := routed(t, 0.90)
	_, r2 := routed(t, 0.90)
	if r1.Total != r2.Total {
		t.Errorf("router not deterministic: %.1f vs %.1f", r1.Total, r2.Total)
	}
}

func TestTwoPinNetLength(t *testing.T) {
	// A net between two placed cells must be at least their Manhattan
	// distance and no more than distance + detours.
	p, r := routed(t, 0.90)
	n := p.N
	fan := n.Fanouts()
	checked := 0
	for id := range n.Nets {
		if n.Nets[id].Dead || n.Nets[id].Const >= 0 || n.Nets[id].Driver < 0 {
			continue
		}
		loads := fan[id]
		if len(loads) != 1 || loads[0].Cell < 0 {
			continue
		}
		x1, y1 := p.Pos(n.Nets[id].Driver)
		x2, y2 := p.Pos(loads[0].Cell)
		d := abs(x1-x2) + abs(y1-y2)
		if r.NetLen[id] < d-1e-6 {
			t.Fatalf("net %s routed %.1f < manhattan %.1f", n.Nets[id].Name, r.NetLen[id], d)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no two-pin nets checked")
	}
}

func TestCongestionGrowsWithUtilization(t *testing.T) {
	_, loose := routed(t, 0.60)
	_, tight := routed(t, 0.97)
	if tight.Overflow < loose.Overflow {
		t.Errorf("overflow at 97%% (%d) below 60%% (%d)", tight.Overflow, loose.Overflow)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
