// Package scan implements full-scan insertion and scan-chain management:
// flip-flop substitution with scan equivalents, balanced chain formation,
// scan-enable buffering, and the layout-driven chain reordering of step 3
// of the paper's tool flow.
package scan

import (
	"fmt"
	"sort"

	"tpilayout/internal/netlist"
	"tpilayout/internal/stdcell"
	"tpilayout/internal/tpi"
)

// Element is one scannable cell in a chain: either a scan flip-flop
// (scan-in = its si pin) or a TSFF (scan-in = the TI pin of its input
// multiplexer, scan-out = its internal flop's output).
type Element struct {
	// FF is the flip-flop providing the scan-out net.
	FF netlist.CellID
	// SIcell/SIpin locate the pin that receives the previous element's
	// scan-out.
	SIcell netlist.CellID
	SIpin  int
}

// Chain is one stitched scan chain.
type Chain struct {
	Elements []Element
	ScanIn   netlist.NetID // primary input net
	ScanOut  netlist.NetID // net of the last element's flop output (also a PO)
}

// Options configures scan insertion.
type Options struct {
	// MaxChainLength bounds the balanced chain length (0 = unbounded;
	// then MaxChains must be set).
	MaxChainLength int
	// MaxChains bounds the number of chains (0 = derived from length).
	MaxChains int
	// SEFanoutLimit is the maximum scan-enable loads per buffer before a
	// buffer tree is built (default 24).
	SEFanoutLimit int
}

// Result describes the inserted scan structure.
type Result struct {
	Chains []Chain
	SE     netlist.NetID // scan-enable primary input
	// SEBuffers are the scan-enable distribution buffers (step 3 of the
	// flow notes "buffers and inverters may be added to the scan-enable
	// signals").
	SEBuffers []netlist.CellID
}

// NumChains returns the chain count.
func (r *Result) NumChains() int { return len(r.Chains) }

// MaxLength returns the longest chain length l_max used by the TDV/TAT
// equations.
func (r *Result) MaxLength() int {
	m := 0
	for _, c := range r.Chains {
		if len(c.Elements) > m {
			m = len(c.Elements)
		}
	}
	return m
}

// CaptureConstraints returns the capture-mode constants contributed by scan:
// scan-enable low during capture.
func (r *Result) CaptureConstraints() map[netlist.NetID]int8 {
	return map[netlist.NetID]int8{r.SE: 0}
}

// Insert converts every plain flip-flop to a scan flip-flop, forms
// balanced chains over all scannable elements (including the TSFFs in
// tps, which may be nil), and stitches them. Chain order is initially the
// netlist order; call Reorder after placement for the layout-driven order.
func Insert(n *netlist.Netlist, tps *tpi.Result, opt Options) (*Result, error) {
	if opt.MaxChainLength <= 0 && opt.MaxChains <= 0 {
		return nil, fmt.Errorf("scan: need MaxChainLength or MaxChains")
	}
	if opt.SEFanoutLimit <= 0 {
		opt.SEFanoutLimit = 24
	}
	res := &Result{SE: n.AddPI("se")}

	// TSFF internal flops are scanned through their own TE-controlled
	// input mux; collect them so the substitution pass skips them.
	tsffFF := make(map[netlist.CellID]*tpi.TestPoint)
	if tps != nil {
		for i := range tps.Points {
			tsffFF[tps.Points[i].FF] = &tps.Points[i]
		}
	}

	var elems []Element
	zero := n.AddConst(0)
	for _, ff := range n.FlipFlops() {
		c := &n.Cells[ff]
		if tp, isTSFF := tsffFF[ff]; isTSFF {
			im := n.Cells[tp.InMux]
			elems = append(elems, Element{FF: ff, SIcell: tp.InMux, SIpin: im.Cell.FindInput("b")})
			continue
		}
		if c.Cell.Kind == stdcell.KindDff {
			if err := n.SwapCell(ff, "SDFFX1", map[string]netlist.NetID{"si": zero, "se": res.SE}); err != nil {
				return nil, fmt.Errorf("scan: %w", err)
			}
			c.Tag = netlist.TagScanFF
		}
		elems = append(elems, Element{FF: ff, SIcell: ff, SIpin: c.Cell.FindInput("si")})
	}
	if len(elems) == 0 {
		return res, nil
	}

	nch := chainCount(len(elems), opt)
	res.Chains = formChains(elems, nch)
	for i := range res.Chains {
		stitch(n, &res.Chains[i], i)
	}
	res.buildSETree(n, opt.SEFanoutLimit)
	return res, nil
}

// chainCount derives the balanced chain count from the options.
func chainCount(nff int, opt Options) int {
	nch := opt.MaxChains
	if opt.MaxChainLength > 0 {
		byLen := (nff + opt.MaxChainLength - 1) / opt.MaxChainLength
		if nch == 0 || byLen > nch {
			nch = byLen
		}
		if opt.MaxChains > 0 && nch > opt.MaxChains {
			nch = opt.MaxChains
		}
	}
	if nch <= 0 {
		nch = 1
	}
	if nch > nff {
		nch = nff
	}
	return nch
}

// formChains slices the element list into nch balanced chains.
func formChains(elems []Element, nch int) []Chain {
	chains := make([]Chain, nch)
	base := len(elems) / nch
	extra := len(elems) % nch
	pos := 0
	for i := range chains {
		l := base
		if i < extra {
			l++
		}
		chains[i].Elements = append([]Element(nil), elems[pos:pos+l]...)
		pos += l
	}
	return chains
}

// stitch wires one chain: a fresh scan-in PI, element-to-element si
// connections, and a scan-out PO on the last flop.
func stitch(n *netlist.Netlist, c *Chain, idx int) {
	if c.ScanIn == netlist.NoNet {
		c.ScanIn = n.AddPI(fmt.Sprintf("si%d", idx))
	}
	prev := c.ScanIn
	for _, e := range c.Elements {
		n.SetInput(e.SIcell, e.SIpin, prev)
		prev = n.Cells[e.FF].Out
	}
	if c.ScanOut == netlist.NoNet {
		c.ScanOut = prev
		n.AddPO(fmt.Sprintf("so%d", idx), prev)
	} else if c.ScanOut != prev {
		// Reordering changed the last element: retarget the PO.
		for pi := range n.POs {
			if n.POs[pi].Name == fmt.Sprintf("so%d", idx) {
				n.POs[pi].Net = prev
			}
		}
		c.ScanOut = prev
	}
}

// buildSETree splits the scan-enable load between buffers when the fanout
// exceeds the limit, tagging the buffers for ECO placement.
func (r *Result) buildSETree(n *netlist.Netlist, limit int) {
	loads := append([]netlist.Load(nil), n.Fanouts()[r.SE]...)
	if len(loads) <= limit {
		return
	}
	for i := 0; i < len(loads); i += limit {
		end := i + limit
		if end > len(loads) {
			end = len(loads)
		}
		buf, _ := n.InsertOnNet(fmt.Sprintf("sebuf%d", i/limit), "BUFX4", r.SE, loads[i:end])
		n.Cells[buf].Tag = netlist.TagSEBuffer
		r.SEBuffers = append(r.SEBuffers, buf)
	}
}

// Reorder implements the layout-driven scan chain reordering of flow step
// 3: all scannable elements are re-assigned to chains and re-ordered
// within each chain from their placed positions (row-major snake order,
// which is the classic wire-length-minimizing heuristic for row-based
// layouts), then the netlist is re-stitched. pos must return the placed
// location of a cell.
func Reorder(n *netlist.Netlist, r *Result, pos func(netlist.CellID) (x, y float64)) {
	var all []Element
	for _, c := range r.Chains {
		all = append(all, c.Elements...)
	}
	if len(all) == 0 {
		return
	}
	type placed struct {
		e    Element
		x, y float64
	}
	ps := make([]placed, len(all))
	for i, e := range all {
		x, y := pos(e.FF)
		ps[i] = placed{e: e, x: x, y: y}
	}
	// Snake order: sort rows by y; alternate x direction per row.
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].y != ps[j].y {
			return ps[i].y < ps[j].y
		}
		return ps[i].x < ps[j].x
	})
	// Group by row, reversing every other row.
	var ordered []Element
	row := 0
	for i := 0; i < len(ps); {
		j := i
		for j < len(ps) && ps[j].y == ps[i].y {
			j++
		}
		if row%2 == 0 {
			for k := i; k < j; k++ {
				ordered = append(ordered, ps[k].e)
			}
		} else {
			for k := j - 1; k >= i; k-- {
				ordered = append(ordered, ps[k].e)
			}
		}
		row++
		i = j
	}
	nch := len(r.Chains)
	newChains := formChains(ordered, nch)
	for i := range newChains {
		newChains[i].ScanIn = r.Chains[i].ScanIn
		newChains[i].ScanOut = r.Chains[i].ScanOut
		stitch(n, &newChains[i], i)
	}
	r.Chains = newChains
}

// WireLength computes the total Manhattan length of the chain routing for
// a given placement — the quantity the layout-driven reordering minimizes.
func WireLength(r *Result, pos func(netlist.CellID) (x, y float64)) float64 {
	total := 0.0
	for _, c := range r.Chains {
		px, py := 0.0, 0.0
		for i, e := range c.Elements {
			x, y := pos(e.FF)
			if i > 0 {
				dx, dy := x-px, y-py
				if dx < 0 {
					dx = -dx
				}
				if dy < 0 {
					dy = -dy
				}
				total += dx + dy
			}
			px, py = x, y
		}
	}
	return total
}
