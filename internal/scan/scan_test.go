package scan

import (
	"math/rand"
	"testing"

	"tpilayout/internal/circuitgen"
	"tpilayout/internal/logicsim"
	"tpilayout/internal/netlist"
	"tpilayout/internal/stdcell"
	"tpilayout/internal/tpi"
)

func genSmall(t testing.TB) *netlist.Netlist {
	t.Helper()
	lib := stdcell.Default()
	n, err := circuitgen.Generate(circuitgen.S38417Class().Scale(0.02), lib)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestInsertFormsBalancedChains(t *testing.T) {
	n := genSmall(t)
	ffs := n.NumFlipFlops()
	res, err := Insert(n, nil, Options{MaxChainLength: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("invalid after scan insertion: %v", err)
	}
	total := 0
	for _, c := range res.Chains {
		if len(c.Elements) > 10 {
			t.Errorf("chain length %d exceeds the limit", len(c.Elements))
		}
		total += len(c.Elements)
	}
	if total != ffs {
		t.Errorf("chains hold %d elements, want all %d flip-flops", total, ffs)
	}
	if res.MaxLength() > 10 {
		t.Errorf("MaxLength = %d", res.MaxLength())
	}
	// Balance: min and max chain lengths differ by at most 1.
	min, max := total, 0
	for _, c := range res.Chains {
		if len(c.Elements) < min {
			min = len(c.Elements)
		}
		if len(c.Elements) > max {
			max = len(c.Elements)
		}
	}
	if max-min > 1 {
		t.Errorf("chains unbalanced: min %d, max %d", min, max)
	}
	// Every flop is now a scan flop.
	for _, ff := range n.FlipFlops() {
		if n.Cells[ff].Cell.Kind != stdcell.KindSdff {
			t.Fatalf("flop %s not converted to a scan flop", n.Cells[ff].Name)
		}
	}
}

func TestMaxChainsLimit(t *testing.T) {
	n := genSmall(t)
	res, err := Insert(n, nil, Options{MaxChains: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumChains() != 4 {
		t.Errorf("NumChains = %d, want 4", res.NumChains())
	}
}

// TestShiftThroughChain shifts a marker pattern through a full chain and
// reads it back out, proving the stitching end to end.
func TestShiftThroughChain(t *testing.T) {
	n := genSmall(t)
	res, err := Insert(n, nil, Options{MaxChainLength: 25})
	if err != nil {
		t.Fatal(err)
	}
	s, err := logicsim.New(n)
	if err != nil {
		t.Fatal(err)
	}
	chain := res.Chains[0]
	L := len(chain.Elements)
	s.SetNet(res.SE, ^uint64(0)) // shift mode
	marker := uint64(0xA5A5)
	s.SetNet(chain.ScanIn, marker)
	s.StepClock(-1)
	s.SetNet(chain.ScanIn, 0)
	for i := 1; i < L; i++ {
		s.StepClock(-1)
	}
	// The marker must now sit in the last element, i.e. on scan-out.
	if got := s.Get(chain.ScanOut); got != marker {
		t.Errorf("scan-out after %d shifts = %#x, want %#x", L, got, marker)
	}
}

func TestScanWithTSFFs(t *testing.T) {
	n := genSmall(t)
	tps, err := tpi.Insert(n, tpi.Options{Count: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Insert(n, tps, Options{MaxChainLength: 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range res.Chains {
		total += len(c.Elements)
	}
	if total != n.NumFlipFlops() {
		t.Errorf("chains hold %d elements, want %d (including TSFFs)", total, n.NumFlipFlops())
	}
	// Shift through all chains with both scan-enable and TSFF TE high;
	// every flop (TSFFs included) must take part.
	s, err := logicsim.New(n)
	if err != nil {
		t.Fatal(err)
	}
	s.SetNet(res.SE, ^uint64(0))
	s.SetNet(tps.TE, ^uint64(0))
	s.SetNet(tps.TR, ^uint64(0))
	for _, c := range res.Chains {
		s.SetNet(c.ScanIn, 0x3C3C)
	}
	maxL := res.MaxLength()
	for i := 0; i < maxL; i++ {
		s.StepClock(-1)
	}
	for ci, c := range res.Chains {
		for ei, e := range c.Elements {
			if got := s.Get(n.Cells[e.FF].Out); got != 0x3C3C {
				t.Fatalf("chain %d element %d (%s) holds %#x after full shift, want 0x3C3C",
					ci, ei, n.Cells[e.FF].Name, got)
			}
		}
	}
}

func TestSEBufferTree(t *testing.T) {
	n := genSmall(t)
	res, err := Insert(n, nil, Options{MaxChainLength: 50, SEFanoutLimit: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SEBuffers) == 0 {
		t.Fatal("no scan-enable buffers despite tiny fanout limit")
	}
	fan := n.Fanouts()
	if got := len(fan[res.SE]); got > 8+len(res.SEBuffers) {
		t.Errorf("scan-enable root still drives %d loads", got)
	}
	for _, b := range res.SEBuffers {
		if n.Cells[b].Tag != netlist.TagSEBuffer {
			t.Error("scan-enable buffer not tagged")
		}
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReorderReducesWireLength(t *testing.T) {
	n := genSmall(t)
	res, err := Insert(n, nil, Options{MaxChainLength: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Synthetic placement: deterministic random positions on 20 rows.
	rng := rand.New(rand.NewSource(99))
	pos := make(map[netlist.CellID][2]float64)
	for _, ff := range n.FlipFlops() {
		pos[ff] = [2]float64{rng.Float64() * 1000, float64(rng.Intn(20)) * 3.7}
	}
	at := func(id netlist.CellID) (float64, float64) { p := pos[id]; return p[0], p[1] }

	before := WireLength(res, at)
	Reorder(n, res, at)
	after := WireLength(res, at)
	if after >= before {
		t.Errorf("reordering did not reduce chain wire length: %.0f -> %.0f", before, after)
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("invalid after reorder: %v", err)
	}
	// Same element set, same chain count.
	count := 0
	for _, c := range res.Chains {
		count += len(c.Elements)
	}
	if count != n.NumFlipFlops() {
		t.Errorf("reorder lost elements: %d vs %d", count, n.NumFlipFlops())
	}
	// Shifting still works end to end after reordering.
	s, err := logicsim.New(n)
	if err != nil {
		t.Fatal(err)
	}
	s.SetNet(res.SE, ^uint64(0))
	c := res.Chains[0]
	s.SetNet(c.ScanIn, 0x77)
	for i := 0; i < len(c.Elements); i++ {
		s.StepClock(-1)
	}
	if got := s.Get(c.ScanOut); got != 0x77 {
		t.Errorf("post-reorder shift broken: scan-out %#x", got)
	}
}
