package service

import (
	"container/list"
	"encoding/json"
	"sync"
	"sync/atomic"
)

// resultCache is the content-addressed result store: canonical request
// hash → finished JobResult, LRU-evicted under a byte budget. Entries
// are immutable once inserted (handlers copy the top-level struct before
// personalizing per-job fields), so a cached result can be served to any
// number of jobs concurrently without locking beyond the lookup.
type resultCache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	ll     *list.List // *cacheEntry, front = most recently used
	byKey  map[string]*list.Element

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheEntry struct {
	key  string
	size int64
	res  *JobResult
}

func newResultCache(budget int64) *resultCache {
	return &resultCache{budget: budget, ll: list.New(), byKey: map[string]*list.Element{}}
}

// Get returns the cached result for key, refreshing its recency.
func (c *resultCache) Get(key string) (*JobResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*cacheEntry).res, true
}

// Put inserts res under key, evicting least-recently-used entries until
// the byte budget holds. The entry's cost is its JSON encoding size — the
// same bytes a result response ships, so the budget approximates real
// response-serving capacity. A result bigger than the whole budget is
// simply not cached.
func (c *resultCache) Put(key string, res *JobResult) {
	data, err := json.Marshal(res)
	if err != nil {
		return // unencodable results cannot be served anyway
	}
	size := int64(len(data))
	if size > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		// Identical key means identical result; just refresh recency.
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, size: size, res: res})
	c.used += size
	for c.used > c.budget {
		back := c.ll.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.byKey, ent.key)
		c.used -= ent.size
	}
}

// Stats returns entry count, used bytes, and hit/miss counters.
func (c *resultCache) Stats() (entries int, bytes, hits, misses int64) {
	c.mu.Lock()
	entries, bytes = c.ll.Len(), c.used
	c.mu.Unlock()
	return entries, bytes, c.hits.Load(), c.misses.Load()
}
