package service

// The recovery invariant suite: seeded fault injection drives the full
// crash-safety surface — level panics, journal append failures, abrupt
// kills, torn segment tails — and after every scenario the journal and
// the restarted server must satisfy the recovery invariants:
//
//  1. no job ever retires twice (at most one terminal record per ID);
//  2. with an intact journal, every accepted job is queryable after
//     restart and reaches exactly one terminal state;
//  3. no run spends more retries than its budget;
//  4. a torn tail (garbage appended to the newest segment) never
//     prevents recovery of the records written before it;
//  5. after a final clean drain, the journal folds to zero pending jobs;
//  6. nothing leaks: the goroutine count settles back to the baseline.
//
// Every decision comes from a seeded chaos.Injector, so a failing seed
// replays identically under -run 'TestChaosRecoveryInvariants/seed=N'.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"testing"
	"time"

	"tpilayout/internal/chaos"
	"tpilayout/internal/flow"
	"tpilayout/internal/journal"
	"tpilayout/internal/netlist"
)

const chaosJobBudget = 4

func TestChaosRecoveryInvariants(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 25
	}
	before := runtime.NumGoroutine()
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			chaosScenario(t, int64(seed))
		})
	}
	waitGoroutines(t, before)
}

// chaosScenario runs one full crash/recovery cycle under a seeded
// injector and checks every invariant that must survive it.
func chaosScenario(t *testing.T, seed int64) {
	dir := t.TempDir()
	inj := chaos.New(seed)
	inj.Arm("level.fail", chaos.Plan{Probability: 0.35, Limit: 5})
	inj.Arm("journal.append", chaos.Plan{Probability: 0.08, Limit: 2})
	inj.Arm("kill", chaos.Plan{Probability: 0.5, Limit: 1})
	inj.Arm("cancel", chaos.Plan{Probability: 0.3, Limit: 1})
	inj.Arm("garbage", chaos.Plan{Probability: 0.5, Limit: 1})

	retry := RetryPolicy{
		MaxAttempts: 2, BaseDelay: 50 * time.Microsecond,
		MaxDelay: 200 * time.Microsecond, JobBudget: chaosJobBudget,
	}
	chaosLevel := func(rn *run, base *netlist.Netlist, cfg flow.Config, pct float64) flow.LevelResult {
		if inj.Should("level.fail") {
			return flow.LevelResult{TPPercent: pct, Err: transientStageError(pct)}
		}
		return flow.LevelResult{TPPercent: pct, Metrics: stubMetrics(pct)}
	}
	jh := inj.JournalHook()
	jhook := func(op journal.Op) error { return jh(string(op)) }

	s1, err := Open(Options{
		Workers: 2, QueueDepth: 16, DataDir: dir, Retry: retry,
		journalNoSync: true, journalHook: jhook,
	})
	if err != nil {
		t.Fatal(err)
	}
	s1.runLevel = chaosLevel // safe: empty journal, replay readmits nothing
	waitFor(t, func() bool { return s1.Stats().Ready })

	// The workload: two identical jobs (they coalesce), one distinct, one
	// budgeted (uncacheable, never checkpointed). Cache-hit answers
	// (code 200) are terminal immediately and never journaled — exclude
	// them from the replay-visibility invariant.
	var tracked []string
	submit := func(body []byte) {
		code, st := postJob(t, s1, body)
		switch code {
		case http.StatusAccepted:
			tracked = append(tracked, st.ID)
		case http.StatusOK: // cache hit: terminal, unjournaled
		default:
			t.Fatalf("seed %d: submit = %d", seed, code)
		}
	}
	same := jobBody(t, "acme", 0, 1)
	submit(same)
	submit(same)
	submit(jobBody(t, "zeta", 2, 3))
	budgeted := fmt.Sprintf(
		`{"tenant":"acme","circuit":{"bench":%q,"name":"tiny"},"tp_levels":[4],"flow":{"skip_atpg":true,"atpg_budget_ms":60000}}`,
		testBench)
	submit([]byte(budgeted))

	if inj.Should("cancel") && len(tracked) > 0 {
		do(t, s1, "DELETE", "/v1/jobs/"+tracked[0], nil)
	}

	killed := inj.Should("kill")
	if killed {
		s1.Kill() // SIGKILL semantics: nothing written after this point
	} else {
		for _, id := range tracked {
			waitTerminal(t, s1, id)
		}
		shutdown(t, s1)
	}
	// Faults on s1's appends can lose records a restart would otherwise
	// see; faults on s2's appends (counted below) can additionally leave
	// stale accepted records behind after the final drain.
	faultsBeforeRestart := s1.Stats().JournalErrors > 0

	// Torn tail: garbage appended to the newest segment simulates a
	// write cut mid-frame by the crash. Recovery must ignore it.
	if inj.Should("garbage") {
		appendGarbageTail(t, dir, seed)
	}

	// Restart. The same injector keeps firing (until its limits) so the
	// recovered jobs can fail and retry on the second life too.
	gate := make(chan struct{})
	s2, err := Open(Options{
		Workers: 2, QueueDepth: 16, DataDir: dir, Retry: retry,
		journalNoSync: true, journalHook: jhook, replayGate: gate,
	})
	if err != nil {
		t.Fatalf("seed %d: reopen after crash: %v", seed, err)
	}
	s2.runLevel = chaosLevel
	close(gate)
	waitFor(t, func() bool { return s2.Stats().Ready })

	// Invariant 2: with an intact journal every accepted job is visible
	// after restart and reaches a terminal state. A journal whose appends
	// were faulted may legitimately have lost records (availability over
	// durability) — then absence is allowed, double-retirement still not.
	for _, id := range tracked {
		code, _ := do(t, s2, "GET", "/v1/jobs/"+id, nil)
		if code == http.StatusNotFound {
			if !faultsBeforeRestart {
				t.Errorf("seed %d: job %s lost across restart with an intact journal", seed, id)
			}
			continue
		}
		if code != http.StatusOK {
			t.Fatalf("seed %d: status %s = %d", seed, id, code)
		}
		st := waitTerminal(t, s2, id)
		// Invariant 3: the retry budget bounds every run's retries.
		if st.Retries > chaosJobBudget {
			t.Errorf("seed %d: job %s spent %d retries, budget %d", seed, id, st.Retries, chaosJobBudget)
		}
	}
	journalFaults := faultsBeforeRestart || s2.Stats().JournalErrors > 0
	shutdown(t, s2)

	// Invariants 1, 4, 5 over the journal itself.
	checkJournalInvariants(t, dir, seed, journalFaults)
}

// waitTerminal polls a job to any terminal state (chaos decides which).
func waitTerminal(t *testing.T, s *Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, s, id)
		if st.State.terminal() {
			return st
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return JobStatus{}
}

// appendGarbageTail writes seed-derived junk to the end of the newest
// live segment: the torn frame a crash leaves behind.
func appendGarbageTail(t *testing.T, dir string, seed int64) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".wal" {
			segs = append(segs, e.Name())
		}
	}
	if len(segs) == 0 {
		return
	}
	sort.Strings(segs)
	f, err := os.OpenFile(filepath.Join(dir, segs[len(segs)-1]), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	junk := make([]byte, 1+int(seed%37))
	for i := range junk {
		junk[i] = byte(seed>>(uint(i)%8) ^ int64(i)*31)
	}
	if _, err := f.Write(junk); err != nil {
		t.Fatal(err)
	}
}

// checkJournalInvariants reads the journal (invariant 4: a torn tail
// must not prevent the read) and walks the record stream: at most one
// terminal record per job ID ever (invariant 1), terminal records of
// unknown jobs only when appends were faulted, and — after the final
// clean drain — a fold with zero pending jobs (invariant 5).
func checkJournalInvariants(t *testing.T, dir string, seed int64, journalFaults bool) {
	t.Helper()
	recs, err := journal.Read(dir)
	if err != nil {
		t.Fatalf("seed %d: reading journal after recovery: %v", seed, err)
	}

	pending := map[string]bool{}
	retired := map[string]bool{}
	terminate := func(id string) {
		if retired[id] {
			t.Errorf("seed %d: job %s retired twice", seed, id)
		}
		if !pending[id] && !journalFaults {
			// With intact appends a terminal record always follows its
			// accepted record (or the snapshot holding it).
			t.Errorf("seed %d: terminal record for unknown job %s", seed, id)
		}
		delete(pending, id)
		retired[id] = true
	}
	for _, r := range recs {
		switch r.Type {
		case journal.TypeSnapshot:
			var snap snapState
			if unmarshalRecord(r.Data, &snap) {
				pending, retired = map[string]bool{}, map[string]bool{}
				for _, p := range snap.Pending {
					pending[p.JobID] = true
				}
				for _, rj := range snap.Retired {
					retired[rj.JobID] = true
				}
			}
		case journal.TypeAccepted:
			var rec recAccepted
			if unmarshalRecord(r.Data, &rec) {
				pending[rec.JobID] = true
			}
		case journal.TypeRetired:
			var rec recRetired
			if unmarshalRecord(r.Data, &rec) {
				for _, id := range rec.JobIDs {
					terminate(id)
				}
			}
		case journal.TypeCanceled:
			var rec recCanceled
			if unmarshalRecord(r.Data, &rec) {
				terminate(rec.JobID)
			}
		}
	}

	// Invariant 5: the final server drained cleanly, so nothing may
	// still be owed a run. (A drain retires queued jobs as canceled;
	// journal faults can leave a stale accepted record behind.)
	if len(pending) > 0 && !journalFaults {
		t.Errorf("seed %d: journal still holds pending jobs after a clean drain: %v", seed, pending)
	}

	// Cross-check with the production fold: it must agree.
	if fold := foldRecords(recs); len(fold.Pending) > 0 && !journalFaults {
		t.Errorf("seed %d: foldRecords reports %d pending after drain", seed, len(fold.Pending))
	}
}

func unmarshalRecord(data []byte, v any) bool {
	return json.Unmarshal(data, v) == nil
}
