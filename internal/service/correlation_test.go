package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"tpilayout/internal/telemetry"
)

// syncBuffer is a goroutine-safe log destination: the service logs from
// handler and worker goroutines concurrently.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Lines() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return strings.Split(strings.TrimSpace(b.buf.String()), "\n")
}

// logRecords decodes every JSON log line, returning the parsed maps.
func logRecords(t *testing.T, b *syncBuffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range b.Lines() {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("log line is not JSON: %v\n%s", err, line)
		}
		out = append(out, m)
	}
	return out
}

// TestEndToEndCorrelation is the tentpole acceptance test: one
// submission's job_id and run_id are visible — with the same values —
// in the HTTP response, the status API, every SSE span frame, the JSON
// service log, the journal (proven by replay), and the flight recorder.
func TestEndToEndCorrelation(t *testing.T) {
	dir := t.TempDir()
	logBuf := &syncBuffer{}
	logger, err := telemetry.NewLogger(logBuf, "json", slog.LevelDebug)
	if err != nil {
		t.Fatal(err)
	}
	flight := telemetry.NewFlightRecorder(1024)
	prom := telemetry.NewPromSink("tpid")
	lr := &levelRecorder{}
	opt := Options{Workers: 1, Metrics: prom, Log: logger, Flight: flight, FlightRunEvents: 128}
	s := openDurable(t, dir, opt, func(s *Server) { s.runLevel = lr.hook })
	ts := httptest.NewServer(s)

	// Submit with a client-chosen X-Request-ID: it becomes the job id
	// and is echoed back on the response.
	const reqID = "client-req.001"
	req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(jobBody(t, "acme", 0, 2)))
	req.Header.Set("X-Request-ID", reqID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != reqID {
		t.Fatalf("X-Request-ID echo = %q, want %q", got, reqID)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.ID != reqID {
		t.Fatalf("job id = %q, want the client request id %q", st.ID, reqID)
	}

	final := waitState(t, s, st.ID, StateDone)
	runID := final.RunID
	if runID == "" {
		t.Fatal("terminal status carries no run_id")
	}

	// SSE replay: every span frame carries the run's correlation attrs.
	evResp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	var ndjson bytes.Buffer
	sc := bufio.NewScanner(evResp.Body)
	inDone := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "event: done":
			inDone = true
		case strings.HasPrefix(line, "data: ") && !inDone:
			ndjson.WriteString(strings.TrimPrefix(line, "data: "))
			ndjson.WriteByte('\n')
		}
	}
	evResp.Body.Close()
	trace, err := telemetry.ParseTrace(&ndjson)
	if err != nil {
		t.Fatalf("SSE payload: %v", err)
	}
	if len(trace.Spans) == 0 {
		t.Fatal("SSE stream carried no spans")
	}
	for _, sp := range trace.Spans {
		if sp.Attrs["run_id"] != runID || sp.Attrs["job_id"] != reqID || sp.Attrs["tenant"] != "acme" {
			t.Fatalf("span %q attrs not correlated: %v", sp.Stage, sp.Attrs)
		}
	}

	// JSON log: accepted/started/finished lines carry both ids.
	var accepted, finished bool
	for _, rec := range logRecords(t, logBuf) {
		switch rec["msg"] {
		case "job accepted":
			accepted = rec["job_id"] == reqID && rec["run_id"] == runID && rec["tenant"] == "acme"
		case "run finished":
			finished = rec["job_id"] == reqID && rec["run_id"] == runID
		}
	}
	if !accepted || !finished {
		t.Fatalf("log lines missing or uncorrelated (accepted=%v finished=%v):\n%s",
			accepted, finished, strings.Join(logBuf.Lines(), "\n"))
	}

	// Flight recorder: the global ring dump parses and retains events
	// stamped with this run's ids; the per-run ring serves ?job=.
	code, dump := do(t, s, "GET", "/debug/flight", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /debug/flight = %d", code)
	}
	ftrace, err := telemetry.ParseTrace(bytes.NewReader(dump))
	if err != nil {
		t.Fatalf("flight dump does not parse: %v", err)
	}
	var sawRun bool
	for _, e := range ftrace.Events {
		if e.Attrs["run_id"] == runID {
			sawRun = true
			break
		}
	}
	if !sawRun {
		t.Fatalf("flight dump has no events for run %s:\n%s", runID, dump)
	}
	code, runDump := do(t, s, "GET", "/debug/flight?job="+st.ID, nil)
	if code != http.StatusOK {
		t.Fatalf("GET /debug/flight?job= = %d", code)
	}
	if _, err := telemetry.ParseTrace(bytes.NewReader(runDump)); err != nil {
		t.Fatalf("per-run flight dump does not parse: %v", err)
	}
	if code, _ := do(t, s, "GET", "/debug/flight?job=nope", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job flight dump = %d, want 404", code)
	}

	// Per-tenant SLO families surfaced on /metrics with the tenant label.
	mrec := httptest.NewRecorder()
	prom.ServeHTTP(mrec, httptest.NewRequest("GET", "/metrics", nil))
	exposition := mrec.Body.String()
	for _, want := range []string{
		`tpid_service_tenant_jobs_done_total{stage="service",tenant="acme"} 1`,
		`tpid_service_tenant_e2e_ns_count{stage="service",tenant="acme"}`,
		`tpid_service_tenant_queue_wait_ns_count{stage="service",tenant="acme"}`,
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("exposition missing %q:\n%s", want, exposition)
		}
	}

	// Journal: a restart replays the job under its original run_id —
	// the id was durably recorded at accept time.
	ts.Close()
	shutdown(t, s)
	s2 := openDurable(t, dir, opt, func(s *Server) { s.runLevel = lr.hook })
	defer shutdown(t, s2)
	replayed := getStatus(t, s2, st.ID)
	if replayed.RunID != runID {
		t.Fatalf("replayed run_id = %q, want the journaled %q", replayed.RunID, runID)
	}
	if replayed.State != StateDone {
		t.Fatalf("replayed state = %s, want done", replayed.State)
	}
}

// TestRequestIDValidation: malformed or colliding client ids are
// ignored in favor of minted ones — no 500s, no hijacked jobs.
func TestRequestIDValidation(t *testing.T) {
	s := New(Options{Workers: 1})
	defer shutdown(t, s)
	s.runFlow = func(rn *run) (*JobResult, error) { return stubResult(rn), nil }
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Direct ServeHTTP so even header values a real client would refuse
	// to send (newlines) reach the validation path.
	submit := func(reqID string, level float64) JobStatus {
		t.Helper()
		req := httptest.NewRequest("POST", "/v1/jobs", bytes.NewReader(jobBody(t, "acme", level)))
		if reqID != "" {
			req.Header["X-Request-Id"] = []string{reqID}
		}
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusAccepted && rec.Code != http.StatusOK {
			t.Fatalf("submit = %d: %s", rec.Code, rec.Body.String())
		}
		var st JobStatus
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	// Bad shapes: label injection, over-long, empty — all get minted ids.
	for _, bad := range []string{`evil"id`, "sp ace", strings.Repeat("x", 65), "newline\nid"} {
		st := submit(bad, 1)
		if st.ID == bad {
			t.Errorf("invalid request id %q was honored", bad)
		}
	}
	// A colliding id (already a live job) gets a minted id, not a clash.
	first := submit("dup-id", 2)
	if first.ID != "dup-id" {
		t.Fatalf("valid id not honored: %q", first.ID)
	}
	second := submit("dup-id", 3)
	if second.ID == "dup-id" || second.ID == "" {
		t.Fatalf("colliding id mishandled: %q", second.ID)
	}
}
