package service

// Durability: the server's journal integration. Every job-state
// transition of a journaled job appends one fsync'd record:
//
//	accepted   — the job's replayable request (canonical bench text +
//	             resolved flow config), written BEFORE the run is
//	             queued, so an accepted record always precedes any
//	             terminal record for the same job.
//	level-done — one completed sweep level (content-addressed level key
//	             + its Metrics): the checkpoint granule resume is built
//	             on. Budgeted (wall-clock-dependent) and truncated
//	             levels are never checkpointed.
//	retired    — a run's jobs reaching done/failed/canceled, with the
//	             full result for done runs so a restarted daemon can
//	             answer GET /result without recomputing.
//	canceled   — a single job detached by DELETE.
//
// On startup the journal is replayed: retired jobs become queryable
// terminal jobs again (complete cacheable results repopulate the LRU in
// record order), level checkpoints repopulate the resume store, and
// unfinished jobs are recompiled from their accepted records and
// re-enqueued — running only the levels that have no checkpoint.
// Cache-hit answered submissions are never journaled at all: they cost
// no flow, so there is nothing to recover.
//
// Journal append failures are counted (service.journal_errors) but do
// not fail requests: the daemon degrades to in-memory operation rather
// than refusing work (availability over durability).

import (
	"context"
	"encoding/json"
	"time"

	"tpilayout/internal/flow"
	"tpilayout/internal/journal"
)

// recAccepted is the journal image of one accepted job: everything
// needed to recompile an identical run after a restart. Bench is the
// CANONICAL .bench text (WriteBench of the parsed design, clock domains
// included), so recompiling hashes to the same content address as the
// original submission. Flow carries the resolved preset in Experiment,
// pinning the config even when the original request left it implicit.
type recAccepted struct {
	JobID string `json:"job_id"`
	// RunID is the run identity minted at admission, correlating this
	// record with log lines, spans, and flight dumps. A submission that
	// coalesced onto an in-flight run after this record was written is
	// retired under the absorbing run's id instead; replay reuses the
	// journaled id so a resumed run keeps its pre-crash identity.
	// Empty in journals written before run ids existed (JSON-additive).
	RunID  string `json:"run_id,omitempty"`
	Tenant string `json:"tenant"`
	Name     string     `json:"name"`
	Bench    string     `json:"bench"`
	TPLevels []float64  `json:"tp_levels"`
	Flow     FlowConfig `json:"flow"`
	Created  time.Time  `json:"created"`
}

// recLevelDone checkpoints one completed level under its content
// address (base key + TP percentage).
type recLevelDone struct {
	Key       string       `json:"key"`
	TPPercent float64      `json:"tp_percent"`
	Metrics   flow.Metrics `json:"metrics"`
	// RunID/JobID name the run that produced the checkpoint (forensics
	// only: resume matches on Key alone). Empty in old journals.
	RunID string `json:"run_id,omitempty"`
	JobID string `json:"job_id,omitempty"`
}

// recRetired records a run's jobs reaching a terminal state.
type recRetired struct {
	JobIDs []string `json:"job_ids"`
	// RunID is the run that retired these jobs ("" for cache-answered
	// retirements, which never ran a flow, and for old journals).
	RunID     string     `json:"run_id,omitempty"`
	State     State      `json:"state"`
	Error     string     `json:"error,omitempty"`
	CacheKey  string     `json:"cache_key"`
	Cacheable bool       `json:"cacheable"`
	Result    *JobResult `json:"result,omitempty"`
	Finished  time.Time  `json:"finished"`
}

// recCanceled records one job canceled by its client.
type recCanceled struct {
	JobID    string    `json:"job_id"`
	RunID    string    `json:"run_id,omitempty"`
	Finished time.Time `json:"finished"`
}

// retiredJob is a terminal job inside a snapshot: the queryable state
// a restarted daemon serves for already-finished work.
type retiredJob struct {
	JobID  string `json:"job_id"`
	// RunID is the job's admission-time run identity, preserved so a
	// restarted daemon answers status queries with the same run_id the
	// pre-crash daemon minted.
	RunID     string     `json:"run_id,omitempty"`
	Tenant    string     `json:"tenant"`
	Name      string     `json:"name"`
	TPLevels  []float64  `json:"tp_levels"`
	State     State      `json:"state"`
	Error     string     `json:"error,omitempty"`
	CacheKey  string     `json:"cache_key"`
	Cacheable bool       `json:"cacheable"`
	Result    *JobResult `json:"result,omitempty"`
	Created   time.Time  `json:"created"`
	Finished  time.Time  `json:"finished"`
}

// snapState is the compacted fold of the whole journal: what a snapshot
// record holds and what replay reconstructs.
type snapState struct {
	Pending []recAccepted  `json:"pending"`
	Retired []retiredJob   `json:"retired"`
	Levels  []recLevelDone `json:"levels"`
}

// foldRecords reduces a replayed record stream to its final state:
// pending jobs still owed a run, retired jobs in retirement order, and
// the surviving level checkpoints.
func foldRecords(recs []journal.Record) *snapState {
	st := &snapState{}
	pendIdx := map[string]int{} // job id → index into st.Pending (-1 = tombstone)
	rebuildIdx := func() {
		pendIdx = map[string]int{}
		for i, p := range st.Pending {
			pendIdx[p.JobID] = i
		}
	}
	takePending := func(id string) (recAccepted, bool) {
		i, ok := pendIdx[id]
		if !ok || i < 0 {
			return recAccepted{}, false
		}
		rec := st.Pending[i]
		st.Pending = append(st.Pending[:i:i], st.Pending[i+1:]...)
		rebuildIdx()
		return rec, true
	}
	levelIdx := map[string]int{}
	for _, r := range recs {
		switch r.Type {
		case journal.TypeSnapshot:
			var snap snapState
			if json.Unmarshal(r.Data, &snap) == nil {
				st = &snap
				rebuildIdx()
				levelIdx = map[string]int{}
				for i, l := range st.Levels {
					levelIdx[l.Key] = i
				}
			}
		case journal.TypeAccepted:
			var rec recAccepted
			if json.Unmarshal(r.Data, &rec) == nil && rec.JobID != "" {
				if _, dup := pendIdx[rec.JobID]; !dup {
					pendIdx[rec.JobID] = len(st.Pending)
					st.Pending = append(st.Pending, rec)
				}
			}
		case journal.TypeLevelDone:
			var rec recLevelDone
			if json.Unmarshal(r.Data, &rec) == nil && rec.Key != "" {
				if i, ok := levelIdx[rec.Key]; ok {
					st.Levels[i] = rec
				} else {
					levelIdx[rec.Key] = len(st.Levels)
					st.Levels = append(st.Levels, rec)
				}
			}
		case journal.TypeRetired:
			var rec recRetired
			if json.Unmarshal(r.Data, &rec) != nil {
				continue
			}
			for _, id := range rec.JobIDs {
				acc, ok := takePending(id)
				if !ok {
					continue // already terminal (duplicate record) or unknown
				}
				st.Retired = append(st.Retired, retiredJob{
					JobID: id, RunID: acc.RunID, Tenant: acc.Tenant, Name: acc.Name,
					TPLevels: acc.TPLevels, State: rec.State, Error: rec.Error,
					CacheKey: rec.CacheKey, Cacheable: rec.Cacheable,
					Result: rec.Result, Created: acc.Created, Finished: rec.Finished,
				})
			}
		case journal.TypeCanceled:
			var rec recCanceled
			if json.Unmarshal(r.Data, &rec) != nil {
				continue
			}
			if acc, ok := takePending(rec.JobID); ok {
				st.Retired = append(st.Retired, retiredJob{
					JobID: rec.JobID, RunID: acc.RunID, Tenant: acc.Tenant, Name: acc.Name,
					TPLevels: acc.TPLevels, State: StateCanceled,
					Error: "canceled by client", Created: acc.Created,
					Finished: rec.Finished,
				})
			}
		}
	}
	return st
}

// ---------------------------------------------------------------------------
// Level checkpoint store

// checkpointStore holds completed levels by content address so a
// resumed or resubmitted sweep skips work already done. Insertion-order
// bounded: the oldest checkpoints fall off past maxCheckpoints.
type checkpointStore struct {
	m     map[string]recLevelDone
	order []string
	max   int
}

const defaultMaxCheckpoints = 8192

func newCheckpointStore(max int) *checkpointStore {
	if max <= 0 {
		max = defaultMaxCheckpoints
	}
	return &checkpointStore{m: map[string]recLevelDone{}, max: max}
}

// All methods are called with Server.mu held.

func (c *checkpointStore) get(key string) (flow.Metrics, bool) {
	rec, ok := c.m[key]
	return rec.Metrics, ok
}

func (c *checkpointStore) put(rec recLevelDone) {
	if _, ok := c.m[rec.Key]; !ok {
		c.order = append(c.order, rec.Key)
		for len(c.order) > c.max {
			delete(c.m, c.order[0])
			c.order = c.order[1:]
		}
	}
	c.m[rec.Key] = rec
}

func (c *checkpointStore) snapshot() []recLevelDone {
	out := make([]recLevelDone, 0, len(c.order))
	for _, key := range c.order {
		if rec, ok := c.m[key]; ok {
			out = append(out, rec)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Server-side journal plumbing

// appendRecord journals one state transition. A nil journal (in-memory
// server), a Kill()ed server, or an append failure all degrade to
// in-memory operation; failures are counted, never propagated.
func (s *Server) appendRecord(t journal.Type, v any) {
	if s.jrnl == nil || s.dead.Load() {
		return
	}
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	if err := s.jrnl.Append(t, data); err != nil {
		s.journalErrors.Add(1)
		s.emitMetric(map[string]int64{"service.journal_errors": 1}, nil, nil)
		s.opt.Log.Error("journal append failed, degrading to in-memory", "record_type", int(t), "error", err)
	}
}

// maybeCompact snapshots the journal when its live segments outgrow the
// compaction threshold. One compaction at a time; concurrent retiring
// runs skip rather than queue.
func (s *Server) maybeCompact() {
	if s.jrnl == nil || s.dead.Load() || s.jrnl.Size() < s.opt.JournalCompactBytes {
		return
	}
	if !s.compacting.CompareAndSwap(false, true) {
		return
	}
	defer s.compacting.Store(false)
	s.compactJournal()
}

// compactJournal writes the current fold of the journal as a snapshot.
func (s *Server) compactJournal() {
	if s.jrnl == nil || s.dead.Load() {
		return
	}
	state, err := json.Marshal(s.snapshotState())
	if err != nil {
		return
	}
	if err := s.jrnl.Compact(state); err != nil {
		s.journalErrors.Add(1)
	}
}

// snapshotState assembles the snapState equivalent to replaying every
// record written so far.
func (s *Server) snapshotState() *snapState {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := &snapState{Levels: s.checkpoints.snapshot()}
	for _, id := range s.order {
		job := s.jobs[id]
		if job == nil || !job.journaled {
			continue
		}
		if job.state.terminal() {
			st.Retired = append(st.Retired, retiredJob{
				JobID: job.ID, RunID: job.runID, Tenant: job.Tenant, Name: job.Circuit,
				TPLevels: job.Levels, State: job.state, Error: job.errMsg,
				CacheKey: job.Key, Cacheable: job.cacheable, Result: job.result,
				Created: job.created, Finished: job.finished,
			})
		} else if job.accepted != nil {
			st.Pending = append(st.Pending, *job.accepted)
		}
	}
	return st
}

// replay reconstructs the server's state from the journal fold, then
// marks the server ready. It runs asynchronously from Open so liveness
// (/healthz) is immediate while readiness (/readyz) waits; submissions
// during replay answer 503.
func (s *Server) replay(st *snapState) {
	defer s.replayWG.Done()
	if s.opt.replayGate != nil {
		<-s.opt.replayGate
	}

	s.mu.Lock()
	for _, l := range st.Levels {
		s.checkpoints.put(l)
	}
	// Retired jobs become queryable terminal jobs again; complete
	// cacheable results re-enter the LRU in retirement order, so the
	// cache's eviction order matches the pre-crash daemon's.
	for i := range st.Retired {
		r := &st.Retired[i]
		job := &Job{
			ID: r.JobID, runID: r.RunID, Tenant: r.Tenant, Key: r.CacheKey, Levels: r.TPLevels,
			Circuit: r.Name, state: r.State, errMsg: r.Error, result: r.Result,
			created: r.Created, finished: r.Finished, started: r.Created,
			journaled: true, cacheable: r.Cacheable,
		}
		if _, exists := s.jobs[job.ID]; exists {
			continue
		}
		s.rememberJobLocked(job)
		if r.Cacheable && r.Result != nil && r.Result.Complete {
			s.cache.Put(r.CacheKey, r.Result)
		}
	}
	s.mu.Unlock()

	// Unfinished jobs are recompiled and re-enqueued through the normal
	// admission path: identical pending jobs coalesce, and a pending job
	// whose twin already retired with a cached result is answered from
	// the cache (and retired in the journal so it stays answered).
	replayed := int64(0)
	for i := range st.Pending {
		if s.readmit(&st.Pending[i]) {
			replayed++
		}
	}
	s.replayedJobs.Add(replayed)
	if replayed > 0 {
		s.emitMetric(map[string]int64{"service.replayed_jobs": replayed}, nil, nil)
	}
	s.opt.Log.Info("journal replay complete", "requeued", replayed,
		"retired", len(st.Retired), "checkpoints", len(st.Levels))
	// Startup compaction: the fold just performed becomes the snapshot,
	// bounding the next restart's replay cost.
	s.compactJournal()
	s.ready.Store(true)
}

// readmit re-creates one pending job from its accepted record and
// enqueues it. Reports whether the job was re-queued (as opposed to
// answered terminally).
func (s *Server) readmit(rec *recAccepted) bool {
	req := &JobRequest{
		Tenant:   rec.Tenant,
		Circuit:  CircuitSpec{Bench: rec.Bench, Name: rec.Name},
		TPLevels: rec.TPLevels,
		Flow:     rec.Flow,
	}
	comp, err := compileRequest(req)
	now := time.Now()
	if err != nil {
		// The record no longer compiles (journal from a newer build?):
		// retire it as failed so it stops replaying forever.
		s.mu.Lock()
		job := &Job{
			ID: rec.JobID, Tenant: rec.Tenant, Circuit: rec.Name,
			Levels: rec.TPLevels, state: StateFailed,
			errMsg: "replay: " + err.Error(), created: rec.Created,
			started: rec.Created, finished: now, journaled: true,
		}
		s.rememberJobLocked(job)
		s.mu.Unlock()
		s.jobsFailed.Add(1)
		s.appendRecord(journal.TypeRetired, &recRetired{
			JobIDs: []string{rec.JobID}, State: StateFailed,
			Error: job.errMsg, Finished: now,
		})
		return false
	}

	job := &Job{
		ID: rec.JobID, Tenant: comp.tenant, Key: comp.key, Levels: comp.levels,
		Circuit: comp.design.Name, created: rec.Created,
		journaled: true, cacheable: comp.cacheable, accepted: rec,
	}

	s.mu.Lock()
	if _, exists := s.jobs[job.ID]; exists {
		s.mu.Unlock()
		return false
	}
	if comp.cacheable {
		if live, ok := s.inflight[comp.key]; ok {
			// An identical pending job is already re-queued: coalesce.
			job.run = live
			job.coalesce = true
			job.state = s.runStateLocked(live)
			live.jobs = append(live.jobs, job)
			s.rememberJobLocked(job)
			s.mu.Unlock()
			return true
		}
		if res, ok := s.cache.Get(comp.key); ok {
			// A retired twin's recovered result answers this job.
			job.state = StateDone
			job.cacheHit = true
			job.result = res
			job.started = job.created
			job.finished = now
			s.rememberJobLocked(job)
			s.mu.Unlock()
			s.jobsDone.Add(1)
			s.appendRecord(journal.TypeRetired, &recRetired{
				JobIDs: []string{job.ID}, State: StateDone, CacheKey: comp.key,
				Cacheable: true, Result: res, Finished: now,
			})
			return false
		}
	}
	rn := s.newRun(comp, rec.Flow.ATPGBudgetMS, job, rec.RunID)
	if err := s.queue.Push(rn); err != nil {
		// Queue full or draining at replay: retire as canceled so the
		// client sees a definite outcome rather than a silent drop.
		job.state = StateCanceled
		job.errMsg = "replay: " + err.Error()
		job.run = nil
		job.finished = now
		s.rememberJobLocked(job)
		s.mu.Unlock()
		rn.cancel()
		s.jobsCanceled.Add(1)
		s.appendRecord(journal.TypeRetired, &recRetired{
			JobIDs: []string{job.ID}, State: StateCanceled,
			Error: job.errMsg, CacheKey: comp.key, Finished: now,
		})
		return false
	}
	if comp.cacheable {
		s.inflight[comp.key] = rn
	}
	s.active[rn] = true
	s.rememberJobLocked(job)
	s.mu.Unlock()
	return true
}

// Kill simulates an abrupt process death for crash tests: journal
// writes stop IMMEDIATELY — nothing after Kill reaches the data
// directory, exactly as if the process had been SIGKILLed — and the
// worker pool is torn down without drain semantics. The server is
// unusable afterwards; Open a new one on the same DataDir to "restart".
func (s *Server) Kill() {
	s.dead.Store(true)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Shutdown(ctx)
}
