package service

import (
	"bufio"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"tpilayout/internal/flow"
	"tpilayout/internal/journal"
	"tpilayout/internal/netlist"
	"tpilayout/internal/supervise"
	"tpilayout/internal/telemetry"
)

// stubMetrics is a deterministic, JSON-exact metrics row for a level:
// the values survive the journal's JSON round trip bit-identically, so
// a checkpointed level is indistinguishable from a freshly run one.
func stubMetrics(pct float64) flow.Metrics {
	return flow.Metrics{
		Circuit:  "tiny",
		NumTP:    int(pct*10) + 1,
		NumFF:    42,
		Patterns: 7,
		FC:       98.5,
		CoreArea: 1234.5 + pct,
	}
}

// levelRecorder stubs Server.runLevel, recording which TP percentages
// actually executed a flow (as opposed to being answered from a
// checkpoint).
type levelRecorder struct {
	mu  sync.Mutex
	ran []float64
}

func (lr *levelRecorder) hook(rn *run, base *netlist.Netlist, cfg flow.Config, pct float64) flow.LevelResult {
	lr.mu.Lock()
	lr.ran = append(lr.ran, pct)
	lr.mu.Unlock()
	return flow.LevelResult{TPPercent: pct, Metrics: stubMetrics(pct)}
}

func (lr *levelRecorder) executed() []float64 {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	out := append([]float64(nil), lr.ran...)
	sort.Float64s(out)
	return out
}

// openDurable opens a durable server on dir with fsync off (tests) and a
// replay gate, installs stubs while replay is parked, then releases it.
func openDurable(t *testing.T, dir string, opt Options, install func(*Server)) *Server {
	t.Helper()
	gate := make(chan struct{})
	opt.DataDir = dir
	opt.journalNoSync = true
	opt.replayGate = gate
	s, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	if install != nil {
		install(s)
	}
	close(gate)
	waitFor(t, func() bool { return s.Stats().Ready })
	return s
}

// transientStageError is the retryable failure shape: a stage panic
// isolated into a StageError wrapping a supervise.PanicError.
func transientStageError(pct float64) error {
	return &flow.StageError{
		Stage: flow.StageSweep, TPPercent: pct,
		Err: supervise.AsPanicError("chaos boom"),
	}
}

// TestKillResumesOnlyMissingLevels is the tentpole scenario: a SIGKILL
// (simulated by Kill) lands mid-sweep after two of three levels were
// checkpointed; the restarted daemon re-admits the job and re-executes
// ONLY the missing level, stitching a result identical to an
// uninterrupted run.
func TestKillResumesOnlyMissingLevels(t *testing.T) {
	dir := t.TempDir()

	reached := make(chan struct{})
	s1 := openDurable(t, dir, Options{Workers: 1}, func(s *Server) {
		var once sync.Once
		s.runLevel = func(rn *run, base *netlist.Netlist, cfg flow.Config, pct float64) flow.LevelResult {
			if pct == 2 {
				once.Do(func() { close(reached) })
				<-rn.ctx.Done() // the level a crash interrupts
				return flow.LevelResult{TPPercent: pct, Err: rn.ctx.Err()}
			}
			return flow.LevelResult{TPPercent: pct, Metrics: stubMetrics(pct)}
		}
	})

	_, st := postJob(t, s1, jobBody(t, "acme", 0, 1, 2))
	<-reached // levels 0 and 1 are checkpointed; level 2 is in flight
	s1.Kill()

	// Restart on the same directory. The stub proves which levels run.
	rec := &levelRecorder{}
	s2 := openDurable(t, dir, Options{Workers: 1}, func(s *Server) {
		s.runLevel = rec.hook
	})
	defer shutdown(t, s2)

	got := waitState(t, s2, st.ID, StateDone)
	if ran := rec.executed(); !reflect.DeepEqual(ran, []float64{2}) {
		t.Fatalf("restart re-executed levels %v, want only [2]", ran)
	}
	if got.ResumedLevels != 2 {
		t.Fatalf("status resumed_levels = %d, want 2", got.ResumedLevels)
	}
	stats := s2.Stats()
	if stats.LevelsResumed != 2 || stats.LevelsRun != 1 || stats.ReplayedJobs != 1 {
		t.Fatalf("stats = resumed %d run %d replayed %d, want 2/1/1",
			stats.LevelsResumed, stats.LevelsRun, stats.ReplayedJobs)
	}

	// The stitched result is exactly what an uninterrupted run produces:
	// checkpointed rows and the fresh row are indistinguishable.
	code, res := getResult(t, s2, st.ID)
	if code != http.StatusOK || !res.Complete {
		t.Fatalf("result after resume: code=%d complete=%v", code, res != nil && res.Complete)
	}
	want := []flow.Metrics{stubMetrics(0), stubMetrics(1), stubMetrics(2)}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Fatalf("resumed rows differ from uninterrupted sweep:\ngot  %+v\nwant %+v", res.Rows, want)
	}
}

// TestResubmitSharesCheckpoints: sweeps with different level mixes over
// the same circuit+config share one checkpoint namespace, so a
// resubmission runs only the levels no earlier sweep completed.
func TestResubmitSharesCheckpoints(t *testing.T) {
	rec := &levelRecorder{}
	s := openDurable(t, t.TempDir(), Options{Workers: 1}, func(s *Server) {
		s.runLevel = rec.hook
	})
	defer shutdown(t, s)

	_, st1 := postJob(t, s, jobBody(t, "acme", 0, 1))
	waitState(t, s, st1.ID, StateDone)

	// Different level list → different cache key, same base key: level 1
	// must be answered from its checkpoint.
	code, st2 := postJob(t, s, jobBody(t, "acme", 1, 5))
	if code != http.StatusAccepted || st2.CacheHit {
		t.Fatalf("resubmit with new mix: code=%d cache_hit=%v, want 202 fresh run", code, st2.CacheHit)
	}
	got := waitState(t, s, st2.ID, StateDone)
	if got.ResumedLevels != 1 {
		t.Fatalf("second sweep resumed_levels = %d, want 1", got.ResumedLevels)
	}
	if ran := rec.executed(); !reflect.DeepEqual(ran, []float64{0, 1, 5}) {
		t.Fatalf("executed levels %v, want [0 1 5] (level 1 exactly once)", ran)
	}
}

// TestReplayAnswersRetired: after a clean shutdown, a restarted daemon
// serves status and results of finished jobs without re-running
// anything, and recovered results re-enter the cache in retirement
// order under the byte budget (oldest evicted first).
func TestReplayAnswersRetired(t *testing.T) {
	dir := t.TempDir()
	s1 := openDurable(t, dir, Options{Workers: 1}, func(s *Server) {
		s.runFlow = func(rn *run) (*JobResult, error) { return stubResult(rn), nil }
	})

	var ids []string
	var bodies [][]byte
	for _, lvl := range []float64{3, 4, 6} {
		body := jobBody(t, "acme", lvl)
		_, st := postJob(t, s1, body)
		waitState(t, s1, st.ID, StateDone)
		ids = append(ids, st.ID)
		bodies = append(bodies, body)
	}
	// Measure one result's cache cost (all three are the same shape).
	_, res0 := getResult(t, s1, ids[0])
	resBytes, err := json.Marshal(res0)
	if err != nil {
		t.Fatal(err)
	}
	shutdown(t, s1)

	// Budget for two results: replay inserts in retirement order, so the
	// OLDEST result (job 0) is the one the LRU evicts.
	s2 := openDurable(t, dir, Options{Workers: 1, CacheBytes: int64(len(resBytes))*2 + 64}, func(s *Server) {
		s.runFlow = func(rn *run) (*JobResult, error) { return stubResult(rn), nil }
	})
	defer shutdown(t, s2)

	// All three jobs are queryable with their results, no flows run.
	for _, id := range ids {
		st := getStatus(t, s2, id)
		if st.State != StateDone {
			t.Fatalf("replayed job %s state = %s, want done", id, st.State)
		}
		code, res := getResult(t, s2, id)
		if code != http.StatusOK || res.Table1 != "stub-table-1" {
			t.Fatalf("replayed result %s: code=%d", id, code)
		}
	}
	if n := s2.FlowRuns(); n != 0 {
		t.Fatalf("replay ran %d flows, want 0", n)
	}
	if entries := s2.Stats().CacheEntries; entries != 2 {
		t.Fatalf("recovered cache entries = %d, want 2 (budget holds two results)", entries)
	}

	// Newest results hit the cache; the evicted oldest re-runs.
	codeNew, stNew := postJob(t, s2, bodies[2])
	if codeNew != http.StatusOK || !stNew.CacheHit {
		t.Fatalf("resubmit of newest retired job: code=%d cache_hit=%v, want 200 hit", codeNew, stNew.CacheHit)
	}
	codeOld, stOld := postJob(t, s2, bodies[0])
	if codeOld != http.StatusAccepted || stOld.CacheHit {
		t.Fatalf("resubmit of evicted oldest job: code=%d cache_hit=%v, want 202 fresh", codeOld, stOld.CacheHit)
	}
	waitState(t, s2, stOld.ID, StateDone)
}

// TestCacheHitJournalsNothing: a submission answered from the result
// cache costs no flow and therefore appends no journal records at all —
// there is nothing to recover.
func TestCacheHitJournalsNothing(t *testing.T) {
	s := openDurable(t, t.TempDir(), Options{Workers: 1}, func(s *Server) {
		s.runFlow = func(rn *run) (*JobResult, error) { return stubResult(rn), nil }
	})
	defer shutdown(t, s)

	body := jobBody(t, "acme", 8)
	_, st := postJob(t, s, body)
	waitState(t, s, st.ID, StateDone)

	before := s.jrnl.Appends()
	code, st2 := postJob(t, s, body)
	if code != http.StatusOK || !st2.CacheHit {
		t.Fatalf("resubmit: code=%d cache_hit=%v", code, st2.CacheHit)
	}
	if after := s.jrnl.Appends(); after != before {
		t.Fatalf("cache-hit submission appended %d journal records, want 0", after-before)
	}
}

// TestTransientRetrySucceeds: a level that panics on its first attempts
// is retried with backoff and the job still finishes; retries surface
// in the job status and the service counters.
func TestTransientRetrySucceeds(t *testing.T) {
	var attempts int
	s := New(Options{Workers: 1, Retry: RetryPolicy{
		MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond,
	}})
	defer shutdown(t, s)
	s.runLevel = func(rn *run, base *netlist.Netlist, cfg flow.Config, pct float64) flow.LevelResult {
		attempts++ // Workers:1 + one level: sequential, no lock needed
		if attempts < 3 {
			return flow.LevelResult{TPPercent: pct, Err: transientStageError(pct)}
		}
		return flow.LevelResult{TPPercent: pct, Metrics: stubMetrics(pct)}
	}

	_, st := postJob(t, s, jobBody(t, "acme", 7))
	got := waitState(t, s, st.ID, StateDone)
	if got.Retries != 2 {
		t.Fatalf("status retries = %d, want 2", got.Retries)
	}
	stats := s.Stats()
	if stats.Retries != 2 || stats.LevelsRun != 3 {
		t.Fatalf("stats retries/levels_run = %d/%d, want 2/3", stats.Retries, stats.LevelsRun)
	}
	code, res := getResult(t, s, st.ID)
	if code != http.StatusOK || !res.Complete {
		t.Fatalf("retried job result: code=%d", code)
	}
}

// TestPermanentFailureNeverRetries: a deterministic stage failure (not a
// panic, not a deadline) runs exactly once — identical inputs would fail
// identically, so retrying is waste.
func TestPermanentFailureNeverRetries(t *testing.T) {
	var attempts int
	s := New(Options{Workers: 1, Retry: RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond}})
	defer shutdown(t, s)
	s.runLevel = func(rn *run, base *netlist.Netlist, cfg flow.Config, pct float64) flow.LevelResult {
		attempts++
		return flow.LevelResult{TPPercent: pct, Err: &flow.StageError{
			Stage: flow.StagePlace, TPPercent: pct, Err: errors.New("utilization infeasible"),
		}}
	}

	_, st := postJob(t, s, jobBody(t, "acme", 9))
	got := waitState(t, s, st.ID, StateDone) // level errors mark the result incomplete
	if attempts != 1 {
		t.Fatalf("permanent failure ran %d attempts, want 1", attempts)
	}
	if got.Retries != 0 || s.Stats().Retries != 0 {
		t.Fatalf("permanent failure counted retries: status=%d stats=%d", got.Retries, s.Stats().Retries)
	}
	_, res := getResult(t, s, st.ID)
	if res.Complete || res.Levels[0].Error == "" {
		t.Fatalf("permanent failure not surfaced per level: %+v", res.Levels)
	}
}

// TestCancelAbortsBackoff: DELETE on a job sleeping out a retry backoff
// cancels it immediately and frees the worker — the 30-second backoff
// must not be served out.
func TestCancelAbortsBackoff(t *testing.T) {
	inBackoff := make(chan struct{})
	s := New(Options{Workers: 1, Retry: RetryPolicy{
		MaxAttempts: 3, BaseDelay: 30 * time.Second, MaxDelay: 30 * time.Second,
	}})
	defer shutdown(t, s)
	var once sync.Once
	s.runLevel = func(rn *run, base *netlist.Netlist, cfg flow.Config, pct float64) flow.LevelResult {
		if pct == 1 {
			once.Do(func() { close(inBackoff) })
			return flow.LevelResult{TPPercent: pct, Err: transientStageError(pct)}
		}
		return flow.LevelResult{TPPercent: pct, Metrics: stubMetrics(pct)}
	}

	start := time.Now()
	_, st := postJob(t, s, jobBody(t, "acme", 1))
	<-inBackoff // the first attempt failed; the worker enters its 30s sleep
	if code, _ := do(t, s, "DELETE", "/v1/jobs/"+st.ID, nil); code != http.StatusOK {
		t.Fatalf("DELETE during backoff = %d", code)
	}
	waitState(t, s, st.ID, StateCanceled)

	// The proof the sleep was aborted: the single worker runs a fresh job
	// to completion long before the 30s backoff could have elapsed.
	_, st2 := postJob(t, s, jobBody(t, "acme", 2))
	waitState(t, s, st2.ID, StateDone)
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("worker freed after %v; the backoff sleep was served out", elapsed)
	}
}

// TestReadyzGatesReplay: while the journal replays, /healthz is 200
// (liveness), /readyz is 503, and submissions bounce with 503; all flip
// once replay completes.
func TestReadyzGatesReplay(t *testing.T) {
	gate := make(chan struct{})
	s, err := Open(Options{Workers: 1, DataDir: t.TempDir(), journalNoSync: true, replayGate: gate})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, s)

	if code, _ := do(t, s, "GET", "/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz during replay = %d, want 200", code)
	}
	if code, body := do(t, s, "GET", "/readyz", nil); code != http.StatusServiceUnavailable ||
		!strings.Contains(string(body), "replaying") {
		t.Fatalf("readyz during replay = %d %s, want 503 replaying", code, body)
	}
	if code, _ := postJobCode(t, s, jobBody(t, "acme", 1)); code != http.StatusServiceUnavailable {
		t.Fatalf("submit during replay = %d, want 503", code)
	}

	close(gate)
	waitFor(t, func() bool { return s.Stats().Ready })
	if code, _ := do(t, s, "GET", "/readyz", nil); code != http.StatusOK {
		t.Fatalf("readyz after replay = %d, want 200", code)
	}
	s.runFlow = func(rn *run) (*JobResult, error) { return stubResult(rn), nil }
	code, st := postJob(t, s, jobBody(t, "acme", 1))
	if code != http.StatusAccepted {
		t.Fatalf("submit after replay = %d, want 202", code)
	}
	waitState(t, s, st.ID, StateDone)
}

// TestRetryAfterJitterBounds: every 429 carries a Retry-After of 1–4
// seconds, jittered so a synchronized client fleet spreads its retries.
func TestRetryAfterJitterBounds(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 1})
	defer shutdown(t, s)
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	s.runFlow = func(rn *run) (*JobResult, error) {
		started <- struct{}{}
		select {
		case <-release:
		case <-rn.ctx.Done():
		}
		return stubResult(rn), nil
	}
	defer close(release)

	postJob(t, s, jobBody(t, "acme", 1)) // occupies the worker
	<-started
	postJob(t, s, jobBody(t, "acme", 2)) // fills the queue

	for i := 0; i < 12; i++ {
		req := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(string(jobBody(t, "acme", float64(3+i)))))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusTooManyRequests {
			t.Fatalf("overflow submit %d = %d, want 429", i, rec.Code)
		}
		ra, err := strconv.Atoi(rec.Header().Get("Retry-After"))
		if err != nil || ra < 1 || ra > 4 {
			t.Fatalf("Retry-After = %q, want integer in [1,4]", rec.Header().Get("Retry-After"))
		}
	}
}

// TestJournalFaultsDegradeGracefully: when every journal append fails,
// the daemon keeps serving — availability over durability — and counts
// the failures.
func TestJournalFaultsDegradeGracefully(t *testing.T) {
	gate := make(chan struct{})
	s, err := Open(Options{
		Workers: 1, DataDir: t.TempDir(), journalNoSync: true, replayGate: gate,
		journalHook: func(op journal.Op) error {
			if op == journal.OpAppend {
				return errors.New("disk on fire")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.runFlow = func(rn *run) (*JobResult, error) { return stubResult(rn), nil }
	close(gate)
	waitFor(t, func() bool { return s.Stats().Ready })
	defer shutdown(t, s)

	_, st := postJob(t, s, jobBody(t, "acme", 5))
	waitState(t, s, st.ID, StateDone)
	if code, _ := getResult(t, s, st.ID); code != http.StatusOK {
		t.Fatalf("result with dead journal = %d, want 200", code)
	}
	if n := s.Stats().JournalErrors; n == 0 {
		t.Fatal("journal append failures were not counted")
	}
}

// TestSSEResumeWithLastEventID: an SSE client whose connection drops
// reconnects with Last-Event-ID and resumes exactly where the stream
// tore — no replayed and no skipped frames.
func TestSSEResumeWithLastEventID(t *testing.T) {
	s := New(Options{Workers: 1})
	defer shutdown(t, s)

	emitted := make(chan struct{})
	release := make(chan struct{})
	s.runFlow = func(rn *run) (*JobResult, error) {
		// A balanced 8-event trace: root + three children.
		tr := telemetry.New(rn.events)
		root := tr.StartSpan("sweep", -1)
		for _, pct := range []float64{0, 2, 5} {
			root.ChildTP("level", pct).End()
		}
		root.End()
		close(emitted)
		select {
		case <-release:
		case <-rn.ctx.Done():
			return nil, rn.ctx.Err()
		}
		return stubResult(rn), nil
	}

	ts := httptest.NewServer(s)
	defer ts.Close()
	_, st := postJob(t, s, jobBody(t, "acme", 0, 2, 5))
	<-emitted

	// First connection: read the first 4 frames, then drop.
	frames1, _ := readSSEFrames(t, ts.URL+"/v1/jobs/"+st.ID+"/events", "", 4)
	if len(frames1) != 4 {
		t.Fatalf("first connection read %d frames, want 4", len(frames1))
	}
	for k, f := range frames1 {
		if f.id != k {
			t.Fatalf("frame %d carries id %d", k, f.id)
		}
	}

	// Reconnect with Last-Event-ID: the stream must resume at frame 4.
	close(release)
	waitState(t, s, st.ID, StateDone)
	frames2, done := readSSEFrames(t, ts.URL+"/v1/jobs/"+st.ID+"/events", strconv.Itoa(frames1[3].id), -1)
	if len(frames2) != 4 {
		t.Fatalf("resumed connection read %d frames, want 4 (ids 4..7): %+v", len(frames2), frames2)
	}
	for k, f := range frames2 {
		if f.id != 4+k {
			t.Fatalf("resumed frame %d carries id %d, want %d", k, f.id, 4+k)
		}
	}
	if done == "" {
		t.Fatal("resumed stream ended without a done frame")
	}
	var final JobStatus
	if err := json.Unmarshal([]byte(done), &final); err != nil || final.State != StateDone {
		t.Fatalf("done frame: %v %s", err, done)
	}
	// The union of both connections is the complete stream.
	var ndjson strings.Builder
	for _, f := range append(frames1, frames2...) {
		ndjson.WriteString(f.data)
		ndjson.WriteByte('\n')
	}
	if n := strings.Count(ndjson.String(), "\n"); n != 8 {
		t.Fatalf("stitched stream has %d events, want 8", n)
	}
}

type sseFrame struct {
	id   int
	data string
}

// readSSEFrames reads data frames (with their SSE ids) from an events
// stream, optionally sending Last-Event-ID. maxFrames > 0 drops the
// connection after that many frames (simulating a network tear);
// maxFrames < 0 reads to EOF and also returns the done-frame payload.
func readSSEFrames(t *testing.T, url, lastEventID string, maxFrames int) ([]sseFrame, string) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events = %d", resp.StatusCode)
	}

	var frames []sseFrame
	var doneFrame string
	id, inDone := -1, false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "event: done":
			inDone = true
		case strings.HasPrefix(line, "id: "):
			if n, err := strconv.Atoi(strings.TrimPrefix(line, "id: ")); err == nil {
				id = n
			}
		case strings.HasPrefix(line, "data: "):
			if inDone {
				doneFrame = strings.TrimPrefix(line, "data: ")
			} else {
				frames = append(frames, sseFrame{id: id, data: strings.TrimPrefix(line, "data: ")})
				if maxFrames > 0 && len(frames) >= maxFrames {
					return frames, "" // tear the connection here
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading SSE stream: %v", err)
	}
	return frames, doneFrame
}
