package service

import (
	"context"
	"sync"

	"tpilayout/internal/telemetry"
)

// broadcaster is the live event surface of one run: a telemetry.Sink
// that retains every span event in order and wakes streaming
// subscribers as new events land. Retention makes the stream replayable
// — a subscriber that connects mid-run (or a coalesced submission that
// attached after the flow started) still sees the trace from its first
// event, so the NDJSON a client collects over SSE always parses as a
// balanced span tree.
type broadcaster struct {
	mu     sync.Mutex
	cond   *sync.Cond
	events []telemetry.Event
	closed bool
}

func newBroadcaster() *broadcaster {
	b := &broadcaster{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Emit implements telemetry.Sink. The flow's tracer calls it from sweep
// workers and fault-simulation shards concurrently.
func (b *broadcaster) Emit(e telemetry.Event) {
	b.mu.Lock()
	if !b.closed {
		b.events = append(b.events, e)
	}
	b.mu.Unlock()
	b.cond.Broadcast()
}

// Close marks the stream complete: subscribers drain what is retained
// and then see ok=false. Idempotent.
func (b *broadcaster) Close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

// wake unblocks all waiting subscribers so they can re-check their
// context; context.AfterFunc(ctx, b.wake) turns a client disconnect
// into a prompt return from next.
func (b *broadcaster) wake() { b.cond.Broadcast() }

// next blocks until events beyond index from exist, then returns the
// new tail. ok=false means the stream is over: either the broadcaster
// closed and everything up to from was already delivered, or ctx ended.
func (b *broadcaster) next(ctx context.Context, from int) (tail []telemetry.Event, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if from < len(b.events) {
			return b.events[from:], true
		}
		if b.closed || ctx.Err() != nil {
			return nil, false
		}
		b.cond.Wait()
	}
}

// snapshot returns all events retained so far. The archive calls it at
// retirement (after Close — retention survives closing) to persist the
// run's full trace; tests use it to assert on streams.
func (b *broadcaster) snapshot() []telemetry.Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]telemetry.Event(nil), b.events...)
}
