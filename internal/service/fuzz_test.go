package service

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

// FuzzJobRequest throws arbitrary bytes at the submission decoder through
// the full handler: whatever the body, the server must answer (2xx for a
// valid job, 4xx for garbage) and never panic — the same hardening bar
// FuzzParseBench holds the .bench reader to.
func FuzzJobRequest(f *testing.F) {
	f.Add([]byte(``))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{{{`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"tenant":"a","tp_levels":[0]}`))
	f.Add([]byte(`{"circuit":{"spec":"s38417c","scale":1e308},"tp_levels":[0]}`))
	f.Add([]byte(`{"circuit":{"bench":"INPUT(a)\nOUTPUT(a)\n"},"tp_levels":[0,100]}`))
	f.Add([]byte(fmt.Sprintf(`{"circuit":{"bench":%q},"tp_levels":[0],"flow":{"skip_atpg":true}}`, testBench)))
	f.Add([]byte(`{"circuit":{"bench":"x = DFF(x)"},"tp_levels":[1]}`))
	f.Add([]byte(`{"circuit":{"spec":"wctrl1"},"tp_levels":[-1]}`))
	f.Add([]byte(`{"circuit":{"name":"only-a-name"},"tp_levels":[5],"flow":{"workers":9999}}`))

	s := New(Options{Workers: 1, QueueDepth: 8})
	defer s.Shutdown(context.Background())
	// Never run a real flow for fuzz inputs that happen to validate.
	s.runFlow = func(rn *run) (*JobResult, error) { return stubResult(rn), nil }

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest("POST", "/v1/jobs", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req) // must not panic
		switch {
		case rec.Code >= 200 && rec.Code < 300:
		case rec.Code >= 400 && rec.Code < 500:
		case rec.Code == http.StatusServiceUnavailable:
			// Queue pressure from earlier fuzz-accepted jobs is fine.
		default:
			t.Fatalf("submission answered %d for body %q", rec.Code, body)
		}
	})
}
