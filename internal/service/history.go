package service

import (
	"bytes"
	"errors"
	"io"
	"math"
	"net/http"
	"os"
	"runtime/pprof"
	"strconv"
	"time"

	"tpilayout/internal/flow"
	"tpilayout/internal/telemetry"
	"tpilayout/internal/tracecmp"
	"tpilayout/internal/trachive"
)

// This file is the run-history surface of the server: archiving retired
// runs into the trace archive, the in-service regression sentinel that
// diffs each retiring run against its archived baseline, per-run CPU
// profiling, and the GET /v1/runs query API.

// runFlowProfiled wraps runFlow with the optional per-run CPU profile
// capture (-profile-runs). pprof capture is process-global, so only one
// run profiles at a time: a run arriving while another holds the
// profiler simply goes unprofiled (its trace still carries the
// getrusage CPU attribution either way).
func (s *Server) runFlowProfiled(rn *run) (*JobResult, error) {
	if !s.opt.ProfileRuns || s.archive == nil || !s.profileBusy.CompareAndSwap(false, true) {
		return s.runFlow(rn)
	}
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		// Something else (e.g. a live /debug/pprof/profile scrape) owns
		// the profiler; run unprofiled.
		s.profileBusy.Store(false)
		rn.log.Warn("run profiling unavailable", "error", err.Error())
		return s.runFlow(rn)
	}
	res, err := s.runFlow(rn)
	pprof.StopCPUProfile()
	s.profileBusy.Store(false)
	rn.profile = buf.Bytes()
	return res, err
}

// baselineKeyOf renders the archive's baseline identity: short circuit
// and config hashes plus the sweep mode. Runs sharing a key ran the
// same circuit under the same resolved config in the same mode — the
// precondition for a meaningful duration comparison. TP levels are
// deliberately absent (the diff aligns per stage×level cell), and the
// mode is included because incremental and full sweeps have different
// per-level cost profiles by design.
func baselineKeyOf(circHash, cfgHash string, mode flow.SweepMode) string {
	return shortHash(circHash) + "-" + shortHash(cfgHash) + "-" + mode.String()
}

func shortHash(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}

// sentinelOptions is the diff policy the in-service sentinel applies:
// normalized shares (machine-speed invariant across restarts and
// hosts) with the configured gate, backstop, and noise floor — the
// same semantics as `tracediff -normalize`.
func (s *Server) sentinelOptions() tracecmp.Options {
	return tracecmp.Options{
		MaxRegressPct:  s.opt.MaxRegressPct,
		HardRegressPct: s.opt.HardRegressPct,
		MinDur:         s.opt.SentinelMinDur,
		Normalize:      true,
	}
}

// archiveRun persists a retired run into the history archive and runs
// the regression sentinel against its baseline. Called outside
// Server.mu, after the retirement journal append — a crash before this
// point re-runs the jobs, a crash inside it costs at most this one
// archive entry.
func (s *Server) archiveRun(rn *run, jobs []*Job, state State, errMsg string, now time.Time) {
	events := rn.events.snapshot()
	meta := &trachive.Meta{
		RunID:       rn.id,
		Tenant:      rn.tenant,
		Circuit:     rn.designN.Name,
		CircuitHash: rn.circHash,
		ConfigHash:  rn.cfgHash,
		SweepMode:   rn.cfg.SweepMode.String(),
		BaselineKey: baselineKeyOf(rn.circHash, rn.cfgHash, rn.cfg.SweepMode),
		State:       string(state),
		Error:       errMsg,
		TPLevels:    rn.levels,
		Started:     rn.started,
		Finished:    now,
		WallMS:      now.Sub(rn.started).Milliseconds(),
	}
	for _, j := range jobs {
		meta.JobIDs = append(meta.JobIDs, j.ID)
	}

	// Stage×level rollup, best effort: a canceled or failed run usually
	// leaves an unbalanced stream (spans cut mid-flight), which is still
	// worth archiving for post-mortems — just without a rollup, so it
	// never serves as a baseline.
	if tr := telemetry.TraceFromEvents(events); tr.Balanced() {
		if side, err := tracecmp.FromSpans(tr.Spans); err == nil {
			meta.Rollup = side
			var cpuNS float64
			for k, c := range side.Cells {
				if k.Stage == "run" {
					cpuNS += c.CPUNS
				}
			}
			meta.CPUMS = int64(cpuNS / 1e6)
		}
	}

	// The sentinel: diff this run against the newest completed archived
	// run sharing its baseline key, before Put makes the run its own
	// newest baseline.
	if state == StateDone && meta.Rollup != nil {
		if base, ok := s.archive.Baseline(meta.BaselineKey, 0); ok {
			rep := tracecmp.Diff(base.Rollup, meta.Rollup, s.sentinelOptions())
			ds := &trachive.DiffSummary{Against: base.RunID, Verdict: "no-regression", Cells: len(rep.Rows)}
			if len(rep.Regressions) > 0 {
				ds.Verdict = "regression"
				ds.Regressions = rep.Regressions
			}
			meta.Diff = ds
			s.reportSentinel(rn, base, rep)
		} else {
			meta.Diff = &trachive.DiffSummary{Verdict: "no-baseline"}
		}
	}

	if err := s.archive.Put(meta, events, rn.profile); err != nil {
		s.archiveErrors.Add(1)
		s.emitRunMetric(rn, map[string]int64{"service.archive_errors": 1}, nil, nil)
		rn.log.Warn("run archive failed", "error", err.Error())
		return
	}
	s.runsArchived.Add(1)
	st := s.archive.Stats()
	s.emitRunMetric(rn, map[string]int64{"service.runs_archived": 1}, map[string]float64{
		"service.history_runs":  float64(st.Runs),
		"service.history_bytes": float64(st.Bytes),
	}, nil)
	verdict := ""
	if meta.Diff != nil {
		verdict = meta.Diff.Verdict
	}
	rn.log.Info("run archived", "baseline_key", meta.BaselineKey, "events", meta.Events,
		"trace_bytes", meta.TraceBytes, "profile_bytes", meta.ProfileBytes, "verdict", verdict)
	s.publishRollup(rn, meta.BaselineKey)
}

// reportSentinel publishes the sentinel's verdict for one retired run:
// per-(stage, level) regression counters and last-delta gauges on
// /metrics, the flagged rows in the structured log and flight recorder
// with the run_id bound, and — on a clean diff — a zero-valued counter
// so tpid_service_regression_total is scrapeable before any regression
// ever fires.
func (s *Server) reportSentinel(rn *run, base *trachive.Meta, rep *tracecmp.Report) {
	if len(rep.Regressions) == 0 {
		s.emitRunMetric(rn, map[string]int64{"service.regression": 0}, nil, nil)
		rn.log.Info("regression sentinel clean", "against", base.RunID, "cells", len(rep.Rows))
		return
	}
	s.regressions.Add(int64(len(rep.Regressions)))
	for _, row := range rep.Regressions {
		attrs := rn.attrs()
		attrs["level"] = formatTP(row.TP)
		e := telemetry.Event{
			Type: telemetry.EventSpanEnd, Stage: row.Stage, Time: time.Now(),
			Counters: map[string]int64{"service.regression": 1},
			Attrs:    attrs,
		}
		if !math.IsNaN(row.DeltaPct) && !math.IsInf(row.DeltaPct, 0) {
			e.Gauges = map[string]float64{"service.regression_last": row.DeltaPct}
		}
		s.emitEvent(e, rn.flight)
		rn.log.Warn("regression detected", "against", base.RunID, "stage", row.Stage,
			"tp", row.TP, "delta_pct", row.DeltaPct, "note", row.Note)
	}
}

// publishRollup refreshes the cross-run P50/P99 stage-latency gauges
// for one baseline key after a new run joins it. Series are labeled
// stage/level/baseline, all bounded by the PromSink cardinality caps.
func (s *Server) publishRollup(rn *run, key string) {
	for _, c := range s.archive.Rollup(key) {
		s.emitEvent(telemetry.Event{
			Type: telemetry.EventSpanEnd, Stage: c.Stage, Time: time.Now(),
			Gauges: map[string]float64{
				"service.crossrun_p50_ns": c.P50NS,
				"service.crossrun_p99_ns": c.P99NS,
			},
			Attrs: map[string]string{"level": formatTP(c.TP), "baseline": key},
		}, rn.flight)
	}
}

func formatTP(tp float64) string {
	return strconv.FormatFloat(tp, 'g', -1, 64)
}

// ---------------------------------------------------------------------------
// Query API

// requireArchive writes the history-disabled error when the server has
// no archive (in-memory servers, or -history-runs < 0).
func (s *Server) requireArchive(w http.ResponseWriter) bool {
	if s.archive == nil {
		writeError(w, http.StatusNotFound, "run history disabled (start tpid with -data-dir and -history-runs >= 0)")
		return false
	}
	return true
}

// handleRuns is GET /v1/runs: list archived runs, newest first.
// Filters: circuit=<hash prefix>, config=<hash prefix>, tenant=, state=,
// baseline=<exact key>, since=<RFC3339>, limit=<n> (default 100).
// The list view omits each run's rollup; GET /v1/runs/{id} has it.
func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	if !s.requireArchive(w) {
		return
	}
	q := r.URL.Query()
	f := trachive.Filter{
		Circuit:  q.Get("circuit"),
		Config:   q.Get("config"),
		Tenant:   q.Get("tenant"),
		State:    q.Get("state"),
		Baseline: q.Get("baseline"),
		Limit:    100,
	}
	if v := q.Get("since"); v != "" {
		t, err := time.Parse(time.RFC3339, v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "since: want RFC3339, got %q", v)
			return
		}
		f.Since = t
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "limit: want a non-negative integer, got %q", v)
			return
		}
		f.Limit = n
	}
	metas := s.archive.List(f)
	items := make([]trachive.Meta, len(metas))
	for i, m := range metas {
		items[i] = *m
		items[i].Rollup = nil // list view: metadata only
	}
	writeJSON(w, http.StatusOK, struct {
		Runs []trachive.Meta `json:"runs"`
	}{Runs: items})
}

// handleRunsStats is GET /v1/runs/stats: archive retention counters and
// the distinct baseline keys. ?baseline=<key> adds that key's cross-run
// stage-latency rollup (P50/P99 per stage×level over retained runs).
func (s *Server) handleRunsStats(w http.ResponseWriter, r *http.Request) {
	if !s.requireArchive(w) {
		return
	}
	out := struct {
		trachive.Stats
		Baselines []trachive.BaselineInfo `json:"baselines,omitempty"`
		Rollup    []trachive.RollupCell   `json:"rollup,omitempty"`
	}{Stats: s.archive.Stats(), Baselines: s.archive.Baselines()}
	if key := r.URL.Query().Get("baseline"); key != "" {
		out.Rollup = s.archive.Rollup(key)
	}
	writeJSON(w, http.StatusOK, &out)
}

// handleRunMeta is GET /v1/runs/{id}: the full archived metadata,
// rollup and sentinel verdict included.
func (s *Server) handleRunMeta(w http.ResponseWriter, r *http.Request) {
	if !s.requireArchive(w) {
		return
	}
	id := r.PathValue("id")
	m, ok := s.archive.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no archived run %q", id)
		return
	}
	writeJSON(w, http.StatusOK, m)
}

// handleRunTrace is GET /v1/runs/{id}/trace: the run's full NDJSON
// event stream, served as the stored gzip artifact verbatim (an opaque
// download, NOT Content-Encoding — that would make Go clients
// transparently decompress while curl pipes stayed compressed, so the
// bytes a consumer sees would depend on its HTTP library). Piping into
// tracediff/tracestat works either way: they sniff the gzip magic.
func (s *Server) handleRunTrace(w http.ResponseWriter, r *http.Request) {
	if !s.requireArchive(w) {
		return
	}
	id := r.PathValue("id")
	f, err := s.archive.OpenTrace(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "no archived trace for run %q", id)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/gzip")
	w.Header().Set("Content-Disposition", `attachment; filename="`+id+`.trace.ndjson.gz"`)
	io.Copy(w, f)
}

// handleRunDiff is GET /v1/runs/{id}/diff[?against=<run_id>]: diff the
// archived run against another archived run's rollup under the
// sentinel's options. Without ?against it prefers the baseline the
// sentinel used at retirement, falling back to the newest completed
// run with the same baseline key archived before this one.
func (s *Server) handleRunDiff(w http.ResponseWriter, r *http.Request) {
	if !s.requireArchive(w) {
		return
	}
	id := r.PathValue("id")
	m, ok := s.archive.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no archived run %q", id)
		return
	}
	if m.Rollup == nil {
		writeError(w, http.StatusConflict, "run %q has no rollup (state %s): nothing to diff", id, m.State)
		return
	}
	var base *trachive.Meta
	if against := r.URL.Query().Get("against"); against != "" {
		b, ok := s.archive.Get(against)
		if !ok {
			writeError(w, http.StatusNotFound, "no archived run %q to diff against", against)
			return
		}
		if b.Rollup == nil {
			writeError(w, http.StatusConflict, "run %q has no rollup (state %s): cannot serve as baseline", against, b.State)
			return
		}
		base = b
	} else {
		if m.Diff != nil && m.Diff.Against != "" {
			if b, ok := s.archive.Get(m.Diff.Against); ok && b.Rollup != nil {
				base = b
			}
		}
		if base == nil {
			if b, ok := s.archive.Baseline(m.BaselineKey, m.Seq); ok {
				base = b
			}
		}
	}
	type diffBody struct {
		RunID   string           `json:"run_id"`
		Against string           `json:"against,omitempty"`
		Verdict string           `json:"verdict"`
		Report  *tracecmp.Report `json:"report,omitempty"`
		Text    string           `json:"text,omitempty"`
	}
	if base == nil {
		writeJSON(w, http.StatusOK, &diffBody{RunID: id, Verdict: "no-baseline"})
		return
	}
	rep := tracecmp.Diff(base.Rollup, m.Rollup, s.sentinelOptions())
	verdict := "no-regression"
	if len(rep.Regressions) > 0 {
		verdict = "regression"
	}
	var text bytes.Buffer
	rep.Write(&text)
	writeJSON(w, http.StatusOK, &diffBody{
		RunID: id, Against: base.RunID, Verdict: verdict, Report: rep, Text: text.String(),
	})
}

// handleRunProfile is GET /v1/runs/{id}/profile: the per-run CPU
// profile captured under -profile-runs, in pprof format with
// run_id/stage/tp_level sample labels.
func (s *Server) handleRunProfile(w http.ResponseWriter, r *http.Request) {
	if !s.requireArchive(w) {
		return
	}
	id := r.PathValue("id")
	f, err := s.archive.OpenProfile(id)
	if errors.Is(err, os.ErrNotExist) {
		writeError(w, http.StatusNotFound, "no profile for run %q (profiles need -profile-runs, and capture skips overlapping runs)", id)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "opening profile: %v", err)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="`+id+`.pprof"`)
	io.Copy(w, f)
}
