package service

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tpilayout/internal/telemetry"
	"tpilayout/internal/trachive"
)

// budgetBody builds a submission that is non-cacheable (a generous ATPG
// budget makes a job's runtime environment-dependent, so it bypasses
// the result cache and singleflight): the knob history tests use to
// force identical resubmissions to execute real flows instead of being
// answered from the cache.
func budgetBody(t *testing.T, tenant string, levels ...float64) []byte {
	t.Helper()
	b, err := json.Marshal(JobRequest{
		Tenant:   tenant,
		Circuit:  CircuitSpec{Bench: testBench, Name: "tiny"},
		TPLevels: levels,
		Flow:     FlowConfig{SkipATPG: true, ATPGBudgetMS: 600000},
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// waitArchived polls GET /v1/runs/{id} until the retirement hook has
// archived the run (archiving happens just after jobs turn terminal).
func waitArchived(t *testing.T, s *Server, runID string) trachive.Meta {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		code, resp := do(t, s, "GET", "/v1/runs/"+runID, nil)
		if code == http.StatusOK {
			var m trachive.Meta
			if err := json.Unmarshal(resp, &m); err != nil {
				t.Fatalf("decoding run meta: %v\n%s", err, resp)
			}
			return m
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("run %s never archived", runID)
	return trachive.Meta{}
}

func listRuns(t *testing.T, s *Server, query string) []trachive.Meta {
	t.Helper()
	code, resp := do(t, s, "GET", "/v1/runs"+query, nil)
	if code != http.StatusOK {
		t.Fatalf("GET /v1/runs%s = %d: %s", query, code, resp)
	}
	var out struct {
		Runs []trachive.Meta `json:"runs"`
	}
	if err := json.Unmarshal(resp, &out); err != nil {
		t.Fatal(err)
	}
	return out.Runs
}

func TestHistoryDisabledWithoutDataDir(t *testing.T) {
	s := New(Options{Workers: 1})
	defer shutdown(t, s)
	for _, path := range []string{"/v1/runs", "/v1/runs/stats", "/v1/runs/r1", "/v1/runs/r1/trace", "/v1/runs/r1/diff", "/v1/runs/r1/profile"} {
		if code, _ := do(t, s, "GET", path, nil); code != http.StatusNotFound {
			t.Errorf("GET %s on in-memory server = %d, want 404", path, code)
		}
	}
}

// TestHistoryArchiveAndQueryAPI: a retired run lands in the archive
// with an intact gzip trace, a rollup, and a no-baseline verdict; the
// /v1/runs surface filters and serves it.
func TestHistoryArchiveAndQueryAPI(t *testing.T) {
	before := runtime.NumGoroutine()
	s := openDurable(t, t.TempDir(), Options{Workers: 2}, nil)

	// Archive order is Seq order, so wait for A's retirement hook to
	// land before submitting B — otherwise B can archive first and the
	// newest-first expectations below flip.
	_, stA := postJob(t, s, jobBody(t, "alice", 1))
	waitState(t, s, stA.ID, StateDone)
	ma := waitArchived(t, s, stA.RunID)
	_, stB := postJob(t, s, jobBody(t, "bob", 1, 2))
	waitState(t, s, stB.ID, StateDone)
	mb := waitArchived(t, s, stB.RunID)
	if ma.State != "done" || ma.Tenant != "alice" || ma.Circuit != "tiny" {
		t.Fatalf("meta a: %+v", ma)
	}
	if ma.CircuitHash == "" || ma.ConfigHash == "" || ma.BaselineKey == "" {
		t.Fatalf("meta a missing hashes: %+v", ma)
	}
	if ma.Rollup == nil || len(ma.Rollup.Cells) == 0 {
		t.Fatal("meta a has no rollup")
	}
	if ma.Diff == nil || ma.Diff.Verdict != "no-baseline" {
		t.Fatalf("first run of its key should be no-baseline, got %+v", ma.Diff)
	}
	// Same circuit and config → same hashes; different level lists share
	// the baseline key by design.
	if mb.CircuitHash != ma.CircuitHash || mb.BaselineKey != ma.BaselineKey {
		t.Fatalf("baseline keys diverged: %q vs %q", ma.BaselineKey, mb.BaselineKey)
	}
	if len(mb.JobIDs) != 1 || mb.JobIDs[0] != stB.ID {
		t.Fatalf("job ids: %v", mb.JobIDs)
	}

	// The filter matrix.
	for _, tc := range []struct {
		query string
		want  []string // newest first
	}{
		{"", []string{mb.RunID, ma.RunID}},
		{"?tenant=alice", []string{ma.RunID}},
		{"?state=done", []string{mb.RunID, ma.RunID}},
		{"?state=failed", nil},
		{"?circuit=" + ma.CircuitHash[:8], []string{mb.RunID, ma.RunID}},
		{"?circuit=ffffffff", nil},
		{"?config=" + ma.ConfigHash[:8], []string{mb.RunID, ma.RunID}},
		{"?baseline=" + ma.BaselineKey, []string{mb.RunID, ma.RunID}},
		{"?limit=1", []string{mb.RunID}},
		{"?tenant=alice&state=done", []string{ma.RunID}},
	} {
		got := listRuns(t, s, tc.query)
		if len(got) != len(tc.want) {
			t.Fatalf("GET /v1/runs%s: %d runs, want %d", tc.query, len(got), len(tc.want))
		}
		for i := range got {
			if got[i].RunID != tc.want[i] {
				t.Fatalf("GET /v1/runs%s[%d] = %s, want %s", tc.query, i, got[i].RunID, tc.want[i])
			}
			if got[i].Rollup != nil {
				t.Fatalf("list view must omit rollups")
			}
		}
	}
	if code, _ := do(t, s, "GET", "/v1/runs?since=yesterday", nil); code != http.StatusBadRequest {
		t.Errorf("bad since = %d, want 400", code)
	}
	if code, _ := do(t, s, "GET", "/v1/runs?limit=-1", nil); code != http.StatusBadRequest {
		t.Errorf("bad limit = %d, want 400", code)
	}

	// The archived trace round-trips: gzip NDJSON, balanced, and it
	// still carries the run's correlation attrs.
	code, body := do(t, s, "GET", "/v1/runs/"+ma.RunID+"/trace", nil)
	if code != http.StatusOK {
		t.Fatalf("GET trace = %d", code)
	}
	gz, err := gzip.NewReader(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("trace is not gzip: %v", err)
	}
	tr, err := telemetry.ParseTrace(gz)
	if err != nil {
		t.Fatalf("archived trace does not parse: %v", err)
	}
	if !tr.Balanced() || len(tr.Spans) == 0 {
		t.Fatalf("archived trace: balanced=%v spans=%d", tr.Balanced(), len(tr.Spans))
	}
	var sawRunID bool
	for _, e := range tr.Events {
		if e.Attrs["run_id"] == ma.RunID {
			sawRunID = true
			break
		}
	}
	if !sawRunID {
		t.Fatal("archived trace lost its run_id attrs")
	}

	// /v1/runs/stats: retention counters plus the one baseline key.
	code, resp := do(t, s, "GET", "/v1/runs/stats?baseline="+ma.BaselineKey, nil)
	if code != http.StatusOK {
		t.Fatalf("GET /v1/runs/stats = %d", code)
	}
	var rs struct {
		Runs      int                     `json:"runs"`
		Bytes     int64                   `json:"bytes"`
		Baselines []trachive.BaselineInfo `json:"baselines"`
		Rollup    []trachive.RollupCell   `json:"rollup"`
	}
	if err := json.Unmarshal(resp, &rs); err != nil {
		t.Fatal(err)
	}
	if rs.Runs != 2 || rs.Bytes == 0 || len(rs.Baselines) != 1 || len(rs.Rollup) == 0 {
		t.Fatalf("runs stats: %+v", rs)
	}

	// Service stats carry the archive counters.
	if st := s.Stats(); st.RunsArchived != 2 || st.HistoryRuns != 2 || st.HistoryBytes == 0 || st.ArchiveErrors != 0 {
		t.Fatalf("service stats: %+v", st)
	}

	shutdown(t, s)
	waitGoroutines(t, before)
}

// sentinelOpts builds the server options the sentinel tests share: a
// stage hook that sleeps inside the place stage (delay in nanoseconds,
// swapped atomically between runs) and a floor that only the delayed
// stage clears, so scheduler jitter on the microsecond stages can
// never gate.
func sentinelOpts(delay *atomic.Int64, prom *telemetry.PromSink) Options {
	return Options{
		Workers:        1,
		Metrics:        prom,
		SentinelMinDur: 10 * time.Millisecond,
		stageHook: func(stage string, _ float64) {
			if stage == "place" {
				time.Sleep(time.Duration(delay.Load()))
			}
		},
	}
}

// TestSentinelQuietOnIdenticalRerun: the same job run twice at the same
// speed diffs clean — the verdict is no-regression and the regression
// counter stays at a scrapeable zero.
func TestSentinelQuietOnIdenticalRerun(t *testing.T) {
	var delay atomic.Int64
	delay.Store(int64(50 * time.Millisecond))
	prom := telemetry.NewPromSink("tpid")
	s := openDurable(t, t.TempDir(), sentinelOpts(&delay, prom), nil)
	defer shutdown(t, s)

	_, st1 := postJob(t, s, budgetBody(t, "smoke", 1))
	waitState(t, s, st1.ID, StateDone)
	waitArchived(t, s, st1.RunID)

	_, st2 := postJob(t, s, budgetBody(t, "smoke", 1))
	waitState(t, s, st2.ID, StateDone)
	if st2.RunID == st1.RunID || st2.CacheHit {
		t.Fatalf("budgeted rerun did not execute a fresh flow: %+v", st2)
	}
	m2 := waitArchived(t, s, st2.RunID)
	if m2.Diff == nil || m2.Diff.Verdict != "no-regression" || m2.Diff.Against != st1.RunID {
		t.Fatalf("rerun verdict: %+v", m2.Diff)
	}
	if n := s.Stats().Regressions; n != 0 {
		t.Fatalf("regressions = %d on identical rerun", n)
	}

	// The diff endpoint agrees, both implicitly and explicitly.
	for _, q := range []string{"", "?against=" + st1.RunID} {
		code, resp := do(t, s, "GET", "/v1/runs/"+st2.RunID+"/diff"+q, nil)
		if code != http.StatusOK {
			t.Fatalf("GET diff%s = %d: %s", q, code, resp)
		}
		var d struct {
			Verdict string `json:"verdict"`
			Against string `json:"against"`
			Text    string `json:"text"`
		}
		if err := json.Unmarshal(resp, &d); err != nil {
			t.Fatal(err)
		}
		if d.Verdict != "no-regression" || d.Against != st1.RunID || !strings.Contains(d.Text, "no regressions") {
			t.Fatalf("diff%s: %+v", q, d)
		}
	}

	// tpid_service_regression_total renders at zero before any
	// regression ever fires — the scrape CI's history-smoke greps for.
	rec := httptest.NewRecorder()
	prom.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	expo := rec.Body.String()
	if !strings.Contains(expo, "tpid_service_regression_total") {
		t.Fatal("regression counter family missing from exposition")
	}
	for _, line := range strings.Split(expo, "\n") {
		if strings.HasPrefix(line, "tpid_service_regression_total{") && !strings.HasSuffix(line, " 0") {
			t.Fatalf("nonzero regression series on clean rerun: %s", line)
		}
	}
	if !strings.Contains(expo, "tpid_service_crossrun_p50_ns") || !strings.Contains(expo, `baseline="`) {
		t.Fatal("cross-run rollup gauges missing from exposition")
	}
}

// TestSentinelFiresOnInjectedSlowdown: re-running the same job with the
// place stage slowed 10× trips the sentinel — the archived verdict, the
// service counter, and the /metrics series all name the stage and level.
func TestSentinelFiresOnInjectedSlowdown(t *testing.T) {
	var delay atomic.Int64
	delay.Store(int64(50 * time.Millisecond))
	prom := telemetry.NewPromSink("tpid")
	s := openDurable(t, t.TempDir(), sentinelOpts(&delay, prom), nil)
	defer shutdown(t, s)

	_, st1 := postJob(t, s, budgetBody(t, "smoke", 1))
	waitState(t, s, st1.ID, StateDone)
	waitArchived(t, s, st1.RunID)

	delay.Store(int64(500 * time.Millisecond))
	_, st2 := postJob(t, s, budgetBody(t, "smoke", 1))
	waitState(t, s, st2.ID, StateDone)
	m2 := waitArchived(t, s, st2.RunID)

	if m2.Diff == nil || m2.Diff.Verdict != "regression" || m2.Diff.Against != st1.RunID {
		t.Fatalf("slowdown verdict: %+v", m2.Diff)
	}
	var sawPlace bool
	for _, row := range m2.Diff.Regressions {
		if row.Stage == "place" && row.TP == 1 {
			sawPlace = true
		}
	}
	if !sawPlace {
		t.Fatalf("regressions do not name place @ tp 1: %+v", m2.Diff.Regressions)
	}
	if n := s.Stats().Regressions; n == 0 {
		t.Fatal("regression counter did not move")
	}

	rec := httptest.NewRecorder()
	prom.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	expo := rec.Body.String()
	var sawSeries bool
	for _, line := range strings.Split(expo, "\n") {
		if strings.HasPrefix(line, "tpid_service_regression_total{") &&
			strings.Contains(line, `stage="place"`) && strings.Contains(line, `level="1"`) &&
			!strings.HasSuffix(line, " 0") {
			sawSeries = true
		}
	}
	if !sawSeries {
		t.Fatalf("no stage/level-labeled regression series:\n%s", expo)
	}
	if !strings.Contains(expo, "tpid_service_regression_last") {
		t.Fatal("regression_last gauge missing")
	}
}

// TestHistorySurvivesCrashRestart: archived runs outlive a SIGKILL
// (journal-backed index, no clean Close), and a rerun after restart
// diffs against the pre-crash baseline.
func TestHistorySurvivesCrashRestart(t *testing.T) {
	dir := t.TempDir()
	s1 := openDurable(t, dir, Options{Workers: 1}, nil)
	_, st1 := postJob(t, s1, budgetBody(t, "smoke", 1))
	waitState(t, s1, st1.ID, StateDone)
	m1 := waitArchived(t, s1, st1.RunID)
	s1.Kill() // crash: no archive Close, no journal compaction

	s2 := openDurable(t, dir, Options{Workers: 1}, nil)
	defer shutdown(t, s2)
	m1b := waitArchived(t, s2, st1.RunID)
	if m1b.TraceBytes != m1.TraceBytes || m1b.BaselineKey != m1.BaselineKey {
		t.Fatalf("archived run changed across restart: %+v vs %+v", m1, m1b)
	}

	// The pre-crash run serves as baseline for a post-restart rerun.
	_, st2 := postJob(t, s2, budgetBody(t, "smoke", 1))
	waitState(t, s2, st2.ID, StateDone)
	m2 := waitArchived(t, s2, st2.RunID)
	if m2.Diff == nil || m2.Diff.Against != st1.RunID || m2.Diff.Verdict != "no-regression" {
		t.Fatalf("post-restart diff: %+v", m2.Diff)
	}
}

// TestRunProfileCapture: with ProfileRuns on, a retiring run archives a
// CPU profile whose sample labels name the run and its stages.
func TestRunProfileCapture(t *testing.T) {
	opt := Options{
		Workers:     1,
		ProfileRuns: true,
		// Burn real CPU inside one stage so the 100 Hz profiler is
		// guaranteed samples that carry the run's pprof labels.
		stageHook: func(stage string, _ float64) {
			if stage != "place" {
				return
			}
			for start := time.Now(); time.Since(start) < 400*time.Millisecond; {
			}
		},
	}
	s := openDurable(t, t.TempDir(), opt, nil)
	defer shutdown(t, s)

	_, st := postJob(t, s, budgetBody(t, "smoke", 1))
	waitState(t, s, st.ID, StateDone)
	m := waitArchived(t, s, st.RunID)
	if m.ProfileBytes == 0 {
		t.Fatal("no profile archived")
	}

	code, body := do(t, s, "GET", "/v1/runs/"+st.RunID+"/profile", nil)
	if code != http.StatusOK {
		t.Fatalf("GET profile = %d", code)
	}
	if int64(len(body)) != m.ProfileBytes {
		t.Fatalf("profile bytes: served %d, meta %d", len(body), m.ProfileBytes)
	}
	// pprof output is gzipped protobuf; the label keys and values live
	// in its string table, so a substring scan of the decompressed
	// bytes is a dependency-free label check.
	gz, err := gzip.NewReader(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("profile is not gzip: %v", err)
	}
	var raw strings.Builder
	if _, err := fmt.Fprint(&raw, readAll(t, gz)); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"run_id", st.RunID, "stage", "tp_level"} {
		if !strings.Contains(raw.String(), want) {
			t.Errorf("profile lacks label string %q", want)
		}
	}
}

func readAll(t *testing.T, r *gzip.Reader) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 32<<10)
	for {
		n, err := r.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}
