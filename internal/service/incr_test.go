package service

// Incremental sweep mode through the service: request validation, the
// serialized artifact chain inside the checkpoint/retry driver, and
// crash-restart of an interrupted incremental sweep.

import (
	"encoding/json"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"

	"tpilayout/internal/flow"
	"tpilayout/internal/netlist"
)

// jobBodyMode is jobBody with an explicit flow.sweep_mode.
func jobBodyMode(t *testing.T, tenant, mode string, levels ...float64) []byte {
	t.Helper()
	b, err := json.Marshal(JobRequest{
		Tenant:   tenant,
		Circuit:  CircuitSpec{Bench: testBench, Name: "tiny"},
		TPLevels: levels,
		Flow:     FlowConfig{SkipATPG: true, SweepMode: mode},
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// chainRecorder stubs Server.runLevelChained, recording the execution
// order and whether each link started cold (no prior artifacts).
type chainRecorder struct {
	mu   sync.Mutex
	ran  []float64
	cold []bool
}

func (cr *chainRecorder) hook(rn *run, base *netlist.Netlist, cfg flow.Config, pct float64, prev *flow.LevelArtifacts) (flow.LevelResult, *flow.LevelArtifacts) {
	cr.mu.Lock()
	cr.ran = append(cr.ran, pct)
	cr.cold = append(cr.cold, prev == nil)
	cr.mu.Unlock()
	return flow.LevelResult{TPPercent: pct, Metrics: stubMetrics(pct)}, &flow.LevelArtifacts{}
}

func (cr *chainRecorder) executed() ([]float64, []bool) {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	return append([]float64(nil), cr.ran...), append([]bool(nil), cr.cold...)
}

// TestSweepModeBadRequest: an unknown flow.sweep_mode is a 400, named in
// the error body.
func TestSweepModeBadRequest(t *testing.T) {
	s := New(Options{Workers: 1})
	defer shutdown(t, s)
	code, body := postJobCode(t, s, jobBodyMode(t, "acme", "bogus", 1))
	if code != http.StatusBadRequest || !strings.Contains(string(body), "sweep mode") {
		t.Fatalf("sweep_mode=bogus: code=%d body=%s, want 400 naming the mode", code, body)
	}
}

// TestIncrementalChainOrder: an incremental job executes its levels
// serialized in ascending TP order — whatever the request order — with
// artifacts threaded link to link, while the result rows stay in input
// order.
func TestIncrementalChainOrder(t *testing.T) {
	rec := &chainRecorder{}
	s := New(Options{Workers: 1})
	defer shutdown(t, s)
	s.runLevelChained = rec.hook

	_, st := postJob(t, s, jobBodyMode(t, "acme", "incremental", 5, 0, 3))
	waitState(t, s, st.ID, StateDone)

	ran, cold := rec.executed()
	if !reflect.DeepEqual(ran, []float64{0, 3, 5}) {
		t.Fatalf("chain executed %v, want ascending [0 3 5]", ran)
	}
	if !reflect.DeepEqual(cold, []bool{true, false, false}) {
		t.Fatalf("cold starts = %v, want only the first link cold", cold)
	}
	_, res := getResult(t, s, st.ID)
	want := []flow.Metrics{stubMetrics(5), stubMetrics(0), stubMetrics(3)}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Fatalf("rows not in input order:\ngot  %+v\nwant %+v", res.Rows, want)
	}
}

// TestKillResumesIncrementalSweep is the crash-restart scenario for the
// chain: a kill lands while the third link is in flight; the restarted
// daemon re-admits the job in INCREMENTAL mode (the journaled flow
// config pins it), answers the two checkpointed levels from the store,
// and cold-starts the chain at the one missing level — stitching a
// complete result. It then proves the checkpoint namespaces are
// mode-keyed in both directions.
func TestKillResumesIncrementalSweep(t *testing.T) {
	dir := t.TempDir()

	reached := make(chan struct{})
	s1 := openDurable(t, dir, Options{Workers: 1}, func(s *Server) {
		var once sync.Once
		s.runLevelChained = func(rn *run, base *netlist.Netlist, cfg flow.Config, pct float64, prev *flow.LevelArtifacts) (flow.LevelResult, *flow.LevelArtifacts) {
			if pct == 2 {
				once.Do(func() { close(reached) })
				<-rn.ctx.Done() // the link a crash interrupts
				return flow.LevelResult{TPPercent: pct, Err: rn.ctx.Err()}, nil
			}
			return flow.LevelResult{TPPercent: pct, Metrics: stubMetrics(pct)}, &flow.LevelArtifacts{}
		}
	})

	_, st := postJob(t, s1, jobBodyMode(t, "acme", "incremental", 0, 1, 2))
	<-reached // levels 0 and 1 checkpointed under /incr; level 2 in flight
	s1.Kill()

	chainRec := &chainRecorder{}
	fullRec := &levelRecorder{}
	s2 := openDurable(t, dir, Options{Workers: 1}, func(s *Server) {
		s.runLevelChained = chainRec.hook
		s.runLevel = fullRec.hook
	})
	defer shutdown(t, s2)

	got := waitState(t, s2, st.ID, StateDone)
	ran, cold := chainRec.executed()
	if !reflect.DeepEqual(ran, []float64{2}) {
		t.Fatalf("restart re-executed levels %v, want only [2]", ran)
	}
	if !reflect.DeepEqual(cold, []bool{true}) {
		t.Fatalf("restarted link cold flags = %v, want [true] (artifacts are in-memory only)", cold)
	}
	if got.ResumedLevels != 2 {
		t.Fatalf("status resumed_levels = %d, want 2", got.ResumedLevels)
	}
	code, res := getResult(t, s2, st.ID)
	if code != http.StatusOK || !res.Complete {
		t.Fatalf("result after resume: code=%d complete=%v", code, res != nil && res.Complete)
	}
	want := []flow.Metrics{stubMetrics(0), stubMetrics(1), stubMetrics(2)}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Fatalf("resumed rows differ from uninterrupted sweep:\ngot  %+v\nwant %+v", res.Rows, want)
	}

	// Same namespace, same mode: a new incremental mix resumes level 1
	// from its /incr checkpoint and runs only level 5.
	_, st2 := postJob(t, s2, jobBodyMode(t, "acme", "incremental", 1, 5))
	got2 := waitState(t, s2, st2.ID, StateDone)
	if ran, _ := chainRec.executed(); !reflect.DeepEqual(ran, []float64{2, 5}) {
		t.Fatalf("incremental resubmit executed %v, want [2 5] (level 1 checkpointed)", ran)
	}
	if got2.ResumedLevels != 1 {
		t.Fatalf("incremental resubmit resumed_levels = %d, want 1", got2.ResumedLevels)
	}

	// Cross-mode isolation: a FULL-mode sweep over the same circuit does
	// NOT see the incremental checkpoints — both its levels run fresh.
	_, st3 := postJob(t, s2, jobBody(t, "acme", 0, 3))
	got3 := waitState(t, s2, st3.ID, StateDone)
	if ran := fullRec.executed(); !reflect.DeepEqual(ran, []float64{0, 3}) {
		t.Fatalf("full-mode sweep executed %v, want [0 3] (no cross-mode resume)", ran)
	}
	if got3.ResumedLevels != 0 {
		t.Fatalf("full-mode sweep resumed_levels = %d, want 0", got3.ResumedLevels)
	}
}
