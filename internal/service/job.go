// Package service turns the Figure 2 reproduction into a long-running
// TPI-as-a-service daemon: an HTTP/JSON API over a bounded job queue
// with per-tenant round-robin fairness, a shared worker pool running
// supervised sweeps with per-job cancellation, live NDJSON span events
// re-emitted over SSE, and a content-addressed result cache (SHA-256 of
// the canonicalized circuit + flow config) with singleflight coalescing
// so concurrent identical submissions cost exactly one flow.
package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"tpilayout/internal/circuitgen"
	"tpilayout/internal/flow"
	"tpilayout/internal/netlist"
	"tpilayout/internal/stdcell"
)

// Submission limits. They bound what one request can make the daemon do,
// independent of the HTTP body-size cap.
const (
	maxTPLevels   = 16
	maxTenantLen  = 64
	maxNameLen    = 128
	maxSpecScale  = 2.0
	maxFlowWorker = 64
)

// CircuitSpec names the circuit of a job: either an inline ISCAS-style
// ".bench" netlist, or one of the paper's generated circuit profiles.
type CircuitSpec struct {
	// Bench is the circuit itself in ".bench" form (see cmd/benchgen for
	// producing one). Mutually exclusive with Spec.
	Bench string `json:"bench,omitempty"`
	// Name names a Bench-submitted circuit (default "bench").
	Name string `json:"name,omitempty"`
	// PeriodPS is the default clock period for Bench circuits whose DFF
	// lines carry no domain comment (default 10000 ps).
	PeriodPS float64 `json:"period_ps,omitempty"`

	// Spec selects a generated paper circuit (s38417c, wctrl1, p26909c,
	// and their aliases). Mutually exclusive with Bench.
	Spec string `json:"spec,omitempty"`
	// Scale shrinks or grows a Spec circuit (default 1.0 = paper size).
	Scale float64 `json:"scale,omitempty"`
}

// FlowConfig is the JSON-facing subset of flow.Config a job may set.
// Fields left zero inherit the Experiment preset (or the default preset:
// chains of at most 100 flops, 97% row utilization).
type FlowConfig struct {
	// Experiment selects a per-circuit preset by paper name ("s38417c",
	// "p26909c", ...), exactly like flow.ExperimentConfig.
	Experiment        string  `json:"experiment,omitempty"`
	MaxChains         int     `json:"max_chains,omitempty"`
	MaxChainLength    int     `json:"max_chain_length,omitempty"`
	TargetUtilization float64 `json:"target_utilization,omitempty"`
	SkipATPG          bool    `json:"skip_atpg,omitempty"`
	TimingOptRounds   int     `json:"timing_opt_rounds,omitempty"`
	// Workers bounds the per-flow parallelism (0 = the server's default).
	// Results are bit-identical for every value, so Workers is excluded
	// from the cache key.
	Workers int `json:"workers,omitempty"`
	// SweepMode schedules the job's levels: "full" (default) fans levels
	// across the worker pool, "incremental" serializes them and threads
	// each level's artifacts into the next. Results are bit-identical
	// either way, so the mode is excluded from the result-cache key;
	// level checkpoints, however, are mode-discriminated (see levelKey).
	SweepMode string `json:"sweep_mode,omitempty"`
	// ATPGMemo opts an incremental job into cross-level PODEM replay
	// (flow.Config.ATPGMemo). Exact, hence also excluded from the
	// result-cache key; ignored for full-mode jobs.
	ATPGMemo bool `json:"atpg_memo,omitempty"`
	// ATPGBudgetMS bounds the ATPG effort per level; an expiring budget
	// truncates the run instead of failing it. Budgeted results depend on
	// wall-clock speed, so a job with a budget is never cached and never
	// coalesced with other submissions.
	ATPGBudgetMS int64 `json:"atpg_budget_ms,omitempty"`
}

// JobRequest is the POST /v1/jobs body: one circuit, one flow config,
// and the TP percentages to sweep.
type JobRequest struct {
	// Tenant buckets the job for queue fairness; jobs of different
	// tenants are dequeued round-robin, so one flooding tenant cannot
	// starve the others. Default "default".
	Tenant   string      `json:"tenant,omitempty"`
	Circuit  CircuitSpec `json:"circuit"`
	TPLevels []float64   `json:"tp_levels"`
	Flow     FlowConfig  `json:"flow"`
}

// compiled is a validated, executable form of a JobRequest: the parsed
// design, the resolved flow.Config, and the content-addressed cache key.
type compiled struct {
	tenant    string
	design    *netlist.Netlist
	cfg       flow.Config
	levels    []float64
	key       string
	baseKey   string // level-independent address: checkpoint key prefix
	circHash  string // circuit-only hash: run-history baseline key half
	cfgHash   string // config-only hash: the other baseline key half
	bench     string // canonical .bench text (journal accepted records)
	preset    string // resolved experiment preset (pinned for replay)
	cacheable bool
	workers   int // requested per-flow workers (0 = server default)
}

// requestError is a client-side problem with a submission (HTTP 4xx).
type requestError struct{ msg string }

func (e *requestError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &requestError{msg: fmt.Sprintf(format, args...)}
}

// compileRequest validates req end to end and resolves it into an
// executable job: the circuit is parsed (or generated), the flow config
// preset is applied and validated, and the cache key is derived from the
// canonicalized circuit text plus the resolved config — so two requests
// that mean the same sweep hash identically regardless of field spelling,
// bench formatting, or worker count.
func compileRequest(req *JobRequest) (*compiled, error) {
	c := &compiled{tenant: strings.TrimSpace(req.Tenant)}
	if c.tenant == "" {
		c.tenant = "default"
	}
	if len(c.tenant) > maxTenantLen {
		return nil, badRequest("tenant name longer than %d bytes", maxTenantLen)
	}

	if len(req.TPLevels) == 0 {
		return nil, badRequest("tp_levels is empty (list the test-point percentages to sweep, e.g. [0,1,2])")
	}
	if len(req.TPLevels) > maxTPLevels {
		return nil, badRequest("tp_levels has %d entries, limit %d", len(req.TPLevels), maxTPLevels)
	}
	for _, tp := range req.TPLevels {
		if tp < 0 || tp > 100 {
			return nil, badRequest("tp_levels entry %g outside [0,100]", tp)
		}
	}
	c.levels = append([]float64(nil), req.TPLevels...)

	design, preset, err := buildDesign(&req.Circuit)
	if err != nil {
		return nil, err
	}
	c.design = design

	fc := req.Flow
	if fc.Experiment != "" {
		preset = fc.Experiment
	}
	cfg := flow.ExperimentConfig(preset)
	if fc.MaxChains > 0 || fc.MaxChainLength > 0 {
		cfg.Scan.MaxChains = fc.MaxChains
		cfg.Scan.MaxChainLength = fc.MaxChainLength
	}
	if fc.TargetUtilization != 0 {
		cfg.Place.TargetUtilization = fc.TargetUtilization
	}
	cfg.SkipATPG = fc.SkipATPG
	cfg.TimingOptRounds = fc.TimingOptRounds
	mode, err := flow.ParseSweepMode(fc.SweepMode)
	if err != nil {
		return nil, badRequest("flow.sweep_mode: %v", err)
	}
	cfg.SweepMode = mode
	cfg.ATPGMemo = fc.ATPGMemo
	if fc.Workers < 0 || fc.Workers > maxFlowWorker {
		return nil, badRequest("flow.workers %d outside [0,%d]", fc.Workers, maxFlowWorker)
	}
	if fc.ATPGBudgetMS < 0 {
		return nil, badRequest("flow.atpg_budget_ms negative")
	}
	c.workers = fc.Workers
	c.cfg = cfg
	// Validate at the level the flow itself will: TPPercent is checked
	// per level above, so probe with the first level filled in.
	probe := cfg
	probe.TPPercent = c.levels[0]
	if err := probe.Validate(); err != nil {
		return nil, badRequest("%v", err)
	}

	var bench bytes.Buffer
	if err := circuitgen.WriteBench(&bench, design); err != nil {
		return nil, fmt.Errorf("service: canonicalizing circuit: %w", err)
	}
	c.bench = bench.String()
	c.preset = preset
	c.key = keyFromBench(c.bench, &cfg, c.levels, fc.ATPGBudgetMS)
	// The base key drops the level list and budget: every level of every
	// sweep over the same circuit+config shares one checkpoint namespace,
	// so a resubmission with a different level mix still resumes the
	// levels it has in common with earlier runs.
	c.baseKey = keyFromBench(c.bench, &cfg, nil, 0)
	// The history hashes split the content address into its two halves,
	// so the run archive can answer "same circuit, any config" and "same
	// config, any circuit" queries independently. Levels are excluded:
	// the regression sentinel aligns runs per (stage, tp) cell, so two
	// sweeps over different level mixes still diff on the levels they
	// share. The ATPG budget stays in the config hash — a budgeted run
	// is not comparable to an unbudgeted one.
	c.circHash = circuitHash(c.bench)
	c.cfgHash = configHash(&cfg, fc.ATPGBudgetMS)
	c.cacheable = fc.ATPGBudgetMS == 0
	return c, nil
}

// circuitHash is the circuit half of the archive baseline key: SHA-256
// over the canonical bench text with the same domain separator the
// cache key uses.
func circuitHash(bench string) string {
	h := sha256.Sum256([]byte("tpid/v1/circuit\n" + bench))
	return hex.EncodeToString(h[:])
}

// configHash is the config half of the archive baseline key: SHA-256
// over the resolved config (level list excluded, ATPG budget included).
func configHash(cfg *flow.Config, budgetMS int64) string {
	hc := hashedConfig{
		MaxChains:         cfg.Scan.MaxChains,
		MaxChainLength:    cfg.Scan.MaxChainLength,
		SEFanoutLimit:     cfg.Scan.SEFanoutLimit,
		TargetUtilization: cfg.Place.TargetUtilization,
		SkipATPG:          cfg.SkipATPG,
		TimingOptRounds:   cfg.TimingOptRounds,
		ATPGBudgetMS:      budgetMS,
	}
	cfgJSON, _ := json.Marshal(hc) // fixed field set: cannot fail
	h := sha256.Sum256(append([]byte("tpid/v1/config\n"), cfgJSON...))
	return hex.EncodeToString(h[:])
}

// levelKey addresses one checkpointed level: the level-independent base
// key, the sweep mode that produced it, and the TP percentage. Full mode
// keeps the legacy key shape (journals written before the incremental
// engine replay into the right namespace); incremental checkpoints carry
// an extra segment so a level produced by the artifact chain never
// masquerades as a full-rerun-verified one, even though both modes are
// bit-identical by construction.
func levelKey(baseKey string, mode flow.SweepMode, pct float64) string {
	suffix := "/tp" + strconv.FormatFloat(pct, 'g', -1, 64)
	if mode == flow.SweepIncremental {
		return baseKey + "/incr" + suffix
	}
	return baseKey + suffix
}

// buildDesign parses or generates the request's circuit, returning the
// design plus the preset name its config should default to.
func buildDesign(cs *CircuitSpec) (*netlist.Netlist, string, error) {
	lib := stdcell.Default()
	switch {
	case cs.Bench != "" && cs.Spec != "":
		return nil, "", badRequest("circuit: set either bench or spec, not both")
	case cs.Bench != "":
		name := strings.TrimSpace(cs.Name)
		if name == "" {
			name = "bench"
		}
		if len(name) > maxNameLen {
			return nil, "", badRequest("circuit.name longer than %d bytes", maxNameLen)
		}
		period := cs.PeriodPS
		if period == 0 {
			period = 10000
		}
		if period < 0 {
			return nil, "", badRequest("circuit.period_ps negative")
		}
		n, err := circuitgen.ReadBench(strings.NewReader(cs.Bench), name, lib, period)
		if err != nil {
			return nil, "", badRequest("circuit.bench: %v", err)
		}
		return n, "bench", nil
	case cs.Spec != "":
		spec, err := circuitgen.SpecByName(cs.Spec)
		if err != nil {
			return nil, "", badRequest("circuit.spec: %v", err)
		}
		scale := cs.Scale
		if scale == 0 {
			scale = 1
		}
		if scale < 0 || scale > maxSpecScale {
			return nil, "", badRequest("circuit.scale %g outside (0,%g]", scale, maxSpecScale)
		}
		if scale != 1 {
			spec = spec.Scale(scale)
		}
		n, err := circuitgen.Generate(spec, lib)
		if err != nil {
			return nil, "", fmt.Errorf("service: generating %s: %w", spec.Name, err)
		}
		return n, spec.Name, nil
	default:
		return nil, "", badRequest("circuit: one of bench or spec is required")
	}
}

// hashedConfig is the canonical form of everything that can change a
// job's result. Workers and tenant are deliberately absent: results are
// bit-identical for every worker count, and a tenant label must not
// split the cache.
type hashedConfig struct {
	MaxChains         int     `json:"max_chains"`
	MaxChainLength    int     `json:"max_chain_length"`
	SEFanoutLimit     int     `json:"se_fanout_limit"`
	TargetUtilization float64 `json:"target_utilization"`
	SkipATPG          bool    `json:"skip_atpg"`
	TimingOptRounds   int     `json:"timing_opt_rounds"`
	ATPGBudgetMS      int64   `json:"atpg_budget_ms"`
	TPLevels          []float64
}

// canonicalKey derives the content address of a request: SHA-256 over
// the canonical ".bench" text of the parsed design (WriteBench is a
// fixed point of ReadBench∘WriteBench, so formatting differences in the
// submitted text vanish) plus the resolved config and level list. Two
// requests with equal keys are guaranteed to produce byte-identical
// tables, which is what makes the result cache and singleflight sound.
func canonicalKey(design *netlist.Netlist, cfg *flow.Config, levels []float64, budgetMS int64) (string, error) {
	var bench bytes.Buffer
	if err := circuitgen.WriteBench(&bench, design); err != nil {
		return "", err
	}
	return keyFromBench(bench.String(), cfg, levels, budgetMS), nil
}

// keyFromBench is canonicalKey over an already-canonicalized bench text.
func keyFromBench(bench string, cfg *flow.Config, levels []float64, budgetMS int64) string {
	hc := hashedConfig{
		MaxChains:         cfg.Scan.MaxChains,
		MaxChainLength:    cfg.Scan.MaxChainLength,
		SEFanoutLimit:     cfg.Scan.SEFanoutLimit,
		TargetUtilization: cfg.Place.TargetUtilization,
		SkipATPG:          cfg.SkipATPG,
		TimingOptRounds:   cfg.TimingOptRounds,
		ATPGBudgetMS:      budgetMS,
		TPLevels:          levels,
	}
	cfgJSON, _ := json.Marshal(hc) // fixed field set: cannot fail
	h := sha256.New()
	h.Write([]byte("tpid/v1/circuit\n"))
	h.Write([]byte(bench))
	h.Write([]byte("\x00tpid/v1/config\n"))
	h.Write(cfgJSON)
	return hex.EncodeToString(h.Sum(nil))
}

// atpgDeadline converts a request's relative budget into the absolute
// flow deadline, at the moment the flow actually starts.
func atpgDeadline(budgetMS int64, now time.Time) time.Time {
	if budgetMS <= 0 {
		return time.Time{}
	}
	return now.Add(time.Duration(budgetMS) * time.Millisecond)
}
