package service

import (
	"errors"
	"sync"
)

// Queue errors surfaced to the HTTP layer.
var (
	// ErrQueueFull is backpressure: the bounded queue is at capacity and
	// the submission must be retried later (HTTP 429).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrQueueClosed means the server is draining (HTTP 503).
	ErrQueueClosed = errors.New("service: job queue closed")
)

// fairQueue is a bounded job queue with per-tenant round-robin fairness:
// each tenant gets its own FIFO, and Pop serves the tenants in rotation,
// so a tenant that floods the queue delays only its own jobs — with K
// active tenants, the next job of any tenant is at most K-1 dequeues
// away, however deep the other tenants' backlogs are. Capacity bounds
// the total across all tenants.
type fairQueue struct {
	mu       sync.Mutex
	cond     *sync.Cond
	capacity int
	n        int
	closed   bool
	tenants  map[string][]*run
	ring     []string // rotation order; entries may be stale (empty FIFO)
	next     int      // ring cursor
}

func newFairQueue(capacity int) *fairQueue {
	q := &fairQueue{capacity: capacity, tenants: map[string][]*run{}}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push enqueues r under its tenant, failing fast when the queue is at
// capacity (ErrQueueFull) or draining (ErrQueueClosed).
func (q *fairQueue) Push(r *run) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	if q.n >= q.capacity {
		return ErrQueueFull
	}
	fifo, ok := q.tenants[r.tenant]
	if !ok || len(fifo) == 0 {
		// First pending job of this tenant: join the rotation at the end,
		// behind every tenant already waiting.
		q.ring = append(q.ring, r.tenant)
	}
	q.tenants[r.tenant] = append(fifo, r)
	q.n++
	q.cond.Signal()
	return nil
}

// Pop blocks until a job is available and returns the next one in
// round-robin tenant order. ok is false when the queue has been closed —
// the worker-pool shutdown signal; jobs still queued at close time are
// returned by Close, not Pop.
func (q *fairQueue) Pop() (r *run, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for !q.closed && q.n == 0 {
		q.cond.Wait()
	}
	if q.closed {
		return nil, false
	}
	return q.popLocked(), true
}

func (q *fairQueue) popLocked() *run {
	for len(q.ring) > 0 {
		if q.next >= len(q.ring) {
			q.next = 0
		}
		t := q.ring[q.next]
		fifo := q.tenants[t]
		if len(fifo) == 0 {
			// Stale rotation entry (all of the tenant's jobs were removed
			// by cancellation): drop it without advancing the cursor.
			q.ring = append(q.ring[:q.next], q.ring[q.next+1:]...)
			delete(q.tenants, t)
			continue
		}
		r := fifo[0]
		fifo[0] = nil // let the run go as soon as it is off the queue
		fifo = fifo[1:]
		if len(fifo) == 0 {
			delete(q.tenants, t)
			q.ring = append(q.ring[:q.next], q.ring[q.next+1:]...)
		} else {
			q.tenants[t] = fifo
			q.next++
		}
		q.n--
		return r
	}
	return nil
}

// Remove takes a still-queued run out of its tenant's FIFO (cancellation
// of a queued job), freeing its capacity slot immediately. It reports
// whether r was found; false means a worker already popped it.
func (q *fairQueue) Remove(r *run) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	fifo := q.tenants[r.tenant]
	for i, qr := range fifo {
		if qr == r {
			q.tenants[r.tenant] = append(fifo[:i:i], fifo[i+1:]...)
			q.n--
			// A now-empty FIFO leaves a stale ring entry; popLocked
			// collects it.
			return true
		}
	}
	return false
}

// Len returns the number of queued (not yet running) jobs.
func (q *fairQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// Close drains the queue: every blocked and future Pop returns false,
// every future Push fails with ErrQueueClosed, and the still-queued runs
// are handed back to the caller (the shutdown path cancels them).
func (q *fairQueue) Close() []*run {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil
	}
	q.closed = true
	var leftover []*run
	for q.n > 0 {
		if r := q.popLocked(); r != nil {
			leftover = append(leftover, r)
		}
	}
	q.tenants = map[string][]*run{}
	q.ring = nil
	q.cond.Broadcast()
	return leftover
}
