package service

import (
	"fmt"
	"testing"
)

func qrun(tenant, id string) *run {
	return &run{tenant: tenant, key: id}
}

func TestFairQueueRoundRobin(t *testing.T) {
	q := newFairQueue(100)
	// Tenant a floods first, then b and c each add a couple of jobs.
	for i := 0; i < 6; i++ {
		mustPush(t, q, qrun("a", fmt.Sprintf("a%d", i)))
	}
	for i := 0; i < 2; i++ {
		mustPush(t, q, qrun("b", fmt.Sprintf("b%d", i)))
		mustPush(t, q, qrun("c", fmt.Sprintf("c%d", i)))
	}
	var order []string
	for q.Len() > 0 {
		r, ok := q.Pop()
		if !ok {
			t.Fatal("Pop returned !ok on a non-empty open queue")
		}
		order = append(order, r.key)
	}
	// Round-robin: a, b, c rotate while all have work; a's backlog only
	// drains alone after b and c are empty.
	want := []string{"a0", "b0", "c0", "a1", "b1", "c1", "a2", "a3", "a4", "a5"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("dequeue order = %v, want %v", order, want)
	}
}

// TestFairQueueFairnessBound checks the headline guarantee: with K
// tenants, any tenant's next job is served within K dequeues, however
// deep the other tenants' backlogs are.
func TestFairQueueFairnessBound(t *testing.T) {
	const K = 5
	q := newFairQueue(1000)
	// Tenant 0 floods 100 jobs; the others one each.
	for i := 0; i < 100; i++ {
		mustPush(t, q, qrun("flood", fmt.Sprintf("f%d", i)))
	}
	for k := 1; k < K; k++ {
		mustPush(t, q, qrun(fmt.Sprintf("t%d", k), fmt.Sprintf("j%d", k)))
	}
	seen := map[string]int{} // tenant -> dequeue index of its first job
	for i := 0; q.Len() > 0; i++ {
		r, _ := q.Pop()
		if _, ok := seen[r.tenant]; !ok {
			seen[r.tenant] = i
		}
	}
	for tenant, idx := range seen {
		if idx >= K {
			t.Errorf("tenant %s first served at dequeue %d, want < %d", tenant, idx, K)
		}
	}
}

func TestFairQueueBackpressureAndRemove(t *testing.T) {
	q := newFairQueue(2)
	a, b := qrun("a", "a0"), qrun("b", "b0")
	mustPush(t, q, a)
	mustPush(t, q, b)
	if err := q.Push(qrun("c", "c0")); err != ErrQueueFull {
		t.Fatalf("Push on full queue = %v, want ErrQueueFull", err)
	}
	if !q.Remove(a) {
		t.Fatal("Remove of a queued run failed")
	}
	if q.Remove(a) {
		t.Fatal("second Remove of the same run succeeded")
	}
	// Capacity freed: push works again.
	mustPush(t, q, qrun("c", "c0"))
	if n := q.Len(); n != 2 {
		t.Fatalf("Len = %d, want 2", n)
	}
	// The removed run is never dequeued.
	for q.Len() > 0 {
		r, _ := q.Pop()
		if r.key == "a0" {
			t.Fatal("removed run came back out of the queue")
		}
	}
}

func TestFairQueueClose(t *testing.T) {
	q := newFairQueue(10)
	mustPush(t, q, qrun("a", "a0"))
	mustPush(t, q, qrun("b", "b0"))

	popped := make(chan bool, 1)
	go func() {
		// This Pop may win the race for the two queued runs or block; it
		// must return !ok after Close either way... so pop twice.
		q.Pop()
		q.Pop()
		_, ok := q.Pop()
		popped <- ok
	}()
	leftover := q.Close()
	if ok := <-popped; ok {
		t.Fatal("Pop returned ok after Close")
	}
	if err := q.Push(qrun("c", "c0")); err != ErrQueueClosed {
		t.Fatalf("Push after Close = %v, want ErrQueueClosed", err)
	}
	// Whatever the racing Pops did not grab must come back from Close.
	if len(leftover) > 2 {
		t.Fatalf("Close returned %d leftovers, want at most 2", len(leftover))
	}
}

func mustPush(t *testing.T, q *fairQueue, r *run) {
	t.Helper()
	if err := q.Push(r); err != nil {
		t.Fatalf("Push(%s/%s): %v", r.tenant, r.key, err)
	}
}
