package service

import (
	"context"
	"errors"
	"math/rand"
	"time"

	"tpilayout/internal/supervise"
)

// RetryPolicy governs per-level retries of transient failures. A level
// that panics (isolated to a *StageError wrapping supervise.PanicError)
// or exceeds its ATPG deadline is retried with full-jitter exponential
// backoff; validation errors and cancellations never retry.
type RetryPolicy struct {
	// MaxAttempts bounds how many times one level may run, counting the
	// first attempt (default 3; 1 disables retries).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 100ms);
	// it doubles per attempt up to MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (default 5s).
	MaxDelay time.Duration
	// Jitter enables full jitter: each sleep is uniform in (0, delay]
	// so retrying levels do not stampede in lockstep.
	Jitter bool
	// JobBudget caps the TOTAL retries across all levels of one run
	// (default 8): a job whose every level keeps crashing fails after
	// JobBudget extra attempts instead of grinding the pool forever.
	JobBudget int
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	if p.JobBudget <= 0 {
		p.JobBudget = 8
	}
	return p
}

// backoff returns the sleep before retry number retry (1-based).
func (p RetryPolicy) backoff(retry int) time.Duration {
	d := p.BaseDelay
	for i := 1; i < retry; i++ {
		d *= 2
		if d >= p.MaxDelay {
			d = p.MaxDelay
			break
		}
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	if p.Jitter && d > 0 {
		d = time.Duration(1 + rand.Int63n(int64(d)))
	}
	return d
}

// transientError reports whether a level failure is worth retrying:
// an isolated panic or an expired deadline, but never a cancellation
// (the client is gone) or a deterministic validation/stage failure
// (identical inputs would fail identically).
func transientError(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) {
		return false
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var pe *supervise.PanicError
	return errors.As(err, &pe)
}

// sleepCtx sleeps for d or until ctx is canceled, whichever comes
// first; it reports whether the full sleep elapsed. This is what makes
// DELETE on a job in backoff free its worker immediately: the run's
// context cancels and the timer is abandoned.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
