package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tpilayout/internal/flow"
	"tpilayout/internal/netlist"
	"tpilayout/internal/telemetry"
)

// State is a job's lifecycle position.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// run is one flow execution: the unit the queue holds and a worker
// executes. Several jobs may be attached to one run (singleflight:
// concurrent identical submissions coalesce), and a run outlives a
// cancelled job as long as any other job still wants its result.
type run struct {
	key       string
	cacheable bool
	tenant    string // queue bucket: the first submitter's tenant
	designN   *netlist.Netlist
	cfg       flow.Config
	levels    []float64
	workers   int
	budgetMS  int64
	events    *broadcaster
	ctx       context.Context
	cancel    context.CancelFunc

	enqueued time.Time

	// All below guarded by Server.mu. An empty jobs list means nobody
	// wants the result anymore and the run may be dropped/cancelled.
	jobs           []*Job
	startedRunning bool
	done           bool
}

// Job is one client-visible submission.
type Job struct {
	ID      string
	Tenant  string
	Key     string
	Levels  []float64
	Circuit string

	// All below guarded by Server.mu.
	state    State
	cacheHit bool
	coalesce bool // attached to an already-inflight run
	run      *run // nil once terminal via cache hit
	errMsg   string
	result   *JobResult
	created  time.Time
	started  time.Time
	finished time.Time
}

// LevelStatus is the per-level outcome inside a JobResult.
type LevelStatus struct {
	TPPercent float64 `json:"tp_percent"`
	OK        bool    `json:"ok"`
	Truncated bool    `json:"truncated,omitempty"`
	Error     string  `json:"error,omitempty"`
}

// JobResult is the Tables 1–3 payload of a finished job.
type JobResult struct {
	Circuit  string         `json:"circuit"`
	TPLevels []float64      `json:"tp_levels"`
	Rows     []flow.Metrics `json:"rows"`
	Levels   []LevelStatus  `json:"levels"`
	Table1   string         `json:"table1"`
	Table2   string         `json:"table2"`
	Table3   string         `json:"table3"`
	// Complete is true when every requested level produced a row.
	Complete  bool  `json:"complete"`
	ElapsedMS int64 `json:"elapsed_ms"`
	// CacheHit is personalized per job at response time.
	CacheHit bool `json:"cache_hit"`
}

// JobStatus is the GET /v1/jobs/{id} body (and the submission response).
type JobStatus struct {
	ID       string    `json:"id"`
	Tenant   string    `json:"tenant"`
	State    State     `json:"state"`
	Key      string    `json:"key"`
	Circuit  string    `json:"circuit"`
	TPLevels []float64 `json:"tp_levels"`
	CacheHit bool      `json:"cache_hit,omitempty"`
	// Coalesced reports that this submission attached to an already
	// in-flight identical run instead of starting its own flow.
	Coalesced  bool   `json:"coalesced,omitempty"`
	Error      string `json:"error,omitempty"`
	CreatedAt  string `json:"created_at"`
	StartedAt  string `json:"started_at,omitempty"`
	FinishedAt string `json:"finished_at,omitempty"`
}

// Stats is the live operational counter set (GET /v1/stats and the
// service-level /metrics families).
type Stats struct {
	QueueDepth   int   `json:"queue_depth"`
	Running      int   `json:"running"`
	FlowRuns     int64 `json:"flow_runs"`
	JobsDone     int64 `json:"jobs_done"`
	JobsFailed   int64 `json:"jobs_failed"`
	JobsCanceled int64 `json:"jobs_canceled"`
	Rejected     int64 `json:"rejected_429"`
	CacheEntries int   `json:"cache_entries"`
	CacheBytes   int64 `json:"cache_bytes"`
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	Draining     bool  `json:"draining"`
}

// Options configures a Server.
type Options struct {
	// Workers is the worker-pool size: how many flows run concurrently
	// (default GOMAXPROCS/2, min 1). Each flow additionally parallelizes
	// internally up to FlowWorkers.
	Workers int
	// QueueDepth bounds the number of queued (not yet running) jobs
	// across all tenants; a full queue answers 429 (default 64).
	QueueDepth int
	// CacheBytes is the result cache budget (default 64 MiB).
	CacheBytes int64
	// FlowWorkers is the per-flow parallelism given to jobs that do not
	// set flow.workers themselves (default 1: with a busy pool, flows
	// beat each other; raise it for low-traffic latency).
	FlowWorkers int
	// MaxBodyBytes caps a submission body (default 8 MiB).
	MaxBodyBytes int64
	// RetainJobs bounds how many terminal jobs stay queryable before the
	// oldest are forgotten (default 512).
	RetainJobs int
	// Metrics, when non-nil, receives both the flow telemetry of every
	// job and the service-level families (queue depth, queue wait,
	// cache hits, jobs by terminal state) — mount it on /metrics.
	Metrics *telemetry.PromSink
	// ExtraSinks are attached to every job's tracer (tests).
	ExtraSinks []telemetry.Sink
	// Flush, when non-nil, is called at the end of Shutdown so the
	// daemon can flush file-backed telemetry sinks before exit.
	Flush func() error
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Workers <= 0 {
		out.Workers = max(1, runtime.GOMAXPROCS(0)/2)
	}
	if out.QueueDepth <= 0 {
		out.QueueDepth = 64
	}
	if out.CacheBytes <= 0 {
		out.CacheBytes = 64 << 20
	}
	if out.FlowWorkers <= 0 {
		out.FlowWorkers = 1
	}
	if out.MaxBodyBytes <= 0 {
		out.MaxBodyBytes = 8 << 20
	}
	if out.RetainJobs <= 0 {
		out.RetainJobs = 512
	}
	return out
}

// Server is the TPI-as-a-service daemon: an http.Handler exposing the
// /v1 job API, backed by a bounded fair queue, a shared worker pool,
// and the content-addressed result cache.
type Server struct {
	opt   Options
	mux   *http.ServeMux
	queue *fairQueue
	cache *resultCache

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string        // terminal-job retention FIFO
	inflight map[string]*run // singleflight: key → live cacheable run
	active   map[*run]bool   // every live run (queued or running)

	draining  atomic.Bool
	workersWG sync.WaitGroup
	jobSeq    atomic.Int64
	flowRuns  atomic.Int64
	running   atomic.Int64

	jobsDone     atomic.Int64
	jobsFailed   atomic.Int64
	jobsCanceled atomic.Int64
	rejected     atomic.Int64

	// runFlow executes one run and returns its result; tests replace it
	// with a stub to exercise queueing/fairness/shutdown without paying
	// for real layouts.
	runFlow func(r *run) (*JobResult, error)

	shutdownCh chan struct{}
	shutdownMu sync.Mutex
}

// New starts a Server and its worker pool. Call Shutdown to stop it.
func New(opt Options) *Server {
	s := &Server{
		opt:        opt.withDefaults(),
		jobs:       map[string]*Job{},
		inflight:   map[string]*run{},
		active:     map[*run]bool{},
		shutdownCh: make(chan struct{}),
	}
	s.queue = newFairQueue(s.opt.QueueDepth)
	s.cache = newResultCache(s.opt.CacheBytes)
	s.runFlow = s.sweepRun

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)

	s.workersWG.Add(s.opt.Workers)
	for i := 0; i < s.opt.Workers; i++ {
		go s.worker()
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// FlowRuns reports how many flows have actually been executed — the
// observable proof that cache hits and coalesced submissions cost zero
// additional flows.
func (s *Server) FlowRuns() int64 { return s.flowRuns.Load() }

// Stats snapshots the operational counters.
func (s *Server) Stats() Stats {
	entries, bytes, hits, misses := s.cache.Stats()
	return Stats{
		QueueDepth:   s.queue.Len(),
		Running:      int(s.running.Load()),
		FlowRuns:     s.flowRuns.Load(),
		JobsDone:     s.jobsDone.Load(),
		JobsFailed:   s.jobsFailed.Load(),
		JobsCanceled: s.jobsCanceled.Load(),
		Rejected:     s.rejected.Load(),
		CacheEntries: entries,
		CacheBytes:   bytes,
		CacheHits:    hits,
		CacheMisses:  misses,
		Draining:     s.draining.Load(),
	}
}

// ---------------------------------------------------------------------------
// Submission

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining, not accepting jobs")
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.opt.MaxBodyBytes)
	var req JobRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", s.opt.MaxBodyBytes)
			return
		}
		writeError(w, http.StatusBadRequest, "decoding job request: %v", err)
		return
	}
	comp, err := compileRequest(&req)
	if err != nil {
		var reqErr *requestError
		if errors.As(err, &reqErr) {
			writeError(w, http.StatusBadRequest, "%v", err)
		} else {
			writeError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}

	job := &Job{
		ID:      s.newJobID(),
		Tenant:  comp.tenant,
		Key:     comp.key,
		Levels:  comp.levels,
		Circuit: comp.design.Name,
		created: time.Now(),
	}

	// Content-addressed fast path: an identical finished sweep serves
	// from the cache without touching the queue.
	if comp.cacheable {
		if res, ok := s.cache.Get(comp.key); ok {
			s.mu.Lock()
			job.state = StateDone
			job.cacheHit = true
			job.result = res
			job.started = job.created
			job.finished = time.Now()
			s.rememberJobLocked(job)
			s.mu.Unlock()
			s.jobsDone.Add(1)
			s.emitMetric(map[string]int64{"service.jobs_done": 1, "service.cache_hit_jobs": 1}, nil, nil)
			s.writeStatus(w, http.StatusOK, job)
			return
		}
	}

	s.mu.Lock()
	if comp.cacheable {
		// Singleflight: an identical run already queued or running absorbs
		// this submission — one flow, many results.
		if live, ok := s.inflight[comp.key]; ok {
			job.run = live
			job.coalesce = true
			job.state = s.runStateLocked(live)
			live.jobs = append(live.jobs, job)
			s.rememberJobLocked(job)
			s.mu.Unlock()
			s.emitMetric(map[string]int64{"service.coalesced_jobs": 1}, nil, nil)
			s.writeStatus(w, http.StatusAccepted, job)
			return
		}
		// Re-check the cache under the lock: finishRun publishes to the
		// cache before it retires the inflight entry, so a run that ended
		// between the first cache probe and here is guaranteed visible on
		// one of the two paths — an identical submission never pays for a
		// second flow.
		if res, ok := s.cache.Get(comp.key); ok {
			job.state = StateDone
			job.cacheHit = true
			job.result = res
			job.started = job.created
			job.finished = time.Now()
			s.rememberJobLocked(job)
			s.mu.Unlock()
			s.jobsDone.Add(1)
			s.emitMetric(map[string]int64{"service.jobs_done": 1, "service.cache_hit_jobs": 1}, nil, nil)
			s.writeStatus(w, http.StatusOK, job)
			return
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	rn := &run{
		key:       comp.key,
		cacheable: comp.cacheable,
		tenant:    comp.tenant,
		cfg:       comp.cfg,
		levels:    comp.levels,
		workers:   comp.workers,
		budgetMS:  req.Flow.ATPGBudgetMS,
		events:    newBroadcaster(),
		ctx:       ctx,
		cancel:    cancel,
		enqueued:  time.Now(),
		jobs:      []*Job{job},
	}
	rn.designN = comp.design
	job.run = rn
	job.state = StateQueued

	if err := s.queue.Push(rn); err != nil {
		s.mu.Unlock()
		cancel()
		if errors.Is(err, ErrQueueFull) {
			s.rejected.Add(1)
			s.emitMetric(map[string]int64{"service.rejected_429": 1}, nil, nil)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "job queue full (%d queued), retry later", s.opt.QueueDepth)
		} else {
			writeError(w, http.StatusServiceUnavailable, "server is draining, not accepting jobs")
		}
		return
	}
	if comp.cacheable {
		s.inflight[comp.key] = rn
	}
	s.active[rn] = true
	s.rememberJobLocked(job)
	depth := s.queue.Len()
	s.mu.Unlock()

	s.emitMetric(map[string]int64{"service.jobs_submitted": 1},
		map[string]float64{"service.queue_depth": float64(depth)}, nil)
	s.writeStatus(w, http.StatusAccepted, job)
}

func (s *Server) newJobID() string {
	var b [6]byte
	rand.Read(b[:])
	return fmt.Sprintf("j%06d-%s", s.jobSeq.Add(1), hex.EncodeToString(b[:]))
}

// rememberJobLocked indexes the job and enforces terminal retention.
func (s *Server) rememberJobLocked(job *Job) {
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	// Evict the oldest terminal jobs beyond the retention window; live
	// jobs are always kept.
	for len(s.order) > s.opt.RetainJobs {
		victimID := s.order[0]
		victim := s.jobs[victimID]
		if victim != nil && !victim.state.terminal() {
			break // oldest job still live; retention resumes once it ends
		}
		s.order = s.order[1:]
		delete(s.jobs, victimID)
	}
}

func (s *Server) runStateLocked(r *run) State {
	if r.startedRunning {
		return StateRunning
	}
	return StateQueued
}

// ---------------------------------------------------------------------------
// Worker pool

func (s *Server) worker() {
	defer s.workersWG.Done()
	for {
		rn, ok := s.queue.Pop()
		if !ok {
			return
		}
		s.execute(rn)
	}
}

// execute runs one dequeued run to its terminal state.
func (s *Server) execute(rn *run) {
	now := time.Now()
	s.mu.Lock()
	if len(rn.jobs) == 0 {
		// Every submitter cancelled while the run was queued; nothing to
		// do. finalizeRunLocked already ran from the cancel path.
		s.mu.Unlock()
		return
	}
	rn.startedRunning = true
	for _, j := range rn.jobs {
		j.state = StateRunning
		j.started = now
	}
	s.mu.Unlock()

	wait := now.Sub(rn.enqueued)
	s.running.Add(1)
	s.flowRuns.Add(1)
	s.emitMetric(
		map[string]int64{"service.flow_runs": 1},
		map[string]float64{
			"service.queue_depth": float64(s.queue.Len()),
			"service.running":     float64(s.running.Load()),
		},
		map[string]telemetry.HistData{"service.queue_wait_ns": telemetry.Observation(int64(wait))},
	)

	res, err := s.runFlow(rn)
	s.running.Add(-1)
	s.finishRun(rn, res, err)
}

// sweepRun is the production runFlow: the supervised partial sweep with
// the run's broadcaster (SSE) and the server's /metrics sink attached.
func (s *Server) sweepRun(rn *run) (*JobResult, error) {
	sinks := []telemetry.Sink{rn.events}
	if s.opt.Metrics != nil {
		sinks = append(sinks, s.opt.Metrics)
	}
	sinks = append(sinks, s.opt.ExtraSinks...)

	cfg := rn.cfg
	cfg.Telemetry = telemetry.New(sinks...)
	cfg.Workers = rn.workers
	if cfg.Workers == 0 {
		cfg.Workers = s.opt.FlowWorkers
	}
	cfg.Deadline = atpgDeadline(rn.budgetMS, time.Now())

	start := time.Now()
	levels, err := flow.SweepPartial(rn.ctx, rn.designN, cfg, rn.levels)
	if err != nil {
		return nil, err
	}
	if cerr := rn.ctx.Err(); cerr != nil {
		return nil, cerr
	}

	res := &JobResult{
		Circuit:   rn.designN.Name,
		TPLevels:  rn.levels,
		ElapsedMS: time.Since(start).Milliseconds(),
		Complete:  true,
	}
	for _, lr := range levels {
		ls := LevelStatus{TPPercent: lr.TPPercent}
		if lr.Err != nil {
			ls.Error = lr.Err.Error()
			res.Complete = false
		} else {
			ls.OK = true
			ls.Truncated = lr.Metrics.Truncated
		}
		res.Levels = append(res.Levels, ls)
	}
	res.Rows = flow.CompletedMetrics(levels)
	if len(res.Rows) > 0 {
		res.Table1 = flow.FormatTable1(res.Rows)
		res.Table2 = flow.FormatTable2(res.Rows)
		res.Table3 = flow.FormatTable3(res.Rows)
	}
	return res, nil
}

// finishRun delivers a finished run to every attached job, feeds the
// cache, and tears the run down.
func (s *Server) finishRun(rn *run, res *JobResult, err error) {
	canceled := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || (err == nil && rn.ctx.Err() != nil)

	// Cache only complete, successful, deterministic results: a partial
	// sweep (one level panicked or timed out) must be retried, not
	// replayed forever from the cache.
	if err == nil && !canceled && rn.cacheable && res != nil && res.Complete {
		s.cache.Put(rn.key, res)
	}

	now := time.Now()
	s.mu.Lock()
	rn.done = true
	delete(s.inflight, rn.key)
	delete(s.active, rn)
	jobs := rn.jobs
	rn.jobs = nil
	var done, failed, cancl int64
	for _, j := range jobs {
		j.finished = now
		switch {
		case canceled:
			j.state = StateCanceled
			j.errMsg = "run canceled"
		case err != nil:
			j.state = StateFailed
			j.errMsg = err.Error()
		default:
			j.state = StateDone
			j.result = res
		}
		switch j.state {
		case StateDone:
			done++
		case StateFailed:
			failed++
		case StateCanceled:
			cancl++
		}
	}
	s.mu.Unlock()

	s.jobsDone.Add(done)
	s.jobsFailed.Add(failed)
	s.jobsCanceled.Add(cancl)
	rn.cancel() // release the context's resources
	rn.events.Close()
	s.emitMetric(map[string]int64{
		"service.jobs_done":     done,
		"service.jobs_failed":   failed,
		"service.jobs_canceled": cancl,
	}, map[string]float64{
		"service.queue_depth": float64(s.queue.Len()),
		"service.running":     float64(s.running.Load()),
	}, nil)
}

// ---------------------------------------------------------------------------
// Status / result / cancel

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *Job {
	id := r.PathValue("id")
	s.mu.Lock()
	job := s.jobs[id]
	s.mu.Unlock()
	if job == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return nil
	}
	return job
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if job := s.lookup(w, r); job != nil {
		s.writeStatus(w, http.StatusOK, job)
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(w, r)
	if job == nil {
		return
	}
	s.mu.Lock()
	state, errMsg, cacheHit, res := job.state, job.errMsg, job.cacheHit, job.result
	s.mu.Unlock()
	switch state {
	case StateDone:
		// Personalize the shared (possibly cached) result without
		// mutating it.
		out := *res
		out.CacheHit = cacheHit
		writeJSON(w, http.StatusOK, &out)
	case StateFailed:
		writeError(w, http.StatusInternalServerError, "job failed: %s", errMsg)
	case StateCanceled:
		writeError(w, http.StatusGone, "job was canceled")
	default:
		writeError(w, http.StatusConflict, "job is %s; result not ready", state)
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(w, r)
	if job == nil {
		return
	}
	s.mu.Lock()
	if job.state.terminal() {
		s.mu.Unlock()
		s.writeStatus(w, http.StatusOK, job) // idempotent
		return
	}
	job.state = StateCanceled
	job.errMsg = "canceled by client"
	job.finished = time.Now()
	rn := job.run
	var lastWaiter bool
	if rn != nil {
		for i, j := range rn.jobs {
			if j == job {
				rn.jobs = append(rn.jobs[:i:i], rn.jobs[i+1:]...)
				break
			}
		}
		lastWaiter = len(rn.jobs) == 0 && !rn.done
		if lastWaiter {
			rn.done = true
			delete(s.inflight, rn.key)
			delete(s.active, rn)
		}
	}
	s.mu.Unlock()

	s.jobsCanceled.Add(1)
	s.emitMetric(map[string]int64{"service.jobs_canceled": 1}, nil, nil)
	if lastWaiter {
		// Nobody else wants this run: take it off the queue if still
		// there, abort the flow if running, close the event stream.
		s.queue.Remove(rn)
		rn.cancel()
		rn.events.Close()
	}
	s.writeStatus(w, http.StatusOK, job)
}

// ---------------------------------------------------------------------------
// SSE events

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(w, r)
	if job == nil {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "response writer does not support streaming")
		return
	}
	s.mu.Lock()
	rn := job.run
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	if rn != nil {
		// Stream the retained trace from the beginning, then follow live
		// until the run closes or the client goes away.
		stop := context.AfterFunc(r.Context(), rn.events.wake)
		defer stop()
		i := 0
		for {
			tail, ok := rn.events.next(r.Context(), i)
			if !ok {
				break
			}
			for _, e := range tail {
				line, err := json.Marshal(e)
				if err != nil {
					continue
				}
				if _, err := fmt.Fprintf(w, "data: %s\n\n", line); err != nil {
					return // client disconnected
				}
			}
			i += len(tail)
			flusher.Flush()
		}
	}

	// Final frame: the job's terminal status (or current state if the
	// client disconnected first — it is about to stop reading anyway).
	s.mu.Lock()
	status := s.statusLocked(job)
	s.mu.Unlock()
	if line, err := json.Marshal(status); err == nil {
		fmt.Fprintf(w, "event: done\ndata: %s\n\n", line)
		flusher.Flush()
	}
}

// ---------------------------------------------------------------------------
// Stats / health

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// ---------------------------------------------------------------------------
// Shutdown

// Shutdown drains the server: new submissions are rejected with 503,
// still-queued jobs are canceled immediately, and running jobs get
// until ctx's deadline to finish before their contexts are canceled.
// It returns ctx.Err() when the drain deadline cut running jobs short,
// nil when everything drained cleanly. Safe to call once; the worker
// pool is gone afterwards.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutdownMu.Lock()
	defer s.shutdownMu.Unlock()
	select {
	case <-s.shutdownCh:
		return nil // already shut down
	default:
	}
	s.draining.Store(true)

	// Cancel everything still queued: drain means "finish what is
	// running", not "work the whole backlog".
	for _, rn := range s.queue.Close() {
		s.finishRun(rn, nil, context.Canceled)
	}

	workersDone := make(chan struct{})
	go func() {
		s.workersWG.Wait()
		close(workersDone)
	}()

	var err error
	select {
	case <-workersDone:
	case <-ctx.Done():
		// Drain deadline: abort the in-flight flows. Cancellation lands
		// within one work unit, so the workers exit promptly.
		s.mu.Lock()
		for rn := range s.active {
			rn.cancel()
		}
		s.mu.Unlock()
		<-workersDone
		err = ctx.Err()
	}

	close(s.shutdownCh)
	if s.opt.Flush != nil {
		if ferr := s.opt.Flush(); ferr != nil && err == nil {
			err = ferr
		}
	}
	return err
}

// ---------------------------------------------------------------------------
// Telemetry + JSON helpers

// emitMetric folds service-level families into the /metrics sink as one
// synthetic span_end under stage="service" — the same pipe the flow's
// own telemetry rides, so one scrape shows engine and service health
// side by side.
func (s *Server) emitMetric(counters map[string]int64, gauges map[string]float64, hists map[string]telemetry.HistData) {
	if s.opt.Metrics == nil {
		return
	}
	s.opt.Metrics.Emit(telemetry.Event{
		Type: telemetry.EventSpanEnd, Stage: "service", Time: time.Now(),
		Counters: counters, Gauges: gauges, Hists: hists,
	})
}

func (s *Server) statusLocked(job *Job) JobStatus {
	st := JobStatus{
		ID:        job.ID,
		Tenant:    job.Tenant,
		State:     job.state,
		Key:       job.Key,
		Circuit:   job.Circuit,
		TPLevels:  job.Levels,
		CacheHit:  job.cacheHit,
		Coalesced: job.coalesce,
		Error:     job.errMsg,
		CreatedAt: job.created.UTC().Format(time.RFC3339Nano),
	}
	if !job.started.IsZero() {
		st.StartedAt = job.started.UTC().Format(time.RFC3339Nano)
	}
	if !job.finished.IsZero() {
		st.FinishedAt = job.finished.UTC().Format(time.RFC3339Nano)
	}
	return st
}

func (s *Server) writeStatus(w http.ResponseWriter, code int, job *Job) {
	s.mu.Lock()
	st := s.statusLocked(job)
	s.mu.Unlock()
	writeJSON(w, code, st)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
