package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	mrand "math/rand"
	"net/http"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tpilayout/internal/flow"
	"tpilayout/internal/journal"
	"tpilayout/internal/netlist"
	"tpilayout/internal/telemetry"
	"tpilayout/internal/trachive"
)

// State is a job's lifecycle position.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// run is one flow execution: the unit the queue holds and a worker
// executes. Several jobs may be attached to one run (singleflight:
// concurrent identical submissions coalesce), and a run outlives a
// cancelled job as long as any other job still wants its result.
type run struct {
	id        string // run_id: the correlation identity of this flow run
	key       string
	baseKey   string // level-independent content address (checkpoint keys)
	circHash  string // circuit-only hash (run-history baseline key)
	cfgHash   string // config-only hash (run-history baseline key)
	cacheable bool
	tenant    string // queue bucket: the first submitter's tenant
	primary   string // job_id of the first submitter (correlation attrs)
	designN   *netlist.Netlist
	cfg       flow.Config
	levels    []float64
	workers   int
	budgetMS  int64
	events    *broadcaster
	flight    *telemetry.FlightRecorder // per-run black box (nil if disabled)
	log       *telemetry.Logger         // job_id/run_id/tenant pre-bound
	ctx       context.Context
	cancel    context.CancelFunc

	enqueued time.Time
	started  time.Time // when the flow actually began executing

	profile []byte // per-run CPU profile (nil unless -profile-runs captured one)

	retryBudget   atomic.Int64 // remaining per-job retry tokens
	retries       atomic.Int64 // retries spent so far
	resumedLevels atomic.Int64 // levels answered from checkpoints

	// All below guarded by Server.mu. An empty jobs list means nobody
	// wants the result anymore and the run may be dropped/cancelled.
	jobs           []*Job
	startedRunning bool
	done           bool
}

// attrs is the run's correlation identity, stamped onto every event the
// run emits. job_id is the first submitter's: coalesced jobs share the
// run's stream and find their own ids via GET /v1/jobs/{id} (run_id).
func (r *run) attrs() map[string]string {
	return map[string]string{"run_id": r.id, "job_id": r.primary, "tenant": r.tenant}
}

// Job is one client-visible submission.
type Job struct {
	ID      string
	Tenant  string
	Key     string
	Levels  []float64
	Circuit string

	// All below guarded by Server.mu.
	state     State
	runID     string // id of the run that executed (or will execute) the job
	cacheHit  bool
	coalesce  bool // attached to an already-inflight run
	run       *run // nil once terminal via cache hit
	errMsg    string
	result    *JobResult
	created   time.Time
	started   time.Time
	finished  time.Time
	journaled bool         // an accepted record exists for this job
	cacheable bool         // result eligible for cache + checkpoints
	accepted  *recAccepted // replayable request (journaled jobs only)
}

// LevelStatus is the per-level outcome inside a JobResult.
type LevelStatus struct {
	TPPercent float64 `json:"tp_percent"`
	OK        bool    `json:"ok"`
	Truncated bool    `json:"truncated,omitempty"`
	Error     string  `json:"error,omitempty"`
}

// JobResult is the Tables 1–3 payload of a finished job.
type JobResult struct {
	Circuit  string         `json:"circuit"`
	TPLevels []float64      `json:"tp_levels"`
	Rows     []flow.Metrics `json:"rows"`
	Levels   []LevelStatus  `json:"levels"`
	Table1   string         `json:"table1"`
	Table2   string         `json:"table2"`
	Table3   string         `json:"table3"`
	// Complete is true when every requested level produced a row.
	Complete  bool  `json:"complete"`
	ElapsedMS int64 `json:"elapsed_ms"`
	// CacheHit is personalized per job at response time.
	CacheHit bool `json:"cache_hit"`
}

// JobStatus is the GET /v1/jobs/{id} body (and the submission response).
type JobStatus struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	// RunID identifies the flow run executing the job: the correlation
	// key shared by spans, SSE frames, log lines, journal records, and
	// flight-recorder dumps. Empty for jobs answered from the cache
	// (no flow ran).
	RunID    string    `json:"run_id,omitempty"`
	State    State     `json:"state"`
	Key      string    `json:"key"`
	Circuit  string    `json:"circuit"`
	TPLevels []float64 `json:"tp_levels"`
	CacheHit bool      `json:"cache_hit,omitempty"`
	// Coalesced reports that this submission attached to an already
	// in-flight identical run instead of starting its own flow.
	Coalesced bool `json:"coalesced,omitempty"`
	// Retries counts backoff-retried level attempts of this job's run;
	// ResumedLevels counts levels answered from durable checkpoints
	// instead of being re-executed.
	Retries       int64  `json:"retries,omitempty"`
	ResumedLevels int64  `json:"resumed_levels,omitempty"`
	Error         string `json:"error,omitempty"`
	CreatedAt     string `json:"created_at"`
	StartedAt     string `json:"started_at,omitempty"`
	FinishedAt    string `json:"finished_at,omitempty"`
}

// Stats is the live operational counter set (GET /v1/stats and the
// service-level /metrics families).
type Stats struct {
	QueueDepth   int   `json:"queue_depth"`
	Running      int   `json:"running"`
	FlowRuns     int64 `json:"flow_runs"`
	JobsDone     int64 `json:"jobs_done"`
	JobsFailed   int64 `json:"jobs_failed"`
	JobsCanceled int64 `json:"jobs_canceled"`
	Rejected     int64 `json:"rejected_429"`
	CacheEntries int   `json:"cache_entries"`
	CacheBytes   int64 `json:"cache_bytes"`
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	Draining     bool  `json:"draining"`
	// Durability counters (zero for in-memory servers).
	Ready         bool  `json:"ready"`
	Retries       int64 `json:"retries"`
	LevelsRun     int64 `json:"levels_run"`
	LevelsResumed int64 `json:"levels_resumed"`
	ReplayedJobs  int64 `json:"replayed_jobs"`
	JournalErrors int64 `json:"journal_errors"`
	// Run-history archive counters (zero when history is disabled).
	RunsArchived  int64 `json:"runs_archived"`
	Regressions   int64 `json:"regressions"`
	HistoryRuns   int   `json:"history_runs"`
	HistoryBytes  int64 `json:"history_bytes"`
	ArchiveErrors int64 `json:"archive_errors"`
}

// Options configures a Server.
type Options struct {
	// Workers is the worker-pool size: how many flows run concurrently
	// (default GOMAXPROCS/2, min 1). Each flow additionally parallelizes
	// internally up to FlowWorkers.
	Workers int
	// QueueDepth bounds the number of queued (not yet running) jobs
	// across all tenants; a full queue answers 429 (default 64).
	QueueDepth int
	// CacheBytes is the result cache budget (default 64 MiB).
	CacheBytes int64
	// FlowWorkers is the per-flow parallelism given to jobs that do not
	// set flow.workers themselves (default 1: with a busy pool, flows
	// beat each other; raise it for low-traffic latency).
	FlowWorkers int
	// MaxBodyBytes caps a submission body (default 8 MiB).
	MaxBodyBytes int64
	// RetainJobs bounds how many terminal jobs stay queryable before the
	// oldest are forgotten (default 512).
	RetainJobs int
	// Metrics, when non-nil, receives both the flow telemetry of every
	// job and the service-level families (queue depth, queue wait,
	// cache hits, jobs by terminal state) — mount it on /metrics.
	Metrics *telemetry.PromSink
	// Log, when non-nil, is the service's structured logger: every
	// lifecycle transition (accept, coalesce, cache hit, run start,
	// retry, checkpoint resume, finish, cancel, drain, replay) logs
	// through it with job_id/run_id/tenant bound. Nil disables logging
	// at zero cost.
	Log *telemetry.Logger
	// Flight, when non-nil, is the service-wide flight recorder: it is
	// attached as a sink to every run's tracer and receives every
	// service metric event and (if the Logger forwards to it) log line.
	// GET /debug/flight dumps it as NDJSON. Each run additionally
	// retains its own last FlightRunEvents events, dumped via
	// /debug/flight?job=<id>.
	Flight *telemetry.FlightRecorder
	// FlightRunEvents sizes the per-run flight ring (default 256); only
	// meaningful when Flight is set.
	FlightRunEvents int
	// ExtraSinks are attached to every job's tracer (tests).
	ExtraSinks []telemetry.Sink
	// Flush, when non-nil, is called at the end of Shutdown so the
	// daemon can flush file-backed telemetry sinks before exit.
	Flush func() error
	// DataDir, when set, makes the server durable: job-state transitions
	// are journaled there (fsync'd, CRC-framed, segment-rotated) and a
	// restart on the same directory replays retired results, level
	// checkpoints, and unfinished jobs. Empty = purely in-memory.
	DataDir string
	// DefaultSweepMode is applied to submissions that leave
	// flow.sweep_mode empty ("full" when empty itself). It is resolved at
	// admission and journaled with the job, so a crash-restarted job
	// resumes in the mode it was admitted with even if the daemon
	// restarts with a different default. Invalid values fail Open.
	DefaultSweepMode string
	// Retry governs per-level retries of transient failures (panics,
	// deadlines); zero fields take the RetryPolicy defaults.
	Retry RetryPolicy
	// JournalCompactBytes triggers snapshot compaction once the live
	// journal segments exceed it (default 4 MiB).
	JournalCompactBytes int64
	// JournalSegmentBytes is the journal's segment-rotation threshold
	// (default: the journal package's 4 MiB).
	JournalSegmentBytes int64
	// HistoryRuns bounds how many retired runs the run-history archive
	// retains (default 512; negative disables the archive entirely).
	// The archive only exists for durable servers (DataDir set): it
	// lives in DataDir/runs.
	HistoryRuns int
	// HistoryBudgetBytes bounds the archive's on-disk trace+profile
	// bytes (default 512 MiB; negative means unbounded).
	HistoryBudgetBytes int64
	// ProfileRuns captures a per-run CPU profile (with run_id/stage/
	// tp_level pprof labels) for each flow run and archives it beside
	// the trace. Capture is process-global, so concurrent runs are
	// serialized: a run that arrives while another is being profiled
	// simply goes unprofiled.
	ProfileRuns bool
	// MaxRegressPct is the regression sentinel's share-regression gate
	// (default 25): a retired run whose stage grew beyond this many
	// percent versus its archived baseline is flagged.
	MaxRegressPct float64
	// HardRegressPct is the sentinel's absolute-time backstop under
	// normalization (default 150; negative disables).
	HardRegressPct float64
	// SentinelMinDur is the sentinel's noise floor: stages whose
	// baseline duration is below it never gate (default 100ms;
	// negative disables the floor).
	SentinelMinDur time.Duration

	// Test hooks (same-package tests only).
	journalNoSync bool                   // skip per-append fsync
	journalHook   func(journal.Op) error // fault injection into the journal
	stageHook     func(string, float64)  // fault injection into flow stages
	replayGate    chan struct{}          // replay blocks until closed (readyz tests)
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Workers <= 0 {
		out.Workers = max(1, runtime.GOMAXPROCS(0)/2)
	}
	if out.QueueDepth <= 0 {
		out.QueueDepth = 64
	}
	if out.CacheBytes <= 0 {
		out.CacheBytes = 64 << 20
	}
	if out.FlowWorkers <= 0 {
		out.FlowWorkers = 1
	}
	if out.MaxBodyBytes <= 0 {
		out.MaxBodyBytes = 8 << 20
	}
	if out.RetainJobs <= 0 {
		out.RetainJobs = 512
	}
	if out.FlightRunEvents <= 0 {
		out.FlightRunEvents = 256
	}
	if out.JournalCompactBytes <= 0 {
		out.JournalCompactBytes = 4 << 20
	}
	if out.HistoryRuns == 0 {
		out.HistoryRuns = 512
	}
	if out.HistoryBudgetBytes == 0 {
		out.HistoryBudgetBytes = 512 << 20
	}
	if out.MaxRegressPct <= 0 {
		out.MaxRegressPct = 25
	}
	if out.HardRegressPct == 0 {
		out.HardRegressPct = 150
	} else if out.HardRegressPct < 0 {
		out.HardRegressPct = 0
	}
	if out.SentinelMinDur == 0 {
		out.SentinelMinDur = 100 * time.Millisecond
	} else if out.SentinelMinDur < 0 {
		out.SentinelMinDur = 0
	}
	out.Retry = out.Retry.withDefaults()
	return out
}

// Server is the TPI-as-a-service daemon: an http.Handler exposing the
// /v1 job API, backed by a bounded fair queue, a shared worker pool,
// and the content-addressed result cache.
type Server struct {
	opt   Options
	mux   *http.ServeMux
	queue *fairQueue
	cache *resultCache

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string        // terminal-job retention FIFO
	inflight map[string]*run // singleflight: key → live cacheable run
	active   map[*run]bool   // every live run (queued or running)
	claimed  map[string]bool // client-supplied X-Request-IDs mid-admission

	draining  atomic.Bool
	workersWG sync.WaitGroup
	jobSeq    atomic.Int64
	runSeq    atomic.Int64
	flowRuns  atomic.Int64
	running   atomic.Int64

	jobsDone     atomic.Int64
	jobsFailed   atomic.Int64
	jobsCanceled atomic.Int64
	rejected     atomic.Int64

	// Durability state. jrnl is nil for in-memory servers; dead makes
	// every journal write a no-op (Kill — crash simulation); ready gates
	// submissions and /readyz until journal replay finishes.
	jrnl          *journal.Journal
	checkpoints   *checkpointStore // guarded by mu
	dead          atomic.Bool
	ready         atomic.Bool
	compacting    atomic.Bool
	replayWG      sync.WaitGroup
	retries       atomic.Int64
	levelsRun     atomic.Int64
	levelsResumed atomic.Int64
	replayedJobs  atomic.Int64
	journalErrors atomic.Int64

	// Run-history archive (nil when disabled). profileBusy serializes
	// per-run CPU profiling: pprof capture is process-global.
	archive       *trachive.Archive
	profileBusy   atomic.Bool
	runsArchived  atomic.Int64
	regressions   atomic.Int64
	archiveErrors atomic.Int64

	// runFlow executes one run and returns its result; tests replace it
	// with a stub to exercise queueing/fairness/shutdown without paying
	// for real layouts. runLevel executes ONE level inside the real
	// checkpoint/retry driver; chaos tests replace it to inject level
	// failures while the driver itself stays under test. runLevelChained
	// is its incremental-mode twin, threading the previous level's
	// artifacts into the next link of the chain.
	runFlow         func(r *run) (*JobResult, error)
	runLevel        func(rn *run, base *netlist.Netlist, cfg flow.Config, pct float64) flow.LevelResult
	runLevelChained func(rn *run, base *netlist.Netlist, cfg flow.Config, pct float64, prev *flow.LevelArtifacts) (flow.LevelResult, *flow.LevelArtifacts)

	shutdownCh chan struct{}
	shutdownMu sync.Mutex
}

// New starts an in-memory Server and its worker pool. Call Shutdown to
// stop it. New panics on errors, which only the durable (DataDir) path
// can produce — durable callers should use Open.
func New(opt Options) *Server {
	s, err := Open(opt)
	if err != nil {
		panic(err)
	}
	return s
}

// Open starts a Server, replaying the DataDir journal when one is
// configured: retired jobs become queryable again, complete results
// repopulate the cache, level checkpoints repopulate the resume store,
// and unfinished jobs are re-enqueued. Replay runs asynchronously —
// the server answers /healthz immediately but holds /readyz (and
// rejects submissions with 503) until replay completes.
func Open(opt Options) (*Server, error) {
	s := &Server{
		opt:        opt.withDefaults(),
		jobs:       map[string]*Job{},
		inflight:   map[string]*run{},
		active:     map[*run]bool{},
		claimed:    map[string]bool{},
		shutdownCh: make(chan struct{}),
	}
	if _, err := flow.ParseSweepMode(s.opt.DefaultSweepMode); err != nil {
		return nil, fmt.Errorf("service: default sweep mode: %w", err)
	}
	s.queue = newFairQueue(s.opt.QueueDepth)
	s.cache = newResultCache(s.opt.CacheBytes)
	s.checkpoints = newCheckpointStore(0)
	s.runFlow = s.sweepRun
	s.runLevel = func(rn *run, base *netlist.Netlist, cfg flow.Config, pct float64) flow.LevelResult {
		return flow.RunLevel(rn.ctx, base, cfg, pct)
	}
	s.runLevelChained = func(rn *run, base *netlist.Netlist, cfg flow.Config, pct float64, prev *flow.LevelArtifacts) (flow.LevelResult, *flow.LevelArtifacts) {
		return flow.RunLevelChained(rn.ctx, base, cfg, pct, prev)
	}

	if s.opt.DataDir != "" {
		j, recs, err := journal.Open(s.opt.DataDir, journal.Options{
			SegmentBytes: s.opt.JournalSegmentBytes,
			NoSync:       s.opt.journalNoSync,
			Hook:         s.opt.journalHook,
		})
		if err != nil {
			return nil, err
		}
		s.jrnl = j
		if s.opt.HistoryRuns >= 0 {
			arch, err := trachive.Open(filepath.Join(s.opt.DataDir, "runs"), trachive.Options{
				BudgetBytes: s.opt.HistoryBudgetBytes,
				MaxRuns:     s.opt.HistoryRuns,
				NoSync:      s.opt.journalNoSync,
			})
			if err != nil {
				j.Close()
				return nil, fmt.Errorf("service: opening run archive: %w", err)
			}
			s.archive = arch
		}
		s.replayWG.Add(1)
		go s.replay(foldRecords(recs))
	} else {
		s.ready.Store(true)
	}

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/runs", s.handleRuns)
	s.mux.HandleFunc("GET /v1/runs/stats", s.handleRunsStats)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleRunMeta)
	s.mux.HandleFunc("GET /v1/runs/{id}/trace", s.handleRunTrace)
	s.mux.HandleFunc("GET /v1/runs/{id}/diff", s.handleRunDiff)
	s.mux.HandleFunc("GET /v1/runs/{id}/profile", s.handleRunProfile)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /debug/flight", s.handleFlight)

	s.workersWG.Add(s.opt.Workers)
	for i := 0; i < s.opt.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// FlowRuns reports how many flows have actually been executed — the
// observable proof that cache hits and coalesced submissions cost zero
// additional flows.
func (s *Server) FlowRuns() int64 { return s.flowRuns.Load() }

// Stats snapshots the operational counters.
func (s *Server) Stats() Stats {
	entries, bytes, hits, misses := s.cache.Stats()
	var archStats trachive.Stats
	if s.archive != nil {
		archStats = s.archive.Stats()
	}
	return Stats{
		QueueDepth:   s.queue.Len(),
		Running:      int(s.running.Load()),
		FlowRuns:     s.flowRuns.Load(),
		JobsDone:     s.jobsDone.Load(),
		JobsFailed:   s.jobsFailed.Load(),
		JobsCanceled: s.jobsCanceled.Load(),
		Rejected:     s.rejected.Load(),
		CacheEntries: entries,
		CacheBytes:   bytes,
		CacheHits:    hits,
		CacheMisses:  misses,
		Draining:     s.draining.Load(),

		Ready:         s.ready.Load(),
		Retries:       s.retries.Load(),
		LevelsRun:     s.levelsRun.Load(),
		LevelsResumed: s.levelsResumed.Load(),
		ReplayedJobs:  s.replayedJobs.Load(),
		JournalErrors: s.journalErrors.Load(),

		RunsArchived:  s.runsArchived.Load(),
		Regressions:   s.regressions.Load(),
		HistoryRuns:   archStats.Runs,
		HistoryBytes:  archStats.Bytes,
		ArchiveErrors: s.archiveErrors.Load(),
	}
}

// ---------------------------------------------------------------------------
// Submission

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining, not accepting jobs")
		return
	}
	if !s.ready.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is replaying its journal, not ready yet")
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.opt.MaxBodyBytes)
	var req JobRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", s.opt.MaxBodyBytes)
			return
		}
		writeError(w, http.StatusBadRequest, "decoding job request: %v", err)
		return
	}
	// Resolve the daemon's default sweep mode at admission, so the
	// journaled flow config pins the mode the job actually ran in.
	if req.Flow.SweepMode == "" {
		req.Flow.SweepMode = s.opt.DefaultSweepMode
	}
	comp, err := compileRequest(&req)
	if err != nil {
		var reqErr *requestError
		if errors.As(err, &reqErr) {
			writeError(w, http.StatusBadRequest, "%v", err)
		} else {
			writeError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}

	job := &Job{
		ID:      s.claimJobID(r.Header.Get("X-Request-ID")),
		Tenant:  comp.tenant,
		Key:     comp.key,
		Levels:  comp.levels,
		Circuit: comp.design.Name,
		created: time.Now(),
	}
	defer s.releaseJobID(job.ID)
	// Echo the job's identity so clients correlate responses with their
	// own request IDs (the header matches a valid supplied X-Request-ID,
	// otherwise carries the minted id).
	w.Header().Set("X-Request-ID", job.ID)

	// Content-addressed fast path: an identical finished sweep serves
	// from the cache without touching the queue.
	if comp.cacheable {
		if res, ok := s.cache.Get(comp.key); ok {
			s.mu.Lock()
			job.state = StateDone
			job.cacheHit = true
			job.result = res
			job.started = job.created
			job.finished = time.Now()
			s.rememberJobLocked(job)
			s.mu.Unlock()
			s.jobsDone.Add(1)
			s.emitMetric(map[string]int64{"service.jobs_done": 1, "service.cache_hit_jobs": 1}, nil, nil)
			s.emitTenantMetric(job.Tenant,
				map[string]int64{"service.tenant_jobs_done": 1},
				map[string]telemetry.HistData{"service.tenant_e2e_ns": telemetry.Observation(int64(job.finished.Sub(job.created)))})
			s.opt.Log.Info("job answered from cache",
				"job_id", job.ID, "tenant", job.Tenant, "circuit", job.Circuit, "key", job.Key)
			s.writeStatus(w, http.StatusOK, job)
			return
		}
	}

	// Fast-fail an obviously full queue before paying a journal fsync for
	// a job that will bounce with 429 anyway (the race with Push below is
	// compensated by a canceled record).
	if s.jrnl != nil {
		s.mu.Lock()
		_, coalescible := s.inflight[comp.key]
		full := s.queue.Len() >= s.opt.QueueDepth
		s.mu.Unlock()
		if full && !(comp.cacheable && coalescible) {
			s.reject429(w)
			return
		}
	}

	// Mint the run identity before journaling so the accepted record
	// carries it; a coalesced submission is retired under the absorbing
	// run's id instead (see durable.go).
	runID := s.newRunID()

	// Journal acceptance BEFORE the job becomes reachable: an accepted
	// record always precedes any terminal record for the same job, so
	// replay can never see a retirement of an unknown job.
	if s.jrnl != nil {
		rec := &recAccepted{
			JobID:    job.ID,
			RunID:    runID,
			Tenant:   comp.tenant,
			Name:     comp.design.Name,
			Bench:    comp.bench,
			TPLevels: comp.levels,
			Flow:     req.Flow,
			Created:  job.created,
		}
		// Pin the resolved preset: a spec-submitted circuit replays from
		// its canonical bench text, which must not fall back to the
		// default preset.
		rec.Flow.Experiment = comp.preset
		s.appendRecord(journal.TypeAccepted, rec)
		job.journaled = true
		job.accepted = rec
	}
	job.cacheable = comp.cacheable

	s.mu.Lock()
	if comp.cacheable {
		// Singleflight: an identical run already queued or running absorbs
		// this submission — one flow, many results.
		if live, ok := s.inflight[comp.key]; ok {
			job.run = live
			job.runID = live.id
			job.coalesce = true
			job.state = s.runStateLocked(live)
			live.jobs = append(live.jobs, job)
			s.rememberJobLocked(job)
			s.mu.Unlock()
			s.emitMetric(map[string]int64{"service.coalesced_jobs": 1}, nil, nil)
			s.opt.Log.Info("job coalesced onto in-flight run",
				"job_id", job.ID, "run_id", job.runID, "tenant", job.Tenant, "circuit", job.Circuit)
			s.writeStatus(w, http.StatusAccepted, job)
			return
		}
		// Re-check the cache under the lock: finishRun publishes to the
		// cache before it retires the inflight entry, so a run that ended
		// between the first cache probe and here is guaranteed visible on
		// one of the two paths — an identical submission never pays for a
		// second flow.
		if res, ok := s.cache.Get(comp.key); ok {
			job.state = StateDone
			job.cacheHit = true
			job.result = res
			job.started = job.created
			job.finished = time.Now()
			journaled := job.journaled
			s.rememberJobLocked(job)
			s.mu.Unlock()
			s.jobsDone.Add(1)
			if journaled {
				// The accepted record exists; balance it so replay does
				// not resurrect an already-answered job.
				s.appendRecord(journal.TypeRetired, &recRetired{
					JobIDs: []string{job.ID}, State: StateDone, CacheKey: comp.key,
					Cacheable: true, Result: res, Finished: time.Now(),
				})
			}
			s.emitMetric(map[string]int64{"service.jobs_done": 1, "service.cache_hit_jobs": 1}, nil, nil)
			s.emitTenantMetric(job.Tenant,
				map[string]int64{"service.tenant_jobs_done": 1},
				map[string]telemetry.HistData{"service.tenant_e2e_ns": telemetry.Observation(int64(job.finished.Sub(job.created)))})
			s.opt.Log.Info("job answered from cache",
				"job_id", job.ID, "tenant", job.Tenant, "circuit", job.Circuit, "key", job.Key)
			s.writeStatus(w, http.StatusOK, job)
			return
		}
	}

	rn := s.newRun(comp, req.Flow.ATPGBudgetMS, job, runID)
	if err := s.queue.Push(rn); err != nil {
		journaled := job.journaled
		s.mu.Unlock()
		rn.cancel()
		if journaled {
			// Compensate the accepted record: this job never ran.
			s.appendRecord(journal.TypeCanceled, &recCanceled{JobID: job.ID, Finished: time.Now()})
		}
		if errors.Is(err, ErrQueueFull) {
			s.reject429(w)
		} else {
			writeError(w, http.StatusServiceUnavailable, "server is draining, not accepting jobs")
		}
		return
	}
	if comp.cacheable {
		s.inflight[comp.key] = rn
	}
	s.active[rn] = true
	s.rememberJobLocked(job)
	depth := s.queue.Len()
	s.mu.Unlock()

	s.emitMetric(map[string]int64{"service.jobs_submitted": 1},
		map[string]float64{"service.queue_depth": float64(depth)}, nil)
	rn.log.Info("job accepted", "circuit", job.Circuit,
		"levels", len(job.Levels), "queue_depth", depth, "sweep_mode", rn.cfg.SweepMode.String())
	s.writeStatus(w, http.StatusAccepted, job)
}

// claimJobID returns the job ID for a submission: a valid, unused
// client-supplied X-Request-ID is honored (so clients can pre-correlate
// their own traffic); anything else gets a minted id. The claim is held
// in s.claimed until releaseJobID so two concurrent submissions cannot
// both admit under one client id.
func (s *Server) claimJobID(want string) string {
	if validRequestID(want) {
		s.mu.Lock()
		_, taken := s.jobs[want]
		if !taken && !s.claimed[want] {
			s.claimed[want] = true
			s.mu.Unlock()
			return want
		}
		s.mu.Unlock()
	}
	return s.newJobID()
}

func (s *Server) releaseJobID(id string) {
	s.mu.Lock()
	delete(s.claimed, id)
	s.mu.Unlock()
}

// validRequestID bounds a client-supplied X-Request-ID: 1–64 chars of
// [A-Za-z0-9._-]. Anything else (empty, huge, control chars, label
// injection) is ignored and a server id is minted instead.
func validRequestID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// reject429 answers an over-capacity submission. Retry-After carries
// jitter (1–4s) so a synchronized client fleet does not retry in
// lockstep and re-saturate the queue at the same instant.
func (s *Server) reject429(w http.ResponseWriter) {
	s.rejected.Add(1)
	s.emitMetric(map[string]int64{"service.rejected_429": 1}, nil, nil)
	s.opt.Log.Warn("submission rejected, queue full", "queue_depth", s.opt.QueueDepth)
	w.Header().Set("Retry-After", strconv.Itoa(1+mrand.Intn(4)))
	writeError(w, http.StatusTooManyRequests, "job queue full (%d queued), retry later", s.opt.QueueDepth)
}

// newRun builds the run for a freshly admitted (or replayed) job.
// runID "" mints a fresh id; replay passes the journaled one so a
// resumed run keeps its pre-crash identity.
func (s *Server) newRun(comp *compiled, budgetMS int64, job *Job, runID string) *run {
	if runID == "" {
		runID = s.newRunID()
	}
	ctx, cancel := context.WithCancel(context.Background())
	rn := &run{
		id:        runID,
		key:       comp.key,
		baseKey:   comp.baseKey,
		circHash:  comp.circHash,
		cfgHash:   comp.cfgHash,
		cacheable: comp.cacheable,
		tenant:    comp.tenant,
		primary:   job.ID,
		designN:   comp.design,
		cfg:       comp.cfg,
		levels:    comp.levels,
		workers:   comp.workers,
		budgetMS:  budgetMS,
		events:    newBroadcaster(),
		ctx:       ctx,
		cancel:    cancel,
		enqueued:  time.Now(),
		jobs:      []*Job{job},
	}
	if s.opt.Flight != nil {
		rn.flight = telemetry.NewFlightRecorder(s.opt.FlightRunEvents)
	}
	rn.log = s.opt.Log.With("job_id", job.ID, "run_id", runID, "tenant", rn.tenant)
	if rn.flight != nil {
		// Tee this run's log lines into its own black box as well.
		rn.log = rn.log.WithSinks(rn.flight)
	}
	rn.retryBudget.Store(int64(s.opt.Retry.JobBudget))
	job.run = rn
	job.runID = runID
	job.state = StateQueued
	return rn
}

func (s *Server) newJobID() string {
	var b [6]byte
	rand.Read(b[:])
	return fmt.Sprintf("j%06d-%s", s.jobSeq.Add(1), hex.EncodeToString(b[:]))
}

// newRunID mints a run_id: sequence for human ordering, random suffix
// for uniqueness across restarts.
func (s *Server) newRunID() string {
	var b [4]byte
	rand.Read(b[:])
	return fmt.Sprintf("r%06d-%s", s.runSeq.Add(1), hex.EncodeToString(b[:]))
}

// rememberJobLocked indexes the job and enforces terminal retention.
func (s *Server) rememberJobLocked(job *Job) {
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	// Evict the oldest terminal jobs beyond the retention window; live
	// jobs are always kept.
	for len(s.order) > s.opt.RetainJobs {
		victimID := s.order[0]
		victim := s.jobs[victimID]
		if victim != nil && !victim.state.terminal() {
			break // oldest job still live; retention resumes once it ends
		}
		s.order = s.order[1:]
		delete(s.jobs, victimID)
	}
}

func (s *Server) runStateLocked(r *run) State {
	if r.startedRunning {
		return StateRunning
	}
	return StateQueued
}

// ---------------------------------------------------------------------------
// Worker pool

func (s *Server) worker() {
	defer s.workersWG.Done()
	for {
		rn, ok := s.queue.Pop()
		if !ok {
			return
		}
		s.execute(rn)
	}
}

// execute runs one dequeued run to its terminal state.
func (s *Server) execute(rn *run) {
	now := time.Now()
	s.mu.Lock()
	if len(rn.jobs) == 0 {
		// Every submitter cancelled while the run was queued; nothing to
		// do. finalizeRunLocked already ran from the cancel path.
		s.mu.Unlock()
		return
	}
	rn.startedRunning = true
	rn.started = now
	for _, j := range rn.jobs {
		j.state = StateRunning
		j.started = now
	}
	s.mu.Unlock()

	wait := now.Sub(rn.enqueued)
	s.running.Add(1)
	s.flowRuns.Add(1)
	s.emitRunMetric(rn,
		map[string]int64{"service.flow_runs": 1},
		map[string]float64{
			"service.queue_depth": float64(s.queue.Len()),
			"service.running":     float64(s.running.Load()),
		},
		map[string]telemetry.HistData{"service.queue_wait_ns": telemetry.Observation(int64(wait))},
	)
	s.emitTenantMetric(rn.tenant, nil,
		map[string]telemetry.HistData{"service.tenant_queue_wait_ns": telemetry.Observation(int64(wait))})
	rn.log.Info("run started", "queue_wait_ms", wait.Milliseconds(), "levels", len(rn.levels))

	res, err := s.runFlowProfiled(rn)
	s.running.Add(-1)
	s.finishRun(rn, res, err)
}

// sweepRun is the production runFlow: the supervised partial sweep with
// the run's broadcaster (SSE) and the server's /metrics sink attached,
// executed level by level through the checkpoint/retry driver.
func (s *Server) sweepRun(rn *run) (*JobResult, error) {
	sinks := []telemetry.Sink{rn.events}
	if s.opt.Metrics != nil {
		sinks = append(sinks, s.opt.Metrics)
	}
	if s.opt.Flight != nil {
		sinks = append(sinks, s.opt.Flight)
	}
	if rn.flight != nil {
		sinks = append(sinks, rn.flight)
	}
	sinks = append(sinks, s.opt.ExtraSinks...)

	cfg := rn.cfg
	// Every span this run emits — and therefore every SSE frame, every
	// /metrics fold, and every flight-recorder entry — carries the run's
	// correlation identity.
	cfg.Telemetry = telemetry.New(sinks...).WithAttrs(rn.attrs())
	cfg.Workers = rn.workers
	if cfg.Workers == 0 {
		cfg.Workers = s.opt.FlowWorkers
	}
	cfg.Deadline = atpgDeadline(rn.budgetMS, time.Now())
	if s.opt.stageHook != nil {
		cfg.StageHook = s.opt.stageHook
	}

	start := time.Now()
	levels, err := s.runLevels(rn, cfg)
	if err != nil {
		return nil, err
	}
	if cerr := rn.ctx.Err(); cerr != nil {
		return nil, cerr
	}

	res := &JobResult{
		Circuit:   rn.designN.Name,
		TPLevels:  rn.levels,
		ElapsedMS: time.Since(start).Milliseconds(),
		Complete:  true,
	}
	for _, lr := range levels {
		ls := LevelStatus{TPPercent: lr.TPPercent}
		if lr.Err != nil {
			ls.Error = lr.Err.Error()
			res.Complete = false
		} else {
			ls.OK = true
			ls.Truncated = lr.Metrics.Truncated
		}
		res.Levels = append(res.Levels, ls)
	}
	res.Rows = flow.CompletedMetrics(levels)
	if len(res.Rows) > 0 {
		res.Table1 = flow.FormatTable1(res.Rows)
		res.Table2 = flow.FormatTable2(res.Rows)
		res.Table3 = flow.FormatTable3(res.Rows)
	}
	return res, nil
}

// runLevels is the resumable, retrying replacement for a monolithic
// SweepPartial call: levels with a durable checkpoint are answered from
// the store without running a flow, the rest execute on a bounded
// worker pool with per-level retry (transient failures only) under the
// run's retry budget, and every freshly completed level is checkpointed
// the moment it finishes — so a crash loses at most the levels still in
// flight. The stitched result is bit-identical to an uninterrupted
// sweep because checkpointed Metrics round-trip exactly through JSON.
func (s *Server) runLevels(rn *run, cfg flow.Config) ([]flow.LevelResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	out := make([]flow.LevelResult, len(rn.levels))
	var missing []int
	s.mu.Lock()
	for i, pct := range rn.levels {
		out[i].TPPercent = pct
		// Budget-truncated sweeps depend on wall-clock speed: they are
		// neither cached nor checkpointed nor resumed.
		if rn.cacheable {
			if m, ok := s.checkpoints.get(levelKey(rn.baseKey, cfg.SweepMode, pct)); ok {
				out[i].Metrics = m
				continue
			}
		}
		missing = append(missing, i)
	}
	s.mu.Unlock()
	if resumed := int64(len(rn.levels) - len(missing)); resumed > 0 {
		rn.resumedLevels.Add(resumed)
		s.levelsResumed.Add(resumed)
		s.emitRunMetric(rn, map[string]int64{"service.levels_resumed": resumed}, nil, nil)
		rn.log.Info("levels resumed from checkpoints", "resumed", resumed, "missing", len(missing))
	}
	if len(missing) == 0 {
		return out, nil
	}

	var sweepSpan *telemetry.Span
	if cfg.TelemetrySpan != nil {
		sweepSpan = cfg.TelemetrySpan.ChildTP(flow.StageSweep, -1)
	} else {
		sweepSpan = cfg.Telemetry.StartSpan(flow.StageSweep, -1)
	}
	defer sweepSpan.End()
	base := flow.PrewarmBase(rn.designN)

	// attemptLevel runs one level via exec under the shared retry policy
	// and checkpoints it on success; full and incremental modes differ
	// only in what exec does.
	attemptLevel := func(i int, exec func(lcfg flow.Config, pct float64) flow.LevelResult) {
		pct := rn.levels[i]
		lcfg := cfg
		lcfg.TelemetrySpan = sweepSpan
		for attempt := 1; ; attempt++ {
			lr := exec(lcfg, pct)
			s.levelsRun.Add(1)
			s.emitRunMetric(rn, map[string]int64{"service.levels_run": 1}, nil, nil)
			out[i] = lr
			if lr.Err == nil {
				rn.log.Debug("level done", "tp_percent", pct, "attempt", attempt,
					"truncated", lr.Metrics.Truncated)
				if rn.cacheable && !lr.Metrics.Truncated {
					rec := recLevelDone{
						Key: levelKey(rn.baseKey, cfg.SweepMode, pct), TPPercent: pct, Metrics: lr.Metrics,
						RunID: rn.id, JobID: rn.primary,
					}
					s.mu.Lock()
					s.checkpoints.put(rec)
					s.mu.Unlock()
					s.appendRecord(journal.TypeLevelDone, &rec)
				}
				return
			}
			// Permanent failures, cancellations, exhausted attempts, and
			// an exhausted per-job budget all surface the error as-is.
			if rn.ctx.Err() != nil || !transientError(lr.Err) || attempt >= s.opt.Retry.MaxAttempts {
				rn.log.Warn("level failed", "tp_percent", pct, "attempt", attempt, "error", lr.Err)
				return
			}
			if rn.retryBudget.Add(-1) < 0 {
				rn.log.Warn("level failed, retry budget exhausted", "tp_percent", pct,
					"attempt", attempt, "error", lr.Err)
				return
			}
			backoff := s.opt.Retry.backoff(attempt)
			rn.retries.Add(1)
			s.retries.Add(1)
			s.emitRunMetric(rn, map[string]int64{"service.retries": 1}, nil, nil)
			rn.log.Warn("level retrying after transient failure", "tp_percent", pct,
				"attempt", attempt, "backoff_ms", backoff.Milliseconds(), "error", lr.Err)
			// Context-aware backoff: a DELETE that cancels the run aborts
			// this sleep immediately and frees the worker.
			if !sleepCtx(rn.ctx, backoff) {
				return
			}
		}
	}
	runOne := func(i int) {
		attemptLevel(i, func(lcfg flow.Config, pct float64) flow.LevelResult {
			return s.runLevel(rn, base, lcfg, pct)
		})
	}

	if cfg.SweepMode == flow.SweepIncremental {
		// Serialized artifact chain over the missing levels in ascending
		// TP order; results still land in input order. Only the Metrics
		// are checkpointed — checkpoint-per-level-only is deliberate:
		// artifacts (post-TPI snapshot, ATPG memo) are in-memory handles,
		// so a crash-restarted sweep skips its checkpointed levels and
		// cold-starts the chain at the first missing one, which is still
		// exact because a cold link runs from the pristine base. A retry
		// reuses the last good artifacts the same way.
		order := append([]int(nil), missing...)
		sort.SliceStable(order, func(a, b int) bool {
			return rn.levels[order[a]] < rn.levels[order[b]]
		})
		var arts *flow.LevelArtifacts
		for _, i := range order {
			attemptLevel(i, func(lcfg flow.Config, pct float64) flow.LevelResult {
				lr, next := s.runLevelChained(rn, base, lcfg, pct, arts)
				if next != nil {
					arts = next
				}
				return lr
			})
		}
		return out, nil
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(missing) {
		workers = len(missing)
	}
	if workers <= 1 {
		for _, i := range missing {
			runOne(i)
		}
		return out, nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= len(missing) {
					return
				}
				runOne(missing[k])
			}
		}()
	}
	wg.Wait()
	return out, nil
}

// finishRun delivers a finished run to every attached job, feeds the
// cache, and tears the run down.
func (s *Server) finishRun(rn *run, res *JobResult, err error) {
	canceled := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || (err == nil && rn.ctx.Err() != nil)

	// Cache only complete, successful, deterministic results: a partial
	// sweep (one level panicked or timed out) must be retried, not
	// replayed forever from the cache.
	if err == nil && !canceled && rn.cacheable && res != nil && res.Complete {
		s.cache.Put(rn.key, res)
	}

	now := time.Now()
	s.mu.Lock()
	rn.done = true
	delete(s.inflight, rn.key)
	delete(s.active, rn)
	jobs := rn.jobs
	rn.jobs = nil
	var done, failed, cancl int64
	var journaledIDs []string
	tenantSLO := map[string]*tenantOutcome{}
	for _, j := range jobs {
		j.finished = now
		switch {
		case canceled:
			j.state = StateCanceled
			j.errMsg = "run canceled"
		case err != nil:
			j.state = StateFailed
			j.errMsg = err.Error()
		default:
			j.state = StateDone
			j.result = res
		}
		to := tenantSLO[j.Tenant]
		if to == nil {
			to = &tenantOutcome{}
			tenantSLO[j.Tenant] = to
		}
		to.e2e.Merge(telemetry.Observation(int64(now.Sub(j.created))))
		switch j.state {
		case StateDone:
			done++
			to.done++
		case StateFailed:
			failed++
			to.failed++
		case StateCanceled:
			cancl++
			to.canceled++
		}
		if j.journaled {
			journaledIDs = append(journaledIDs, j.ID)
		}
	}
	s.mu.Unlock()

	// Journal the retirement of every journaled job the run carried.
	// Crash semantics: a SIGKILL before this append leaves the jobs
	// pending, so the restarted daemon re-runs them (cheaply, from
	// their level checkpoints); a clean drain that cancels queued jobs
	// lands here too and retires them durably as canceled.
	if len(journaledIDs) > 0 {
		rr := &recRetired{
			JobIDs: journaledIDs, RunID: rn.id, CacheKey: rn.key,
			Cacheable: rn.cacheable, Finished: now,
		}
		switch {
		case canceled:
			rr.State = StateCanceled
			rr.Error = "run canceled"
		case err != nil:
			rr.State = StateFailed
			rr.Error = err.Error()
		default:
			rr.State = StateDone
			rr.Result = res
		}
		s.appendRecord(journal.TypeRetired, rr)
		s.maybeCompact()
	}

	s.jobsDone.Add(done)
	s.jobsFailed.Add(failed)
	s.jobsCanceled.Add(cancl)
	rn.cancel() // release the context's resources
	rn.events.Close()
	s.emitRunMetric(rn, map[string]int64{
		"service.jobs_done":     done,
		"service.jobs_failed":   failed,
		"service.jobs_canceled": cancl,
	}, map[string]float64{
		"service.queue_depth": float64(s.queue.Len()),
		"service.running":     float64(s.running.Load()),
	}, nil)
	for tenant, to := range tenantSLO {
		s.emitTenantMetric(tenant, map[string]int64{
			"service.tenant_jobs_done":     to.done,
			"service.tenant_jobs_failed":   to.failed,
			"service.tenant_jobs_canceled": to.canceled,
		}, map[string]telemetry.HistData{"service.tenant_e2e_ns": to.e2e})
	}
	state, errMsg := StateDone, ""
	switch {
	case canceled:
		state = StateCanceled
	case err != nil:
		state, errMsg = StateFailed, err.Error()
	}
	rn.log.Info("run finished", "state", string(state), "jobs", len(jobs),
		"retries", rn.retries.Load(), "resumed_levels", rn.resumedLevels.Load(), "error", errMsg)

	// Retire the run into the history archive and let the regression
	// sentinel compare it against its baseline. Only runs that actually
	// executed a flow are archived — a run torn down while still queued
	// has no trace worth keeping.
	if s.archive != nil && rn.startedRunning && !s.dead.Load() {
		s.archiveRun(rn, jobs, state, errMsg, now)
	}
}

// tenantOutcome accumulates one tenant's share of a finished run: the
// per-tenant SLO sample set (terminal-state counts + end-to-end
// latency observations) emitted as tpid_service_tenant_* families.
type tenantOutcome struct {
	done, failed, canceled int64
	e2e                    telemetry.HistData
}

// ---------------------------------------------------------------------------
// Status / result / cancel

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *Job {
	id := r.PathValue("id")
	s.mu.Lock()
	job := s.jobs[id]
	s.mu.Unlock()
	if job == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return nil
	}
	return job
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if job := s.lookup(w, r); job != nil {
		s.writeStatus(w, http.StatusOK, job)
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(w, r)
	if job == nil {
		return
	}
	s.mu.Lock()
	state, errMsg, cacheHit, res := job.state, job.errMsg, job.cacheHit, job.result
	s.mu.Unlock()
	switch state {
	case StateDone:
		// Personalize the shared (possibly cached) result without
		// mutating it.
		out := *res
		out.CacheHit = cacheHit
		writeJSON(w, http.StatusOK, &out)
	case StateFailed:
		writeError(w, http.StatusInternalServerError, "job failed: %s", errMsg)
	case StateCanceled:
		writeError(w, http.StatusGone, "job was canceled")
	default:
		writeError(w, http.StatusConflict, "job is %s; result not ready", state)
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(w, r)
	if job == nil {
		return
	}
	s.mu.Lock()
	if job.state.terminal() {
		s.mu.Unlock()
		s.writeStatus(w, http.StatusOK, job) // idempotent
		return
	}
	job.state = StateCanceled
	job.errMsg = "canceled by client"
	job.finished = time.Now()
	journaled := job.journaled
	rn := job.run
	var lastWaiter bool
	if rn != nil {
		for i, j := range rn.jobs {
			if j == job {
				rn.jobs = append(rn.jobs[:i:i], rn.jobs[i+1:]...)
				break
			}
		}
		lastWaiter = len(rn.jobs) == 0 && !rn.done
		if lastWaiter {
			rn.done = true
			delete(s.inflight, rn.key)
			delete(s.active, rn)
		}
	}
	s.mu.Unlock()

	s.jobsCanceled.Add(1)
	s.emitMetric(map[string]int64{"service.jobs_canceled": 1}, nil, nil)
	s.emitTenantMetric(job.Tenant,
		map[string]int64{"service.tenant_jobs_canceled": 1},
		map[string]telemetry.HistData{"service.tenant_e2e_ns": telemetry.Observation(int64(job.finished.Sub(job.created)))})
	s.opt.Log.Info("job canceled by client", "job_id", job.ID, "run_id", job.runID,
		"tenant", job.Tenant, "last_waiter", lastWaiter)
	if journaled {
		s.appendRecord(journal.TypeCanceled, &recCanceled{JobID: job.ID, RunID: job.runID, Finished: time.Now()})
	}
	if lastWaiter {
		// Nobody else wants this run: take it off the queue if still
		// there, abort the flow if running (including a retry backoff
		// sleep, which selects on this context), close the event stream.
		s.queue.Remove(rn)
		rn.cancel()
		rn.events.Close()
	}
	s.writeStatus(w, http.StatusOK, job)
}

// ---------------------------------------------------------------------------
// SSE events

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(w, r)
	if job == nil {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "response writer does not support streaming")
		return
	}
	s.mu.Lock()
	rn := job.run
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	if rn != nil {
		// Stream the retained trace, then follow live until the run
		// closes or the client goes away. Every frame carries its event
		// index as the SSE id, so a reconnecting client that sends
		// Last-Event-ID resumes exactly where its stream tore instead of
		// replaying from 0.
		i := 0
		if last := r.Header.Get("Last-Event-ID"); last != "" {
			if n, err := strconv.Atoi(last); err == nil && n >= 0 {
				i = n + 1
			}
		}
		stop := context.AfterFunc(r.Context(), rn.events.wake)
		defer stop()
		for {
			tail, ok := rn.events.next(r.Context(), i)
			if !ok {
				break
			}
			for k, e := range tail {
				line, err := json.Marshal(e)
				if err != nil {
					continue
				}
				if _, err := fmt.Fprintf(w, "id: %d\ndata: %s\n\n", i+k, line); err != nil {
					return // client disconnected
				}
			}
			i += len(tail)
			flusher.Flush()
		}
	}

	// Final frame: the job's terminal status (or current state if the
	// client disconnected first — it is about to stop reading anyway).
	s.mu.Lock()
	status := s.statusLocked(job)
	s.mu.Unlock()
	if line, err := json.Marshal(status); err == nil {
		fmt.Fprintf(w, "event: done\ndata: %s\n\n", line)
		flusher.Flush()
	}
}

// ---------------------------------------------------------------------------
// Stats / health

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleHealth is pure liveness: the process is up and serving HTTP.
// It stays 200 through journal replay AND through a drain — restarting
// a draining daemon because its health check went red would turn every
// graceful shutdown into a crash loop. Readiness is /readyz.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReady is readiness: whether this daemon should receive traffic.
// Not ready while replaying the journal (startup) or draining
// (shutdown) — load balancers steer new work elsewhere in both windows.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.draining.Load():
		writeError(w, http.StatusServiceUnavailable, "draining")
	case !s.ready.Load():
		writeError(w, http.StatusServiceUnavailable, "replaying journal")
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

// ---------------------------------------------------------------------------
// Shutdown

// Shutdown drains the server: new submissions are rejected with 503,
// still-queued jobs are canceled immediately, and running jobs get
// until ctx's deadline to finish before their contexts are canceled.
// It returns ctx.Err() when the drain deadline cut running jobs short,
// nil when everything drained cleanly. Safe to call once; the worker
// pool is gone afterwards.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutdownMu.Lock()
	defer s.shutdownMu.Unlock()
	select {
	case <-s.shutdownCh:
		return nil // already shut down
	default:
	}
	s.draining.Store(true)
	s.opt.Log.Info("drain started", "queued", s.queue.Len(), "running", s.running.Load())
	// Let a still-running journal replay finish re-admitting jobs before
	// the queue closes underneath it (its re-admissions are then drained
	// like any other queued job, and stay pending in the journal).
	s.replayWG.Wait()

	// Cancel everything still queued: drain means "finish what is
	// running", not "work the whole backlog".
	for _, rn := range s.queue.Close() {
		s.finishRun(rn, nil, context.Canceled)
	}

	workersDone := make(chan struct{})
	go func() {
		s.workersWG.Wait()
		close(workersDone)
	}()

	var err error
	select {
	case <-workersDone:
	case <-ctx.Done():
		// Drain deadline: abort the in-flight flows. Cancellation lands
		// within one work unit, so the workers exit promptly.
		s.mu.Lock()
		for rn := range s.active {
			rn.cancel()
		}
		s.mu.Unlock()
		<-workersDone
		err = ctx.Err()
	}

	close(s.shutdownCh)
	s.opt.Log.Info("drain finished", "deadline_cut", err != nil)
	if s.archive != nil {
		s.archive.Close()
	}
	if s.jrnl != nil {
		s.jrnl.Close()
	}
	if s.opt.Flush != nil {
		if ferr := s.opt.Flush(); ferr != nil && err == nil {
			err = ferr
		}
	}
	return err
}

// ---------------------------------------------------------------------------
// Telemetry + JSON helpers

// emitMetric folds service-level families into the /metrics sink as one
// synthetic span_end under stage="service" with ID 0 (an observation
// event, exempt from trace balancing) — the same pipe the flow's own
// telemetry rides, so one scrape shows engine and service health side
// by side. Every observation also lands in the flight recorder.
func (s *Server) emitMetric(counters map[string]int64, gauges map[string]float64, hists map[string]telemetry.HistData) {
	s.emitEvent(telemetry.Event{
		Type: telemetry.EventSpanEnd, Stage: "service", Time: time.Now(),
		Counters: counters, Gauges: gauges, Hists: hists,
	}, nil)
}

// emitRunMetric is emitMetric carrying a run's correlation attrs, so
// retry/checkpoint/terminal counter flushes in the flight recorder and
// on /metrics name the run they belong to. The tenant attr is the
// run's, so these families split per tenant on /metrics (bounded by
// the PromSink tenant cap).
func (s *Server) emitRunMetric(rn *run, counters map[string]int64, gauges map[string]float64, hists map[string]telemetry.HistData) {
	s.emitEvent(telemetry.Event{
		Type: telemetry.EventSpanEnd, Stage: "service", Time: time.Now(),
		Counters: counters, Gauges: gauges, Hists: hists, Attrs: rn.attrs(),
	}, rn.flight)
}

// emitTenantMetric emits the per-tenant SLO families
// (tpid_service_tenant_*): terminal-state counters plus queue-wait and
// end-to-end latency histograms, labeled tenant="..." on /metrics with
// the PromSink's bounded-cardinality "other" overflow.
func (s *Server) emitTenantMetric(tenant string, counters map[string]int64, hists map[string]telemetry.HistData) {
	s.emitEvent(telemetry.Event{
		Type: telemetry.EventSpanEnd, Stage: "service", Time: time.Now(),
		Counters: counters, Hists: hists,
		Attrs: map[string]string{"tenant": tenant},
	}, nil)
}

func (s *Server) emitEvent(e telemetry.Event, runFlight *telemetry.FlightRecorder) {
	if s.opt.Metrics != nil {
		s.opt.Metrics.Emit(e)
	}
	s.opt.Flight.Emit(e) // nil-safe
	runFlight.Emit(e)
}

// handleFlight dumps the flight recorder — the service-wide ring, or
// one run's with ?job=<id> — as NDJSON readable by tracestat -flight.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	if s.opt.Flight == nil {
		writeError(w, http.StatusNotFound, "flight recorder disabled")
		return
	}
	fr := s.opt.Flight
	if id := r.URL.Query().Get("job"); id != "" {
		s.mu.Lock()
		job := s.jobs[id]
		if job != nil && job.run != nil {
			fr = job.run.flight
		} else {
			fr = nil
		}
		s.mu.Unlock()
		if fr == nil {
			writeError(w, http.StatusNotFound, "no flight record for job %q (terminal cache hits and unknown jobs have none)", id)
			return
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	fr.WriteNDJSON(w)
}

func (s *Server) statusLocked(job *Job) JobStatus {
	st := JobStatus{
		ID:        job.ID,
		Tenant:    job.Tenant,
		RunID:     job.runID,
		State:     job.state,
		Key:       job.Key,
		Circuit:   job.Circuit,
		TPLevels:  job.Levels,
		CacheHit:  job.cacheHit,
		Coalesced: job.coalesce,
		Error:     job.errMsg,
		CreatedAt: job.created.UTC().Format(time.RFC3339Nano),
	}
	if job.run != nil {
		st.Retries = job.run.retries.Load()
		st.ResumedLevels = job.run.resumedLevels.Load()
	}
	if !job.started.IsZero() {
		st.StartedAt = job.started.UTC().Format(time.RFC3339Nano)
	}
	if !job.finished.IsZero() {
		st.FinishedAt = job.finished.UTC().Format(time.RFC3339Nano)
	}
	return st
}

func (s *Server) writeStatus(w http.ResponseWriter, code int, job *Job) {
	s.mu.Lock()
	st := s.statusLocked(job)
	s.mu.Unlock()
	writeJSON(w, code, st)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
