package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"tpilayout/internal/telemetry"
)

// testBench is a tiny but legal circuit: enough structure to parse,
// canonicalize, and hash, cheap enough to compile on every submission.
const testBench = `INPUT(a)
INPUT(b)
OUTPUT(y)
d1 = DFF(a) # domain=clk
y = NAND(d1, b)
`

// jobBody builds a submission for the test bench. Distinct levels give
// distinct cache keys, so tests pick levels to control coalescing.
func jobBody(t *testing.T, tenant string, levels ...float64) []byte {
	t.Helper()
	b, err := json.Marshal(JobRequest{
		Tenant:   tenant,
		Circuit:  CircuitSpec{Bench: testBench, Name: "tiny"},
		TPLevels: levels,
		Flow:     FlowConfig{SkipATPG: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func do(t *testing.T, s *Server, method, path string, body []byte) (int, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

func postJob(t *testing.T, s *Server, body []byte) (int, JobStatus) {
	t.Helper()
	code, resp := do(t, s, "POST", "/v1/jobs", body)
	var st JobStatus
	if code == http.StatusOK || code == http.StatusAccepted {
		if err := json.Unmarshal(resp, &st); err != nil {
			t.Fatalf("decoding submit response: %v\n%s", err, resp)
		}
	}
	return code, st
}

func getStatus(t *testing.T, s *Server, id string) JobStatus {
	t.Helper()
	code, resp := do(t, s, "GET", "/v1/jobs/"+id, nil)
	if code != http.StatusOK {
		t.Fatalf("GET status %s = %d: %s", id, code, resp)
	}
	var st JobStatus
	if err := json.Unmarshal(resp, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitState polls a job until it reaches a terminal state and asserts it
// is the wanted one.
func waitState(t *testing.T, s *Server, id string, want State) JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, s, id)
		if st.State.terminal() {
			if st.State != want {
				t.Fatalf("job %s ended %s (err=%q), want %s", id, st.State, st.Error, want)
			}
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return JobStatus{}
}

func getResult(t *testing.T, s *Server, id string) (int, *JobResult) {
	t.Helper()
	code, resp := do(t, s, "GET", "/v1/jobs/"+id+"/result", nil)
	if code != http.StatusOK {
		return code, nil
	}
	var res JobResult
	if err := json.Unmarshal(resp, &res); err != nil {
		t.Fatal(err)
	}
	return code, &res
}

// waitGoroutines polls until the goroutine count settles back to the
// baseline, mirroring checkNoGoroutineLeak in the root cancel test.
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
}

func shutdown(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("Shutdown: %v", err)
	}
}

// stubResult is what the fake flow returns: enough fields for result
// assertions without paying for a layout.
func stubResult(rn *run) *JobResult {
	res := &JobResult{
		Circuit:  rn.designN.Name,
		TPLevels: rn.levels,
		Table1:   "stub-table-1",
		Complete: true,
	}
	for _, tp := range rn.levels {
		res.Levels = append(res.Levels, LevelStatus{TPPercent: tp, OK: true})
	}
	return res
}

func TestSubmitLifecycle(t *testing.T) {
	s := New(Options{Workers: 2})
	defer shutdown(t, s)
	s.runFlow = func(rn *run) (*JobResult, error) { return stubResult(rn), nil }

	code, st := postJob(t, s, jobBody(t, "acme", 0, 1, 2))
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	if st.ID == "" || st.Key == "" || st.Circuit != "tiny" {
		t.Fatalf("submit status incomplete: %+v", st)
	}
	waitState(t, s, st.ID, StateDone)

	code, res := getResult(t, s, st.ID)
	if code != http.StatusOK {
		t.Fatalf("result = %d, want 200", code)
	}
	if !res.Complete || res.Table1 != "stub-table-1" || res.CacheHit {
		t.Fatalf("unexpected result: %+v", res)
	}
	if got := fmt.Sprint(res.TPLevels); got != "[0 1 2]" {
		t.Fatalf("result levels = %s", got)
	}

	// Unknown job IDs are 404 on every job endpoint.
	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/result", "/v1/jobs/nope/events"} {
		if code, _ := do(t, s, "GET", path, nil); code != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, code)
		}
	}
}

// TestSingleflightAndCache is the headline acceptance test: two
// concurrent identical submissions execute exactly one flow, and a later
// identical submission is served from the result cache without queueing.
func TestSingleflightAndCache(t *testing.T) {
	s := New(Options{Workers: 2})
	defer shutdown(t, s)

	started := make(chan struct{})
	release := make(chan struct{})
	s.runFlow = func(rn *run) (*JobResult, error) {
		close(started)
		select {
		case <-release:
		case <-rn.ctx.Done():
			return nil, rn.ctx.Err()
		}
		return stubResult(rn), nil
	}

	body := jobBody(t, "acme", 0, 5)
	code1, st1 := postJob(t, s, body)
	if code1 != http.StatusAccepted {
		t.Fatalf("first submit = %d, want 202", code1)
	}
	<-started // the flow is running; an identical submission must coalesce

	code2, st2 := postJob(t, s, body)
	if code2 != http.StatusAccepted {
		t.Fatalf("second submit = %d, want 202", code2)
	}
	if !st2.Coalesced {
		t.Fatal("second identical submission did not coalesce onto the inflight run")
	}
	if st2.Key != st1.Key {
		t.Fatalf("identical submissions hashed differently: %s vs %s", st1.Key, st2.Key)
	}
	close(release)

	waitState(t, s, st1.ID, StateDone)
	waitState(t, s, st2.ID, StateDone)
	if n := s.FlowRuns(); n != 1 {
		t.Fatalf("two identical concurrent submissions ran %d flows, want 1", n)
	}

	// Both jobs see the same (non-cache-hit) result.
	for _, id := range []string{st1.ID, st2.ID} {
		code, res := getResult(t, s, id)
		if code != http.StatusOK || res.Table1 != "stub-table-1" {
			t.Fatalf("result for %s: code=%d res=%+v", id, code, res)
		}
	}

	// Third identical submission after the run finished: answered 200
	// straight from the cache, zero additional flows.
	code3, st3 := postJob(t, s, body)
	if code3 != http.StatusOK {
		t.Fatalf("cached submit = %d, want 200", code3)
	}
	if !st3.CacheHit || st3.State != StateDone {
		t.Fatalf("cached submit status: %+v", st3)
	}
	if n := s.FlowRuns(); n != 1 {
		t.Fatalf("cached submission re-ran the flow: %d runs", n)
	}
	code, res := getResult(t, s, st3.ID)
	if code != http.StatusOK || !res.CacheHit {
		t.Fatalf("cached result: code=%d cache_hit=%v", code, res.CacheHit)
	}
	if stats := s.Stats(); stats.CacheHits < 1 {
		t.Fatalf("cache hit counter = %d, want >= 1", stats.CacheHits)
	}
}

func TestQueueOverflow429(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 1})
	defer shutdown(t, s)

	started := make(chan struct{}, 4)
	release := make(chan struct{})
	s.runFlow = func(rn *run) (*JobResult, error) {
		started <- struct{}{}
		select {
		case <-release:
		case <-rn.ctx.Done():
			return nil, rn.ctx.Err()
		}
		return stubResult(rn), nil
	}

	// Job A occupies the single worker...
	codeA, stA := postJob(t, s, jobBody(t, "acme", 1))
	if codeA != http.StatusAccepted {
		t.Fatalf("submit A = %d", codeA)
	}
	<-started
	// ...job B fills the one queue slot...
	codeB, stB := postJob(t, s, jobBody(t, "acme", 2))
	if codeB != http.StatusAccepted {
		t.Fatalf("submit B = %d", codeB)
	}
	// ...and job C bounces with 429 + Retry-After.
	req := httptest.NewRequest("POST", "/v1/jobs", bytes.NewReader(jobBody(t, "acme", 3)))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("submit C = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After header")
	}
	if stats := s.Stats(); stats.Rejected != 1 {
		t.Fatalf("rejected counter = %d, want 1", stats.Rejected)
	}

	close(release)
	waitState(t, s, stA.ID, StateDone)
	waitState(t, s, stB.ID, StateDone)
}

func TestCancelMidRunFreesWorker(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New(Options{Workers: 1})

	started := make(chan struct{}, 4)
	s.runFlow = func(rn *run) (*JobResult, error) {
		if rn.levels[0] == 1 {
			// The long job: only cancellation lets it return.
			started <- struct{}{}
			<-rn.ctx.Done()
			return nil, rn.ctx.Err()
		}
		return stubResult(rn), nil
	}

	_, st := postJob(t, s, jobBody(t, "acme", 1))
	<-started
	if got := getStatus(t, s, st.ID); got.State != StateRunning {
		t.Fatalf("job state = %s, want running", got.State)
	}

	code, resp := do(t, s, "DELETE", "/v1/jobs/"+st.ID, nil)
	if code != http.StatusOK {
		t.Fatalf("DELETE = %d: %s", code, resp)
	}
	if got := getStatus(t, s, st.ID); got.State != StateCanceled {
		t.Fatalf("after DELETE state = %s, want canceled", got.State)
	}
	// DELETE is idempotent.
	if code, _ := do(t, s, "DELETE", "/v1/jobs/"+st.ID, nil); code != http.StatusOK {
		t.Fatalf("second DELETE = %d, want 200", code)
	}
	// The result of a canceled job is 410 Gone.
	if code, _ := getResult(t, s, st.ID); code != http.StatusGone {
		t.Fatalf("result of canceled job = %d, want 410", code)
	}

	// The single worker must come back: a fresh job completes.
	_, st2 := postJob(t, s, jobBody(t, "acme", 2))
	waitState(t, s, st2.ID, StateDone)

	if stats := s.Stats(); stats.JobsCanceled < 1 {
		t.Fatalf("canceled counter = %d, want >= 1", stats.JobsCanceled)
	}
	shutdown(t, s)
	waitGoroutines(t, before)
}

// TestCancelWhileQueuedSkipsFlow cancels a job that never left the
// queue: the flow must not run at all for it.
func TestCancelWhileQueuedSkipsFlow(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 4})
	defer shutdown(t, s)

	started := make(chan struct{}, 4)
	release := make(chan struct{})
	s.runFlow = func(rn *run) (*JobResult, error) {
		started <- struct{}{}
		select {
		case <-release:
		case <-rn.ctx.Done():
			return nil, rn.ctx.Err()
		}
		return stubResult(rn), nil
	}

	_, stA := postJob(t, s, jobBody(t, "acme", 1)) // occupies the worker
	<-started
	_, stB := postJob(t, s, jobBody(t, "acme", 2)) // queued
	if code, _ := do(t, s, "DELETE", "/v1/jobs/"+stB.ID, nil); code != http.StatusOK {
		t.Fatal("cancel of queued job failed")
	}
	close(release)
	waitState(t, s, stA.ID, StateDone)

	// Only A's flow may ever have run; give the worker a moment to (not)
	// pick up B.
	time.Sleep(20 * time.Millisecond)
	if n := s.FlowRuns(); n != 1 {
		t.Fatalf("flow runs = %d, want 1 (canceled queued job must not run)", n)
	}
}

// TestConcurrentTenants is the -race fleet test: several tenants each
// submit a batch of distinct jobs through the full HTTP surface at once;
// everything completes, nothing leaks.
func TestConcurrentTenants(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New(Options{Workers: 4, QueueDepth: 256})
	s.runFlow = func(rn *run) (*JobResult, error) {
		select {
		case <-time.After(time.Millisecond):
		case <-rn.ctx.Done():
			return nil, rn.ctx.Err()
		}
		return stubResult(rn), nil
	}

	const tenants, jobsPer = 4, 8
	var wg sync.WaitGroup
	ids := make(chan string, tenants*jobsPer)
	for k := 0; k < tenants; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for j := 0; j < jobsPer; j++ {
				// Distinct level per (tenant, job) so no two submissions
				// coalesce: every job is its own flow.
				level := float64(k*jobsPer+j) / 10
				code, st := postJob(t, s, jobBody(t, fmt.Sprintf("t%d", k), level))
				if code != http.StatusAccepted {
					t.Errorf("tenant %d job %d: submit = %d", k, j, code)
					return
				}
				ids <- st.ID
			}
		}(k)
	}
	wg.Wait()
	close(ids)
	for id := range ids {
		waitState(t, s, id, StateDone)
	}
	if n := s.FlowRuns(); n != tenants*jobsPer {
		t.Fatalf("flow runs = %d, want %d", n, tenants*jobsPer)
	}
	if stats := s.Stats(); stats.JobsDone != tenants*jobsPer {
		t.Fatalf("jobs done = %d, want %d", stats.JobsDone, tenants*jobsPer)
	}
	shutdown(t, s)
	waitGoroutines(t, before)
}

// TestEventsSSE streams a run's span events over the real HTTP stack and
// re-parses the payload with telemetry.ParseTrace: the stream must be a
// balanced trace followed by a terminal `done` frame.
func TestEventsSSE(t *testing.T) {
	s := New(Options{Workers: 1})
	defer shutdown(t, s)

	started := make(chan struct{})
	release := make(chan struct{})
	s.runFlow = func(rn *run) (*JobResult, error) {
		// Emit a balanced two-span trace through the run's broadcaster,
		// exactly as the real sweep's tracer would.
		tr := telemetry.New(rn.events)
		root := tr.StartSpan("sweep", -1)
		close(started)
		lvl := root.ChildTP("level", 5)
		select {
		case <-release:
		case <-rn.ctx.Done():
			return nil, rn.ctx.Err()
		}
		lvl.End()
		root.End()
		return stubResult(rn), nil
	}

	ts := httptest.NewServer(s)
	defer ts.Close()

	body := jobBody(t, "acme", 5)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	<-started

	// Connect mid-run: retention must replay the trace from event 0.
	evResp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer evResp.Body.Close()
	if ct := evResp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type = %q", ct)
	}
	close(release)

	// Collect SSE frames: `data:` lines carry NDJSON events until the
	// `event: done` terminal frame delivers the job status.
	var ndjson bytes.Buffer
	var doneFrame string
	inDone := false
	sc := bufio.NewScanner(evResp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "event: done":
			inDone = true
		case strings.HasPrefix(line, "data: "):
			if inDone {
				doneFrame = strings.TrimPrefix(line, "data: ")
			} else {
				ndjson.WriteString(strings.TrimPrefix(line, "data: "))
				ndjson.WriteByte('\n')
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading SSE stream: %v", err)
	}

	trace, err := telemetry.ParseTrace(&ndjson)
	if err != nil {
		t.Fatalf("SSE payload does not parse as a trace: %v", err)
	}
	if !trace.Balanced() {
		t.Fatalf("SSE trace unbalanced: %v", trace.Unbalanced)
	}
	if len(trace.Spans) != 2 {
		t.Fatalf("SSE trace has %d spans, want 2", len(trace.Spans))
	}
	if got := fmt.Sprint(trace.Levels()); got != "[5]" {
		t.Fatalf("trace levels = %s, want [5]", got)
	}
	if doneFrame == "" {
		t.Fatal("SSE stream ended without an `event: done` frame")
	}
	var final JobStatus
	if err := json.Unmarshal([]byte(doneFrame), &final); err != nil {
		t.Fatalf("done frame: %v", err)
	}
	if final.State != StateDone {
		t.Fatalf("done frame state = %s, want done", final.State)
	}
}

// TestUncacheableBudgetJobs checks that ATPG-budgeted submissions are
// neither coalesced nor cached: their results depend on wall-clock speed.
func TestUncacheableBudgetJobs(t *testing.T) {
	s := New(Options{Workers: 2})
	defer shutdown(t, s)
	s.runFlow = func(rn *run) (*JobResult, error) { return stubResult(rn), nil }

	req := JobRequest{
		Circuit:  CircuitSpec{Bench: testBench},
		TPLevels: []float64{0},
		Flow:     FlowConfig{SkipATPG: true, ATPGBudgetMS: 50},
	}
	body, _ := json.Marshal(req)
	_, st1 := postJob(t, s, body)
	waitState(t, s, st1.ID, StateDone)
	code2, st2 := postJob(t, s, body)
	if code2 != http.StatusAccepted {
		t.Fatalf("second budgeted submit = %d, want 202 (never a cache hit)", code2)
	}
	if st2.CacheHit || st2.Coalesced {
		t.Fatalf("budgeted job was cached/coalesced: %+v", st2)
	}
	waitState(t, s, st2.ID, StateDone)
	if n := s.FlowRuns(); n != 2 {
		t.Fatalf("budgeted flow runs = %d, want 2", n)
	}
}

// TestBadRequests walks the validation surface: every malformed
// submission is a clean 4xx.
func TestBadRequests(t *testing.T) {
	s := New(Options{Workers: 1})
	defer shutdown(t, s)
	s.runFlow = func(rn *run) (*JobResult, error) { return stubResult(rn), nil }

	cases := []struct {
		name string
		body string
		want int
	}{
		{"empty body", ``, http.StatusBadRequest},
		{"not json", `{{{`, http.StatusBadRequest},
		{"unknown field", `{"bogus": 1}`, http.StatusBadRequest},
		{"no circuit", `{"tp_levels":[0]}`, http.StatusBadRequest},
		{"no levels", fmt.Sprintf(`{"circuit":{"bench":%q}}`, testBench), http.StatusBadRequest},
		{"level out of range", fmt.Sprintf(`{"circuit":{"bench":%q},"tp_levels":[101]}`, testBench), http.StatusBadRequest},
		{"bench and spec", fmt.Sprintf(`{"circuit":{"bench":%q,"spec":"s38417c"},"tp_levels":[0]}`, testBench), http.StatusBadRequest},
		{"unknown spec", `{"circuit":{"spec":"c17"},"tp_levels":[0]}`, http.StatusBadRequest},
		{"bad bench", `{"circuit":{"bench":"x = FROB(y)"},"tp_levels":[0]}`, http.StatusBadRequest},
		{"negative workers", fmt.Sprintf(`{"circuit":{"bench":%q},"tp_levels":[0],"flow":{"workers":-1}}`, testBench), http.StatusBadRequest},
		{"oversized scale", `{"circuit":{"spec":"s38417c","scale":99},"tp_levels":[0]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		code, resp := do(t, s, "POST", "/v1/jobs", []byte(tc.body))
		if code != tc.want {
			t.Errorf("%s: code = %d, want %d (%s)", tc.name, code, tc.want, resp)
		}
	}
	if n := s.FlowRuns(); n != 0 {
		t.Fatalf("malformed submissions ran %d flows", n)
	}
}

// TestFailedRunReporting: a flow error surfaces as state failed and a
// 500 on the result endpoint, and is never cached.
func TestFailedRunReporting(t *testing.T) {
	s := New(Options{Workers: 1})
	defer shutdown(t, s)
	s.runFlow = func(rn *run) (*JobResult, error) {
		return nil, fmt.Errorf("placement exploded")
	}
	body := jobBody(t, "acme", 7)
	_, st := postJob(t, s, body)
	got := waitState(t, s, st.ID, StateFailed)
	if !strings.Contains(got.Error, "placement exploded") {
		t.Fatalf("failed status error = %q", got.Error)
	}
	if code, _ := getResult(t, s, st.ID); code != http.StatusInternalServerError {
		t.Fatalf("result of failed job = %d, want 500", code)
	}
	// Failure is not cached: resubmitting runs the flow again.
	s.runFlow = func(rn *run) (*JobResult, error) { return stubResult(rn), nil }
	code2, st2 := postJob(t, s, body)
	if code2 != http.StatusAccepted || st2.CacheHit {
		t.Fatalf("resubmit after failure: code=%d cache_hit=%v", code2, st2.CacheHit)
	}
	waitState(t, s, st2.ID, StateDone)
}
