package service

import (
	"context"
	"net/http"
	"runtime"
	"testing"
	"time"
)

// TestShutdownDrains: running jobs finish inside the drain window, queued
// jobs are canceled immediately, new submissions see 503, the Flush hook
// fires, and the worker pool is fully gone.
func TestShutdownDrains(t *testing.T) {
	before := runtime.NumGoroutine()
	flushed := make(chan struct{})
	s := New(Options{Workers: 1, QueueDepth: 4, Flush: func() error {
		close(flushed)
		return nil
	}})

	started := make(chan struct{}, 4)
	release := make(chan struct{})
	s.runFlow = func(rn *run) (*JobResult, error) {
		started <- struct{}{}
		select {
		case <-release:
		case <-rn.ctx.Done():
			return nil, rn.ctx.Err()
		}
		return stubResult(rn), nil
	}

	_, stRun := postJob(t, s, jobBody(t, "acme", 1)) // running
	<-started
	_, stQueued := postJob(t, s, jobBody(t, "acme", 2)) // still queued

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()

	// Draining: liveness stays 200 (the process is healthy, just
	// stopping), readiness goes 503, and new submissions bounce with 503.
	waitFor(t, func() bool { return s.Stats().Draining })
	if code, _ := do(t, s, "GET", "/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz while draining = %d, want 200 (liveness)", code)
	}
	if code, _ := do(t, s, "GET", "/readyz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", code)
	}
	if code, _ := postJobCode(t, s, jobBody(t, "acme", 3)); code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503", code)
	}

	// The queued job was canceled by the drain, not run.
	waitState(t, s, stQueued.ID, StateCanceled)

	// The running job is allowed to finish.
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("Shutdown = %v, want clean drain", err)
	}
	waitState(t, s, stRun.ID, StateDone)
	select {
	case <-flushed:
	default:
		t.Fatal("Flush hook was not called")
	}
	if n := s.FlowRuns(); n != 1 {
		t.Fatalf("flow runs = %d, want 1 (queued job must not run during drain)", n)
	}
	// Shutdown is idempotent.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown = %v", err)
	}
	waitGoroutines(t, before)
}

// TestShutdownDeadlineCancelsRunning: when the drain window expires, the
// still-running flow's context is canceled and Shutdown returns the
// deadline error instead of hanging.
func TestShutdownDeadlineCancelsRunning(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New(Options{Workers: 1})

	started := make(chan struct{}, 1)
	s.runFlow = func(rn *run) (*JobResult, error) {
		started <- struct{}{}
		<-rn.ctx.Done() // refuses to finish until canceled
		return nil, rn.ctx.Err()
	}
	_, st := postJob(t, s, jobBody(t, "acme", 1))
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown = %v, want context.DeadlineExceeded", err)
	}
	waitState(t, s, st.ID, StateCanceled)
	waitGoroutines(t, before)
}

func postJobCode(t *testing.T, s *Server, body []byte) (int, []byte) {
	t.Helper()
	return do(t, s, "POST", "/v1/jobs", body)
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}
