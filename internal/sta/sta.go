// Package sta is a graph-based static timing analyzer in the mold of the
// paper's Pearl step: levelized arrival-time and slew propagation, NLDM
// table lookups (with out-of-range extrapolation reported as slow nodes),
// Elmore wire delays from extracted parasitics, per-domain critical paths
// with the paper's Eq. 3 decomposition
//
//	T_cp = T_wires + T_intrinsic + T_load-dep + T_setup + T_skew
//
// and F_max = 1/T_cp. Application-mode case analysis (TE=TR=0, SE=0)
// propagates constants so that paths only sensitizable in test mode are
// blocked, as the paper does before reporting timing.
package sta

import (
	"context"
	"fmt"
	"math"

	"tpilayout/internal/extract"
	"tpilayout/internal/netlist"
	"tpilayout/internal/stdcell"
	"tpilayout/internal/telemetry"
)

// Options configures the analysis.
type Options struct {
	// Constraints holds application-mode constants for case analysis.
	Constraints map[netlist.NetID]int8
	// InputSlew is the edge rate assumed at primary inputs in ps
	// (default 40).
	InputSlew float64
	// PrimaryOutputLoad is the external load on POs in fF (default 8).
	PrimaryOutputLoad float64
	// Telemetry, when non-nil, receives the analysis counters
	// (sta.domains, sta.path_cells, sta.slow_nodes) and the
	// sta.critical_tcp_ps / sta.worst_skew_ps gauges on the STA stage's
	// span. Nil costs nothing.
	Telemetry *telemetry.Span
}

// PathReport describes one domain's critical register-to-register path.
type PathReport struct {
	Domain int
	// Tcp is the minimum clock period in ps; FmaxMHz = 1e6/Tcp.
	Tcp     float64
	FmaxMHz float64
	// Eq. 3 decomposition (ps).
	TWires, TIntrinsic, TLoadDep, TSetup, TSkew float64
	// Launch and capture flops and the combinational cells between them.
	Launch, Capture netlist.CellID
	PathCells       []netlist.CellID
}

// Result is the full analysis outcome.
type Result struct {
	// PerDomain critical paths, indexed by domain.
	PerDomain []PathReport
	// SlowNodes counts cells whose delay lookup extrapolated beyond the
	// characterized tables (Pearl's slow nodes).
	SlowNodes int
	// ClkArrival is the clock-tree insertion delay per flip-flop cell
	// (ps), NaN for non-flops.
	ClkArrival []float64
	// WorstSkew is the max-min clock arrival difference per domain.
	WorstSkew []float64
}

// arc records how a net's worst arrival was produced.
type arc struct {
	fromNet  netlist.NetID
	viaCell  netlist.CellID
	wire     float64 // wire delay into the cell input
	intrin   float64 // intrinsic part of the cell delay
	loadDep  float64 // load-dependent part
	isSource bool
}

type analyzer struct {
	n    *netlist.Netlist
	par  *extract.Parasitics
	opt  Options
	ctx  context.Context
	cons []int8 // propagated constants per net (-1 = toggling)

	at    []float64
	slew  []float64
	from  []arc
	order []netlist.CellID

	// poExtra[net] is the external PO load on the net (0 for non-PO
	// nets), precomputed so evalCell avoids a scan over all POs per cell.
	poExtra []float64

	slowSeen []bool
	slow     int
}

// Analyze runs STA over the routed, extracted design.
func Analyze(n *netlist.Netlist, par *extract.Parasitics, opt Options) (*Result, error) {
	return AnalyzeContext(context.Background(), n, par, opt)
}

// AnalyzeContext is Analyze with cooperative cancellation: the levelized
// sweeps check the context every few thousand cells, so a cancel lands
// within one propagation slice, not one full analysis.
func AnalyzeContext(ctx context.Context, n *netlist.Netlist, par *extract.Parasitics, opt Options) (*Result, error) {
	if opt.InputSlew <= 0 {
		opt.InputSlew = 40
	}
	if opt.PrimaryOutputLoad <= 0 {
		opt.PrimaryOutputLoad = 8
	}
	lv, err := n.Levelize()
	if err != nil {
		return nil, err
	}
	a := &analyzer{n: n, par: par, opt: opt, ctx: ctx, order: lv.Order,
		slowSeen: make([]bool, len(n.Cells)),
		poExtra:  make([]float64, len(n.Nets))}
	for _, po := range n.POs {
		if po.Net != netlist.NoNet {
			a.poExtra[po.Net] = opt.PrimaryOutputLoad
		}
	}
	a.propagateConstants()

	res := &Result{
		ClkArrival: make([]float64, len(n.Cells)),
		PerDomain:  make([]PathReport, len(n.Domains)),
		WorstSkew:  make([]float64, len(n.Domains)),
	}
	for i := range res.ClkArrival {
		res.ClkArrival[i] = math.NaN()
	}

	// Pass 1: clock-tree arrivals. Only clock roots are timing sources;
	// everything reachable (the buffer trees) gets an arrival.
	a.reset()
	for dom := range n.Domains {
		root := n.PIs[n.Domains[dom].ClockPI].Net
		a.at[root] = 0
		a.slew[root] = opt.InputSlew
	}
	if err := a.propagate(); err != nil {
		return nil, err
	}
	ffs := n.FlipFlops()
	for _, ff := range ffs {
		c := &n.Cells[ff]
		pin := c.Cell.FindInput("clk")
		clkNet := c.Ins[pin]
		if a.at[clkNet] == negInf {
			return nil, fmt.Errorf("sta: flop %s has no timed clock path", c.Name)
		}
		res.ClkArrival[ff] = a.at[clkNet] + a.par.WireDelay(clkNet)
	}
	for dom := range n.Domains {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, ff := range ffs {
			if n.Cells[ff].Domain != dom {
				continue
			}
			v := res.ClkArrival[ff]
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if hi >= lo {
			res.WorstSkew[dom] = hi - lo
		}
	}

	// Pass 2, per domain: launch from that domain's flops (and primary
	// inputs at t=0), capture at that domain's flops. Cross-domain paths
	// are excluded, as in the paper's false-path blocking.
	for dom := range n.Domains {
		rep, err := a.domainPass(dom, res.ClkArrival)
		if err != nil {
			return nil, err
		}
		res.PerDomain[dom] = rep
	}
	res.SlowNodes = a.slow
	if sp := opt.Telemetry; sp != nil {
		sp.Counter("sta.domains").Add(int64(len(res.PerDomain)))
		sp.Counter("sta.slow_nodes").Add(int64(res.SlowNodes))
		pathCells, worstTcp, worstSkew := 0, 0.0, 0.0
		for _, rep := range res.PerDomain {
			pathCells += len(rep.PathCells)
			worstTcp = math.Max(worstTcp, rep.Tcp)
		}
		for _, sk := range res.WorstSkew {
			worstSkew = math.Max(worstSkew, sk)
		}
		sp.Counter("sta.path_cells").Add(int64(pathCells))
		sp.Gauge("sta.critical_tcp_ps").Set(worstTcp)
		sp.Gauge("sta.worst_skew_ps").Set(worstSkew)
	}
	return res, nil
}

const negInf = math.SmallestNonzeroFloat64 - math.MaxFloat64

func (a *analyzer) reset() {
	nNets := len(a.n.Nets)
	if a.at == nil {
		a.at = make([]float64, nNets)
		a.slew = make([]float64, nNets)
		a.from = make([]arc, nNets)
	}
	for i := 0; i < nNets; i++ {
		a.at[i] = negInf
		a.slew[i] = a.opt.InputSlew
		a.from[i] = arc{fromNet: netlist.NoNet, viaCell: netlist.NoCell}
	}
}

// propagateConstants computes application-mode constants over the logic.
func (a *analyzer) propagateConstants() {
	n := a.n
	a.cons = make([]int8, len(n.Nets))
	for i := range a.cons {
		a.cons[i] = -1
		if n.Nets[i].Const >= 0 {
			a.cons[i] = n.Nets[i].Const
		}
	}
	for net, v := range a.opt.Constraints {
		a.cons[net] = v
	}
	val := func(id netlist.NetID) uint8 {
		if a.cons[id] < 0 {
			return 2
		}
		return uint8(a.cons[id])
	}
	var insBuf [8]uint8
	for _, ci := range a.order {
		c := &a.n.Cells[ci]
		if a.cons[c.Out] >= 0 {
			continue
		}
		ins := insBuf[:len(c.Ins)]
		for i, in := range c.Ins {
			ins[i] = val(in)
		}
		if out := eval3c(c.Cell.Kind, ins); out != 2 {
			a.cons[c.Out] = int8(out)
		}
	}
}

// activeArc reports whether the arc from input pin into cell c is
// sensitizable under case analysis: constant inputs launch nothing, and a
// mux with a constant select only passes its selected data input.
func (a *analyzer) activeArc(c *netlist.Instance, pin int) bool {
	in := c.Ins[pin]
	if a.cons[in] >= 0 || (c.Out != netlist.NoNet && a.cons[c.Out] >= 0) {
		return false
	}
	if c.Cell.Kind == stdcell.KindMux2 {
		if sv := a.cons[c.Ins[2]]; sv >= 0 {
			// Select frozen: only the selected data arc is real.
			if (sv == 0 && pin != 0) || (sv == 1 && pin != 1) {
				return false
			}
		}
	}
	return true
}

// propagate sweeps the levelized order once, computing worst arrivals.
// The context is checked every few thousand cells — the cancellation
// work unit of the analysis.
func (a *analyzer) propagate() error {
	for i, ci := range a.order {
		if i&4095 == 0 && a.ctx != nil {
			if err := a.ctx.Err(); err != nil {
				return err
			}
		}
		a.evalCell(ci)
	}
	return nil
}

func (a *analyzer) evalCell(ci netlist.CellID) {
	c := &a.n.Cells[ci]
	out := c.Out
	if out == netlist.NoNet {
		return
	}
	load := a.par.TotalLoad(out) + a.poLoad(out)
	for pin, in := range c.Ins {
		if in == netlist.NoNet || a.at[in] == negInf || !a.activeArc(c, pin) {
			continue
		}
		inAT := a.at[in] + a.par.WireDelay(in)
		inSlew := a.slew[in]
		d, intrin, ldep, oslew, ex := a.cellDelay(c.Cell, inSlew, load)
		if ex && !a.slowSeen[ci] {
			a.slowSeen[ci] = true
			a.slow++
		}
		if t := inAT + d; t > a.at[out] {
			a.at[out] = t
			a.slew[out] = oslew
			a.from[out] = arc{fromNet: in, viaCell: ci,
				wire: a.par.WireDelay(in), intrin: intrin, loadDep: ldep}
		}
	}
}

// poLoad adds the external load when the net drives a primary output.
func (a *analyzer) poLoad(net netlist.NetID) float64 { return a.poExtra[net] }

// cellDelay evaluates the NLDM tables, splitting the delay into intrinsic
// (the zero-load, fast-edge table corner) and load/slew-dependent parts.
func (a *analyzer) cellDelay(cell *stdcell.Cell, slew, load float64) (d, intrin, loadDep, outSlew float64, extrapolated bool) {
	d, ex1 := cell.Delay.Lookup(slew, load)
	intrin = cell.Delay.Values[0][0]
	if d < intrin {
		intrin = d // extrapolation below the corner: keep the split sane
	}
	loadDep = d - intrin
	outSlew, ex2 := cell.OutSlew.Lookup(slew, load)
	return d, intrin, loadDep, outSlew, ex1 || ex2
}

// domainPass computes the critical path captured by flops of one domain.
func (a *analyzer) domainPass(dom int, clkArr []float64) (PathReport, error) {
	n := a.n
	a.reset()
	// Sources: primary inputs (non-clock, unconstrained) at t=0 and this
	// domain's flop outputs at clkArr + clk→q.
	for _, pi := range n.PIs {
		if pi.Clock {
			continue
		}
		if _, frozen := a.opt.Constraints[pi.Net]; frozen {
			continue
		}
		a.at[pi.Net] = 0
		a.slew[pi.Net] = a.opt.InputSlew
	}
	ffs := n.FlipFlops()
	for _, ff := range ffs {
		c := &n.Cells[ff]
		if c.Domain != dom || c.Out == netlist.NoNet {
			continue
		}
		load := a.par.TotalLoad(c.Out) + a.poLoad(c.Out)
		d, intrin, ldep, oslew, ex := a.cellDelay(c.Cell, a.opt.InputSlew, load)
		if ex && !a.slowSeen[ff] {
			a.slowSeen[ff] = true
			a.slow++
		}
		a.at[c.Out] = clkArr[ff] + d
		a.slew[c.Out] = oslew
		a.from[c.Out] = arc{fromNet: netlist.NoNet, viaCell: ff,
			intrin: intrin, loadDep: ldep, isSource: true}
	}
	if err := a.propagate(); err != nil {
		return PathReport{}, err
	}

	// Endpoints: d pins of this domain's flops.
	rep := PathReport{Domain: dom, Tcp: -1}
	var worstFF netlist.CellID = netlist.NoCell
	var worstD netlist.NetID = netlist.NoNet
	for _, ff := range ffs {
		c := &n.Cells[ff]
		if c.Domain != dom {
			continue
		}
		di := c.Cell.FindInput("d")
		if di < 0 {
			continue
		}
		dNet := c.Ins[di]
		if a.at[dNet] == negInf {
			continue
		}
		arrive := a.at[dNet] + a.par.WireDelay(dNet)
		tcp := arrive + c.Cell.Setup - clkArr[ff]
		if tcp > rep.Tcp {
			rep.Tcp = tcp
			worstFF = ff
			worstD = dNet
		}
	}
	if worstFF == netlist.NoCell {
		return rep, nil // domain with no timed register-to-register path
	}
	a.fillReport(&rep, worstFF, worstD, clkArr)
	return rep, nil
}

// fillReport backtracks the worst path and produces the Eq. 3 split.
func (a *analyzer) fillReport(rep *PathReport, capture netlist.CellID, dNet netlist.NetID, clkArr []float64) {
	n := a.n
	c := &n.Cells[capture]
	rep.Launch = netlist.NoCell // stays NoCell for primary-input launches
	rep.Capture = capture
	rep.TSetup = c.Cell.Setup
	rep.TWires = a.par.WireDelay(dNet)

	net := dNet
	for {
		ar := a.from[net]
		if ar.viaCell == netlist.NoCell {
			break // primary-input launch
		}
		rep.TIntrinsic += ar.intrin
		rep.TLoadDep += ar.loadDep
		rep.PathCells = append(rep.PathCells, ar.viaCell)
		if ar.isSource {
			rep.Launch = ar.viaCell
			break
		}
		rep.TWires += ar.wire
		net = ar.fromNet
	}
	// Reverse into launch→capture order.
	for i, j := 0, len(rep.PathCells)-1; i < j; i, j = i+1, j-1 {
		rep.PathCells[i], rep.PathCells[j] = rep.PathCells[j], rep.PathCells[i]
	}
	if rep.Launch != netlist.NoCell && !math.IsNaN(clkArr[rep.Launch]) {
		rep.TSkew = clkArr[rep.Launch] - clkArr[rep.Capture]
	}
	if rep.Tcp > 0 {
		rep.FmaxMHz = 1e6 / rep.Tcp
	}
}

// eval3c is three-valued constant evaluation (2 = unknown).
func eval3c(kind stdcell.Kind, in []uint8) uint8 {
	not := func(v uint8) uint8 {
		if v == 2 {
			return 2
		}
		return 1 - v
	}
	and := func(vs ...uint8) uint8 {
		r := uint8(1)
		for _, v := range vs {
			if v == 0 {
				return 0
			}
			if v == 2 {
				r = 2
			}
		}
		return r
	}
	or := func(vs ...uint8) uint8 {
		r := uint8(0)
		for _, v := range vs {
			if v == 1 {
				return 1
			}
			if v == 2 {
				r = 2
			}
		}
		return r
	}
	switch kind {
	case stdcell.KindInv:
		return not(in[0])
	case stdcell.KindBuf:
		return in[0]
	case stdcell.KindNand:
		return not(and(in...))
	case stdcell.KindNor:
		return not(or(in...))
	case stdcell.KindAnd:
		return and(in...)
	case stdcell.KindOr:
		return or(in...)
	case stdcell.KindXor, stdcell.KindXnor:
		if in[0] == 2 || in[1] == 2 {
			return 2
		}
		v := in[0] ^ in[1]
		if kind == stdcell.KindXnor {
			return 1 - v
		}
		return v
	case stdcell.KindAoi21:
		return not(or(and(in[0], in[1]), in[2]))
	case stdcell.KindOai21:
		return not(and(or(in[0], in[1]), in[2]))
	case stdcell.KindMux2:
		switch in[2] {
		case 0:
			return in[0]
		case 1:
			return in[1]
		default:
			if in[0] == in[1] {
				return in[0]
			}
			return 2
		}
	}
	return 2
}
