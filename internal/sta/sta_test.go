package sta

import (
	"math"
	"testing"

	"tpilayout/internal/circuitgen"
	"tpilayout/internal/extract"
	"tpilayout/internal/netlist"
	"tpilayout/internal/place"
	"tpilayout/internal/route"
	"tpilayout/internal/stdcell"
)

// ffPair builds: ff1.q -> INV -> ff2.d, one clock, no wire parasitics.
func ffPair(t testing.TB) (*netlist.Netlist, *extract.Parasitics) {
	t.Helper()
	lib := stdcell.Default()
	n := netlist.New("pair", lib)
	clk, dom := n.AddClockPI("clk", 10000)
	d0 := n.AddPI("d0")
	q1 := n.AddNet("q1")
	w := n.AddNet("w")
	q2 := n.AddNet("q2")
	f1 := n.AddCell("ff1", lib.MustCell("DFFX1"), []netlist.NetID{d0, clk}, q1)
	n.AddCell("inv", lib.MustCell("INVX1"), []netlist.NetID{q1}, w)
	f2 := n.AddCell("ff2", lib.MustCell("DFFX1"), []netlist.NetID{w, clk}, q2)
	n.Cells[f1].Domain = dom
	n.Cells[f2].Domain = dom
	n.AddPO("q2", q2)
	par := extract.Extract(n, nil)
	return n, par
}

func TestHandComputedPath(t *testing.T) {
	n, par := ffPair(t)
	res, err := Analyze(n, par, Options{InputSlew: 40})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.PerDomain[0]
	lib := n.Lib
	dff := lib.MustCell("DFFX1")
	inv := lib.MustCell("INVX1")
	// Loads: q1 drives inv.a (2 fF); w drives ff2.d (1.8 fF).
	dClk2Q, _ := dff.Delay.Lookup(40, 2.0)
	sQ, _ := dff.OutSlew.Lookup(40, 2.0)
	dInv, _ := inv.Delay.Lookup(sQ, 1.8)
	want := dClk2Q + dInv + dff.Setup
	if math.Abs(rep.Tcp-want) > 1e-9 {
		t.Errorf("Tcp = %.3f, hand computation %.3f", rep.Tcp, want)
	}
	if rep.TSkew != 0 {
		t.Errorf("skew %.3f on an unbuffered shared clock, want 0", rep.TSkew)
	}
	if rep.TWires != 0 {
		t.Errorf("wire delay %.3f with no parasitics", rep.TWires)
	}
	if rep.TSetup != dff.Setup {
		t.Errorf("setup %.3f, want %.3f", rep.TSetup, dff.Setup)
	}
	if got := rep.TIntrinsic + rep.TLoadDep; math.Abs(got-(dClk2Q+dInv)) > 1e-9 {
		t.Errorf("cell delay split %.3f, want %.3f", got, dClk2Q+dInv)
	}
	if len(rep.PathCells) != 2 { // launch flop + inverter
		t.Errorf("path cells = %d, want 2", len(rep.PathCells))
	}
	if rep.FmaxMHz <= 0 {
		t.Error("Fmax not computed")
	}
}

func TestEq3DecompositionIdentity(t *testing.T) {
	// On a full layout flow, the reported components must sum to Tcp
	// exactly (Eq. 3 of the paper).
	lib := stdcell.Default()
	n, err := circuitgen.Generate(circuitgen.S38417Class().Scale(0.03), lib)
	if err != nil {
		t.Fatal(err)
	}
	p, err := place.Place(n, place.Options{TargetUtilization: 0.90})
	if err != nil {
		t.Fatal(err)
	}
	r := route.Route(p, route.Options{})
	par := extract.Extract(n, r)
	res, err := Analyze(n, par, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range res.PerDomain {
		if rep.Tcp <= 0 {
			t.Fatal("no critical path found")
		}
		sum := rep.TWires + rep.TIntrinsic + rep.TLoadDep + rep.TSetup + rep.TSkew
		if math.Abs(sum-rep.Tcp) > 1e-6 {
			t.Errorf("domain %d: components sum to %.3f, Tcp = %.3f", rep.Domain, sum, rep.Tcp)
		}
	}
}

func TestCaseAnalysisBlocksScanPath(t *testing.T) {
	// ff1.q --(long buffer chain)--> mux.b ; pi -> mux.a ; mux -> ff2.d.
	// With the select constrained to 0 the long path is false and Tcp is
	// short; unconstrained, the long path dominates.
	lib := stdcell.Default()
	n := netlist.New("case", lib)
	clk, dom := n.AddClockPI("clk", 10000)
	d0 := n.AddPI("d0")
	sel := n.AddPI("sel")
	q1 := n.AddNet("q1")
	f1 := n.AddCell("ff1", lib.MustCell("DFFX1"), []netlist.NetID{d0, clk}, q1)
	n.Cells[f1].Domain = dom
	long := q1
	for i := 0; i < 10; i++ {
		id, out := n.InsertOnNet("chain", "BUFX1", long, []netlist.Load{})
		_ = id
		long = out
	}
	muxOut := n.AddNet("muxout")
	n.AddCell("m", lib.MustCell("MUX2X1"), []netlist.NetID{d0, long, sel}, muxOut)
	q2 := n.AddNet("q2")
	f2 := n.AddCell("ff2", lib.MustCell("DFFX1"), []netlist.NetID{muxOut, clk}, q2)
	n.Cells[f2].Domain = dom
	n.AddPO("q2", q2)
	par := extract.Extract(n, nil)

	free, err := Analyze(n, par, Options{})
	if err != nil {
		t.Fatal(err)
	}
	blocked, err := Analyze(n, par, Options{Constraints: map[netlist.NetID]int8{sel: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if blocked.PerDomain[0].Tcp >= free.PerDomain[0].Tcp {
		t.Errorf("case analysis did not shorten the path: %.1f vs %.1f",
			blocked.PerDomain[0].Tcp, free.PerDomain[0].Tcp)
	}
}

func TestSlowNodesFlagged(t *testing.T) {
	// One inverter driving a load far beyond the table range.
	lib := stdcell.Default()
	n := netlist.New("slow", lib)
	clk, dom := n.AddClockPI("clk", 10000)
	d0 := n.AddPI("d0")
	q1 := n.AddNet("q1")
	w := n.AddNet("w")
	f1 := n.AddCell("ff1", lib.MustCell("DFFX1"), []netlist.NetID{d0, clk}, q1)
	n.Cells[f1].Domain = dom
	n.AddCell("inv", lib.MustCell("INVX1"), []netlist.NetID{q1}, w)
	// Fan out to 40 flops: 40 × 1.8 fF = 72 fF plus wire — within range;
	// use a huge synthetic wire cap instead.
	q2 := n.AddNet("q2")
	f2 := n.AddCell("ff2", lib.MustCell("DFFX1"), []netlist.NetID{w, clk}, q2)
	n.Cells[f2].Domain = dom
	n.AddPO("q2", q2)
	par := extract.Extract(n, nil)
	par.WireC[w] = 4000 // fF, far beyond the 256 fF table edge
	res, err := Analyze(n, par, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SlowNodes == 0 {
		t.Error("extrapolated lookup not reported as a slow node")
	}
}

func TestTwoDomainsSeparated(t *testing.T) {
	lib := stdcell.Default()
	n, err := circuitgen.Generate(circuitgen.WirelessCtrlClass().Scale(0.03), lib)
	if err != nil {
		t.Fatal(err)
	}
	p, err := place.Place(n, place.Options{TargetUtilization: 0.90})
	if err != nil {
		t.Fatal(err)
	}
	r := route.Route(p, route.Options{})
	par := extract.Extract(n, r)
	res, err := Analyze(n, par, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerDomain) != 2 {
		t.Fatalf("expected 2 domain reports, got %d", len(res.PerDomain))
	}
	for dom, rep := range res.PerDomain {
		if rep.Tcp <= 0 {
			t.Errorf("domain %d has no critical path", dom)
			continue
		}
		// Launch and capture must both sit in this domain.
		if rep.Launch != netlist.NoCell && n.Cells[rep.Launch].Domain != dom {
			t.Errorf("domain %d path launched from domain %d", dom, n.Cells[rep.Launch].Domain)
		}
		if n.Cells[rep.Capture].Domain != dom {
			t.Errorf("domain %d path captured in domain %d", dom, n.Cells[rep.Capture].Domain)
		}
	}
}
