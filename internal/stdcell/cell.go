// Package stdcell models a CMOS standard-cell library in the style of the
// 130 nm, six-metal-layer Philips library used in the paper. It provides
// cell geometry (row-height cells with per-cell width), pin capacitances,
// and non-linear delay-model (NLDM) timing tables indexed by input slew and
// output load, including the out-of-range extrapolation that the paper's
// STA tool (Pearl) reports as "slow nodes".
//
// All physical units are fixed across the library:
//
//	length      µm
//	area        µm²
//	capacitance fF
//	resistance  kΩ
//	time        ps
package stdcell

import "fmt"

// Kind identifies the logic function of a cell. The simulator, testability
// analysis, ATPG and STA all dispatch on Kind, so a library may carry many
// drive-strength variants of the same Kind.
type Kind int

// Cell kinds. Combinational kinds come first, then sequential, then
// non-logic physical cells.
const (
	KindInvalid Kind = iota
	KindInv
	KindBuf
	KindNand
	KindNor
	KindAnd
	KindOr
	KindXor
	KindXnor
	KindAoi21 // y = !(a*b + c)
	KindOai21 // y = !((a+b) * c)
	KindMux2  // y = s ? b : a
	KindDff   // D flip-flop: D, CLK -> Q
	KindSdff  // scan D flip-flop: D, SI, SE, CLK -> Q (mux-D)
	KindFill  // filler cell: no pins, pure area
	KindAntenna
)

// String returns the lower-case mnemonic for the kind.
func (k Kind) String() string {
	switch k {
	case KindInv:
		return "inv"
	case KindBuf:
		return "buf"
	case KindNand:
		return "nand"
	case KindNor:
		return "nor"
	case KindAnd:
		return "and"
	case KindOr:
		return "or"
	case KindXor:
		return "xor"
	case KindXnor:
		return "xnor"
	case KindAoi21:
		return "aoi21"
	case KindOai21:
		return "oai21"
	case KindMux2:
		return "mux2"
	case KindDff:
		return "dff"
	case KindSdff:
		return "sdff"
	case KindFill:
		return "fill"
	case KindAntenna:
		return "antenna"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// IsSequential reports whether the kind is a flip-flop.
func (k Kind) IsSequential() bool { return k == KindDff || k == KindSdff }

// IsPhysicalOnly reports whether the kind carries no logic (filler etc.).
func (k Kind) IsPhysicalOnly() bool { return k == KindFill || k == KindAntenna }

// Pin describes one cell pin.
type Pin struct {
	Name  string
	Cap   float64 // input capacitance in fF (0 for outputs)
	Clock bool    // true for the clock pin of a sequential cell
}

// Cell is one library cell (a specific drive strength of a Kind).
type Cell struct {
	Name   string // library cell name, e.g. "NAND2X1"
	Kind   Kind
	Inputs []Pin  // data inputs in functional order; see eval conventions below
	Output string // output pin name ("" for physical-only cells)

	// Geometry. All cells are one row high; Width is the placed footprint.
	Width  float64 // µm
	Height float64 // µm (equal to Library.RowHeight)

	// Timing. Delay/OutSlew describe the input-to-output arc (for
	// flip-flops: the CLK→Q arc). Setup/Hold apply to the D input of
	// sequential cells, relative to CLK.
	Delay   Table // arc delay in ps, indexed (input slew, output load)
	OutSlew Table // output slew in ps, same indexing
	Setup   float64
	Hold    float64

	// Drive is the equivalent output resistance in kΩ; kept for quick
	// analytic estimates (fanout planning, clock-tree sizing). The NLDM
	// tables are authoritative for STA.
	Drive float64

	// MaxLoad is the library's characterized load ceiling in fF. STA flags
	// a "slow node" whenever table lookup must extrapolate beyond the
	// table axes; MaxLoad doubles as the router/CTS buffering target.
	MaxLoad float64
}

// Area returns the placed cell area in µm².
func (c *Cell) Area() float64 { return c.Width * c.Height }

// InputCap returns the capacitance of the named input pin, or 0 if the pin
// does not exist.
func (c *Cell) InputCap(pin string) float64 {
	for _, p := range c.Inputs {
		if p.Name == pin {
			return p.Cap
		}
	}
	return 0
}

// FindInput returns the index of the named input pin, or -1.
func (c *Cell) FindInput(pin string) int {
	for i, p := range c.Inputs {
		if p.Name == pin {
			return i
		}
	}
	return -1
}

// ClockPin returns the name of the clock pin of a sequential cell, or "".
func (c *Cell) ClockPin() string {
	for _, p := range c.Inputs {
		if p.Clock {
			return p.Name
		}
	}
	return ""
}

// Input pin-order conventions, relied on by the simulator and ATPG:
//
//	inv, buf:          a
//	nand/nor/and/or:   a, b[, c[, d]]
//	xor, xnor:         a, b
//	aoi21:             a, b, c         y = !(a&b | c)
//	oai21:             a, b, c         y = !((a|b) & c)
//	mux2:              a, b, s         y = s ? b : a
//	dff:               d, clk
//	sdff:              d, si, se, clk  d' = se ? si : d
