package stdcell

import (
	"fmt"
	"sort"
)

// Library is a coherent set of standard cells plus the process constants
// (row geometry, wire RC) that the physical-design packages need.
type Library struct {
	Name      string
	RowHeight float64 // µm; all cells are exactly one row high
	SiteWidth float64 // µm; placement grid pitch along a row

	// Wire parasitics for the routing layers actually used for signal
	// nets (the default library models a 6-metal 130 nm stack but routes
	// signals on an averaged M2/M3 layer).
	WireResPerUM float64 // kΩ/µm
	WireCapPerUM float64 // fF/µm

	cells  map[string]*Cell
	byKind map[Kind][]*Cell // each list sorted by ascending Drive strength (descending resistance)
}

// NewLibrary returns an empty library with the given process constants.
func NewLibrary(name string, rowHeight, siteWidth, wireRes, wireCap float64) *Library {
	return &Library{
		Name:         name,
		RowHeight:    rowHeight,
		SiteWidth:    siteWidth,
		WireResPerUM: wireRes,
		WireCapPerUM: wireCap,
		cells:        make(map[string]*Cell),
		byKind:       make(map[Kind][]*Cell),
	}
}

// Add registers a cell. It panics on duplicate names: the library is
// assembled once at startup and a duplicate is a programming error.
func (l *Library) Add(c *Cell) {
	if _, dup := l.cells[c.Name]; dup {
		panic(fmt.Sprintf("stdcell: duplicate cell %q", c.Name))
	}
	c.Height = l.RowHeight
	l.cells[c.Name] = c
	list := append(l.byKind[c.Kind], c)
	// Drive is an output resistance, so the strongest cell has the
	// smallest Drive; keep strongest-first order.
	sort.Slice(list, func(i, j int) bool { return list[i].Drive < list[j].Drive })
	l.byKind[c.Kind] = list
}

// Cell returns the named cell, or nil.
func (l *Library) Cell(name string) *Cell { return l.cells[name] }

// MustCell returns the named cell and panics if it does not exist.
func (l *Library) MustCell(name string) *Cell {
	c := l.cells[name]
	if c == nil {
		panic(fmt.Sprintf("stdcell: no cell %q in library %s", name, l.Name))
	}
	return c
}

// Weakest returns the minimum-drive cell of the kind (the paper maps
// ISCAS'89 s38417 to "the corresponding standard cell with minimum drive
// strength"). For multi-input kinds, ninputs selects the fan-in. It returns
// nil if no such cell exists.
func (l *Library) Weakest(k Kind, ninputs int) *Cell {
	var best *Cell
	for _, c := range l.byKind[k] {
		if len(c.Inputs) != ninputs && !k.IsSequential() && !k.IsPhysicalOnly() {
			continue
		}
		if best == nil || c.Drive > best.Drive {
			best = c
		}
	}
	return best
}

// Strongest returns the maximum-drive cell of the kind with the given
// fan-in, or nil.
func (l *Library) Strongest(k Kind, ninputs int) *Cell {
	for _, c := range l.byKind[k] {
		if len(c.Inputs) == ninputs || k.IsSequential() || k.IsPhysicalOnly() {
			return c
		}
	}
	return nil
}

// Kind returns all cells of a kind, strongest drive first.
func (l *Library) Kind(k Kind) []*Cell { return l.byKind[k] }

// Cells returns all cells in deterministic (name) order.
func (l *Library) Cells() []*Cell {
	names := make([]string, 0, len(l.cells))
	for n := range l.cells {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Cell, len(names))
	for i, n := range names {
		out[i] = l.cells[n]
	}
	return out
}

// Fillers returns the filler cells sorted by descending width, the order a
// placer consumes them when plugging row gaps.
func (l *Library) Fillers() []*Cell {
	fills := append([]*Cell(nil), l.byKind[KindFill]...)
	sort.Slice(fills, func(i, j int) bool { return fills[i].Width > fills[j].Width })
	return fills
}

// Default builds the library used by all experiments: a plausible 130 nm,
// 6-metal standard-cell family. Absolute numbers are representative, not
// foundry data; the paper itself only relies on relative comparisons
// between layouts produced with the same library.
func Default() *Library {
	l := NewLibrary("pcmos130g", 3.70, 0.41, 0.00042, 0.195)

	type spec struct {
		name      string
		kind      Kind
		inputs    []Pin
		width     float64 // in sites
		intrinsic float64 // ps
		drive     float64 // kΩ
		slewSens  float64 // ps delay per ps of (compressed) input slew
	}

	in := func(names ...string) []Pin {
		pins := make([]Pin, len(names))
		for i, n := range names {
			pins[i] = Pin{Name: n, Cap: 2.0}
		}
		return pins
	}

	specs := []spec{
		// Inverters and buffers in four drive strengths.
		{"INVX1", KindInv, in("a"), 3, 18, 2.4, 0.10},
		{"INVX2", KindInv, in("a"), 4, 16, 1.2, 0.09},
		{"INVX4", KindInv, in("a"), 6, 15, 0.6, 0.08},
		{"INVX8", KindInv, in("a"), 10, 14, 0.3, 0.07},
		{"BUFX1", KindBuf, in("a"), 4, 38, 2.2, 0.08},
		{"BUFX2", KindBuf, in("a"), 5, 36, 1.1, 0.07},
		{"BUFX4", KindBuf, in("a"), 7, 34, 0.55, 0.06},
		{"BUFX8", KindBuf, in("a"), 11, 33, 0.28, 0.05},
		// NAND / NOR, 2-4 inputs, two strengths for the 2-input forms.
		{"NAND2X1", KindNand, in("a", "b"), 4, 24, 2.6, 0.11},
		{"NAND2X2", KindNand, in("a", "b"), 6, 22, 1.3, 0.10},
		{"NAND3X1", KindNand, in("a", "b", "c"), 5, 30, 2.9, 0.12},
		{"NAND4X1", KindNand, in("a", "b", "c", "d"), 6, 36, 3.2, 0.13},
		{"NOR2X1", KindNor, in("a", "b"), 4, 28, 3.0, 0.12},
		{"NOR2X2", KindNor, in("a", "b"), 6, 26, 1.5, 0.11},
		{"NOR3X1", KindNor, in("a", "b", "c"), 5, 36, 3.5, 0.13},
		{"NOR4X1", KindNor, in("a", "b", "c", "d"), 7, 44, 4.0, 0.14},
		// Non-inverting AND/OR (inverter folded in).
		{"AND2X1", KindAnd, in("a", "b"), 5, 40, 2.4, 0.10},
		{"AND3X1", KindAnd, in("a", "b", "c"), 6, 46, 2.6, 0.11},
		{"AND4X1", KindAnd, in("a", "b", "c", "d"), 7, 52, 2.8, 0.12},
		{"OR2X1", KindOr, in("a", "b"), 5, 44, 2.6, 0.11},
		{"OR3X1", KindOr, in("a", "b", "c"), 6, 52, 2.9, 0.12},
		{"OR4X1", KindOr, in("a", "b", "c", "d"), 7, 60, 3.2, 0.13},
		// XOR family and complex gates.
		{"XOR2X1", KindXor, in("a", "b"), 8, 55, 2.8, 0.13},
		{"XNOR2X1", KindXnor, in("a", "b"), 8, 57, 2.8, 0.13},
		{"AOI21X1", KindAoi21, in("a", "b", "c"), 5, 32, 3.0, 0.12},
		{"OAI21X1", KindOai21, in("a", "b", "c"), 5, 34, 3.1, 0.12},
		// 2:1 mux — the building block of scan muxes and the TSFF.
		{"MUX2X1", KindMux2, in("a", "b", "s"), 7, 48, 2.7, 0.12},
		{"MUX2X2", KindMux2, in("a", "b", "s"), 9, 44, 1.4, 0.11},
	}

	for _, s := range specs {
		l.Add(&Cell{
			Name:    s.name,
			Kind:    s.kind,
			Inputs:  s.inputs,
			Output:  "y",
			Width:   s.width * l.SiteWidth,
			Delay:   makeDelayTable(s.intrinsic, s.drive, s.slewSens),
			OutSlew: makeSlewTable(12, s.drive),
			Drive:   s.drive,
			MaxLoad: 256,
		})
	}

	// Flip-flops. The CLK→Q arc carries the cell delay; D (and SI/SE for
	// the scan flop) only contribute capacitance plus setup/hold.
	ff := func(name string, kind Kind, widthSites, intrinsic float64, pins []Pin) {
		l.Add(&Cell{
			Name:    name,
			Kind:    kind,
			Inputs:  pins,
			Output:  "q",
			Width:   widthSites * l.SiteWidth,
			Delay:   makeDelayTable(intrinsic, 2.0, 0.05),
			OutSlew: makeSlewTable(14, 2.0),
			Setup:   110,
			Hold:    25,
			Drive:   2.0,
			MaxLoad: 256,
		})
	}
	ff("DFFX1", KindDff, 16, 190, []Pin{
		{Name: "d", Cap: 1.8},
		{Name: "clk", Cap: 1.5, Clock: true},
	})
	ff("SDFFX1", KindSdff, 21, 205, []Pin{
		{Name: "d", Cap: 1.8},
		{Name: "si", Cap: 1.8},
		{Name: "se", Cap: 1.6},
		{Name: "clk", Cap: 1.5, Clock: true},
	})

	// Filler cells in power-of-two site widths.
	for _, w := range []float64{1, 2, 4, 8, 16} {
		l.Add(&Cell{
			Name:  fmt.Sprintf("FILL%d", int(w)),
			Kind:  KindFill,
			Width: w * l.SiteWidth,
		})
	}

	return l
}
