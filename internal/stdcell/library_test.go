package stdcell

import "testing"

func TestDefaultLibraryIsComplete(t *testing.T) {
	l := Default()
	// Every kind the netlist generator or DfT flow instantiates must
	// exist with the fan-ins it requests.
	wantFanins := map[Kind][]int{
		KindInv:   {1},
		KindBuf:   {1},
		KindNand:  {2, 3, 4},
		KindNor:   {2, 3, 4},
		KindAnd:   {2, 3, 4},
		KindOr:    {2, 3, 4},
		KindXor:   {2},
		KindXnor:  {2},
		KindAoi21: {3},
		KindOai21: {3},
		KindMux2:  {3},
	}
	for kind, fanins := range wantFanins {
		for _, n := range fanins {
			if l.Weakest(kind, n) == nil {
				t.Errorf("no %v cell with %d inputs", kind, n)
			}
		}
	}
	for _, name := range []string{"DFFX1", "SDFFX1", "MUX2X1", "BUFX4", "FILL1"} {
		if l.Cell(name) == nil {
			t.Errorf("missing cell %s", name)
		}
	}
}

func TestSequentialCellsHaveClockAndSetup(t *testing.T) {
	l := Default()
	for _, name := range []string{"DFFX1", "SDFFX1"} {
		c := l.MustCell(name)
		if c.ClockPin() != "clk" {
			t.Errorf("%s: clock pin = %q, want clk", name, c.ClockPin())
		}
		if c.Setup <= 0 {
			t.Errorf("%s: setup = %g, want > 0", name, c.Setup)
		}
	}
}

func TestDriveStrengthOrdering(t *testing.T) {
	l := Default()
	// Stronger cells must be wider and faster under load.
	x1, x4 := l.MustCell("INVX1"), l.MustCell("INVX4")
	if x4.Width <= x1.Width {
		t.Errorf("INVX4 width %g not greater than INVX1 width %g", x4.Width, x1.Width)
	}
	d1, _ := x1.Delay.Lookup(20, 64)
	d4, _ := x4.Delay.Lookup(20, 64)
	if d4 >= d1 {
		t.Errorf("INVX4 delay %g not faster than INVX1 delay %g at 64 fF", d4, d1)
	}
	// Weakest/Strongest agree with the ordering.
	if l.Weakest(KindInv, 1).Name != "INVX1" {
		t.Errorf("Weakest inv = %s, want INVX1", l.Weakest(KindInv, 1).Name)
	}
	if l.Strongest(KindInv, 1).Name != "INVX8" {
		t.Errorf("Strongest inv = %s, want INVX8", l.Strongest(KindInv, 1).Name)
	}
}

func TestFillersDescendingWidth(t *testing.T) {
	l := Default()
	fills := l.Fillers()
	if len(fills) == 0 {
		t.Fatal("no filler cells")
	}
	for i := 1; i < len(fills); i++ {
		if fills[i].Width > fills[i-1].Width {
			t.Errorf("fillers not sorted by descending width: %s after %s", fills[i].Name, fills[i-1].Name)
		}
	}
	if fills[len(fills)-1].Width != l.SiteWidth {
		t.Errorf("narrowest filler is %g µm, want one site (%g µm)", fills[len(fills)-1].Width, l.SiteWidth)
	}
}

func TestCellPinHelpers(t *testing.T) {
	l := Default()
	c := l.MustCell("SDFFX1")
	if got := c.InputCap("si"); got != 1.8 {
		t.Errorf("InputCap(si) = %g, want 1.8", got)
	}
	if got := c.InputCap("nope"); got != 0 {
		t.Errorf("InputCap(nope) = %g, want 0", got)
	}
	if got := c.FindInput("se"); got != 2 {
		t.Errorf("FindInput(se) = %d, want 2", got)
	}
	if got := c.FindInput("zz"); got != -1 {
		t.Errorf("FindInput(zz) = %d, want -1", got)
	}
	if c.Area() <= 0 {
		t.Error("Area() must be positive")
	}
}

func TestAddDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate cell name")
		}
	}()
	l := NewLibrary("x", 3.7, 0.41, 1e-4, 0.2)
	l.Add(&Cell{Name: "A", Kind: KindInv})
	l.Add(&Cell{Name: "A", Kind: KindInv})
}
