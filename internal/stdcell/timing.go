package stdcell

// Table is a two-dimensional NLDM lookup table: Values[i][j] is the table
// entry for input slew Slews[i] and output load Loads[j]. Both axes must be
// strictly increasing. Lookups between grid points use bilinear
// interpolation; lookups outside the grid use linear extrapolation from the
// nearest grid cell and report it, mirroring the paper's description of
// Pearl: "Extrapolation is used in these cases, which however results in
// less accurate results" — such cells are the paper's "slow nodes".
type Table struct {
	Slews  []float64   // ps, ascending
	Loads  []float64   // fF, ascending
	Values [][]float64 // ps; len(Values) == len(Slews), len(Values[i]) == len(Loads)
}

// Lookup evaluates the table at the given input slew and output load.
// extrapolated is true when either axis lies outside the characterized
// range, i.e. when a Pearl-style slow node would be reported.
func (t *Table) Lookup(slew, load float64) (value float64, extrapolated bool) {
	if len(t.Slews) == 0 || len(t.Loads) == 0 {
		return 0, false
	}
	i, fs, exS := axisLocate(t.Slews, slew)
	j, fl, exL := axisLocate(t.Loads, load)
	v00 := t.Values[i][j]
	v01 := t.Values[i][j+1]
	v10 := t.Values[i+1][j]
	v11 := t.Values[i+1][j+1]
	v0 := v00 + (v01-v00)*fl
	v1 := v10 + (v11-v10)*fl
	return v0 + (v1-v0)*fs, exS || exL
}

// axisLocate finds the interpolation segment for x on an ascending axis.
// It returns the lower index i of the segment [axis[i], axis[i+1]], the
// fractional position f within it (may be <0 or >1 when extrapolating),
// and whether x lies outside the axis range.
func axisLocate(axis []float64, x float64) (i int, f float64, outside bool) {
	n := len(axis)
	if n == 1 {
		return 0, 0, x != axis[0]
	}
	switch {
	case x < axis[0]:
		i, outside = 0, true
	case x > axis[n-1]:
		i, outside = n-2, true
	default:
		// Find the last i with axis[i] <= x, capped to n-2.
		i = n - 2
		for k := 1; k < n; k++ {
			if x < axis[k] {
				i = k - 1
				break
			}
		}
	}
	den := axis[i+1] - axis[i]
	if den == 0 {
		return i, 0, outside
	}
	return i, (x - axis[i]) / den, outside
}

// Standard characterization axes used throughout the default library.
// A real 130 nm library uses similar decade-spaced grids.
var (
	stdSlews = []float64{5, 20, 80, 320, 1280}
	stdLoads = []float64{1, 4, 16, 64, 256}
)

// makeDelayTable builds an NLDM delay table from a first-order analytic
// model: delay = intrinsic + drive·load + slewSens·slew, with a mild
// square-root compression of the slew term so the table is genuinely
// non-linear (interpolation then matters, and extrapolation genuinely
// degrades, as for real silicon).
func makeDelayTable(intrinsic, drive, slewSens float64) Table {
	return makeTable(func(s, l float64) float64 {
		return intrinsic + drive*l + slewSens*slewTerm(s)
	})
}

// makeSlewTable builds an NLDM output-slew table: the output edge rate is
// dominated by drive·load, with a floor and weak input-slew feedthrough.
func makeSlewTable(floor, drive float64) Table {
	return makeTable(func(s, l float64) float64 {
		return floor + 1.7*drive*l + 0.1*slewTerm(s)
	})
}

func makeTable(f func(slew, load float64) float64) Table {
	vals := make([][]float64, len(stdSlews))
	for i, s := range stdSlews {
		row := make([]float64, len(stdLoads))
		for j, l := range stdLoads {
			row[j] = f(s, l)
		}
		vals[i] = row
	}
	return Table{Slews: stdSlews, Loads: stdLoads, Values: vals}
}

// slewTerm compresses large input slews: the delay penalty of a slow input
// edge grows sub-linearly once the edge is much slower than the cell's own
// switching time.
func slewTerm(s float64) float64 {
	if s <= 80 {
		return s
	}
	// Continuous at s=80 with slope 0.5 beyond it.
	return 80 + 0.5*(s-80)
}
