package stdcell

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLookupAtGridPoints(t *testing.T) {
	tab := makeDelayTable(30, 2.0, 0.1)
	for i, s := range tab.Slews {
		for j, l := range tab.Loads {
			got, ex := tab.Lookup(s, l)
			if ex {
				t.Fatalf("Lookup(%g,%g) flagged extrapolation at a grid point", s, l)
			}
			if !approx(got, tab.Values[i][j], 1e-9) {
				t.Errorf("Lookup(%g,%g) = %g, want %g", s, l, got, tab.Values[i][j])
			}
		}
	}
}

func TestLookupInterpolatesBetweenPoints(t *testing.T) {
	tab := makeDelayTable(30, 2.0, 0.1)
	// Midpoint between two load grid points at a fixed slew grid point.
	s := tab.Slews[1]
	lmid := (tab.Loads[1] + tab.Loads[2]) / 2
	got, ex := tab.Lookup(s, lmid)
	want := (tab.Values[1][1] + tab.Values[1][2]) / 2
	if ex {
		t.Fatalf("unexpected extrapolation inside the grid")
	}
	if !approx(got, want, 1e-9) {
		t.Errorf("midpoint lookup = %g, want %g", got, want)
	}
}

func TestLookupExtrapolationFlag(t *testing.T) {
	tab := makeDelayTable(30, 2.0, 0.1)
	cases := []struct {
		slew, load float64
		want       bool
	}{
		{20, 16, false},
		{20, 500, true},    // load beyond the table
		{2000, 16, true},   // slew beyond the table
		{2000, 500, true},  // both
		{1, 16, true},      // below-range slew is also uncharacterized
		{20, 0.5, true},    // below-range load
		{1280, 256, false}, // exactly at the last grid point
	}
	for _, c := range cases {
		_, ex := tab.Lookup(c.slew, c.load)
		if ex != c.want {
			t.Errorf("Lookup(%g,%g) extrapolated=%v, want %v", c.slew, c.load, ex, c.want)
		}
	}
}

func TestLookupExtrapolationIsLinearContinuation(t *testing.T) {
	// Beyond the grid the table must continue the last segment's slope,
	// i.e. for the (linear-in-load) delay model the extrapolated value
	// matches the analytic model exactly.
	tab := makeDelayTable(30, 2.0, 0)
	got, ex := tab.Lookup(20, 512)
	if !ex {
		t.Fatalf("expected extrapolation at load 512")
	}
	want := 30 + 2.0*512 + 0*20.0
	if !approx(got, want, 1e-6) {
		t.Errorf("extrapolated delay = %g, want %g", got, want)
	}
}

func TestLookupMonotonicInLoad(t *testing.T) {
	tab := makeDelayTable(25, 1.5, 0.1)
	f := func(slewSeed, l1Seed, l2Seed uint16) bool {
		slew := 5 + float64(slewSeed%1200)
		la := 1 + float64(l1Seed%250)
		lb := la + float64(l2Seed%100)
		va, _ := tab.Lookup(slew, la)
		vb, _ := tab.Lookup(slew, lb)
		return vb >= va-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAxisLocateEdges(t *testing.T) {
	axis := []float64{1, 4, 16}
	i, f, out := axisLocate(axis, 4)
	if out || i != 1 || !approx(f, 0, 1e-12) {
		t.Errorf("locate(4): i=%d f=%g out=%v", i, f, out)
	}
	i, f, out = axisLocate(axis, 0.5)
	if !out || i != 0 || f >= 0 {
		t.Errorf("locate(0.5): i=%d f=%g out=%v", i, f, out)
	}
	i, f, out = axisLocate(axis, 32)
	if !out || i != 1 || f <= 1 {
		t.Errorf("locate(32): i=%d f=%g out=%v", i, f, out)
	}
}
