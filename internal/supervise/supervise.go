// Package supervise provides the panic-isolation primitives of the
// supervised flow runner: a typed PanicError that carries the panicking
// goroutine's stack across goroutine boundaries, and helpers to capture
// panics at supervision points (sweep workers, fault-sim shards, flow
// stages) so that one crashing work unit degrades into an error instead
// of killing the process.
package supervise

import (
	"fmt"
	"runtime/debug"
)

// PanicError is a recovered panic promoted to an error. Stack is the
// stack of the goroutine that panicked, captured at the recovery point —
// which, for worker-pool panics, is the worker goroutine itself, not the
// supervisor that ultimately reports the error.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v", e.Value)
}

// AsPanicError converts a recovered value (the result of recover()) into
// a *PanicError. A value that already is a *PanicError passes through
// unchanged, preserving the original goroutine's stack; anything else is
// wrapped with the current stack.
func AsPanicError(r any) *PanicError {
	if pe, ok := r.(*PanicError); ok {
		return pe
	}
	return &PanicError{Value: r, Stack: debug.Stack()}
}

// Recovered is a deferred-position helper: call as
//
//	defer func() {
//		if pe := supervise.Recovered(recover()); pe != nil {
//			err = pe
//		}
//	}()
//
// It returns nil when there was no panic.
func Recovered(r any) *PanicError {
	if r == nil {
		return nil
	}
	return AsPanicError(r)
}
