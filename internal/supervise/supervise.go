// Package supervise provides the panic-isolation primitives of the
// supervised flow runner: a typed PanicError that carries the panicking
// goroutine's stack across goroutine boundaries, and helpers to capture
// panics at supervision points (sweep workers, fault-sim shards, flow
// stages) so that one crashing work unit degrades into an error instead
// of killing the process.
package supervise

import (
	"fmt"
	"runtime/debug"
	"sync/atomic"
)

// PanicError is a recovered panic promoted to an error. Stack is the
// stack of the goroutine that panicked, captured at the recovery point —
// which, for worker-pool panics, is the worker goroutine itself, not the
// supervisor that ultimately reports the error.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v", e.Value)
}

// onPanic holds the process-wide panic observer (func(*PanicError)).
var onPanic atomic.Value

// SetOnPanic registers fn to be called once per freshly captured panic
// — at the recovery point, before the error propagates — so a daemon
// can dump its flight recorder the instant something blows up. A
// *PanicError passing through AsPanicError again (supervisor re-wrap)
// does not re-fire. fn runs on the panicking goroutine and must not
// panic itself. Pass nil to unregister.
func SetOnPanic(fn func(*PanicError)) {
	if fn == nil {
		onPanic.Store((func(*PanicError))(nil))
		return
	}
	onPanic.Store(fn)
}

// AsPanicError converts a recovered value (the result of recover()) into
// a *PanicError. A value that already is a *PanicError passes through
// unchanged, preserving the original goroutine's stack; anything else is
// wrapped with the current stack (and reported to the SetOnPanic
// observer, if one is registered).
func AsPanicError(r any) *PanicError {
	if pe, ok := r.(*PanicError); ok {
		return pe
	}
	pe := &PanicError{Value: r, Stack: debug.Stack()}
	if fn, ok := onPanic.Load().(func(*PanicError)); ok && fn != nil {
		fn(pe)
	}
	return pe
}

// Recovered is a deferred-position helper: call as
//
//	defer func() {
//		if pe := supervise.Recovered(recover()); pe != nil {
//			err = pe
//		}
//	}()
//
// It returns nil when there was no panic.
func Recovered(r any) *PanicError {
	if r == nil {
		return nil
	}
	return AsPanicError(r)
}
