package supervise

import (
	"errors"
	"strings"
	"testing"
)

func TestAsPanicErrorCapturesStack(t *testing.T) {
	var pe *PanicError
	func() {
		defer func() { pe = AsPanicError(recover()) }()
		panic("boom")
	}()
	if pe == nil || pe.Value != "boom" {
		t.Fatalf("pe = %+v", pe)
	}
	if !strings.Contains(pe.Error(), "boom") {
		t.Errorf("Error() = %q", pe.Error())
	}
	// The stack must name this test function — the panicking goroutine.
	if !strings.Contains(string(pe.Stack), "TestAsPanicErrorCapturesStack") {
		t.Errorf("stack does not name the panicking frame:\n%s", pe.Stack)
	}
}

func TestAsPanicErrorPassthroughPreservesStack(t *testing.T) {
	orig := &PanicError{Value: "inner", Stack: []byte("shard goroutine stack")}
	got := AsPanicError(orig)
	if got != orig {
		t.Fatal("re-wrapped an existing PanicError, losing the original stack")
	}
}

func TestRecovered(t *testing.T) {
	if Recovered(nil) != nil {
		t.Error("Recovered(nil) != nil")
	}
	err := func() (err error) {
		defer func() {
			if pe := Recovered(recover()); pe != nil {
				err = pe
			}
		}()
		panic(errors.New("wrapped"))
	}()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
}
