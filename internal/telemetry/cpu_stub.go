//go:build !unix

package telemetry

// procCPUNS is unavailable without rusage; spans then carry no CPU
// attribution (cpu_ns omitted from span_end events).
func procCPUNS() int64 { return 0 }
