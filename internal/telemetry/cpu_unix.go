//go:build unix

package telemetry

import "syscall"

// procCPUNS returns the process's cumulative CPU time (user + system)
// in nanoseconds, or 0 when rusage is unavailable. Spans sample it at
// open and close to attribute CPU to stages; the delta is process-wide,
// so overlapping spans each see the full process burn (documented as an
// upper bound — DESIGN.md §16).
func procCPUNS() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return ru.Utime.Nano() + ru.Stime.Nano()
}
