package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// DefaultFlightEvents is the ring capacity NewFlightRecorder uses when
// given a non-positive size.
const DefaultFlightEvents = 4096

// FlightRecorder is a fixed-size ring buffer retaining the most recent
// telemetry events — spans, observations, and log records alike. It is
// the service's black box: always on, allocation-free on the write
// path (the ring is preallocated; Emit copies the Event value into a
// slot), and dumped as NDJSON on demand (/debug/flight), on SIGQUIT,
// or on panic. Like the rest of the package, a nil *FlightRecorder is
// the disabled state and costs one nil check per call.
//
// Events carry maps (counters, attrs) by reference; recorded events
// alias them. That is safe because emitters never mutate a map after
// emitting — the same contract every other Sink relies on.
type FlightRecorder struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // events ever written; next%len(buf) is the write slot
}

// NewFlightRecorder returns a recorder retaining the last n events
// (DefaultFlightEvents if n <= 0). The ring is allocated up front;
// steady-state writes allocate nothing.
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = DefaultFlightEvents
	}
	return &FlightRecorder{buf: make([]Event, n)}
}

// Emit records the event, evicting the oldest once the ring is full.
// Safe for concurrent use and on a nil receiver.
func (f *FlightRecorder) Emit(e Event) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.buf[f.next%uint64(len(f.buf))] = e
	f.next++
	f.mu.Unlock()
}

// Len returns the number of retained events (0 on nil).
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.next < uint64(len(f.buf)) {
		return int(f.next)
	}
	return len(f.buf)
}

// Snapshot returns the retained events oldest-first. The returned
// slice is a copy; the events inside still share maps with their
// emitters (read-only).
func (f *FlightRecorder) Snapshot() []Event {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := uint64(len(f.buf))
	if f.next < n {
		out := make([]Event, f.next)
		copy(out, f.buf[:f.next])
		return out
	}
	out := make([]Event, n)
	head := f.next % n // oldest retained event
	copy(out, f.buf[head:])
	copy(out[n-head:], f.buf[:head])
	return out
}

// WriteNDJSON dumps the retained events oldest-first, one JSON object
// per line — the same wire format as NDJSONSink, so tracestat and
// ParseTrace read flight dumps directly. The snapshot is taken in one
// critical section; marshalling happens outside the lock so a slow
// writer never stalls emitters.
func (f *FlightRecorder) WriteNDJSON(w io.Writer) error {
	events := f.Snapshot()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}
