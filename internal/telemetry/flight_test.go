package telemetry

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func flightEvent(i int) Event {
	return Event{Type: EventLog, ID: 0, Stage: "service", Time: time.Unix(0, int64(i)),
		Level: "INFO", Msg: fmt.Sprintf("m%d", i)}
}

func TestFlightRecorderPartialFill(t *testing.T) {
	f := NewFlightRecorder(8)
	for i := 0; i < 3; i++ {
		f.Emit(flightEvent(i))
	}
	if f.Len() != 3 {
		t.Fatalf("Len = %d, want 3", f.Len())
	}
	snap := f.Snapshot()
	for i, e := range snap {
		if e.Msg != fmt.Sprintf("m%d", i) {
			t.Fatalf("snapshot[%d] = %q, want m%d", i, e.Msg, i)
		}
	}
}

func TestFlightRecorderRotation(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 11; i++ { // wraps the 4-slot ring almost three times
		f.Emit(flightEvent(i))
	}
	if f.Len() != 4 {
		t.Fatalf("Len = %d, want 4", f.Len())
	}
	snap := f.Snapshot()
	want := []string{"m7", "m8", "m9", "m10"} // oldest-first, newest retained
	for i, e := range snap {
		if e.Msg != want[i] {
			t.Fatalf("snapshot[%d] = %q, want %q (full: %v)", i, e.Msg, want[i], snap)
		}
	}
}

func TestFlightRecorderDefaultSize(t *testing.T) {
	f := NewFlightRecorder(0)
	if got := len(f.buf); got != DefaultFlightEvents {
		t.Fatalf("default ring size = %d, want %d", got, DefaultFlightEvents)
	}
}

func TestFlightRecorderNil(t *testing.T) {
	var f *FlightRecorder
	f.Emit(flightEvent(0)) // must not panic
	if f.Len() != 0 || f.Snapshot() != nil {
		t.Fatal("nil recorder must be empty")
	}
	var buf bytes.Buffer
	if err := f.WriteNDJSON(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil WriteNDJSON: err=%v, wrote %d bytes", err, buf.Len())
	}
}

// TestFlightRecorderNDJSONRoundTrip: a dump parses back through
// ParseTrace, with spans balanced and log records collected.
func TestFlightRecorderNDJSONRoundTrip(t *testing.T) {
	f := NewFlightRecorder(16)
	tr := New(f).WithAttrs(map[string]string{"run_id": "r1"})
	sp := tr.StartSpan("atpg", 2)
	sp.End()
	f.Emit(flightEvent(1))

	var buf bytes.Buffer
	if err := f.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	trace, err := ParseTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("dump does not re-parse: %v\ndump:\n%s", err, buf.String())
	}
	if !trace.Balanced() || len(trace.Spans) != 1 || len(trace.Logs) != 1 {
		t.Fatalf("round trip: balanced=%v spans=%d logs=%d", trace.Balanced(), len(trace.Spans), len(trace.Logs))
	}
	if trace.Spans[0].Attrs["run_id"] != "r1" {
		t.Fatalf("correlation attrs lost: %+v", trace.Spans[0].Attrs)
	}
}

// TestFlightRecorderConcurrent hammers the ring from many goroutines
// while snapshots run — the -race CI lane is the real assertion here.
func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				f.Emit(flightEvent(g*1000 + i))
				if i%100 == 0 {
					_ = f.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if f.Len() != 64 {
		t.Fatalf("Len = %d, want full ring 64", f.Len())
	}
	snap := f.Snapshot()
	for _, e := range snap {
		if e.Msg == "" {
			t.Fatal("snapshot contains a zero event after 4000 writes")
		}
	}
}

// BenchmarkFlightRecorderDisabled pins the nil-receiver fast path at
// zero allocations — always-on instrumentation must cost nothing when
// the recorder is off.
func BenchmarkFlightRecorderDisabled(b *testing.B) {
	var f *FlightRecorder
	e := flightEvent(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Emit(e)
	}
}

// BenchmarkFlightRecorderEmit measures the enabled steady-state write:
// one mutex round trip and a slot copy, no allocations.
func BenchmarkFlightRecorderEmit(b *testing.B) {
	f := NewFlightRecorder(4096)
	e := flightEvent(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Emit(e)
	}
}
