package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of exponential buckets. Bucket i holds
// observations v with 2^(i-1) < v <= 2^i (bucket 0 holds v <= 1), so
// 63 finite buckets cover every positive int64 and the last bucket
// doubles as the +Inf overflow. Nanosecond observations land around
// bucket 10 (1 µs) to bucket 33 (8.6 s); the layout is the classic
// power-of-two HdrHistogram-style scheme: O(1) recording, ~2x relative
// error, trivially mergeable because every histogram shares the same
// bounds.
const histBuckets = 64

// histBucketOf returns the bucket index for an observation. Negative
// observations are clamped into bucket 0 (durations and counts are
// never negative; a clock hiccup must not index out of range).
func histBucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len64(uint64(v - 1))
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// HistBucketUpper returns bucket i's inclusive upper bound (its
// Prometheus "le" value). The last bucket's bound is +Inf in the
// exposition; numerically it is MaxInt64.
func HistBucketUpper(i int) int64 {
	if i >= 63 {
		return math.MaxInt64
	}
	return int64(1) << uint(i)
}

// Histogram is a span-scoped latency/size distribution with
// power-of-two exponential buckets. Observe is lock-free (one atomic
// add on the bucket plus sum/count), safe for concurrent use, and —
// like every telemetry handle — a no-op on a nil receiver, so
// instrumented hot loops pay one nil check when telemetry is off.
//
// Hot paths that observe at very high rates from a single goroutine
// (PODEM calls, per-net routing) should record into a Local() shard —
// plain non-atomic counts owned by one goroutine — and Flush it into
// the histogram once at the end of the run. That is the lock-free
// per-shard recording scheme: N goroutines each own a LocalHist, and
// the merge at flush is the only synchronized step.
type Histogram struct {
	name    string
	counts  [histBuckets]atomic.Uint64
	sum     atomic.Int64
	observd atomic.Int64
}

// Observe records one value (a duration in nanoseconds, a depth, a
// count). No-op on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.counts[histBucketOf(v)].Add(1)
	h.sum.Add(v)
	h.observd.Add(1)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Local returns a new single-goroutine shard of the histogram (nil on
// a nil receiver, keeping the whole disabled subtree free). The shard
// records without atomics; call Flush to merge it back.
func (h *Histogram) Local() *LocalHist {
	if h == nil {
		return nil
	}
	return &LocalHist{parent: h}
}

// Snapshot returns the histogram's current merged state.
func (h *Histogram) Snapshot() HistData {
	if h == nil {
		return HistData{}
	}
	d := HistData{Count: h.observd.Load(), Sum: h.sum.Load()}
	for i := range h.counts {
		if c := h.counts[i].Load(); c != 0 {
			if d.Buckets == nil {
				d.Buckets = make(map[int]uint64, 8)
			}
			d.Buckets[i] = c
		}
	}
	return d
}

// LocalHist is one goroutine's private shard of a Histogram: plain
// counts, no atomics, no locks. Exactly one goroutine may Observe a
// given shard at a time; Flush merges the shard into the parent with
// atomic adds and resets it, and must not race with that goroutine's
// Observes. All methods are no-ops on a nil receiver.
type LocalHist struct {
	parent  *Histogram
	counts  [histBuckets]uint64
	sum     int64
	observd int64
}

// Observe records one value into the shard.
func (l *LocalHist) Observe(v int64) {
	if l == nil {
		return
	}
	l.counts[histBucketOf(v)]++
	l.sum += v
	l.observd++
}

// ObserveDuration records a duration in nanoseconds into the shard.
func (l *LocalHist) ObserveDuration(d time.Duration) { l.Observe(int64(d)) }

// Flush merges the shard into its parent histogram and zeroes the
// shard, so a shard may be flushed more than once (e.g. per batch)
// without double counting.
func (l *LocalHist) Flush() {
	if l == nil || l.observd == 0 {
		return
	}
	for i, c := range l.counts {
		if c != 0 {
			l.parent.counts[i].Add(c)
			l.counts[i] = 0
		}
	}
	l.parent.sum.Add(l.sum)
	l.parent.observd.Add(l.observd)
	l.sum, l.observd = 0, 0
}

// HistData is the serializable snapshot of a histogram: total count,
// sum of observations, and the sparse bucket populations keyed by
// bucket index (see HistBucketUpper for the bounds). It is the NDJSON
// wire form (riding on span_end events) and the cross-run merge unit:
// all histograms share one bucket layout, so Merge is index-wise
// addition — across shards, across sweep levels, across runs.
type HistData struct {
	Count   int64          `json:"n"`
	Sum     int64          `json:"s"`
	Buckets map[int]uint64 `json:"b,omitempty"`
}

// Observation returns the HistData of one observed value — the unit a
// caller without a long-lived Histogram (the service layer's per-event
// queue-wait samples) merges into a sink-side accumulator.
func Observation(v int64) HistData {
	return HistData{Count: 1, Sum: v, Buckets: map[int]uint64{histBucketOf(v): 1}}
}

// Merge adds other into d (index-wise bucket addition).
func (d *HistData) Merge(other HistData) {
	d.Count += other.Count
	d.Sum += other.Sum
	if other.Buckets == nil {
		return
	}
	if d.Buckets == nil {
		d.Buckets = make(map[int]uint64, len(other.Buckets))
	}
	for i, c := range other.Buckets {
		d.Buckets[i] += c
	}
}

// Mean returns the average observed value (0 when empty).
func (d HistData) Mean() float64 {
	if d.Count == 0 {
		return 0
	}
	return float64(d.Sum) / float64(d.Count)
}

// Quantile estimates the q-quantile (q in [0,1]) by linear
// interpolation inside the containing power-of-two bucket — the same
// estimate a Prometheus histogram_quantile gives for this bucket
// layout. Returns 0 for an empty histogram.
func (d HistData) Quantile(q float64) float64 {
	if d.Count == 0 || len(d.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(d.Count)
	var cum float64
	for i := 0; i < histBuckets; i++ {
		c, ok := d.Buckets[i]
		if !ok {
			continue
		}
		fc := float64(c)
		if cum+fc >= rank {
			lo := 0.0
			if i > 0 {
				lo = float64(HistBucketUpper(i - 1))
			}
			hi := float64(HistBucketUpper(i))
			if i == histBuckets-1 {
				// Overflow bucket has no finite width; report its lower bound.
				return lo
			}
			frac := 0.0
			if fc > 0 {
				frac = (rank - cum) / fc
			}
			return lo + (hi-lo)*frac
		}
		cum += fc
	}
	// Unreachable when Count matches the buckets; be defensive.
	return float64(HistBucketUpper(histBuckets - 2))
}
