package telemetry

import (
	"bytes"
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistBucketOf(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3},
		{9, 4}, {1024, 10}, {1025, 11}, {math.MaxInt64, 63},
	}
	for _, c := range cases {
		if got := histBucketOf(c.v); got != c.want {
			t.Errorf("histBucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every bucket's contents must be <= its upper bound and > the
	// previous bound.
	for _, v := range []int64{1, 2, 3, 7, 100, 1 << 20, 1<<40 + 3} {
		i := histBucketOf(v)
		if v > HistBucketUpper(i) {
			t.Errorf("v %d above bucket %d bound %d", v, i, HistBucketUpper(i))
		}
		if i > 0 && v <= HistBucketUpper(i-1) {
			t.Errorf("v %d should be in bucket %d or lower", v, i-1)
		}
	}
}

func TestHistogramNil(t *testing.T) {
	var h *Histogram
	h.Observe(5)
	h.ObserveDuration(time.Second)
	if l := h.Local(); l != nil {
		t.Fatal("nil histogram produced a local shard")
	}
	var l *LocalHist
	l.Observe(5)
	l.ObserveDuration(time.Second)
	l.Flush()
	if d := h.Snapshot(); d.Count != 0 {
		t.Fatal("nil histogram snapshot non-empty")
	}
	// Nil-span registration keeps the whole subtree free.
	var sp *Span
	sp.Histogram("x").Observe(1)
	sp.Histogram("x").Local().Observe(1)
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	h := &Histogram{name: "t"}
	// 100 observations of 100, 10 of 100_000.
	for i := 0; i < 100; i++ {
		h.Observe(100)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100_000)
	}
	d := h.Snapshot()
	if d.Count != 110 || d.Sum != 100*100+10*100_000 {
		t.Fatalf("count/sum = %d/%d", d.Count, d.Sum)
	}
	// p50 must land in the bucket holding 100 (64,128]; p99 in the one
	// holding 100_000 (65536,131072].
	if q := d.Quantile(0.5); q <= 64 || q > 128 {
		t.Errorf("p50 = %g, want in (64,128]", q)
	}
	if q := d.Quantile(0.99); q <= 65536 || q > 131072 {
		t.Errorf("p99 = %g, want in (65536,131072]", q)
	}
	if q := d.Quantile(0); q < 0 || q > 128 {
		t.Errorf("p0 = %g", q)
	}
	if m := d.Mean(); math.Abs(m-float64(d.Sum)/110) > 1e-9 {
		t.Errorf("mean = %g", m)
	}
	if (HistData{}).Quantile(0.5) != 0 {
		t.Error("empty quantile != 0")
	}
}

func TestLocalHistFlushAndMerge(t *testing.T) {
	h := &Histogram{name: "t"}
	shards := make([]*LocalHist, 4)
	for i := range shards {
		shards[i] = h.Local()
	}
	var wg sync.WaitGroup
	for s, l := range shards {
		wg.Add(1)
		go func(s int, l *LocalHist) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.Observe(int64(s*1000 + i))
			}
		}(s, l)
	}
	wg.Wait()
	for _, l := range shards {
		l.Flush()
		l.Flush() // second flush of a drained shard is a no-op
	}
	d := h.Snapshot()
	if d.Count != 4000 {
		t.Fatalf("merged count = %d, want 4000", d.Count)
	}
	var bucketTotal uint64
	for _, c := range d.Buckets {
		bucketTotal += c
	}
	if bucketTotal != 4000 {
		t.Fatalf("bucket total = %d, want 4000", bucketTotal)
	}

	// HistData.Merge is index-wise addition.
	var m HistData
	m.Merge(d)
	m.Merge(d)
	if m.Count != 8000 || m.Sum != 2*d.Sum {
		t.Fatalf("double merge = %d/%d", m.Count, m.Sum)
	}
	for i, c := range d.Buckets {
		if m.Buckets[i] != 2*c {
			t.Fatalf("bucket %d = %d, want %d", i, m.Buckets[i], 2*c)
		}
	}
}

// TestHistogramConcurrentObserve exercises the lock-free path under
// -race: many goroutines observing one histogram directly.
func TestHistogramConcurrentObserve(t *testing.T) {
	h := &Histogram{name: "t"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if d := h.Snapshot(); d.Count != 4000 {
		t.Fatalf("count = %d", d.Count)
	}
}

// TestSpanHistogramFlush: histograms registered on a span ride its
// span_end event and snapshot, duplicate names merging.
func TestSpanHistogramFlush(t *testing.T) {
	var buf bytes.Buffer
	sink := NewNDJSONSink(&buf)
	tr := New(sink)
	sp := tr.StartSpan("atpg", 1)
	sp.Histogram("atpg.podem_ns").Observe(1000)
	sp.Histogram("atpg.podem_ns").Observe(3000) // same name: merged
	empty := sp.Histogram("atpg.unused")
	_ = empty // zero observations: dropped at flush
	sp.End()
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	sn := sp.Snapshot()
	d, ok := sn.Hists["atpg.podem_ns"]
	if !ok || d.Count != 2 || d.Sum != 4000 {
		t.Fatalf("snapshot hist = %+v", sn.Hists)
	}
	if _, ok := sn.Hists["atpg.unused"]; ok {
		t.Fatal("empty histogram flushed")
	}

	// NDJSON round trip preserves the histogram.
	trace, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got HistData
	for _, s := range trace.Spans {
		if h, ok := s.Hists["atpg.podem_ns"]; ok {
			got = h
		}
	}
	if got.Count != 2 || got.Sum != 4000 {
		t.Fatalf("round-tripped hist = %+v", got)
	}
	if q := got.Quantile(0.5); q <= 0 {
		t.Fatalf("round-tripped quantile = %g", q)
	}
}

// TestSnapshotHistSubtree: Snapshot.Hist merges over the span tree,
// the cross-level aggregation a sweep root exposes.
func TestSnapshotHistSubtree(t *testing.T) {
	tr := New()
	root := tr.StartSpan("sweep", -1)
	for tp := 0; tp < 3; tp++ {
		run := root.ChildTP("run", float64(tp))
		st := run.Child("route")
		st.Histogram("route.net_ns").Observe(int64(100 * (tp + 1)))
		st.End()
		run.End()
	}
	root.End()
	d := root.Snapshot().Hist("route.net_ns")
	if d.Count != 3 || d.Sum != 100+200+300 {
		t.Fatalf("subtree hist = %+v", d)
	}
}

// The nil-receiver histogram path must stay as free as the nil counter
// path: ≤2 ns/op, zero allocations (asserted by the bench harness in
// CI via -benchmem and eyeballed locally).
func BenchmarkDisabledHistogram(b *testing.B) {
	b.ReportAllocs()
	var h *Histogram
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkDisabledLocalHist(b *testing.B) {
	b.ReportAllocs()
	var l *LocalHist
	for i := 0; i < b.N; i++ {
		l.Observe(int64(i))
	}
}

func BenchmarkEnabledHistogram(b *testing.B) {
	b.ReportAllocs()
	h := &Histogram{name: "bench"}
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkEnabledLocalHist(b *testing.B) {
	b.ReportAllocs()
	h := &Histogram{name: "bench"}
	l := h.Local()
	for i := 0; i < b.N; i++ {
		l.Observe(int64(i))
	}
	l.Flush()
}
