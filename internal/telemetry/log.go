package telemetry

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"time"
)

// Logger is the service's leveled structured logger: a thin wrapper
// over log/slog that renders text or JSON lines to a writer and, in
// the same call, forwards each record as an EventLog telemetry event
// to its sinks — so the flight recorder retains log lines interleaved
// with spans. Like Tracer, the disabled state is a nil *Logger: every
// method no-ops after one nil check and the call site allocates
// nothing (benchmark-pinned).
type Logger struct {
	h     slog.Handler
	sinks []Sink
	attrs map[string]string // bound correlation attrs, stamped on events
	now   func() time.Time
}

// ParseLogLevel maps the -log-level flag values to slog levels.
func ParseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn, or error)", s)
}

// NewLogger returns a Logger writing format ("text" or "json") lines
// at or above level to w, forwarding every record — regardless of
// level, so the flight recorder keeps debug detail even when stderr is
// quiet — to the given sinks as EventLog events.
func NewLogger(w io.Writer, format string, level slog.Level, sinks ...Sink) (*Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	switch format {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
	}
	return &Logger{h: h, sinks: sinks, now: time.Now}, nil
}

// With returns a Logger with the given alternating key/value pairs
// bound to every subsequent record — both on the rendered line and in
// the forwarded event's attrs. The service binds job_id/run_id/tenant
// once per run and logs through the child.
func (l *Logger) With(args ...any) *Logger {
	if l == nil || len(args) == 0 {
		return l
	}
	sa := make([]slog.Attr, 0, (len(args)+1)/2)
	attrs := make(map[string]string, len(l.attrs)+(len(args)+1)/2)
	for k, v := range l.attrs {
		attrs[k] = v
	}
	for i := 0; i+1 < len(args); i += 2 {
		k, ok := args[i].(string)
		if !ok {
			k = fmt.Sprint(args[i])
		}
		sa = append(sa, slog.Any(k, args[i+1]))
		attrs[k] = fmt.Sprint(args[i+1])
	}
	return &Logger{h: l.h.WithAttrs(sa), sinks: l.sinks, attrs: attrs, now: l.now}
}

// WithSinks returns a Logger that additionally forwards records to the
// given sinks — the service tees each run's log lines into that run's
// flight recorder this way.
func (l *Logger) WithSinks(extra ...Sink) *Logger {
	if l == nil || len(extra) == 0 {
		return l
	}
	sinks := make([]Sink, 0, len(l.sinks)+len(extra))
	sinks = append(sinks, l.sinks...)
	sinks = append(sinks, extra...)
	return &Logger{h: l.h, sinks: sinks, attrs: l.attrs, now: l.now}
}

// Debug logs at debug level with alternating key/value args.
func (l *Logger) Debug(msg string, args ...any) {
	if l == nil {
		return
	}
	l.log(slog.LevelDebug, msg, args)
}

// Info logs at info level with alternating key/value args.
func (l *Logger) Info(msg string, args ...any) {
	if l == nil {
		return
	}
	l.log(slog.LevelInfo, msg, args)
}

// Warn logs at warn level with alternating key/value args.
func (l *Logger) Warn(msg string, args ...any) {
	if l == nil {
		return
	}
	l.log(slog.LevelWarn, msg, args)
}

// Error logs at error level with alternating key/value args.
func (l *Logger) Error(msg string, args ...any) {
	if l == nil {
		return
	}
	l.log(slog.LevelError, msg, args)
}

func (l *Logger) log(level slog.Level, msg string, args []any) {
	now := l.now()
	if l.h.Enabled(context.Background(), level) {
		r := slog.NewRecord(now, level, msg, 0)
		r.Add(args...)
		_ = l.h.Handle(context.Background(), r)
	}
	if len(l.sinks) == 0 {
		return
	}
	attrs := l.attrs
	if len(args) > 0 {
		attrs = make(map[string]string, len(l.attrs)+(len(args)+1)/2)
		for k, v := range l.attrs {
			attrs[k] = v
		}
		for i := 0; i+1 < len(args); i += 2 {
			k, ok := args[i].(string)
			if !ok {
				k = fmt.Sprint(args[i])
			}
			attrs[k] = fmt.Sprint(args[i+1])
		}
	}
	e := Event{Type: EventLog, Stage: attrs["stage"], Time: now, Level: level.String(), Msg: msg, Attrs: attrs}
	for _, s := range l.sinks {
		s.Emit(e)
	}
}
