package telemetry

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
)

// collectSink gathers every event for assertions.
type collectSink struct {
	mu     sync.Mutex
	events []Event
}

func (c *collectSink) Emit(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

func TestParseLogLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug, "": slog.LevelInfo, "info": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn, "ERROR": slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLogLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLogLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLogLevel("loud"); err == nil {
		t.Error("ParseLogLevel(loud) should fail")
	}
}

func TestNewLoggerUnknownFormat(t *testing.T) {
	if _, err := NewLogger(&bytes.Buffer{}, "xml", slog.LevelInfo); err == nil {
		t.Fatal("unknown format should fail")
	}
}

func TestLoggerLevelFiltersOutput(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewLogger(&buf, "text", slog.LevelWarn)
	if err != nil {
		t.Fatal(err)
	}
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	out := buf.String()
	if strings.Contains(out, "msg=d") || strings.Contains(out, "msg=i") {
		t.Errorf("below-level records rendered:\n%s", out)
	}
	if !strings.Contains(out, "msg=w") || !strings.Contains(out, "msg=e") {
		t.Errorf("at/above-level records missing:\n%s", out)
	}
}

func TestLoggerJSONFormat(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewLogger(&buf, "json", slog.LevelInfo)
	if err != nil {
		t.Fatal(err)
	}
	l.With("job_id", "j1").Info("job accepted", "tenant", "acme", "levels", 6)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not a JSON line: %v\n%s", err, buf.String())
	}
	if rec["msg"] != "job accepted" || rec["job_id"] != "j1" || rec["tenant"] != "acme" || rec["levels"] != float64(6) {
		t.Errorf("fields wrong: %v", rec)
	}
}

// TestLoggerSinksGetAllLevels: sinks receive every record regardless of
// the handler level — the flight recorder keeps debug detail even when
// stderr is quiet.
func TestLoggerSinksGetAllLevels(t *testing.T) {
	var buf bytes.Buffer
	sink := &collectSink{}
	l, err := NewLogger(&buf, "text", slog.LevelError, sink)
	if err != nil {
		t.Fatal(err)
	}
	l.Debug("hidden detail", "step", 3)
	if buf.Len() != 0 {
		t.Errorf("debug rendered despite level=error:\n%s", buf.String())
	}
	if len(sink.events) != 1 {
		t.Fatalf("sink got %d events, want 1", len(sink.events))
	}
	e := sink.events[0]
	if e.Type != EventLog || e.Level != "DEBUG" || e.Msg != "hidden detail" || e.Attrs["step"] != "3" {
		t.Errorf("event wrong: %+v", e)
	}
}

// TestLoggerWithBindsAttrs: With-bound pairs reach both the rendered
// line and every forwarded event, and stage routes into Event.Stage.
func TestLoggerWithBindsAttrs(t *testing.T) {
	var buf bytes.Buffer
	sink := &collectSink{}
	l, err := NewLogger(&buf, "text", slog.LevelInfo, sink)
	if err != nil {
		t.Fatal(err)
	}
	child := l.With("run_id", "r000001-ab", "tenant", "acme", "stage", "service")
	child.Info("run started", "queue_wait_ms", 12)

	out := buf.String()
	for _, want := range []string{"run_id=r000001-ab", "tenant=acme", "queue_wait_ms=12"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered line missing %q:\n%s", want, out)
		}
	}
	e := sink.events[0]
	if e.Attrs["run_id"] != "r000001-ab" || e.Attrs["tenant"] != "acme" || e.Attrs["queue_wait_ms"] != "12" {
		t.Errorf("event attrs wrong: %v", e.Attrs)
	}
	if e.Stage != "service" {
		t.Errorf("stage = %q, want service", e.Stage)
	}
	// The parent is untouched by the child's bindings.
	buf.Reset()
	l.Info("plain")
	if strings.Contains(buf.String(), "run_id") {
		t.Errorf("With leaked into parent:\n%s", buf.String())
	}
}

// TestLoggerWithSinks: extra sinks tee in addition to the base set —
// how per-run flight rings receive that run's log lines.
func TestLoggerWithSinks(t *testing.T) {
	base := &collectSink{}
	extra := &collectSink{}
	l, err := NewLogger(&bytes.Buffer{}, "text", slog.LevelInfo, base)
	if err != nil {
		t.Fatal(err)
	}
	l.WithSinks(extra).Info("both")
	l.Info("base only")
	if len(base.events) != 2 || len(extra.events) != 1 {
		t.Fatalf("base=%d extra=%d, want 2/1", len(base.events), len(extra.events))
	}
}

func TestLoggerNil(t *testing.T) {
	var l *Logger
	l.Debug("x")
	l.Info("x")
	l.Warn("x")
	l.Error("x")
	if l.With("k", "v") != nil || l.WithSinks(&collectSink{}) != nil {
		t.Fatal("nil logger must stay nil through With/WithSinks")
	}
}

// BenchmarkLoggerDisabled pins the nil-receiver call at zero
// allocations — instrumented code paths must be free when logging is
// off, including the variadic args.
func BenchmarkLoggerDisabled(b *testing.B) {
	var l *Logger
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Info("job accepted", "job_id", "j1", "tenant", "acme")
	}
}
