package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
)

// PromSink folds telemetry events into a live Prometheus exposition:
// every counter becomes a `<prefix>_<name>_total` counter family,
// every gauge a gauge family, every histogram a histogram family with
// cumulative `_bucket`/`_sum`/`_count` series, and every span close
// additionally feeds the built-in `<prefix>_stage_duration_ns`
// histogram, the `<prefix>_stage_last_duration_ns` gauge, and the
// `<prefix>_spans_total` / `<prefix>_span_errors_total` counters — so
// every stage has a counter, a gauge, and a duration distribution even
// where the stage itself records no explicit metrics. All series carry a
// stage="<span stage>" label.
//
// PromSink is both a Sink (attach it to a Tracer) and an http.Handler
// (mount it on /metrics): Emit and ServeHTTP synchronize on one mutex,
// so a long-running sweep can be scraped while it runs. The output is
// Prometheus text format version 0.0.4 — plain net/http, no client
// library dependency.
type PromSink struct {
	prefix string

	mu       sync.Mutex
	counters map[string]map[string]float64   // family -> stage -> value
	gauges   map[string]map[string]float64   // family -> stage -> value
	hists    map[string]map[string]*HistData // family -> stage -> merged data
}

// NewPromSink returns an empty exposition surface. prefix namespaces
// every family ("tpilayout" in the CLIs); it must already be a legal
// metric-name prefix or it is sanitized like everything else.
func NewPromSink(prefix string) *PromSink {
	return &PromSink{
		prefix:   promName(prefix),
		counters: map[string]map[string]float64{},
		gauges:   map[string]map[string]float64{},
		hists:    map[string]map[string]*HistData{},
	}
}

// Emit folds a span_end event into the live metric state.
func (p *PromSink) Emit(e Event) {
	if e.Type != EventSpanEnd {
		return
	}
	stage := e.Stage
	p.mu.Lock()
	defer p.mu.Unlock()
	p.addCounter(p.prefix+"_spans_total", stage, 1)
	if e.Err != "" {
		p.addCounter(p.prefix+"_span_errors_total", stage, 1)
	}
	p.setGauge(p.prefix+"_stage_last_duration_ns", stage, float64(e.DurNS))
	p.mergeHist(p.prefix+"_stage_duration_ns", stage, HistData{
		Count: 1, Sum: e.DurNS,
		Buckets: map[int]uint64{histBucketOf(e.DurNS): 1},
	})
	for name, v := range e.Counters {
		p.addCounter(p.prefix+"_"+promName(name)+"_total", stage, float64(v))
	}
	for name, v := range e.Gauges {
		p.setGauge(p.prefix+"_"+promName(name), stage, v)
	}
	for name, d := range e.Hists {
		p.mergeHist(p.prefix+"_"+promName(name), stage, d)
	}
}

func (p *PromSink) addCounter(family, stage string, v float64) {
	if p.counters[family] == nil {
		p.counters[family] = map[string]float64{}
	}
	p.counters[family][stage] += v
}

func (p *PromSink) setGauge(family, stage string, v float64) {
	if p.gauges[family] == nil {
		p.gauges[family] = map[string]float64{}
	}
	p.gauges[family][stage] = v
}

func (p *PromSink) mergeHist(family, stage string, d HistData) {
	if p.hists[family] == nil {
		p.hists[family] = map[string]*HistData{}
	}
	acc := p.hists[family][stage]
	if acc == nil {
		acc = &HistData{}
		p.hists[family][stage] = acc
	}
	acc.Merge(d)
}

// ServeHTTP renders the exposition (Prometheus text format 0.0.4).
func (p *PromSink) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p.writeExposition(w)
}

// writeExposition writes the full exposition to w, families sorted by name and
// series sorted by stage label, so successive scrapes diff cleanly.
func (p *PromSink) writeExposition(w io.Writer) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, fam := range sortedFamilies(p.counters) {
		fmt.Fprintf(w, "# TYPE %s counter\n", fam)
		for _, stage := range sortedStages(p.counters[fam]) {
			fmt.Fprintf(w, "%s{stage=%q} %s\n", fam, stage, promFloat(p.counters[fam][stage]))
		}
	}
	for _, fam := range sortedFamilies(p.gauges) {
		fmt.Fprintf(w, "# TYPE %s gauge\n", fam)
		for _, stage := range sortedStages(p.gauges[fam]) {
			fmt.Fprintf(w, "%s{stage=%q} %s\n", fam, stage, promFloat(p.gauges[fam][stage]))
		}
	}
	for _, fam := range sortedFamilies(p.hists) {
		fmt.Fprintf(w, "# TYPE %s histogram\n", fam)
		for _, stage := range sortedStages(p.hists[fam]) {
			d := p.hists[fam][stage]
			// Cumulative buckets over the populated range only: a sparse
			// bucket set is valid exposition, and 64 mostly-empty series
			// per histogram would bloat every scrape.
			var idxs []int
			for i := range d.Buckets {
				idxs = append(idxs, i)
			}
			sort.Ints(idxs)
			var cum uint64
			for _, i := range idxs {
				cum += d.Buckets[i]
				le := "+Inf"
				if i < histBuckets-1 {
					le = strconv.FormatInt(HistBucketUpper(i), 10)
				}
				fmt.Fprintf(w, "%s_bucket{stage=%q,le=%q} %d\n", fam, stage, le, cum)
			}
			if len(idxs) == 0 || idxs[len(idxs)-1] < histBuckets-1 {
				fmt.Fprintf(w, "%s_bucket{stage=%q,le=\"+Inf\"} %d\n", fam, stage, cum)
			}
			fmt.Fprintf(w, "%s_sum{stage=%q} %d\n", fam, stage, d.Sum)
			fmt.Fprintf(w, "%s_count{stage=%q} %d\n", fam, stage, d.Count)
		}
	}
}

func sortedFamilies[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedStages[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// promFloat renders a sample value: integral values without an
// exponent, everything else in Go's shortest form.
func promFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promName sanitizes a telemetry name ("atpg.podem_ns") into a legal
// Prometheus metric-name fragment ("atpg_podem_ns").
func promName(s string) string {
	b := []byte(s)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				b[i] = '_'
			}
		default:
			b[i] = '_'
		}
	}
	return string(b)
}
