package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// defaultTenantLimit bounds how many distinct tenant label values a
// PromSink will emit before folding new tenants into tenant="other".
// Prometheus series are priced per label combination; an unbounded
// tenant label would let one abusive client mint unbounded series.
const defaultTenantLimit = 32

// extraLabels are event attrs promoted to metric labels beyond tenant:
// the sentinel's regression families carry the regressed level, and the
// cross-run rollup gauges carry their baseline key. Each is bounded to
// extraLimit distinct values with an "other" overflow, the same
// cardinality defense as the tenant cap.
var extraLabels = [...]string{"baseline", "level"}

const extraLimit = 64

// PromSink folds telemetry events into a live Prometheus exposition:
// every counter becomes a `<prefix>_<name>_total` counter family,
// every gauge a gauge family, every histogram a histogram family with
// cumulative `_bucket`/`_sum`/`_count` series, and every span close
// additionally feeds the built-in `<prefix>_stage_duration_ns`
// histogram, the `<prefix>_stage_last_duration_ns` gauge, and the
// `<prefix>_spans_total` / `<prefix>_span_errors_total` counters — so
// every stage has a counter, a gauge, and a duration distribution even
// where the stage itself records no explicit metrics. All series carry a
// stage="<span stage>" label; events whose attrs carry a tenant (the
// service's per-tenant SLO families) additionally carry a tenant label,
// bounded to TenantLimit distinct values with an "other" overflow
// bucket.
//
// PromSink is both a Sink (attach it to a Tracer) and an http.Handler
// (mount it on /metrics): Emit and ServeHTTP synchronize on one mutex,
// so a long-running sweep can be scraped while it runs. The output is
// Prometheus text format version 0.0.4 — plain net/http, no client
// library dependency.
type PromSink struct {
	prefix string

	mu         sync.Mutex
	counters   map[string]map[string]float64   // family -> label set -> value
	gauges     map[string]map[string]float64   // family -> label set -> value
	hists      map[string]map[string]*HistData // family -> label set -> merged data
	tenants    map[string]bool                 // tenants granted their own label value
	maxTenants int
	extras     map[string]map[string]bool // extra label key -> values granted a label
}

// NewPromSink returns an empty exposition surface. prefix namespaces
// every family ("tpilayout" in the CLIs); it must already be a legal
// metric-name prefix or it is sanitized like everything else.
func NewPromSink(prefix string) *PromSink {
	return &PromSink{
		prefix:     promName(prefix),
		counters:   map[string]map[string]float64{},
		gauges:     map[string]map[string]float64{},
		hists:      map[string]map[string]*HistData{},
		tenants:    map[string]bool{},
		maxTenants: defaultTenantLimit,
		extras:     map[string]map[string]bool{},
	}
}

// SetTenantLimit caps the number of distinct tenant label values
// (default 32). Tenants beyond the cap are folded into tenant="other";
// tenants that already own a label value keep it.
func (p *PromSink) SetTenantLimit(n int) {
	p.mu.Lock()
	p.maxTenants = n
	p.mu.Unlock()
}

// Emit folds a span_end event into the live metric state.
func (p *PromSink) Emit(e Event) {
	if e.Type != EventSpanEnd {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	labels := p.labelsLocked(e)
	if e.ID != 0 {
		// Observation events (ID 0) are bare metric flushes, not spans:
		// they carry no duration and should not count as spans.
		p.addCounter(p.prefix+"_spans_total", labels, 1)
		if e.Err != "" {
			p.addCounter(p.prefix+"_span_errors_total", labels, 1)
		}
		p.setGauge(p.prefix+"_stage_last_duration_ns", labels, float64(e.DurNS))
		p.mergeHist(p.prefix+"_stage_duration_ns", labels, HistData{
			Count: 1, Sum: e.DurNS,
			Buckets: map[int]uint64{histBucketOf(e.DurNS): 1},
		})
	}
	for name, v := range e.Counters {
		p.addCounter(p.prefix+"_"+promName(name)+"_total", labels, float64(v))
	}
	for name, v := range e.Gauges {
		p.setGauge(p.prefix+"_"+promName(name), labels, v)
	}
	for name, d := range e.Hists {
		p.mergeHist(p.prefix+"_"+promName(name), labels, d)
	}
}

// labelsLocked renders the event's label set — `stage="x"` plus, when
// the event carries a tenant attr, `,tenant="y"` bounded by the tenant
// cap. The rendered string is the series key, so identical label sets
// accumulate into one series and the exposition sorts by it.
func (p *PromSink) labelsLocked(e Event) string {
	labels := `stage="` + promLabel(e.Stage) + `"`
	for _, key := range extraLabels {
		v := e.Attrs[key]
		if v == "" {
			continue
		}
		vals := p.extras[key]
		if vals == nil {
			vals = map[string]bool{}
			p.extras[key] = vals
		}
		if !vals[v] {
			if len(vals) < extraLimit {
				vals[v] = true
			} else {
				v = "other"
			}
		}
		labels += `,` + key + `="` + promLabel(v) + `"`
	}
	if t := e.Attrs["tenant"]; t != "" {
		if !p.tenants[t] {
			if len(p.tenants) < p.maxTenants {
				p.tenants[t] = true
			} else {
				t = "other"
			}
		}
		labels += `,tenant="` + promLabel(t) + `"`
	}
	return labels
}

func (p *PromSink) addCounter(family, labels string, v float64) {
	if p.counters[family] == nil {
		p.counters[family] = map[string]float64{}
	}
	p.counters[family][labels] += v
}

func (p *PromSink) setGauge(family, labels string, v float64) {
	if p.gauges[family] == nil {
		p.gauges[family] = map[string]float64{}
	}
	p.gauges[family][labels] = v
}

func (p *PromSink) mergeHist(family, labels string, d HistData) {
	if p.hists[family] == nil {
		p.hists[family] = map[string]*HistData{}
	}
	acc := p.hists[family][labels]
	if acc == nil {
		acc = &HistData{}
		p.hists[family][labels] = acc
	}
	acc.Merge(d)
}

// ServeHTTP renders the exposition (Prometheus text format 0.0.4).
func (p *PromSink) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p.writeExposition(w)
}

// writeExposition writes the full exposition to w, families sorted by name and
// series sorted by label set, so successive scrapes diff cleanly.
func (p *PromSink) writeExposition(w io.Writer) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, fam := range sortedKeys(p.counters) {
		fmt.Fprintf(w, "# TYPE %s counter\n", fam)
		for _, labels := range sortedKeys(p.counters[fam]) {
			fmt.Fprintf(w, "%s{%s} %s\n", fam, labels, promFloat(p.counters[fam][labels]))
		}
	}
	for _, fam := range sortedKeys(p.gauges) {
		fmt.Fprintf(w, "# TYPE %s gauge\n", fam)
		for _, labels := range sortedKeys(p.gauges[fam]) {
			fmt.Fprintf(w, "%s{%s} %s\n", fam, labels, promFloat(p.gauges[fam][labels]))
		}
	}
	for _, fam := range sortedKeys(p.hists) {
		fmt.Fprintf(w, "# TYPE %s histogram\n", fam)
		for _, labels := range sortedKeys(p.hists[fam]) {
			d := p.hists[fam][labels]
			// Cumulative buckets over the populated range only: a sparse
			// bucket set is valid exposition, and 64 mostly-empty series
			// per histogram would bloat every scrape.
			var idxs []int
			for i := range d.Buckets {
				idxs = append(idxs, i)
			}
			sort.Ints(idxs)
			var cum uint64
			for _, i := range idxs {
				cum += d.Buckets[i]
				le := "+Inf"
				if i < histBuckets-1 {
					le = strconv.FormatInt(HistBucketUpper(i), 10)
				}
				fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", fam, labels, le, cum)
			}
			if len(idxs) == 0 || idxs[len(idxs)-1] < histBuckets-1 {
				fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", fam, labels, cum)
			}
			fmt.Fprintf(w, "%s_sum{%s} %d\n", fam, labels, d.Sum)
			fmt.Fprintf(w, "%s_count{%s} %d\n", fam, labels, d.Count)
		}
	}
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// promFloat renders a sample value: integral values without an
// exponent, everything else in Go's shortest form.
func promFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promName sanitizes a telemetry name ("atpg.podem_ns") into a legal
// Prometheus metric-name fragment ("atpg_podem_ns").
func promName(s string) string {
	b := []byte(s)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				b[i] = '_'
			}
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

// promLabel escapes a label value per the Prometheus text format:
// backslash, double quote, and newline are the only characters that
// need escaping inside a quoted label value.
func promLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 4)
	for _, c := range []byte(s) {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}
