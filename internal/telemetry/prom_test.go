package telemetry

import (
	"errors"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
)

func scrape(t *testing.T, p *PromSink) string {
	t.Helper()
	srv := httptest.NewServer(p)
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type = %q, want text format 0.0.4", ct)
	}
	var sb strings.Builder
	buf := make([]byte, 64*1024)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}

func TestPromSinkExposition(t *testing.T) {
	p := NewPromSink("tpilayout")
	tr := New(p)

	sp := tr.StartSpan("atpg", 1)
	sp.Counter("atpg.patterns").Add(412)
	sp.Gauge("atpg.shard_util").Set(0.875)
	h := sp.Histogram("atpg.podem_ns")
	h.Observe(900)
	h.Observe(1100)
	h.Observe(1 << 30)
	sp.End()

	rt := tr.StartSpan("route", 1)
	rt.Counter("route.overflows").Add(3)
	rt.EndErr(errors.New("boom"))

	out := scrape(t, p)

	for _, want := range []string{
		"# TYPE tpilayout_atpg_patterns_total counter",
		`tpilayout_atpg_patterns_total{stage="atpg"} 412`,
		"# TYPE tpilayout_atpg_shard_util gauge",
		`tpilayout_atpg_shard_util{stage="atpg"} 0.875`,
		"# TYPE tpilayout_atpg_podem_ns histogram",
		`tpilayout_atpg_podem_ns_sum{stage="atpg"} 1073743824`,
		`tpilayout_atpg_podem_ns_count{stage="atpg"} 3`,
		`tpilayout_atpg_podem_ns_bucket{stage="atpg",le="+Inf"} 3`,
		"# TYPE tpilayout_stage_duration_ns histogram",
		`tpilayout_spans_total{stage="atpg"} 1`,
		`tpilayout_spans_total{stage="route"} 1`,
		`tpilayout_span_errors_total{stage="route"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}

	// Buckets are cumulative and monotone: 900 and 1100 straddle the
	// le=1024 bound, the 2^30 observation only reaches +Inf via the
	// cumulative sum.
	if !strings.Contains(out, `tpilayout_atpg_podem_ns_bucket{stage="atpg",le="1024"} 1`) {
		t.Errorf("le=1024 bucket wrong:\n%s", out)
	}
	if !strings.Contains(out, `tpilayout_atpg_podem_ns_bucket{stage="atpg",le="2048"} 2`) {
		t.Errorf("le=2048 bucket wrong:\n%s", out)
	}

	// Basic text-format validity: every non-comment line is
	// name{labels} value.
	sample := regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*\{[^}]*\} -?[0-9.eE+\-Inf]+$`)
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sample.MatchString(line) {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

// TestPromSinkLiveScrape: scraping mid-run (some spans still open) is
// safe and shows the closed spans — the live-sweep use case.
func TestPromSinkLiveScrape(t *testing.T) {
	p := NewPromSink("tpilayout")
	tr := New(p)
	root := tr.StartSpan("sweep", -1)
	run := root.ChildTP("run", 1)
	st := run.Child("place")
	st.Counter("place.cuts").Add(7)
	st.End()
	// root and run still open.
	out := scrape(t, p)
	if !strings.Contains(out, `tpilayout_place_cuts_total{stage="place"} 7`) {
		t.Fatalf("mid-run scrape missing closed stage:\n%s", out)
	}
	if strings.Contains(out, `stage="sweep"`) {
		t.Fatalf("open span leaked into exposition:\n%s", out)
	}
	run.End()
	root.End()
	out = scrape(t, p)
	if !strings.Contains(out, `tpilayout_spans_total{stage="sweep"} 1`) {
		t.Fatalf("closed sweep missing:\n%s", out)
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"atpg.podem_ns":  "atpg_podem_ns",
		"route.total_um": "route_total_um",
		"9lives":         "_lives",
		"a-b c":          "a_b_c",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestPromLabelEscaping: stage and tenant values containing the three
// characters the text format escapes (backslash, quote, newline) render
// escaped, not raw.
func TestPromLabelEscaping(t *testing.T) {
	p := NewPromSink("t")
	p.Emit(Event{Type: EventSpanEnd, ID: 1, Stage: "we\"ird\\st\nage", DurNS: 5,
		Attrs: map[string]string{"tenant": "acme\"corp"}})
	out := scrape(t, p)
	want := `t_spans_total{stage="we\"ird\\st\nage",tenant="acme\"corp"} 1`
	if !strings.Contains(out, want) {
		t.Errorf("escaped series missing.\nwant: %s\ngot:\n%s", want, out)
	}
	if strings.Contains(out, "st\nage") {
		t.Errorf("raw newline leaked into exposition:\n%s", out)
	}
}

// TestPromTenantOverflow: beyond the tenant cap, new tenants fold into
// tenant="other" while established tenants keep their own series.
func TestPromTenantOverflow(t *testing.T) {
	p := NewPromSink("t")
	p.SetTenantLimit(2)
	obs := func(tenant string) Event {
		return Event{Type: EventSpanEnd, ID: 0, Stage: "service",
			Counters: map[string]int64{"jobs_done": 1},
			Attrs:    map[string]string{"tenant": tenant}}
	}
	p.Emit(obs("alpha"))
	p.Emit(obs("beta"))
	p.Emit(obs("gamma")) // over the cap: folded
	p.Emit(obs("delta")) // over the cap: folded
	p.Emit(obs("alpha")) // established tenant keeps its series

	out := scrape(t, p)
	for series, want := range map[string]string{
		`t_jobs_done_total{stage="service",tenant="alpha"} 2`: "alpha keeps its own series",
		`t_jobs_done_total{stage="service",tenant="beta"} 1`:  "beta under the cap",
		`t_jobs_done_total{stage="service",tenant="other"} 2`: "gamma+delta folded into other",
	} {
		if !strings.Contains(out, series) {
			t.Errorf("%s: missing %q\ngot:\n%s", want, series, out)
		}
	}
	if strings.Contains(out, "gamma") || strings.Contains(out, "delta") {
		t.Errorf("over-cap tenant leaked its own label:\n%s", out)
	}
}

// TestPromObservationEventsNotSpans: ID-0 metric flushes feed their
// counters/gauges but never the span families.
func TestPromObservationEventsNotSpans(t *testing.T) {
	p := NewPromSink("t")
	p.Emit(Event{Type: EventSpanEnd, ID: 0, Stage: "service",
		Counters: map[string]int64{"cache_hits": 3},
		Gauges:   map[string]float64{"queue_depth": 2}})
	out := scrape(t, p)
	if !strings.Contains(out, `t_cache_hits_total{stage="service"} 3`) ||
		!strings.Contains(out, `t_queue_depth{stage="service"} 2`) {
		t.Errorf("observation metrics missing:\n%s", out)
	}
	for _, family := range []string{"t_spans_total", "t_stage_last_duration_ns", "t_stage_duration_ns"} {
		if strings.Contains(out, family) {
			t.Errorf("observation event leaked into span family %s:\n%s", family, out)
		}
	}
}
