package telemetry

import (
	"bufio"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// NDJSONSink writes one JSON object per event to an io.Writer — the
// machine-readable trace format cmd/tracestat and jq consume. Writes are
// buffered and serialized; call Close (or Flush) before reading the
// output.
type NDJSONSink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer
	err error
}

// NewNDJSONSink wraps w. If w is also an io.Closer (a file), Close
// closes it after flushing.
func NewNDJSONSink(w io.Writer) *NDJSONSink {
	s := &NDJSONSink{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Emit marshals the event as one NDJSON line. The first write error
// sticks and is reported by Close/Err.
func (s *NDJSONSink) Emit(e Event) {
	data, err := json.Marshal(e)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	if err != nil {
		s.err = err
		return
	}
	if _, err := s.w.Write(data); err != nil {
		s.err = err
		return
	}
	s.err = s.w.WriteByte('\n')
}

// Flush drains the buffer.
func (s *NDJSONSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

// Close flushes and closes the underlying writer (when it is closable),
// returning the first error the sink saw.
func (s *NDJSONSink) Close() error {
	err := s.Flush()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.c != nil {
		if cerr := s.c.Close(); cerr != nil && s.err == nil {
			s.err = cerr
		}
		s.c = nil
	}
	if s.err != nil {
		return s.err
	}
	return err
}

// Err returns the sink's sticky error.
func (s *NDJSONSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// ExpvarSink publishes telemetry to an expvar.Map, so a -pprof HTTP
// listener exposes live flow statistics on /debug/vars next to the
// profiler. Per span_end it accumulates every counter under its own
// name, sets gauges last-value-wins, and maintains
// "stage.<name>.ns" / "stage.<name>.count" duration rollups.
type ExpvarSink struct {
	m *expvar.Map
}

// expvarMu serializes registration: expvar.Get-then-NewMap is a
// check-then-act race, and expvar itself panics on a duplicate Publish.
var expvarMu sync.Mutex

// NewExpvarSink publishes (or reuses) the named expvar map. The
// constructor is idempotent and safe to call concurrently: a second
// sink for the same name shares the already-published map, and a name
// already taken by a non-map expvar (which expvar.NewMap would panic
// on) degrades to a private unpublished map instead of crashing the
// process.
func NewExpvarSink(name string) *ExpvarSink {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if v := expvar.Get(name); v != nil {
		if m, ok := v.(*expvar.Map); ok {
			return &ExpvarSink{m: m}
		}
		// Name collision with a foreign expvar type: the sink still works,
		// it just isn't visible on /debug/vars.
		return &ExpvarSink{m: new(expvar.Map).Init()}
	}
	return &ExpvarSink{m: expvar.NewMap(name)}
}

// Emit folds a span_end event into the map.
func (s *ExpvarSink) Emit(e Event) {
	if e.Type != EventSpanEnd {
		return
	}
	s.m.Add("stage."+e.Stage+".ns", e.DurNS)
	s.m.Add("stage."+e.Stage+".count", 1)
	for k, v := range e.Counters {
		s.m.Add(k, v)
	}
	for k, v := range e.Gauges {
		f := new(expvar.Float)
		f.Set(v)
		s.m.Set(k, f)
	}
}

// ProgressSink prints one human-readable line per span start and end —
// the -progress surface of the CLIs. Lines are written atomically, so
// concurrent sweep workers interleave whole lines, never fragments.
type ProgressSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewProgressSink writes progress lines to w (normally os.Stderr).
func NewProgressSink(w io.Writer) *ProgressSink {
	return &ProgressSink{w: w}
}

// Emit prints "-> stage" on span start and "ok stage <dur>" (or
// "!! stage <dur> error: ...") on span end, tagged with the TP level.
func (s *ProgressSink) Emit(e Event) {
	var line string
	switch e.Type {
	case EventSpanStart:
		line = fmt.Sprintf("-> %-8s %s\n", e.Stage, tpLabel(e.TPPercent))
	case EventSpanEnd:
		d := time.Duration(e.DurNS).Round(100 * time.Microsecond)
		if e.Err != "" {
			line = fmt.Sprintf("!! %-8s %s  %-10v error: %s\n", e.Stage, tpLabel(e.TPPercent), d, e.Err)
		} else {
			line = fmt.Sprintf("ok %-8s %s  %v\n", e.Stage, tpLabel(e.TPPercent), d)
		}
	default:
		return
	}
	s.mu.Lock()
	io.WriteString(s.w, line)
	s.mu.Unlock()
}

// tpLabel renders a TP level column; the sweep root's -1 sentinel shows
// as a blank.
func tpLabel(tp float64) string {
	if tp < 0 {
		return "[  all ]"
	}
	return "[" + strconv.FormatFloat(tp, 'f', 1, 64) + "%]"
}
