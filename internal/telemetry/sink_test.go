package telemetry

import (
	"expvar"
	"strings"
	"sync"
	"testing"
)

// TestExpvarSinkIdempotent: constructing the sink twice for one name —
// the second -pprof run in a single process — must reuse the published
// map instead of panicking in expvar.Publish.
func TestExpvarSinkIdempotent(t *testing.T) {
	const name = "tpilayout_test_idem"
	a := NewExpvarSink(name)
	b := NewExpvarSink(name) // used to panic: duplicate Publish
	if a.m != b.m {
		t.Fatal("second sink did not reuse the published map")
	}
	a.Emit(Event{Type: EventSpanEnd, Stage: "place", DurNS: 10})
	b.Emit(Event{Type: EventSpanEnd, Stage: "place", DurNS: 32})
	if got := a.m.Get("stage.place.count").String(); got != "2" {
		t.Fatalf("shared map count = %s, want 2", got)
	}
}

// TestExpvarSinkForeignCollision: a name already claimed by a non-map
// expvar (which expvar.NewMap panics on) degrades to a private map.
func TestExpvarSinkForeignCollision(t *testing.T) {
	const name = "tpilayout_test_foreign"
	expvar.NewString(name).Set("taken")
	s := NewExpvarSink(name)
	s.Emit(Event{Type: EventSpanEnd, Stage: "route", DurNS: 7})
	if got := s.m.Get("stage.route.count").String(); got != "1" {
		t.Fatalf("private fallback map count = %s, want 1", got)
	}
	// The foreign var survives untouched.
	if got := expvar.Get(name).String(); !strings.Contains(got, "taken") {
		t.Fatalf("foreign expvar clobbered: %s", got)
	}
}

// TestExpvarSinkConcurrentConstruct: racing constructors (parallel
// tests, concurrent Tracer builds) are safe and converge on one map.
func TestExpvarSinkConcurrentConstruct(t *testing.T) {
	const name = "tpilayout_test_race"
	sinks := make([]*ExpvarSink, 8)
	var wg sync.WaitGroup
	for i := range sinks {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sinks[i] = NewExpvarSink(name)
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(sinks); i++ {
		if sinks[i].m != sinks[0].m {
			t.Fatalf("sink %d got a different map", i)
		}
	}
}
