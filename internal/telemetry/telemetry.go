// Package telemetry is the flow's zero-dependency observability layer:
// nested wall-clock spans for every stage of the Figure 2 flow, typed
// counters and gauges recorded at the hot sites of ATPG, placement,
// routing, clock-tree synthesis and STA, and pluggable sinks — an
// in-memory snapshot tree, an NDJSON event stream (one JSON object per
// line, jq/flamegraph-friendly), an expvar publisher, and live progress
// lines.
//
// The layer is built to disappear: every method is safe on a nil
// *Tracer / *Span / *Counter / *Gauge receiver and returns immediately,
// so instrumented code holds plain pointers and pays one predictable nil
// check per call when telemetry is off. The disabled path allocates
// nothing and starts no goroutines.
package telemetry

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// EventType discriminates the NDJSON event records.
type EventType string

const (
	// EventSpanStart is emitted when a span opens.
	EventSpanStart EventType = "span_start"
	// EventSpanEnd is emitted exactly once when a span closes; it carries
	// the duration, the error (if any), and the span's counter/gauge
	// values. A span_end with ID 0 is an observation event — a metric
	// flush with no matching span_start (the service emits these) — and
	// is exempt from trace balance checking.
	EventSpanEnd EventType = "span_end"
	// EventLog is a structured log record forwarded into the event
	// stream by Logger, so sinks (notably the flight recorder) retain
	// log lines interleaved with spans.
	EventLog EventType = "log"
)

// Event is one telemetry record. It doubles as the NDJSON wire format:
// the trace file is one JSON-marshalled Event per line.
type Event struct {
	Type   EventType `json:"ev"`
	ID     int64     `json:"id"`
	Parent int64     `json:"parent,omitempty"` // 0 = root span
	Stage  string    `json:"stage"`
	// TPPercent is the test-point level the span belongs to; -1 on spans
	// that aggregate several levels (the sweep root).
	TPPercent float64   `json:"tp"`
	Time      time.Time `json:"t"`
	// DurNS is the span's wall-clock duration in nanoseconds (span_end
	// only).
	DurNS int64 `json:"dur_ns,omitempty"`
	// CPUNS is the process CPU time (user+system) consumed while the
	// span was open, in nanoseconds (span_end only; 0 where rusage is
	// unavailable). It is a process-wide delta: exact when one flow runs
	// at a time, an attribution upper bound when runs overlap — the
	// pprof run_id/stage labels give the exact split.
	CPUNS    int64              `json:"cpu_ns,omitempty"`
	Err      string             `json:"err,omitempty"`
	Counters map[string]int64   `json:"counters,omitempty"`
	Gauges   map[string]float64 `json:"gauges,omitempty"`
	// Hists carries the span's histogram snapshots (span_end only):
	// sparse power-of-two bucket populations, mergeable across spans and
	// across runs (see HistData).
	Hists map[string]HistData `json:"hists,omitempty"`
	// Attrs carries the emitting component's correlation identity
	// (run_id, job_id, tenant, ...) plus, on log records, the record's
	// structured fields. The map is shared across events from one
	// Tracer and must be treated as read-only by sinks.
	Attrs map[string]string `json:"attrs,omitempty"`
	// Level and Msg are set on EventLog records only.
	Level string `json:"level,omitempty"`
	Msg   string `json:"msg,omitempty"`
}

// Sink consumes telemetry events. Emit must be safe for concurrent use:
// sweep workers close spans from multiple goroutines.
type Sink interface {
	Emit(e Event)
}

// FuncSink adapts a function to the Sink interface.
type FuncSink func(Event)

// Emit calls f.
func (f FuncSink) Emit(e Event) { f(e) }

// Tracer produces spans and fans their events out to its sinks. The
// zero-cost disabled state is a nil *Tracer, not a Tracer with no sinks.
type Tracer struct {
	sinks []Sink
	attrs map[string]string // stamped onto every event; read-only once set
	ids   atomic.Int64
	now   func() time.Time // test hook; time.Now in production
}

// New returns a Tracer delivering events to the given sinks.
func New(sinks ...Sink) *Tracer {
	return &Tracer{sinks: sinks, now: time.Now}
}

// WithAttrs returns a Tracer sharing the receiver's sinks whose every
// event carries the given correlation attrs (merged over any the
// receiver already stamps). tpid uses this to stamp run_id/job_id/
// tenant onto every span a flow run emits. The derived tracer has its
// own span-ID sequence, so derive before opening spans, not mid-trace.
// The attrs map is retained and shared by reference: callers must not
// mutate it, and sinks must treat Event.Attrs as read-only. Safe on a
// nil receiver (stays nil: disabled telemetry stays free).
func (t *Tracer) WithAttrs(attrs map[string]string) *Tracer {
	if t == nil || len(attrs) == 0 {
		return t
	}
	merged := make(map[string]string, len(t.attrs)+len(attrs))
	for k, v := range t.attrs {
		merged[k] = v
	}
	for k, v := range attrs {
		merged[k] = v
	}
	return &Tracer{sinks: t.sinks, attrs: merged, now: t.now}
}

// Attr returns the named correlation attr stamped on the tracer's
// events ("" when unset or on a nil receiver). Flow uses it to carry
// the service's run_id into pprof labels.
func (t *Tracer) Attr(key string) string {
	if t == nil {
		return ""
	}
	return t.attrs[key]
}

// StartSpan opens a root span for one flow stage or sweep level. Safe on
// a nil receiver (returns a nil span; the whole subtree is then free).
func (t *Tracer) StartSpan(stage string, tpPercent float64) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(nil, stage, tpPercent)
}

func (t *Tracer) newSpan(parent *Span, stage string, tp float64) *Span {
	s := &Span{tr: t, id: t.ids.Add(1), parent: parent, stage: stage, tp: tp, start: t.now(), cpuStart: procCPUNS()}
	var pid int64
	if parent != nil {
		pid = parent.id
	}
	t.emit(Event{Type: EventSpanStart, ID: s.id, Parent: pid, Stage: stage, TPPercent: tp, Time: s.start})
	return s
}

func (t *Tracer) emit(e Event) {
	if e.Attrs == nil {
		e.Attrs = t.attrs
	}
	for _, s := range t.sinks {
		s.Emit(e)
	}
}

// Span is one timed region — a flow stage, a sweep level, or a whole
// run. Spans nest via Child, carry per-span counters and gauges, and
// close exactly once (End is idempotent, so a deferred safety close
// after an explicit close is a no-op). All methods are safe on a nil
// receiver and safe for concurrent use.
type Span struct {
	tr     *Tracer
	id     int64
	parent *Span
	stage  string
	tp     float64
	start  time.Time
	// cpuStart is the process CPU clock at span open; EndErr records the
	// delta as the span's CPU attribution.
	cpuStart int64

	mu       sync.Mutex
	counters []*Counter
	gauges   []*Gauge
	hists    []*Histogram
	children []*Snapshot
	snap     *Snapshot // non-nil once ended
}

// Stage returns the span's stage name ("" on nil).
func (s *Span) Stage() string {
	if s == nil {
		return ""
	}
	return s.stage
}

// TPPercent returns the span's test-point level (0 on nil).
func (s *Span) TPPercent() float64 {
	if s == nil {
		return 0
	}
	return s.tp
}

// Child opens a nested span inheriting the parent's TP level.
func (s *Span) Child(stage string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.newSpan(s, stage, s.tp)
}

// ChildTP opens a nested span at an explicit TP level (the sweep root
// uses it to open one child per level).
func (s *Span) ChildTP(stage string, tpPercent float64) *Span {
	if s == nil {
		return nil
	}
	return s.tr.newSpan(s, stage, tpPercent)
}

// Counter registers a named counter on the span. Its value is flushed
// into the span_end event and the snapshot. Registering the same name
// twice sums the two at flush time.
func (s *Span) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	c := &Counter{name: name}
	s.mu.Lock()
	s.counters = append(s.counters, c)
	s.mu.Unlock()
	return c
}

// Gauge registers a named gauge on the span.
func (s *Span) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	g := &Gauge{name: name}
	s.mu.Lock()
	s.gauges = append(s.gauges, g)
	s.mu.Unlock()
	return g
}

// Histogram registers a named histogram on the span. Its snapshot is
// flushed into the span_end event; registering the same name twice
// merges the two at flush time (index-wise bucket addition). On a nil
// span it returns a nil histogram, whose Observe (and whose Local
// shards) cost one nil check each.
func (s *Span) Histogram(name string) *Histogram {
	if s == nil {
		return nil
	}
	h := &Histogram{name: name}
	s.mu.Lock()
	s.hists = append(s.hists, h)
	s.mu.Unlock()
	return h
}

// Elapsed returns the wall time since the span opened (0 on nil). It
// does not close the span; flow uses it to feed the per-stage wall
// time into the stage's duration histogram just before the close.
func (s *Span) Elapsed() time.Duration {
	if s == nil {
		return 0
	}
	return s.tr.now().Sub(s.start)
}

// End closes the span successfully.
func (s *Span) End() { s.EndErr(nil) }

// EndErr closes the span, recording err (nil for success): the duration
// is fixed, counters and gauges are flushed, the snapshot is attached to
// the parent, and one span_end event is emitted. Only the first close
// wins; later calls are no-ops, which lets a deferred EndErr guarantee
// balance on panic/error paths without double-emitting on the happy
// path.
func (s *Span) EndErr(err error) {
	if s == nil {
		return
	}
	end := s.tr.now()
	s.mu.Lock()
	if s.snap != nil {
		s.mu.Unlock()
		return
	}
	snap := &Snapshot{
		Stage:     s.stage,
		TPPercent: s.tp,
		Start:     s.start,
		Duration:  end.Sub(s.start),
		Children:  s.children,
	}
	if s.cpuStart != 0 {
		if cpu := procCPUNS() - s.cpuStart; cpu > 0 {
			snap.CPUNS = cpu
		}
	}
	if err != nil {
		snap.Err = err.Error()
	}
	for _, c := range s.counters {
		if v := c.Value(); v != 0 {
			if snap.Counters == nil {
				snap.Counters = make(map[string]int64, len(s.counters))
			}
			snap.Counters[c.name] += v
		}
	}
	for _, g := range s.gauges {
		// NaN/Inf would poison json.Marshal of the NDJSON line; drop them.
		if v := g.Value(); v != 0 && !math.IsNaN(v) && !math.IsInf(v, 0) {
			if snap.Gauges == nil {
				snap.Gauges = make(map[string]float64, len(s.gauges))
			}
			snap.Gauges[g.name] = v
		}
	}
	for _, h := range s.hists {
		d := h.Snapshot()
		if d.Count == 0 {
			continue
		}
		if snap.Hists == nil {
			snap.Hists = make(map[string]HistData, len(s.hists))
		}
		merged := snap.Hists[h.name]
		merged.Merge(d)
		snap.Hists[h.name] = merged
	}
	s.snap = snap
	s.mu.Unlock()

	if s.parent != nil {
		s.parent.addChild(snap)
	}
	var pid int64
	if s.parent != nil {
		pid = s.parent.id
	}
	s.tr.emit(Event{
		Type: EventSpanEnd, ID: s.id, Parent: pid, Stage: s.stage,
		TPPercent: s.tp, Time: s.start, DurNS: int64(snap.Duration),
		CPUNS: snap.CPUNS,
		Err:   snap.Err, Counters: snap.Counters, Gauges: snap.Gauges,
		Hists: snap.Hists,
	})
}

func (s *Span) addChild(sn *Snapshot) {
	s.mu.Lock()
	s.children = append(s.children, sn)
	s.mu.Unlock()
}

// Snapshot returns the span's finished record, or nil before End. The
// snapshot owns its subtree: children appear in the order they closed
// (serial flow stages close in flow order; concurrent sweep levels close
// in completion order).
func (s *Span) Snapshot() *Snapshot {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snap
}

// Counter is a monotonically increasing span-scoped metric. Adds are
// atomic, so shard goroutines may share one counter.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add increases the counter; no-op on a nil receiver or n == 0.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins span-scoped metric.
type Gauge struct {
	name string
	bits atomic.Uint64
}

// Set records the gauge value; no-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last set value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Snapshot is the in-memory record of one finished span and its
// subtree; flow attaches the run's snapshot to Result.Telemetry.
type Snapshot struct {
	Stage     string              `json:"stage"`
	TPPercent float64             `json:"tp"`
	Start     time.Time           `json:"start"`
	Duration  time.Duration       `json:"duration"`
	CPUNS     int64               `json:"cpu_ns,omitempty"`
	Err       string              `json:"err,omitempty"`
	Counters  map[string]int64    `json:"counters,omitempty"`
	Gauges    map[string]float64  `json:"gauges,omitempty"`
	Hists     map[string]HistData `json:"hists,omitempty"`
	Children  []*Snapshot         `json:"children,omitempty"`
}

// Find returns the first snapshot with the given stage name in a
// depth-first walk of the subtree (including the receiver), or nil.
func (sn *Snapshot) Find(stage string) *Snapshot {
	if sn == nil {
		return nil
	}
	if sn.Stage == stage {
		return sn
	}
	for _, c := range sn.Children {
		if f := c.Find(stage); f != nil {
			return f
		}
	}
	return nil
}

// Counter returns the named counter's value summed over the subtree.
func (sn *Snapshot) Counter(name string) int64 {
	if sn == nil {
		return 0
	}
	total := sn.Counters[name]
	for _, c := range sn.Children {
		total += c.Counter(name)
	}
	return total
}

// Hist returns the named histogram merged over the subtree — the
// cross-level aggregation a sweep root's snapshot exposes.
func (sn *Snapshot) Hist(name string) HistData {
	var d HistData
	if sn == nil {
		return d
	}
	if h, ok := sn.Hists[name]; ok {
		d.Merge(h)
	}
	for _, c := range sn.Children {
		d.Merge(c.Hist(name))
	}
	return d
}
