package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestNilFastPath: the disabled layer is a nil tracer; every derived
// handle is nil and every operation is a no-op, never a panic.
func TestNilFastPath(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan("run", 1)
	if sp != nil {
		t.Fatal("nil tracer produced a span")
	}
	child := sp.Child("atpg")
	if child != nil {
		t.Fatal("nil span produced a child")
	}
	c := child.Counter("atpg.patterns")
	g := child.Gauge("atpg.util")
	c.Add(5)
	g.Set(0.5)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil metrics returned nonzero values")
	}
	sp.ChildTP("level", 2).EndErr(errors.New("x"))
	sp.End()
	if sp.Snapshot() != nil {
		t.Fatal("nil span produced a snapshot")
	}
}

func TestSpanTreeSnapshot(t *testing.T) {
	tr := New()
	root := tr.StartSpan("run", 2)
	a := root.Child("tpi")
	a.Counter("tpi.points").Add(7)
	a.End()
	b := root.Child("atpg")
	b.Counter("atpg.patterns").Add(100)
	b.Counter("atpg.patterns").Add(1) // duplicate name sums
	b.Gauge("atpg.util").Set(0.75)
	b.EndErr(errors.New("boom"))
	b.End() // idempotent: only the first close wins
	root.End()

	sn := root.Snapshot()
	if sn == nil || sn.Stage != "run" || sn.TPPercent != 2 {
		t.Fatalf("bad root snapshot: %+v", sn)
	}
	if len(sn.Children) != 2 || sn.Children[0].Stage != "tpi" || sn.Children[1].Stage != "atpg" {
		t.Fatalf("children = %+v", sn.Children)
	}
	at := sn.Find("atpg")
	if at.Counters["atpg.patterns"] != 101 {
		t.Errorf("patterns = %d, want 101", at.Counters["atpg.patterns"])
	}
	if at.Gauges["atpg.util"] != 0.75 {
		t.Errorf("util = %g", at.Gauges["atpg.util"])
	}
	if at.Err != "boom" {
		t.Errorf("err = %q (second End must not overwrite)", at.Err)
	}
	if sn.Counter("atpg.patterns") != 101 || sn.Counter("tpi.points") != 7 {
		t.Error("subtree counter sums wrong")
	}
}

func TestNDJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewNDJSONSink(&buf)
	tr := New(sink)
	root := tr.StartSpan("run", 1)
	st := root.Child("place")
	st.Counter("place.moves").Add(3)
	st.End()
	root.Child("route").EndErr(errors.New("net 4: no path"))
	root.End()
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 6 { // 3 starts + 3 ends
		t.Fatalf("got %d lines, want 6:\n%s", len(lines), buf.String())
	}
	for i, line := range lines {
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %d not valid JSON: %v", i+1, err)
		}
	}
	trace, err := ParseTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !trace.Balanced() {
		t.Fatalf("unbalanced spans: %v", trace.Unbalanced)
	}
	if len(trace.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(trace.Spans))
	}
	var routeErr string
	for _, s := range trace.Spans {
		if s.Stage == "route" {
			routeErr = s.Err
		}
		if s.Stage == "place" && s.Counters["place.moves"] != 3 {
			t.Errorf("place counters = %v", s.Counters)
		}
	}
	if routeErr != "net 4: no path" {
		t.Errorf("route err = %q", routeErr)
	}
}

func TestParseTraceUnbalanced(t *testing.T) {
	in := `{"ev":"span_start","id":1,"stage":"run","tp":0,"t":"2026-01-01T00:00:00Z"}
{"ev":"span_start","id":2,"parent":1,"stage":"tpi","tp":0,"t":"2026-01-01T00:00:00Z"}
{"ev":"span_end","id":2,"parent":1,"stage":"tpi","tp":0,"t":"2026-01-01T00:00:00Z","dur_ns":5}
`
	trace, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if trace.Balanced() {
		t.Fatal("open span 1 not reported")
	}
	if len(trace.Unbalanced) != 1 || trace.Unbalanced[0] != 1 {
		t.Fatalf("Unbalanced = %v, want [1]", trace.Unbalanced)
	}
	if _, err := ParseTrace(strings.NewReader("{truncated")); err == nil {
		t.Fatal("malformed line accepted")
	}
}

// TestConcurrentChildren models a parallel sweep: many goroutines open
// and close children of one root while sharing a counter. Run with
// -race.
func TestConcurrentChildren(t *testing.T) {
	var buf bytes.Buffer
	sink := NewNDJSONSink(&buf)
	tr := New(sink)
	root := tr.StartSpan("sweep", -1)
	shared := root.Counter("sweep.levels")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lv := root.ChildTP("run", float64(i))
			lv.Counter("work.items").Add(int64(i))
			st := lv.Child("place")
			st.End()
			lv.End()
			shared.Add(1)
		}(i)
	}
	wg.Wait()
	root.End()
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	trace, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !trace.Balanced() {
		t.Fatalf("unbalanced: %v", trace.Unbalanced)
	}
	sn := root.Snapshot()
	if len(sn.Children) != 8 {
		t.Fatalf("root has %d children, want 8", len(sn.Children))
	}
	if sn.Counters["sweep.levels"] != 8 {
		t.Fatalf("shared counter = %d", sn.Counters["sweep.levels"])
	}
	if got := trace.Levels(); len(got) != 8 {
		t.Fatalf("levels = %v", got)
	}
}

func TestExpvarSink(t *testing.T) {
	sink := NewExpvarSink("telemetry_test")
	if again := NewExpvarSink("telemetry_test"); again.m != sink.m {
		t.Fatal("second NewExpvarSink did not reuse the published map")
	}
	tr := New(sink)
	sp := tr.StartSpan("atpg", 1)
	sp.Counter("atpg.patterns").Add(10)
	sp.Gauge("atpg.util").Set(0.5)
	sp.End()
	sp2 := tr.StartSpan("atpg", 2)
	sp2.Counter("atpg.patterns").Add(5)
	sp2.End()

	m := expvar.Get("telemetry_test").(*expvar.Map)
	if got := m.Get("atpg.patterns").String(); got != "15" {
		t.Errorf("atpg.patterns = %s, want 15", got)
	}
	if got := m.Get("stage.atpg.count").String(); got != "2" {
		t.Errorf("stage.atpg.count = %s, want 2", got)
	}
	if got := m.Get("atpg.util").String(); got != "0.5" {
		t.Errorf("atpg.util = %s, want 0.5", got)
	}
}

func TestProgressSink(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewProgressSink(&buf))
	sp := tr.StartSpan("place", 1.5)
	sp.End()
	tr.StartSpan("route", 2).EndErr(errors.New("bad"))
	out := buf.String()
	for _, want := range []string{"-> place", "ok place", "[1.5%]", "!! route", "error: bad"} {
		if !strings.Contains(out, want) {
			t.Errorf("progress output missing %q:\n%s", want, out)
		}
	}
}

// TestGaugeNaNDropped: non-finite gauges must not poison the NDJSON
// marshal.
func TestGaugeNaNDropped(t *testing.T) {
	var buf bytes.Buffer
	sink := NewNDJSONSink(&buf)
	tr := New(sink)
	sp := tr.StartSpan("sta", 0)
	sp.Gauge("sta.slack").Set(nan())
	sp.End()
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseTrace(&buf); err != nil {
		t.Fatalf("NaN gauge leaked into NDJSON: %v", err)
	}
}

func nan() float64 { var z float64; return z / z }

// The disabled-path benchmarks pin the "~ns overhead when off" claim;
// the whole point of the nil fast path is that instrumented hot loops
// cost nothing when no tracer is attached.
func BenchmarkDisabledSpan(b *testing.B) {
	var tr *Tracer
	for i := 0; i < b.N; i++ {
		sp := tr.StartSpan("stage", 1)
		sp.Counter("x").Add(1)
		sp.End()
	}
}

func BenchmarkDisabledCounter(b *testing.B) {
	var c *Counter
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkEnabledSpan(b *testing.B) {
	tr := New() // no sinks: measures span bookkeeping alone
	for i := 0; i < b.N; i++ {
		sp := tr.StartSpan("stage", 1)
		sp.Counter("x").Add(1)
		sp.End()
	}
}

func ExampleProgressSink() {
	tr := New(NewProgressSink(nopWriter{}))
	sp := tr.StartSpan("run", 1)
	defer sp.End()
	fmt.Println(sp.Stage(), sp.TPPercent())
	// Output: run 1
}

type nopWriter struct{}

func (nopWriter) Write(p []byte) (int, error) { return len(p), nil }
