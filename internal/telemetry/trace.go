package telemetry

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// SpanRecord is one reconstructed span of a parsed NDJSON trace: the
// matched start/end pair with the end event's payload.
type SpanRecord struct {
	ID        int64
	Parent    int64
	Stage     string
	TPPercent float64
	Start     time.Time
	Duration  time.Duration
	CPUNS     int64
	Err       string
	Counters  map[string]int64
	Gauges    map[string]float64
	Hists     map[string]HistData
	// Attrs is the span's correlation identity (run_id, job_id, tenant)
	// as stamped on its span_end event.
	Attrs map[string]string
}

// Trace is a parsed NDJSON trace file.
type Trace struct {
	Events []Event
	// Spans holds every balanced start/end pair, in end-event order.
	Spans []SpanRecord
	// Unbalanced lists span IDs that started but never ended, or ended
	// without a start — a crashed or mis-instrumented run.
	Unbalanced []int64
	// Observations holds span_end events with ID 0: metric flushes the
	// service emits with no matching span_start (queue depth, cache
	// hits, per-tenant SLO samples). They are not spans and do not count
	// against balance.
	Observations []Event
	// Logs holds the EventLog records interleaved in the stream.
	Logs []Event
}

// SniffGzip wraps r so gzip-compressed input (detected by the 0x1f 0x8b
// magic bytes) is transparently decompressed; plain input passes
// through. Archived traces are stored gzipped, so tracediff/tracestat
// accept either form from the same flag.
func SniffGzip(r io.Reader) (io.Reader, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(2)
	if err == io.EOF {
		return br, nil // shorter than 2 bytes: not gzip, let the parser see it
	}
	if err != nil {
		return nil, err
	}
	if magic[0] == 0x1f && magic[1] == 0x8b {
		return gzip.NewReader(br)
	}
	return br, nil
}

// ParseTrace reads an NDJSON trace, transparently decompressing gzip
// input. Every line must parse as an Event; a malformed line is an
// error (a trace that tails off mid-line came from a crashed writer).
// Balance problems are reported in Trace.Unbalanced, not as an error —
// call Balanced to gate on them.
func ParseTrace(r io.Reader) (*Trace, error) {
	rr, err := SniffGzip(r)
	if err != nil {
		return nil, err
	}
	b := newTraceBuilder()
	sc := bufio.NewScanner(rr)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("trace line %d: %w", lineNo, err)
		}
		if err := b.add(e); err != nil {
			return nil, fmt.Errorf("trace line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.finish(), nil
}

// TraceFromEvents reconstructs a trace from an in-memory event stream
// (e.g. a run's retained span events) — the same pairing rules as
// ParseTrace without the NDJSON round-trip. Events of unknown type are
// ignored.
func TraceFromEvents(events []Event) *Trace {
	b := newTraceBuilder()
	for _, e := range events {
		_ = b.add(e) // unknown types skipped; in-memory streams carry no others
	}
	return b.finish()
}

// traceBuilder accumulates events into a Trace, pairing span starts
// with ends.
type traceBuilder struct {
	tr   *Trace
	open map[int64]Event
}

func newTraceBuilder() *traceBuilder {
	return &traceBuilder{tr: &Trace{}, open: map[int64]Event{}}
}

func (b *traceBuilder) add(e Event) error {
	tr := b.tr
	switch e.Type {
	case EventSpanStart:
		b.open[e.ID] = e
	case EventSpanEnd:
		if _, openZero := b.open[0]; e.ID == 0 && !openZero {
			// A bare id-0 end with no matching start is a service
			// metric flush, not a span. (Tracers mint span ids from
			// 1, but a trace that DID start span 0 still pairs.)
			tr.Events = append(tr.Events, e)
			tr.Observations = append(tr.Observations, e)
			return nil
		}
		start, ok := b.open[e.ID]
		if !ok {
			tr.Events = append(tr.Events, e)
			tr.Unbalanced = append(tr.Unbalanced, e.ID)
			return nil
		}
		delete(b.open, e.ID)
		tr.Spans = append(tr.Spans, SpanRecord{
			ID: e.ID, Parent: e.Parent, Stage: e.Stage,
			TPPercent: e.TPPercent, Start: start.Time,
			Duration: time.Duration(e.DurNS), CPUNS: e.CPUNS, Err: e.Err,
			Counters: e.Counters, Gauges: e.Gauges, Hists: e.Hists,
			Attrs: e.Attrs,
		})
	case EventLog:
		tr.Logs = append(tr.Logs, e)
	default:
		return fmt.Errorf("unknown event type %q", e.Type)
	}
	tr.Events = append(tr.Events, e)
	return nil
}

func (b *traceBuilder) finish() *Trace {
	tr := b.tr
	for id := range b.open {
		tr.Unbalanced = append(tr.Unbalanced, id)
	}
	sort.Slice(tr.Unbalanced, func(i, j int) bool { return tr.Unbalanced[i] < tr.Unbalanced[j] })
	return tr
}

// Balanced reports whether every span start has a matching end and vice
// versa.
func (tr *Trace) Balanced() bool { return len(tr.Unbalanced) == 0 }

// Levels returns the distinct TP percentages of the trace's spans in
// ascending order, excluding the -1 aggregate sentinel.
func (tr *Trace) Levels() []float64 {
	seen := map[float64]bool{}
	var out []float64
	for _, s := range tr.Spans {
		if s.TPPercent >= 0 && !seen[s.TPPercent] {
			seen[s.TPPercent] = true
			out = append(out, s.TPPercent)
		}
	}
	sort.Float64s(out)
	return out
}
