package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// SpanRecord is one reconstructed span of a parsed NDJSON trace: the
// matched start/end pair with the end event's payload.
type SpanRecord struct {
	ID        int64
	Parent    int64
	Stage     string
	TPPercent float64
	Start     time.Time
	Duration  time.Duration
	Err       string
	Counters  map[string]int64
	Gauges    map[string]float64
	Hists     map[string]HistData
	// Attrs is the span's correlation identity (run_id, job_id, tenant)
	// as stamped on its span_end event.
	Attrs map[string]string
}

// Trace is a parsed NDJSON trace file.
type Trace struct {
	Events []Event
	// Spans holds every balanced start/end pair, in end-event order.
	Spans []SpanRecord
	// Unbalanced lists span IDs that started but never ended, or ended
	// without a start — a crashed or mis-instrumented run.
	Unbalanced []int64
	// Observations holds span_end events with ID 0: metric flushes the
	// service emits with no matching span_start (queue depth, cache
	// hits, per-tenant SLO samples). They are not spans and do not count
	// against balance.
	Observations []Event
	// Logs holds the EventLog records interleaved in the stream.
	Logs []Event
}

// ParseTrace reads an NDJSON trace. Every line must parse as an Event;
// a malformed line is an error (a trace that tails off mid-line came
// from a crashed writer). Balance problems are reported in
// Trace.Unbalanced, not as an error — call Balanced to gate on them.
func ParseTrace(r io.Reader) (*Trace, error) {
	tr := &Trace{}
	open := map[int64]Event{}
	ended := map[int64]bool{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("trace line %d: %w", lineNo, err)
		}
		tr.Events = append(tr.Events, e)
		switch e.Type {
		case EventSpanStart:
			open[e.ID] = e
		case EventSpanEnd:
			if _, openZero := open[0]; e.ID == 0 && !openZero {
				// A bare id-0 end with no matching start is a service
				// metric flush, not a span. (Tracers mint span ids from
				// 1, but a trace that DID start span 0 still pairs.)
				tr.Observations = append(tr.Observations, e)
				continue
			}
			start, ok := open[e.ID]
			if !ok {
				tr.Unbalanced = append(tr.Unbalanced, e.ID)
				continue
			}
			delete(open, e.ID)
			ended[e.ID] = true
			tr.Spans = append(tr.Spans, SpanRecord{
				ID: e.ID, Parent: e.Parent, Stage: e.Stage,
				TPPercent: e.TPPercent, Start: start.Time,
				Duration: time.Duration(e.DurNS), Err: e.Err,
				Counters: e.Counters, Gauges: e.Gauges, Hists: e.Hists,
				Attrs: e.Attrs,
			})
		case EventLog:
			tr.Logs = append(tr.Logs, e)
		default:
			return nil, fmt.Errorf("trace line %d: unknown event type %q", lineNo, e.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for id := range open {
		tr.Unbalanced = append(tr.Unbalanced, id)
	}
	sort.Slice(tr.Unbalanced, func(i, j int) bool { return tr.Unbalanced[i] < tr.Unbalanced[j] })
	return tr, nil
}

// Balanced reports whether every span start has a matching end and vice
// versa.
func (tr *Trace) Balanced() bool { return len(tr.Unbalanced) == 0 }

// Levels returns the distinct TP percentages of the trace's spans in
// ascending order, excluding the -1 aggregate sentinel.
func (tr *Trace) Levels() []float64 {
	seen := map[float64]bool{}
	var out []float64
	for _, s := range tr.Spans {
		if s.TPPercent >= 0 && !seen[s.TPPercent] {
			seen[s.TPPercent] = true
			out = append(out, s.TPPercent)
		}
	}
	sort.Float64s(out)
	return out
}
