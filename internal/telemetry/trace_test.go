package telemetry

import (
	"strings"
	"testing"
)

// Real trace lines (the trace-smoke artifact's shape) used as both
// error-path prefixes and fuzz seeds.
const (
	lineStart = `{"ev":"span_start","id":1,"stage":"run","tp":1,"t":"2026-08-06T12:00:00Z"}`
	lineEnd   = `{"ev":"span_end","id":1,"stage":"run","tp":1,"t":"2026-08-06T12:00:01Z","dur_ns":1000000000,"counters":{"atpg.patterns":412},"hists":{"atpg.podem_ns":{"n":2,"s":4000,"b":{"10":1,"12":1}}}}`
)

func TestParseTraceTruncatedLine(t *testing.T) {
	// A writer that died mid-line leaves a JSON fragment; the parse must
	// fail naming the line, not silently drop the tail.
	in := lineStart + "\n" + lineEnd[:37] + "\n"
	if _, err := ParseTrace(strings.NewReader(in)); err == nil ||
		!strings.Contains(err.Error(), "line 2") {
		t.Fatalf("truncated line: err = %v, want line-2 parse error", err)
	}
}

func TestParseTraceUnknownEventType(t *testing.T) {
	in := lineStart + "\n" + `{"ev":"span_weird","id":2,"stage":"x","tp":0,"t":"2026-08-06T12:00:00Z"}` + "\n"
	_, err := ParseTrace(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "unknown event type") ||
		!strings.Contains(err.Error(), "span_weird") {
		t.Fatalf("unknown type: err = %v", err)
	}
}

func TestParseTraceOrphanEnd(t *testing.T) {
	// An end without a start is a balance problem, not a parse error —
	// the crashed-writer signature CI gates on via Balanced.
	tr, err := ParseTrace(strings.NewReader(lineEnd + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Balanced() || len(tr.Unbalanced) != 1 || tr.Unbalanced[0] != 1 {
		t.Fatalf("orphan end: balanced=%v unbalanced=%v", tr.Balanced(), tr.Unbalanced)
	}
	if len(tr.Spans) != 0 {
		t.Fatalf("orphan end produced a span: %+v", tr.Spans)
	}
}

func TestParseTraceHistPayload(t *testing.T) {
	tr, err := ParseTrace(strings.NewReader(lineStart + "\n" + lineEnd + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Spans) != 1 {
		t.Fatalf("spans = %d", len(tr.Spans))
	}
	h, ok := tr.Spans[0].Hists["atpg.podem_ns"]
	if !ok || h.Count != 2 || h.Sum != 4000 || h.Buckets[10] != 1 {
		t.Fatalf("hist payload = %+v", tr.Spans[0].Hists)
	}
}

func TestParseTraceBlankLinesSkipped(t *testing.T) {
	tr, err := ParseTrace(strings.NewReader("\n" + lineStart + "\n\n" + lineEnd + "\n\n"))
	if err != nil || len(tr.Spans) != 1 || !tr.Balanced() {
		t.Fatalf("blank lines: err=%v spans=%d", err, len(tr.Spans))
	}
}

// FuzzParseTrace: no input may panic or hang the parser — it either
// parses (possibly unbalanced) or returns an error.
func FuzzParseTrace(f *testing.F) {
	f.Add(lineStart + "\n" + lineEnd + "\n")
	f.Add(lineEnd + "\n" + lineStart + "\n") // orphan end then dangling start
	f.Add(lineStart[:20])
	f.Add(`{"ev":"span_weird"}`)
	f.Add("")
	f.Add("\n\n\n")
	f.Add(`{"ev":"span_end","id":-1,"stage":"","tp":-1,"dur_ns":-5}`)
	f.Add(`{"ev":"span_end","id":1,"hists":{"h":{"n":1,"s":1,"b":{"99":1}}}}`)
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ParseTrace(strings.NewReader(in))
		if err != nil {
			return
		}
		// Invariants of a successful parse: spans only from balanced
		// pairs, Balanced consistent with Unbalanced.
		if tr.Balanced() != (len(tr.Unbalanced) == 0) {
			t.Fatalf("Balanced()=%v but Unbalanced=%v", tr.Balanced(), tr.Unbalanced)
		}
		if len(tr.Spans) > len(tr.Events) {
			t.Fatalf("%d spans from %d events", len(tr.Spans), len(tr.Events))
		}
		// Quantile estimation must tolerate arbitrary parsed payloads.
		for _, s := range tr.Spans {
			for _, h := range s.Hists {
				_ = h.Quantile(0.5)
				_ = h.Mean()
			}
		}
	})
}
