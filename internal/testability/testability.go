// Package testability computes the testability measures that drive test
// point selection, exactly the toolbox the paper's TPI method draws on:
// SCOAP controllability/observability, COP signal and detection
// probabilities, per-net testability cost (TC), and fanout-free-region
// sizes.
//
// All measures are computed on the full-scan capture-mode view of the
// circuit: primary inputs and flip-flop outputs are fully controllable
// sources; primary outputs and flip-flop data inputs are fully observable
// sinks. Nets may be constrained to constants (test-mode controls such as
// scan-enable during capture).
package testability

import (
	"math"

	"tpilayout/internal/netlist"
	"tpilayout/internal/stdcell"
)

// Inf is the SCOAP value used for uncontrollable/unobservable nets.
const Inf int32 = 1 << 30

// Analysis holds all computed measures, indexed by NetID.
type Analysis struct {
	// SCOAP combinational measures.
	CC0, CC1 []int32 // cost to set the net to 0 / 1
	CO       []int32 // cost to observe the net (min over branches)

	// COP probabilities under uniformly random source values.
	P1  []float64 // probability the net is 1
	Obs []float64 // probability a value change on the net reaches a sink

	// Det0/Det1 are COP detection probabilities of stuck-at-0/1 on the
	// net: Det0 = P1·Obs (fault visible when the good value is 1), etc.
	Det0, Det1 []float64

	// FFRHead maps every net to the head (stem) net of its fanout-free
	// region; FFRSize is the number of cells per head.
	FFRHead []netlist.NetID
	FFRSize map[netlist.NetID]int

	// FFICone[n] is the size of the fanout-free fan-in cone of net n: the
	// number of gates whose only path to an observation point runs
	// through n. An observation point at n makes exactly these gates'
	// faults observable, so it weights test-point gain.
	FFICone []int32
}

// Options configures the analysis.
type Options struct {
	// Constraints forces nets to constant values (0 or 1), e.g. the
	// capture-mode values of scan-enable and test-point control nets.
	Constraints map[netlist.NetID]int8
}

// Analyze computes all measures for the netlist. The netlist must be
// combinationally acyclic.
func Analyze(n *netlist.Netlist, opt Options) (*Analysis, error) {
	lv, err := n.Levelize()
	if err != nil {
		return nil, err
	}
	a := &Analysis{
		CC0: make([]int32, len(n.Nets)),
		CC1: make([]int32, len(n.Nets)),
		CO:  make([]int32, len(n.Nets)),
		P1:  make([]float64, len(n.Nets)),
		Obs: make([]float64, len(n.Nets)),
	}
	a.controllability(n, lv, opt)
	a.observability(n, lv, opt)
	a.detection(n)
	a.regions(n)
	a.fanoutFreeCones(n, lv)
	return a, nil
}

// fanoutFreeCones computes FFICone in levelized order: a gate contributes
// itself plus the cones of its single-fanout inputs.
func (a *Analysis) fanoutFreeCones(n *netlist.Netlist, lv *netlist.Levels) {
	a.FFICone = make([]int32, len(n.Nets))
	csr := n.CSR()
	for _, ci := range lv.Order {
		c := &n.Cells[ci]
		size := int32(1)
		for _, in := range c.Ins {
			if in != netlist.NoNet && csr.FanoutLen(in) == 1 {
				size += a.FFICone[in]
			}
		}
		a.FFICone[c.Out] = size
	}
}

// sourceKind classifies a net's source for the capture-mode view.
func sourceKind(n *netlist.Netlist, id netlist.NetID, opt Options) (isSource bool, constVal int8) {
	if v, ok := opt.Constraints[id]; ok {
		return true, v
	}
	nn := &n.Nets[id]
	if nn.Const >= 0 {
		return true, nn.Const
	}
	if nn.PI >= 0 {
		return true, -1 // scan-controllable source
	}
	if nn.Driver != netlist.NoCell && n.Cells[nn.Driver].Cell.Kind.IsSequential() {
		return true, -1 // flip-flop output: scan-controllable
	}
	return false, 0
}

func (a *Analysis) controllability(n *netlist.Netlist, lv *netlist.Levels, opt Options) {
	for id := range n.Nets {
		nid := netlist.NetID(id)
		if src, cv := sourceKind(n, nid, opt); src {
			switch cv {
			case 0:
				a.CC0[id], a.CC1[id], a.P1[id] = 0, Inf, 0
			case 1:
				a.CC0[id], a.CC1[id], a.P1[id] = Inf, 0, 1
			default:
				a.CC0[id], a.CC1[id], a.P1[id] = 1, 1, 0.5
			}
		}
	}
	for _, ci := range lv.Order {
		c := &n.Cells[ci]
		out := c.Out
		if _, ok := opt.Constraints[out]; ok {
			continue // constrained nets keep their forced values
		}
		cc0, cc1, p1 := gateControllability(c, a)
		a.CC0[out], a.CC1[out], a.P1[out] = cc0, cc1, p1
	}
}

// addSat adds SCOAP costs with saturation at Inf.
func addSat(a, b int32) int32 {
	if a >= Inf || b >= Inf {
		return Inf
	}
	s := a + b
	if s >= Inf {
		return Inf
	}
	return s
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

// gateControllability applies the SCOAP and COP rules for one gate.
func gateControllability(c *netlist.Instance, a *Analysis) (cc0, cc1 int32, p1 float64) {
	in := c.Ins
	g0 := func(i int) int32 { return a.CC0[in[i]] }
	g1 := func(i int) int32 { return a.CC1[in[i]] }
	p := func(i int) float64 { return a.P1[in[i]] }

	switch c.Cell.Kind {
	case stdcell.KindInv:
		return addSat(g1(0), 1), addSat(g0(0), 1), 1 - p(0)
	case stdcell.KindBuf:
		return addSat(g0(0), 1), addSat(g1(0), 1), p(0)
	case stdcell.KindAnd, stdcell.KindNand:
		sum1, min0 := int32(0), Inf
		prod := 1.0
		for i := range in {
			sum1 = addSat(sum1, g1(i))
			min0 = min32(min0, g0(i))
			prod *= p(i)
		}
		if c.Cell.Kind == stdcell.KindAnd {
			return addSat(min0, 1), addSat(sum1, 1), prod
		}
		return addSat(sum1, 1), addSat(min0, 1), 1 - prod
	case stdcell.KindOr, stdcell.KindNor:
		sum0, min1 := int32(0), Inf
		prod := 1.0
		for i := range in {
			sum0 = addSat(sum0, g0(i))
			min1 = min32(min1, g1(i))
			prod *= 1 - p(i)
		}
		if c.Cell.Kind == stdcell.KindOr {
			return addSat(sum0, 1), addSat(min1, 1), 1 - prod
		}
		return addSat(min1, 1), addSat(sum0, 1), prod
	case stdcell.KindXor:
		cc0 = addSat(min32(addSat(g0(0), g0(1)), addSat(g1(0), g1(1))), 1)
		cc1 = addSat(min32(addSat(g0(0), g1(1)), addSat(g1(0), g0(1))), 1)
		return cc0, cc1, p(0)*(1-p(1)) + (1-p(0))*p(1)
	case stdcell.KindXnor:
		cc1 = addSat(min32(addSat(g0(0), g0(1)), addSat(g1(0), g1(1))), 1)
		cc0 = addSat(min32(addSat(g0(0), g1(1)), addSat(g1(0), g0(1))), 1)
		return cc0, cc1, 1 - (p(0)*(1-p(1)) + (1-p(0))*p(1))
	case stdcell.KindAoi21: // y = !(a·b + c)
		cc0 = addSat(min32(addSat(g1(0), g1(1)), g1(2)), 1)
		cc1 = addSat(addSat(g0(2), min32(g0(0), g0(1))), 1)
		pab := p(0) * p(1)
		return cc0, cc1, (1 - pab) * (1 - p(2))
	case stdcell.KindOai21: // y = !((a+b)·c)
		cc0 = addSat(addSat(min32(g1(0), g1(1)), g1(2)), 1)
		cc1 = addSat(min32(addSat(g0(0), g0(1)), g0(2)), 1)
		pab := 1 - (1-p(0))*(1-p(1))
		return cc0, cc1, 1 - pab*p(2)
	case stdcell.KindMux2: // y = s ? b : a
		cc0 = addSat(min32(addSat(g0(2), g0(0)), addSat(g1(2), g0(1))), 1)
		cc1 = addSat(min32(addSat(g0(2), g1(0)), addSat(g1(2), g1(1))), 1)
		return cc0, cc1, (1-p(2))*p(0) + p(2)*p(1)
	}
	return Inf, Inf, 0.5
}

func (a *Analysis) observability(n *netlist.Netlist, lv *netlist.Levels, opt Options) {
	for id := range n.Nets {
		a.CO[id] = Inf
	}
	// Sinks: primary outputs and flip-flop data-class inputs (any
	// non-clock input of a sequential cell: d, si — se sensitization is a
	// test-mode matter and already reflected by constraints).
	for _, po := range n.POs {
		if po.Net != netlist.NoNet {
			a.CO[po.Net] = 0
			a.Obs[po.Net] = 1
		}
	}
	for ci := range n.Cells {
		c := &n.Cells[ci]
		if c.Dead || !c.Cell.Kind.IsSequential() {
			continue
		}
		for pin, in := range c.Ins {
			if !c.Cell.Inputs[pin].Clock {
				a.CO[in] = 0
				a.Obs[in] = 1
			}
		}
	}
	// Walk backwards through the levelized order: compute each gate's
	// input observabilities from its output's.
	for k := len(lv.Order) - 1; k >= 0; k-- {
		c := &n.Cells[lv.Order[k]]
		gateObservability(c, a, opt)
	}
}

// gateObservability propagates observability from c.Out to each input of
// c, then merges into the input nets (stem CO = min over branches; stem
// Obs = max over branches).
func gateObservability(c *netlist.Instance, a *Analysis, opt Options) {
	in := c.Ins
	co := a.CO[c.Out]
	obs := a.Obs[c.Out]
	update := func(i int, cost int32, prob float64) {
		net := in[i]
		if _, constrained := opt.Constraints[net]; constrained {
			return // constants cannot be observed through
		}
		v := addSat(addSat(co, cost), 1)
		if v < a.CO[net] {
			a.CO[net] = v
		}
		p := obs * prob
		if p > a.Obs[net] {
			a.Obs[net] = p
		}
	}
	g0 := func(i int) int32 { return a.CC0[in[i]] }
	g1 := func(i int) int32 { return a.CC1[in[i]] }
	p := func(i int) float64 { return a.P1[in[i]] }

	switch c.Cell.Kind {
	case stdcell.KindInv, stdcell.KindBuf:
		update(0, 0, 1)
	case stdcell.KindAnd, stdcell.KindNand:
		for i := range in {
			cost, prob := int32(0), 1.0
			for j := range in {
				if j != i {
					cost = addSat(cost, g1(j))
					prob *= p(j)
				}
			}
			update(i, cost, prob)
		}
	case stdcell.KindOr, stdcell.KindNor:
		for i := range in {
			cost, prob := int32(0), 1.0
			for j := range in {
				if j != i {
					cost = addSat(cost, g0(j))
					prob *= 1 - p(j)
				}
			}
			update(i, cost, prob)
		}
	case stdcell.KindXor, stdcell.KindXnor:
		update(0, min32(g0(1), g1(1)), 1)
		update(1, min32(g0(0), g1(0)), 1)
	case stdcell.KindAoi21: // y = !(a·b + c)
		update(0, addSat(g1(1), g0(2)), p(1)*(1-p(2)))
		update(1, addSat(g1(0), g0(2)), p(0)*(1-p(2)))
		update(2, min32(g0(0), g0(1)), 1-p(0)*p(1))
	case stdcell.KindOai21: // y = !((a+b)·c)
		update(0, addSat(g0(1), g1(2)), (1-p(1))*p(2))
		update(1, addSat(g0(0), g1(2)), (1-p(0))*p(2))
		update(2, min32(g1(0), g1(1)), 1-(1-p(0))*(1-p(1)))
	case stdcell.KindMux2: // y = s ? b : a
		update(0, g0(2), 1-p(2))
		update(1, g1(2), p(2))
		diff := p(0)*(1-p(1)) + (1-p(0))*p(1)
		update(2, min32(addSat(g1(0), g0(1)), addSat(g0(0), g1(1))), diff)
	}
}

func (a *Analysis) detection(n *netlist.Netlist) {
	a.Det0 = make([]float64, len(n.Nets))
	a.Det1 = make([]float64, len(n.Nets))
	for id := range n.Nets {
		a.Det0[id] = a.P1[id] * a.Obs[id]
		a.Det1[id] = (1 - a.P1[id]) * a.Obs[id]
	}
}

// TC returns the testability cost of a net: the number of random patterns
// (log2) expected to detect its hardest stuck-at fault. Large TC = hard
// net; Inf-like values are capped at 64.
func (a *Analysis) TC(id netlist.NetID) float64 {
	d := math.Min(a.Det0[id], a.Det1[id])
	if d <= 0 {
		return 64
	}
	tc := -math.Log2(d)
	if tc > 64 {
		return 64
	}
	return tc
}

// regions assigns each net to its fanout-free-region head: the first net
// at or below it (towards the sinks) with fanout > 1 or feeding a sink.
func (a *Analysis) regions(n *netlist.Netlist) {
	a.FFRHead = make([]netlist.NetID, len(n.Nets))
	a.FFRSize = make(map[netlist.NetID]int)
	csr := n.CSR()
	for id := range n.Nets {
		a.FFRHead[id] = netlist.NoNet
	}
	// A net is a stem (its own head) when it has ≠1 loads or its single
	// load is a sink (PO or sequential input).
	isStem := func(id netlist.NetID) bool {
		loads := csr.Fanout(id)
		if len(loads) != 1 {
			return true
		}
		ld := loads[0]
		if ld.Cell == netlist.NoCell {
			return true
		}
		return n.Cells[ld.Cell].Cell.Kind.IsSequential()
	}
	var headOf func(id netlist.NetID) netlist.NetID
	headOf = func(id netlist.NetID) netlist.NetID {
		if a.FFRHead[id] != netlist.NoNet {
			return a.FFRHead[id]
		}
		if isStem(id) {
			a.FFRHead[id] = id
			return id
		}
		// Single combinational load: same region as its output.
		ld := csr.Fanout(id)[0]
		out := n.Cells[ld.Cell].Out
		h := headOf(out)
		a.FFRHead[id] = h
		return h
	}
	for id := range n.Nets {
		if n.Nets[id].Dead {
			continue
		}
		headOf(netlist.NetID(id))
	}
	for ci := range n.Cells {
		c := &n.Cells[ci]
		if c.Dead || c.Out == netlist.NoNet || c.Cell.Kind.IsSequential() || c.Cell.Kind.IsPhysicalOnly() {
			continue
		}
		a.FFRSize[a.FFRHead[c.Out]]++
	}
}
