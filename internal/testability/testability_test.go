package testability

import (
	"math"
	"testing"

	"tpilayout/internal/circuitgen"
	"tpilayout/internal/logicsim"
	"tpilayout/internal/netlist"
	"tpilayout/internal/stdcell"
)

// chainAnd builds: y = ((a AND b) AND c) AND d with a PO on y.
func chainAnd(t *testing.T) (*netlist.Netlist, []netlist.NetID, netlist.NetID) {
	t.Helper()
	lib := stdcell.Default()
	n := netlist.New("chain", lib)
	var pis []netlist.NetID
	for _, s := range []string{"a", "b", "c", "d"} {
		pis = append(pis, n.AddPI(s))
	}
	and2 := lib.MustCell("AND2X1")
	x1 := n.AddNet("x1")
	x2 := n.AddNet("x2")
	y := n.AddNet("y")
	n.AddCell("g1", and2, []netlist.NetID{pis[0], pis[1]}, x1)
	n.AddCell("g2", and2, []netlist.NetID{x1, pis[2]}, x2)
	n.AddCell("g3", and2, []netlist.NetID{x2, pis[3]}, y)
	n.AddPO("y", y)
	return n, pis, y
}

func TestSCOAPAndChain(t *testing.T) {
	n, pis, y := chainAnd(t)
	a, err := Analyze(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// CC1(y): all four inputs to 1: 1+1+1 (g1) +1 = ...
	// g1: CC1 = 1+1+1 = 3; g2: CC1 = 3+1+1 = 5; g3: CC1 = 5+1+1 = 7.
	if a.CC1[y] != 7 {
		t.Errorf("CC1(y) = %d, want 7", a.CC1[y])
	}
	// CC0(y): cheapest single 0: min(CC0(x2), CC0(d)) + 1; CC0(x2)=3, so 1+1=2 via d.
	if a.CC0[y] != 2 {
		t.Errorf("CC0(y) = %d, want 2", a.CC0[y])
	}
	// CO(a): through g1 (needs b=1), g2 (c=1), g3 (d=1): (0+1+1)+(1+1)+(1+1)=...
	// CO(x2)=0+CC1(d)+1=2; CO(x1)=2+CC1(c)+1=4; CO(a)=4+CC1(b)+1=6.
	if a.CO[pis[0]] != 6 {
		t.Errorf("CO(a) = %d, want 6", a.CO[pis[0]])
	}
	// COP: P1(y) = 1/16; Obs(a) = P1(b)*P1(c)*P1(d) = 1/8.
	if math.Abs(a.P1[y]-1.0/16) > 1e-12 {
		t.Errorf("P1(y) = %g, want 1/16", a.P1[y])
	}
	if math.Abs(a.Obs[pis[0]]-1.0/8) > 1e-12 {
		t.Errorf("Obs(a) = %g, want 1/8", a.Obs[pis[0]])
	}
	// Detection of y stuck-at-0 requires y=1: probability 1/16.
	if math.Abs(a.Det0[y]-1.0/16) > 1e-12 {
		t.Errorf("Det0(y) = %g, want 1/16", a.Det0[y])
	}
	if tc := a.TC(y); math.Abs(tc-4) > 1e-9 {
		t.Errorf("TC(y) = %g, want 4", tc)
	}
}

func TestSCOAPInverterAndSources(t *testing.T) {
	lib := stdcell.Default()
	n := netlist.New("inv", lib)
	clk, dom := n.AddClockPI("clk", 1000)
	a := n.AddPI("a")
	y := n.AddNet("y")
	q := n.AddNet("q")
	n.AddCell("g", lib.MustCell("INVX1"), []netlist.NetID{a}, y)
	ff := n.AddCell("ff", lib.MustCell("DFFX1"), []netlist.NetID{y, clk}, q)
	n.Cells[ff].Domain = dom
	n.AddPO("q", q)
	an, err := Analyze(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if an.CC0[a] != 1 || an.CC1[a] != 1 {
		t.Errorf("PI controllability = (%d,%d), want (1,1)", an.CC0[a], an.CC1[a])
	}
	if an.CC0[q] != 1 || an.CC1[q] != 1 {
		t.Errorf("FF output controllability = (%d,%d), want (1,1) in full scan", an.CC0[q], an.CC1[q])
	}
	if an.CC0[y] != 2 || an.CC1[y] != 2 {
		t.Errorf("INV output CC = (%d,%d), want (2,2)", an.CC0[y], an.CC1[y])
	}
	// y feeds a flip-flop d pin: fully observable in scan.
	if an.CO[y] != 0 || an.Obs[y] != 1 {
		t.Errorf("FF d-input observability = (%d,%g), want (0,1)", an.CO[y], an.Obs[y])
	}
}

func TestConstraintsForceValues(t *testing.T) {
	lib := stdcell.Default()
	n := netlist.New("c", lib)
	a := n.AddPI("a")
	se := n.AddPI("se")
	y := n.AddNet("y")
	n.AddCell("g", lib.MustCell("AND2X1"), []netlist.NetID{a, se}, y)
	n.AddPO("y", y)
	an, err := Analyze(n, Options{Constraints: map[netlist.NetID]int8{se: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if an.P1[y] != 0 {
		t.Errorf("P1(y) = %g with se=0, want 0", an.P1[y])
	}
	if an.CC1[y] < Inf {
		t.Errorf("CC1(y) = %d with se=0, want Inf", an.CC1[y])
	}
	// a is unobservable through a gate held off.
	if an.Obs[a] != 0 {
		t.Errorf("Obs(a) = %g with se=0, want 0", an.Obs[a])
	}
}

// TestCOPMatchesExhaustiveSimulation cross-checks COP P1 against exact
// signal probabilities from exhaustive 64-pattern simulation on a
// fanout-free circuit (COP is exact without reconvergence).
func TestCOPMatchesExhaustiveSimulation(t *testing.T) {
	lib := stdcell.Default()
	n := netlist.New("tree", lib)
	var pis []netlist.NetID
	for i := 0; i < 6; i++ {
		pis = append(pis, n.AddPI("p"))
	}
	w1 := n.AddNet("w1")
	w2 := n.AddNet("w2")
	w3 := n.AddNet("w3")
	w4 := n.AddNet("w4")
	y := n.AddNet("y")
	n.AddCell("g1", lib.MustCell("NAND2X1"), []netlist.NetID{pis[0], pis[1]}, w1)
	n.AddCell("g2", lib.MustCell("NOR2X1"), []netlist.NetID{pis[2], pis[3]}, w2)
	n.AddCell("g3", lib.MustCell("XOR2X1"), []netlist.NetID{pis[4], pis[5]}, w3)
	n.AddCell("g4", lib.MustCell("OAI21X1"), []netlist.NetID{w1, w2, w3}, w4)
	n.AddCell("g5", lib.MustCell("INVX1"), []netlist.NetID{w4}, y)
	n.AddPO("y", y)

	an, err := Analyze(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := logicsim.New(n)
	if err != nil {
		t.Fatal(err)
	}
	// All 64 combinations of 6 inputs in one word.
	for i, pi := range pis {
		var w uint64
		for v := 0; v < 64; v++ {
			if v>>i&1 == 1 {
				w |= 1 << v
			}
		}
		s.SetNet(pi, w)
	}
	s.Propagate()
	for _, net := range []netlist.NetID{w1, w2, w3, w4, y} {
		ones := 0
		w := s.Get(net)
		for v := 0; v < 64; v++ {
			if w>>v&1 == 1 {
				ones++
			}
		}
		exact := float64(ones) / 64
		if math.Abs(an.P1[net]-exact) > 1e-9 {
			t.Errorf("net %s: COP P1 = %g, exact %g", n.Nets[net].Name, an.P1[net], exact)
		}
	}
}

func TestFanoutFreeRegions(t *testing.T) {
	// a -> inv -> w -> {and g2, or g3}: w is a stem. g2's output chain
	// through one more inverter is one region.
	lib := stdcell.Default()
	n := netlist.New("ffr", lib)
	a := n.AddPI("a")
	b := n.AddPI("b")
	w := n.AddNet("w")
	x := n.AddNet("x")
	y := n.AddNet("y")
	z := n.AddNet("z")
	n.AddCell("g1", lib.MustCell("INVX1"), []netlist.NetID{a}, w)
	n.AddCell("g2", lib.MustCell("AND2X1"), []netlist.NetID{w, b}, x)
	n.AddCell("g3", lib.MustCell("OR2X1"), []netlist.NetID{w, b}, y)
	n.AddCell("g4", lib.MustCell("INVX1"), []netlist.NetID{x}, z)
	n.AddPO("z", z)
	n.AddPO("y", y)
	an, err := Analyze(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if an.FFRHead[w] != w {
		t.Errorf("w should head its own region (fanout 2)")
	}
	if an.FFRHead[x] != z {
		t.Errorf("FFRHead(x) = %d, want z (%d)", an.FFRHead[x], z)
	}
	if an.FFRSize[z] != 2 {
		t.Errorf("region z size = %d, want 2 (g2, g4)", an.FFRSize[z])
	}
	if an.FFRSize[w] != 1 {
		t.Errorf("region w size = %d, want 1 (g1)", an.FFRSize[w])
	}
}

func TestHardConesAreHard(t *testing.T) {
	// The generator's hard cones must actually produce nets with high TC,
	// otherwise the TPI experiments are meaningless.
	lib := stdcell.Default()
	n, err := circuitgen.Generate(circuitgen.S38417Class().Scale(0.03), lib)
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for id := range n.Nets {
		if tc := an.TC(netlist.NetID(id)); tc > worst && n.Nets[id].Driver != netlist.NoCell {
			worst = tc
		}
	}
	if worst < 10 {
		t.Errorf("hardest net TC = %.1f, want ≥ 10 (random-resistant cones missing?)", worst)
	}
}
