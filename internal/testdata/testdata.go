// Package testdata computes scan test data volume and test application
// time, equations (1) and (2) of the paper:
//
//	TDV = 2·n·((l_max+1)·p + l_max)     [bits]
//	TAT = (l_max+1)·p + l_max           [cycles]
//
// where n is the number of scan chains, l_max the longest chain, and p the
// pattern count. The factor 2 counts stimuli and responses; the +1 per
// pattern is the capture cycle; the trailing l_max flushes the final
// responses.
package testdata

// TDV returns the scan test data volume in bits (Eq. 1).
func TDV(chains, lMax, patterns int) int64 {
	return 2 * int64(chains) * TAT(lMax, patterns)
}

// TAT returns the test application time in cycles (Eq. 2).
func TAT(lMax, patterns int) int64 {
	return int64(lMax+1)*int64(patterns) + int64(lMax)
}
