package testdata

import (
	"testing"
	"testing/quick"
)

func TestEquationsByBitCounting(t *testing.T) {
	// Brute-force model of a scan test: per pattern, l_max shift-in
	// cycles overlapped with shift-out, plus one capture; a final l_max
	// shift flushes the last responses. Data volume is one stimulus and
	// one response bit per chain per shift cycle.
	f := func(ch8, l8, p8 uint8) bool {
		chains := int(ch8%31) + 1
		lMax := int(l8 % 200)
		patterns := int(p8 % 100)
		cycles := 0
		for p := 0; p < patterns; p++ {
			cycles += lMax // shift in (shift out previous)
			cycles++       // capture
		}
		cycles += lMax // flush final responses
		bits := int64(cycles) * int64(chains) * 2
		return TAT(lMax, patterns) == int64(cycles) && TDV(chains, lMax, patterns) == bits
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPaperShapedValues(t *testing.T) {
	// Sanity on magnitudes: 1,636 flops in 17 chains of ≤100, 1,000
	// patterns → ~3.4 Mbit, ~101k cycles.
	tat := TAT(100, 1000)
	if tat != 101*1000+100 {
		t.Errorf("TAT = %d", tat)
	}
	if got := TDV(17, 100, 1000); got != 2*17*tat {
		t.Errorf("TDV = %d", got)
	}
}
