// Package tpi implements the paper's core subject: test point insertion
// with transparent scan flip-flops (TSFFs).
//
// A TSFF (Figure 1 of the paper) is a scan flip-flop with an input
// multiplexer (select TE) and an output multiplexer (select TR) that acts
// as an observation point and a control point at the same time:
//
//	          ┌────────┐        ┌─────┐
//	D ───────►│ 0      │ w_in   │     │ w_q  ┌────────┐
//	          │   mux  ├───┬───►│ DFF ├─────►│ 1      │
//	TI ──────►│ 1      │   │    │     │      │   mux  ├──► loads
//	          └───▲────┘   └───────────────► │ 0      │
//	              TE                         └───▲────┘
//	                                             TR
//
// Modes: application TE=0 TR=0 (transparent, two mux delays in the
// functional path); scan shift TE=1 TR=1; scan capture TE=0 TR=1 (the
// functional value is captured while the output is controlled from the
// flop); scan flush TE=1 TR=0 (combinational TI→output path).
//
// Insertion follows the paper's three steps: (1) testability-analysis-
// driven selection of target nets, (2) clock-domain assignment per TSFF,
// (3) netlist editing.
package tpi

import (
	"fmt"
	"math"

	"tpilayout/internal/netlist"
	"tpilayout/internal/testability"
)

// TestPoint records one inserted TSFF.
type TestPoint struct {
	Target  netlist.NetID // net the TSFF was inserted on (original ID)
	Out     netlist.NetID // new net driving the original loads
	InMux   netlist.CellID
	FF      netlist.CellID
	OutMux  netlist.CellID
	Domain  int
	ScoreTC float64 // testability cost of the target at selection time
}

// Options configures insertion.
type Options struct {
	// Count is the number of TSFFs to insert.
	Count int
	// Exclude blocks nets from receiving test points (e.g. nets on
	// critical paths with slack below threshold — the Section 5
	// discussion). Nets are identified by their IDs before insertion.
	Exclude map[netlist.NetID]bool
	// MinTC skips nets easier than this testability cost; 0 accepts any.
	// The default of 0 lets the ranking decide alone.
	MinTC float64
	// Constraints are extra capture-mode constants for the analysis
	// (e.g. an existing scan-enable net).
	Constraints map[netlist.NetID]int8
	// Reanalyze controls how often testability is recomputed: every
	// Reanalyze insertions (default 1 = the fully iterative process of
	// the paper's method; larger values batch for speed).
	Reanalyze int
}

// Result describes the inserted test points and their control nets.
type Result struct {
	Points []TestPoint
	TE, TR netlist.NetID // global test-point control nets (NoNet if Count==0)
}

// CaptureConstraints returns the capture-mode constants: TE=0, TR=1 (the
// TSFF observes its functional input and controls its output).
func (r *Result) CaptureConstraints() map[netlist.NetID]int8 {
	m := map[netlist.NetID]int8{}
	if r.TE != netlist.NoNet {
		m[r.TE] = 0
		m[r.TR] = 1
	}
	return m
}

// ApplicationConstraints returns the functional-mode constants: TE=0,
// TR=0 (the TSFF is transparent).
func (r *Result) ApplicationConstraints() map[netlist.NetID]int8 {
	m := map[netlist.NetID]int8{}
	if r.TE != netlist.NoNet {
		m[r.TE] = 0
		m[r.TR] = 0
	}
	return m
}

// Insert selects target nets and inserts opt.Count TSFFs into n.
func Insert(n *netlist.Netlist, opt Options) (*Result, error) {
	res := &Result{TE: netlist.NoNet, TR: netlist.NoNet}
	if opt.Count <= 0 {
		return res, nil
	}
	res.TE = n.AddPI("tp_te")
	res.TR = n.AddPI("tp_tr")
	err := insertLoop(n, opt, res, make(map[netlist.NetID]bool))
	return res, err
}

// Resume continues a previous insertion on a netlist that already holds
// prev's test points (a snapshot of the netlist taken right after the
// Insert that produced prev). It reuses prev's TE/TR control nets and
// inserts only the opt.Count − len(prev.Points) missing TSFFs, naming and
// numbering them as a from-scratch Insert(opt.Count) would.
//
// Because Insert's selection loop re-analyzes testability on the current
// netlist state each batch, the state after k insertions fully determines
// insertion k+1 — so Resume's continuation is byte-identical to the tail
// of a from-scratch run, and the resulting netlist mutations match
// exactly. prev is not mutated; the returned Result owns its own Points
// slice.
func Resume(n *netlist.Netlist, prev *Result, opt Options) (*Result, error) {
	if prev == nil || prev.TE == netlist.NoNet {
		return Insert(n, opt)
	}
	res := &Result{
		Points: append([]TestPoint(nil), prev.Points...),
		TE:     prev.TE,
		TR:     prev.TR,
	}
	if opt.Count <= len(res.Points) {
		return res, nil
	}
	taken := make(map[netlist.NetID]bool, len(res.Points))
	for _, p := range res.Points {
		taken[p.Target] = true
	}
	err := insertLoop(n, opt, res, taken)
	return res, err
}

// insertLoop is the shared selection/insertion engine behind Insert and
// Resume: analyze, pick a batch, splice TSFFs, repeat until res holds
// opt.Count points. taken must hold the targets of every point already in
// res (a previously targeted net keeps a live fanout — the in-mux pin —
// so without the guard it could be picked twice).
func insertLoop(n *netlist.Netlist, opt Options, res *Result, taken map[netlist.NetID]bool) error {
	if opt.Reanalyze <= 0 {
		opt.Reanalyze = 1
	}
	constraints := map[netlist.NetID]int8{res.TE: 0, res.TR: 1}
	for k, v := range opt.Constraints {
		constraints[k] = v
	}
	for len(res.Points) < opt.Count {
		an, err := testability.Analyze(n, testability.Options{Constraints: constraints})
		if err != nil {
			return err
		}
		batch := opt.Reanalyze
		if rem := opt.Count - len(res.Points); batch > rem {
			batch = rem
		}
		targets := selectTargets(n, an, opt, taken, batch)
		if len(targets) == 0 {
			return fmt.Errorf("tpi: no insertable net left after %d test points", len(res.Points))
		}
		for _, tgt := range targets {
			tp, err := insertTSFF(n, tgt.net, res.TE, res.TR, len(res.Points))
			if err != nil {
				return err
			}
			tp.ScoreTC = tgt.tc
			res.Points = append(res.Points, tp)
			taken[tgt.net] = true
		}
	}
	return nil
}

type target struct {
	net netlist.NetID
	tc  float64 // gain score (stored in TestPoint.ScoreTC)
	cc  int32   // SCOAP CC0+CC1 tie-break: prefer the hardest-to-control net
}

// deficitBits converts a probability into "bits of deficit": 0 for
// certain events, capped at 48 for (near-)impossible ones.
func deficitBits(p float64) float64 {
	if p <= 0 {
		return 48
	}
	b := -math.Log2(p)
	if b < 0 {
		b = 0
	}
	if b > 48 {
		b = 48
	}
	return b
}

// selectTargets ranks candidate nets by estimated test-point gain, the
// COP-style cost function of the paper's method: an observation point at
// net n fixes the observability deficit of every gate whose only
// observation path runs through n (the fanout-free fan-in cone), and the
// control half of the TSFF fixes the net's controllability deficit, so
//
//	score(n) = obsDeficitBits(n) · (1 + |FFICone(n)|) + ctrlDeficitBits(n)
//
// with SCOAP controllability as a tie-break toward the hardest net.
func selectTargets(n *netlist.Netlist, an *testability.Analysis, opt Options, taken map[netlist.NetID]bool, k int) []target {
	var best []target
	worse := func(a, b target) bool {
		if a.tc != b.tc {
			return a.tc < b.tc
		}
		return a.cc < b.cc
	}
	for id := range n.Nets {
		net := netlist.NetID(id)
		if !insertable(n, net) || taken[net] || opt.Exclude[net] {
			continue
		}
		if an.TC(net) < opt.MinTC {
			continue
		}
		score := deficitBits(an.Obs[net])*(1+float64(an.FFICone[net])) +
			deficitBits(math.Min(an.P1[net], 1-an.P1[net]))
		cc := an.CC0[net] + an.CC1[net]
		if cc > testability.Inf {
			cc = testability.Inf
		}
		t := target{net: net, tc: score, cc: cc}
		if len(best) < k {
			best = append(best, t)
			continue
		}
		// Replace the weakest of the current best.
		wi := 0
		for i := 1; i < len(best); i++ {
			if worse(best[i], best[wi]) {
				wi = i
			}
		}
		if worse(best[wi], t) {
			best[wi] = t
		}
	}
	return best
}

// insertable reports whether a net can receive a TSFF: a live logic net
// driven by a functional combinational cell. Flip-flop outputs and primary
// inputs are already fully controllable/observable in full scan; nets
// created by DfT insertion are off limits.
func insertable(n *netlist.Netlist, net netlist.NetID) bool {
	nn := &n.Nets[net]
	if nn.Dead || nn.Const >= 0 || nn.PI >= 0 {
		return false
	}
	if nn.Driver == netlist.NoCell {
		return false
	}
	d := &n.Cells[nn.Driver]
	if d.Dead || d.Tag != netlist.TagNone {
		return false
	}
	k := d.Cell.Kind
	if k.IsSequential() || k.IsPhysicalOnly() {
		return false
	}
	return len(n.Fanouts()[net]) > 0
}

// insertTSFF performs steps 2 and 3 for one test point: picks the clock
// domain and splices the three TSFF cells into the netlist.
func insertTSFF(n *netlist.Netlist, tnet netlist.NetID, te, tr netlist.NetID, idx int) (TestPoint, error) {
	dom := clockDomainFor(n, tnet)
	if dom < 0 {
		return TestPoint{}, fmt.Errorf("tpi: no clock domain reachable from net %s", n.Nets[tnet].Name)
	}
	clk := n.PIs[n.Domains[dom].ClockPI].Net
	lib := n.Lib

	loads := append([]netlist.Load(nil), n.Fanouts()[tnet]...)
	base := fmt.Sprintf("tp%d", idx)
	wIn := n.AddNet(base + "_win")
	wQ := n.AddNet(base + "_wq")
	wOut := n.AddNet(base + "_wout")

	// Scan-in placeholder: the scan stitcher rewires it into a chain.
	si := n.AddConst(0)

	inMux := n.AddCell(base+"_im", lib.MustCell("MUX2X1"), []netlist.NetID{tnet, si, te}, wIn)
	n.Cells[inMux].Tag = netlist.TagTestMux
	ffCell := lib.MustCell("DFFX1")
	ff := n.AddCell(base+"_ff", ffCell, []netlist.NetID{wIn, clk}, wQ)
	n.Cells[ff].Tag = netlist.TagScanFF
	n.Cells[ff].Domain = dom
	outMux := n.AddCell(base+"_om", lib.MustCell("MUX2X1"), []netlist.NetID{wIn, wQ, tr}, wOut)
	n.Cells[outMux].Tag = netlist.TagTestMux

	n.MoveLoads(tnet, wOut, loads)
	return TestPoint{
		Target: tnet,
		Out:    wOut,
		InMux:  inMux,
		FF:     ff,
		OutMux: outMux,
		Domain: dom,
	}, nil
}

// clockDomainFor finds the clock domain of the sequential cells nearest to
// net: backwards through the fanin cone first, then forwards, defaulting
// to domain 0.
func clockDomainFor(n *netlist.Netlist, net netlist.NetID) int {
	if len(n.Domains) == 0 {
		return -1
	}
	if len(n.Domains) == 1 {
		return 0
	}
	seen := make(map[netlist.NetID]bool)
	queue := []netlist.NetID{net}
	for steps := 0; len(queue) > 0 && steps < 4096; steps++ {
		id := queue[0]
		queue = queue[1:]
		if seen[id] {
			continue
		}
		seen[id] = true
		d := n.Nets[id].Driver
		if d == netlist.NoCell {
			continue
		}
		c := &n.Cells[d]
		if c.Cell.Kind.IsSequential() && c.Domain >= 0 {
			return c.Domain
		}
		queue = append(queue, c.Ins...)
	}
	// Forward search through the fanout cone.
	fan := n.Fanouts()
	seen = make(map[netlist.NetID]bool)
	queue = []netlist.NetID{net}
	for steps := 0; len(queue) > 0 && steps < 4096; steps++ {
		id := queue[0]
		queue = queue[1:]
		if seen[id] {
			continue
		}
		seen[id] = true
		for _, ld := range fan[id] {
			if ld.Cell == netlist.NoCell {
				continue
			}
			c := &n.Cells[ld.Cell]
			if c.Cell.Kind.IsSequential() && c.Domain >= 0 {
				return c.Domain
			}
			if c.Out != netlist.NoNet {
				queue = append(queue, c.Out)
			}
		}
	}
	return 0
}
